package gvrt_test

// Benchmarks come in two groups:
//
//   - Benchmark<component>: conventional micro-benchmarks of the hot
//     paths (allocator, transport round trip, memory-manager ops,
//     launch path).
//
//   - BenchmarkTable2 / BenchmarkFig5 ... BenchmarkFig11 /
//     BenchmarkAblation*: one benchmark per table/figure of the paper's
//     evaluation. Each iteration regenerates the whole table on the
//     simulated cluster; run with -v to see the regenerated rows, or use
//     cmd/benchrun for nicer output. The custom metric "model_s/op" is
//     the headline model-time of the experiment's largest configuration.
//
// The full -bench=. run takes a couple of minutes; individual figures
// can be selected with e.g. -bench=Fig7.

import (
	"strconv"
	"testing"
	"time"

	"gvrt"
	"gvrt/internal/exp"
)

// ---- micro-benchmarks ----

func benchNode(b *testing.B) *gvrt.LocalNode {
	b.Helper()
	// A very fast clock so modeled sleeps do not dominate the
	// measurement of the framework's own costs.
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-9), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(node.Close)
	return node
}

func BenchmarkDeviceMallocFree(b *testing.B) {
	clock := gvrt.NewClock(1e-9)
	dev := gvrt.NewDevice(0, gvrt.TeslaC2050, clock)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dev.Malloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeviceMallocFragmented(b *testing.B) {
	// Allocator performance with many live allocations.
	clock := gvrt.NewClock(1e-9)
	dev := gvrt.NewDevice(0, gvrt.TeslaC2050, clock)
	var live []gvrt.DevPtr
	for i := 0; i < 256; i++ {
		p, err := dev.Malloc(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		live = append(live, p)
	}
	for i := 0; i < len(live); i += 2 {
		if err := dev.Free(live[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := dev.Malloc(512 << 10)
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipeRoundTrip(b *testing.B) {
	node := benchNode(b)
	c := node.OpenClient()
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.SetDevice(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMallocThroughRuntime(b *testing.B) {
	node := benchNode(b)
	c := node.OpenClient()
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := c.Malloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunchPath(b *testing.B) {
	node := benchNode(b)
	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      "bench",
		Kernels: []gvrt.KernelMeta{{Name: "k", BaseTime: time.Microsecond}},
	}); err != nil {
		b.Fatal(err)
	}
	p, err := c.Malloc(1 << 20)
	if err != nil {
		b.Fatal(err)
	}
	call := gvrt.LaunchCall{Kernel: "k", PtrArgs: []gvrt.DevPtr{p}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Launch(call); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwapRoundTrip(b *testing.B) {
	// One full inter-application swap cycle: two contexts alternating
	// over memory that fits only one of them.
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-9),
		gvrt.Config{VGPUsPerDevice: 2, MinVictimIdle: -1}, gvrt.TeslaC2050)
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	fb := gvrt.FatBinary{ID: "bench-swap", Kernels: []gvrt.KernelMeta{{Name: "k", BaseTime: time.Microsecond}}}
	mk := func() (*gvrt.Client, gvrt.DevPtr) {
		c := node.OpenClient()
		if err := c.RegisterFatBinary(fb); err != nil {
			b.Fatal(err)
		}
		p, err := c.Malloc(1600 << 20)
		if err != nil {
			b.Fatal(err)
		}
		return c, p
	}
	c1, p1 := mk()
	defer c1.Close()
	c2, p2 := mk()
	defer c2.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c1.Launch(gvrt.LaunchCall{Kernel: "k", PtrArgs: []gvrt.DevPtr{p1}}); err != nil {
			b.Fatal(err)
		}
		if err := c2.Launch(gvrt.LaunchCall{Kernel: "k", PtrArgs: []gvrt.DevPtr{p2}}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- per-table / per-figure benchmarks ----

// benchExp regenerates one experiment per iteration and reports the
// last row's first numeric cell as model seconds.
func benchExp(b *testing.B, run func(exp.Options) (*exp.Table, error)) {
	b.Helper()
	o := exp.Options{Scale: 1e-3, Runs: 1, Seed: 1}
	for i := 0; i < b.N; i++ {
		t, err := run(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, row := range t.Rows {
				b.Logf("%v", row)
			}
			if len(t.Rows) > 0 {
				last := t.Rows[len(t.Rows)-1]
				for _, cell := range last {
					if v, err := strconv.ParseFloat(cell, 64); err == nil {
						b.ReportMetric(v, "model_s")
						break
					}
				}
			}
		}
	}
}

func BenchmarkTable2(b *testing.B)   { benchExp(b, exp.Table2) }
func BenchmarkFig1(b *testing.B)     { benchExp(b, exp.Fig1) }
func BenchmarkCtxLimit(b *testing.B) { benchExp(b, exp.CtxLimit) }
func BenchmarkFig5(b *testing.B)     { benchExp(b, exp.Fig5) }
func BenchmarkFig6(b *testing.B)     { benchExp(b, exp.Fig6) }
func BenchmarkFig7(b *testing.B)     { benchExp(b, exp.Fig7) }
func BenchmarkFig8(b *testing.B)     { benchExp(b, exp.Fig8) }
func BenchmarkFig9(b *testing.B)     { benchExp(b, exp.Fig9) }
func BenchmarkFig10(b *testing.B)    { benchExp(b, exp.Fig10) }
func BenchmarkFig11(b *testing.B)    { benchExp(b, exp.Fig11) }

func BenchmarkAblationVGPUCount(b *testing.B) { benchExp(b, exp.AblationVGPUCount) }
func BenchmarkAblationDeferral(b *testing.B)  { benchExp(b, exp.AblationDeferral) }
func BenchmarkAblationInterSwap(b *testing.B) { benchExp(b, exp.AblationInterSwap) }
func BenchmarkAblationSchedulers(b *testing.B) {
	benchExp(b, exp.AblationSchedulers)
}
func BenchmarkAblationCheckpoint(b *testing.B) {
	benchExp(b, exp.AblationCheckpoint)
}
func BenchmarkAblationOffloadThreshold(b *testing.B) {
	benchExp(b, exp.AblationOffloadThreshold)
}
