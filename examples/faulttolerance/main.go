// Fault tolerance: an iterative application survives a GPU failure in
// the middle of its run (paper §4.6).
//
// The application accumulates state on the device across ten kernel
// calls. Halfway through, its GPU dies. The runtime invalidates the
// context's residency, re-binds it to the surviving GPU, restores the
// last checkpointed state from the host-side swap area and replays the
// kernels logged since — the application never notices, and its final
// result is bit-exact.
//
// The scenario runs twice: without automatic checkpoints (every kernel
// since the start must be replayed) and with them (nothing replays) —
// the trade-off §4.6 describes.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"time"

	"gvrt"
)

const binID = "examples/faulttolerance"

func init() {
	// step: state[i] = state[i]*2 + 1 — order-sensitive, so a missed or
	// doubled replay would corrupt the result visibly.
	gvrt.RegisterKernelImpl(binID, "step", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := uint64(0); i < scalars[0]; i++ {
			buf[i] = buf[i]*2 + 1
		}
		return nil
	})
}

const (
	iters      = 10
	n          = 4
	kernelTime = 2 * time.Second
)

// scenario runs the iterative job, kills its GPU halfway, and verifies
// the final state.
func scenario(autoCheckpoint time.Duration) error {
	clock := gvrt.NewClock(0.001)
	node, err := gvrt.NewLocalNode(clock, gvrt.Config{AutoCheckpoint: autoCheckpoint},
		gvrt.TeslaC2050, gvrt.TeslaC2050)
	if err != nil {
		return err
	}
	defer node.Close()

	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      binID,
		Kernels: []gvrt.KernelMeta{{Name: "step", BaseTime: kernelTime}},
	}); err != nil {
		return err
	}

	state, err := c.Malloc(n)
	if err != nil {
		return err
	}
	if err := c.MemcpyHD(state, make([]byte, n)); err != nil {
		return err
	}

	for i := 0; i < iters; i++ {
		if i == iters/2 {
			fmt.Println("  !! killing the GPU the application is bound to")
			// Device 0 is where the first context binds (the balanced
			// policy fills the first device first).
			node.RT.FailDevice(0)
		}
		if err := c.Launch(gvrt.LaunchCall{
			Kernel:  "step",
			PtrArgs: []gvrt.DevPtr{state},
			Scalars: []uint64{n},
		}); err != nil {
			return fmt.Errorf("kernel %d: %w", i, err)
		}
		clock.Sleep(time.Second) // CPU phase between iterations
	}

	out, err := c.MemcpyDH(state, n)
	if err != nil {
		return err
	}
	// state starts at 0; after k steps of x -> 2x+1 it is 2^k-1, and
	// byte arithmetic wraps mod 256.
	want := byte((1<<iters - 1) & 0xff)
	for i, v := range out {
		if v != want {
			return fmt.Errorf("state[%d] = %d, want %d: recovery corrupted data", i, v, want)
		}
	}
	m := node.RT.Metrics()
	fmt.Printf("  state verified (%d each); recoveries=%d kernelsReplayed=%d checkpoints=%d\n",
		want, m.Recoveries, m.Replays, m.Memory.Checkpoints)
	return nil
}

func main() {
	fmt.Println("without automatic checkpoints (work since the start replays):")
	if err := scenario(0); err != nil {
		log.Fatal(err)
	}
	fmt.Println("with automatic checkpoints after every long kernel (nothing replays):")
	if err := scenario(time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nin both runs the application survived a GPU failure with bit-exact state;")
	fmt.Println("checkpoints trade steady-state copies for a cheaper restart (paper §4.6).")
}
