// Heterogeneous node: load balancing through dynamic binding (paper
// §5.3.4, Figure 9).
//
// A node has one fast Tesla C2050 and one slow Quadro 2000. Two
// long-running jobs start together: one lands on the fast GPU, the
// other on the slow one. When the fast job finishes, the runtime
// migrates the slow job — page table and swap area in hand — onto the
// fast GPU mid-run, shortening its remaining iterations by ~3x.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"gvrt"
)

const binID = "examples/heterogeneous"

func fatBinary() gvrt.FatBinary {
	return gvrt.FatBinary{
		ID:      binID,
		Kernels: []gvrt.KernelMeta{{Name: "iterate", BaseTime: time.Second}},
	}
}

// job runs iterations of a 1 s (reference-device) kernel with CPU
// phases between them, reporting its total model time.
func job(name string, node *gvrt.LocalNode, iters int) (time.Duration, error) {
	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(fatBinary()); err != nil {
		return 0, err
	}
	buf, err := c.Malloc(64 << 20)
	if err != nil {
		return 0, err
	}
	if err := c.MemcpyHDSynthetic(buf, 64<<20); err != nil {
		return 0, err
	}
	start := node.Clock().Now()
	for i := 0; i < iters; i++ {
		if err := c.Launch(gvrt.LaunchCall{Kernel: "iterate", PtrArgs: []gvrt.DevPtr{buf}}); err != nil {
			return 0, err
		}
		node.Clock().Sleep(400 * time.Millisecond) // CPU phase
	}
	return node.Clock().Now() - start, nil
}

func main() {
	clock := gvrt.NewClock(0.001)
	node, err := gvrt.NewLocalNode(clock, gvrt.Config{
		VGPUsPerDevice:  1,
		EnableMigration: true,
	}, gvrt.TeslaC2050, gvrt.Quadro2000)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	var wg sync.WaitGroup
	times := make([]time.Duration, 2)
	errs := make([]error, 2)
	// Job 0 is short and will release the fast GPU early; job 1 is
	// long and starts on the slow Quadro. Job 0 is submitted first so
	// the dispatcher (which prefers the faster device) binds it to the
	// C2050; job 1 then gets the Quadro.
	iters := []int{4, 20}
	for i := range times {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			times[i], errs[i] = job(fmt.Sprintf("job-%d", i), node, iters[i])
		}(i)
		time.Sleep(300 * time.Microsecond) // ~0.3 model s: lets job i bind first
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("job-%d: %v", i, err)
		}
	}

	m := node.RT.Metrics()
	fmt.Printf("job-0 (fast GPU, %d iters): %5.1f model s\n", iters[0], times[0].Seconds())
	fmt.Printf("job-1 (starts slow, %d iters): %5.1f model s\n", iters[1], times[1].Seconds())
	fmt.Printf("migrations: %d\n", m.Migrations)
	if m.Migrations > 0 {
		// Without migration, job-1 would need 20 * (1s/0.35 + 0.4s) = 65 s.
		fmt.Println("job-1 was migrated to the fast GPU after job-0 finished —")
		fmt.Println("compare ~65 model s had it stayed on the Quadro 2000.")
	} else {
		fmt.Println("(no migration occurred this run)")
	}
}
