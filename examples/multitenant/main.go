// Multi-tenant cloud service: a gvrt daemon serves many tenants over
// TCP, the deployment scenario of the paper's Figure 2(a).
//
// A runtime daemon owns a three-GPU node and listens on a TCP port —
// exactly like cmd/gvrtd. Twenty tenants connect concurrently (far
// beyond the bare CUDA runtime's stable limit of eight processes), each
// running a randomly drawn Table 2 benchmark. The daemon abstracts the
// GPUs (tenants see only virtual GPUs), shares them, and isolates the
// tenants from one another.
//
// Run with: go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"gvrt"
)

func main() {
	clock := gvrt.NewClock(0.001)
	node, err := gvrt.NewLocalNode(clock, gvrt.Config{VGPUsPerDevice: 4},
		gvrt.TeslaC2050, gvrt.TeslaC2050, gvrt.TeslaC1060)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// The daemon side: listen and serve, as cmd/gvrtd does.
	l, err := gvrt.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go node.RT.ServeListener(l)
	fmt.Printf("gvrt daemon serving 3 GPUs (12 vGPUs) on %s\n", l.Addr())

	// The tenant side: 20 concurrent jobs over TCP.
	const tenants = 20
	apps := gvrt.RandomShortBatch(gvrt.NewRNG(42), tenants)
	res := gvrt.RunBatch(clock, apps, func(i int) (gvrt.CUDAClient, error) {
		conn, err := gvrt.Dial(l.Addr())
		if err != nil {
			return nil, err
		}
		return gvrt.Connect(conn), nil
	})

	fmt.Printf("\n%-3s %-6s %8s\n", "#", "app", "time (s)")
	for i, app := range apps {
		status := fmt.Sprintf("%8.1f", res.JobTimes[i].Seconds())
		if res.Errors[i] != nil {
			status = "FAILED: " + res.Errors[i].Error()
		}
		fmt.Printf("%-3d %-6s %s\n", i, app.Name, status)
	}
	fmt.Printf("\nbatch: total %.1f s, avg %.1f s, failures %d\n",
		res.Total.Seconds(), res.Avg.Seconds(), res.Failed())

	m := node.RT.Metrics()
	fmt.Printf("runtime: %d calls served, %d binds, %d swaps, %d bad ops rejected\n",
		m.CallsServed, m.Binds, m.Memory.SwapOps, m.Memory.BadOpsRejected)
	fmt.Printf("(the bare CUDA runtime supports at most 8 such tenants concurrently)\n")
}
