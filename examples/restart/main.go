// Node restart: an application survives a full restart of its node
// (the paper's §4.6 combines its runtime with BLCR for this; gvrt
// serialises its own state).
//
// An iterative application runs half its kernels on node 1. The node
// saves its runtime state and goes away — hardware and all. A brand-new
// node restores the state; the application reconnects, resumes its
// session, and finishes the remaining kernels using the same virtual
// pointers. The final result is bit-exact, as if nothing happened.
//
// Run with: go run ./examples/restart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gvrt"
)

const binID = "examples/restart"

func init() {
	// state[i] = state[i]*3 + 1 — order-sensitive.
	gvrt.RegisterKernelImpl(binID, "step", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := uint64(0); i < scalars[0]; i++ {
			buf[i] = buf[i]*3 + 1
		}
		return nil
	})
}

func fatBinary() gvrt.FatBinary {
	return gvrt.FatBinary{
		ID:      binID,
		Kernels: []gvrt.KernelMeta{{Name: "step", BaseTime: time.Second}},
	}
}

const (
	n     = 4
	iters = 6
)

func main() {
	clock := gvrt.NewClock(0.001)

	// ---- life on node 1 ----
	node1, err := gvrt.NewLocalNode(clock, gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		log.Fatal(err)
	}
	c1 := node1.OpenClient()
	if err := c1.RegisterFatBinary(fatBinary()); err != nil {
		log.Fatal(err)
	}
	state, err := c1.Malloc(n)
	if err != nil {
		log.Fatal(err)
	}
	if err := c1.MemcpyHD(state, make([]byte, n)); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < iters/2; i++ {
		if err := c1.Launch(gvrt.LaunchCall{Kernel: "step", PtrArgs: []gvrt.DevPtr{state}, Scalars: []uint64{n}}); err != nil {
			log.Fatal(err)
		}
	}
	session, err := c1.SessionID()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 1: ran %d/%d kernels; session %d\n", iters/2, iters, session)

	var snapshot bytes.Buffer
	if err := node1.RT.SaveState(&snapshot); err != nil {
		log.Fatal(err)
	}
	c1.Close()
	node1.Close()
	fmt.Printf("node 1: state saved (%d bytes) — node goes down\n", snapshot.Len())

	// ---- a brand-new node comes up ----
	node2, err := gvrt.NewLocalNode(clock, gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		log.Fatal(err)
	}
	defer node2.Close()
	if err := node2.RT.RestoreState(&snapshot); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node 2: restored sessions %v\n", node2.RT.OrphanSessions())

	c2 := node2.OpenClient()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		log.Fatal(err)
	}
	if err := c2.RegisterFatBinary(fatBinary()); err != nil {
		log.Fatal(err)
	}
	for i := iters / 2; i < iters; i++ {
		// The SAME virtual pointer from node 1 keeps working.
		if err := c2.Launch(gvrt.LaunchCall{Kernel: "step", PtrArgs: []gvrt.DevPtr{state}, Scalars: []uint64{n}}); err != nil {
			log.Fatal(err)
		}
	}
	out, err := c2.MemcpyDH(state, n)
	if err != nil {
		log.Fatal(err)
	}

	// x -> 3x+1 from 0, k times: (3^k - 1) / 2, mod 256.
	want := byte(0)
	for i := 0; i < iters; i++ {
		want = want*3 + 1
	}
	fmt.Printf("node 2: final state %v (want %d each)\n", out, want)
	for i, v := range out {
		if v != want {
			log.Fatalf("state[%d] = %d, want %d: restart corrupted data", i, v, want)
		}
	}
	fmt.Println("the application survived a full node restart with bit-exact state")
	fmt.Println("and unchanged virtual pointers (paper §4.6, BLCR-style capability).")
}
