// Cluster: a TORQUE-like head dispatches jobs to two unequal compute
// nodes, and the overloaded node offloads excess application threads to
// its peer (paper §4.7, §5.4, Figures 10/11).
//
// Node A has three GPUs, node B has one; the GPU-oblivious head splits
// 32 jobs evenly, overloading B. The run is repeated in the paper's
// three configurations — serialized (1 vGPU/device), GPU sharing
// (4 vGPUs), and sharing + inter-node offloading — printing Total and
// Avg like Figure 10.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"gvrt"
)

func runConfig(name string, vgpus int, offload bool) error {
	clock := gvrt.NewClock(0.001)
	cfg := func(gpus int) gvrt.Config {
		c := gvrt.Config{VGPUsPerDevice: vgpus}
		if offload {
			c.OffloadThreshold = 2 * vgpus * gpus
		}
		return c
	}
	a, err := gvrt.NewClusterNode("node-a", clock,
		[]gvrt.DeviceSpec{gvrt.TeslaC2050, gvrt.TeslaC2050, gvrt.TeslaC1060}, cfg(3))
	if err != nil {
		return err
	}
	b, err := gvrt.NewClusterNode("node-b", clock,
		[]gvrt.DeviceSpec{gvrt.TeslaC1060}, cfg(1))
	if err != nil {
		return err
	}
	a.SetPeer(b)
	b.SetPeer(a)
	defer a.Close()
	defer b.Close()

	head := gvrt.NewClusterHead(clock, a, b)
	res := head.RunOblivious(gvrt.RandomShortBatch(gvrt.NewRNG(7), 32))
	if res.Failed() > 0 {
		return fmt.Errorf("%s: %d jobs failed", name, res.Failed())
	}
	offloaded := a.RT.Metrics().Offloaded + b.RT.Metrics().Offloaded
	fmt.Printf("%-24s total %6.1f s   avg %6.1f s   offloaded %d\n",
		name, res.Total.Seconds(), res.Avg.Seconds(), offloaded)
	return nil
}

func main() {
	fmt.Println("32 short jobs on a 2-node cluster (3 GPUs + 1 GPU), GPU-oblivious head:")
	fmt.Println()
	if err := runConfig("serialized (1 vGPU)", 1, false); err != nil {
		log.Fatal(err)
	}
	if err := runConfig("GPU sharing (4 vGPUs)", 4, false); err != nil {
		log.Fatal(err)
	}
	if err := runConfig("sharing + offloading", 4, true); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("sharing removes the CUDA runtime's serialization; offloading drains")
	fmt.Println("the overloaded single-GPU node onto its three-GPU peer (paper Fig. 10).")
}
