// Quickstart: two applications whose aggregate memory requirements
// exceed one GPU share it anyway — the scenario of the paper's Figure 1
// and §4.5 — while real data flows through the virtual memory system
// end to end.
//
// On the bare CUDA runtime this workload would fail with an
// out-of-memory error (two 1.5 GB working sets on a 3 GB device);
// under gvrt the memory manager time-shares the device via
// inter-application swap, and both applications still compute the right
// answer.
//
// Each tenant carries a small buffer pair with real bytes (so the
// result is verifiable) plus a large synthetic workspace (modeled
// gigabytes that cost transfer time but no host memory) that creates
// the memory conflict.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"gvrt"
)

const binID = "examples/quickstart"

func init() {
	// The host-side implementation of our kernel: y[i] += x[i]. It
	// stands in for the device code inside the fat binary; the
	// workspace argument is touched only by the modeled timing.
	gvrt.RegisterKernelImpl(binID, "axpy", func(mem gvrt.KernelMemory, scalars []uint64) error {
		x, err := mem.Arg(0)
		if err != nil {
			return err
		}
		y, err := mem.Arg(1)
		if err != nil {
			return err
		}
		for i := uint64(0); i < scalars[0]; i++ {
			y[i] += x[i]
		}
		return nil
	})
}

func fatBinary() gvrt.FatBinary {
	return gvrt.FatBinary{
		ID: binID,
		Kernels: []gvrt.KernelMeta{
			{Name: "axpy", BaseTime: 200 * time.Millisecond},
		},
	}
}

// app uploads real data into small x/y buffers, allocates a large
// modeled workspace, and runs three axpy kernels with CPU phases
// between them, verifying y == 3x at the end.
func app(name string, node *gvrt.LocalNode, wsBytes uint64, done chan<- error) {
	c := node.OpenClient()
	defer c.Close()

	fail := func(err error) { done <- fmt.Errorf("%s: %w", name, err) }

	if err := c.RegisterFatBinary(fatBinary()); err != nil {
		fail(err)
		return
	}
	const n = 8
	x, err := c.Malloc(n)
	if err != nil {
		fail(err)
		return
	}
	y, err := c.Malloc(n)
	if err != nil {
		fail(err)
		return
	}
	ws, err := c.Malloc(wsBytes)
	if err != nil {
		fail(err)
		return
	}

	xs := make([]byte, n)
	for i := range xs {
		xs[i] = byte(i + 1)
	}
	if err := c.MemcpyHD(x, xs); err != nil {
		fail(err)
		return
	}
	if err := c.MemcpyHD(y, make([]byte, n)); err != nil {
		fail(err)
		return
	}
	if err := c.MemcpyHDSynthetic(ws, wsBytes); err != nil {
		fail(err)
		return
	}

	for iter := 0; iter < 3; iter++ {
		if err := c.Launch(gvrt.LaunchCall{
			Kernel:   "axpy",
			Grid:     gvrt.Dim3{X: 1024},
			Block:    gvrt.Dim3{X: 256},
			PtrArgs:  []gvrt.DevPtr{x, y, ws},
			Scalars:  []uint64{n},
			ReadOnly: []bool{true, false, false},
		}); err != nil {
			fail(err)
			return
		}
		// A CPU phase: while this tenant post-processes, the other one
		// can claim the GPU (this is when swap requests are honoured).
		node.Clock().Sleep(500 * time.Millisecond)
	}

	out, err := c.MemcpyDH(y, n)
	if err != nil {
		fail(err)
		return
	}
	for i := 0; i < n; i++ {
		if want := 3 * byte(i+1); out[i] != want {
			fail(fmt.Errorf("y[%d] = %d, want %d", i, out[i], want))
			return
		}
	}
	fmt.Printf("%s: y = 3*x verified (%v...)\n", name, out[:4])
	done <- nil
}

func main() {
	clock := gvrt.NewClock(0.001) // 1 model second = 1 wall millisecond
	node, err := gvrt.NewLocalNode(clock, gvrt.Config{VGPUsPerDevice: 2}, gvrt.TeslaC2050)
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()

	// Each tenant's working set is ~1.5 GB; the C2050 offers 3 GB
	// minus per-vGPU reservations, so the two tenants cannot be
	// resident together: gvrt swaps them in and out as they alternate.
	const ws = 1500 << 20

	done := make(chan error, 2)
	go app("tenant-A", node, ws, done)
	go app("tenant-B", node, ws, done)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			log.Fatal(err)
		}
	}

	m := node.RT.Metrics()
	fmt.Printf("\nruntime metrics: binds=%d interAppSwaps=%d swapOps=%d swapBytes=%dMB\n",
		m.Binds, m.InterAppSwaps, m.Memory.SwapOps, m.Memory.SwapBytes>>20)
	if m.InterAppSwaps == 0 && m.UnbindRetries == 0 {
		fmt.Println("(no memory pressure was observed this run — try increasing the workspace)")
	} else {
		fmt.Println("both tenants exceeded device memory together, yet both completed:")
		fmt.Println("that is the virtual-memory contribution of the paper.")
	}
}
