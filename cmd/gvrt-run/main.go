// Command gvrt-run submits benchmark applications to a gvrtd daemon
// over TCP and reports their execution times — a stand-in for the
// paper's CUDA applications linked against the intercept library.
//
// Usage:
//
//	gvrt-run -addr localhost:7070 -app BFS            # one named app
//	gvrt-run -addr localhost:7070 -random 16 -seed 3  # a random batch
//	gvrt-run -addr localhost:7070 -app MM-L -n 4 -cpufrac 1.5
//	gvrt-run -list                                    # list app names
//
// All instances run concurrently, like a batch of tenants.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"gvrt"
)

func appByName(name string, cpuFrac float64) (gvrt.App, bool) {
	return gvrt.BenchmarkByName(name, cpuFrac)
}

func main() {
	var (
		addr    = flag.String("addr", "localhost:7070", "gvrtd daemon address")
		appName = flag.String("app", "", "Table 2 application name (see -list)")
		n       = flag.Int("n", 1, "number of concurrent instances of -app")
		random  = flag.Int("random", 0, "run this many randomly drawn short jobs instead")
		seed    = flag.Int64("seed", 1, "seed for -random")
		cpuFrac = flag.Float64("cpufrac", 1, "CPU fraction for MM-S / MM-L")
		scale   = flag.Float64("scale", 1e-3, "wall seconds per model second (must match the daemon)")
		tenant  = flag.String("tenant", "", "attribute every session to this tenant")
		stats   = flag.Bool("stats", false, "print the daemon's metrics snapshot and exit")
		list    = flag.Bool("list", false, "list application names and exit")
	)
	flag.Parse()

	if *list {
		for _, app := range gvrt.Benchmarks() {
			fmt.Printf("%-6s kernels=%-5d mem=%dMB\n", app.Name, app.KernelCalls, app.MemBytes>>20)
		}
		return
	}

	if *stats {
		conn, err := gvrt.Dial(*addr)
		if err != nil {
			log.Fatalf("gvrt-run: %v", err)
		}
		c := gvrt.Connect(conn)
		defer c.Close()
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("gvrt-run: stats: %v", err)
		}
		fmt.Printf("calls=%d binds=%d queue=%d contexts=%d swaps=%d migrations=%d recoveries=%d offloaded=%d\n",
			st.CallsServed, st.Binds, st.QueueDepth, st.LiveContexts,
			st.SwapOps, st.Migrations, st.Recoveries, st.Offloaded)
		for _, d := range st.Devices {
			fmt.Printf("  gpu%d %-12s healthy=%-5v vgpus=%d/%d busy=%.1fs mem=%d/%dMB launches=%d\n",
				d.Index, d.Name, d.Healthy, d.ActiveVGPUs, d.VGPUs,
				float64(d.BusyNS)/1e9, d.MemAvailable>>20, d.Capacity>>20, d.Launches)
		}
		if len(st.Histograms) > 0 {
			keys := make([]string, 0, len(st.Histograms))
			for k := range st.Histograms {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Printf("  %-26s %9s %12s %12s\n", "histogram", "count", "p50", "p99")
			for _, k := range keys {
				h := st.Histograms[k]
				if k == "swap_bytes" {
					fmt.Printf("  %-26s %9d %12d %12d (bytes)\n", k, h.Count, h.Quantile(0.5), h.Quantile(0.99))
					continue
				}
				fmt.Printf("  %-26s %9d %12v %12v\n", k, h.Count,
					time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)))
			}
		}
		return
	}

	clock := gvrt.NewClock(*scale)
	var apps []gvrt.App
	switch {
	case *random > 0:
		apps = gvrt.RandomShortBatch(gvrt.NewRNG(*seed), *random)
	case *appName != "":
		app, ok := appByName(*appName, *cpuFrac)
		if !ok {
			log.Fatalf("gvrt-run: unknown application %q (use -list)", *appName)
		}
		for i := 0; i < *n; i++ {
			apps = append(apps, app)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	res := gvrt.RunBatch(clock, apps, func(i int) (gvrt.CUDAClient, error) {
		conn, err := gvrt.Dial(*addr)
		if err != nil {
			return nil, err
		}
		c := gvrt.Connect(conn)
		if *tenant != "" {
			if err := c.SetTenant(*tenant); err != nil {
				c.Close()
				return nil, err
			}
		}
		return c, nil
	})

	for i, app := range apps {
		if res.Errors[i] != nil {
			fmt.Printf("%-6s FAILED: %v\n", app.Name, res.Errors[i])
		} else {
			fmt.Printf("%-6s %8.1f model s\n", app.Name, res.JobTimes[i].Seconds())
		}
	}
	fmt.Printf("batch: total %.1f s, avg %.1f s, failures %d\n",
		res.Total.Seconds(), res.Avg.Seconds(), res.Failed())
	if res.Failed() > 0 {
		os.Exit(1)
	}
}
