// Command benchrun regenerates the paper's evaluation: every table and
// figure of §5 plus the ablations listed in DESIGN.md.
//
// Usage:
//
//	benchrun                    # run everything
//	benchrun -exp fig7,fig8     # run selected experiments
//	benchrun -runs 10 -seed 7   # control averaging and job draws
//	benchrun -scale 0.01        # slow the simulation down 10x
//	benchrun -list              # list experiment IDs
//
// The -scale flag maps model seconds to wall seconds (default 0.001:
// the full suite takes on the order of a minute). Results print as
// aligned text tables with the paper's qualitative claim quoted above
// each, for side-by-side comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"gvrt/internal/exp"
)

func main() {
	var (
		expFlag = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		runs    = flag.Int("runs", 3, "repetitions for randomized experiments")
		seed    = flag.Int64("seed", 1, "base seed for random job draws")
		scale   = flag.Float64("scale", 1e-3, "wall seconds per model second")
		chart   = flag.Bool("chart", false, "render results as ASCII bar charts too")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		verbose = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Println(e.ID)
		}
		return
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	o := exp.Options{Scale: *scale, Runs: *runs, Seed: *seed}
	if *verbose {
		o.Verbose = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		}
	}

	ran := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		ran++
		start := time.Now()
		t, err := e.Run(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrun: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		if *chart {
			t.RenderChart(os.Stdout)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "# %s finished in %v wall\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchrun: no experiment matched %q (use -list)\n", *expFlag)
		os.Exit(1)
	}
}
