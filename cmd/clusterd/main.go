// Command clusterd is the TORQUE-like cluster head of the paper's §5.4
// evaluation: it builds a multi-node cluster (each node with its own
// GPUs and gvrt runtime), dispatches a batch of jobs GPU-obliviously,
// and reports the batch metrics.
//
// Usage:
//
//	clusterd -nodes "c2050,c2050,c1060;c1060" -random 48
//	clusterd -nodes "c2050;c2050" -mix 32:25 -vgpus 4 -offload
//
// The -nodes flag lists one node per semicolon-separated group of GPU
// models. With -offload, every node redirects excess application
// threads to the next node in the ring (§4.7).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"gvrt"
)

func parseSpecs(s string) ([]gvrt.DeviceSpec, error) {
	var specs []gvrt.DeviceSpec
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "c2050":
			specs = append(specs, gvrt.TeslaC2050)
		case "c1060":
			specs = append(specs, gvrt.TeslaC1060)
		case "quadro2000", "q2000":
			specs = append(specs, gvrt.Quadro2000)
		default:
			return nil, fmt.Errorf("unknown GPU model %q", name)
		}
	}
	return specs, nil
}

func main() {
	var (
		nodesFlag = flag.String("nodes", "c2050,c2050,c1060;c1060", "semicolon-separated nodes, each a comma-separated GPU list")
		random    = flag.Int("random", 0, "dispatch this many random short jobs")
		seed      = flag.Int64("seed", 1, "seed for -random")
		mixFlag   = flag.String("mix", "", "long-job mix as N:bslPercent, e.g. 48:25")
		vgpus     = flag.Int("vgpus", 4, "virtual GPUs per device")
		offload   = flag.Bool("offload", false, "enable inter-node offloading")
		scale     = flag.Float64("scale", 1e-3, "wall seconds per model second")
	)
	flag.Parse()

	clock := gvrt.NewClock(*scale)
	var nodes []*gvrt.ClusterNode
	for i, group := range strings.Split(*nodesFlag, ";") {
		specs, err := parseSpecs(group)
		if err != nil {
			log.Fatalf("clusterd: %v", err)
		}
		cfg := gvrt.Config{VGPUsPerDevice: *vgpus}
		if *offload {
			cfg.OffloadThreshold = 2 * *vgpus * len(specs)
		}
		n, err := gvrt.NewClusterNode(fmt.Sprintf("node-%d", i), clock, specs, cfg)
		if err != nil {
			log.Fatalf("clusterd: %v", err)
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	if *offload {
		for i, n := range nodes {
			n.SetPeer(nodes[(i+1)%len(nodes)])
		}
	}

	var apps []gvrt.App
	switch {
	case *mixFlag != "":
		var n, pct int
		if _, err := fmt.Sscanf(*mixFlag, "%d:%d", &n, &pct); err != nil {
			log.Fatalf("clusterd: bad -mix %q: %v", *mixFlag, err)
		}
		apps = gvrt.MixedLongBatch(n, pct, 1)
	case *random > 0:
		apps = gvrt.RandomShortBatch(gvrt.NewRNG(*seed), *random)
	default:
		log.Fatal("clusterd: specify -random N or -mix N:PCT")
	}

	head := gvrt.NewClusterHead(clock, nodes...)
	fmt.Printf("dispatching %d jobs to %d nodes (oblivious round-robin)...\n", len(apps), len(nodes))
	res := head.RunOblivious(apps)

	fmt.Printf("total %.1f model s, avg %.1f s, failures %d\n",
		res.Total.Seconds(), res.Avg.Seconds(), res.Failed())
	for i, n := range nodes {
		m := n.RT.Metrics()
		fmt.Printf("node-%d: binds=%d swaps=%d offloaded=%d\n",
			i, m.Binds, m.Memory.SwapOps, m.Offloaded)
	}
}
