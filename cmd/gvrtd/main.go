// Command gvrtd is the gvrt node runtime daemon: it owns a node's
// (simulated) GPUs and serves intercepted CUDA calls over TCP — the
// per-node component of the paper's Figure 2 deployments.
//
// Usage:
//
//	gvrtd -listen :7070 -gpus c2050,c2050,c1060 -vgpus 4
//	gvrtd -listen :7071 -gpus c1060 -peer host:7070 -threshold 8
//
// The -peer / -threshold flags enable inter-node offloading (§4.7):
// once more application threads are queued than the threshold allows,
// new connections are proxied to the peer daemon.
//
// Clients connect with cmd/gvrt-run or the gvrt.Dial API.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gvrt"
)

// parseGPUs maps comma-separated model names to device specs.
func parseGPUs(s string) ([]gvrt.DeviceSpec, error) {
	var specs []gvrt.DeviceSpec
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "c2050", "teslac2050":
			specs = append(specs, gvrt.TeslaC2050)
		case "c1060", "teslac1060":
			specs = append(specs, gvrt.TeslaC1060)
		case "quadro2000", "q2000":
			specs = append(specs, gvrt.Quadro2000)
		case "":
		default:
			return nil, fmt.Errorf("unknown GPU model %q (want c2050, c1060 or quadro2000)", name)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no GPUs specified")
	}
	return specs, nil
}

// saveStateAtomic writes the runtime state to a temporary file, fsyncs
// it, and renames it into place, so the previous state file survives a
// failure at any point of the save.
func saveStateAtomic(rt *gvrt.Runtime, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := rt.SaveState(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

func main() {
	var (
		listen    = flag.String("listen", ":7070", "TCP address to serve on")
		gpus      = flag.String("gpus", "c2050", "comma-separated GPU models (c2050, c1060, quadro2000)")
		vgpus     = flag.Int("vgpus", 4, "virtual GPUs per device (sharing degree)")
		scale     = flag.Float64("scale", 1e-3, "wall seconds per model second")
		policy    = flag.String("policy", "fcfs", "scheduling policy: fcfs, sjf or credit")
		peer      = flag.String("peer", "", "peer daemon address for inter-node offloading")
		threshold = flag.Int("threshold", 0, "queue length beyond which new threads are offloaded (0 = off)")
		migrate   = flag.Bool("migrate", false, "enable load balancing through dynamic binding")
		autoCkpt  = flag.Duration("auto-checkpoint", 0, "checkpoint after kernels at least this long (model time; 0 = off)")
		stateFile = flag.String("state", "", "persist runtime state here on SIGINT/SIGTERM and restore it at startup (node-restart support)")
		journal   = flag.String("journal", "", "crash-consistent checkpoint journal directory: committed sessions survive even a SIGKILL")
		storeDir  = flag.String("store", "", "control-plane store directory: tenants, quotas and device membership survive crashes; mutations resume or roll back at boot (REST surface needs -http)")
		nodeName  = flag.String("node", "", "node name registered in the control-plane store (default the listen address)")
		httpAddr  = flag.String("http", "", "HTTP operator plane address (/metrics, /statusz, /tracez, /trace.json, /debug/pprof); empty = off")
		traceCap  = flag.Int("trace-buffer", 4096, "events/spans retained for the operator plane's trace views")
		flightDir = flag.String("flight", "", "flight-recorder directory: the node's black-box ring is dumped here on panics, fence/breaker storms and armed crash points; empty = off")
		flightInt = flag.Duration("flight-interval", 30*time.Second, "background flight-recorder flush interval, so even a SIGKILL'd node leaves a dump at most this old")
		fleet     = flag.String("fleet", "", "comma-separated name=addr peer daemons to aggregate under /metrics?scope=cluster and /cluster")
		sloTick   = flag.Duration("slo-interval", 2*time.Second, "SLO burn-rate evaluation interval (wall time; needs -store for the declared objectives)")
		verbose   = flag.Bool("v", false, "log runtime events")
	)
	flag.Parse()

	specs, err := parseGPUs(*gpus)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}

	cfg := gvrt.Config{
		VGPUsPerDevice:  *vgpus,
		EnableMigration: *migrate,
		AutoCheckpoint:  *autoCkpt,
	}
	switch strings.ToLower(*policy) {
	case "fcfs":
		cfg.Policy = gvrt.FCFS{}
	case "sjf":
		cfg.Policy = gvrt.ShortestJobFirst{}
	case "credit":
		cfg.Policy = gvrt.CreditBased{}
	default:
		log.Fatalf("gvrtd: unknown policy %q", *policy)
	}
	if *peer != "" && *threshold > 0 {
		addr := *peer
		cfg.OffloadThreshold = *threshold
		cfg.PeerDial = func() (gvrt.Conn, error) { return gvrt.Dial(addr) }
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			log.Printf("gvrtd: "+format, args...)
		}
	}
	// The operator plane's /tracez and /trace.json need a recorder;
	// arming it only with -http keeps the zero-observer fast path.
	if *httpAddr != "" {
		cfg.Trace = gvrt.NewTraceRecorder(*traceCap)
	}

	name := *nodeName
	if name == "" {
		name = *listen
	}

	// Flight recorder (DESIGN.md §15): armed before the runtime boots so
	// even the first cold-path event lands in the ring, and chained in
	// front of the crash handler so an armed SIGKILL writes the black
	// box to disk first.
	var flight *gvrt.FlightRecorder
	onCrash := gvrt.JournalDie
	if *flightDir != "" {
		flight = gvrt.NewFlightRecorder(name, *flightDir, 0)
		cfg.Flight = flight
		onCrash = flight.WrapCrash(gvrt.JournalDie)
		defer func() {
			if r := recover(); r != nil {
				flight.Dump(fmt.Sprintf("panic: %v", r))
				panic(r)
			}
		}()
	}

	node, err := gvrt.NewLocalNode(gvrt.NewClock(*scale), cfg, specs...)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}
	defer node.Close()

	// Crash-consistent durability (DESIGN.md §9): recover the journal
	// first, so sessions committed before a daemon kill come back as
	// resumable orphans. A corrupt snapshot header is fatal — starting
	// empty would silently discard every committed session — while torn
	// tails and individually corrupt context images are repaired loudly.
	var jnl *gvrt.Journal
	if *journal != "" {
		var rec *gvrt.JournalRecovered
		jnl, rec, err = gvrt.OpenJournal(*journal, gvrt.JournalOptions{
			OnCrash: onCrash,
			Logf: func(format string, args ...any) {
				log.Printf("gvrtd: journal: "+format, args...)
			},
		})
		if err != nil {
			if errors.Is(err, gvrt.ErrCorruptJournalSnapshot) {
				log.Fatalf("gvrtd: journal %s is unrecoverable (%v); refusing to discard committed sessions — restore the directory or move it aside", *journal, err)
			}
			log.Fatalf("gvrtd: opening journal %s: %v", *journal, err)
		}
		if rec.TornBytes > 0 {
			log.Printf("gvrtd: journal: truncated %d torn tail bytes (interrupted write)", rec.TornBytes)
		}
		for _, q := range rec.Quarantined {
			log.Printf("gvrtd: journal: QUARANTINED %v — that session is lost, others recovered", q)
		}
		if err := node.RT.RecoverFromJournal(rec); err != nil {
			log.Fatalf("gvrtd: recovering journal state: %v", err)
		}
		if n := len(rec.Images); n > 0 {
			fmt.Fprintf(os.Stderr, "gvrtd: recovered %d session(s) from journal %s\n", n, *journal)
		}
	}

	// Node-restart support (§4.6): restore persisted sessions, and save
	// them again on shutdown. Clients re-attach with Client.Resume. A
	// missing file is a fresh start; an unreadable or corrupt one is
	// fatal — starting empty would silently discard saved sessions.
	if *stateFile != "" {
		f, err := os.Open(*stateFile)
		switch {
		case err == nil:
			if err := node.RT.RestoreState(f); err != nil {
				log.Fatalf("gvrtd: restoring %s: %v (move the file aside to start fresh)", *stateFile, err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "gvrtd: restored sessions %v from %s\n",
				node.RT.OrphanSessions(), *stateFile)
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to restore.
		default:
			log.Fatalf("gvrtd: reading state file %s: %v", *stateFile, err)
		}
	}

	// Attach last: everything recovered or restored above is seeded into
	// the journal, and all mutations from here on are shadowed to it.
	if jnl != nil {
		if err := node.RT.AttachJournal(jnl); err != nil {
			log.Fatalf("gvrtd: attaching journal: %v", err)
		}
	}

	// Crash-resumable control plane (DESIGN.md §14): open the store,
	// resolve operations a previous run left mid-flight (resume the
	// forward-safe ones, roll back the rest), then reconcile the runtime
	// with the committed state — quotas re-applied, drained devices
	// re-drained.
	var ctrl *gvrt.CtrlManager
	var ctrlStore *gvrt.CtrlStore
	if *storeDir != "" {
		ctrlStore, err = gvrt.OpenCtrlStore(*storeDir, gvrt.CtrlStoreOptions{
			OnCrash: onCrash,
			Logf: func(format string, args ...any) {
				log.Printf("gvrtd: store: "+format, args...)
			},
		})
		if err != nil {
			if errors.Is(err, gvrt.ErrCorruptCtrlSnapshot) {
				log.Fatalf("gvrtd: control-plane store %s is unrecoverable (%v); restore the directory or move it aside", *storeDir, err)
			}
			log.Fatalf("gvrtd: opening control-plane store %s: %v", *storeDir, err)
		}
		ctrl = gvrt.NewCtrlManager(ctrlStore, gvrt.CtrlManagerOptions{
			Hooks:   node.RT,
			OnCrash: onCrash,
			Trace:   cfg.Trace,
			Now:     node.RT.Clock().Now,
			Logf: func(format string, args ...any) {
				log.Printf("gvrtd: ctrl: "+format, args...)
			},
		})
		if err := ctrl.Resume(); err != nil {
			log.Fatalf("gvrtd: resuming control-plane operations: %v", err)
		}
		if err := ctrl.SyncDevices(); err != nil {
			log.Fatalf("gvrtd: syncing device membership: %v", err)
		}
		if err := ctrl.ApplyStored(); err != nil {
			log.Printf("gvrtd: re-applying stored control-plane state: %v", err)
		}
		if err := ctrl.RegisterNode(name, node.RT.DeviceCount()); err != nil {
			log.Printf("gvrtd: registering node: %v", err)
		}
		if ops := ctrl.Ops(); len(ops) > 0 {
			log.Printf("gvrtd: %d control-plane operation(s) stuck; inspect /ops and POST /ops/cleanup", len(ops))
		}
	}

	// Background observability loops stop when main returns; the flight
	// recorder writes a final "shutdown" dump on the way out.
	stop := make(chan struct{})
	defer close(stop)
	if flight != nil {
		go flight.Run(*flightInt, stop)
		fmt.Fprintf(os.Stderr, "gvrtd: flight recorder armed, dumps to %s\n", flight.Path())
	}

	// Fleet aggregation (DESIGN.md §15): a head-node collector over the
	// local snapshot plus each -fleet peer, pulled on demand by
	// /metrics?scope=cluster, /cluster and the cluster SLO rollup.
	var collector *gvrt.FleetCollector
	if *fleet != "" {
		collector = gvrt.NewFleetCollector(name, node.RT.StatsSnapshot)
		for _, p := range strings.Split(*fleet, ",") {
			p = strings.TrimSpace(p)
			if p == "" {
				continue
			}
			peerName, addr, ok := strings.Cut(p, "=")
			if !ok {
				peerName, addr = p, p
			}
			collector.AddPeer(peerName, func() (gvrt.RuntimeStats, error) {
				conn, err := gvrt.Dial(addr)
				if err != nil {
					return gvrt.RuntimeStats{}, err
				}
				c := gvrt.Connect(conn)
				defer c.Close()
				return c.Stats()
			})
		}
		fmt.Fprintf(os.Stderr, "gvrtd: fleet aggregation over peers %v\n", collector.Peers())
	}

	// SLO burn-rate engine: objectives come from the control-plane store
	// (PUT /slos/{tenant}); usage is the cluster rollup when a fleet is
	// configured, node-local otherwise. Alert-state transitions ride the
	// /events SSE stream as kind "slo" events.
	var slo *gvrt.SLOEngine
	if ctrl != nil {
		usage := func() map[string]gvrt.TenantUsage { return node.RT.TenantAttribution() }
		if collector != nil {
			usage = func() map[string]gvrt.TenantUsage { return collector.Collect().Merged.Tenants }
		}
		slo = gvrt.NewSLOEngine(gvrt.SLOEngineOptions{
			Objectives: func() []gvrt.SLOObjective {
				recs := ctrl.SLOs()
				objs := make([]gvrt.SLOObjective, len(recs))
				for i, r := range recs {
					objs[i] = gvrt.SLOObjective{
						Tenant:        r.Tenant,
						LaunchP99NS:   r.LaunchP99NS,
						MaxErrorRatio: r.MaxErrorRatio,
					}
				}
				return objs
			},
			Usage: usage,
			Publish: func(ev gvrt.SLOEvent) {
				detail, err := json.Marshal(ev)
				if err != nil {
					return
				}
				ctrlStore.Inject(gvrt.CtrlEvent{Kind: "slo", Detail: detail})
				log.Printf("gvrtd: slo: tenant %s %s breaching=%v short=%.2f long=%.2f",
					ev.Status.Tenant, ev.Status.Kind, ev.Status.Breaching,
					ev.Status.ShortBurn, ev.Status.LongBurn)
			},
		})
		go slo.Run(*sloTick, stop)
	}

	l, err := gvrt.Listen(*listen)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}
	defer l.Close()

	// Graceful shutdown: SIGTERM/SIGINT stops admitting (new connections
	// are shed, live session leases revoked so peers can steal them),
	// closes the listener, persists what was asked for, flushes the
	// journal and the store, then exits 0. SIGKILL remains the
	// crash-consistency path the torture harnesses exercise.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var draining atomic.Bool
	go func() {
		<-sig
		draining.Store(true)
		node.RT.BeginDrain()
		l.Close() // unblocks ServeListener; no new connections
	}()

	if *httpAddr != "" {
		addr := *httpAddr
		src := gvrt.OpsSource{
			Stats: node.RT.StatsSnapshot,
			Trace: node.RT.TraceRecorder(),
			Now:   node.RT.Clock().Now,
			Name:  "gvrtd " + *listen,
			Ctrl:  ctrl,
			Fleet: collector,
			SLO:   slo,
		}
		if jnl != nil {
			src.JournalHealthy = jnl.Healthy
		}
		go func() {
			if err := http.ListenAndServe(addr, gvrt.NewOpsHandler(src)); err != nil {
				log.Printf("gvrtd: operator plane on %s: %v", addr, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "gvrtd: operator plane on http://%s (/metrics /statusz /tracez /trace.json /healthz /debug/pprof)\n", addr)
	}

	fmt.Fprintf(os.Stderr, "gvrtd: serving %d GPUs (%d vGPUs) on %s (scale %g)\n",
		len(specs), len(specs)**vgpus, l.Addr(), *scale)
	if cfg.OffloadThreshold > 0 {
		fmt.Fprintf(os.Stderr, "gvrtd: offloading to %s beyond queue depth %d\n", *peer, *threshold)
	}

	// Periodically report utilization-style metrics.
	if *verbose {
		go func() {
			for {
				time.Sleep(5 * time.Second)
				m := node.RT.Metrics()
				log.Printf("gvrtd: calls=%d binds=%d swaps=%d migrations=%d offloaded=%d",
					m.CallsServed, m.Binds, m.Memory.SwapOps, m.Migrations, m.Offloaded)
			}
		}()
	}

	node.RT.ServeListener(l)

	// ServeListener returns once the listener closes. If that was the
	// drain goroutine's doing, finish the shutdown here on the main
	// goroutine so the process cannot exit before the journal and store
	// are flushed.
	if !draining.Load() {
		return
	}
	code := 0
	if *stateFile != "" {
		// Write-then-rename so a kill mid-save can never leave a
		// truncated state file where a good one was.
		if err := saveStateAtomic(node.RT, *stateFile); err != nil {
			log.Printf("gvrtd: SAVING STATE FAILED, sessions not persisted to %s: %v", *stateFile, err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "gvrtd: state saved to %s\n", *stateFile)
		}
	}
	if jnl != nil {
		// Fold the journal into a fresh snapshot so the next boot
		// recovers fast, then close it cleanly.
		if err := jnl.Compact(); err != nil {
			log.Printf("gvrtd: journal compaction on shutdown: %v", err)
		}
		if err := jnl.Close(); err != nil {
			log.Printf("gvrtd: closing journal: %v", err)
			code = 1
		}
	}
	if ctrlStore != nil {
		if err := ctrlStore.Compact(); err != nil {
			log.Printf("gvrtd: store compaction on shutdown: %v", err)
		}
		if err := ctrlStore.Close(); err != nil {
			log.Printf("gvrtd: closing store: %v", err)
			code = 1
		}
	}
	if flight != nil {
		// os.Exit skips the deferred stop: write the final black box
		// explicitly so the drain itself is post-mortem-visible.
		if _, err := flight.Dump("shutdown"); err != nil {
			log.Printf("gvrtd: flight shutdown dump: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "gvrtd: drained, exiting\n")
	os.Exit(code)
}
