// Command gvrtd is the gvrt node runtime daemon: it owns a node's
// (simulated) GPUs and serves intercepted CUDA calls over TCP — the
// per-node component of the paper's Figure 2 deployments.
//
// Usage:
//
//	gvrtd -listen :7070 -gpus c2050,c2050,c1060 -vgpus 4
//	gvrtd -listen :7071 -gpus c1060 -peer host:7070 -threshold 8
//
// The -peer / -threshold flags enable inter-node offloading (§4.7):
// once more application threads are queued than the threshold allows,
// new connections are proxied to the peer daemon.
//
// Clients connect with cmd/gvrt-run or the gvrt.Dial API.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gvrt"
)

// parseGPUs maps comma-separated model names to device specs.
func parseGPUs(s string) ([]gvrt.DeviceSpec, error) {
	var specs []gvrt.DeviceSpec
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "c2050", "teslac2050":
			specs = append(specs, gvrt.TeslaC2050)
		case "c1060", "teslac1060":
			specs = append(specs, gvrt.TeslaC1060)
		case "quadro2000", "q2000":
			specs = append(specs, gvrt.Quadro2000)
		case "":
		default:
			return nil, fmt.Errorf("unknown GPU model %q (want c2050, c1060 or quadro2000)", name)
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no GPUs specified")
	}
	return specs, nil
}

func main() {
	var (
		listen    = flag.String("listen", ":7070", "TCP address to serve on")
		gpus      = flag.String("gpus", "c2050", "comma-separated GPU models (c2050, c1060, quadro2000)")
		vgpus     = flag.Int("vgpus", 4, "virtual GPUs per device (sharing degree)")
		scale     = flag.Float64("scale", 1e-3, "wall seconds per model second")
		policy    = flag.String("policy", "fcfs", "scheduling policy: fcfs, sjf or credit")
		peer      = flag.String("peer", "", "peer daemon address for inter-node offloading")
		threshold = flag.Int("threshold", 0, "queue length beyond which new threads are offloaded (0 = off)")
		migrate   = flag.Bool("migrate", false, "enable load balancing through dynamic binding")
		autoCkpt  = flag.Duration("auto-checkpoint", 0, "checkpoint after kernels at least this long (model time; 0 = off)")
		stateFile = flag.String("state", "", "persist runtime state here on SIGINT/SIGTERM and restore it at startup (node-restart support)")
		verbose   = flag.Bool("v", false, "log runtime events")
	)
	flag.Parse()

	specs, err := parseGPUs(*gpus)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}

	cfg := gvrt.Config{
		VGPUsPerDevice:  *vgpus,
		EnableMigration: *migrate,
		AutoCheckpoint:  *autoCkpt,
	}
	switch strings.ToLower(*policy) {
	case "fcfs":
		cfg.Policy = gvrt.FCFS{}
	case "sjf":
		cfg.Policy = gvrt.ShortestJobFirst{}
	case "credit":
		cfg.Policy = gvrt.CreditBased{}
	default:
		log.Fatalf("gvrtd: unknown policy %q", *policy)
	}
	if *peer != "" && *threshold > 0 {
		addr := *peer
		cfg.OffloadThreshold = *threshold
		cfg.PeerDial = func() (gvrt.Conn, error) { return gvrt.Dial(addr) }
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			log.Printf("gvrtd: "+format, args...)
		}
	}

	node, err := gvrt.NewLocalNode(gvrt.NewClock(*scale), cfg, specs...)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}
	defer node.Close()

	// Node-restart support (§4.6): restore persisted sessions, and save
	// them again on shutdown. Clients re-attach with Client.Resume.
	if *stateFile != "" {
		if f, err := os.Open(*stateFile); err == nil {
			if err := node.RT.RestoreState(f); err != nil {
				log.Fatalf("gvrtd: restoring %s: %v", *stateFile, err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "gvrtd: restored sessions %v from %s\n",
				node.RT.OrphanSessions(), *stateFile)
		}
	}

	l, err := gvrt.Listen(*listen)
	if err != nil {
		log.Fatalf("gvrtd: %v", err)
	}
	defer l.Close()

	if *stateFile != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			f, err := os.Create(*stateFile)
			if err == nil {
				err = node.RT.SaveState(f)
				f.Close()
			}
			if err != nil {
				log.Printf("gvrtd: saving state: %v", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "gvrtd: state saved to %s\n", *stateFile)
			os.Exit(0)
		}()
	}

	fmt.Fprintf(os.Stderr, "gvrtd: serving %d GPUs (%d vGPUs) on %s (scale %g)\n",
		len(specs), len(specs)**vgpus, l.Addr(), *scale)
	if cfg.OffloadThreshold > 0 {
		fmt.Fprintf(os.Stderr, "gvrtd: offloading to %s beyond queue depth %d\n", *peer, *threshold)
	}

	// Periodically report utilization-style metrics.
	if *verbose {
		go func() {
			for {
				time.Sleep(5 * time.Second)
				m := node.RT.Metrics()
				log.Printf("gvrtd: calls=%d binds=%d swaps=%d migrations=%d offloaded=%d",
					m.CallsServed, m.Binds, m.Memory.SwapOps, m.Migrations, m.Offloaded)
			}
		}()
	}

	node.RT.ServeListener(l)
}
