// Command gvrt-top is a terminal dashboard for a gvrtd daemon: it
// polls the daemon's metrics snapshot (the same StatsCall a cluster
// scheduler would use) and renders per-device utilization, swap and
// launch rates, and interval latency percentiles computed from the
// runtime's histogram deltas.
//
// Usage:
//
//	gvrt-top -addr localhost:7070                 # refresh every 2s
//	gvrt-top -addr localhost:7070 -interval 500ms
//	gvrt-top -addr localhost:7070 -once           # one snapshot, no TUI
//	gvrt-top -addr localhost:7070 -count 10       # ten frames, then exit
//
// Rates and percentiles are computed over the polling interval, so a
// burst of launches shows up as a p99 spike in the frame it happened,
// not averaged away since daemon boot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"gvrt"
)

func main() {
	var (
		addr     = flag.String("addr", "localhost:7070", "gvrtd daemon address")
		interval = flag.Duration("interval", 2*time.Second, "refresh interval (wall time)")
		once     = flag.Bool("once", false, "print one frame and exit (no screen clearing)")
		count    = flag.Int("count", 0, "exit after this many frames (0 = run until interrupted)")
		events   = flag.String("events", "", "operator-plane base URL (e.g. http://localhost:8080): watch its /events stream and refresh the instant the control plane commits a change, instead of waiting out the interval")
		cl       = flag.String("cluster", "", "fleet mode: poll this operator-plane base URL's /cluster rollup (a gvrtd with -fleet) and render per-node and per-tenant views instead of one daemon's devices")
	)
	flag.Parse()

	if *cl != "" {
		runCluster(strings.TrimRight(*cl, "/"), *interval, *once, *count)
		return
	}

	conn, err := gvrt.Dial(*addr)
	if err != nil {
		log.Fatalf("gvrt-top: %v", err)
	}
	c := gvrt.Connect(conn)
	defer c.Close()

	// Control-plane reactivity: store commits arrive on evCh and cut the
	// sleep short, so a tenant/quota/drain change redraws immediately.
	var evCh chan string
	if *events != "" {
		evCh = make(chan string, 16)
		go watchEvents(strings.TrimRight(*events, "/")+"/events", evCh)
	}

	var prev gvrt.RuntimeStats
	havePrev := false
	frames := 0
	lastEvent := ""
	for {
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("gvrt-top: stats: %v", err)
		}
		frame := render(*addr, st, prev, havePrev, *interval)
		if !*once {
			// ANSI home + clear-below keeps the frame flicker-free.
			fmt.Print("\x1b[H\x1b[2J")
		}
		os.Stdout.WriteString(frame)
		if lastEvent != "" {
			fmt.Printf("\nctrl: %s\n", lastEvent)
		}
		prev, havePrev = st, true
		frames++
		if *once || (*count > 0 && frames >= *count) {
			return
		}
		if evCh == nil {
			time.Sleep(*interval)
			continue
		}
		select {
		case ev := <-evCh:
			// Coalesce a burst of commits into one redraw.
			lastEvent = drainEvents(evCh, ev)
		case <-time.After(*interval):
		}
	}
}

// runCluster is the fleet dashboard loop: poll base/cluster (and
// base/slo for burn-rate rows), render per-node and per-tenant rollups
// with interval rates from the previous frame.
func runCluster(base string, interval time.Duration, once bool, count int) {
	var prev gvrt.ClusterStats
	havePrev := false
	frames := 0
	for {
		cs, err := fetchCluster(base)
		if err != nil {
			log.Fatalf("gvrt-top: %s/cluster: %v", base, err)
		}
		slo, _ := fetchSLO(base) // absent SLO engine is not an error
		frame := renderCluster(base, cs, prev, havePrev, slo, interval)
		if !once {
			fmt.Print("\x1b[H\x1b[2J")
		}
		os.Stdout.WriteString(frame)
		prev, havePrev = cs, true
		frames++
		if once || (count > 0 && frames >= count) {
			return
		}
		time.Sleep(interval)
	}
}

// fetchCluster pulls one fleet rollup from the operator plane.
func fetchCluster(base string) (gvrt.ClusterStats, error) {
	var cs gvrt.ClusterStats
	resp, err := http.Get(base + "/cluster")
	if err != nil {
		return cs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cs, fmt.Errorf("status %s (is the daemon running with -fleet?)", resp.Status)
	}
	return cs, json.NewDecoder(resp.Body).Decode(&cs)
}

// fetchSLO pulls the evaluated SLO status rows, if the daemon runs an
// engine (-store): an empty slice otherwise.
func fetchSLO(base string) ([]gvrt.SLOStatus, error) {
	resp, err := http.Get(base + "/slo")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	var rows []gvrt.SLOStatus
	return rows, json.NewDecoder(resp.Body).Decode(&rows)
}

// renderCluster draws one fleet frame: node rows, merged tenant rows
// with interval rates, and any evaluated SLO status. Pure function of
// two snapshots, like render.
func renderCluster(base string, cs, prev gvrt.ClusterStats, havePrev bool, slo []gvrt.SLOStatus, interval time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gvrt-top — cluster via %s — %s\n\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "nodes: %d reachable, %d unreachable\n", len(cs.Nodes), len(cs.Unreachable))
	for name, why := range cs.Unreachable {
		fmt.Fprintf(&b, "  UNREACHABLE %s: %s\n", name, why)
	}
	m := cs.Merged
	fmt.Fprintf(&b, "merged: calls %d  contexts %d  swaps %d  swap %dMB  gpu %.2fs  migrations %d  sheds %d\n",
		m.CallsServed, m.LiveContexts, m.SwapOps, m.SwapBytes>>20,
		float64(m.GPUTimeNS)/1e9, m.Migrations, m.Sheds)

	b.WriteString("\nNODE             CALLS   LAUNCH    GPU s  SWAP MB  QUEUE  CTX\n")
	for _, name := range cs.NodeNames() {
		ns := cs.Nodes[name]
		fmt.Fprintf(&b, "%-14s %7d %8d %8.2f %8d %6d %4d\n",
			name, ns.CallsServed, launches(ns), float64(ns.GPUTimeNS)/1e9,
			ns.SwapBytes>>20, ns.QueueDepth, ns.LiveContexts)
	}

	if len(m.Tenants) > 0 {
		b.WriteString("\nTENANT           SESS   CALLS   LAUNCH    GPU s  SWAP MB  LAUNCH p99")
		if havePrev {
			b.WriteString("   Δcalls/s  Δp99")
		}
		b.WriteByte('\n')
		names := make([]string, 0, len(m.Tenants))
		for t := range m.Tenants {
			names = append(names, t)
		}
		sort.Strings(names)
		for _, t := range names {
			u := m.Tenants[t]
			fmt.Fprintf(&b, "%-14s %6d %7d %8d %8.2f %8d %11s",
				t, u.Sessions, u.Calls, u.Launches, float64(u.GPUTimeNS)/1e9,
				u.SwapBytes>>20, time.Duration(u.Launch.Quantile(0.99)).String())
			if havePrev {
				pu := prev.Merged.Tenants[t]
				secs := interval.Seconds()
				if secs <= 0 {
					secs = 1
				}
				d := u.Launch.Delta(pu.Launch)
				dp99 := "-"
				if d.Count > 0 {
					dp99 = time.Duration(d.Quantile(0.99)).String()
				}
				fmt.Fprintf(&b, "   %8.1f %6s", float64(u.Calls-pu.Calls)/secs, dp99)
			}
			b.WriteByte('\n')
		}
	}

	if len(slo) > 0 {
		b.WriteString("\nSLO              KIND        OBJECTIVE  SHORT-BURN  LONG-BURN  STATE\n")
		for _, s := range slo {
			objective := fmt.Sprintf("%.4g", s.Objective)
			if s.Kind == "launch_p99" {
				objective = time.Duration(int64(s.Objective)).String()
			}
			state := "ok"
			if s.Breaching {
				state = "BREACHING"
			}
			fmt.Fprintf(&b, "%-14s %-14s %9s %11.2f %10.2f  %s\n",
				s.Tenant, s.Kind, objective, s.ShortBurn, s.LongBurn, state)
		}
	}
	return b.String()
}

// drainEvents empties buffered events, returning the newest.
func drainEvents(ch <-chan string, last string) string {
	for {
		select {
		case v := <-ch:
			last = v
		default:
			return last
		}
	}
}

// watchEvents follows the operator plane's /events SSE stream, sending
// each data payload (one store commit) to ch. The connection is retried
// forever — the daemon restarting mid-watch is exactly when an operator
// wants the dashboard to catch up.
func watchEvents(url string, ch chan<- string) {
	for {
		resp, err := http.Get(url)
		if err != nil || resp.StatusCode != http.StatusOK {
			if resp != nil {
				resp.Body.Close()
			}
			time.Sleep(2 * time.Second)
			continue
		}
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if data, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				select {
				case ch <- data:
				default: // dashboard busy; drop — the next frame re-polls anyway
				}
			}
		}
		resp.Body.Close()
		time.Sleep(2 * time.Second)
	}
}

// render draws one frame. It is a pure function of two snapshots so
// the layout is unit-testable without a daemon.
func render(addr string, st, prev gvrt.RuntimeStats, havePrev bool, interval time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gvrt-top — %s — %s\n\n", addr, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "queue %d  contexts %d  calls %d  binds %d  swaps %d  migrations %d  recoveries %d  offloaded %d  sheds %d\n",
		st.QueueDepth, st.LiveContexts, st.CallsServed, st.Binds,
		st.SwapOps, st.Migrations, st.Recoveries, st.Offloaded, st.Sheds)
	if st.MigrationsStarted+st.MigrationsCompleted+st.MigrationsAborted+
		st.FenceRejections+st.LeaseRenewals > 0 {
		fmt.Fprintf(&b, "failover: migrations %d started / %d completed / %d aborted  fenced %d  lease renewals %d\n",
			st.MigrationsStarted, st.MigrationsCompleted, st.MigrationsAborted,
			st.FenceRejections, st.LeaseRenewals)
	}
	if havePrev {
		secs := interval.Seconds()
		if secs <= 0 {
			secs = 1
		}
		fmt.Fprintf(&b, "rates: %.1f calls/s  %.1f launches/s  %.1f swap MB/s\n",
			float64(st.CallsServed-prev.CallsServed)/secs,
			float64(launches(st)-launches(prev))/secs,
			float64(st.SwapBytes-prev.SwapBytes)/secs/1e6)
	}

	b.WriteString("\nDEV MODEL        STATE    VGPU       UTIL  LAUNCH      MEM\n")
	for i, d := range st.Devices {
		state := "healthy"
		if !d.Healthy {
			state = "FAILED"
		}
		util := 0.0
		if havePrev && i < len(prev.Devices) {
			// Busy delta over the interval in model time; the daemon's
			// model clock may run faster than wall time, so clamp to 100%.
			dBusy := float64(d.BusyNS - prev.Devices[i].BusyNS)
			util = dBusy / float64(interval.Nanoseconds()) * 100
			if util > 100 {
				util = 100
			}
		}
		fmt.Fprintf(&b, "%-3d %-12s %-8s %2d/%-2d %s %5.1f%% %7d %4d/%dMB\n",
			d.Index, d.Name, state, d.ActiveVGPUs, d.VGPUs,
			bar(util, 10), util, d.Launches,
			(d.Capacity-d.MemAvailable)>>20, d.Capacity>>20)
	}

	if len(st.Histograms) > 0 {
		fmt.Fprintf(&b, "\n%-26s %9s %12s %12s", "LATENCY", "count", "p50", "p99")
		if havePrev {
			fmt.Fprintf(&b, "   %9s %12s %12s", "Δcount", "Δp50", "Δp99")
		}
		b.WriteByte('\n')
		keys := make([]string, 0, len(st.Histograms))
		for k := range st.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h := st.Histograms[k]
			fmt.Fprintf(&b, "%-26s %9d %12s %12s", k, h.Count,
				fmtVal(k, h.Quantile(0.5)), fmtVal(k, h.Quantile(0.99)))
			if havePrev {
				d := h.Delta(prev.Histograms[k])
				if d.Count > 0 {
					fmt.Fprintf(&b, "   %9d %12s %12s", d.Count,
						fmtVal(k, d.Quantile(0.5)), fmtVal(k, d.Quantile(0.99)))
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// launches sums per-device launch counters.
func launches(st gvrt.RuntimeStats) int64 {
	var n int64
	for _, d := range st.Devices {
		n += d.Launches
	}
	return n
}

// fmtVal renders a histogram value in its unit: bytes for byte-sized
// histograms, model-time duration otherwise.
func fmtVal(key string, v int64) string {
	if key == "swap_bytes" || key == "migration_bytes" {
		return fmt.Sprintf("%dB", v)
	}
	return time.Duration(v).String()
}

// bar renders a width-cell utilization bar.
func bar(pct float64, width int) string {
	filled := int(pct / 100 * float64(width))
	if filled > width {
		filled = width
	}
	if filled < 0 {
		filled = 0
	}
	return "[" + strings.Repeat("|", filled) + strings.Repeat(" ", width-filled) + "]"
}
