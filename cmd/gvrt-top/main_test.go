package main

import (
	"strings"
	"testing"
	"time"

	"gvrt"
)

// frame builds a plausible snapshot for layout tests.
func frame(calls, busyNS, launchN int64, hist map[string]gvrt.HistSnapshot) gvrt.RuntimeStats {
	return gvrt.RuntimeStats{
		CallsServed:  calls,
		QueueDepth:   2,
		LiveContexts: 3,
		SwapBytes:    calls * 1000,
		Devices: []gvrt.DeviceWireStats{{
			Index: 0, Name: "Tesla C2050", Healthy: true,
			BusyNS: busyNS, Launches: launchN,
			ActiveVGPUs: 2, VGPUs: 4,
			MemAvailable: 1 << 30, Capacity: 3 << 30,
		}},
		Histograms: hist,
	}
}

func hist(values ...int64) gvrt.HistSnapshot {
	var out gvrt.HistSnapshot
	for _, v := range values {
		bucket := 0
		for b := 0; b < 63; b++ {
			if v < gvrt.HistogramBucketBound(b) {
				bucket = b
				break
			}
		}
		for len(out.Buckets) <= bucket {
			out.Buckets = append(out.Buckets, 0)
		}
		out.Buckets[bucket]++
		out.Count++
		out.Sum += v
	}
	return out
}

func TestRenderFirstFrame(t *testing.T) {
	st := frame(100, int64(time.Second), 40, map[string]gvrt.HistSnapshot{
		"launch_latency": hist(1000, 2000, 1e6),
	})
	out := render("host:7070", st, gvrt.RuntimeStats{}, false, 2*time.Second)
	for _, want := range []string{"Tesla C2050", "healthy", "2/4", "launch_latency", "queue 2", "contexts 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("first frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "rates:") || strings.Contains(out, "Δcount") {
		t.Errorf("first frame must not show interval columns (no previous snapshot):\n%s", out)
	}
}

func TestRenderInterval(t *testing.T) {
	prev := frame(100, int64(time.Second), 40, map[string]gvrt.HistSnapshot{
		"launch_latency": hist(1000),
	})
	st := frame(150, int64(3*time.Second), 90, map[string]gvrt.HistSnapshot{
		"launch_latency": hist(1000, 1e6, 1e6),
	})
	out := render("host:7070", st, prev, true, 2*time.Second)
	if !strings.Contains(out, "rates: 25.0 calls/s") {
		t.Errorf("interval frame missing call rate (50 calls / 2s):\n%s", out)
	}
	if !strings.Contains(out, "25.0 launches/s") {
		t.Errorf("interval frame missing launch rate:\n%s", out)
	}
	if !strings.Contains(out, "Δcount") {
		t.Errorf("interval frame missing delta columns:\n%s", out)
	}
	// The interval delta holds only the two 1ms observations, so its
	// p50 must sit in the ~1ms log2 bucket even though the cumulative
	// p50 is still ~1µs.
	dp50 := time.Duration(st.Histograms["launch_latency"].Delta(prev.Histograms["launch_latency"]).Quantile(0.5))
	if dp50 < 500*time.Microsecond {
		t.Errorf("delta p50 = %v, want ≥ 500µs (interval observations only)", dp50)
	}
}

func TestRenderFailedDevice(t *testing.T) {
	st := frame(1, 0, 0, nil)
	st.Devices[0].Healthy = false
	out := render("x", st, gvrt.RuntimeStats{}, false, time.Second)
	if !strings.Contains(out, "FAILED") {
		t.Errorf("failed device not flagged:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := bar(0, 4); got != "[    ]" {
		t.Errorf("bar(0) = %q", got)
	}
	if got := bar(100, 4); got != "[||||]" {
		t.Errorf("bar(100) = %q", got)
	}
	if got := bar(250, 4); got != "[||||]" {
		t.Errorf("bar(250) clamps = %q", got)
	}
	if got := bar(-5, 4); got != "[    ]" {
		t.Errorf("bar(-5) clamps = %q", got)
	}
}
