// Failover-torture mode: two journal-backed daemon children — a source
// node and a failover target — run under seeded SIGKILLs at the
// failover plane's crash points, and the verdict requires every kernel
// the source acknowledged before its death to be observable on the new
// owner, with no double executions and the deposed owner's late writes
// rejected with ErrFenced. Scenarios cycle:
//
//   - source SIGKILLed mid-launch (an armed journal crash point): the
//     target promotes every committed session straight from the dead
//     node's journal directory and each one must resume intact;
//
//   - source SIGKILLed mid-transfer (armed migration-transfer crash): a
//     recovered source retries the migration and the target's chunk
//     spool resumes the transfer instead of restarting it;
//
//   - target SIGKILLed mid-import (armed migration-import crash): the
//     restarted target aborts the pending import record at boot, the
//     retry succeeds, and the deposed source fences a late write.
//
//     gvrt-chaos -failover                     # default 6 rounds
//     gvrt-chaos -failover -failover-rounds 3  # CI smoke
//     GVRT_CHAOS_SEED=7 gvrt-chaos -failover   # replay a seeded schedule
package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gvrt"
)

// failoverSessionBase keeps the target's locally-created context IDs
// (its serving connections) far above the source's, so adopted sessions
// keep their original IDs without collision.
const failoverSessionBase = 1 << 20

// failoverScenarios is the kill schedule rounds cycle through. Exactly
// one of srcPoint/dstPoint is armed per scenario.
var failoverScenarios = []struct {
	name     string
	srcPoint string // crash point armed on the source child
	dstPoint string // crash point armed on the target child
}{
	{name: "source SIGKILL mid-launch, journal promotion", srcPoint: string(gvrt.FaultJournalPreSync)},
	{name: "source SIGKILL mid-transfer, resumable retry", srcPoint: string(gvrt.FaultMigrateTransfer)},
	{name: "target SIGKILL mid-import, boot abort + retry", dstPoint: string(gvrt.FaultMigrateImport)},
}

// runFailover executes rounds failover-torture rounds and reports
// failures. Every randomized choice derives from the seed.
func runFailover(seed int64, rounds, sessions, launches int, timeout time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	root, err := os.MkdirTemp("", "gvrt-failover-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(root)

	rng := gvrt.NewRNG(seed)
	fmt.Printf("=== gvrt-chaos failover torture: seed %d, %d rounds ===\n", seed, rounds)
	failures := 0
	for r := 0; r < rounds; r++ {
		sc := failoverScenarios[r%len(failoverScenarios)]
		var nth uint64
		if sc.srcPoint == string(gvrt.FaultJournalPreSync) {
			nth = uint64(3 + rng.Intn(4*launches))
		} else {
			// Hello is frame 1 and every session ships at least three
			// frames (hello, one or more chunks, commit), so [1,3] always
			// lands the crash inside the first session's transfer.
			nth = uint64(1 + rng.Intn(3))
		}
		label := fmt.Sprintf("%s (occurrence %d)", sc.name, nth)
		if err := failoverRound(exe, root, r, sc.srcPoint, sc.dstPoint, nth, rng, sessions, launches, timeout); err != nil {
			fmt.Printf("round %d [%s]: FAIL: %v\n", r, label, err)
			failures++
		} else {
			fmt.Printf("round %d [%s]: ok\n", r, label)
		}
	}
	if failures > 0 {
		fmt.Printf("failover torture: %d/%d rounds FAILED\n", failures, rounds)
		fmt.Printf("reproduce: gvrt-chaos -failover -seed %d (or GVRT_CHAOS_SEED=%d)\n", seed, seed)
		return 1
	}
	fmt.Printf("failover torture: all %d rounds survived; every acked kernel observable after takeover\n", rounds)
	return 0
}

// failoverRound runs one kill → take over → verify cycle with a fresh
// source/target pair over fresh directories.
func failoverRound(exe, root string, r int, srcPoint, dstPoint string, nth uint64,
	rng *gvrt.RNG, sessions, launches int, timeout time.Duration) error {
	srcDir := filepath.Join(root, fmt.Sprintf("round%d-src", r))
	dstDir := filepath.Join(root, fmt.Sprintf("round%d-dst", r))

	// The armed victim always carries a flight recorder: every scenario
	// verdict now includes "the SIGKILL'd node left a parseable black
	// box" (the crash handler dumps it before the process dies).
	dstOpts := childOpts{dir: dstDir, node: "dst", base: failoverSessionBase, migDir: dstDir}
	if dstPoint != "" {
		dstOpts.point, dstOpts.nth = dstPoint, nth
		dstOpts.flight = dstDir
	}
	target, err := startChild(exe, dstOpts, timeout)
	if err != nil {
		return fmt.Errorf("starting target daemon: %v", err)
	}
	defer target.kill()

	srcOpts := childOpts{dir: srcDir, node: "src"}
	if srcPoint != "" {
		srcOpts.point, srcOpts.nth = srcPoint, nth
		srcOpts.flight = srcDir
	}
	source, err := startChild(exe, srcOpts, timeout)
	if err != nil {
		return fmt.Errorf("starting source daemon: %v", err)
	}
	defer source.kill()

	recs := runWorkload(source.addr, rng, sessions, launches)

	if srcPoint == string(gvrt.FaultJournalPreSync) {
		if err := failoverPromotion(srcDir, source, target, recs, timeout); err != nil {
			return err
		}
		return verifyFlightDump(srcDir, "src", 1)
	}

	// Migration scenarios: nothing was armed on the workload's path, so
	// the sessions must have completed cleanly — a setup failure here is
	// a real failure, never a silent skip.
	for i, s := range recs {
		if s.err != nil || s.id == 0 {
			return fmt.Errorf("session %d failed before migration (id %d): %v", i, s.id, s.err)
		}
		if s.acked != launches {
			return fmt.Errorf("session %d acked %d of %d launches with no fault armed", i, s.acked, launches)
		}
	}
	if srcPoint != "" {
		if err := failoverMidTransfer(exe, srcDir, source, target, recs, timeout); err != nil {
			return err
		}
		return verifyFlightDump(srcDir, "src", 1)
	}
	if err := failoverMidImport(exe, dstDir, target, recs, timeout); err != nil {
		return err
	}
	// The target dies on its first migration frames; its call count at
	// crash time is legitimately tiny, so only the parse is asserted.
	return verifyFlightDump(dstDir, "dst", 0)
}

// verifyFlightDump is the flight-recorder half of a round's verdict:
// the armed crash must have left a schema-valid black box for the
// killed node, with at least minCalls served at crash time.
func verifyFlightDump(dir, node string, minCalls int64) error {
	path := filepath.Join(dir, "flight-"+node+".json")
	d, err := gvrt.ReadFlightDump(path)
	if err != nil {
		return fmt.Errorf("flight post-mortem: %v", err)
	}
	if d.Node != node {
		return fmt.Errorf("flight dump names node %q, want %q", d.Node, node)
	}
	if d.Reason != "crash-point" {
		return fmt.Errorf("flight dump reason %q, want crash-point", d.Reason)
	}
	var calls int64
	if d.Stats != nil {
		calls = d.Stats.CallsServed
	}
	if calls < minCalls {
		return fmt.Errorf("flight dump vacuous: %d calls served at crash time, want >= %d",
			calls, minCalls)
	}
	fmt.Printf("  flight post-mortem: %s black box ok (%d ring records, %d calls at crash)\n",
		node, len(d.Records), calls)
	return nil
}

// failoverPromotion is the mid-launch scenario's takeover half: the
// source died at an armed journal crash point; the target adopts every
// committed session from the dead node's journal directory and each one
// must verify there.
func failoverPromotion(srcDir string, source, target *child, recs []*tortureSession, timeout time.Duration) error {
	source.awaitExit(timeout)
	for _, s := range recs {
		if s.client != nil {
			s.client.Close() // source is dead; this only frees the socket
		}
	}

	conn, err := gvrt.Dial(target.addr)
	if err != nil {
		return fmt.Errorf("dialing target: %v", err)
	}
	c := gvrt.Connect(conn)
	adopted, err := c.Adopt(srcDir)
	c.Close()
	if err != nil {
		return fmt.Errorf("promoting from journal dir: %v", err)
	}

	verified, skipped := 0, 0
	for i, s := range recs {
		if s.id == 0 {
			// Crash before the session learned its ID: no durability
			// promise to judge — but a skip is not a pass.
			skipped++
			fmt.Printf("  skip: session %d never learned its ID (%v)\n", i, s.err)
			continue
		}
		if err := verifySession(target.addr, s, false); err != nil {
			return fmt.Errorf("session %d (id %d, %d acked) after promotion: %v", i, s.id, s.acked, err)
		}
		verified++
	}
	if verified == 0 {
		return fmt.Errorf("verdict vacuous: all %d sessions skipped on setup errors; nothing was verified (adopted %d)",
			skipped, adopted)
	}
	fmt.Printf("  promoted %d journal sessions, verified %d on the new owner\n", adopted, verified)
	return nil
}

// failoverMidTransfer drives migrations into the source's armed
// transfer-crash, then proves the retry from a recovered source resumes
// from the target's spool and the deposed source fences late writes.
func failoverMidTransfer(exe, srcDir string, source, target *child, recs []*tortureSession, timeout time.Duration) error {
	migrated := make(map[int64]bool)
	crashSeen := false
	for _, s := range recs {
		if err := s.client.Migrate(target.addr); err != nil {
			crashSeen = true // the armed crash killed the source mid-frame
			break
		}
		migrated[s.id] = true
	}
	if !crashSeen {
		return fmt.Errorf("source survived all %d migrations with a transfer crash armed", len(recs))
	}
	source.awaitExit(timeout)
	for _, s := range recs {
		if s.client != nil {
			s.client.Close()
		}
	}

	doctor, err := startChild(exe, childOpts{dir: srcDir, node: "src"}, timeout)
	if err != nil {
		return fmt.Errorf("starting recovery source: %v", err)
	}
	defer doctor.kill()
	for i, s := range recs {
		if migrated[s.id] {
			continue
		}
		conn, err := gvrt.Dial(doctor.addr)
		if err != nil {
			return fmt.Errorf("dialing recovery source: %v", err)
		}
		c := gvrt.Connect(conn)
		err = c.Resume(s.id)
		if err == nil {
			// Migration checkpoints first, which replays the session's
			// pending kernels — they need their binary on this connection.
			err = c.RegisterFatBinary(tortureBinary())
		} else {
			err = fmt.Errorf("resume on recovery source: %v", err)
		}
		if err == nil {
			if err = c.Migrate(target.addr); err != nil {
				err = fmt.Errorf("migration retry: %v", err)
			}
		}
		if err == nil {
			err = fenceCheck(c, s)
		}
		c.Close()
		if err != nil {
			return fmt.Errorf("session %d (id %d): %v", i, s.id, err)
		}
	}
	return failoverVerify(target.addr, recs)
}

// failoverMidImport drives the first migration into the target's armed
// import-crash, restarts the target (whose boot must abort the pending
// import record), retries every migration against it, and requires the
// deposed source to fence late writes.
func failoverMidImport(exe, dstDir string, target *child, recs []*tortureSession, timeout time.Duration) error {
	first := recs[0]
	if err := first.client.Migrate(target.addr); err == nil {
		return errors.New("migration succeeded though the target was armed to crash mid-import")
	}
	target.awaitExit(timeout)
	stats, err := first.client.Stats()
	if err != nil {
		return fmt.Errorf("source stats after aborted migration: %v", err)
	}
	if stats.MigrationsAborted == 0 {
		return errors.New("source counted no aborted migrations after the target died mid-import")
	}

	doctor, err := startChild(exe, childOpts{dir: dstDir, node: "dst", base: failoverSessionBase, migDir: dstDir}, timeout)
	if err != nil {
		return fmt.Errorf("restarting target: %v", err)
	}
	defer doctor.kill()
	if ops := gvrt.MigrationPendingOps(dstDir); len(ops) != 0 {
		return fmt.Errorf("pending import records survived the target's boot abort: %+v", ops)
	}
	for i, s := range recs {
		if err := s.client.Migrate(doctor.addr); err != nil {
			return fmt.Errorf("session %d (id %d) migration retry after target restart: %v", i, s.id, err)
		}
		if err := fenceCheck(s.client, s); err != nil {
			return fmt.Errorf("session %d (id %d): %v", i, s.id, err)
		}
	}
	for _, s := range recs {
		s.client.Close()
	}
	return failoverVerify(doctor.addr, recs)
}

// fenceCheck issues a late write on a connection whose session just
// migrated away: the deposed owner must reject it with ErrFenced — the
// write must never execute, no matter how soon after takeover it lands.
func fenceCheck(c *gvrt.Client, s *tortureSession) error {
	err := c.Launch(gvrt.LaunchCall{Kernel: "inc", PtrArgs: []gvrt.DevPtr{s.ptr}, Scalars: []uint64{4}})
	if gvrt.ErrorCode(err) != gvrt.ErrFenced {
		return fmt.Errorf("late write on deposed owner = %v, want ErrFenced", err)
	}
	return nil
}

// failoverVerify checks every session on the new owner. Migration
// checkpoints before export, so the count is exact: seed + acked, with
// a double-executed kernel as detectable as a lost one.
func failoverVerify(addr string, recs []*tortureSession) error {
	verified := 0
	for i, s := range recs {
		if err := verifySession(addr, s, true); err != nil {
			return fmt.Errorf("session %d (id %d, %d acked) after takeover: %v", i, s.id, s.acked, err)
		}
		verified++
	}
	if verified == 0 {
		return errors.New("verdict vacuous: no sessions were verified")
	}
	return nil
}
