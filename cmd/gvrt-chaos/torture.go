// Crash-torture mode: gvrt-chaos re-execs itself as a journal-backed
// daemon child, runs a data-checked workload against it over TCP, and
// SIGKILLs the child at an armed journal crash point (pre-fsync,
// post-fsync, mid-compaction — the child kills itself via the fault
// plane's ActCrash, the closest a process gets to losing power at that
// exact boundary). A fresh child then recovers the journal directory
// and every session whose launches were acknowledged must resume with
// its data reflecting every acknowledged kernel — plus at most one
// more, for a commit that became durable just before the crash ate its
// acknowledgement. A torn-tail scenario appends garbage to the journal
// between kill and restart to prove recovery truncates it.
//
//	gvrt-chaos -torture                      # default 8 rounds
//	gvrt-chaos -torture -torture-rounds 4    # CI smoke
//	GVRT_CHAOS_SEED=7 gvrt-chaos -torture    # replay a seeded schedule
package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"gvrt"
)

// Environment contract between the torture parent and its daemon child.
// The failover-torture additions (node/base/migdir) are optional; when
// unset the child behaves exactly as the original crash-torture daemon.
const (
	envTortureChild  = "GVRT_TORTURE_CHILD"  // "1": run as daemon child
	envTortureDir    = "GVRT_TORTURE_DIR"    // journal directory
	envTorturePoint  = "GVRT_TORTURE_POINT"  // armed crash point ("" = none)
	envTortureNth    = "GVRT_TORTURE_NTH"    // 1-based occurrence to crash at
	envTortureNode   = "GVRT_TORTURE_NODE"   // node name for leases/migration ("" = no lease table)
	envTortureBase   = "GVRT_TORTURE_BASE"   // SessionBase for locally-created contexts
	envTortureMigDir = "GVRT_TORTURE_MIGDIR" // migration pending-op/spool directory
	envTortureFlight = "GVRT_TORTURE_FLIGHT" // flight-recorder dump directory ("" = off)
)

// tortureChild is the daemon half: open (and recover) the journal, arm
// the requested crash point with the production SIGKILL handler, print
// the listen address for the parent, serve until killed.
func tortureChild() {
	dir := os.Getenv(envTortureDir)
	var plane *gvrt.FaultPlane
	if point := os.Getenv(envTorturePoint); point != "" {
		nth, err := strconv.ParseUint(os.Getenv(envTortureNth), 10, 64)
		if err != nil || nth == 0 {
			fmt.Fprintf(os.Stderr, "torture child: bad %s: %v\n", envTortureNth, err)
			os.Exit(2)
		}
		plane = gvrt.NewFaultPlane(gvrt.FaultPlan{
			Name: "torture",
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultPoint(point), AtNth: nth, Action: gvrt.FaultActCrash},
			},
		})
	}
	// The flight recorder makes every armed SIGKILL leave a post-mortem:
	// WrapCrash dumps the black box to disk before the process dies.
	var flight *gvrt.FlightRecorder
	onCrash := gvrt.JournalDie
	if fdir := os.Getenv(envTortureFlight); fdir != "" {
		node := os.Getenv(envTortureNode)
		if node == "" {
			node = "torture"
		}
		flight = gvrt.NewFlightRecorder(node, fdir, 0)
		onCrash = flight.WrapCrash(gvrt.JournalDie)
	}
	jnl, rec, err := gvrt.OpenJournal(dir, gvrt.JournalOptions{
		Faults:  plane,
		OnCrash: onCrash,
		// Compact early and often so mid-compaction crash points are
		// reachable within a short torture workload.
		CompactBytes: 8 << 10,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "torture child: journal: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: opening journal: %v\n", err)
		os.Exit(2)
	}

	clock := gvrt.NewClock(1e-7)
	spec := gvrt.DeviceSpec{Name: "torture-gpu", SMs: 4, CoresPerSM: 8, ClockMHz: 1000,
		MemBytes: 1 << 20, Speed: 1, BandwidthBps: 1 << 40}
	dev := gvrt.NewDevice(0, spec, clock)
	crt := gvrt.NewCUDARuntime(clock, dev)
	crt.SetLimits(1024, 0, 0)
	cfg := gvrt.Config{
		VGPUsPerDevice: 4,
		CallOverhead:   -1,
		BindBackoff:    time.Millisecond,
		Faults:         plane,
		NodeName:       os.Getenv(envTortureNode),
		MigrateDir:     os.Getenv(envTortureMigDir),
		Flight:         flight,
	}
	if b := os.Getenv(envTortureBase); b != "" {
		if cfg.SessionBase, err = strconv.ParseInt(b, 10, 64); err != nil {
			fmt.Fprintf(os.Stderr, "torture child: bad %s: %v\n", envTortureBase, err)
			os.Exit(2)
		}
	}
	if cfg.NodeName != "" {
		// Failover-torture children fence mutating calls against a local
		// lease table; the epoch bump that deposes a migrated-away session
		// happens in-process, so no cross-process table is needed.
		cfg.Leases = gvrt.NewLeaseTable(time.Hour, clock.Now)
	}
	rt, err := gvrt.NewRuntime(crt, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: runtime: %v\n", err)
		os.Exit(2)
	}
	if err := rt.RecoverFromJournal(rec); err != nil {
		fmt.Fprintf(os.Stderr, "torture child: recovering: %v\n", err)
		os.Exit(2)
	}
	if err := rt.AttachJournal(jnl); err != nil {
		fmt.Fprintf(os.Stderr, "torture child: attaching journal: %v\n", err)
		os.Exit(2)
	}
	l, err := gvrt.Listen("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "torture child: listen: %v\n", err)
		os.Exit(2)
	}
	// The handshake line the parent blocks on: recovery stats + address.
	fmt.Printf("TORTURE_READY %d %d %s\n",
		len(rec.Images), rec.TornBytes, l.Addr())
	rt.ServeListener(l)
}

// child is one spawned daemon process.
type child struct {
	cmd    *exec.Cmd
	addr   string
	exited chan error
}

// childOpts configures one daemon child spawn.
type childOpts struct {
	dir    string // journal directory
	point  string // armed crash point ("" = none)
	nth    uint64 // 1-based occurrence to crash at
	node   string // node name ("" = plain crash-torture child)
	base   int64  // SessionBase for locally-created contexts
	migDir string // migration pending-op/spool directory
	flight string // flight-recorder dump directory ("" = off)
}

// startChild re-execs this binary as a daemon child, arming crash
// point/nth when o.point is non-empty, and waits for its handshake.
func startChild(exe string, o childOpts, timeout time.Duration) (*child, error) {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		envTortureChild+"=1",
		envTortureDir+"="+o.dir,
		envTorturePoint+"="+o.point,
		envTortureNth+"="+strconv.FormatUint(o.nth, 10),
		envTortureNode+"="+o.node,
		envTortureBase+"="+strconv.FormatInt(o.base, 10),
		envTortureMigDir+"="+o.migDir,
		envTortureFlight+"="+o.flight,
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, exited: make(chan error, 1)}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			var images int
			var torn int64
			var addr string
			if n, _ := fmt.Sscanf(sc.Text(), "TORTURE_READY %d %d %s", &images, &torn, &addr); n == 3 {
				ready <- addr
			}
		}
	}()
	go func() { c.exited <- cmd.Wait() }()
	select {
	case c.addr = <-ready:
		return c, nil
	case <-c.exited:
		return nil, fmt.Errorf("child died before handshake")
	case <-time.After(timeout):
		cmd.Process.Kill()
		return nil, fmt.Errorf("child handshake timed out")
	}
}

// kill SIGKILLs the child (if still alive) and reaps it.
func (c *child) kill() {
	c.cmd.Process.Kill()
	select {
	case <-c.exited:
	case <-time.After(10 * time.Second):
	}
}

// awaitExit waits for the child to die on its own (the armed crash
// point firing); on timeout it hard-kills, which is the same SIGKILL
// from the workload's point of view.
func (c *child) awaitExit(timeout time.Duration) {
	select {
	case <-c.exited:
	case <-time.After(timeout):
		c.kill()
	}
}

// tortureSession is the parent-side record of one workload session: the
// ground truth recovery is judged against.
type tortureSession struct {
	id    int64
	ptr   gvrt.DevPtr
	seed  byte
	wrote bool // the seed MemcpyHD was acknowledged
	acked int  // launches the daemon acknowledged
	err   error
	// client stays open until the victim daemon is dead: an orderly
	// Close would be served as a context release, retiring the session
	// from the journal — the opposite of what a crash test wants.
	client *gvrt.Client
}

// tortureScenarios is the schedule rounds cycle through.
var tortureScenarios = []struct {
	name  string
	point string // "" = kill after the workload completes
	torn  bool   // append garbage to the journal before recovery
}{
	{name: "pre-fsync crash", point: string(gvrt.FaultJournalPreSync)},
	{name: "post-fsync crash", point: string(gvrt.FaultJournalPostSync)},
	{name: "mid-compaction crash", point: string(gvrt.FaultJournalCompact)},
	{name: "kill + torn tail", torn: true},
}

// runTorture executes rounds crash-torture rounds and reports failures.
// Each round gets a fresh journal directory; the scenario schedule and
// every randomized choice derive from the seed.
func runTorture(seed int64, rounds, sessions, launches int, timeout time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	root, err := os.MkdirTemp("", "gvrt-torture-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(root)

	rng := gvrt.NewRNG(seed)
	fmt.Printf("=== gvrt-chaos crash torture: seed %d, %d rounds ===\n", seed, rounds)
	failures := 0
	for r := 0; r < rounds; r++ {
		sc := tortureScenarios[r%len(tortureScenarios)]
		var nth uint64
		switch sc.point {
		case string(gvrt.FaultJournalCompact):
			// Two crash points per compaction: 1 = temp written but not
			// renamed (old state must recover), 2 = renamed but journal not
			// truncated (new state must recover, fence makes stale records
			// no-ops).
			nth = uint64(1 + rng.Intn(2))
		case "":
			// Kill after the workload; every acknowledged launch is durable.
		default:
			nth = uint64(3 + rng.Intn(4*launches))
		}
		dir := filepath.Join(root, fmt.Sprintf("round%d", r))
		label := sc.name
		if nth > 0 {
			label = fmt.Sprintf("%s (occurrence %d)", sc.name, nth)
		}
		if err := tortureRound(exe, dir, sc.point, nth, sc.torn, rng, sessions, launches, timeout); err != nil {
			fmt.Printf("round %d [%s]: FAIL: %v\n", r, label, err)
			failures++
		} else {
			fmt.Printf("round %d [%s]: ok\n", r, label)
		}
	}
	if failures > 0 {
		fmt.Printf("crash torture: %d/%d rounds FAILED\n", failures, rounds)
		fmt.Printf("reproduce: gvrt-chaos -torture -seed %d (or GVRT_CHAOS_SEED=%d)\n", seed, seed)
		return 1
	}
	fmt.Printf("crash torture: all %d rounds survived; every committed session recovered intact\n", rounds)
	return 0
}

// tortureRound runs one crash → recover → verify cycle.
func tortureRound(exe, dir, point string, nth uint64, torn bool, rng *gvrt.RNG,
	sessions, launches int, timeout time.Duration) error {
	victim, err := startChild(exe, childOpts{dir: dir, point: point, nth: nth}, timeout)
	if err != nil {
		return fmt.Errorf("starting victim daemon: %v", err)
	}
	defer victim.kill()

	recs := runWorkload(victim.addr, rng, sessions, launches)
	if point == "" {
		victim.kill() // the scheduled hard kill after a completed workload
	} else {
		victim.awaitExit(timeout)
	}
	for _, s := range recs {
		if s.client != nil {
			s.client.Close() // daemon is dead; this only frees the socket
		}
	}

	if torn {
		// A torn write: garbage bytes where the next record would go.
		garbage := make([]byte, 1+rng.Intn(200))
		for i := range garbage {
			garbage[i] = byte(rng.Intn(256))
		}
		f, err := os.OpenFile(filepath.Join(dir, "journal.wal"), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("injecting torn tail: %v", err)
		}
		f.Write(garbage)
		f.Close()
	}

	// Recovery: a fresh daemon over the same directory, nothing armed.
	doctor, err := startChild(exe, childOpts{dir: dir}, timeout)
	if err != nil {
		return fmt.Errorf("starting recovery daemon: %v", err)
	}
	defer doctor.kill()

	committed, verified, skipped := 0, 0, 0
	for i, s := range recs {
		if s.id == 0 {
			// The session died before it even learned its ID; nothing to
			// judge recovery against — but a skip is not a pass, so it is
			// counted and the round fails if every subcheck skipped.
			skipped++
			fmt.Printf("  skip: session %d never learned its ID (%v)\n", i, s.err)
			continue
		}
		if s.acked > 0 {
			committed++
		}
		if err := verifySession(doctor.addr, s, point == "" || torn); err != nil {
			return fmt.Errorf("session %d (id %d, %d acked): %v", i, s.id, s.acked, err)
		}
		verified++
	}
	if verified == 0 {
		return fmt.Errorf("verdict vacuous: all %d sessions skipped on setup errors; nothing was verified", skipped)
	}
	if committed == 0 {
		fmt.Printf("  note: crash landed before any launch was acknowledged; "+
			"verified %d uncommitted sessions loosely\n", verified)
	}
	return nil
}

// runWorkload drives sessions concurrent data-checked sessions against
// the daemon at addr: each seeds a buffer and issues increments until it
// finishes or the daemon dies under it. Only daemon-acknowledged calls
// count — that is exactly the durability contract under test. Clients
// are left open (an orderly Close would retire the session); the caller
// closes them once the victim is dead.
func runWorkload(addr string, rng *gvrt.RNG, sessions, launches int) []*tortureSession {
	recs := make([]*tortureSession, sessions)
	done := make(chan struct{})
	for i := range recs {
		recs[i] = &tortureSession{seed: byte(64 + i)}
		go func(s *tortureSession, pressure uint64) {
			defer func() { done <- struct{}{} }()
			conn, err := gvrt.Dial(addr)
			if err != nil {
				s.err = err
				return
			}
			c := gvrt.Connect(conn)
			s.client = c
			if s.err = c.RegisterFatBinary(tortureBinary()); s.err != nil {
				return
			}
			if s.ptr, s.err = c.Malloc(pressure); s.err != nil {
				return
			}
			if s.id, s.err = c.SessionID(); s.err != nil {
				return
			}
			if s.err = c.MemcpyHD(s.ptr, []byte{s.seed, s.seed, s.seed, s.seed}); s.err != nil {
				return
			}
			s.wrote = true
			for k := 0; k < launches; k++ {
				if err := c.Launch(gvrt.LaunchCall{
					Kernel: "inc", PtrArgs: []gvrt.DevPtr{s.ptr}, Scalars: []uint64{4},
				}); err != nil {
					s.err = err
					return
				}
				s.acked++
			}
		}(recs[i], uint64(32+rng.Intn(64))<<10)
	}
	for range recs {
		<-done
	}
	return recs
}

// verifySession resumes one session against the recovery daemon and
// checks its bytes. A mid-commit crash may have made one launch durable
// while eating its acknowledgement, so the accepted value is acked or
// acked+1 increments over the seed; after a clean kill (exact=true) it
// must be acked exactly. A post-resume increment must then advance the
// data by exactly one. Sessions with no acknowledged launch carry no
// durability promise: they may legitimately be gone (Resume rejected),
// but if they did survive their bytes must still be consistent.
func verifySession(addr string, s *tortureSession, exact bool) error {
	conn, err := gvrt.Dial(addr)
	if err != nil {
		return fmt.Errorf("dialing recovery daemon: %v", err)
	}
	c := gvrt.Connect(conn)
	defer c.Close()
	if err := c.Resume(s.id); err != nil {
		if s.acked == 0 && gvrt.ErrorCode(err) == gvrt.ErrInvalidValue {
			return nil // never became durable; an allowed outcome
		}
		return fmt.Errorf("resume: %v", err)
	}
	if err := c.RegisterFatBinary(tortureBinary()); err != nil {
		return fmt.Errorf("re-registering binary: %v", err)
	}
	out, err := c.MemcpyDH(s.ptr, 4)
	if err != nil {
		return fmt.Errorf("reading recovered data: %v", err)
	}
	if len(out) == 0 {
		// The entry recovered without data — only legitimate when the
		// seed write was never acknowledged.
		if s.wrote {
			return fmt.Errorf("recovered data empty after an acknowledged write")
		}
		out = []byte{0, 0, 0, 0}
	}
	if len(out) != 4 {
		return fmt.Errorf("recovered %d bytes, want 4", len(out))
	}
	var want []byte
	switch {
	case !s.wrote:
		// The seed write was never acknowledged: the buffer may hold the
		// seed (write durable, ack lost) or still be zero.
		want = []byte{0, s.seed}
	case exact:
		want = []byte{s.seed + byte(s.acked)}
	default:
		want = []byte{s.seed + byte(s.acked), s.seed + byte(s.acked) + 1}
	}
	base := out[0]
	okBase := false
	for _, w := range want {
		okBase = okBase || base == w
	}
	if !okBase {
		return fmt.Errorf("recovered byte = %d, want one of %v (%d acked, wrote=%v)",
			base, want, s.acked, s.wrote)
	}
	for i := 1; i < 4; i++ {
		if out[i] != base {
			return fmt.Errorf("recovered data not uniform: %v", out)
		}
	}
	if err := c.Launch(gvrt.LaunchCall{
		Kernel: "inc", PtrArgs: []gvrt.DevPtr{s.ptr}, Scalars: []uint64{4},
	}); err != nil {
		return fmt.Errorf("post-recovery launch: %v", err)
	}
	out, err = c.MemcpyDH(s.ptr, 4)
	if err != nil {
		return fmt.Errorf("post-recovery read: %v", err)
	}
	if out[0] != base+1 {
		return fmt.Errorf("post-recovery byte = %d, want %d", out[0], base+1)
	}
	return nil
}

func tortureBinary() gvrt.FatBinary {
	return gvrt.FatBinary{
		ID:      chaosBinID,
		Kernels: []gvrt.KernelMeta{{Name: "inc", BaseTime: time.Millisecond}},
	}
}
