// Control-plane torture mode: gvrt-chaos re-execs itself as a daemon
// child that owns a transactional control-plane store and serves the
// operator REST surface, then SIGKILLs it mid-mutation at an armed
// crash point (between op steps, pre-fsync, post-fsync, mid-store-
// compaction). A fresh child recovers the store directory and the
// parent audits it field by field over REST: every mutation must be
// fully applied or fully rolled back — no quota with mismatched
// fields, no tenant half-deleted, no device stranded "draining" after
// boot resolution ran. A resume-disabled scenario proves the stuck-op
// path: pending operations surface under /ops as "stuck" and the REST
// cleanup endpoint rolls every one back.
//
//	gvrt-chaos -ctrlplane                     # default 5 rounds
//	gvrt-chaos -ctrlplane -ctrlplane-rounds 3 # CI smoke
//	GVRT_CHAOS_SEED=7 gvrt-chaos -ctrlplane   # replay a seeded schedule
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"gvrt"
)

// Environment contract between the ctrlplane-torture parent and its
// daemon child.
const (
	envCtrlChild    = "GVRT_CTRL_CHILD"    // "1": run as control-plane child
	envCtrlDir      = "GVRT_CTRL_DIR"      // store directory
	envCtrlPoint    = "GVRT_CTRL_POINT"    // armed crash point ("" = none)
	envCtrlNth      = "GVRT_CTRL_NTH"      // 1-based occurrence to crash at
	envCtrlNoResume = "GVRT_CTRL_NORESUME" // "1": mark pending ops stuck at boot
)

// ctrlTenants is the tenant set every round's mutation script creates.
var ctrlTenants = []string{"t0", "t1", "t2"}

// ctrlQuotaUpdates is how many quota mutations the script issues; each
// update k sets MaxSessions=k, HostBytes=k<<20 so a recovered quota's
// internal consistency is checkable from the record alone.
const ctrlQuotaUpdates = 9

// ctrlChild is the daemon half: open (and recover) the control-plane
// store, resolve pending operations, arm the requested crash point with
// the production SIGKILL handler, serve the operator REST plane, print
// the listen address for the parent, run until killed.
func ctrlChild() {
	dir := os.Getenv(envCtrlDir)
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ctrl child: "+format+"\n", args...)
	}
	var plane *gvrt.FaultPlane
	if point := os.Getenv(envCtrlPoint); point != "" {
		nth, err := strconv.ParseUint(os.Getenv(envCtrlNth), 10, 64)
		if err != nil || nth == 0 {
			logf("bad %s: %v", envCtrlNth, err)
			os.Exit(2)
		}
		plane = gvrt.NewFaultPlane(gvrt.FaultPlan{
			Name: "ctrl-torture",
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultPoint(point), AtNth: nth, Action: gvrt.FaultActCrash},
			},
		})
	}
	store, err := gvrt.OpenCtrlStore(dir, gvrt.CtrlStoreOptions{
		Faults:  plane,
		OnCrash: gvrt.JournalDie,
		// Compact early so mid-compaction crash points are reachable
		// within a short mutation script.
		CompactBytes: 2 << 10,
		Logf:         func(f string, a ...any) { logf("store: "+f, a...) },
	})
	if err != nil {
		logf("opening store: %v", err)
		os.Exit(2)
	}

	clock := gvrt.NewClock(1e-7)
	spec := gvrt.DeviceSpec{Name: "ctrl-gpu", SMs: 4, CoresPerSM: 8, ClockMHz: 1000,
		MemBytes: 1 << 20, Speed: 1, BandwidthBps: 1 << 40}
	devs := []*gvrt.Device{gvrt.NewDevice(0, spec, clock), gvrt.NewDevice(1, spec, clock)}
	crt := gvrt.NewCUDARuntime(clock, devs...)
	crt.SetLimits(1024, 0, 0)
	rt, err := gvrt.NewRuntime(crt, gvrt.Config{
		VGPUsPerDevice: 2,
		CallOverhead:   -1,
		BindBackoff:    time.Millisecond,
		Faults:         plane,
	})
	if err != nil {
		logf("runtime: %v", err)
		os.Exit(2)
	}
	mgr := gvrt.NewCtrlManager(store, gvrt.CtrlManagerOptions{
		Hooks:         rt,
		Faults:        plane,
		OnCrash:       gvrt.JournalDie,
		Now:           clock.Now,
		DisableResume: os.Getenv(envCtrlNoResume) == "1",
		Logf:          func(f string, a ...any) { logf("ctrl: "+f, a...) },
	})
	if err := mgr.Resume(); err != nil {
		logf("resuming pending operations: %v", err)
		os.Exit(2)
	}
	if err := mgr.SyncDevices(); err != nil {
		logf("syncing device records: %v", err)
		os.Exit(2)
	}
	if err := mgr.ApplyStored(); err != nil {
		logf("re-applying stored state: %v", err)
	}
	if err := mgr.RegisterNode("ctrl-torture", rt.DeviceCount()); err != nil {
		logf("registering node: %v", err)
		os.Exit(2)
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		logf("listen: %v", err)
		os.Exit(2)
	}
	// The handshake line the parent blocks on.
	fmt.Printf("CTRL_READY %s\n", l.Addr())
	http.Serve(l, gvrt.NewOpsHandler(gvrt.OpsSource{
		Stats: rt.StatsSnapshot,
		Now:   clock.Now,
		Name:  "ctrl-torture",
		Ctrl:  mgr,
	}))
}

// ctrlChildOpts configures one control-plane child spawn.
type ctrlChildOpts struct {
	dir      string // store directory
	point    string // armed crash point ("" = none)
	nth      uint64 // 1-based occurrence to crash at
	noResume bool   // mark pending ops stuck at boot instead of resolving
}

// startCtrlChild re-execs this binary as a control-plane child and
// waits for its handshake.
func startCtrlChild(exe string, o ctrlChildOpts, timeout time.Duration) (*child, error) {
	cmd := exec.Command(exe)
	noResume := "0"
	if o.noResume {
		noResume = "1"
	}
	cmd.Env = append(os.Environ(),
		envCtrlChild+"=1",
		envCtrlDir+"="+o.dir,
		envCtrlPoint+"="+o.point,
		envCtrlNth+"="+strconv.FormatUint(o.nth, 10),
		envCtrlNoResume+"="+noResume,
	)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, exited: make(chan error, 1)}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			var addr string
			if n, _ := fmt.Sscanf(sc.Text(), "CTRL_READY %s", &addr); n == 1 {
				ready <- addr
			}
		}
	}()
	go func() { c.exited <- cmd.Wait() }()
	select {
	case c.addr = <-ready:
		return c, nil
	case <-c.exited:
		return nil, fmt.Errorf("child died before handshake")
	case <-time.After(timeout):
		cmd.Process.Kill()
		return nil, fmt.Errorf("child handshake timed out")
	}
}

// ctrlTruth is the parent-side ground truth one round's recovery is
// judged against: which mutations the daemon acknowledged (the HTTP
// response is written only after the terminal transaction is fsynced,
// so an ack is a durability promise) versus merely issued.
type ctrlTruth struct {
	createIssued                map[string]bool
	createAcked                 map[string]bool
	quotaIssued                 map[string][]int // update indices issued, in order
	quotaAcked                  map[string]int   // highest acknowledged update index
	drainIssued, drainAcked     bool             // device 0
	readmitIssued, readmitAcked bool             // device 0
	deleteIssued, deleteAcked   bool             // tenant t2
	// interrupted: a request died on the wire — the armed crash point
	// killed the daemon mid-mutation, which is the event under test.
	interrupted bool
}

func newCtrlTruth() *ctrlTruth {
	return &ctrlTruth{
		createIssued: make(map[string]bool),
		createAcked:  make(map[string]bool),
		quotaIssued:  make(map[string][]int),
		quotaAcked:   make(map[string]int),
	}
}

// ctrlScenarios is the schedule rounds cycle through. The final
// scenario restarts with resume disabled so the crash's pending ops
// surface as stuck and must be cleaned over REST.
var ctrlScenarios = []struct {
	name     string
	point    string
	noResume bool
}{
	{name: "mid-op-step crash", point: string(gvrt.FaultCtrlOpStep)},
	{name: "pre-fsync crash", point: string(gvrt.FaultStorePreSync)},
	{name: "post-fsync crash", point: string(gvrt.FaultStorePostSync)},
	{name: "mid-compaction crash", point: string(gvrt.FaultStoreCompact)},
	{name: "stuck ops + REST cleanup", point: string(gvrt.FaultCtrlOpStep), noResume: true},
}

// runCtrlTorture executes rounds control-plane torture rounds and
// reports failures. Each round gets a fresh store directory; the
// scenario schedule and every randomized choice derive from the seed.
func runCtrlTorture(seed int64, rounds int, timeout time.Duration) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	root, err := os.MkdirTemp("", "gvrt-ctrl-torture-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	defer os.RemoveAll(root)

	rng := gvrt.NewRNG(seed)
	fmt.Printf("=== gvrt-chaos control-plane torture: seed %d, %d rounds ===\n", seed, rounds)
	failures, interrupted := 0, 0
	for r := 0; r < rounds; r++ {
		sc := ctrlScenarios[r%len(ctrlScenarios)]
		// The mutation script issues ~15 operations (~42 step boundaries,
		// ~42 commits after ~3 boot commits); pick an occurrence that
		// lands inside it.
		var nth uint64
		switch sc.point {
		case string(gvrt.FaultStoreCompact):
			// Two crash points per compaction: 1 = snapshot durable but
			// not renamed, 2 = renamed but WAL not truncated.
			nth = uint64(1 + rng.Intn(2))
		case string(gvrt.FaultCtrlOpStep):
			nth = uint64(1 + rng.Intn(36))
		default:
			nth = uint64(4 + rng.Intn(36))
		}
		dir := filepath.Join(root, fmt.Sprintf("round%d", r))
		label := fmt.Sprintf("%s (occurrence %d)", sc.name, nth)
		hit, err := ctrlRound(exe, dir, sc.point, nth, sc.noResume, timeout)
		if hit {
			interrupted++
		}
		if err != nil {
			fmt.Printf("round %d [%s]: FAIL: %v\n", r, label, err)
			failures++
		} else {
			fmt.Printf("round %d [%s]: ok\n", r, label)
		}
	}
	if interrupted == 0 && failures == 0 {
		fmt.Printf("verdict vacuous: no round's crash point interrupted a mutation; nothing was verified\n")
		failures++
	}
	if failures > 0 {
		fmt.Printf("control-plane torture: %d/%d rounds FAILED\n", failures, rounds)
		fmt.Printf("reproduce: gvrt-chaos -ctrlplane -seed %d (or GVRT_CHAOS_SEED=%d)\n", seed, seed)
		return 1
	}
	fmt.Printf("control-plane torture: all %d rounds survived; every mutation fully applied or fully rolled back\n", rounds)
	return 0
}

// ctrlRound runs one crash → recover → audit cycle. It reports whether
// the crash actually interrupted a mutation (the interesting case) and
// any verdict violation.
func ctrlRound(exe, dir, point string, nth uint64, noResume bool, timeout time.Duration) (bool, error) {
	victim, err := startCtrlChild(exe, ctrlChildOpts{dir: dir, point: point, nth: nth}, timeout)
	if err != nil {
		return false, fmt.Errorf("starting victim daemon: %v", err)
	}
	defer victim.kill()

	tr := newCtrlTruth()
	if err := runCtrlScript("http://"+victim.addr, tr); err != nil {
		return tr.interrupted, fmt.Errorf("mutation script: %v", err)
	}
	if tr.interrupted {
		victim.awaitExit(timeout) // the armed point killed it; reap
	} else {
		victim.kill() // point never fired; a hard kill after full ack
	}

	// Recovery: a fresh daemon over the same directory, nothing armed.
	doctor, err := startCtrlChild(exe, ctrlChildOpts{dir: dir, noResume: noResume}, timeout)
	if err != nil {
		return tr.interrupted, fmt.Errorf("starting recovery daemon: %v", err)
	}
	defer doctor.kill()
	if err := ctrlVerify("http://"+doctor.addr, tr, noResume); err != nil {
		return tr.interrupted, err
	}
	return tr.interrupted, nil
}

// runCtrlScript drives the round's deterministic mutation script
// against the victim, recording which mutations were acknowledged.
// A transport error means the armed crash point killed the daemon
// mid-request: the script stops and the round moves on to recovery.
// A live daemon answering with an unexpected status is a verdict
// failure, not a crash.
func runCtrlScript(base string, tr *ctrlTruth) error {
	client := &http.Client{Timeout: 10 * time.Second}

	for _, name := range ctrlTenants {
		tr.createIssued[name] = true
		ok, err := ctrlDo(client, tr, "POST", base+"/tenants",
			map[string]string{"name": name}, http.StatusCreated)
		if err != nil || tr.interrupted {
			return err
		}
		if ok {
			tr.createAcked[name] = true
		}
	}
	for k := 1; k <= ctrlQuotaUpdates; k++ {
		t := ctrlTenants[(k-1)%len(ctrlTenants)]
		tr.quotaIssued[t] = append(tr.quotaIssued[t], k)
		ok, err := ctrlDo(client, tr, "PUT", base+"/quotas/"+t,
			map[string]any{"max_sessions": k, "host_bytes": uint64(k) << 20}, http.StatusOK)
		if err != nil || tr.interrupted {
			return err
		}
		if ok {
			tr.quotaAcked[t] = k
		}
	}
	tr.drainIssued = true
	ok, err := ctrlDo(client, tr, "POST", base+"/devices/0/drain", nil, http.StatusOK)
	if err != nil || tr.interrupted {
		return err
	}
	tr.drainAcked = ok
	tr.readmitIssued = true
	ok, err = ctrlDo(client, tr, "POST", base+"/devices/0/readmit", nil, http.StatusOK)
	if err != nil || tr.interrupted {
		return err
	}
	tr.readmitAcked = ok
	tr.deleteIssued = true
	ok, err = ctrlDo(client, tr, "DELETE", base+"/tenants/t2", nil, http.StatusNoContent)
	if err != nil || tr.interrupted {
		return err
	}
	tr.deleteAcked = ok
	return nil
}

// ctrlDo issues one REST mutation. Transport errors set tr.interrupted
// (the daemon died under the request); an unexpected status from a live
// daemon is returned as a hard error.
func ctrlDo(client *http.Client, tr *ctrlTruth, method, url string, body any, want int) (bool, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return false, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return false, err
	}
	resp, err := client.Do(req)
	if err != nil {
		tr.interrupted = true
		return false, nil
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		return false, fmt.Errorf("%s %s: status %d (want %d): %s",
			method, url, resp.StatusCode, want, bytes.TrimSpace(out))
	}
	return true, nil
}

// ctrlOpsResp mirrors the GET /ops envelope.
type ctrlOpsResp struct {
	Ops      []gvrt.CtrlOp     `json:"ops"`
	Counters gvrt.CtrlCounters `json:"counters"`
}

// ctrlVerify audits the recovered store over REST, field by field,
// against the parent's ground truth. With resume enabled the doctor's
// boot must have resolved every pending op; with resume disabled the
// crash's pending ops must be listed stuck and the cleanup endpoint
// must roll back every one.
func ctrlVerify(base string, tr *ctrlTruth, noResume bool) error {
	client := &http.Client{Timeout: 10 * time.Second}

	var ops ctrlOpsResp
	if err := ctrlGet(client, base+"/ops", &ops); err != nil {
		return err
	}
	if noResume {
		for _, op := range ops.Ops {
			if op.State != "stuck" {
				return fmt.Errorf("resume disabled: op %d (%s) in state %q, want stuck", op.ID, op.Kind, op.State)
			}
		}
		if len(ops.Ops) > 0 {
			var cleaned struct {
				Cleaned int    `json:"cleaned"`
				Error   string `json:"error"`
			}
			resp, err := client.Post(base+"/ops/cleanup", "application/json", nil)
			if err != nil {
				return fmt.Errorf("cleanup: %v", err)
			}
			err = json.NewDecoder(resp.Body).Decode(&cleaned)
			resp.Body.Close()
			if err != nil {
				return fmt.Errorf("cleanup: decoding response: %v", err)
			}
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("cleanup: status %d: %s", resp.StatusCode, cleaned.Error)
			}
			if cleaned.Cleaned != len(ops.Ops) {
				return fmt.Errorf("cleanup rolled back %d ops, want %d", cleaned.Cleaned, len(ops.Ops))
			}
			fmt.Printf("  cleaned %d stuck ops over REST\n", cleaned.Cleaned)
		}
		if err := ctrlGet(client, base+"/ops", &ops); err != nil {
			return err
		}
	}
	if len(ops.Ops) != 0 {
		return fmt.Errorf("%d operations still pending after boot resolution: %+v", len(ops.Ops), ops.Ops)
	}

	// Tenants: all-or-nothing per the ack ledger.
	var tenants []gvrt.CtrlTenant
	if err := ctrlGet(client, base+"/tenants", &tenants); err != nil {
		return err
	}
	present := make(map[string]bool)
	for _, t := range tenants {
		present[t.Name] = true
		if !tr.createIssued[t.Name] {
			return fmt.Errorf("tenant %q exists but was never created", t.Name)
		}
	}
	for _, name := range ctrlTenants {
		deleted := name == "t2" && tr.deleteIssued
		switch {
		case name == "t2" && tr.deleteAcked:
			if present[name] {
				return fmt.Errorf("tenant %q present after acknowledged delete", name)
			}
		case tr.createAcked[name] && !deleted:
			if !present[name] {
				return fmt.Errorf("tenant %q missing after acknowledged create", name)
			}
		}
	}

	// Quotas: each surviving record must be internally consistent
	// (HostBytes derived from the same update as MaxSessions — the
	// no-half-applied-quota invariant), must match an update the parent
	// actually issued, and must be at least as new as the last ack.
	var quotas []gvrt.CtrlQuota
	if err := ctrlGet(client, base+"/quotas", &quotas); err != nil {
		return err
	}
	quotaOf := make(map[string]gvrt.CtrlQuota)
	for _, q := range quotas {
		quotaOf[q.Tenant] = q
		if q.HostBytes != uint64(q.MaxSessions)<<20 {
			return fmt.Errorf("HALF-APPLIED quota for %q: max_sessions=%d host_bytes=%d (want %d)",
				q.Tenant, q.MaxSessions, q.HostBytes, uint64(q.MaxSessions)<<20)
		}
		issued := false
		for _, k := range tr.quotaIssued[q.Tenant] {
			issued = issued || k == q.MaxSessions
		}
		if !issued {
			return fmt.Errorf("quota for %q has max_sessions=%d, never issued", q.Tenant, q.MaxSessions)
		}
		if q.MaxSessions < tr.quotaAcked[q.Tenant] {
			return fmt.Errorf("quota for %q regressed to update %d, acknowledged %d",
				q.Tenant, q.MaxSessions, tr.quotaAcked[q.Tenant])
		}
	}
	for _, name := range ctrlTenants {
		if tr.quotaAcked[name] == 0 {
			continue
		}
		_, haveQ := quotaOf[name]
		if name == "t2" && tr.deleteIssued {
			// Tenant and quota are deleted in one transaction: they must
			// disappear together or not at all.
			if haveQ != present[name] {
				return fmt.Errorf("tenant t2 torn delete: tenant present=%v quota present=%v", present[name], haveQ)
			}
			continue
		}
		if !haveQ {
			return fmt.Errorf("quota for %q missing after acknowledged update %d", name, tr.quotaAcked[name])
		}
	}

	// Devices: after boot resolution no device may be stranded
	// "draining", and acknowledged transitions must hold.
	var devs []gvrt.CtrlDeviceRec
	if err := ctrlGet(client, base+"/devices", &devs); err != nil {
		return err
	}
	state := make(map[int]string)
	for _, d := range devs {
		state[d.ID] = d.State
		if d.State != "active" && d.State != "drained" {
			return fmt.Errorf("device %d stranded in state %q after boot resolution", d.ID, d.State)
		}
	}
	if len(devs) != 2 {
		return fmt.Errorf("store lists %d devices, want 2", len(devs))
	}
	if state[1] != "active" {
		return fmt.Errorf("untouched device 1 in state %q, want active", state[1])
	}
	switch {
	case tr.readmitAcked:
		if state[0] != "active" {
			return fmt.Errorf("device 0 in state %q after acknowledged readmit", state[0])
		}
	case tr.drainAcked && !tr.readmitIssued:
		if state[0] != "drained" {
			return fmt.Errorf("device 0 in state %q after acknowledged drain", state[0])
		}
	}

	// The recovered daemon must report itself ready.
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return nil
}

// ctrlGet fetches a JSON resource, failing on any non-200 answer.
func ctrlGet(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("GET %s: decoding: %v", url, err)
	}
	return nil
}
