// Command gvrt-chaos runs a data-checked job storm against an
// in-process gvrt runtime under a deterministic fault plan, then prints
// the post-mortem: per-job verdicts, the fired fault schedule, the
// trace-ring tail and the runtime's metrics. Every run is replayable
// from its seed alone:
//
//	gvrt-chaos -plan storm                 # default seed
//	gvrt-chaos -plan storm -seed 1234      # replay an exact run
//	GVRT_CHAOS_SEED=1234 gvrt-chaos        # same, CI-style
//	gvrt-chaos -plan memory -jobs 64       # swap-area failure plan
//	gvrt-chaos -plan none                  # control run, no faults
//
// Exit status is 0 when every job completed or failed with a clean
// resource error and no data corruption occurred; 1 otherwise (and on a
// hang, after -timeout of wall time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gvrt"
)

const chaosBinID = "gvrt-chaos-bin"

func init() {
	gvrt.RegisterKernelImpl(chaosBinID, "inc", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := 0; i < int(scalars[0]); i++ {
			buf[i]++
		}
		return nil
	})
}

// plans maps -plan names to rule sets. The storm plan mirrors the
// TestChaos storm; the memory plan starves the swap area instead.
func plans(seed int64) map[string]gvrt.FaultPlan {
	return map[string]gvrt.FaultPlan{
		"storm": {
			Name: "storm",
			Seed: seed,
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultDeviceExec, Label: "gpu0", AtNth: 8, Action: gvrt.FaultActFailDevice},
				{Point: gvrt.FaultDeviceExec, Label: "gpu1", AtNth: 20, Action: gvrt.FaultActFailDevice},
				{Point: gvrt.FaultDeviceDMA, Prob: 0.05, Action: gvrt.FaultActDelay, Delay: 2 * time.Millisecond},
				{Point: gvrt.FaultDeviceMalloc, Prob: 0.02, After: 8, MaxFires: 3, Action: gvrt.FaultActError},
				{Point: gvrt.FaultDispatch, Prob: 0.02, Action: gvrt.FaultActDelay, Delay: time.Millisecond},
			},
		},
		"memory": {
			Name: "memory",
			Seed: seed,
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultSwapWrite, Prob: 0.1, Action: gvrt.FaultActError},
				{Point: gvrt.FaultSwapAlloc, Prob: 0.05, Action: gvrt.FaultActError},
				// After skips the vGPU reservation allocations made while
				// the runtime boots, so the storm hits jobs, not startup.
				{Point: gvrt.FaultDeviceMalloc, Prob: 0.05, After: 8, Action: gvrt.FaultActError},
			},
		},
		"none": {Name: "none", Seed: seed},
	}
}

func main() {
	var (
		jobs     = flag.Int("jobs", 32, "concurrent jobs in the storm")
		kernels  = flag.Int("kernels", 6, "kernel launches per job")
		devices  = flag.Int("devices", 3, "simulated GPUs")
		vgpus    = flag.Int("vgpus", 2, "virtual GPUs per device")
		seed     = flag.Int64("seed", defaultSeed(), "fault-plan and workload seed (or set GVRT_CHAOS_SEED)")
		planName = flag.String("plan", "storm", "fault plan: storm | memory | none")
		scale    = flag.Float64("scale", 1e-7, "wall seconds per model second")
		traceN   = flag.Int("trace", 24, "trace-ring events to print in the post-mortem")
		perfetto = flag.String("perfetto", "", "write the run's spans and events as Chrome trace-event JSON here (load at ui.perfetto.dev)")
		timeout  = flag.Duration("timeout", 60*time.Second, "wall-time watchdog before declaring a hang")

		torture         = flag.Bool("torture", false, "crash-torture mode: SIGKILL a journal-backed daemon at armed crash points and verify every committed session recovers")
		tortureRounds   = flag.Int("torture-rounds", 8, "crash-torture rounds (scenarios cycle: pre-fsync, post-fsync, mid-compaction, torn tail)")
		tortureSessions = flag.Int("torture-sessions", 3, "concurrent sessions per torture round")
		tortureLaunches = flag.Int("torture-launches", 12, "kernel launches per torture session")

		failoverMode   = flag.Bool("failover", false, "failover-torture mode: SIGKILL a source/target node pair at armed failover crash points and verify every acked kernel is observable after takeover, with deposed writes fenced")
		failoverRounds = flag.Int("failover-rounds", 6, "failover-torture rounds (scenarios cycle: source kill mid-launch, source kill mid-transfer, target kill mid-import); sessions/launches reuse the -torture-* flags")

		ctrlMode   = flag.Bool("ctrlplane", false, "control-plane torture mode: SIGKILL a store-backed daemon mid-mutation at armed crash points and verify every REST mutation is fully applied or fully rolled back after restart")
		ctrlRounds = flag.Int("ctrlplane-rounds", 5, "control-plane torture rounds (scenarios cycle: mid-op-step, pre-fsync, post-fsync, mid-compaction, stuck-ops + REST cleanup)")

		flightRead = flag.String("flight-read", "", "post-mortem mode: read a flight-recorder dump (flight-<node>.json) and print the black-box ring, histogram deltas and final stats, then exit")
	)
	flag.Parse()

	// Re-exec'd as the torture daemon child?
	if os.Getenv(envTortureChild) == "1" {
		tortureChild()
		return
	}
	if os.Getenv(envCtrlChild) == "1" {
		ctrlChild()
		return
	}
	if *flightRead != "" {
		os.Exit(readFlight(*flightRead))
	}
	if *torture {
		os.Exit(runTorture(*seed, *tortureRounds, *tortureSessions, *tortureLaunches, *timeout))
	}
	if *failoverMode {
		os.Exit(runFailover(*seed, *failoverRounds, *tortureSessions, *tortureLaunches, *timeout))
	}
	if *ctrlMode {
		os.Exit(runCtrlTorture(*seed, *ctrlRounds, *timeout))
	}

	plan, ok := plans(*seed)[*planName]
	if !ok {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: unknown plan %q (storm | memory | none)\n", *planName)
		os.Exit(2)
	}
	plane := gvrt.NewFaultPlane(plan)
	rec := gvrt.NewTraceRecorder(4096)

	clock := gvrt.NewClock(*scale)
	// Record each fired fault as a zero-length span, so a Perfetto
	// export of a replayed seed lines the injected faults up against
	// the recovery spans they triggered.
	plane.SetTrace(rec, clock.Now)
	spec := gvrt.DeviceSpec{Name: "chaos-gpu", SMs: 4, CoresPerSM: 8, ClockMHz: 1000,
		MemBytes: 1 << 20, Speed: 1, BandwidthBps: 1 << 40}
	devs := make([]*gvrt.Device, *devices)
	for i := range devs {
		devs[i] = gvrt.NewDevice(i, spec, clock)
	}
	crt := gvrt.NewCUDARuntime(clock, devs...)
	// Tiny 1 MiB devices keep the storm under memory pressure; shrink the
	// per-context reservation accordingly, before the runtime carves vGPUs.
	crt.SetLimits(1024, 0, 0)
	rt, err := gvrt.NewRuntime(crt, gvrt.Config{
		VGPUsPerDevice: *vgpus,
		CallOverhead:   -1,
		BindBackoff:    time.Millisecond,
		AutoCheckpoint: 5 * time.Millisecond,
		Trace:          rec,
		Faults:         plane,
	})
	if err != nil {
		// A plan can legitimately kill the runtime at boot (e.g. a
		// device-malloc denial hitting a vGPU reservation); keep the run
		// reproducible by reporting the plan and seed even here.
		fmt.Fprintf(os.Stderr, "gvrt-chaos: runtime boot failed under plan %q seed %d: %v\n%s",
			plan.Name, *seed, err, plane)
		os.Exit(1)
	}
	node := &gvrt.LocalNode{ClockV: clock, CRT: crt, RT: rt}
	defer node.Close()

	var completed, failedClean, failedDirty atomic.Int64
	rng := gvrt.NewRNG(*seed)
	var wg sync.WaitGroup
	for j := 0; j < *jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if err := runJob(node, rng.Fork(fmt.Sprintf("job%d", j)), j, *kernels); err != nil {
				if cleanResourceError(err) {
					failedClean.Add(1)
				} else {
					failedDirty.Add(1)
					fmt.Fprintf(os.Stderr, "job %d: UNCLEAN: %v\n", j, err)
				}
				return
			}
			completed.Add(1)
		}(j)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	hung := false
	select {
	case <-done:
	case <-time.After(*timeout):
		hung = true
	}

	fmt.Printf("=== gvrt-chaos: plan %q seed %d ===\n", plan.Name, *seed)
	fmt.Printf("jobs: %d completed, %d failed clean, %d failed UNCLEAN, hung=%v\n",
		completed.Load(), failedClean.Load(), failedDirty.Load(), hung)
	fmt.Printf("\n--- fired fault schedule ---\n%s", plane)
	replayed := replayVerified(plan, plane)
	if replayed {
		fmt.Printf("schedule replay: verified pure against seed %d\n", *seed)
	}
	m := node.RT.Metrics()
	fmt.Printf("\n--- runtime metrics ---\n")
	fmt.Printf("calls=%d binds=%d swaps=%d/%d migrations=%d failures=%d recoveries=%d replays=%d\n",
		m.CallsServed, m.Binds, m.InterAppSwaps, m.IntraAppSwaps,
		m.Migrations, m.DeviceFailures, m.Recoveries, m.Replays)
	fmt.Printf("readmissions=%d breaker-trips=%d retries=%d sheds=%d\n",
		m.Readmissions, m.BreakerTrips, m.RetriesSpent, m.Sheds)
	events := rec.Snapshot()
	if n := len(events); n > *traceN {
		events = events[n-*traceN:]
	}
	fmt.Printf("\n--- trace ring (last %d events) ---\n", len(events))
	for _, e := range events {
		fmt.Printf("  %s\n", e)
	}
	recovered := true
	if !hung {
		recovered = recoveryVerdict(node, devs, rec)
	}

	exported := true
	if *perfetto != "" {
		if err := writePerfetto(*perfetto, plan.Name, *seed, rec); err != nil {
			fmt.Fprintf(os.Stderr, "gvrt-chaos: perfetto export: %v\n", err)
			exported = false
		} else {
			fmt.Printf("\nperfetto trace written to %s (%d spans, %d events) — load at ui.perfetto.dev\n",
				*perfetto, len(rec.Spans()), len(rec.Snapshot()))
		}
	}

	fmt.Printf("\nreproduce this exact run: gvrt-chaos -plan %s -seed %d (or GVRT_CHAOS_SEED=%d)\n",
		plan.Name, *seed, *seed)

	if hung || failedDirty.Load() > 0 || !recovered || !replayed || !exported {
		os.Exit(1)
	}
}

// writePerfetto renders the trace ring — phase spans, fault spans and
// instant events — as Chrome trace-event JSON.
func writePerfetto(path, planName string, seed int64, rec *gvrt.TraceRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := gvrt.WriteChromeTrace(f, gvrt.ChromeProcess{
		Name:   fmt.Sprintf("gvrt-chaos plan %s seed %d", planName, seed),
		Spans:  rec.Spans(),
		Events: rec.Snapshot(),
	})
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// replayVerified checks the determinism invariant behind seed replay:
// whether the n-th occurrence at a hook fires is a pure function of
// (seed, point, label, n). It rebuilds a fresh plane from the plan,
// feeds it the per-hook occurrence counts this run observed, and
// requires the identical faults to fire at the identical occurrences.
// The counts themselves are runtime dynamics — once a device fails and
// its load redistributes, another device's tally can differ between
// runs of the same seed — but the decision table never does, which is
// what makes a CI failure reproducible from its seed line.
func replayVerified(plan gvrt.FaultPlan, ran *gvrt.FaultPlane) bool {
	replay := gvrt.NewFaultPlane(plan)
	for key, n := range ran.Occurrences() {
		point, label, _ := strings.Cut(key, "/")
		h := replay.Hook(gvrt.FaultPoint(point), label)
		if h == nil {
			fmt.Printf("schedule replay: hook %q missing from a fresh plane\n", key)
			return false
		}
		for i := uint64(0); i < n; i++ {
			h.Check()
		}
	}
	group := func(p *gvrt.FaultPlane) map[string][]gvrt.FaultFired {
		out := make(map[string][]gvrt.FaultFired)
		for _, f := range p.Schedule() {
			k := string(f.Point) + "/" + f.Label
			out[k] = append(out[k], f)
		}
		return out
	}
	ran2, rep := group(ran), group(replay)
	ok := true
	for key, fs := range ran2 {
		rs := rep[key]
		if len(fs) != len(rs) {
			fmt.Printf("schedule replay: DIVERGED at %s: %d fired vs %d on replay\n", key, len(fs), len(rs))
			ok = false
			continue
		}
		for i := range fs {
			if fs[i] != rs[i] {
				fmt.Printf("schedule replay: DIVERGED at %s: %s vs %s\n", key, fs[i], rs[i])
				ok = false
			}
		}
	}
	return ok
}

// recoveryVerdict is the self-healing half of the post-mortem: it
// clears the sticky device faults the plan injected (the simulated
// operator swap / driver reset), waits for the runtime's health monitor
// to re-admit every restored device, and reports the per-device
// time-to-recovery in model time measured from the failure event to the
// matching re-admission event in the trace ring. The run fails if a
// healthy-again device is never handed back to the waiting list.
func recoveryVerdict(node *gvrt.LocalNode, devs []*gvrt.Device, rec *gvrt.TraceRecorder) bool {
	fmt.Printf("\n--- recovery verdict ---\n")
	var failed []*gvrt.Device
	for _, d := range devs {
		if d.Failed() {
			failed = append(failed, d)
		}
	}
	if len(failed) == 0 {
		fmt.Printf("no device left failed; nothing to recover\n")
		return true
	}
	base := node.RT.Metrics().Readmissions
	for _, d := range failed {
		d.Restore()
	}
	// The health monitor probes on its own model-time cadence; give it a
	// generous wall-time allowance before declaring recovery broken.
	deadline := time.Now().Add(10 * time.Second)
	for node.RT.Metrics().Readmissions-base < int64(len(failed)) {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	ok := true
	events := rec.Snapshot()
	for _, d := range failed {
		id := d.ID()
		failT := time.Duration(-1)
		recT := time.Duration(-1)
		for _, e := range events {
			if e.Device != id {
				continue
			}
			switch {
			case e.Kind == gvrt.TraceFailure && failT < 0:
				failT = e.Time
			case e.Kind == gvrt.TraceRecovery && e.Detail == "device re-admitted":
				recT = e.Time
			}
		}
		switch {
		case recT < 0:
			fmt.Printf("device %d: NEVER RE-ADMITTED after restore\n", id)
			ok = false
		case failT >= 0:
			fmt.Printf("device %d: re-admitted, time-to-recovery %.3fs model time\n",
				id, (recT - failT).Seconds())
		default:
			fmt.Printf("device %d: re-admitted at %.3fs (failure event evicted from ring)\n",
				id, recT.Seconds())
		}
	}
	if ok {
		fmt.Printf("all %d failed devices re-admitted\n", len(failed))
	}
	return ok
}

// defaultSeed reads GVRT_CHAOS_SEED, falling back to 1.
func defaultSeed() int64 {
	if s := os.Getenv("GVRT_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// runJob pushes 4 data-checked bytes plus a randomized pressure
// allocation through kernels increments, verifying the result.
func runJob(node *gvrt.LocalNode, rng *gvrt.RNG, j, kernels int) error {
	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      chaosBinID,
		Kernels: []gvrt.KernelMeta{{Name: "inc", BaseTime: time.Millisecond}},
	}); err != nil {
		return err
	}
	p, err := c.Malloc(uint64(32+rng.Intn(64)) << 10)
	if err != nil {
		return err
	}
	seed := byte(j)
	if err := c.MemcpyHD(p, []byte{seed, seed, seed, seed}); err != nil {
		return err
	}
	for k := 0; k < kernels; k++ {
		if err := c.Launch(gvrt.LaunchCall{Kernel: "inc", PtrArgs: []gvrt.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
			return err
		}
	}
	out, err := c.MemcpyDH(p, 4)
	if err != nil {
		return err
	}
	want := seed + byte(kernels)
	for i := 0; i < 4; i++ {
		if out[i] != want {
			return fmt.Errorf("data corruption: byte %d = %d, want %d", i, out[i], want)
		}
	}
	return nil
}

// cleanResourceError reports whether err is an acceptable way for a job
// to die under chaos: a resource exhausted or torn down, never an
// internal inconsistency.
func cleanResourceError(err error) bool {
	switch gvrt.ErrorCode(err) {
	case gvrt.ErrMemoryAllocation, gvrt.ErrNoDevice, gvrt.ErrDeviceUnavailable,
		gvrt.ErrSwapAllocation, gvrt.ErrConnectionClosed:
		return true
	}
	return false
}
