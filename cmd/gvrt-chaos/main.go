// Command gvrt-chaos runs a data-checked job storm against an
// in-process gvrt runtime under a deterministic fault plan, then prints
// the post-mortem: per-job verdicts, the fired fault schedule, the
// trace-ring tail and the runtime's metrics. Every run is replayable
// from its seed alone:
//
//	gvrt-chaos -plan storm                 # default seed
//	gvrt-chaos -plan storm -seed 1234      # replay an exact run
//	GVRT_CHAOS_SEED=1234 gvrt-chaos        # same, CI-style
//	gvrt-chaos -plan memory -jobs 64       # swap-area failure plan
//	gvrt-chaos -plan none                  # control run, no faults
//
// Exit status is 0 when every job completed or failed with a clean
// resource error and no data corruption occurred; 1 otherwise (and on a
// hang, after -timeout of wall time).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gvrt"
)

const chaosBinID = "gvrt-chaos-bin"

func init() {
	gvrt.RegisterKernelImpl(chaosBinID, "inc", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := 0; i < int(scalars[0]); i++ {
			buf[i]++
		}
		return nil
	})
}

// plans maps -plan names to rule sets. The storm plan mirrors the
// TestChaos storm; the memory plan starves the swap area instead.
func plans(seed int64) map[string]gvrt.FaultPlan {
	return map[string]gvrt.FaultPlan{
		"storm": {
			Name: "storm",
			Seed: seed,
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultDeviceExec, Label: "gpu0", AtNth: 8, Action: gvrt.FaultActFailDevice},
				{Point: gvrt.FaultDeviceExec, Label: "gpu1", AtNth: 20, Action: gvrt.FaultActFailDevice},
				{Point: gvrt.FaultDeviceDMA, Prob: 0.05, Action: gvrt.FaultActDelay, Delay: 2 * time.Millisecond},
				{Point: gvrt.FaultDeviceMalloc, Prob: 0.02, After: 8, MaxFires: 3, Action: gvrt.FaultActError},
				{Point: gvrt.FaultDispatch, Prob: 0.02, Action: gvrt.FaultActDelay, Delay: time.Millisecond},
			},
		},
		"memory": {
			Name: "memory",
			Seed: seed,
			Rules: []gvrt.FaultRule{
				{Point: gvrt.FaultSwapWrite, Prob: 0.1, Action: gvrt.FaultActError},
				{Point: gvrt.FaultSwapAlloc, Prob: 0.05, Action: gvrt.FaultActError},
				// After skips the vGPU reservation allocations made while
				// the runtime boots, so the storm hits jobs, not startup.
				{Point: gvrt.FaultDeviceMalloc, Prob: 0.05, After: 8, Action: gvrt.FaultActError},
			},
		},
		"none": {Name: "none", Seed: seed},
	}
}

func main() {
	var (
		jobs     = flag.Int("jobs", 32, "concurrent jobs in the storm")
		kernels  = flag.Int("kernels", 6, "kernel launches per job")
		devices  = flag.Int("devices", 3, "simulated GPUs")
		vgpus    = flag.Int("vgpus", 2, "virtual GPUs per device")
		seed     = flag.Int64("seed", defaultSeed(), "fault-plan and workload seed (or set GVRT_CHAOS_SEED)")
		planName = flag.String("plan", "storm", "fault plan: storm | memory | none")
		scale    = flag.Float64("scale", 1e-7, "wall seconds per model second")
		traceN   = flag.Int("trace", 24, "trace-ring events to print in the post-mortem")
		timeout  = flag.Duration("timeout", 60*time.Second, "wall-time watchdog before declaring a hang")
	)
	flag.Parse()

	plan, ok := plans(*seed)[*planName]
	if !ok {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: unknown plan %q (storm | memory | none)\n", *planName)
		os.Exit(2)
	}
	plane := gvrt.NewFaultPlane(plan)
	rec := gvrt.NewTraceRecorder(4096)

	clock := gvrt.NewClock(*scale)
	spec := gvrt.DeviceSpec{Name: "chaos-gpu", SMs: 4, CoresPerSM: 8, ClockMHz: 1000,
		MemBytes: 1 << 20, Speed: 1, BandwidthBps: 1 << 40}
	devs := make([]*gvrt.Device, *devices)
	for i := range devs {
		devs[i] = gvrt.NewDevice(i, spec, clock)
	}
	crt := gvrt.NewCUDARuntime(clock, devs...)
	// Tiny 1 MiB devices keep the storm under memory pressure; shrink the
	// per-context reservation accordingly, before the runtime carves vGPUs.
	crt.SetLimits(1024, 0, 0)
	rt, err := gvrt.NewRuntime(crt, gvrt.Config{
		VGPUsPerDevice: *vgpus,
		CallOverhead:   -1,
		BindBackoff:    time.Millisecond,
		AutoCheckpoint: 5 * time.Millisecond,
		Trace:          rec,
		Faults:         plane,
	})
	if err != nil {
		// A plan can legitimately kill the runtime at boot (e.g. a
		// device-malloc denial hitting a vGPU reservation); keep the run
		// reproducible by reporting the plan and seed even here.
		fmt.Fprintf(os.Stderr, "gvrt-chaos: runtime boot failed under plan %q seed %d: %v\n%s",
			plan.Name, *seed, err, plane)
		os.Exit(1)
	}
	node := &gvrt.LocalNode{ClockV: clock, CRT: crt, RT: rt}
	defer node.Close()

	var completed, failedClean, failedDirty atomic.Int64
	rng := gvrt.NewRNG(*seed)
	var wg sync.WaitGroup
	for j := 0; j < *jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			if err := runJob(node, rng.Fork(fmt.Sprintf("job%d", j)), j, *kernels); err != nil {
				if cleanResourceError(err) {
					failedClean.Add(1)
				} else {
					failedDirty.Add(1)
					fmt.Fprintf(os.Stderr, "job %d: UNCLEAN: %v\n", j, err)
				}
				return
			}
			completed.Add(1)
		}(j)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	hung := false
	select {
	case <-done:
	case <-time.After(*timeout):
		hung = true
	}

	fmt.Printf("=== gvrt-chaos: plan %q seed %d ===\n", plan.Name, *seed)
	fmt.Printf("jobs: %d completed, %d failed clean, %d failed UNCLEAN, hung=%v\n",
		completed.Load(), failedClean.Load(), failedDirty.Load(), hung)
	fmt.Printf("\n--- fired fault schedule ---\n%s", plane)
	m := node.RT.Metrics()
	fmt.Printf("\n--- runtime metrics ---\n")
	fmt.Printf("calls=%d binds=%d swaps=%d/%d migrations=%d failures=%d recoveries=%d replays=%d\n",
		m.CallsServed, m.Binds, m.InterAppSwaps, m.IntraAppSwaps,
		m.Migrations, m.DeviceFailures, m.Recoveries, m.Replays)
	events := rec.Snapshot()
	if n := len(events); n > *traceN {
		events = events[n-*traceN:]
	}
	fmt.Printf("\n--- trace ring (last %d events) ---\n", len(events))
	for _, e := range events {
		fmt.Printf("  %s\n", e)
	}
	fmt.Printf("\nreproduce this exact run: gvrt-chaos -plan %s -seed %d (or GVRT_CHAOS_SEED=%d)\n",
		plan.Name, *seed, *seed)

	if hung || failedDirty.Load() > 0 {
		os.Exit(1)
	}
}

// defaultSeed reads GVRT_CHAOS_SEED, falling back to 1.
func defaultSeed() int64 {
	if s := os.Getenv("GVRT_CHAOS_SEED"); s != "" {
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v
		}
	}
	return 1
}

// runJob pushes 4 data-checked bytes plus a randomized pressure
// allocation through kernels increments, verifying the result.
func runJob(node *gvrt.LocalNode, rng *gvrt.RNG, j, kernels int) error {
	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      chaosBinID,
		Kernels: []gvrt.KernelMeta{{Name: "inc", BaseTime: time.Millisecond}},
	}); err != nil {
		return err
	}
	p, err := c.Malloc(uint64(32+rng.Intn(64)) << 10)
	if err != nil {
		return err
	}
	seed := byte(j)
	if err := c.MemcpyHD(p, []byte{seed, seed, seed, seed}); err != nil {
		return err
	}
	for k := 0; k < kernels; k++ {
		if err := c.Launch(gvrt.LaunchCall{Kernel: "inc", PtrArgs: []gvrt.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
			return err
		}
	}
	out, err := c.MemcpyDH(p, 4)
	if err != nil {
		return err
	}
	want := seed + byte(kernels)
	for i := 0; i < 4; i++ {
		if out[i] != want {
			return fmt.Errorf("data corruption: byte %d = %d, want %d", i, out[i], want)
		}
	}
	return nil
}

// cleanResourceError reports whether err is an acceptable way for a job
// to die under chaos: a resource exhausted or torn down, never an
// internal inconsistency.
func cleanResourceError(err error) bool {
	switch gvrt.ErrorCode(err) {
	case gvrt.ErrMemoryAllocation, gvrt.ErrNoDevice, gvrt.ErrDeviceUnavailable,
		gvrt.ErrSwapAllocation, gvrt.ErrConnectionClosed:
		return true
	}
	return false
}
