// Flight-recorder post-mortem reader: `gvrt-chaos -flight-read <path>`
// loads a black-box dump a crashed (or drained) node left behind and
// prints what the node saw in its final moments — the ring of cold-path
// events, the histogram deltas since the previous dump, and the stats
// snapshot at dump time. Exit status 0 means the dump is schema-valid.
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"gvrt"
)

// readFlight loads, validates and prints one dump. Returns an exit
// code: a corrupt or wrong-schema dump is a hard failure so CI can
// assert "the SIGKILL'd node left a parseable black box" with a single
// invocation.
func readFlight(path string) int {
	d, err := gvrt.ReadFlightDump(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gvrt-chaos: %v\n", err)
		return 1
	}
	fmt.Printf("=== flight dump %s ===\n", path)
	fmt.Printf("node %s  reason %q  wall %s  seq %d\n",
		d.Node, d.Reason, d.Wall.Format(time.RFC3339Nano), d.Seq)

	fmt.Printf("\n--- black-box ring (%d records) ---\n", len(d.Records))
	if dropped := d.Seq - uint64(len(d.Records)); dropped > 0 {
		fmt.Printf("(%d older records overwritten by the ring)\n", dropped)
	}
	for _, r := range d.Records {
		line := fmt.Sprintf("  #%-5d %12s  %-16s", r.Seq, r.Model, r.Kind)
		if r.Ctx != 0 {
			line += fmt.Sprintf(" ctx=%d", r.Ctx)
		}
		if r.Device != 0 {
			line += fmt.Sprintf(" dev=%d", r.Device)
		}
		if r.Detail != "" {
			line += "  " + r.Detail
		}
		fmt.Println(line)
	}

	if len(d.Hists) > 0 {
		fmt.Printf("\n--- histogram deltas since previous dump ---\n")
		keys := make([]string, 0, len(d.Hists))
		for k := range d.Hists {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  %-26s %9s %12s %12s\n", "FAMILY", "count", "p50", "p99")
		for _, k := range keys {
			h := d.Hists[k]
			if h.Count == 0 {
				continue
			}
			fmt.Printf("  %-26s %9d %12s %12s\n", k, h.Count,
				fmtFlightVal(k, h.Quantile(0.5)), fmtFlightVal(k, h.Quantile(0.99)))
		}
	}

	if s := d.Stats; s != nil {
		fmt.Printf("\n--- stats at dump time ---\n")
		fmt.Printf("  calls=%d contexts=%d queue=%d binds=%d swaps=%d swapMB=%d migrations=%d\n",
			s.CallsServed, s.LiveContexts, s.QueueDepth, s.Binds,
			s.SwapOps, s.SwapBytes>>20, s.Migrations)
		fmt.Printf("  fenced=%d sheds=%d recoveries=%d gpu=%.3fs\n",
			s.FenceRejections, s.Sheds, s.Recoveries, float64(s.GPUTimeNS)/1e9)
		if len(s.Tenants) > 0 {
			names := make([]string, 0, len(s.Tenants))
			for t := range s.Tenants {
				names = append(names, t)
			}
			sort.Strings(names)
			for _, t := range names {
				u := s.Tenants[t]
				fmt.Printf("  tenant %-12s calls=%d launches=%d gpu=%.3fs swapMB=%d\n",
					t, u.Calls, u.Launches, float64(u.GPUTimeNS)/1e9, u.SwapBytes>>20)
			}
		}
	}
	return 0
}

// fmtFlightVal renders a histogram value in its family's unit, the
// same convention as gvrt-top.
func fmtFlightVal(key string, v int64) string {
	switch key {
	case "swap_bytes", "migration_bytes", "dedup_saved":
		return fmt.Sprintf("%dB", v)
	}
	return time.Duration(v).String()
}
