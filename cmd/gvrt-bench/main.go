// Command gvrt-bench is the repository's macro-benchmark: it drives
// thousands of concurrent client sessions against freshly built
// single- and multi-node simulated clusters and records the runtime's
// framework throughput as one benchfmt trajectory file (BENCH_<n>.json,
// one per PR, never overwritten — see EXPERIMENTS.md).
//
// The headline scenarios run at clock scale 1e-9, which makes modeled
// GPU time vanish against wall time: what remains is the cost of the
// runtime itself — dispatch, binding, the memory manager and the
// transport — exactly the paths the per-device sharding work targets.
// Latency quantiles come from the runtime's Timings histograms
// converted to wall-clock microseconds (model time × clock scale).
//
// Usage:
//
//	gvrt-bench -pr 6 -out BENCH_6.json            # full trajectory run
//	gvrt-bench -quick -out /tmp/bench.json        # CI smoke scale
//	gvrt-bench -quick -baseline BENCH_6.json      # + p99 regression gate
//	gvrt-bench -validate BENCH_6.json             # schema check only
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/benchfmt"
	"gvrt/internal/core"
	"gvrt/internal/cudart"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
	"gvrt/internal/workload"
)

// benchScale makes modeled time negligible against wall time so the
// measurement isolates framework overhead (same choice as the repo's
// micro-benchmarks in bench_test.go).
const benchScale = 1e-9

type sizes struct {
	sessions int // concurrent client sessions (multi-device)
	iters    int // h2d+launch iterations per session
	nodeSess int // sessions for the multi-node scenario
	swapSess int // sessions for the swap-pressure scenario
	swapIter int // launches per swap-pressure session
	mixJobs  int // jobs for the paper-mix scenario
}

func fullSizes() sizes  { return sizes{2000, 20, 400, 6, 40, 48} }
func quickSizes() sizes { return sizes{200, 10, 80, 4, 10, 12} }

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced scale for CI smoke runs")
		out      = flag.String("out", "", "write the report to this file (default stdout)")
		pr       = flag.Int("pr", 6, "PR ordinal recorded in the report")
		label    = flag.String("label", "", "free-form label for the code state measured")
		only     = flag.String("scenario", "", "comma-separated scenario filter (default all)")
		sessions = flag.Int("sessions", 0, "override multi-device session count")
		seed     = flag.Int64("seed", 1, "workload seed for the paper-mix scenario")
		baseline = flag.String("baseline", "", "compare p99 launch latency against this report")
		maxRatio = flag.Float64("max-p99-ratio", 2.0, "regression gate for -baseline")
		validate = flag.String("validate", "", "validate this report file and exit")
		hist     = flag.Bool("hist", false, "dump swap-path histogram quantiles to stderr")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the scenario runs to this file")
		attrGate = flag.Bool("attr-gate", false, "attribution overhead gate: run swap-pressure and multi-device twice (sessions joined to tenants vs not), best of 3 each, and fail if attribution costs more than 1-attr-min-ratio of calls/sec")
		attrMin  = flag.Float64("attr-min-ratio", 0.98, "minimum attributed/plain calls-per-sec ratio for -attr-gate")
	)
	flag.Parse()
	dumpHist = *hist

	if *validate != "" {
		if _, err := benchfmt.ReadFile(*validate); err != nil {
			fatalf("validate: %v", err)
		}
		fmt.Printf("%s: valid %s report\n", *validate, benchfmt.Schema)
		return
	}

	sz := fullSizes()
	if *quick {
		sz = quickSizes()
	}
	if *sessions > 0 {
		sz.sessions = *sessions
	}

	if *attrGate {
		os.Exit(runAttrGate(sz, *attrMin))
	}

	type scenarioFn struct {
		name string
		run  func(sizes, int64) (benchfmt.Scenario, error)
	}
	all := []scenarioFn{
		{"multi-device", runMultiDevice},
		{"multi-node", runMultiNode},
		{"swap-pressure", runSwapPressure},
		{"paper-mix", runPaperMix},
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	rep := &benchfmt.Report{Schema: benchfmt.Schema, PR: *pr, Label: *label, Quick: *quick}
	for _, sc := range all {
		if len(want) > 0 && !want[sc.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "gvrt-bench: running %s...\n", sc.name)
		s, err := sc.run(sz, *seed)
		if err != nil {
			fatalf("%s: %v", sc.name, err)
		}
		fmt.Fprintf(os.Stderr, "gvrt-bench: %s: %.0f calls/sec, launch p50/p99 %.1f/%.1f us\n",
			s.Name, s.CallsPerSec, s.LaunchP50US, s.LaunchP99US)
		rep.Scenarios = append(rep.Scenarios, s)
	}

	if err := benchfmt.Validate(rep); err != nil {
		fatalf("emitted report invalid: %v", err)
	}
	b, err := benchfmt.Encode(rep)
	if err != nil {
		fatalf("%v", err)
	}
	if *out == "" {
		os.Stdout.Write(b)
	} else if err := os.WriteFile(*out, b, 0o644); err != nil {
		fatalf("write %s: %v", *out, err)
	}

	if *baseline != "" {
		base, err := benchfmt.ReadFile(*baseline)
		if err != nil {
			fatalf("baseline: %v", err)
		}
		if bad := benchfmt.CompareP99(base, rep, *maxRatio); len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintf(os.Stderr, "gvrt-bench: REGRESSION: %s\n", m)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gvrt-bench: p99 gate vs %s passed (<= %.1fx)\n", *baseline, *maxRatio)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "gvrt-bench: "+format+"\n", args...)
	os.Exit(1)
}

// runAttrGate is the attribution overhead gate: the swap-pressure and
// multi-device scenarios run as an in-process A/B — every session
// joined to one of two tenants (full attribution: counters, histograms
// and the ctx→bundle binding on every launch) versus plain tenantless
// sessions — interleaved, best wall-clock of 5 runs per side. The gate
// fails if the attributed side's calls/sec falls below minRatio of the
// plain side's, i.e. if attribution costs more than (1-minRatio) of
// dispatch throughput.
func runAttrGate(sz sizes, minRatio float64) int {
	type scen struct {
		name string
		run  func(sizes, int64) (benchfmt.Scenario, error)
	}
	scens := []scen{
		{"swap-pressure", runSwapPressure},
		{"multi-device", runMultiDevice},
	}
	const rounds = 5
	code := 0
	for _, sc := range scens {
		best := map[bool]float64{}
		// Interleave plain/attributed rounds so machine noise (turbo,
		// page cache, co-tenants) hits both sides alike.
		for r := 0; r < rounds; r++ {
			for _, attributed := range []bool{false, true} {
				gateTenants = 0
				if attributed {
					gateTenants = 2
				}
				s, err := sc.run(sz, 1)
				gateTenants = 0
				if err != nil {
					fatalf("attr-gate %s (attributed=%v): %v", sc.name, attributed, err)
				}
				if s.CallsPerSec > best[attributed] {
					best[attributed] = s.CallsPerSec
				}
			}
		}
		ratio := best[true] / best[false]
		fmt.Fprintf(os.Stderr,
			"gvrt-bench: attr-gate %s: attributed %.0f vs plain %.0f calls/sec (ratio %.4f, floor %.4f)\n",
			sc.name, best[true], best[false], ratio, minRatio)
		if ratio < minRatio {
			fmt.Fprintf(os.Stderr,
				"gvrt-bench: attr-gate FAIL: %s attribution costs %.2f%% of throughput (budget %.2f%%)\n",
				sc.name, (1-ratio)*100, (1-minRatio)*100)
			code = 1
		}
	}
	if code == 0 {
		fmt.Fprintf(os.Stderr, "gvrt-bench: attr-gate passed: per-tenant attribution within budget on both scenarios\n")
	}
	return code
}

// node bundles one freshly built simulated node.
type node struct {
	clock *sim.Clock
	crt   *cudart.Runtime
	rt    *core.Runtime
}

func newNode(scale float64, cfg core.Config, specs ...gpu.Spec) (*node, error) {
	clock := sim.NewClock(scale)
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	rt, err := core.New(crt, cfg)
	if err != nil {
		return nil, err
	}
	return &node{clock: clock, crt: crt, rt: rt}, nil
}

func (n *node) client() *frontend.Client {
	c, s := transport.Pipe()
	go n.rt.Serve(s)
	return frontend.Connect(c)
}

// benchBinary is the fat binary every synthetic session registers: one
// fast kernel so launch cost is dominated by the dispatch path.
func benchBinary() api.FatBinary {
	return api.FatBinary{
		ID: "gvrt-bench",
		Kernels: []api.KernelMeta{
			{Name: "spin", BaseTime: 50 * time.Microsecond},
		},
	}
}

// quantilesUS converts a model-time histogram snapshot into wall-clock
// microsecond p50/p99.
func quantilesUS(h trace.HistSnapshot, scale float64) (p50, p99 float64) {
	toUS := scale / 1e3 // model ns -> wall us
	return float64(h.Quantile(0.50)) * toUS, float64(h.Quantile(0.99)) * toUS
}

// fill populates the latency fields of a scenario from a runtime's
// timing histograms.
func fill(s *benchfmt.Scenario, t *trace.Timings, scale float64) {
	s.LaunchP50US, s.LaunchP99US = quantilesUS(t.Launch.Snapshot(), scale)
	s.QueueWaitP50US, s.QueueWaitP99US = quantilesUS(t.QueueWait.Snapshot(), scale)
	s.BindWaitP50US, s.BindWaitP99US = quantilesUS(t.BindWait.Snapshot(), scale)
}

// gateTenants, when positive, makes every bench session join tenant
// "tenant<i mod gateTenants>" — the attributed side of the -attr-gate
// A/B comparison. Zero (the default) keeps sessions tenantless, which
// is the hot path every other scenario measures.
var gateTenants int

// tenantFor maps a session index to its -attr-gate tenant ("" = none).
func tenantFor(i int) string {
	if gateTenants <= 0 {
		return ""
	}
	return fmt.Sprintf("tenant%d", i%gateTenants)
}

// session runs one synthetic client lifecycle: register, allocate two
// buffers, iters rounds of h2d + launch, then free and exit. A
// non-empty tenant joins the session to it first (attribution on).
func session(c *frontend.Client, iters int, bufBytes uint64, tenant string) error {
	defer c.Close()
	if err := c.RegisterFatBinary(benchBinary()); err != nil {
		return err
	}
	if tenant != "" {
		if err := c.SetTenant(tenant); err != nil {
			return err
		}
	}
	a, err := c.Malloc(bufBytes)
	if err != nil {
		return err
	}
	b, err := c.Malloc(bufBytes)
	if err != nil {
		return err
	}
	launch := api.LaunchCall{
		Kernel:  "spin",
		Grid:    api.Dim3{X: 32},
		Block:   api.Dim3{X: 128},
		PtrArgs: []api.DevPtr{a, b},
	}
	for i := 0; i < iters; i++ {
		if err := c.MemcpyHDSynthetic(a, bufBytes); err != nil {
			return err
		}
		if err := c.Launch(launch); err != nil {
			return err
		}
	}
	if err := c.Free(a); err != nil {
		return err
	}
	return c.Free(b)
}

// runMultiDevice is the headline scenario: sz.sessions concurrent
// sessions over the paper's three-GPU node (2x Tesla C2050 + C1060),
// small buffers, modeled time scaled away. Calls/sec here is the
// framework's dispatch throughput.
func runMultiDevice(sz sizes, _ int64) (benchfmt.Scenario, error) {
	n, err := newNode(benchScale, core.Config{}, gpu.TeslaC2050, gpu.TeslaC2050, gpu.TeslaC1060)
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer n.rt.Close()

	errs := make([]error, sz.sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sz.sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = session(n.client(), sz.iters, 256<<10, tenantFor(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return benchfmt.Scenario{}, err
		}
	}
	return scenarioFrom("multi-device", sz.sessions, n, wall, benchScale), nil
}

// runMultiNode drives sessions at a head node that offloads its excess
// to a peer over TCP (the paper's §4.7 path), so the measurement covers
// the gob codec and the proxy pump as well.
func runMultiNode(sz sizes, _ int64) (benchfmt.Scenario, error) {
	peer, err := newNode(benchScale, core.Config{}, gpu.TeslaC2050)
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer peer.rt.Close()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer l.Close()
	go peer.rt.ServeListener(l)

	head, err := newNode(benchScale, core.Config{
		VGPUsPerDevice:   2,
		OffloadThreshold: 2,
		PeerDial:         func() (transport.Conn, error) { return transport.Dial(l.Addr()) },
	}, gpu.TeslaC2050)
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer head.rt.Close()

	errs := make([]error, sz.nodeSess)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sz.nodeSess; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, s := transport.Pipe()
			go head.rt.HandleConn(s)
			errs[i] = session(frontend.Connect(c), sz.iters, 256<<10, tenantFor(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return benchfmt.Scenario{}, err
		}
	}

	hm, pm := head.rt.Metrics(), peer.rt.Metrics()
	s := scenarioFrom("multi-node", sz.nodeSess, head, wall, benchScale)
	s.Calls = hm.CallsServed + pm.CallsServed
	s.CallsPerSec = float64(s.Calls) / rateSeconds(wall)
	s.Offloaded = hm.Offloaded
	s.SwapOps = hm.Memory.SwapOps + pm.Memory.SwapOps
	s.SwapBytesPerSec = float64(hm.Memory.SwapBytes+pm.Memory.SwapBytes) / rateSeconds(wall)
	return s, nil
}

// swapSession is the swap-pressure client body: two working sets that
// each nearly fill the device, launched alternately. Every launch of
// one set forces the runtime to evict (intra-application swap) the
// whole other set, so swap traffic is deterministic — it does not
// depend on catching a co-tenant in a CPU phase.
func swapSession(c *frontend.Client, iters, setBufs int, bufBytes uint64, tenant string) error {
	defer c.Close()
	if err := c.RegisterFatBinary(benchBinary()); err != nil {
		return err
	}
	if tenant != "" {
		if err := c.SetTenant(tenant); err != nil {
			return err
		}
	}
	var sets [2][]api.DevPtr
	for s := range sets {
		for j := 0; j < setBufs; j++ {
			p, err := c.Malloc(bufBytes)
			if err != nil {
				return err
			}
			sets[s] = append(sets[s], p)
		}
	}
	for i := 0; i < iters; i++ {
		for s := range sets {
			launch := api.LaunchCall{
				Kernel:  "spin",
				Grid:    api.Dim3{X: 32},
				Block:   api.Dim3{X: 128},
				PtrArgs: sets[s],
			}
			if err := c.Launch(launch); err != nil {
				return err
			}
		}
	}
	for s := range sets {
		for _, p := range sets[s] {
			if err := c.Free(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// runSwapPressure oversubscribes one device's memory so every launch
// forces intra-application swaps: the swap bytes/sec series of the
// trajectory. One vGPU per device keeps sessions serialized on the
// bind queue, so the swap count per run is a deterministic function of
// the sizes, not of tenant interleaving.
func runSwapPressure(sz sizes, _ int64) (benchfmt.Scenario, error) {
	n, err := newNode(benchScale, core.Config{VGPUsPerDevice: 1}, gpu.TeslaC2050)
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer n.rt.Close()

	// 23 x 128 MiB = 2944 MiB per set: one set fits the C2050's 3 GiB
	// minus the context reservation, two sets do not — so alternating
	// launches displace each other's whole working set every round.
	const (
		setBufs = 23
		buf     = 128 << 20
	)
	errs := make([]error, sz.swapSess)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sz.swapSess; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = swapSession(n.client(), sz.swapIter, setBufs, buf, tenantFor(i))
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return benchfmt.Scenario{}, err
		}
	}
	return scenarioFrom("swap-pressure", sz.swapSess, n, wall, benchScale), nil
}

// runPaperMix replays the Figure 5 style workload — a seeded draw from
// the paper's short-running benchmark pool run as one concurrent batch
// (the internal/exp scenario machinery) — at a scale where modeled
// kernel time still matters, tying the trajectory back to the paper's
// own evaluation unit.
func runPaperMix(sz sizes, seed int64) (benchfmt.Scenario, error) {
	const scale = 1e-6
	n, err := newNode(scale, core.Config{}, gpu.TeslaC2050, gpu.TeslaC2050, gpu.TeslaC1060)
	if err != nil {
		return benchfmt.Scenario{}, err
	}
	defer n.rt.Close()

	apps := workload.RandomShortBatch(sim.NewRNG(seed), sz.mixJobs)
	start := time.Now()
	res := workload.RunBatch(n.clock, apps, func(int) (workload.CUDA, error) {
		return n.client(), nil
	})
	wall := time.Since(start)
	if f := res.Failed(); f > 0 {
		return benchfmt.Scenario{}, fmt.Errorf("%d/%d jobs failed: %v", f, len(apps), firstErr(res))
	}
	return scenarioFrom("paper-mix", sz.mixJobs, n, wall, scale), nil
}

func firstErr(res workload.BatchResult) error {
	for _, err := range res.Errors {
		if err != nil {
			return err
		}
	}
	return nil
}

// dumpHist mirrors the -hist flag: after each scenario, print the
// swap-path histogram quantiles (model-time ns converted to wall us at
// the scenario's clock scale) so before/after comparisons of the swap
// machinery itself — not just headline throughput — are one flag away.
var dumpHist bool

// histDump prints p50/p99 for the swap-path histograms of a scenario.
func histDump(name string, t *trace.Timings, scale float64) {
	if !dumpHist {
		return
	}
	for _, h := range []struct {
		key  string
		hist *trace.Histogram
	}{
		{"swap_dur", &t.SwapDur},
		{"d2h", &t.D2H},
		{"h2d", &t.H2D},
		{"prefetch", &t.Prefetch},
	} {
		snap := h.hist.Snapshot()
		if snap.Count == 0 {
			continue
		}
		p50, p99 := quantilesUS(snap, scale)
		fmt.Fprintf(os.Stderr, "gvrt-bench: %s: hist %s: n=%d p50=%.2fus p99=%.2fus\n",
			name, h.key, snap.Count, p50, p99)
	}
	if snap := t.DedupSaved.Snapshot(); snap.Count > 0 {
		fmt.Fprintf(os.Stderr, "gvrt-bench: %s: hist dedup_saved: n=%d p50=%dB p99=%dB\n",
			name, snap.Count, snap.Quantile(0.50), snap.Quantile(0.99))
	}
}

// rateSeconds clamps a measured wall duration for per-second rate
// derivation: sub-millisecond walls (quick runs on fast machines) turn
// honest byte counts into absurd rates, so rates are floored at a 1 ms
// window. The raw wall still lands in WallSeconds unclamped.
func rateSeconds(wall time.Duration) float64 {
	if wall < time.Millisecond {
		wall = time.Millisecond
	}
	return wall.Seconds()
}

// scenarioFrom assembles the common measurement fields from a node's
// runtime counters, device stats and timing histograms. SwapBytes
// counts real swap-out spills only — checkpoint flushes are accounted
// separately by the runtime (CheckpointBytes) and excluded here.
func scenarioFrom(name string, sessions int, n *node, wall time.Duration, scale float64) benchfmt.Scenario {
	m := n.rt.Metrics()
	s := benchfmt.Scenario{
		Name:        name,
		Sessions:    sessions,
		Calls:       m.CallsServed,
		WallSeconds: wall.Seconds(),
		CallsPerSec: float64(m.CallsServed) / rateSeconds(wall),
		SwapOps:     m.Memory.SwapOps,
	}
	s.SwapBytesPerSec = float64(m.Memory.SwapBytes) / rateSeconds(wall)
	s.PrefetchHits = m.PrefetchHits
	s.DedupSavedBytes = m.Memory.DedupSavedBytes
	for _, d := range n.crt.Devices() {
		st := d.Stats()
		s.H2DOps += st.H2DOps
		s.H2DBytes += st.H2DBytes
	}
	fill(&s, n.rt.Timings(), scale)
	histDump(name, n.rt.Timings(), scale)
	return s
}
