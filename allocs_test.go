package gvrt_test

import (
	"testing"
	"time"

	"gvrt"
)

// TestLaunchDispatchAllocs pins the steady-state allocation cost of one
// kernel launch through the whole in-process stack: frontend call →
// pipe transport → dispatcher → resolve/checkFits/ensureResident →
// simulated device and back. The per-launch hot path reuses per-context
// scratch slices and lock-free binding reads (DESIGN.md §11), so its
// allocation count must stay flat; the budget has headroom for tracing
// bookkeeping but catches a reintroduced per-launch slice or map.
func TestLaunchDispatchAllocs(t *testing.T) {
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-9), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      "allocs",
		Kernels: []gvrt.KernelMeta{{Name: "k", BaseTime: time.Microsecond}},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	call := gvrt.LaunchCall{Kernel: "k", PtrArgs: []gvrt.DevPtr{p}}
	// Warm: first launch binds the context and lands the deferred
	// transfer; steady state begins after it.
	for i := 0; i < 10; i++ {
		if err := c.Launch(call); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if err := c.Launch(call); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("launch dispatch: %.1f allocs/launch", avg)
	const budget = 8
	if avg > budget {
		t.Errorf("launch dispatch allocates %.1f objects/launch, budget %d", avg, budget)
	}
}
