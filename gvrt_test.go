package gvrt_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gvrt"
)

// TestPublicAPIQuickstart exercises the documented entry points the way
// a downstream user would: build a node, connect a client, push data
// through a kernel and read it back.
func TestPublicAPIQuickstart(t *testing.T) {
	const binID = "facade-test"
	gvrt.RegisterKernelImpl(binID, "add1", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := uint64(0); i < scalars[0]; i++ {
			buf[i]++
		}
		return nil
	})
	defer gvrt.RegisterKernelImpl(binID, "add1", nil)

	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	c := node.OpenClient()
	defer c.Close()
	if err := c.RegisterFatBinary(gvrt.FatBinary{
		ID:      binID,
		Kernels: []gvrt.KernelMeta{{Name: "add1", BaseTime: time.Millisecond}},
	}); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(gvrt.LaunchCall{Kernel: "add1", PtrArgs: []gvrt.DevPtr{p}, Scalars: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{2, 3, 4}) {
		t.Errorf("result = %v, want [2 3 4]", out)
	}

	n, err := c.DeviceCount()
	if err != nil || n != 4 {
		t.Errorf("DeviceCount = %d, %v; want 4 vGPUs", n, err)
	}
	if m := node.RT.Metrics(); m.Binds != 1 {
		t.Errorf("Binds = %d, want 1", m.Binds)
	}
}

func TestPublicAPIBareBaseline(t *testing.T) {
	clock := gvrt.NewClock(1e-6)
	crt := gvrt.NewCUDARuntime(clock, gvrt.NewDevice(0, gvrt.TeslaC2050, clock))
	apps := gvrt.RandomShortBatch(gvrt.NewRNG(1), 2)
	res := gvrt.RunBatch(clock, apps, func(i int) (gvrt.CUDAClient, error) {
		return gvrt.NewBareClient(crt, 0)
	})
	if res.Failed() != 0 {
		t.Fatalf("bare batch failed: %v", res.Errors)
	}
}

func TestPublicAPITCP(t *testing.T) {
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	l, err := gvrt.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go node.RT.ServeListener(l)

	conn, err := gvrt.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := gvrt.Connect(conn)
	defer c.Close()
	apps := gvrt.Benchmarks()
	if err := gvrt.RunApp(node.Clock(), c, apps[1]); err != nil { // BFS
		t.Fatal(err)
	}
}

func TestPublicAPIErrorCodes(t *testing.T) {
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c := node.OpenClient()
	defer c.Close()
	if err := c.Free(0xbad); !errors.Is(err, gvrt.ErrInvalidDevicePointer) {
		t.Errorf("Free(wild) = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestPublicAPICluster(t *testing.T) {
	clock := gvrt.NewClock(1e-7)
	a, err := gvrt.NewClusterNode("a", clock, []gvrt.DeviceSpec{gvrt.TeslaC2050}, gvrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := gvrt.NewClusterNode("b", clock, []gvrt.DeviceSpec{gvrt.TeslaC1060}, gvrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	head := gvrt.NewClusterHead(clock, a, b)
	res := head.RunOblivious(gvrt.RandomShortBatch(gvrt.NewRNG(3), 6))
	if res.Failed() != 0 {
		t.Fatalf("cluster batch failed: %v", res.Errors)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if rec := gvrt.NewTraceRecorder(32); rec == nil || rec.Len() != 0 {
		t.Error("NewTraceRecorder broken")
	}
	batch := gvrt.MixedLongBatch(8, 50, 1)
	if len(batch) != 8 {
		t.Errorf("MixedLongBatch len = %d", len(batch))
	}
	nBSL := 0
	for _, app := range batch {
		if app.Name == "BS-L" {
			nBSL++
		}
	}
	if nBSL != 4 {
		t.Errorf("MixedLongBatch BS-L count = %d, want 4", nBSL)
	}
	for _, name := range []string{"BP", "BFS", "HS", "NW", "SP", "MT", "PR", "SC", "BS-S", "VA", "MM-S", "MM-L", "BS-L"} {
		app, ok := gvrt.BenchmarkByName(name, 1.5)
		if !ok || app.Name != name {
			t.Errorf("BenchmarkByName(%q) = %v, %v", name, app.Name, ok)
		}
	}
	if _, ok := gvrt.BenchmarkByName("nope", 1); ok {
		t.Error("BenchmarkByName accepted an unknown name")
	}
}

func TestFacadeTraceIntegration(t *testing.T) {
	rec := gvrt.NewTraceRecorder(64)
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6), gvrt.Config{Trace: rec}, gvrt.TeslaC2050)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	c := node.OpenClient()
	c.Close()
	// Teardown (and its exit event) completes asynchronously after the
	// connection closes.
	deadline := time.Now().Add(5 * time.Second)
	for len(rec.Filter(gvrt.TraceExit)) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	evs := rec.Filter(gvrt.TraceConnect, gvrt.TraceExit)
	if len(evs) != 2 {
		t.Errorf("trace events = %v", evs)
	}
}
