package gvrt_test

import (
	"fmt"
	"time"

	"gvrt"
)

// ExampleNewLocalNode shows the minimal end-to-end flow: one node, one
// client, one kernel, data verified.
func ExampleNewLocalNode() {
	gvrt.RegisterKernelImpl("doc", "double", func(mem gvrt.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := uint64(0); i < scalars[0]; i++ {
			buf[i] *= 2
		}
		return nil
	})
	defer gvrt.RegisterKernelImpl("doc", "double", nil)

	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6), gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	c := node.OpenClient()
	defer c.Close()
	_ = c.RegisterFatBinary(gvrt.FatBinary{
		ID:      "doc",
		Kernels: []gvrt.KernelMeta{{Name: "double", BaseTime: time.Millisecond}},
	})
	p, _ := c.Malloc(64)
	_ = c.MemcpyHD(p, []byte{1, 2, 3})
	_ = c.Launch(gvrt.LaunchCall{Kernel: "double", PtrArgs: []gvrt.DevPtr{p}, Scalars: []uint64{3}})
	out, _ := c.MemcpyDH(p, 3)
	fmt.Println(out)
	// Output: [2 4 6]
}

// ExampleClient_DeviceCount shows the paper's device abstraction: the
// application sees virtual GPUs, not the physical hardware.
func ExampleClient_DeviceCount() {
	node, err := gvrt.NewLocalNode(gvrt.NewClock(1e-6),
		gvrt.Config{VGPUsPerDevice: 4}, gvrt.TeslaC2050, gvrt.TeslaC1060)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	c := node.OpenClient()
	defer c.Close()
	n, _ := c.DeviceCount()
	fmt.Printf("2 physical GPUs appear as %d devices\n", n)
	// cudaSetDevice is accepted and ignored: procurement is abstracted.
	fmt.Println(c.SetDevice(99) == nil)
	// Output:
	// 2 physical GPUs appear as 8 devices
	// true
}

// ExampleRunBatch runs a Table 2 benchmark batch and reports the
// paper's metric (the batch makespan in model time).
func ExampleRunBatch() {
	clock := gvrt.NewClock(1e-6)
	node, err := gvrt.NewLocalNode(clock, gvrt.Config{}, gvrt.TeslaC2050)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	apps := gvrt.RandomShortBatch(gvrt.NewRNG(1), 4)
	res := gvrt.RunBatch(clock, apps, func(int) (gvrt.CUDAClient, error) {
		return node.OpenClient(), nil
	})
	fmt.Printf("%d jobs, %d failures\n", len(res.JobTimes), res.Failed())
	// Output: 4 jobs, 0 failures
}
