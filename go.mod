module gvrt

go 1.22
