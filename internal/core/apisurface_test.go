package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
)

// TestMemsetThroughAPI covers cudaMemset across the deferral machinery.
func TestMemsetThroughAPI(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Memset(p, 7, 16); err != nil {
		t.Fatal(err)
	}
	// The fill must not have touched the device (deferral).
	if env.crt.Device(0).Stats().H2DBytes != 0 {
		t.Error("memset reached the device before any launch")
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.MemcpyDH(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 8, 8, 8, 7, 7, 7, 7} // inc bumped the first 4
	if !bytes.Equal(out, want) {
		t.Errorf("after memset+inc, data = %v, want %v", out, want)
	}
	// Out-of-bounds memset is rejected before the device.
	if err := c.Memset(p, 1, 64); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("oversized memset err = %v", err)
	}
	if err := c.Memset(0xbad, 1, 4); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("wild memset err = %v", err)
	}
}

// TestMemsetZeroSynthetic: a zero fill on an untouched entry stays
// synthetic — no host memory is materialised for modeled gigabytes.
func TestMemsetZeroSynthetic(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(512 << 10)
	if err := c.Memset(p, 0, 512<<10); err != nil {
		t.Fatal(err)
	}
	pte, _, err := env.rt.mm.Resolve(p)
	if err != nil {
		t.Fatal(err)
	}
	if pte.HasData() {
		t.Error("zero memset materialised swap backing")
	}
	if !pte.ToCopy2Dev {
		t.Error("memset did not mark the entry for transfer")
	}
}

// TestPitchedAndArrayAllocations covers cudaMallocPitch/cudaMallocArray
// through the stack.
func TestPitchedAndArrayAllocations(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}

	pp, err := c.MallocPitch(100, 4) // rows of 100 padded to 512
	if err != nil {
		t.Fatal(err)
	}
	if pp.Pitch != 512 {
		t.Errorf("Pitch = %d, want 512", pp.Pitch)
	}
	// Row 2 starts at pitch*2; writing there must be in bounds.
	if err := c.MemcpyHD(pp.Ptr+api.DevPtr(2*pp.Pitch), []byte{1, 2, 3}); err != nil {
		t.Errorf("write to pitched row: %v", err)
	}
	// Past the padded extent is out of bounds.
	if err := c.MemcpyHD(pp.Ptr+api.DevPtr(4*pp.Pitch), []byte{1}); err == nil {
		t.Error("write past pitched extent should fail")
	}

	arr, err := c.MallocArray(4, 16, 16) // 16x16 of 4-byte elements
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(arr, make([]byte, 4*16*16)); err != nil {
		t.Errorf("full array write: %v", err)
	}
	pte, _, err := env.rt.mm.Resolve(arr)
	if err != nil {
		t.Fatal(err)
	}
	if pte.Size != 4*16*16 {
		t.Errorf("array entry size = %d", pte.Size)
	}
}

// TestDeviceUtilizationMetrics checks the per-device metrics slice.
func TestDeviceUtilizationMetrics(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1), smallSpec(1<<20, 0.5))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(64)
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	m := env.rt.Metrics()
	if len(m.Devices) != 2 {
		t.Fatalf("Devices = %d entries, want 2", len(m.Devices))
	}
	var launches int64
	active := 0
	for _, d := range m.Devices {
		if d.VGPUs != 2 || !d.Healthy || d.Capacity == 0 {
			t.Errorf("device %d snapshot wrong: %+v", d.Index, d)
		}
		launches += d.Launches
		active += d.ActiveVGPUs
	}
	if launches != 1 {
		t.Errorf("total launches = %d, want 1", launches)
	}
	if active != 1 {
		t.Errorf("active vGPUs = %d, want 1", active)
	}
}

// TestPTXAnnotationDrivesPolicies: a kernel shipping PTX with a
// device-side malloc pins its context (excluded from sharing, §1)
// without the toolchain setting any flag by hand.
func TestPTXAnnotationDrivesPolicies(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	fb := api.FatBinary{
		ID: "ptx-bin",
		Kernels: []api.KernelMeta{{
			Name:     "builder",
			BaseTime: 1000,
			PTX: `
.visible .entry builder()
{
	call.uni (retval0), malloc, (%rd1);
	ret;
}
`,
		}},
	}
	if err := c.RegisterFatBinary(fb); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(64)
	if err := c.Launch(api.LaunchCall{Kernel: "builder", PtrArgs: []api.DevPtr{p}}); err != nil {
		t.Fatal(err)
	}
	// The context must now be pinned.
	env.rt.mu.Lock()
	var pinned bool
	for _, ctx := range env.rt.ctxs {
		pinned = pinned || ctx.pinned.Load()
	}
	env.rt.mu.Unlock()
	if !pinned {
		t.Error("PTX-detected dynamic allocation did not pin the context")
	}
}

// TestPTXNestedRequiresRegistration: PTX-detected nesting makes the
// runtime reject launches without a registered nested structure.
func TestPTXNestedRequiresRegistration(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	fb := api.FatBinary{
		ID: "ptx-nested",
		Kernels: []api.KernelMeta{{
			Name:     "traverse",
			BaseTime: 1000,
			PTX: `
.visible .entry traverse()
{
	ld.global.u64 %rd3, [%rd2];
	ld.global.u32 %r1, [%rd3+8];
	ret;
}
`,
		}},
	}
	if err := c.RegisterFatBinary(fb); err != nil {
		t.Fatal(err)
	}
	parent, _ := c.Malloc(16)
	member, _ := c.Malloc(16)
	err := c.Launch(api.LaunchCall{Kernel: "traverse", PtrArgs: []api.DevPtr{parent}})
	if !errors.Is(err, api.ErrUnsupported) {
		t.Errorf("nested kernel without registration err = %v, want ErrUnsupported", err)
	}
	if err := c.RegisterNested(parent, []api.DevPtr{member}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "traverse", PtrArgs: []api.DevPtr{parent}}); err != nil {
		t.Errorf("nested kernel with registration err = %v", err)
	}
}

// TestStatsRPC covers the operator stats snapshot over the wire.
func TestStatsRPC(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(64)
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Binds != 1 || st.LiveContexts != 1 || st.CallsServed == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Devices) != 1 || st.Devices[0].Launches != 1 || !st.Devices[0].Healthy {
		t.Errorf("device stats = %+v", st.Devices)
	}
}

// TestRuntimeEdgeCases sweeps small administrative paths.
func TestRuntimeEdgeCases(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))

	if err := env.rt.RemoveDevice(99); !errors.Is(err, api.ErrInvalidDevice) {
		t.Errorf("RemoveDevice(99) err = %v", err)
	}
	if n := env.rt.VGPUCount(); n != 4 {
		t.Errorf("VGPUCount = %d, want 4", n)
	}
	env.rt.FailDevice(1)
	if n := env.rt.VGPUCount(); n != 2 {
		t.Errorf("VGPUCount after failure = %d, want 2", n)
	}
	env.rt.FailDevice(1) // idempotent
	if got := env.rt.Metrics().DeviceFailures; got != 1 {
		t.Errorf("DeviceFailures = %d, want 1 (idempotent)", got)
	}

	// With every device gone, launches report ErrNoDevice.
	env.rt.FailDevice(0)
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(64)
	err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
	if code := api.Code(err); code != api.ErrNoDevice && code != api.ErrMemoryAllocation {
		t.Errorf("launch with no devices err = %v", err)
	}
	// Memory-only operations still work from the swap area.
	if err := c.MemcpyHD(p, []byte{1}); err != nil {
		t.Errorf("swap-only MemcpyHD err = %v", err)
	}
	out, err := c.MemcpyDH(p, 1)
	if err != nil || out[0] != 1 {
		t.Errorf("swap-only MemcpyDH = %v, %v", out, err)
	}
}

// TestCloseUnblocksWaiters: closing the runtime releases contexts parked
// on the waiting list with a clean error.
func TestCloseUnblocksWaiters(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1}, smallSpec(1<<20, 1))
	hog := env.client()
	defer hog.Close()
	if err := hog.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	ph, _ := hog.Malloc(64)
	if err := hog.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{ph}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	w := env.client()
	defer w.Close()
	if err := w.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pw, _ := w.Malloc(64)
	done := make(chan error, 1)
	go func() {
		done <- w.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pw}, Scalars: []uint64{0}})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	env.rt.Close()
	select {
	case err := <-done:
		if code := api.Code(err); code != api.ErrNoDevice {
			t.Errorf("waiter err after Close = %v, want ErrNoDevice", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after Close")
	}
}
