package core

// Control-plane hooks: the runtime surface internal/ctrlplane drives
// (its Hooks interface). Every method here is idempotent — the control
// plane re-runs interrupted operations from the top after a crash, so
// draining a drained device or re-applying an applied quota must be a
// no-op. Quota hooks live in tenant.go; this file holds device
// lifecycle and the graceful-shutdown drain.

import (
	"gvrt/internal/api"
)

// DrainDevice evacuates and removes a device for the control plane:
// bound contexts are checkpointed to swap and unbound (RemoveDevice —
// the §2 dynamic downgrade), and their next launches re-bind to the
// remaining devices. Idempotent: draining an already-removed device
// succeeds as a no-op.
func (rt *Runtime) DrainDevice(index int) error {
	for _, ds := range rt.deviceList() {
		if ds.index == index && ds.dev.Removed() {
			return nil // already drained (resume path)
		}
	}
	return rt.RemoveDevice(index)
}

// ReadmitDevice returns a drained device to scheduling: the
// administrative removal is cleared and the device's vGPU workers are
// rebuilt exactly as health-monitor re-admission does. Idempotent:
// readmitting a serving device succeeds as a no-op.
func (rt *Runtime) ReadmitDevice(index int) error {
	var ds *deviceState
	for _, d := range rt.deviceList() {
		if d.index == index {
			ds = d
			break
		}
	}
	if ds == nil {
		return api.ErrInvalidDevice
	}
	if ds.healthy.Load() && !ds.dev.Removed() {
		return nil // already serving (resume path)
	}
	ds.dev.ClearRemoved()
	ds.dev.Restore()
	rt.readmitDevice(ds)
	if !ds.healthy.Load() {
		return api.ErrDeviceUnavailable
	}
	return nil
}

// DeviceCount reports how many devices the runtime owns (including
// drained ones — membership, not health).
func (rt *Runtime) DeviceCount() int {
	return len(rt.deviceList())
}

// BeginDrain starts a graceful shutdown: new connections are refused
// (HandleConn sheds them) and every live session's failover lease is
// revoked so a peer node can steal ownership immediately instead of
// waiting out the TTL. In-flight sessions keep running; the caller
// closes the listener, flushes the journal, and exits when ready.
func (rt *Runtime) BeginDrain() {
	if rt.draining.Swap(true) {
		return // already draining
	}
	rt.logf("drain: refusing new connections")
	t := rt.cfg.Leases
	if t == nil {
		return
	}
	rt.mu.Lock()
	ids := make([]int64, 0, len(rt.ctxs))
	for id := range rt.ctxs {
		ids = append(ids, id)
	}
	rt.mu.Unlock()
	for _, id := range ids {
		t.Revoke(id)
	}
	if len(ids) > 0 {
		rt.logf("drain: revoked %d session leases", len(ids))
	}
}

// Draining reports whether a graceful shutdown is in progress.
func (rt *Runtime) Draining() bool { return rt.draining.Load() }
