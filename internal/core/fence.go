package core

import (
	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// This file implements lease-fenced session ownership (DESIGN.md §13).
// With a lease table configured, every mutating call verifies that this
// node still holds the session's lease at the epoch it remembered when
// it acquired it. Ownership moving — failover steal, migration commit,
// injected revocation — bumps the epoch, so a deposed owner's in-flight
// write is rejected with the typed api.ErrFenced no matter how late it
// arrives. The check piggybacks lease renewal: a healthy owner extends
// its lease on every served call and never comes close to expiry.

// fence is the write fence: it rejects the call when this connection no
// longer owns its session. Callers hold ctx.mu.
func (rt *Runtime) fence(ctx *Context) error {
	if ctx.deposed.Load() {
		// The session migrated away on this very connection; no table
		// round trip can revive it.
		rt.fenceRejections.Add(1)
		if ctx.tm != nil {
			ctx.tm.AddFenceRejection()
		}
		rt.event(trace.KindFence, ctx.id, 0, -1, "deposed by migration")
		return api.ErrFenced
	}
	t := rt.cfg.Leases
	if t == nil {
		return nil
	}
	if h := rt.leaseHook; h != nil {
		if dec := h.Check(); dec.Err != nil {
			// Injected lease-expiry race: a phantom peer stole and
			// abandoned the lease the instant before this check, so the
			// epoch comparison below fails deterministically.
			t.Revoke(ctx.id)
		}
	}
	renewed, err := t.Check(ctx.id, rt.cfg.node(), ctx.leaseEpoch.Load())
	if err != nil {
		rt.fenceRejections.Add(1)
		if ctx.tm != nil {
			ctx.tm.AddFenceRejection()
		}
		rt.logf("ctx %d: write fenced, lease lost (epoch %d)", ctx.id, ctx.leaseEpoch.Load())
		rt.event(trace.KindFence, ctx.id, 0, -1, "lease lost")
		return api.ErrFenced
	}
	if renewed {
		rt.leaseRenewals.Add(1)
	}
	return nil
}

// leaseAcquire takes the session's lease for this node and remembers the
// epoch on the context. A session owned live by another node fails with
// ErrFenced. No-op without a lease table.
func (rt *Runtime) leaseAcquire(ctx *Context) error {
	t := rt.cfg.Leases
	if t == nil {
		return nil
	}
	l, err := t.Acquire(ctx.id, rt.cfg.node())
	if err != nil {
		return err
	}
	ctx.leaseEpoch.Store(l.Epoch)
	return nil
}

// leaseRelease drops the session's lease on orderly teardown. A deposed
// context does not release: ownership already moved with the session.
func (rt *Runtime) leaseRelease(ctx *Context) {
	if t := rt.cfg.Leases; t != nil && !ctx.deposed.Load() {
		t.Release(ctx.id, rt.cfg.node())
	}
}

// mutatingCall reports whether the call writes session state — the set
// that must pass the fence. Reads that can trigger a checkpoint commit
// (MemcpyDH empties the replay log durably) count as mutating.
func mutatingCall(call api.Call) bool {
	switch call.(type) {
	case api.MallocCall, api.FreeCall, api.MemsetCall, api.MemcpyHDCall,
		api.MemcpyDHCall, api.MemcpyDDCall, api.LaunchCall,
		api.RegisterNestedCall, api.CheckpointCall, api.MigrateCall:
		return true
	}
	return false
}
