package core

import (
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// TestRuntimeEmitsTraceEvents drives a representative flow and asserts
// the structured event stream reflects it: connect → bind →
// inter-swap → failure → recovery → exit.
func TestRuntimeEmitsTraceEvents(t *testing.T) {
	rec := trace.NewRecorder(256)
	env := newEnv(t, Config{VGPUsPerDevice: 2, Trace: rec},
		smallSpec(1<<20, 1), smallSpec(1<<20, 1))

	a, b := env.client(), env.client()
	for _, c := range []*struct {
		cl interface {
			RegisterFatBinary(api.FatBinary) error
		}
	}{{a}, {b}} {
		if err := c.cl.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
	}
	pa, _ := a.Malloc(600 << 10)
	pb, _ := b.Malloc(600 << 10)

	// a binds to a device and fills it.
	if err := a.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pa}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // a becomes idle (model hours at this scale)

	// b may land next to a (same device) and force an inter-app swap,
	// or on the second device; drive both onto device pressure by
	// failing b's device after it binds.
	if err := b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	// Fail device 0 and force a's recovery on its next call.
	env.rt.FailDevice(0)
	if err := a.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pa}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	a.Close()
	b.Close()
	env.wg.Wait()

	counts := rec.CountByKind()
	if counts[trace.KindConnect] != 2 {
		t.Errorf("connect events = %d, want 2", counts[trace.KindConnect])
	}
	if counts[trace.KindBind] < 2 {
		t.Errorf("bind events = %d, want >= 2", counts[trace.KindBind])
	}
	if counts[trace.KindFailure] != 1 {
		t.Errorf("failure events = %d, want 1", counts[trace.KindFailure])
	}
	if counts[trace.KindRecovery] < 1 {
		t.Errorf("recovery events = %d, want >= 1", counts[trace.KindRecovery])
	}
	if counts[trace.KindExit] != 2 {
		t.Errorf("exit events = %d, want 2", counts[trace.KindExit])
	}

	// The first event must be a connect, the last an exit, and model
	// times must be monotonically non-decreasing.
	evs := rec.Snapshot()
	if evs[0].Kind != trace.KindConnect {
		t.Errorf("first event = %v", evs[0])
	}
	if evs[len(evs)-1].Kind != trace.KindExit {
		t.Errorf("last event = %v", evs[len(evs)-1])
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Errorf("event %d time %v before event %d time %v", i, evs[i].Time, i-1, evs[i-1].Time)
			break
		}
	}
	if rec.Dump() == "" {
		t.Error("Dump is empty")
	}
}
