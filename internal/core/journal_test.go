package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"strings"
	"sync"
	"testing"

	"gvrt/internal/api"
	"gvrt/internal/ckptlog"
	"gvrt/internal/frontend"
	"gvrt/internal/memmgr"
)

// openJournal opens (or re-opens) the journal directory and fails the
// test on error.
func openJournal(t *testing.T, dir string) (*ckptlog.Journal, *ckptlog.Recovered) {
	t.Helper()
	j, rec, err := ckptlog.Open(dir, ckptlog.Options{})
	if err != nil {
		t.Fatalf("ckptlog.Open: %v", err)
	}
	return j, rec
}

// TestJournalCrashRecoveryResume is the tentpole scenario end to end: a
// daemon with a journal serves a client through writes, a checkpoint and
// more kernel launches, then dies without any graceful state save. A
// fresh daemon recovers the journal, the client resumes its session and
// reads back data reflecting every acknowledged launch — the
// post-checkpoint ones replayed from the journal's pending list.
func TestJournalCrashRecoveryResume(t *testing.T) {
	dir := t.TempDir()
	j1, rec1 := openJournal(t, dir)
	if len(rec1.Images) != 0 {
		t.Fatalf("fresh journal recovered %d images", len(rec1.Images))
	}

	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env1.rt.RecoverFromJournal(rec1); err != nil {
		t.Fatal(err)
	}
	if err := env1.rt.AttachJournal(j1); err != nil {
		t.Fatal(err)
	}
	c1 := env1.client()
	if err := c1.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c1.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, []byte{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	inc := api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}
	for i := 0; i < 2; i++ {
		if err := c1.Launch(inc); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c1.Launch(inc); err != nil {
			t.Fatal(err)
		}
	}
	session, err := c1.SessionID()
	if err != nil || session == 0 {
		t.Fatalf("SessionID = %d, %v", session, err)
	}

	// Crash: freeze the journal (everything acknowledged is already
	// durable; nothing after this point reaches disk), then let the
	// connection die. The teardown's context-release record is dropped by
	// the dead journal — exactly what a SIGKILL would have done.
	j1.Close()
	c1.Close()
	env1.rt.Close()

	// A fresh daemon recovers from the same directory.
	j2, rec2 := openJournal(t, dir)
	if len(rec2.Images) != 1 || rec2.Images[0].CtxID != session {
		t.Fatalf("recovered images = %+v, want one for ctx %d", rec2.Images, session)
	}
	if got := len(rec2.Pending[session]); got != 3 {
		t.Fatalf("recovered %d pending kernels, want 3", got)
	}
	if len(rec2.Quarantined) != 0 || rec2.TornBytes != 0 {
		t.Fatalf("clean journal recovered with quarantine %v, torn %d",
			rec2.Quarantined, rec2.TornBytes)
	}
	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RecoverFromJournal(rec2); err != nil {
		t.Fatal(err)
	}
	if err := env2.rt.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	c2 := env2.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	if err := c2.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	// The read triggers the lazy §4.6 recovery: the three pending kernels
	// replay over the checkpointed image before any byte is served.
	out, err := c2.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{15, 25, 35} // seed + 5 acknowledged increments
	if !bytes.Equal(out, want) {
		t.Fatalf("data after crash recovery = %v, want %v", out, want)
	}
	// The session is fully live again: further launches work and commit.
	if err := c2.Launch(inc); err != nil {
		t.Fatal(err)
	}
	out, err = c2.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want = []byte{16, 26, 36}
	if !bytes.Equal(out, want) {
		t.Fatalf("data after post-recovery launch = %v, want %v", out, want)
	}
	if len(env2.rt.OrphanSessions()) != 0 {
		t.Error("session still orphaned after resume")
	}
}

// TestAttachJournalSeedsLiveState covers first enablement of the journal
// over a runtime that already holds state — including a context with
// device-dirty entries, which AttachJournal must checkpoint-flush before
// seeding (ExportContext refuses dirty entries).
func TestAttachJournalSeedsLiveState(t *testing.T) {
	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c1 := env1.client()
	if err := c1.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c1.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, []byte{50, 60}); err != nil {
		t.Fatal(err)
	}
	inc := api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{2}}
	if err := c1.Launch(inc); err != nil {
		t.Fatal(err)
	}
	session, err := c1.SessionID()
	if err != nil {
		t.Fatal(err)
	}

	// The launch left the entry device-dirty; attaching must flush it.
	dir := t.TempDir()
	j1, _ := openJournal(t, dir)
	if err := env1.rt.AttachJournal(j1); err != nil {
		t.Fatalf("AttachJournal over dirty context: %v", err)
	}
	if !j1.HasContext(session) {
		t.Fatal("journal not seeded with the live context")
	}
	// One more launch commits through the now-attached journal.
	if err := c1.Launch(inc); err != nil {
		t.Fatal(err)
	}
	j1.Close()
	c1.Close()
	env1.rt.Close()

	// Recovery sees the attach-time image plus one pending kernel.
	j2, rec := openJournal(t, dir)
	if len(rec.Images) != 1 || len(rec.Pending[session]) != 1 {
		t.Fatalf("recovered %d images, %d pending; want 1, 1",
			len(rec.Images), len(rec.Pending[session]))
	}
	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RecoverFromJournal(rec); err != nil {
		t.Fatal(err)
	}
	if err := env2.rt.AttachJournal(j2); err != nil {
		t.Fatal(err)
	}
	c2 := env2.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	if err := c2.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{52, 62}; !bytes.Equal(out, want) {
		t.Fatalf("data after attach+crash recovery = %v, want %v", out, want)
	}
}

// TestConcurrentResumeSingleWinner races many connections for the same
// persisted session: exactly one must win; every loser must see the
// typed ErrSessionClaimed, not a generic failure. Run under -race.
func TestConcurrentResumeSingleWinner(t *testing.T) {
	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env1.client()
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{7}); err != nil {
		t.Fatal(err)
	}
	session, err := c.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := env1.rt.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	c.Close()
	env1.rt.Close()

	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RestoreState(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	const claimants = 8
	clients := make([]*frontend.Client, claimants)
	errs := make([]error, claimants)
	for i := range clients {
		clients[i] = env2.client()
		defer clients[i].Close()
	}
	var wg sync.WaitGroup
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = clients[i].Resume(session)
		}(i)
	}
	wg.Wait()
	winners, claimed := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			winners++
		case errors.Is(err, api.ErrSessionClaimed):
			claimed++
		default:
			t.Errorf("loser got %v, want ErrSessionClaimed", err)
		}
	}
	if winners != 1 || claimed != claimants-1 {
		t.Fatalf("winners = %d, claimed losers = %d; want 1 and %d",
			winners, claimed, claimants-1)
	}
	// Re-resuming after everyone settled is still the typed error.
	late := env2.client()
	defer late.Close()
	if err := late.Resume(session); !errors.Is(err, api.ErrSessionClaimed) {
		t.Errorf("late Resume err = %v, want ErrSessionClaimed", err)
	}
}

// TestExportRefusesDirtyEntries pins the invariant the journal depends
// on: a context image can never capture stale swap data. A direct export
// of a device-dirty context fails loudly; SaveState — which checkpoints
// first — succeeds on the very same state and round-trips the bytes.
func TestExportRefusesDirtyEntries(t *testing.T) {
	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env1.client()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	session, err := c.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env1.rt.mm.ExportContext(session); err == nil {
		t.Fatal("ExportContext captured a device-dirty context")
	} else if !strings.Contains(err.Error(), "checkpoint before export") {
		t.Fatalf("dirty export error = %v", err)
	}
	var state bytes.Buffer
	if err := env1.rt.SaveState(&state); err != nil {
		t.Fatalf("SaveState over dirty context: %v", err)
	}
	c.Close()
	env1.rt.Close()

	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RestoreState(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2 := env2.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := []byte{2, 3, 4}; !bytes.Equal(out, want) {
		t.Fatalf("restored data = %v, want %v", out, want)
	}
}

// FuzzRestoreState feeds mutated state files to RestoreState: whatever
// the bytes, it must return a typed api error (or succeed), never panic.
func FuzzRestoreState(f *testing.F) {
	valid := func(ctxID int64) []byte {
		img := &memmgr.ContextImage{
			CtxID:   ctxID,
			NextOff: 4096,
			Entries: []memmgr.EntryImage{
				{Virtual: api.DevPtr(uint64(1)<<63 | uint64(ctxID)<<40), Size: 16, HasData: true,
					Data: []byte{1, 2, 3, 4}},
				{Virtual: api.DevPtr(uint64(1)<<63 | uint64(ctxID)<<40 | 512), Size: 8},
			},
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&stateFile{Images: []*memmgr.ContextImage{img}}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(valid(1))
	f.Add(valid(7))
	f.Add([]byte("junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		env := newEnv(t, Config{}, smallSpec(1<<20, 1))
		err := env.rt.RestoreState(bytes.NewReader(data))
		if err == nil {
			return
		}
		var code api.Error
		if !errors.As(err, &code) {
			t.Fatalf("RestoreState returned an untyped error: %v", err)
		}
	})
}
