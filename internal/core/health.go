package core

import (
	"fmt"

	"gvrt/internal/cudart"
	"gvrt/internal/trace"
)

// This file implements device re-admission: the self-healing half of
// §4.6's fault tolerance. Failure marks a device unhealthy and detaches
// its contexts (launch.go); the health monitor here periodically probes
// unhealthy devices and, when the sticky fault has cleared (hot-swap,
// driver reset, operator Restore), rebuilds the device's vGPU workers
// and hands them back to the waiting list.
//
// The monitor is lazy: it starts on the first device failure and exits
// as soon as no unhealthy device remains, so a healthy node pays
// nothing and small-scale tests do not carry a spinning goroutine.

// kickHealthMonitor ensures the monitor goroutine is running; called
// from onDeviceFailure. A non-positive health interval (negative
// HealthInterval config) disables re-admission entirely.
func (rt *Runtime) kickHealthMonitor() {
	if rt.cfg.healthInterval() <= 0 {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.healthRunning || rt.closed {
		return
	}
	rt.healthRunning = true
	go rt.healthMonitor()
}

// healthMonitor probes unhealthy devices every health interval and
// re-admits the ones whose fault has cleared. It exits when none are
// left (a later failure kicks it again) or the runtime closes.
func (rt *Runtime) healthMonitor() {
	interval := rt.cfg.healthInterval()
	for {
		rt.clock.Sleep(interval)
		rt.mu.Lock()
		if rt.closed {
			rt.healthRunning = false
			rt.mu.Unlock()
			return
		}
		var sick []*deviceState
		for _, ds := range rt.devs {
			if !ds.healthy.Load() && !ds.dev.Removed() {
				sick = append(sick, ds)
			}
		}
		if len(sick) == 0 {
			rt.healthRunning = false
			rt.mu.Unlock()
			return
		}
		rt.mu.Unlock()
		for _, ds := range sick {
			if rt.probeDevice(ds) {
				rt.readmitDevice(ds)
			}
		}
	}
}

// probeDevice checks whether an unhealthy device answers again: the
// sticky failure flag must be clear and a trivial allocate/free round
// trip must succeed (exercising the same path a vGPU rebuild will).
func (rt *Runtime) probeDevice(ds *deviceState) bool {
	if ds.dev.Failed() || ds.dev.Removed() {
		return false
	}
	p, err := ds.dev.Malloc(1)
	if err != nil {
		return false
	}
	_ = ds.dev.Free(p)
	return true
}

// readmitDevice hot re-adds a recovered device: the dead vGPUs' CUDA
// contexts are destroyed (releasing their reservations and any
// allocations stranded by the failure), a fresh set is created, and the
// slots are offered to the waiting list. Emits trace.KindRecovery with
// the device ordinal — the device-level counterpart of a context
// recovery (which carries Device -1).
func (rt *Runtime) readmitDevice(ds *deviceState) {
	rt.mu.Lock()
	if ds.healthy.Load() || rt.closed {
		rt.mu.Unlock()
		return
	}
	ds.mu.Lock()
	old := ds.vgpus
	ds.mu.Unlock()
	rt.mu.Unlock()

	// Clear the dead workers first so their context slots and memory
	// reservations are free for the rebuild. They are unbound and dead
	// since the failure; nobody can reach them through the runtime.
	for _, v := range old {
		v.cuctx.Destroy()
	}
	fresh := make([]*cudart.Context, 0, rt.cfg.vgpus())
	for k := 0; k < rt.cfg.vgpus(); k++ {
		cuctx, err := rt.crt.CreateContext(ds.index)
		if err != nil {
			// The device relapsed (or an injected fault bit) mid-rebuild;
			// roll back and let the next probe tick retry.
			for _, c := range fresh {
				c.Destroy()
			}
			rt.logf("device %d re-admission aborted: %v", ds.index, err)
			return
		}
		fresh = append(fresh, cuctx)
	}

	rt.mu.Lock()
	if ds.healthy.Load() || rt.closed {
		rt.mu.Unlock()
		for _, c := range fresh {
			c.Destroy()
		}
		return
	}
	vgpus := make([]*vGPU, len(fresh))
	for k, cuctx := range fresh {
		vgpus[k] = &vGPU{
			name:  fmt.Sprintf("vGPU%d.%d", ds.index, k),
			ds:    ds,
			cuctx: cuctx,
		}
	}
	ds.mu.Lock()
	ds.vgpus = vgpus
	ds.mu.Unlock()
	ds.healthy.Store(true)
	// Offer every new slot to the waiting list, exactly like a hot-added
	// device (§2's dynamic upgrade). The fresh slots are unbound by
	// construction.
	for _, v := range vgpus {
		rt.releaseVGPULocked(v)
	}
	rt.mu.Unlock()

	rt.readmissions.Add(1)
	rt.logf("device %d (%s) re-admitted", ds.index, ds.dev.Spec().Name)
	rt.event(trace.KindRecovery, 0, 0, ds.index, "device re-admitted")
}
