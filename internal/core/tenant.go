package core

// Tenant quota enforcement: the runtime half of the control plane's
// multi-tenancy surface (internal/ctrlplane). A tenant's quota caps how
// many sessions may announce membership (checked on the admission path,
// at SetTenant) and how many aggregate bytes those sessions may hold
// allocated (checked on the memory-manager path, at every Malloc).
// Quotas arrive through ApplyQuota/RemoveQuota — the control plane's
// idempotent hooks — and enforcement state lives only here: the durable
// record of WHAT the quota is belongs to the control-plane store.

import (
	"gvrt/internal/api"
)

// tenantState is one tenant's live enforcement entry.
type tenantState struct {
	// Limits; zero means unlimited.
	maxSessions int
	hostBytes   uint64
	// Usage.
	sessions int
	bytes    uint64
}

// ApplyQuota installs or updates a tenant's limits, keeping any usage
// already accumulated. Idempotent — re-applying the same quota is a
// no-op — so the control plane can resume a crashed quota-set by
// re-running it.
func (rt *Runtime) ApplyQuota(tenant string, maxSessions int, hostBytes uint64) error {
	if tenant == "" {
		return api.ErrInvalidValue
	}
	rt.tenantMu.Lock()
	defer rt.tenantMu.Unlock()
	ts := rt.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		rt.tenants[tenant] = ts
	}
	ts.maxSessions = maxSessions
	ts.hostBytes = hostBytes
	return nil
}

// RemoveQuota lifts a tenant's limits. Sessions already announced stay
// members (their usage is simply no longer bounded). Idempotent.
func (rt *Runtime) RemoveQuota(tenant string) error {
	rt.tenantMu.Lock()
	defer rt.tenantMu.Unlock()
	if ts := rt.tenants[tenant]; ts != nil {
		// Keep the entry while members remain so their usage accounting
		// stays coherent; just lift the limits.
		if ts.sessions > 0 || ts.bytes > 0 {
			ts.maxSessions = 0
			ts.hostBytes = 0
		} else {
			delete(rt.tenants, tenant)
		}
	}
	return nil
}

// TenantUsage reports a tenant's live usage (sessions, bytes). Zeroes
// for an unknown tenant.
func (rt *Runtime) TenantUsage(tenant string) (sessions int, bytes uint64) {
	rt.tenantMu.Lock()
	defer rt.tenantMu.Unlock()
	if ts := rt.tenants[tenant]; ts != nil {
		return ts.sessions, ts.bytes
	}
	return 0, 0
}

// joinTenant enrols a context in a tenant (SetTenantCall). The caller
// holds ctx.mu. The session counts against the tenant's cap
// immediately, and the context's existing allocations charge against
// the byte cap — joining late does not dodge accounting.
func (rt *Runtime) joinTenant(ctx *Context, tenant string) api.Error {
	if tenant == "" {
		return api.ErrInvalidValue
	}
	if ctx.tenant == tenant {
		return api.Success
	}
	if ctx.tenant != "" {
		// Re-announcing under a different tenant moves the membership.
		rt.leaveTenant(ctx)
	}
	usage := rt.mm.UsageOf(ctx.id)
	rt.tenantMu.Lock()
	ts := rt.tenants[tenant]
	if ts == nil {
		// No quota installed: membership is free (recorded so a later
		// quota applies to it) with unlimited limits.
		ts = &tenantState{}
		rt.tenants[tenant] = ts
	}
	if ts.maxSessions > 0 && ts.sessions >= ts.maxSessions {
		rt.tenantMu.Unlock()
		rt.quotaRejects.Add(1)
		rt.obsTenants.Tenant(tenant).AddQuotaReject()
		return api.ErrQuotaExceeded
	}
	if ts.hostBytes > 0 && ts.bytes+usage > ts.hostBytes {
		rt.tenantMu.Unlock()
		rt.quotaRejects.Add(1)
		rt.obsTenants.Tenant(tenant).AddQuotaReject()
		return api.ErrQuotaExceeded
	}
	ts.sessions++
	ts.bytes += usage
	rt.tenantMu.Unlock()
	ctx.tenant = tenant
	ctx.tenantCharged = usage
	// Cache the tenant's attribution bundle on the context (we hold
	// ctx.mu) and route lower-layer accounting (memmgr swap/checkpoint/
	// dedup bytes) for this context to it. Everything the session does
	// from here on is attributed to the tenant.
	ctx.tm = rt.obsTenants.Tenant(tenant)
	ctx.tm.SessionJoin()
	rt.obsTenants.BindCtx(ctx.id, ctx.tm)
	return api.Success
}

// leaveTenant removes a context from its tenant, refunding its session
// slot and charged bytes. Caller holds ctx.mu (or is in teardown, where
// the dispatcher is gone).
func (rt *Runtime) leaveTenant(ctx *Context) {
	if ctx.tenant == "" {
		return
	}
	rt.tenantMu.Lock()
	if ts := rt.tenants[ctx.tenant]; ts != nil {
		ts.sessions--
		if ts.bytes >= ctx.tenantCharged {
			ts.bytes -= ctx.tenantCharged
		} else {
			ts.bytes = 0
		}
		if ts.sessions <= 0 && ts.bytes == 0 && ts.maxSessions == 0 && ts.hostBytes == 0 {
			delete(rt.tenants, ctx.tenant)
		}
	}
	rt.tenantMu.Unlock()
	ctx.tenant = ""
	ctx.tenantCharged = 0
	if ctx.tm != nil {
		ctx.tm.SessionLeave()
		rt.obsTenants.UnbindCtx(ctx.id)
		ctx.tm = nil
	}
}

// tenantCharge reserves size bytes against the context's tenant quota
// before an allocation. Caller holds ctx.mu.
func (rt *Runtime) tenantCharge(ctx *Context, size uint64) api.Error {
	if ctx.tenant == "" {
		return api.Success
	}
	rt.tenantMu.Lock()
	defer rt.tenantMu.Unlock()
	ts := rt.tenants[ctx.tenant]
	if ts == nil {
		return api.Success
	}
	if ts.hostBytes > 0 && ts.bytes+size > ts.hostBytes {
		rt.quotaRejects.Add(1)
		if ctx.tm != nil {
			ctx.tm.AddQuotaReject()
		}
		return api.ErrQuotaExceeded
	}
	ts.bytes += size
	ctx.tenantCharged += size
	return api.Success
}

// tenantUncharge refunds size bytes (a failed or freed allocation).
// Caller holds ctx.mu.
func (rt *Runtime) tenantUncharge(ctx *Context, size uint64) {
	if ctx.tenant == "" {
		return
	}
	if size > ctx.tenantCharged {
		size = ctx.tenantCharged
	}
	ctx.tenantCharged -= size
	rt.tenantMu.Lock()
	if ts := rt.tenants[ctx.tenant]; ts != nil {
		if ts.bytes >= size {
			ts.bytes -= size
		} else {
			ts.bytes = 0
		}
	}
	rt.tenantMu.Unlock()
}

// QuotaRejects reports how many calls quota enforcement rejected.
func (rt *Runtime) QuotaRejects() int64 { return rt.quotaRejects.Load() }
