package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/cudart"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/transport"
)

// testEnv bundles a runtime over custom devices with helpers to open
// in-process clients.
type testEnv struct {
	t     *testing.T
	clock *sim.Clock
	crt   *cudart.Runtime
	rt    *Runtime
	wg    sync.WaitGroup
}

// smallSpec is a scaled-down GPU: 1 MiB of memory, reference speed.
func smallSpec(mem uint64, speed float64) gpu.Spec {
	return gpu.Spec{Name: "test-gpu", SMs: 4, CoresPerSM: 8, ClockMHz: 1000,
		MemBytes: mem, Speed: speed, BandwidthBps: 1 << 40}
}

// newEnv builds a runtime over the given device specs. The context
// reservation is shrunk to 1 KiB so tiny devices work.
func newEnv(t *testing.T, cfg Config, specs ...gpu.Spec) *testEnv {
	t.Helper()
	clock := sim.NewClock(1e-7) // 1 model s = 0.1 µs wall: instant
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	crt.SetLimits(1024, 0, 0)
	if cfg.CallOverhead == 0 {
		cfg.CallOverhead = -1 // no modeled overhead unless asked
	}
	if cfg.BindBackoff == 0 {
		cfg.BindBackoff = time.Millisecond
	}
	rt, err := New(crt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := &testEnv{t: t, clock: clock, crt: crt, rt: rt}
	t.Cleanup(func() {
		rt.Close()
		env.wg.Wait()
	})
	return env
}

// client opens an in-process connection served by the runtime.
func (e *testEnv) client() *frontend.Client {
	c, s := transport.Pipe()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.rt.Serve(s)
	}()
	return frontend.Connect(c)
}

// testBinary registers a deterministic vector-increment kernel so data
// flow is checkable end to end.
const testBinID = "core-test-bin"

func testBinary() api.FatBinary {
	return api.FatBinary{
		ID: testBinID,
		Kernels: []api.KernelMeta{
			{Name: "inc", BaseTime: time.Millisecond},
			{Name: "noop", BaseTime: time.Millisecond}, // no impl: timing only
			{Name: "slow", BaseTime: 10 * time.Second},
			{Name: "dyn", BaseTime: time.Millisecond, UsesDynamicAlloc: true},
		},
	}
}

func init() {
	api.RegisterKernelImpl(testBinID, "inc", func(mem api.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		n := int(scalars[0])
		for i := 0; i < n; i++ {
			buf[i]++
		}
		return nil
	})
}

func TestEndToEndDataFlow(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()

	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{10, 20, 30, 40}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c.MemcpyDH(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{13, 23, 33, 43}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("result = %v, want %v", out, want)
		}
	}
}

func TestDeviceCountReportsVGPUs(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 3}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	n, err := c.DeviceCount()
	if err != nil || n != 6 {
		t.Errorf("DeviceCount = %d, %v; want 6 (vGPUs, not physical)", n, err)
	}
	if err := c.SetDevice(42); err != nil {
		t.Errorf("SetDevice should be ignored, got %v", err)
	}
}

func TestBindingDelayedUntilFirstLaunch(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if got := env.rt.Metrics().Binds; got != 0 {
		t.Errorf("Binds = %d before first launch, want 0", got)
	}
	if env.crt.Device(0).Stats().H2DBytes != 0 {
		t.Error("data reached the device before any launch (deferral broken)")
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if got := env.rt.Metrics().Binds; got != 1 {
		t.Errorf("Binds = %d after first launch, want 1", got)
	}
}

func TestBadPointersRejectedBeforeDevice(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(42, []byte{1}); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("MemcpyHD to wild ptr err = %v", err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{99}}); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("Launch with wild ptr err = %v", err)
	}
	p, _ := c.Malloc(8)
	if err := c.MemcpyHD(p, make([]byte, 16)); !errors.Is(err, api.ErrSizeMismatch) {
		t.Errorf("oversized MemcpyHD err = %v", err)
	}
	// Nothing ever reached the device.
	if got := env.rt.Metrics().Binds; got != 0 {
		t.Errorf("bad ops caused %d binds", got)
	}
	if st := env.rt.Metrics().Memory; st.BadOpsRejected == 0 {
		t.Error("BadOpsRejected = 0")
	}
}

func TestUnknownKernel(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.Launch(api.LaunchCall{Kernel: "nope"}); !errors.Is(err, api.ErrNotRegistered) {
		t.Errorf("launch of unknown kernel err = %v", err)
	}
}

func TestWorkingSetTooBigForAnyDevice(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(2 << 20) // exceeds the 1 MiB device
	if err != nil {
		t.Fatal(err) // virtual allocation itself succeeds
	}
	err = c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
	if !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("oversized working set launch err = %v, want ErrMemoryAllocation", err)
	}
}

// TestIntraAppSwapEndToEnd is the §4.5 three-matrix walk-through driven
// through the full stack: per-kernel working sets fit the device but
// the application's total footprint does not.
func TestIntraAppSwapEndToEnd(t *testing.T) {
	// Device: 1 MiB minus 1 KiB reservation per vGPU. Three buffers of
	// 384 KiB: any two fit, three don't.
	env := newEnv(t, Config{VGPUsPerDevice: 1}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	const size = 384 << 10
	var bufs [3]api.DevPtr
	for i := range bufs {
		p, err := c.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		bufs[i] = p
	}
	if err := c.MemcpyHDSynthetic(bufs[0], size); err != nil {
		t.Fatal(err)
	}
	// kernel 1 uses A,B; kernel 2 uses B,C.
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{bufs[0], bufs[1]}, Scalars: []uint64{0}}); err != nil {
		t.Fatalf("kernel 1: %v", err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{bufs[1], bufs[2]}, Scalars: []uint64{0}}); err != nil {
		t.Fatalf("kernel 2: %v", err)
	}
	m := env.rt.Metrics()
	if m.IntraAppSwaps == 0 {
		t.Errorf("IntraAppSwaps = 0, want > 0")
	}
	if m.InterAppSwaps != 0 {
		t.Errorf("InterAppSwaps = %d, want 0 (single app)", m.InterAppSwaps)
	}
}

// TestInterAppSwapEndToEnd: two applications whose footprints each fit
// the device but not together time-share one GPU via inter-application
// swap. The interleaving is driven deterministically: each app launches
// while the other sits in a CPU phase (idle connection).
func TestInterAppSwapEndToEnd(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1))

	a, b := env.client(), env.client()
	defer a.Close()
	defer b.Close()
	setup := func(c *frontend.Client) api.DevPtr {
		t.Helper()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
		p, err := c.Malloc(600 << 10) // 600 KiB each; 2x600 KiB > 1 MiB
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	pa, pb := setup(a), setup(b)

	// idle lets "now - lastActive" exceed the victim-idle threshold;
	// at this clock scale a hair of wall time is hours of model time.
	idle := func() { time.Sleep(2 * time.Millisecond) }

	launch := func(c *frontend.Client, p api.DevPtr) error {
		return c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
	}
	if err := launch(a, pa); err != nil {
		t.Fatalf("a launch 1: %v", err)
	}
	idle()
	// b's launch cannot fit next to a's data: a (idle, in a "CPU
	// phase") must be swapped out.
	if err := launch(b, pb); err != nil {
		t.Fatalf("b launch: %v", err)
	}
	idle()
	// And back again.
	if err := launch(a, pa); err != nil {
		t.Fatalf("a launch 2: %v", err)
	}

	m := env.rt.Metrics()
	if m.InterAppSwaps < 2 {
		t.Errorf("InterAppSwaps = %d, want >= 2 (one each way)", m.InterAppSwaps)
	}
	if m.Memory.SwapOps == 0 {
		t.Errorf("SwapOps = 0, want > 0")
	}
	if m.Binds < 2 {
		t.Errorf("Binds = %d, want >= 2", m.Binds)
	}
}

// TestSerializationWithOneVGPU: with one vGPU per device, a second app
// waits for the first to finish (no time-sharing).
func TestSerializationWithOneVGPU(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1}, smallSpec(1<<20, 1))
	var order []int
	var mu sync.Mutex

	run := func(id int, c *frontend.Client) error {
		defer c.Close()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			return err
		}
		p, err := c.Malloc(64)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
				return err
			}
		}
		mu.Lock()
		order = append(order, id)
		mu.Unlock()
		return nil
	}

	c0 := env.client()
	c1 := env.client()
	errs := make(chan error, 2)
	go func() { errs <- run(0, c0) }()
	go func() { errs <- run(1, c1) }()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestFailureRecoveryPreservesData(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{100}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	// The kernel's output (101) lives only on device 0. Kill it.
	var boundDev int
	for _, ds := range env.rt.deviceList() {
		if ds.activeVGPUs() > 0 {
			boundDev = ds.index
		}
	}
	env.rt.FailDevice(boundDev)

	// Next launch must recover on the other device and replay.
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatalf("launch after failure: %v", err)
	}
	out, err := c.MemcpyDH(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 102 {
		t.Errorf("data after recovery = %d, want 102 (both kernels applied exactly once)", out[0])
	}
	m := env.rt.Metrics()
	if m.Recoveries == 0 || m.Replays == 0 || m.DeviceFailures != 1 {
		t.Errorf("metrics after failure = %+v", m)
	}
}

func TestCheckpointAvoidsReplay(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(16)
	if err := c.MemcpyHD(p, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var boundDev int
	for _, ds := range env.rt.deviceList() {
		if ds.activeVGPUs() > 0 {
			boundDev = ds.index
		}
	}
	env.rt.FailDevice(boundDev)

	out, err := c.MemcpyDH(p, 1)
	if err != nil {
		t.Fatalf("read after failure: %v", err)
	}
	if out[0] != 6 {
		t.Errorf("data = %d, want 6", out[0])
	}
	if m := env.rt.Metrics(); m.Replays != 0 {
		t.Errorf("Replays = %d after checkpoint, want 0", m.Replays)
	}
}

func TestAutoCheckpointAfterLongKernel(t *testing.T) {
	env := newEnv(t, Config{AutoCheckpoint: 5 * time.Second}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(16)
	if err := c.Launch(api.LaunchCall{Kernel: "slow", PtrArgs: []api.DevPtr{p}}); err != nil {
		t.Fatal(err)
	}
	if got := env.rt.Metrics().Memory.Checkpoints; got == 0 {
		t.Error("no automatic checkpoint after a 10s kernel with 5s threshold")
	}
}

func TestMigrationToFasterGPU(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1, EnableMigration: true},
		smallSpec(1<<20, 1.0), smallSpec(1<<20, 0.3))

	// App A grabs the fast GPU with a long kernel; app B lands on the
	// slow one. When A exits, B should be migrated to the fast GPU.
	a := env.client()
	if err := a.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Malloc(64)
	if err := a.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pa}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	b := env.client()
	defer b.Close()
	if err := b.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pb, _ := b.Malloc(64)
	if err := b.MemcpyHD(pb, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}

	// A exits; its fast vGPU frees with nobody waiting → migrate B.
	a.Close()
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.Metrics().Migrations == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.Metrics().Migrations == 0 {
		t.Fatal("no migration after fast GPU freed")
	}
	// B keeps computing, now on the fast device, data intact.
	if err := b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := b.MemcpyDH(pb, 1)
	if err != nil || out[0] != 9 {
		t.Errorf("data after migration = %v, %v; want 9", out, err)
	}
}

func TestOffloadToPeer(t *testing.T) {
	// Node B: plenty of room.
	envB := newEnv(t, Config{}, smallSpec(1<<20, 1))
	// Node A: one vGPU, offload as soon as one context waits.
	envA := newEnv(t, Config{
		VGPUsPerDevice:   1,
		OffloadThreshold: 1,
		PeerDial: func() (transport.Conn, error) {
			c, s := transport.Pipe()
			envB.wg.Add(1)
			go func() {
				defer envB.wg.Done()
				envB.rt.Serve(s)
			}()
			return c, nil
		},
	}, smallSpec(1<<20, 1))

	var stop atomic.Bool
	hold := func(c *frontend.Client, done chan error) {
		defer c.Close()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			done <- err
			return
		}
		p, _ := c.Malloc(64)
		for !stop.Load() {
			if err := c.Launch(api.LaunchCall{Kernel: "slow", PtrArgs: []api.DevPtr{p}}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}
	// Saturate node A: one bound, one waiting.
	d1, d2 := make(chan error, 1), make(chan error, 1)
	ca, cb := envA.client(), envA.client()
	go hold(ca, d1)
	go hold(cb, d2)
	defer stop.Store(true)

	// Wait for the queue to form.
	deadline := time.Now().Add(5 * time.Second)
	for envA.rt.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if envA.rt.QueueDepth() == 0 {
		t.Fatal("queue never formed")
	}

	// A third connection must be offloaded to node B. Route it through
	// HandleConn, the connection-manager entry point.
	pc, ps := transport.Pipe()
	envA.wg.Add(1)
	go func() {
		defer envA.wg.Done()
		envA.rt.HandleConn(ps)
	}()
	c3 := frontend.Connect(pc)
	if err := c3.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c3.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.MemcpyHD(p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c3.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := c3.MemcpyDH(p, 1)
	if err != nil || out[0] != 2 {
		t.Fatalf("offloaded app result = %v, %v", out, err)
	}
	c3.Close()

	if envA.rt.Metrics().Offloaded != 1 {
		t.Errorf("Offloaded = %d, want 1", envA.rt.Metrics().Offloaded)
	}
	if envB.rt.Metrics().Binds == 0 {
		t.Error("peer node served no binds")
	}
	stop.Store(true)
	if err := <-d1; err != nil {
		t.Fatal(err)
	}
	if err := <-d2; err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDeviceGraceful(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Malloc(16)
	if err := c.MemcpyHD(p, []byte{50}); err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	var boundDev int
	for _, ds := range env.rt.deviceList() {
		if ds.activeVGPUs() > 0 {
			boundDev = ds.index
		}
	}

	if err := env.rt.RemoveDevice(boundDev); err != nil {
		t.Fatal(err)
	}
	// Job continues on the remaining device; the graceful removal
	// checkpointed its state so nothing replays.
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := c.MemcpyDH(p, 1)
	if err != nil || out[0] != 52 {
		t.Errorf("data after removal = %v, %v; want 52", out, err)
	}
	if m := env.rt.Metrics(); m.Replays != 0 {
		t.Errorf("graceful removal caused %d replays", m.Replays)
	}
}

func TestAddDeviceServesWaiter(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1}, smallSpec(1<<20, 1))

	// Occupy the only vGPU.
	a := env.client()
	if err := a.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Malloc(16)
	if err := a.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pa}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	// Second app blocks waiting for a vGPU.
	b := env.client()
	defer b.Close()
	if err := b.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pb, _ := b.Malloc(16)
	done := make(chan error, 1)
	go func() {
		done <- b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{0}})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1", env.rt.QueueDepth())
	}

	// Hot-add a device: the waiter must get it.
	nd := gpu.NewDevice(1, smallSpec(1<<20, 1), env.clock)
	if _, err := env.rt.AddDevice(nd); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never served after AddDevice")
	}
	a.Close()
}

func TestExitReleasesDeviceMemory(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1))
	before := env.crt.Device(0).Available()
	for i := 0; i < 3; i++ {
		c := env.client()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
		p, _ := c.Malloc(10 << 10)
		if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	env.wg.Wait()
	if got := env.crt.Device(0).Available(); got != before {
		t.Errorf("device leaks: Available = %d, want %d", got, before)
	}
}

func TestPinnedContextExcludedFromSwap(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1))
	a := env.client()
	defer a.Close()
	if err := a.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Malloc(600 << 10)
	// dyn uses dynamic device allocation: the context gets pinned.
	if err := a.Launch(api.LaunchCall{Kernel: "dyn", PtrArgs: []api.DevPtr{pa}}); err != nil {
		t.Fatal(err)
	}

	// A competing context cannot steal a's memory via inter-app swap;
	// it must fall back to unbind-retry and eventually give up
	// (bounded attempts configured via a second runtime? — here we
	// just verify no inter-app swap happened against the pinned app).
	b := env.client()
	defer b.Close()
	if err := b.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	pb, _ := b.Malloc(600 << 10)
	done := make(chan error, 1)
	go func() {
		done <- b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{0}})
	}()

	time.Sleep(50 * time.Millisecond)
	if got := env.rt.Metrics().InterAppSwaps; got != 0 {
		t.Errorf("InterAppSwaps = %d against a pinned context, want 0", got)
	}
	// Free the pinned app's memory so b can finish.
	if err := a.Free(pa); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentClients(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 4}, smallSpec(1<<20, 1), smallSpec(1<<20, 0.5))
	const n = 24
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		c := env.client()
		go func(i int) {
			defer c.Close()
			if err := c.RegisterFatBinary(testBinary()); err != nil {
				errs <- err
				return
			}
			p, err := c.Malloc(uint64(1+i) << 10)
			if err != nil {
				errs <- err
				return
			}
			if err := c.MemcpyHDSynthetic(p, 1<<10); err != nil {
				errs <- err
				return
			}
			for k := 0; k < 4; k++ {
				if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
					errs <- err
					return
				}
			}
			if _, err := c.MemcpyDH(p, 16); err != nil {
				errs <- err
				return
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	env.wg.Wait()
	// All device memory back after everyone exits.
	for i := 0; i < env.crt.DeviceCount(); i++ {
		d := env.crt.Device(i)
		want := d.Capacity() - uint64(4)*1024 // 4 vGPU reservations
		if got := d.Available(); got != want {
			t.Errorf("device %d: Available = %d, want %d", i, got, want)
		}
	}
}

// TestCPUPhaseOverlap is the core timing claim of GPU sharing: with two
// vGPUs, one application's CPU phase overlaps the other's kernels, so
// the pair finishes faster than serialized execution. Runs at a clock
// scale where modeled sleeps dominate scheduling noise.
func TestCPUPhaseOverlap(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(vgpus int) time.Duration {
		clock := sim.NewClock(1e-3)
		devs := []*gpu.Device{gpu.NewDevice(0, smallSpec(1<<20, 1), clock)}
		crt := cudart.New(clock, devs...)
		crt.SetLimits(1024, 0, 0)
		rt, err := New(crt, Config{VGPUsPerDevice: vgpus, CallOverhead: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()

		app := func(done chan<- error) {
			c, s := transport.Pipe()
			go rt.Serve(s)
			cl := frontend.Connect(c)
			defer cl.Close()
			if err := cl.RegisterFatBinary(testBinary()); err != nil {
				done <- err
				return
			}
			p, err := cl.Malloc(64)
			if err != nil {
				done <- err
				return
			}
			for i := 0; i < 4; i++ {
				// 300ms kernel ("noop" is 1ms, timing-only: its lack
				// of a host impl keeps race-detector instrumentation
				// out of the measured window).
				if err := cl.Launch(api.LaunchCall{Kernel: "noop", PtrArgs: []api.DevPtr{p}, Repeat: 300}); err != nil {
					done <- err
					return
				}
				clock.Sleep(300 * time.Millisecond) // CPU phase
			}
			done <- nil
		}
		start := clock.Now()
		done := make(chan error, 2)
		go app(done)
		go app(done)
		for i := 0; i < 2; i++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		return clock.Now() - start
	}

	// Best of three per configuration: a GC or scheduler stall during
	// one run inflates wall time (and therefore measured model time)
	// for both phases; the minimum filters such stalls out.
	best := func(vgpus int) time.Duration {
		m := run(vgpus)
		for i := 0; i < 2; i++ {
			if d := run(vgpus); d < m {
				m = d
			}
		}
		return m
	}
	serialized := best(1)
	shared := best(2)
	t.Logf("serialized %v, shared %v", serialized, shared)
	// Perfect overlap would be ~2.7s vs ~4.8s serialized; require a
	// conservative 15% improvement to stay robust under noise.
	if float64(shared) > float64(serialized)*0.85 {
		t.Errorf("sharing (%v) not clearly faster than serialization (%v)", shared, serialized)
	}
}
