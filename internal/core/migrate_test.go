package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/failover"
	"gvrt/internal/faultinject"
	"gvrt/internal/sim"
	"gvrt/internal/transport"
)

// listen serves the runtime on a real TCP listener and returns its
// address — migration targets are dialed by address.
func (e *testEnv) listen(t *testing.T) string {
	t.Helper()
	l, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			s, err := l.Accept()
			if err != nil {
				return
			}
			e.wg.Add(1)
			go func() {
				defer e.wg.Done()
				e.rt.Serve(s)
			}()
		}
	}()
	return l.Addr()
}

// leaseTable builds a shared lease table on its own clock with a TTL
// long enough that nothing expires mid-test.
func leaseTable() *failover.Table {
	return failover.NewTable(time.Hour, sim.NewClock(1e-7).Now)
}

// migPattern fills n bytes with a deterministic pattern.
func migPattern(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i*7 + 3)
	}
	return buf
}

// TestDeposedOwnerFenced is the dedicated fencing regression: once a
// peer steals the session's lease, every mutating call from the old
// owner — including an in-flight launch — is rejected with ErrFenced.
func TestDeposedOwnerFenced(t *testing.T) {
	table := leaseTable()
	env := newEnv(t, Config{Leases: table, NodeName: "src"}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	inc := api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}
	if err := c.Launch(inc); err != nil {
		t.Fatal(err)
	}
	session, err := c.SessionID()
	if err != nil {
		t.Fatal(err)
	}

	// A peer steals the lease (the failover monitor's takeover step).
	table.Revoke(session)
	if _, err := table.Steal(session, "peer"); err != nil {
		t.Fatal(err)
	}

	if err := c.Launch(inc); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("launch after lease steal err = %v, want ErrFenced", err)
	}
	if err := c.MemcpyHD(p, []byte{9}); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("memcpy after lease steal err = %v, want ErrFenced", err)
	}
	if m := env.rt.Metrics(); m.FenceRejections < 2 {
		t.Errorf("FenceRejections = %d, want >= 2", m.FenceRejections)
	}
}

// TestLeaseExpiryRaceFenced drives the injected lease-expiry race: the
// fault plane revokes the session's lease the instant before the fence
// check of the Nth mutating call, so an acknowledged-in-flight write is
// rejected exactly as if a peer stole the lease mid-call.
func TestLeaseExpiryRaceFenced(t *testing.T) {
	plane := faultinject.New(faultinject.Plan{
		Name: "lease-race",
		Seed: 1,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointLeaseCheck, AtNth: 3, Action: faultinject.ActError},
		},
	})
	env := newEnv(t, Config{Leases: leaseTable(), NodeName: "src", Faults: plane},
		smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if _, err := c.Malloc(16); err != nil { // fence check 1
		t.Fatal(err)
	}
	if _, err := c.Malloc(16); err != nil { // fence check 2
		t.Fatal(err)
	}
	if _, err := c.Malloc(16); !errors.Is(err, api.ErrFenced) { // check 3: race fires
		t.Fatalf("malloc under injected lease race err = %v, want ErrFenced", err)
	}
	// The revocation is sticky — the connection stays fenced.
	if _, err := c.Malloc(16); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("malloc after injected lease race err = %v, want ErrFenced", err)
	}
}

// TestMigrationEndToEnd ships a live session between two runtimes over
// TCP: the source checkpoints, exports, and deposes itself; the target
// imports under a pending-op record and serves the client's resume with
// bit-exact data; the deposed source rejects late writes with ErrFenced.
func TestMigrationEndToEnd(t *testing.T) {
	table := leaseTable()
	src := newEnv(t, Config{Leases: table, NodeName: "src"}, smallSpec(1<<20, 1))
	dst := newEnv(t, Config{
		Leases: table, NodeName: "dst", SessionBase: 1 << 20, MigrateDir: t.TempDir(),
	}, smallSpec(1<<20, 1))
	addr := dst.listen(t)

	c1 := src.client()
	defer c1.Close()
	if err := c1.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	data := migPattern(160 << 10) // 2.5 wire chunks
	p, err := c1.Malloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, data); err != nil {
		t.Fatal(err)
	}
	inc := api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{8}}
	for i := 0; i < 2; i++ {
		if err := c1.Launch(inc); err != nil {
			t.Fatal(err)
		}
	}
	session, err := c1.SessionID()
	if err != nil {
		t.Fatal(err)
	}

	if err := c1.Migrate(addr); err != nil {
		t.Fatalf("Migrate: %v", err)
	}

	// The deposed source rejects the late write — the moved state is
	// unreachable from the old owner.
	if err := c1.Launch(inc); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("launch on deposed source err = %v, want ErrFenced", err)
	}
	ms := src.rt.Metrics()
	if ms.MigrationsStarted != 1 || ms.MigrationsCompleted != 1 || ms.MigrationsAborted != 0 {
		t.Fatalf("source migration counters = %d/%d/%d, want 1/1/0",
			ms.MigrationsStarted, ms.MigrationsCompleted, ms.MigrationsAborted)
	}
	if got := dst.rt.OrphanSessions(); len(got) != 1 || got[0] != session {
		t.Fatalf("target orphans = %v, want [%d]", got, session)
	}
	if l, ok := table.Lookup(session); !ok || l.Owner != "dst" {
		t.Fatalf("lease after migration = %+v, %v; want owned by dst", l, ok)
	}
	// The pending-op record resolved on commit: nothing to abort later.
	if ops := failover.PendingOps(dst.rt.cfg.MigrateDir); len(ops) != 0 {
		t.Fatalf("unresolved pending ops after commit: %+v", ops)
	}

	// The client reconnects to the target and resumes with the SAME
	// virtual pointer; data reflects both pre-migration launches.
	c2 := dst.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatalf("Resume on target: %v", err)
	}
	if err := c2.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Launch(inc); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	for i := 0; i < 8; i++ {
		want[i] += 3
	}
	if !bytes.Equal(out, want) {
		t.Fatalf("data after migration differs (first 16: got %v, want %v)", out[:16], want[:16])
	}
}

// TestMigrationDedupReuse: a manifest chunk whose content already lives
// in the target's dedup store (another tenant's identical data) is
// satisfied locally — zero bytes cross the wire for it.
func TestMigrationDedupReuse(t *testing.T) {
	table := leaseTable()
	src := newEnv(t, Config{Leases: table, NodeName: "src"}, smallSpec(1<<20, 1))
	dst := newEnv(t, Config{
		Leases: table, NodeName: "dst", SessionBase: 1 << 20, MigrateDir: t.TempDir(),
	}, smallSpec(1<<20, 1))
	addr := dst.listen(t)

	data := migPattern(128 << 10) // exactly 2 wire chunks

	// A target-local tenant writes the SAME content and checkpoints,
	// sealing its chunks into the target's dedup store.
	ct := dst.client()
	defer ct.Close()
	pt, err := ct.Malloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := ct.MemcpyHD(pt, data); err != nil {
		t.Fatal(err)
	}
	if err := ct.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if dst.rt.mm.DedupChunks() == 0 {
		t.Fatal("target checkpoint sealed no dedup chunks; reuse path untestable")
	}

	c1 := src.client()
	defer c1.Close()
	p, err := c1.Malloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, data); err != nil {
		t.Fatal(err)
	}
	session, err := c1.SessionID()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Migrate(addr); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if shipped := src.rt.timings.MigrationBytes.Snapshot().Sum; shipped != 0 {
		t.Errorf("migration shipped %d bytes; want 0 (all chunks dedup-reused)", shipped)
	}

	// The import is still bit-exact: reused chunks carry real content.
	c2 := dst.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("dedup-reused migration corrupted data")
	}
}

// TestMigrationResumableAfterPartition: a transfer severed mid-stream
// leaves its spooled chunks on the target; the retry ships ONLY the
// missing tail (resumable offsets), and the import commits bit-exact.
func TestMigrationResumableAfterPartition(t *testing.T) {
	plane := faultinject.New(faultinject.Plan{
		Name: "mig-partition",
		Seed: 1,
		Rules: []faultinject.Rule{
			// Frame 1 is Hello, frames 2.. are chunks: sever after one
			// chunk crossed.
			{Point: faultinject.PointMigrateTransfer, AtNth: 3, Action: faultinject.ActError},
		},
	})
	table := leaseTable()
	src := newEnv(t, Config{Leases: table, NodeName: "src", Faults: plane}, smallSpec(1<<20, 1))
	dst := newEnv(t, Config{
		Leases: table, NodeName: "dst", SessionBase: 1 << 20, MigrateDir: t.TempDir(),
	}, smallSpec(1<<20, 1))
	addr := dst.listen(t)

	c1 := src.client()
	defer c1.Close()
	data := migPattern(192 << 10) // 3 wire chunks
	p, err := c1.Malloc(uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, data); err != nil {
		t.Fatal(err)
	}
	session, err := c1.SessionID()
	if err != nil {
		t.Fatal(err)
	}

	if err := c1.Migrate(addr); err == nil {
		t.Fatal("migration survived an injected mid-stream partition")
	}
	if m := src.rt.Metrics(); m.MigrationsAborted != 1 {
		t.Fatalf("MigrationsAborted = %d, want 1", m.MigrationsAborted)
	}
	// The half-done transfer left a pending-op record and its spool.
	if ops := failover.PendingOps(dst.rt.cfg.MigrateDir); len(ops) != 1 || ops[0].Session != session {
		t.Fatalf("pending ops after partition = %+v, want one for session %d", ops, session)
	}

	// Retry: the target's Need excludes the spooled chunk, so strictly
	// fewer bytes cross the wire than the image holds.
	if err := c1.Migrate(addr); err != nil {
		t.Fatalf("retry after partition: %v", err)
	}
	shipped := src.rt.timings.MigrationBytes.Snapshot().Sum
	if shipped >= int64(len(data)) {
		t.Errorf("retry shipped %d bytes, want < %d (spooled chunks reused)", shipped, len(data))
	}
	if ops := failover.PendingOps(dst.rt.cfg.MigrateDir); len(ops) != 0 {
		t.Fatalf("pending ops not resolved by committed retry: %+v", ops)
	}

	c2 := dst.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, uint64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("resumed migration corrupted data")
	}
}

// TestMigrateFrameRejectsTornAndCorrupt: hostile or damaged wire frames
// arriving at the import endpoint are rejected before any byte reaches
// an image, and the connection remains usable for a valid transfer.
func TestMigrateFrameRejectsTornAndCorrupt(t *testing.T) {
	dst := newEnv(t, Config{MigrateDir: t.TempDir(), SessionBase: 1 << 20},
		smallSpec(1<<20, 1))
	conn := dst.clientConn()
	defer conn.Close()

	hello, err := failover.EncodePayload(failover.Hello{Session: 7, Owner: "src"})
	if err != nil {
		t.Fatal(err)
	}
	valid := failover.EncodeFrame(nil, failover.Frame{Type: failover.FrameHello, Session: 7, Payload: hello})

	for _, tc := range []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a migration frame at all")},
		{"torn", valid[:len(valid)-3]},
		{"corrupt-payload", flipByte(valid, len(valid)-6)},
		{"corrupt-header", flipByte(valid, 6)},
	} {
		reply, err := conn.Call(api.MigrateFrameCall{Frame: tc.frame})
		if err != nil {
			t.Fatalf("%s: transport error: %v", tc.name, err)
		}
		if reply.Code != api.ErrInvalidValue {
			t.Errorf("%s frame: code = %v, want ErrInvalidValue", tc.name, reply.Code)
		}
	}

	// The same connection still imports a well-formed Hello afterwards.
	reply, err := conn.Call(api.MigrateFrameCall{Frame: valid})
	if err != nil || reply.Code != 0 {
		t.Fatalf("valid hello after rejects: code %v, err %v", reply.Code, err)
	}
	rf, _, res := failover.DecodeFrame(reply.Data)
	if res != failover.DecodeOK || rf.Type != failover.FrameNeed {
		t.Fatalf("hello reply frame = %v type %d, want DecodeOK FrameNeed", res, rf.Type)
	}
}

// flipByte returns a copy of b with one bit-flipped byte at i.
func flipByte(b []byte, i int) []byte {
	c := append([]byte(nil), b...)
	c[i] ^= 0xff
	return c
}

// clientConn opens a raw transport connection served by the runtime,
// for tests that speak the wire protocol directly.
func (e *testEnv) clientConn() transport.Conn {
	c, s := transport.Pipe()
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		e.rt.Serve(s)
	}()
	return c
}
