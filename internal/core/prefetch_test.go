package core

import (
	"testing"
	"time"

	"gvrt/internal/api"
)

// prefetchCycle drives the K→A→B launch cycle used by the prefetch
// tests: K displaces everything, A fits after evicting K, and B fits in
// the headroom left beside A — so once the predictor has seen A→B, the
// background worker can restore B during the think time before its
// launch. think > 0 leaves the worker a window; 0 races it on purpose.
func prefetchCycle(t *testing.T, c interface {
	Launch(api.LaunchCall) error
}, ptrs [3]api.DevPtr, think time.Duration) {
	t.Helper()
	for _, p := range ptrs {
		if err := c.Launch(api.LaunchCall{Kernel: "noop", PtrArgs: []api.DevPtr{p}}); err != nil {
			t.Fatalf("Launch: %v", err)
		}
		if think > 0 {
			time.Sleep(think)
		}
	}
}

// TestPrefetchEndToEnd checks the whole speculative path: the per-
// context predictor learns the A→B transition, the background worker
// restores B's residency between launches, and the next launch of B
// counts as a prefetch hit.
func TestPrefetchEndToEnd(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}

	k, err := c.Malloc(900 << 10) // displaces everything else
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Malloc(400 << 10) // evicts k, leaves headroom
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Malloc(200 << 10) // fits beside a: prefetchable
	if err != nil {
		t.Fatal(err)
	}

	ptrs := [3]api.DevPtr{k, a, b}
	for cycle := 0; cycle < 50; cycle++ {
		prefetchCycle(t, c, ptrs, 2*time.Millisecond)
		if env.rt.Metrics().PrefetchHits > 0 {
			break
		}
	}
	m := env.rt.Metrics()
	if m.PrefetchIssued == 0 {
		t.Fatalf("PrefetchIssued = 0 after repeated A→B transitions, want > 0 (skipped %d)", m.PrefetchSkipped)
	}
	if m.PrefetchHits == 0 {
		t.Fatalf("PrefetchHits = 0 with %d speculative swap-ins issued", m.PrefetchIssued)
	}
	// The counters surface on the operator plane too.
	st := env.rt.StatsSnapshot()
	if st.PrefetchHits != m.PrefetchHits || st.PrefetchIssued != m.PrefetchIssued {
		t.Fatalf("wire stats prefetch counters %d/%d != metrics %d/%d",
			st.PrefetchIssued, st.PrefetchHits, m.PrefetchIssued, m.PrefetchHits)
	}
}

// TestPrefetchDisabled pins the opt-out: with DisablePrefetch no
// speculation is ever issued, while the workload itself behaves the
// same.
func TestPrefetchDisabled(t *testing.T) {
	env := newEnv(t, Config{DisablePrefetch: true}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	k, _ := c.Malloc(900 << 10)
	a, _ := c.Malloc(400 << 10)
	b, _ := c.Malloc(200 << 10)
	ptrs := [3]api.DevPtr{k, a, b}
	for cycle := 0; cycle < 5; cycle++ {
		prefetchCycle(t, c, ptrs, 0)
	}
	m := env.rt.Metrics()
	if m.PrefetchIssued != 0 || m.PrefetchHits != 0 || m.PrefetchSkipped != 0 {
		t.Fatalf("prefetch counters %d/%d/%d with DisablePrefetch, want all 0",
			m.PrefetchIssued, m.PrefetchHits, m.PrefetchSkipped)
	}
}
