package core

import (
	"errors"
	"fmt"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/memmgr"
	"gvrt/internal/trace"
)

// This file implements the kernel-launch path: delayed binding, the
// launch-row actions of Table 1 (device allocation + deferred bulk
// transfers), intra- and inter-application swapping (§4.5), the
// unbind-and-retry fallback, and failure recovery by replay (§4.6).

// launch services a cudaLaunch. The caller holds ctx.mu.
func (rt *Runtime) launch(ctx *Context, call api.LaunchCall) error {
	launchStart := rt.clock.Now()
	defer func() {
		lat := int64(rt.clock.Now() - launchStart)
		rt.timings.Launch.Observe(lat)
		if ctx.tm != nil {
			// gpuTimeNS was attributed at the Exec site; here the bundle
			// gets only the end-to-end latency observation (caller holds
			// ctx.mu; Observe is lock-free).
			ctx.tm.Launch.Observe(lat)
		}
	}()
	meta, _, err := ctx.findKernel(call.Kernel)
	if err != nil {
		return err
	}
	if meta.UsesDynamicAlloc && !ctx.pinned.Load() {
		// Applications that allocate device memory from kernels are
		// served but excluded from sharing and dynamic scheduling (§1).
		ctx.pinned.Store(true)
		rt.logf("ctx %d pinned: kernel %s uses dynamic device allocation", ctx.id, call.Kernel)
	}
	if meta.UsesNestedPointers {
		// Nested traversals require registered nested structures; the
		// runtime accepts the launch either way, but unregistered use
		// would break pointer consistency, so validate eagerly.
		if !ctx.hasNestedRegistration(call.PtrArgs) {
			return api.ErrUnsupported
		}
	}

	// Resolve the virtual pointer arguments; a bad pointer is rejected
	// here, before ever reaching the device (§4.5).
	ptes := ctx.scratchPTEs[:0]
	offs := ctx.scratchOffs[:0]
	for _, p := range call.PtrArgs {
		pte, off, err := rt.mm.Resolve(p)
		if err != nil || pte.CtxID() != ctx.id {
			return api.ErrInvalidDevicePointer
		}
		ptes = append(ptes, pte)
		offs = append(offs, off)
	}
	ctx.scratchPTEs, ctx.scratchOffs = ptes, offs

	kernelTime := time.Duration(call.Launches()) * meta.BaseTime
	ctx.nextKernelNS.Store(int64(kernelTime))

	// The launch's working set must fit the most capable device — the
	// runtime's standing assumption (§6, Related Work discussion).
	if err := rt.checkFits(ptes); err != nil {
		return err
	}

	// Credit the prefetcher for any entry a speculative swap-in left
	// fully resident, before the residency work below consumes the win.
	rt.consumePrefetchMarks(ptes)

	for attempt := 0; ; attempt++ {
		if rt.cfg.MaxBindAttempts > 0 && attempt >= rt.cfg.MaxBindAttempts {
			return api.ErrMemoryAllocation
		}
		if err := rt.ensureBound(ctx); err != nil {
			return err
		}
		v := rt.boundVGPU(ctx)

		rsp := rt.beginSpan("swap-in", ctx.id, ctx.curSpan)
		resErr := rt.ensureResident(ctx, v, ptes)
		rsp.endIfTimed(v.ds.index, "", resErr)
		switch err := resErr; {
		case err == nil:
			// Residency achieved; run the kernel.
		case errors.Is(err, api.ErrDeviceUnavailable):
			if rerr := rt.recover(ctx); rerr != nil {
				return rerr
			}
			continue
		case errors.Is(err, api.ErrMemoryAllocation):
			// Could not acquire memory on this device even after
			// swapping: unbind and retry later, possibly on another
			// device (§4.5). Backoff grows with consecutive failures
			// so conflicting applications do not thrash the swap area.
			rt.unbindSelf(ctx, v)
			rt.unbindRetries.Add(1)
			mult := attempt + 1
			if mult > 8 {
				mult = 8
			}
			rt.clock.Sleep(rt.cfg.backoff() * time.Duration(mult))
			continue
		default:
			return err
		}

		devCall := call
		devCall.PtrArgs = ctx.scratchArgs[:0]
		for i, pte := range ptes {
			devCall.PtrArgs = append(devCall.PtrArgs, pte.Device+api.DevPtr(offs[i]))
		}
		ctx.scratchArgs = devCall.PtrArgs
		esp := rt.beginSpan("launch", ctx.id, ctx.curSpan)
		err := v.cuctx.Launch(devCall)
		esp.end(v.ds.index, call.Kernel, err)
		if errors.Is(err, api.ErrDeviceUnavailable) {
			// The device died under this kernel. Mark it failed before
			// recovering: recovery only re-binds once the runtime knows
			// the vGPU is dead — otherwise the context stays "bound" to
			// the corpse and recovery spins without making progress.
			rt.onDeviceFailure(v.ds)
			if rerr := rt.recover(ctx); rerr != nil {
				return rerr
			}
			continue
		}
		if err != nil {
			return err
		}

		rt.mm.MarkKernelEffects(ptes, call.ReadOnly)
		ctx.gpuTimeNS.Add(int64(kernelTime))
		rt.gpuTimeNS.Add(int64(kernelTime))
		if ctx.tm != nil {
			ctx.tm.AddGPUTime(int64(kernelTime))
		}
		ctx.recordReplayResolved(call, ptes)

		// Re-fence immediately before the commit: the kernel took model
		// time, and ownership may have moved while it ran. A deposed
		// owner's launch must not reach the journal — the new owner
		// replays from the last durable commit, and a late write
		// slipping in here would fork the session's history.
		if err := rt.fence(ctx); err != nil {
			return err
		}

		// Write-ahead commit: the launch is only acknowledged once the
		// journal has it durably; a failure here surfaces to the client
		// instead of a success it could lose to a crash.
		if err := rt.journalCommit(ctx, call); err != nil {
			return err
		}

		if rt.cfg.AutoCheckpoint > 0 && kernelTime >= rt.cfg.AutoCheckpoint {
			if err := rt.checkpoint(ctx); err != nil {
				return err
			}
		}
		// Teach the predictor this transition and, if it already knows
		// what follows, start restoring that working set in the
		// background while the application runs its CPU phase.
		rt.notePrediction(ctx, call)
		return nil
	}
}

// findKernel locates kernel metadata in the context's registered
// binaries.
func (ctx *Context) findKernel(name string) (api.KernelMeta, string, error) {
	for id, fb := range ctx.binaries {
		if meta, err := fb.FindKernel(name); err == nil {
			return meta, id, nil
		}
	}
	return api.KernelMeta{}, "", api.ErrNotRegistered
}

// hasNestedRegistration reports whether at least one pointer argument
// has a registered nested structure.
func (ctx *Context) hasNestedRegistration(args []api.DevPtr) bool {
	for _, p := range args {
		pte, _, err := ctx.rt.mm.Resolve(p)
		if err == nil && pte.Nested != nil {
			return true
		}
	}
	return false
}

// recordReplay appends the launch to the context's replay log (§4.6).
func (ctx *Context) recordReplay(call api.LaunchCall) {
	ctx.replay = append(ctx.replay, call)
	for _, p := range call.PtrArgs {
		if pte, _, err := ctx.rt.mm.Resolve(p); err == nil {
			ctx.replayRefs[pte.Virtual] = true
		}
	}
}

// recordReplayResolved is recordReplay for the launch hot path, which
// already resolved every pointer argument: reuse those entries instead
// of a second page-table lookup per argument.
func (ctx *Context) recordReplayResolved(call api.LaunchCall, ptes []*memmgr.PTE) {
	ctx.replay = append(ctx.replay, call)
	for _, pte := range ptes {
		ctx.replayRefs[pte.Virtual] = true
	}
}

// ensureBound binds the context if necessary and clears any pending
// recovery first. Lock-free on the already-bound fast path.
func (rt *Runtime) ensureBound(ctx *Context) error {
	if ctx.needsRecovery.CompareAndSwap(true, false) {
		return rt.recover(ctx)
	}
	if ctx.vgpu.Load() != nil {
		return nil
	}
	return rt.bind(ctx)
}

// checkFits rejects launches whose working set cannot fit any healthy
// device even when fully alone.
func (rt *Runtime) checkFits(ptes []*memmgr.PTE) error {
	var need uint64
	for i, pte := range ptes {
		if dupPTE(ptes, i) {
			continue
		}
		need += pte.Size
	}
	reservation := rt.crt.ContextReservation()
	for _, ds := range rt.deviceList() {
		if !ds.healthy.Load() {
			continue
		}
		reserve := uint64(ds.nslots) * reservation
		if ds.dev.Capacity() >= need+reserve {
			return nil
		}
	}
	return api.ErrMemoryAllocation
}

// dupPTE reports whether ptes[i] already appeared earlier in the
// argument list. Kernel launches reference a handful of buffers, so a
// quadratic scan beats allocating a set on every call.
func dupPTE(ptes []*memmgr.PTE, i int) bool {
	for _, prev := range ptes[:i] {
		if prev.Virtual == ptes[i].Virtual {
			return true
		}
	}
	return false
}

// ensureResident makes every referenced entry device-resident on the
// context's bound vGPU, swapping as needed. It returns
// ErrMemoryAllocation when the device cannot be freed up (caller then
// unbinds and retries), ErrDeviceUnavailable on device failure.
//
// Following §4.5, the runtime first uses its accounting (capacity,
// availability and per-context usage) to make room for the launch's
// whole missing working set before issuing any allocation; only then
// does it allocate, falling back to the allocator's return code to
// catch fragmentation.
func (rt *Runtime) ensureResident(ctx *Context, v *vGPU, ptes []*memmgr.PTE) error {
	var missing uint64
	for i, pte := range ptes {
		if dupPTE(ptes, i) {
			continue
		}
		if !pte.IsAllocated {
			missing += pte.Size
		}
	}
	// Accounting-first: free enough device memory for the whole launch.
	for attempt := 0; missing > v.ds.dev.Available(); attempt++ {
		if attempt > 64 {
			return api.ErrMemoryAllocation
		}
		needed := missing - v.ds.dev.Available()
		if !rt.cfg.DisableIntraSwap && rt.intraSwap(ctx, v, ptes, needed) {
			continue
		}
		if !rt.cfg.DisableInterSwap && rt.interSwap(ctx, v, needed) {
			continue
		}
		return api.ErrMemoryAllocation
	}
	for _, pte := range ptes {
		for {
			err := rt.mm.EnsureAllocated(pte, v.cuctx)
			if err == nil {
				break
			}
			if !errors.Is(err, api.ErrMemoryAllocation) {
				if errors.Is(err, api.ErrDeviceUnavailable) {
					rt.onDeviceFailure(v.ds)
				}
				return err
			}
			// Fragmentation (or a concurrent allocation) bit after the
			// accounting said we fit. First try intra-application
			// swap: spill an entry of our own that this launch does
			// not reference (§4.5). Evict one entry at a time here —
			// the accounting already said we fit, so a small hole is
			// usually enough and over-evicting would churn the swap
			// area.
			if !rt.cfg.DisableIntraSwap && rt.intraSwap(ctx, v, ptes, 1) {
				continue
			}
			// Then inter-application swap: ask a co-located context in
			// a CPU phase to vacate the device (§4.5).
			if !rt.cfg.DisableInterSwap && rt.interSwap(ctx, v, pte.Size) {
				continue
			}
			return api.ErrMemoryAllocation
		}
	}
	// With the whole working set allocated, land the deferred transfers
	// of this binding epoch in one batched copy-engine submission.
	if err := rt.mm.FlushDeferred(ptes, v.cuctx); err != nil {
		if errors.Is(err, api.ErrDeviceUnavailable) {
			rt.onDeviceFailure(v.ds)
		}
		return err
	}
	return nil
}

// intraSwap spills the context's own resident entries that the pending
// launch does not reference, until at least needed bytes have been
// selected (or no victims remain). Victims are chosen in page-table
// order — the same one-at-a-time order the accounting loop used to
// produce — but are swapped out as a single batched submission, so
// displacing a whole working set costs one d2h engine round trip
// instead of one per entry. Returns true if any entry was swapped.
func (rt *Runtime) intraSwap(ctx *Context, v *vGPU, exclude []*memmgr.PTE, needed uint64) bool {
	excluded := make(map[api.DevPtr]bool, len(exclude))
	for _, pte := range exclude {
		excluded[pte.Virtual] = true
		if pte.Nested != nil {
			for _, m := range pte.Nested.Members {
				if mp, _, err := rt.mm.Resolve(m); err == nil {
					excluded[mp.Virtual] = true
				}
			}
		}
	}
	var victims []*memmgr.PTE
	var freed uint64
	for _, pte := range rt.mm.EntriesOf(ctx.id) {
		if !pte.IsAllocated || excluded[pte.Virtual] {
			continue
		}
		victims = append(victims, pte)
		freed += pte.Size
		if freed >= needed {
			break
		}
	}
	if len(victims) == 0 {
		return false
	}
	n, err := rt.mm.SwapOutEntries(victims, v.cuctx)
	rt.intraSwaps.Add(int64(n))
	if rt.cfg.Logf != nil || rt.cfg.Trace != nil {
		for _, pte := range victims[:n] {
			rt.logf("ctx %d intra-app swapped entry %#x (%d bytes)", ctx.id, uint64(pte.Virtual), pte.Size)
			rt.event(trace.KindIntraSwap, ctx.id, 0, v.ds.index, "")
		}
	}
	return err == nil && n > 0
}

// interSwap asks a context sharing the device to vacate it. The victim
// must be using at least the amount of memory required, must not be
// pinned, and must be in a CPU phase — i.e. its service lock can be
// taken without blocking; "an application in the middle of a kernel
// call may not [accept]" (§4.5). On success the victim's whole page
// table is swapped out and it is unbound from its vGPU.
func (rt *Runtime) interSwap(ctx *Context, v *vGPU, needed uint64) bool {
	ds := v.ds
	ds.mu.Lock()
	var candidates []*Context
	var slots []*vGPU
	for _, cand := range ds.vgpus {
		c := cand.bound
		if c == nil || c == ctx || c.pinned.Load() || c.exited.Load() {
			continue
		}
		candidates = append(candidates, c)
		slots = append(slots, cand)
	}
	ds.mu.Unlock()

	now := rt.clock.Now()
	minIdle := rt.cfg.minVictimIdle()
	for i, victim := range candidates {
		// Only a context genuinely in a CPU phase may honour the
		// request; one between back-to-back GPU calls may not (§4.5).
		if now-time.Duration(victim.lastActiveNS.Load()) < minIdle {
			continue
		}
		if !victim.mu.TryLock() {
			continue // mid-call: the request is not honoured
		}
		still := victim.vgpu.Load() == slots[i] && !victim.exited.Load()
		if !still {
			victim.mu.Unlock()
			continue
		}
		// The victim must be "using the amount of memory required"
		// (§4.5); its page-table flags are only safe to read under its
		// service lock, so the check happens here.
		if rt.mm.ResidentBytes(victim.id) < needed {
			victim.mu.Unlock()
			continue
		}
		_, err := rt.mm.SwapOutAll(victim.id, slots[i].cuctx)
		if err != nil {
			victim.mu.Unlock()
			if errors.Is(err, api.ErrDeviceUnavailable) {
				rt.onDeviceFailure(v.ds)
			}
			return false
		}
		victim.clearReplay() // fully swapped out == checkpointed
		rt.journalSnapshotLogged(victim.id)
		victim.vgpu.Store(nil)
		rt.mu.Lock()
		rt.releaseVGPULocked(slots[i])
		rt.mu.Unlock()
		victim.mu.Unlock()
		rt.interSwaps.Add(1)
		rt.logf("ctx %d inter-app swapped out ctx %d", ctx.id, victim.id)
		rt.event(trace.KindInterSwap, ctx.id, victim.id, v.ds.index, "")
		return true
	}
	return false
}

// unbindSelf swaps out the context's own entries and releases its vGPU
// so it can retry later, possibly on a different device.
func (rt *Runtime) unbindSelf(ctx *Context, v *vGPU) {
	if v == nil {
		return
	}
	if _, err := rt.mm.SwapOutAll(ctx.id, v.cuctx); err != nil {
		if errors.Is(err, api.ErrDeviceUnavailable) {
			rt.onDeviceFailure(v.ds)
			ctx.needsRecovery.Store(true)
			return
		}
		rt.mm.InvalidateResidency(ctx.id)
	}
	ctx.clearReplay()
	rt.journalSnapshotLogged(ctx.id)
	if ctx.vgpu.CompareAndSwap(v, nil) {
		rt.mu.Lock()
		rt.releaseVGPULocked(v)
		rt.mu.Unlock()
	}
	rt.event(trace.KindUnbind, ctx.id, 0, v.ds.index, "memory retry")
}

// onDeviceFailure marks a device failed and detaches every context
// bound to it; each context recovers lazily on its next device-touching
// call (§4.6: failed contexts are enqueued for recovery).
func (rt *Runtime) onDeviceFailure(ds *deviceState) {
	ds.mu.Lock()
	if !ds.healthy.Load() {
		ds.mu.Unlock()
		return
	}
	ds.healthy.Store(false)
	for _, v := range ds.vgpus {
		v.dead.Store(true)
		if c := v.bound; c != nil {
			c.needsRecovery.Store(true)
			c.vgpu.Store(nil)
			v.bound = nil
		}
	}
	ds.mu.Unlock()
	rt.deviceFailures.Add(1)
	rt.logf("device %d (%s) failed", ds.index, ds.dev.Spec().Name)
	rt.event(trace.KindFailure, 0, 0, ds.index, ds.dev.Spec().Name)
	// Start watching for the fault to clear so the device can be hot
	// re-admitted (health.go).
	rt.kickHealthMonitor()
}

// recover restores a context after its device failed or was removed:
// residency is invalidated (dirty device-only entries are marked lost),
// the context re-binds to a healthy device, and the kernels logged
// since the last checkpoint are replayed to regenerate the lost state
// (§4.6; the page table + swap area are the implicit checkpoint, and —
// unlike NVCR — only the memory operations required by not-yet-executed
// kernels are replayed, lazily via the ToCopy2Dev flags).
func (rt *Runtime) recover(ctx *Context) (err error) {
	sp := rt.beginSpan("recovery", ctx.id, ctx.curSpan)
	replayed := 0
	defer func() {
		sp.end(-1, fmt.Sprintf("%d kernels replayed", replayed), err)
	}()
	if v := ctx.vgpu.Load(); v != nil && (v.dead.Load() || !v.ds.healthy.Load()) {
		ctx.vgpu.Store(nil)
	}
	ctx.needsRecovery.Store(false)
	stillBound := ctx.vgpu.Load() != nil

	if !stillBound {
		rt.mm.InvalidateResidency(ctx.id)
		if err := rt.bind(ctx); err != nil {
			return err
		}
	}
	rt.recoveries.Add(1)

	// Replay the logged kernels in order.
	replay := append([]api.LaunchCall(nil), ctx.replay...)
	for _, call := range replay {
		v := rt.boundVGPU(ctx)
		if v == nil {
			if err := rt.bind(ctx); err != nil {
				return err
			}
			v = rt.boundVGPU(ctx)
		}
		ptes := make([]*memmgr.PTE, len(call.PtrArgs))
		offs := make([]uint64, len(call.PtrArgs))
		for i, p := range call.PtrArgs {
			pte, off, err := rt.mm.Resolve(p)
			if err != nil {
				return err
			}
			ptes[i], offs[i] = pte, off
		}
		if err := rt.ensureResident(ctx, v, ptes); err != nil {
			if errors.Is(err, api.ErrDeviceUnavailable) {
				return rt.recover(ctx)
			}
			return err
		}
		devCall := call
		devCall.PtrArgs = make([]api.DevPtr, len(ptes))
		for i, pte := range ptes {
			devCall.PtrArgs[i] = pte.Device + api.DevPtr(offs[i])
		}
		if err := v.cuctx.Launch(devCall); err != nil {
			if errors.Is(err, api.ErrDeviceUnavailable) {
				rt.onDeviceFailure(v.ds)
				return rt.recover(ctx)
			}
			return err
		}
		rt.mm.MarkKernelEffects(ptes, call.ReadOnly)
		rt.replays.Add(1)
		replayed++
	}
	rt.mm.ClearLost(ctx.id)
	rt.logf("ctx %d recovered (%d kernels replayed)", ctx.id, len(replay))
	rt.event(trace.KindRecovery, ctx.id, 0, -1, "")
	return nil
}

// FailDevice injects a device failure (test/experiment hook): the
// physical device starts erroring and the runtime notices immediately.
func (rt *Runtime) FailDevice(index int) {
	var ds *deviceState
	for _, d := range rt.deviceList() {
		if d.index == index {
			ds = d
			break
		}
	}
	if ds == nil {
		return
	}
	ds.dev.Fail()
	rt.onDeviceFailure(ds)
}
