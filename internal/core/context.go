package core

import (
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/memmgr"
	"gvrt/internal/obs"
	"gvrt/internal/sched"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// Context is the runtime-side representation of one application thread
// (§4.6's Context structure): its connection, registered binaries, the
// replay log since the last checkpoint, binding state and accounting.
//
// Locking: mu is the service lock — the context's dispatcher goroutine
// holds it for the duration of each call, and other parties
// (inter-application swap, migration, device removal) acquire it before
// touching the context's page-table entries. Binding fields (vgpu,
// granted, waiting membership, needsRecovery) are guarded by the
// runtime mutex. The *Time fields are atomics because scheduling
// policies read them while the owner updates them.
type Context struct {
	id    int64
	rt    *Runtime
	label string

	mu sync.Mutex

	// Guarded by rt.mu (scheduler state: waiting-list membership and
	// the grant hand-off).
	appID     string
	granted   *vGPU
	inWaiting bool
	arrived   time.Duration

	// Lock-free binding state. vgpu is written by the owner (bind,
	// unbind, recovery) and by device failure/removal detaching the
	// context; every hot-path read (boundVGPU) is a plain atomic load,
	// which is what lets the per-call path skip the scheduler lock
	// entirely (DESIGN.md §11).
	vgpu          atomic.Pointer[vGPU]
	needsRecovery atomic.Bool
	exited        atomic.Bool

	// Owner-goroutine state (under mu).
	binaries   map[string]api.FatBinary
	replay     []api.LaunchCall
	replayRefs map[api.DevPtr]bool
	// tenant is the announced tenant membership (SetTenantCall);
	// tenantCharged is how many bytes this context currently holds
	// against the tenant's byte quota (tenant.go).
	tenant        string
	tenantCharged uint64
	// tm is the tenant's attribution bundle, cached at admission so
	// hot-path attribution is a plain pointer read plus atomic adds —
	// no map lookup, no lock (every reader holds ctx.mu, like the
	// writer in joinTenant/leaveTenant). Nil until SetTenant.
	tm *obs.TenantMetrics
	// pinned marks contexts excluded from sharing and dynamic
	// scheduling because their kernels allocate device memory
	// dynamically (§1). Written by the owner, read by swap/migration
	// victim scans, hence atomic.
	pinned atomic.Bool
	// leaseEpoch is the session-lease epoch this node held when it
	// acquired ownership; the write fence compares it against the lease
	// table on every mutating call (fence.go). Atomic because resume()
	// updates it under rt.mu while the fence reads it under ctx.mu.
	leaseEpoch atomic.Uint64
	// deposed marks a connection whose session migrated away: every
	// later mutating call is fenced locally, without a table round trip.
	deposed atomic.Bool
	// migrate is the in-progress inbound transfer when this connection
	// is serving a migration source (migrate.go, under mu).
	migrate *migrateImport
	// curSpan is the in-flight call's root span ID; phase children
	// (queue-wait, bind, swap-in, launch, recovery) parent to it. Only
	// the dispatcher goroutine reads or writes it.
	curSpan trace.SpanID
	// Launch-path scratch (under mu), reused call to call so the hot
	// path stays allocation-free. Nothing downstream retains these: the
	// replay log and journal record the client's original call.
	scratchPTEs []*memmgr.PTE
	scratchOffs []uint64
	scratchArgs []api.DevPtr
	// Predictive-prefetch state (prefetch.go, under mu): for each
	// observed launch, the working set of the launch that followed it.
	predictor     map[launchKey][]api.DevPtr
	lastLaunch    launchKey
	hasLastLaunch bool

	gpuTimeNS    atomic.Int64
	nextKernelNS atomic.Int64
	lastActiveNS atomic.Int64
	deadlineNS   atomic.Int64
}

// ID returns the context identifier.
func (c *Context) ID() int64 { return c.id }

func (c *Context) gpuTime() time.Duration    { return time.Duration(c.gpuTimeNS.Load()) }
func (c *Context) nextKernel() time.Duration { return time.Duration(c.nextKernelNS.Load()) }

// waiterInfo builds the policy-visible view of the context. Callers
// hold rt.mu.
func (c *Context) waiterInfo() sched.Waiter {
	return sched.Waiter{
		CtxID:           c.id,
		Arrived:         c.arrived,
		NextKernelTime:  c.nextKernel(),
		ConsumedGPUTime: c.gpuTime(),
		MemDemand:       c.rt.mm.UsageOf(c.id),
		Deadline:        time.Duration(c.deadlineNS.Load()),
	}
}

// newContext registers a fresh context with the runtime.
func (rt *Runtime) newContext(label string) *Context {
	rt.mu.Lock()
	rt.nextCtx++
	ctx := &Context{
		id:         rt.nextCtx,
		rt:         rt,
		label:      label,
		binaries:   make(map[string]api.FatBinary),
		replayRefs: make(map[api.DevPtr]bool),
	}
	rt.ctxs[ctx.id] = ctx
	rt.mu.Unlock()
	if err := rt.leaseAcquire(ctx); err != nil {
		// Another node owns this ID live — a session-base misconfiguration.
		// The context stays registered but every mutating call will be
		// fenced (epoch 0 never matches a table entry).
		rt.logf("ctx %d: lease acquisition failed: %v", ctx.id, err)
	}
	if j := rt.journal; j != nil {
		j.ContextCreated(ctx.id)
	}
	rt.event(trace.KindConnect, ctx.id, 0, -1, label)
	return ctx
}

// Serve runs the dispatcher loop for one connection until the client
// exits or the connection drops. It is the per-connection body of the
// paper's multithreaded dispatcher (§4.3): call Serve on its own
// goroutine per accepted connection.
func (rt *Runtime) Serve(sc transport.ServerConn) {
	rt.ServeLabeled(sc, "")
}

// ServeLabeled is Serve with a diagnostic label attached to the context.
func (rt *Runtime) ServeLabeled(sc transport.ServerConn, label string) {
	ctx := rt.newContext(label)
	defer rt.teardown(ctx)
	for {
		call, err := sc.Recv()
		if err != nil {
			return
		}
		// A forwarding hop (offload proxy) wraps calls with its span ID
		// so this node's call spans parent across the wire; unwrap
		// before dispatch so handlers see the plain call.
		var remoteParent trace.SpanID
		if w, ok := call.(api.WithSpan); ok {
			var p uint64
			call, p = w.Unwrap()
			remoteParent = trace.SpanID(p)
		}
		served := rt.clock.Now()
		sp := rt.beginSpan("call."+call.CallName(), ctx.id, remoteParent)
		// Framework overhead: interception, queuing, scheduling (§5:
		// "all the overheads introduced by our framework").
		rt.clock.Sleep(rt.cfg.overhead())
		if h := rt.dispatchHook; h != nil {
			// Injected scheduler stall: the call sits in the dispatcher
			// for extra model time before being served.
			if dec := h.Check(); dec.Delay > 0 {
				rt.clock.Sleep(dec.Delay)
			}
		}
		rt.calls.Add(1)
		reply := func() api.Reply {
			// The service lock is released via defer so that even a
			// panic escaping a handler cannot leave the context locked
			// and deadlock teardown.
			ctx.mu.Lock()
			defer ctx.mu.Unlock()
			defer ctx.lastActiveNS.Store(int64(rt.clock.Now()))
			ctx.curSpan = sp.id()
			defer func() { ctx.curSpan = 0 }()
			r := rt.handle(ctx, call)
			if ctx.tm != nil {
				ctx.tm.AddCall(r.Code != api.Success)
			}
			return r
		}()
		sp.end(-1, "", reply.Code.Err())
		rt.timings.Call.Observe(call.CallName(), int64(rt.clock.Now()-served))

		if err := sc.Reply(reply); err != nil {
			return
		}
		if _, isExit := call.(api.ExitCall); isExit {
			return
		}
	}
}

// teardown releases everything a finished or disconnected context holds.
func (rt *Runtime) teardown(ctx *Context) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	var ops memmgr.DeviceOps
	ctx.exited.Store(true)
	rt.mu.Lock()
	if ctx.inWaiting {
		rt.dropWaiterLocked(ctx)
	}
	rt.mu.Unlock()
	v := ctx.vgpu.Load()
	if v != nil {
		ops = v.cuctx
	}
	rt.mm.ReleaseContext(ctx.id, ops)
	if v != nil {
		rt.mu.Lock()
		ctx.vgpu.Store(nil)
		rt.releaseVGPULocked(v)
		rt.mu.Unlock()
	}
	rt.mu.Lock()
	delete(rt.ctxs, ctx.id)
	rt.mu.Unlock()
	if mi := ctx.migrate; mi != nil && mi.spool != nil {
		// Keep the spool on disk: the pending record makes the dropped
		// transfer resumable (same epoch) or cleanly aborted at boot.
		mi.spool.Close()
		ctx.migrate = nil
	}
	rt.leaveTenant(ctx)
	rt.leaseRelease(ctx)
	rt.event(trace.KindExit, ctx.id, 0, -1, "")
}

// handle services one call; the caller holds ctx.mu.
func (rt *Runtime) handle(ctx *Context, call api.Call) api.Reply {
	// The write fence (DESIGN.md §13): a mutating call on a session this
	// node no longer owns is rejected before it can touch any state.
	if mutatingCall(call) {
		if err := rt.fence(ctx); err != nil {
			return api.Reply{Code: api.Code(err)}
		}
	}
	switch c := call.(type) {
	case api.RegisterFatBinaryCall:
		// Registration functions are issued ahead of binding (§4.3);
		// the binary reaches the bound vGPU's CUDA context at bind
		// time, or immediately if already bound. Kernel attributes the
		// toolchain did not set are derived from the shipped PTX (§1).
		api.AnnotateFromPTX(&c.Binary)
		ctx.binaries[c.Binary.ID] = c.Binary
		if v := rt.boundVGPU(ctx); v != nil {
			if err := v.cuctx.RegisterFatBinary(c.Binary); err != nil {
				return api.Reply{Code: api.Code(err)}
			}
		}
		return api.Reply{}

	case api.MallocCall:
		kind := memmgr.KindLinear
		switch c.Kind {
		case api.AllocPitched:
			kind = memmgr.KindPitched
		case api.AllocArray:
			kind = memmgr.KindArray
		}
		// Tenant byte quota (tenant.go): reserve before allocating,
		// refund if the allocation fails.
		if code := rt.tenantCharge(ctx, c.Size); code != api.Success {
			return api.Reply{Code: code}
		}
		ptr, err := rt.mm.Malloc(ctx.id, c.Size, kind)
		if err != nil {
			rt.tenantUncharge(ctx, c.Size)
		}
		return api.Reply{Code: api.Code(err), Ptr: ptr}

	case api.FreeCall:
		pte, off, err := rt.mm.Resolve(c.Ptr)
		if err != nil || off != 0 || pte.CtxID() != ctx.id {
			return api.Reply{Code: api.ErrInvalidDevicePointer}
		}
		// Freeing a buffer referenced by the replay log would make a
		// later replay unresolvable; checkpoint first so the log empties.
		if ctx.replayRefs[pte.Virtual] {
			if cerr := rt.checkpoint(ctx); cerr != nil {
				return api.Reply{Code: api.Code(cerr)}
			}
		}
		err = rt.deviceOp(ctx, func() error {
			return rt.mm.Free(pte, rt.boundOps(ctx))
		})
		if err == nil {
			rt.tenantUncharge(ctx, pte.Size)
		}
		return api.Reply{Code: api.Code(err)}

	case api.MemsetCall:
		pte, off, err := rt.mm.Resolve(c.Dst)
		if err != nil || pte.CtxID() != ctx.id {
			return api.Reply{Code: api.ErrInvalidDevicePointer}
		}
		if ctx.replayRefs[pte.Virtual] {
			if cerr := rt.checkpoint(ctx); cerr != nil {
				return api.Reply{Code: api.Code(cerr)}
			}
		}
		err = rt.deviceOp(ctx, func() error {
			return rt.mm.Memset(pte, off, c.Value, c.Size, rt.boundOps(ctx))
		})
		return api.Reply{Code: api.Code(err)}

	case api.MemcpyHDCall:
		pte, off, err := rt.mm.Resolve(c.Dst)
		if err != nil || pte.CtxID() != ctx.id {
			return api.Reply{Code: api.ErrInvalidDevicePointer}
		}
		// A host write over a buffer referenced by the replay log
		// would corrupt a later replay; checkpoint first so the log
		// empties (§4.6).
		if ctx.replayRefs[pte.Virtual] {
			if cerr := rt.checkpoint(ctx); cerr != nil {
				return api.Reply{Code: api.Code(cerr)}
			}
		}
		err = rt.deviceOp(ctx, func() error {
			return rt.mm.CopyHD(pte, off, c.Data, c.Size, rt.boundOps(ctx))
		})
		return api.Reply{Code: api.Code(err)}

	case api.MemcpyDHCall:
		pte, off, err := rt.mm.Resolve(c.Src)
		if err != nil || pte.CtxID() != ctx.id {
			return api.Reply{Code: api.ErrInvalidDevicePointer}
		}
		// Reading a buffer a logged kernel references must checkpoint
		// first: it regenerates lost device state on a resumed session
		// (so the read cannot serve pre-kernel swap data) and empties
		// the log before post-kernel bytes reach the swap area (so a
		// later replay cannot re-apply the kernel to its own output).
		if ctx.replayRefs[pte.Virtual] {
			if cerr := rt.checkpoint(ctx); cerr != nil {
				return api.Reply{Code: api.Code(cerr)}
			}
		}
		var data []byte
		err = rt.deviceOp(ctx, func() error {
			var e error
			data, e = rt.mm.CopyDH(pte, off, c.Size, rt.boundOps(ctx))
			return e
		})
		return api.Reply{Code: api.Code(err), Data: data}

	case api.MemcpyDDCall:
		return api.Reply{Code: api.Code(rt.memcpyDD(ctx, c))}

	case api.LaunchCall:
		return api.Reply{Code: api.Code(rt.launch(ctx, c))}

	case api.SetDeviceCall:
		// Ignored: device procurement is abstracted away (§4.3).
		return api.Reply{}

	case api.GetDeviceCountCall:
		// Overridden: applications see virtual, not physical, GPUs.
		return api.Reply{Count: rt.VGPUCount()}

	case api.SynchronizeCall:
		if v := rt.boundVGPU(ctx); v != nil {
			return api.Reply{Code: api.Code(rt.deviceOp(ctx, func() error {
				if v := rt.boundVGPU(ctx); v != nil {
					return v.cuctx.Synchronize()
				}
				return nil
			}))}
		}
		return api.Reply{}

	case api.SetDeadlineCall:
		// QoS hint (§2): record the absolute model-time deadline for
		// deadline-aware waiting-list policies.
		if c.Relative > 0 {
			ctx.deadlineNS.Store(int64(rt.clock.Now() + c.Relative))
		} else {
			ctx.deadlineNS.Store(0)
		}
		return api.Reply{}

	case api.SetAppIDCall:
		// CUDA 4.0 compatibility (§4.8): remember which application
		// this thread belongs to, so sibling threads — which may share
		// data on the GPU — are bound to the same physical device.
		rt.mu.Lock()
		ctx.appID = c.AppID
		rt.mu.Unlock()
		return api.Reply{}

	case api.SetTenantCall:
		// Multi-tenant quota surface (tenant.go): enrol this thread in
		// the tenant, counting it against the tenant's session cap and
		// charging its existing allocations against the byte cap.
		return api.Reply{Code: rt.joinTenant(ctx, c.Tenant)}

	case api.RegisterNestedCall:
		parent, off, err := rt.mm.Resolve(c.Parent)
		if err != nil || off != 0 || parent.CtxID() != ctx.id {
			return api.Reply{Code: api.ErrInvalidDevicePointer}
		}
		return api.Reply{Code: api.Code(rt.mm.RegisterNested(parent, c.Members, c.Offsets))}

	case api.StatsCall:
		data, err := json.Marshal(rt.wireStats())
		if err != nil {
			return api.Reply{Code: api.ErrInvalidValue}
		}
		return api.Reply{Data: data}

	case api.GetSessionCall:
		return api.Reply{ID: ctx.id}

	case api.ResumeCall:
		return api.Reply{Code: rt.resume(ctx, c.ID)}

	case api.CheckpointCall:
		return api.Reply{Code: api.Code(rt.checkpoint(ctx))}

	case api.MigrateCall:
		return api.Reply{Code: api.Code(rt.migrateSession(ctx, c.Target))}

	case api.MigrateFrameCall:
		return rt.handleMigrateFrame(ctx, c.Frame)

	case api.AdoptCall:
		n, err := rt.AdoptJournalDir(c.Dir)
		return api.Reply{Code: api.Code(err), Count: n}

	case api.PingCall:
		// Liveness probe (the breaker's half-open test): deliberately
		// touches no context or device state.
		return api.Reply{}

	case api.ExitCall:
		return api.Reply{}

	default:
		return api.Reply{Code: api.ErrInvalidValue}
	}
}

// memcpyDD routes a device-to-device copy through the swap area so it
// works across residency states.
func (rt *Runtime) memcpyDD(ctx *Context, c api.MemcpyDDCall) error {
	src, soff, err := rt.mm.Resolve(c.Src)
	if err != nil || src.CtxID() != ctx.id {
		return api.ErrInvalidDevicePointer
	}
	dst, doff, err := rt.mm.Resolve(c.Dst)
	if err != nil || dst.CtxID() != ctx.id {
		return api.ErrInvalidDevicePointer
	}
	// Same checkpoint-first guards as MemcpyHD/MemcpyDH: reading src
	// must not surface stale or double-replayable data, and writing dst
	// must not corrupt a later replay.
	if ctx.replayRefs[src.Virtual] || ctx.replayRefs[dst.Virtual] {
		if cerr := rt.checkpoint(ctx); cerr != nil {
			return cerr
		}
	}
	var data []byte
	if err := rt.deviceOp(ctx, func() error {
		var e error
		data, e = rt.mm.CopyDH(src, soff, c.Size, rt.boundOps(ctx))
		return e
	}); err != nil {
		return err
	}
	return rt.deviceOp(ctx, func() error {
		return rt.mm.CopyHD(dst, doff, data, c.Size, rt.boundOps(ctx))
	})
}

// boundVGPU returns the context's vGPU. A lock-free atomic load: this
// sits on every device-touching call, several times per launch.
func (rt *Runtime) boundVGPU(ctx *Context) *vGPU {
	return ctx.vgpu.Load()
}

// boundOps returns the context's device operations, or nil when
// unbound (memory-manager calls then defer everything to swap).
func (rt *Runtime) boundOps(ctx *Context) memmgr.DeviceOps {
	if v := rt.boundVGPU(ctx); v != nil {
		return v.cuctx
	}
	return nil
}

// checkpoint flushes the context's dirty entries to swap and clears the
// replay log (§4.6): after it, the page table plus swap area fully
// capture the device state. With a journal attached, the flushed state
// is also recorded as one atomic image record.
func (rt *Runtime) checkpoint(ctx *Context) (err error) {
	sp := rt.beginSpan("checkpoint", ctx.id, ctx.curSpan)
	defer func() { sp.endIfTimed(-1, "", err) }()
	if ctx.needsRecovery.Load() && len(ctx.replay) > 0 {
		// The device state the log describes is gone (device failure, or
		// a session resumed after a daemon restart): regenerate it by
		// replay before flushing — clearing the log instead would
		// silently discard committed kernels.
		if err := rt.recover(ctx); err != nil {
			return err
		}
	}
	if v := rt.boundVGPU(ctx); v != nil {
		err := rt.deviceOp(ctx, func() error {
			if v := rt.boundVGPU(ctx); v != nil {
				_, e := rt.mm.Checkpoint(ctx.id, v.cuctx)
				return e
			}
			return nil
		})
		if err != nil {
			return err
		}
		rt.event(trace.KindCheckpoint, ctx.id, 0, v.ds.index, "")
	}
	ctx.clearReplay()
	return rt.journalSnapshot(ctx.id)
}

func (ctx *Context) clearReplay() {
	ctx.replay = ctx.replay[:0]
	for k := range ctx.replayRefs {
		delete(ctx.replayRefs, k)
	}
}

// deviceOp runs a device-touching operation with transparent failure
// recovery: when the bound device dies mid-operation, the context is
// recovered onto another device (§4.6) and the operation retried.
func (rt *Runtime) deviceOp(ctx *Context, f func() error) error {
	for attempt := 0; ; attempt++ {
		err := f()
		if !errors.Is(err, api.ErrDeviceUnavailable) {
			return err
		}
		if attempt > 8 {
			return err
		}
		if rerr := rt.recover(ctx); rerr != nil {
			return rerr
		}
	}
}
