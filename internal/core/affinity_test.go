package core

import (
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/frontend"
	"gvrt/internal/sched"
)

// TestAppAffinityBindsSiblingsTogether exercises the §4.8 CUDA 4.0
// compatibility: threads announcing the same application identifier are
// bound to the same physical device, even when another device has free
// virtual GPUs.
func TestAppAffinityBindsSiblingsTogether(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 2}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))

	launch := func(c *frontend.Client) error {
		p, err := c.Malloc(64)
		if err != nil {
			return err
		}
		return c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
	}

	var clients []*frontend.Client
	for i := 0; i < 2; i++ {
		c := env.client()
		clients = append(clients, c)
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
		if err := c.SetAppID("app-shared"); err != nil {
			t.Fatal(err)
		}
		if err := launch(c); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// Both siblings must be on the same device, despite the balanced
	// policy otherwise spreading load across devices.
	devices := map[int]int{}
	for _, ds := range env.rt.deviceList() {
		if n := ds.activeVGPUs(); n > 0 {
			devices[ds.index] += n
		}
	}
	if len(devices) != 1 {
		t.Errorf("siblings spread over %d devices (%v), want 1", len(devices), devices)
	}

	// A third, unrelated context lands on the other (empty) device.
	other := env.client()
	defer other.Close()
	if err := other.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := launch(other); err != nil {
		t.Fatal(err)
	}
	spread := map[int]int{}
	for _, ds := range env.rt.deviceList() {
		if n := ds.activeVGPUs(); n > 0 {
			spread[ds.index] += n
		}
	}
	if len(spread) != 2 {
		t.Errorf("with an unrelated third app, bound devices = %v, want both devices used", spread)
	}
}

// TestAppAffinityWaitsForSiblingDevice: a sibling waits for its
// application's device rather than binding to a free one elsewhere.
func TestAppAffinityWaitsForSiblingDevice(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1}, smallSpec(1<<20, 1), smallSpec(1<<20, 1))

	a := env.client()
	defer a.Close()
	if err := a.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := a.SetAppID("app-x"); err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Malloc(64)
	if err := a.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pa}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	// Device 0's single vGPU now belongs to app-x; device 1 is free.

	b := env.client()
	defer b.Close()
	if err := b.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := b.SetAppID("app-x"); err != nil {
		t.Fatal(err)
	}
	pb, _ := b.Malloc(64)
	done := make(chan error, 1)
	go func() {
		done <- b.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{pb}, Scalars: []uint64{0}})
	}()

	// b must queue (device 1 is free but off-limits).
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.QueueDepth() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1 (sibling must wait for its device)", env.rt.QueueDepth())
	}

	// When a exits, b takes the freed slot on the same device.
	a.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sibling never bound after its device freed")
	}
}

// TestSJFPolicyIntegration drives the runtime with the SJF policy and
// checks the waiting-list pick prefers the shorter pending kernel.
func TestSJFPolicyIntegration(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1, Policy: sched.ShortestJobFirst{}}, smallSpec(1<<20, 1))

	// Occupy the single vGPU with a long kernel.
	hog := env.client()
	if err := hog.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	ph, _ := hog.Malloc(64)
	if err := hog.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{ph}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	// Two waiters: slowJob queued first, fastJob second.
	mkWaiter := func(kernel string) (chan error, *frontend.Client) {
		c := env.client()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
		p, _ := c.Malloc(64)
		ch := make(chan error, 1)
		go func() {
			ch <- c.Launch(api.LaunchCall{Kernel: kernel, PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
		}()
		return ch, c
	}
	slowDone, slowC := mkWaiter("slow")
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.QueueDepth() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fastDone, fastC := mkWaiter("inc")
	for env.rt.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.QueueDepth() != 2 {
		t.Fatalf("QueueDepth = %d, want 2", env.rt.QueueDepth())
	}

	// Free the vGPU: SJF must pick the fast job despite its later
	// arrival.
	hog.Close()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fast job never ran")
	}
	// Binding is held until exit; release the fast job's vGPU so the
	// slow waiter can run.
	fastC.Close()
	defer slowC.Close()
	select {
	case <-slowDone:
		// The slow job eventually runs too, after the fast one. Its
		// kernel is 10 model seconds, instant at this clock scale.
	case <-time.After(10 * time.Second):
		t.Fatal("slow job never ran")
	}
}

// TestNestedRegistrationThroughAPI covers the RegisterNested call path
// end to end: parent embeds a member pointer, the kernel sees the
// member's device bytes through the patched pointer.
func TestNestedRegistrationThroughAPI(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	member, err := c.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(member, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 16)
	for i := 0; i < 8; i++ {
		img[8+i] = byte(uint64(member) >> (8 * i))
	}
	if err := c.MemcpyHD(parent, img); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterNested(parent, []api.DevPtr{member}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	// Launch over the parent: the member must become resident too.
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{parent}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}
	// Bad registrations are rejected.
	if err := c.RegisterNested(parent, []api.DevPtr{member}, []uint64{12}); err == nil {
		t.Error("offset without room for a pointer should fail")
	}
	if err := c.RegisterNested(0xbad, []api.DevPtr{member}, []uint64{0}); err == nil {
		t.Error("wild parent pointer should fail")
	}
}

// TestMemcpyDDThroughAPI covers device-to-device copies across
// residency states.
func TestMemcpyDDThroughAPI(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	src, _ := c.Malloc(16)
	dst, _ := c.Malloc(16)
	if err := c.MemcpyHD(src, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyDD(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	out, err := c.MemcpyDH(dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 1 || out[2] != 3 {
		t.Errorf("MemcpyDD result = %v", out)
	}
	if err := c.MemcpyDD(dst, src, 64); err == nil {
		t.Error("oversized MemcpyDD should fail")
	}
}

// TestEDFPolicyIntegration: a later-arriving waiter with a tight
// deadline overtakes an earlier deadline-less one.
func TestEDFPolicyIntegration(t *testing.T) {
	env := newEnv(t, Config{VGPUsPerDevice: 1, Policy: sched.EarliestDeadlineFirst{}}, smallSpec(1<<20, 1))

	hog := env.client()
	if err := hog.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	ph, _ := hog.Malloc(64)
	if err := hog.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{ph}, Scalars: []uint64{0}}); err != nil {
		t.Fatal(err)
	}

	mkWaiter := func(deadline time.Duration) (chan error, *frontend.Client) {
		c := env.client()
		if err := c.RegisterFatBinary(testBinary()); err != nil {
			t.Fatal(err)
		}
		if deadline > 0 {
			if err := c.SetDeadline(deadline); err != nil {
				t.Fatal(err)
			}
		}
		p, _ := c.Malloc(64)
		ch := make(chan error, 1)
		go func() {
			ch <- c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}})
		}()
		return ch, c
	}
	deadline := time.Now().Add(5 * time.Second)
	laxDone, laxC := mkWaiter(0)
	for env.rt.QueueDepth() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	urgentDone, urgentC := mkWaiter(2 * time.Second)
	for env.rt.QueueDepth() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.QueueDepth() != 2 {
		t.Fatalf("QueueDepth = %d, want 2", env.rt.QueueDepth())
	}

	hog.Close()
	select {
	case err := <-urgentDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("urgent waiter never ran")
	}
	urgentC.Close()
	defer laxC.Close()
	select {
	case err := <-laxDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lax waiter never ran")
	}
}
