package core

import (
	"bytes"
	"errors"
	"testing"

	"gvrt/internal/api"
)

// TestNodeRestartResume is the §4.6 full-restart scenario end to end:
// an application computes on node A, the node saves its state and goes
// down, a fresh node restores the state, and the application — using
// the same virtual pointers — resumes and finishes with bit-exact data.
func TestNodeRestartResume(t *testing.T) {
	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c1 := env1.client()
	if err := c1.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c1.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, []byte{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c1.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}); err != nil {
			t.Fatal(err)
		}
	}
	session, err := c1.SessionID()
	if err != nil || session == 0 {
		t.Fatalf("SessionID = %d, %v", session, err)
	}

	var state bytes.Buffer
	if err := env1.rt.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	c1.Close()
	env1.rt.Close()

	// A fresh node restores the state.
	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RestoreState(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := env2.rt.OrphanSessions(); len(got) != 1 || got[0] != session {
		t.Fatalf("OrphanSessions = %v, want [%d]", got, session)
	}

	// The application reconnects, resumes, and continues with the SAME
	// virtual pointer.
	c2 := env2.client()
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	if err := c2.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 4 total increments across the restart.
	want := []byte{14, 24, 34}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("data after restart = %v, want %v", out, want)
		}
	}
	if len(env2.rt.OrphanSessions()) != 0 {
		t.Error("session still orphaned after resume")
	}
}

func TestResumeValidation(t *testing.T) {
	env := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env.client()
	defer c.Close()
	// Unknown session.
	if err := c.Resume(999); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("Resume(unknown) err = %v", err)
	}
	// Resume after allocating is rejected.
	if _, err := c.Malloc(16); err != nil {
		t.Fatal(err)
	}
	if err := c.Resume(1); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("Resume after Malloc err = %v", err)
	}
}

func TestRestoreRejectsDuplicateAndGarbage(t *testing.T) {
	env1 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	c := env1.client()
	if _, err := c.Malloc(16); err != nil {
		t.Fatal(err)
	}
	var state bytes.Buffer
	if err := env1.rt.SaveState(&state); err != nil {
		t.Fatal(err)
	}
	c.Close()

	env2 := newEnv(t, Config{}, smallSpec(1<<20, 1))
	if err := env2.rt.RestoreState(bytes.NewReader(state.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Importing the same state twice collides on context IDs.
	if err := env2.rt.RestoreState(bytes.NewReader(state.Bytes())); err == nil {
		t.Error("duplicate restore accepted")
	}
	// Garbage input fails cleanly.
	if err := env2.rt.RestoreState(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("garbage restore accepted")
	}
}
