package core

import (
	"gvrt/internal/api"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// This file implements inter-node offloading (§4.7): when the node is
// overloaded — measured by the length of the queue of contexts waiting
// for a virtual GPU — newly arriving application threads are redirected
// to a peer node over the transport. Only the thread's GPU library
// calls move; its CPU phases keep running wherever the application
// lives.

// shouldOffload reports whether a newly admitted connection should be
// redirected: the load signal is the number of application threads the
// node would then host beyond its virtual-GPU capacity — the projected
// length of the pending/waiting queue once every admitted thread reaches
// its first kernel launch. (The paper uses the size of the
// pending-connections list; connections arrive before their first
// launch, so the projected queue is the same signal evaluated at
// admission time.)
func (rt *Runtime) shouldOffload(admitted int) bool {
	if rt.cfg.PeerDial == nil || rt.cfg.OffloadThreshold <= 0 {
		return false
	}
	// Circuit-broken peer: while the link's breaker is open, do not even
	// attempt the dial — the connection is served locally at once
	// instead of paying a doomed round trip per arrival.
	if !rt.peerAvailable() {
		return false
	}
	return rt.projectedQueue(admitted) >= rt.cfg.OffloadThreshold
}

// peerAvailable consults the cluster layer's link gate (nil means
// always available, preserving the pre-breaker behaviour for direct
// PeerDial users).
func (rt *Runtime) peerAvailable() bool {
	return rt.cfg.PeerAvailable == nil || rt.cfg.PeerAvailable()
}

// projectedQueue is the load signal shared by offloading and admission
// control: the number of application threads beyond virtual-GPU
// capacity once every admitted thread reaches its first kernel launch.
func (rt *Runtime) projectedQueue(admitted int) int {
	vgpus := 0
	for _, ds := range rt.deviceList() {
		if ds.healthy.Load() {
			vgpus += ds.nslots
		}
	}
	// Live contexts lag admissions by a beat (the dispatcher goroutine
	// registers them); take whichever count is larger so simultaneous
	// arrivals and long-lived threads are both seen.
	rt.mu.Lock()
	if l := len(rt.ctxs) + 1; l > admitted {
		admitted = l
	}
	rt.mu.Unlock()
	return admitted - vgpus
}

// shouldShed reports whether admission control rejects this connection:
// the projected queue exceeds the hard cap AND no peer can absorb the
// load (none configured, or its breaker is open). With a healthy peer
// the offload path handles the overflow instead.
func (rt *Runtime) shouldShed(admitted int) bool {
	if rt.cfg.AdmissionMaxQueue <= 0 {
		return false
	}
	if rt.cfg.PeerDial != nil && rt.peerAvailable() {
		return false
	}
	return rt.projectedQueue(admitted) > rt.cfg.AdmissionMaxQueue
}

// HandleConn is the connection-manager entry point: it either serves
// the connection locally or proxies it to a peer node. Call it on its
// own goroutine per accepted connection.
func (rt *Runtime) HandleConn(sc transport.ServerConn) {
	if rt.draining.Load() {
		// Graceful shutdown in progress: refuse new work fast (same
		// ErrOverloaded protocol the shed path speaks) while in-flight
		// sessions run to completion.
		rt.sheds.Add(1)
		rt.event(trace.KindShed, 0, 0, -1, "draining")
		rt.shed(sc)
		return
	}
	admitted := int(rt.admitted.Add(1))
	if rt.shouldOffload(admitted) {
		peer, err := rt.cfg.PeerDial()
		if err == nil {
			rt.admitted.Add(-1)
			rt.offloaded.Add(1)
			rt.logf("offloading connection to peer")
			rt.event(trace.KindOffload, 0, 0, -1, "")
			// The offload span lives for the whole proxied connection;
			// its ID travels with every forwarded call so the peer's
			// call spans parent to it across the wire.
			osp := rt.beginSpan("offload", 0, 0)
			rt.proxy(sc, peer, osp.id())
			osp.end(-1, "", nil)
			return
		}
		rt.logf("offload dial failed (%v); serving locally", err)
	}
	if rt.shouldShed(admitted) {
		rt.admitted.Add(-1)
		rt.sheds.Add(1)
		rt.logf("admission control: shedding connection (projected queue over cap)")
		rt.event(trace.KindShed, 0, 0, -1, "")
		rt.shed(sc)
		return
	}
	defer rt.admitted.Add(-1)
	rt.Serve(sc)
}

// shed rejects a connection fast: every call is answered with
// ErrOverloaded — a transient code retry layers understand — without
// ever creating a context or touching the waiting list. The goroutine
// parks on the (cheap) connection until the application gives up or
// exits.
func (rt *Runtime) shed(sc transport.ServerConn) {
	defer func() { _ = sc.Close() }()
	for {
		call, err := sc.Recv()
		if err != nil {
			return
		}
		if _, isExit := call.(api.ExitCall); isExit {
			_ = sc.Reply(api.Reply{})
			return
		}
		if err := sc.Reply(api.Reply{Code: api.ErrOverloaded}); err != nil {
			return
		}
	}
}

// proxy pumps calls from a local connection to a peer runtime and
// relays the replies, until either side closes. A non-zero parent
// span ID is attached to every forwarded call (api.WithSpan) so the
// peer's spans nest under this hop in a merged trace.
func (rt *Runtime) proxy(sc transport.ServerConn, peer transport.Conn, parent trace.SpanID) {
	defer func() {
		_ = peer.Close()
		// Close the application side too: once the proxy stops pumping,
		// a call left (or arriving) on sc would block forever against a
		// connection nobody reads. Closing it turns that into the clean
		// connection error the frontend already folds.
		_ = sc.Close()
	}()
	for {
		call, err := sc.Recv()
		if err != nil {
			return
		}
		out := call
		if parent != 0 {
			out = api.WithSpan{Parent: uint64(parent), Call: call}
		}
		reply, err := peer.Call(out)
		if err != nil {
			// The peer died mid-stream; the application observes a
			// connection-level failure, as it would with a crashed
			// remote daemon. A deadline expiry keeps its own code so
			// the caller can tell "peer too slow" from "peer gone" —
			// either way this proxied stream is finished.
			code := api.ErrConnectionClosed
			if api.Code(err) == api.ErrDeadlineExceeded {
				code = api.ErrDeadlineExceeded
			}
			_ = sc.Reply(api.Reply{Code: code})
			return
		}
		if err := sc.Reply(reply); err != nil {
			return
		}
		if _, isExit := call.(api.ExitCall); isExit {
			return
		}
	}
}

// ServeListener accepts connections until the listener closes, routing
// each through HandleConn. It is the daemon main loop.
func (rt *Runtime) ServeListener(l *transport.Listener) {
	for {
		sc, err := l.Accept()
		if err != nil {
			return
		}
		go rt.HandleConn(sc)
	}
}
