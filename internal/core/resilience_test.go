package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/frontend"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// TestOffloadDialFailureFallsBackLocal covers the connection manager's
// degraded path: the load signal says offload, but the peer dial fails —
// the connection must be served locally and the admission counter must
// stay balanced.
func TestOffloadDialFailureFallsBackLocal(t *testing.T) {
	var dials atomic.Int64
	env := newEnv(t, Config{
		VGPUsPerDevice:   1,
		OffloadThreshold: 1,
		PeerDial: func() (transport.Conn, error) {
			dials.Add(1)
			return nil, errors.New("peer unreachable")
		},
	}, smallSpec(1<<20, 1))

	// Two resident contexts push the projected queue over the
	// threshold for the next arrival.
	c1, c2 := env.client(), env.client()
	defer c1.Close()
	defer c2.Close()
	if _, err := c1.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Malloc(64); err != nil {
		t.Fatal(err)
	}

	// The third connection goes through HandleConn: offload is chosen,
	// the dial fails, and the connection falls back to local service.
	pc, ps := transport.Pipe()
	env.wg.Add(1)
	go func() {
		defer env.wg.Done()
		env.rt.HandleConn(ps)
	}()
	c3 := frontend.Connect(pc)
	if err := c3.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c3.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c3.MemcpyHD(p, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := c3.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := c3.MemcpyDH(p, 1)
	if err != nil || out[0] != 2 {
		t.Fatalf("local-fallback app result = %v, %v; want [2]", out, err)
	}
	c3.Close()

	if dials.Load() == 0 {
		t.Error("offload dial never attempted")
	}
	if got := env.rt.Metrics().Offloaded; got != 0 {
		t.Errorf("Offloaded = %d, want 0 (dial failed)", got)
	}
	// The fallback path must keep the admitted counter balanced once the
	// connection finishes.
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.admitted.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := env.rt.admitted.Load(); got != 0 {
		t.Errorf("admitted = %d after all connections closed, want 0", got)
	}
}

// TestDeviceReadmission drives the full self-healing arc: a device
// fails mid-workload, the fault clears (operator restore), and the
// health monitor re-admits the device — fresh vGPUs, a Readmissions
// tick and a device-level recovery trace event.
func TestDeviceReadmission(t *testing.T) {
	rec := trace.NewRecorder(256)
	env := newEnv(t, Config{VGPUsPerDevice: 2, Trace: rec}, smallSpec(1<<20, 1))
	dev := env.crt.Device(0)

	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}

	// The sticky fault: every Exec/Malloc fails until Restore.
	dev.Fail()
	// The failure is noticed at the next launch; with the only device
	// down, the launch dies with a resource error.
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{1}}); err == nil {
		t.Fatal("launch on a failed device succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.Metrics().DeviceFailures == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.Metrics().DeviceFailures == 0 {
		t.Fatal("device failure never registered")
	}

	// The fault clears; the health monitor must notice and re-admit.
	dev.Restore()
	deadline = time.Now().Add(10 * time.Second)
	for env.rt.Metrics().Readmissions == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if env.rt.Metrics().Readmissions == 0 {
		t.Fatal("restored device never re-admitted")
	}

	found := false
	for _, e := range rec.Filter(trace.KindRecovery) {
		if e.Device == 0 && e.Detail == "device re-admitted" {
			found = true
		}
	}
	if !found {
		t.Error("no device-level recovery event in the trace")
	}

	// The re-admitted device serves fresh work end to end.
	c2 := env.client()
	defer c2.Close()
	if err := c2.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p2, err := c2.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.MemcpyHD(p2, []byte{5}); err != nil {
		t.Fatal(err)
	}
	if err := c2.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p2}, Scalars: []uint64{1}}); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p2, 1)
	if err != nil || out[0] != 6 {
		t.Fatalf("post-readmission result = %v, %v; want [6]", out, err)
	}
}

// TestAdmissionControlSheds covers bounded admission: with no peer to
// absorb overflow and the projected queue over the hard cap, a new
// connection is rejected fast with ErrOverloaded instead of queueing
// without bound.
func TestAdmissionControlSheds(t *testing.T) {
	rec := trace.NewRecorder(64)
	env := newEnv(t, Config{
		VGPUsPerDevice:    1,
		AdmissionMaxQueue: 1,
		Trace:             rec,
	}, smallSpec(1<<20, 1))

	// Two resident contexts: projected queue for the next arrival is 2,
	// over the cap of 1.
	c1, c2 := env.client(), env.client()
	defer c1.Close()
	defer c2.Close()
	if _, err := c1.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Malloc(64); err != nil {
		t.Fatal(err)
	}

	pc, ps := transport.Pipe()
	env.wg.Add(1)
	go func() {
		defer env.wg.Done()
		env.rt.HandleConn(ps)
	}()
	c3 := frontend.Connect(pc)
	err := c3.RegisterFatBinary(testBinary())
	if api.Code(err) != api.ErrOverloaded {
		t.Fatalf("shed connection error = %v, want ErrOverloaded", err)
	}
	// Every further call keeps seeing the same transient code.
	if _, err := c3.Malloc(16); api.Code(err) != api.ErrOverloaded {
		t.Fatalf("second call on shed conn = %v, want ErrOverloaded", err)
	}
	c3.Close()

	if got := env.rt.Metrics().Sheds; got != 1 {
		t.Errorf("Sheds = %d, want 1", got)
	}
	if evs := rec.Filter(trace.KindShed); len(evs) != 1 {
		t.Errorf("shed trace events = %d, want 1", len(evs))
	}
	deadline := time.Now().Add(5 * time.Second)
	for env.rt.admitted.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := env.rt.admitted.Load(); got != 0 {
		t.Errorf("admitted = %d after shed connection closed, want 0", got)
	}
}
