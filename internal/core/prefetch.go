package core

import (
	"gvrt/internal/api"
	"gvrt/internal/memmgr"
)

// This file implements predictive prefetch (DESIGN.md §12): a per-
// context first-order predictor learns which working set follows each
// kernel launch, and a background worker speculatively restores that
// working set's residency during the application's CPU phase — so by
// the time the next launch arrives, its bind-time swap-in finds the
// data already on the device and the h2d transfer cost has been
// overlapped with host-side work instead of serialising with the
// kernel.
//
// The predictor key includes a fingerprint of the launch's pointer
// arguments, not just the kernel name: iterative applications often
// alternate the same kernel over flip-flop buffers, and a name-only
// predictor would keep predicting the set just used.
//
// Speculation is strictly best-effort and must never make anyone
// slower, so the worker:
//   - acquires the context's service lock with TryLock only — an
//     application mid-call is never delayed;
//   - performs no swapping of any kind — if the predicted set does not
//     fit in free device memory, the prediction is dropped (a forced
//     eviction on a guess could thrash a co-tenant or the context's
//     own live set);
//   - touches nothing when the context is unbound — prefetch must not
//     trigger binding, which is the scheduler's decision.

// launchKey identifies a launch for prediction purposes.
type launchKey struct {
	kernel string
	args   uint64
}

// argsFingerprint hashes the launch's virtual pointer arguments
// (FNV-1a over the raw pointer words, order-sensitive).
func argsFingerprint(ptrs []api.DevPtr) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range ptrs {
		v := uint64(p)
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	return h
}

// prefetchReq asks the worker to restore one context's predicted
// working set.
type prefetchReq struct {
	ctx  *Context
	ptrs []api.DevPtr
}

// notePrediction records the observed launch transition and, when the
// predictor knows what follows this launch, hands the predicted
// working set to the background worker. Called at the end of a
// successful launch, under ctx.mu.
func (rt *Runtime) notePrediction(ctx *Context, call api.LaunchCall) {
	if rt.cfg.DisablePrefetch {
		return
	}
	if ctx.predictor == nil {
		ctx.predictor = make(map[launchKey][]api.DevPtr)
	}
	key := launchKey{kernel: call.Kernel, args: argsFingerprint(call.PtrArgs)}
	if ctx.hasLastLaunch {
		prev := ctx.predictor[ctx.lastLaunch]
		if !samePtrs(prev, call.PtrArgs) {
			ctx.predictor[ctx.lastLaunch] = append([]api.DevPtr(nil), call.PtrArgs...)
		}
	}
	ctx.lastLaunch, ctx.hasLastLaunch = key, true

	next, ok := ctx.predictor[key]
	if !ok {
		return
	}
	// Only bother the worker when some predicted entry actually needs
	// residency work.
	need := false
	for _, p := range next {
		pte, _, err := rt.mm.Resolve(p)
		if err != nil || pte.CtxID() != ctx.id {
			continue
		}
		if !pte.IsAllocated || pte.ToCopy2Dev {
			need = true
			break
		}
	}
	if !need {
		return
	}
	select {
	case rt.prefetchCh <- prefetchReq{ctx: ctx, ptrs: next}:
	default:
		rt.prefetchSkipped.Add(1)
	}
}

// samePtrs reports whether two pointer slices are identical.
func samePtrs(a, b []api.DevPtr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// consumePrefetchMarks counts, for a launch's resolved working set, how
// many entries a speculative swap-in left fully resident, and clears
// the marks. Called at the top of the launch path, under ctx.mu.
func (rt *Runtime) consumePrefetchMarks(ptes []*memmgr.PTE) {
	for _, pte := range ptes {
		if !pte.Prefetched {
			continue
		}
		pte.Prefetched = false
		if pte.IsAllocated && !pte.ToCopy2Dev {
			rt.prefetchHits.Add(1)
		}
	}
}

// prefetchWorker drains prefetch requests until the runtime closes.
func (rt *Runtime) prefetchWorker() {
	for {
		select {
		case <-rt.quit:
			return
		case req := <-rt.prefetchCh:
			rt.doPrefetch(req)
		}
	}
}

// doPrefetch restores the predicted working set's residency if — and
// only if — it can do so without delaying or evicting anyone.
func (rt *Runtime) doPrefetch(req prefetchReq) {
	ctx := req.ctx
	if !ctx.mu.TryLock() {
		// The context is mid-call: the prediction arrived too late.
		rt.prefetchSkipped.Add(1)
		return
	}
	defer ctx.mu.Unlock()
	if ctx.exited.Load() {
		return
	}
	v := ctx.vgpu.Load()
	if v == nil || v.dead.Load() || !v.ds.healthy.Load() {
		rt.prefetchSkipped.Add(1)
		return
	}
	start := rt.clock.Now()
	ptes := make([]*memmgr.PTE, 0, len(req.ptrs))
	var missing uint64
	pending := false
	for _, p := range req.ptrs {
		pte, _, err := rt.mm.Resolve(p)
		if err != nil || pte.CtxID() != ctx.id {
			continue // freed or reallocated since the prediction
		}
		dup := false
		for _, prev := range ptes {
			if prev.Virtual == pte.Virtual {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		ptes = append(ptes, pte)
		if !pte.IsAllocated {
			missing += pte.Size
			pending = true
		} else if pte.ToCopy2Dev {
			pending = true
		}
	}
	if !pending {
		return
	}
	if missing > v.ds.dev.Available() {
		// Never evict on speculation.
		rt.prefetchSkipped.Add(1)
		return
	}
	for _, pte := range ptes {
		if err := rt.mm.EnsureAllocated(pte, v.cuctx); err != nil {
			rt.prefetchSkipped.Add(1)
			return
		}
	}
	if err := rt.mm.FlushDeferred(ptes, v.cuctx); err != nil {
		rt.prefetchSkipped.Add(1)
		return
	}
	for _, pte := range ptes {
		pte.Prefetched = true
	}
	rt.prefetchIssued.Add(1)
	rt.timings.Prefetch.Observe(int64(rt.clock.Now() - start))
}
