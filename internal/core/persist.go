package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"gvrt/internal/api"
	"gvrt/internal/memmgr"
)

// This file implements node-restart persistence (§4.6: the paper
// combines its runtime with BLCR "to enable these mechanisms also
// after a full restart of a node"; gvrt serialises its own state).
//
// SaveState checkpoints and exports every live context's memory state;
// RestoreState imports them into a fresh runtime as unclaimed sessions;
// a reconnecting application thread re-attaches with ResumeCall using
// the session ID it obtained earlier. Because the page table + swap
// area are the checkpoint, the resumed thread's virtual pointers remain
// valid and its next kernel launch lazily restores device residency.

// stateFile is the serialised runtime state.
type stateFile struct {
	Images []*memmgr.ContextImage
}

// SaveState checkpoints every live context and writes the runtime's
// persistent state to w. Call it on a quiescing node: connections may
// be open, but each context is briefly locked while its dirty entries
// flush to swap.
func (rt *Runtime) SaveState(w io.Writer) error {
	rt.mu.Lock()
	ctxs := make([]*Context, 0, len(rt.ctxs))
	for _, c := range rt.ctxs {
		ctxs = append(ctxs, c)
	}
	orphans := make([]int64, 0, len(rt.orphans))
	for id := range rt.orphans {
		orphans = append(orphans, id)
	}
	rt.mu.Unlock()

	var state stateFile
	for _, ctx := range ctxs {
		ctx.mu.Lock()
		err := rt.checkpoint(ctx)
		if err == nil {
			var img *memmgr.ContextImage
			img, err = rt.mm.ExportContext(ctx.id)
			if err == nil {
				state.Images = append(state.Images, img)
			}
		}
		ctx.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: saving ctx %d: %w", ctx.id, err)
		}
	}
	// Unclaimed sessions from a previous restore persist across saves.
	for _, id := range orphans {
		img, err := rt.mm.ExportContext(id)
		if err != nil {
			return fmt.Errorf("core: saving orphan %d: %w", id, err)
		}
		state.Images = append(state.Images, img)
	}
	return gob.NewEncoder(w).Encode(&state)
}

// RestoreState loads state written by SaveState into this (fresh)
// runtime. Each restored context becomes an unclaimed session that a
// reconnecting application thread re-attaches to via Client.Resume.
// The bytes may come from an untrusted or damaged file: every failure
// mode — including a hostile gob stream that panics the decoder — is
// reported as an error carrying api.ErrInvalidValue, never a crash.
func (rt *Runtime) RestoreState(r io.Reader) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("core: decoding state panicked: %v: %w", p, api.ErrInvalidValue)
		}
	}()
	var state stateFile
	if derr := gob.NewDecoder(r).Decode(&state); derr != nil {
		return fmt.Errorf("core: decoding state: %v: %w", derr, api.ErrInvalidValue)
	}
	for _, img := range state.Images {
		if img == nil {
			return fmt.Errorf("core: state holds a nil context image: %w", api.ErrInvalidValue)
		}
		if ierr := rt.mm.ImportContext(img); ierr != nil {
			var code api.Error
			if !errors.As(ierr, &code) {
				ierr = fmt.Errorf("%v: %w", ierr, api.ErrInvalidValue)
			}
			return fmt.Errorf("core: importing ctx %d: %w", img.CtxID, ierr)
		}
		rt.mu.Lock()
		if rt.orphans == nil {
			rt.orphans = make(map[int64]bool)
		}
		rt.orphans[img.CtxID] = true
		if img.CtxID > rt.nextCtx {
			rt.nextCtx = img.CtxID
		}
		rt.mu.Unlock()
		// With a journal attached, imported sessions become durable too.
		if j := rt.journal; j != nil {
			if jerr := j.SnapshotContext(img, nil); jerr != nil {
				return fmt.Errorf("core: journaling imported ctx %d: %w", img.CtxID, jerr)
			}
		}
	}
	return nil
}

// resume re-attaches a fresh context to a persisted session. The
// caller holds ctx.mu. Exactly one connection can win a session:
// concurrent claimants of the same ID serialise on rt.mu, and every
// loser sees the typed ErrSessionClaimed (a session that never existed
// stays ErrInvalidValue).
func (rt *Runtime) resume(ctx *Context, id int64) api.Error {
	if rt.mm.UsageOf(ctx.id) != 0 {
		// Resume must precede any allocation on this connection.
		return api.ErrInvalidValue
	}
	rt.mu.Lock()
	if !rt.orphans[id] {
		claimed := rt.claimed[id]
		rt.mu.Unlock()
		if claimed {
			return api.ErrSessionClaimed
		}
		return api.ErrInvalidValue
	}
	if ctx.vgpu.Load() != nil || ctx.inWaiting {
		rt.mu.Unlock()
		return api.ErrInvalidValue
	}
	if t := rt.cfg.Leases; t != nil {
		// Claiming the session means taking its lease; failure (a live
		// owner elsewhere) leaves the orphan unclaimed for a later, valid
		// claimant.
		l, lerr := t.Acquire(id, rt.cfg.node())
		if lerr != nil {
			rt.mu.Unlock()
			return api.ErrFenced
		}
		ctx.leaseEpoch.Store(l.Epoch)
	}
	delete(rt.orphans, id)
	if rt.claimed == nil {
		rt.claimed = make(map[int64]bool)
	}
	rt.claimed[id] = true
	delete(rt.ctxs, ctx.id)
	oldID := ctx.id
	ctx.id = id
	rt.ctxs[id] = ctx
	pending := rt.orphanReplay[id]
	delete(rt.orphanReplay, id)
	if len(pending) > 0 {
		// The kernels committed since the session's last checkpoint must
		// re-run before their outputs are read; ensureBound and the
		// checkpoint-first guards trigger the replay lazily (§4.6).
		ctx.needsRecovery.Store(true)
	}
	rt.mu.Unlock()
	for _, call := range pending {
		ctx.recordReplay(call)
	}
	if j := rt.journal; j != nil {
		// The empty pre-resume context will never be torn down under its
		// old ID; retire it from the journal.
		j.ContextReleased(oldID)
	}
	if t := rt.cfg.Leases; t != nil {
		// Likewise retire the pre-resume context's own lease.
		t.Release(oldID, rt.cfg.node())
	}
	rt.logf("ctx resumed session %d (%d pending kernels)", id, len(pending))
	return api.Success
}

// OrphanSessions lists persisted sessions not yet re-claimed.
func (rt *Runtime) OrphanSessions() []int64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	ids := make([]int64, 0, len(rt.orphans))
	for id := range rt.orphans {
		ids = append(ids, id)
	}
	return ids
}
