package core

import (
	"sync"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/trace"
)

// TestWireStatsConcurrent hammers the stats snapshot path while
// launches, device failures and restores are in flight. Run under
// -race it proves the exposition path (StatsCall, /metrics, gvrt-top)
// never tears the counters it reads; the assertions pin the snapshot
// invariants operators rely on: per-device vGPU occupancy within
// bounds and monotone counters/histograms between polls.
func TestWireStatsConcurrent(t *testing.T) {
	env := newEnv(t, Config{Trace: trace.NewRecorder(512)},
		smallSpec(1<<20, 1), smallSpec(1<<20, 1))

	const workers = 6
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := env.client()
			defer c.Close()
			if err := c.RegisterFatBinary(testBinary()); err != nil {
				t.Error(err)
				return
			}
			p, err := c.Malloc(4 << 10)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Failures mid-launch are the point of the test; any
				// error code is acceptable as long as the snapshot
				// invariants below hold.
				_ = c.Launch(api.LaunchCall{Kernel: "noop"})
				_ = c.MemcpyHD(p, []byte{1, 2, 3})
			}
		}()
	}

	// Failure injector: kill and revive the devices under the load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			env.rt.FailDevice(i % 2)
			env.crt.Device(i % 2).Restore()
		}
	}()

	// Poll until the workers have produced real launch traffic (or the
	// iteration cap trips), checking the invariants at every poll. The
	// tiny sleep keeps the poller overlapping the injector instead of
	// burning through its polls before the workers are scheduled.
	var prev api.RuntimeStats
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		st := env.rt.StatsSnapshot()
		for _, d := range st.Devices {
			if d.ActiveVGPUs < 0 || d.ActiveVGPUs > d.VGPUs {
				t.Fatalf("poll %d: device %d ActiveVGPUs = %d, want within [0,%d]",
					i, d.Index, d.ActiveVGPUs, d.VGPUs)
			}
		}
		if st.CallsServed < prev.CallsServed {
			t.Fatalf("poll %d: CallsServed went backwards: %d -> %d", i, prev.CallsServed, st.CallsServed)
		}
		if st.Binds < prev.Binds {
			t.Fatalf("poll %d: Binds went backwards: %d -> %d", i, prev.Binds, st.Binds)
		}
		if st.DeviceFailures < prev.DeviceFailures {
			t.Fatalf("poll %d: DeviceFailures went backwards: %d -> %d", i, prev.DeviceFailures, st.DeviceFailures)
		}
		cur := st.Histograms["call.cudaLaunch"]
		old := prev.Histograms["call.cudaLaunch"]
		if cur.Count < old.Count {
			t.Fatalf("poll %d: launch histogram count went backwards: %d -> %d", i, old.Count, cur.Count)
		}
		prev = st
		if (i >= 200 && cur.Count > 50) || time.Now().After(deadline) {
			break
		}
		if i%10 == 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	close(stop)
	wg.Wait()

	st := env.rt.StatsSnapshot()
	if st.CallsServed == 0 {
		t.Error("no calls served under load")
	}
	if st.Histograms["call.cudaLaunch"].Count == 0 {
		t.Error("launch histogram empty after concurrent launches")
	}
}
