package core

import (
	"fmt"

	"gvrt/internal/api"
	"gvrt/internal/ckptlog"
	"gvrt/internal/failover"
	"gvrt/internal/memmgr"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// This file implements journaled live context migration (DESIGN.md §13):
// the source checkpoints and exports its session's sealed image, ships
// it to a peer over the failover wire protocol — only the chunks the
// target cannot satisfy from its dedup store or a prior partial transfer
// cross the wire — and, once the target commits the import, deposes the
// local copy so every later mutating call on the connection is fenced.
// The target records the import as a pending operation, so a crash
// mid-import is resumable (live retry reuses the spooled chunks) or
// cleanly aborted (boot-time recovery resolves the record).

// migrateImport is the target side's in-progress transfer state, held
// on the serving connection's context between Hello and Commit.
type migrateImport struct {
	hello failover.Hello
	spool *failover.Spool
	// need maps every chunk of the manifest to its content ref, for
	// verifying arriving chunk frames against what Hello promised.
	need map[failover.ChunkID]failover.ChunkRef
}

// migrateSession is the source-side driver for a MigrateCall: it ships
// this connection's session to the node at target. Caller holds ctx.mu;
// the fence already passed for the enclosing call.
func (rt *Runtime) migrateSession(ctx *Context, target string) (err error) {
	rt.migStarted.Add(1)
	start := rt.clock.Now()
	sp := rt.beginSpan("migrate", ctx.id, ctx.curSpan)
	var shipped int64
	defer func() {
		if err != nil {
			rt.migAborted.Add(1)
		}
		sp.end(-1, fmt.Sprintf("to %s, %dB shipped", target, shipped), err)
	}()

	// Flush device-dirty state and journal the image, so the exported
	// image is the durable checkpoint and the replay log is empty.
	if err := rt.checkpoint(ctx); err != nil {
		return err
	}
	img, err := rt.mm.ExportContext(ctx.id)
	if err != nil {
		return err
	}
	hello := failover.Hello{
		Session: ctx.id,
		Owner:   rt.cfg.node(),
		Epoch:   ctx.leaseEpoch.Load(),
		NextOff: img.NextOff,
		Pending: append([]api.LaunchCall(nil), ctx.replay...),
	}
	for _, e := range img.Entries {
		em := failover.EntryManifest{Meta: e, Chunks: failover.ManifestOf(e.Data)}
		// The chunks carry the bytes; stripping Data keeps Hello small.
		em.Meta.Data = nil
		hello.TotalBytes += int64(len(e.Data))
		hello.Entries = append(hello.Entries, em)
	}

	conn, err := transport.Dial(target)
	if err != nil {
		return err
	}
	defer conn.Close()
	var seq uint64
	send := func(f failover.Frame) (failover.Frame, error) {
		f.Session = ctx.id
		f.Seq = seq
		seq++
		return rt.sendMigFrame(conn, f)
	}

	helloPayload, err := failover.EncodePayload(hello)
	if err != nil {
		return err
	}
	reply, err := send(failover.Frame{Type: failover.FrameHello, Payload: helloPayload})
	if err != nil {
		return err
	}
	if reply.Type != failover.FrameNeed {
		return fmt.Errorf("core: migrate: unexpected %d reply to hello: %w", reply.Type, api.ErrInvalidValue)
	}
	var need failover.Need
	if err := failover.DecodePayload(reply.Payload, &need); err != nil {
		return err
	}

	// Ship only the chunks the target asked for (resumable offsets plus
	// dedup reuse made the rest unnecessary).
	for _, id := range need.Chunks {
		if int(id.Entry) < 0 || int(id.Entry) >= len(img.Entries) {
			return fmt.Errorf("core: migrate: target needs unknown entry %d: %w", id.Entry, api.ErrInvalidValue)
		}
		data := failover.ChunkAt(img.Entries[id.Entry].Data, int(id.Index))
		if len(data) == 0 {
			return fmt.Errorf("core: migrate: target needs unknown chunk %d.%d: %w", id.Entry, id.Index, api.ErrInvalidValue)
		}
		payload, err := failover.EncodePayload(failover.Chunk{ID: id, Data: data})
		if err != nil {
			return err
		}
		if _, err := send(failover.Frame{Type: failover.FrameChunk, Payload: payload}); err != nil {
			return err
		}
		shipped += int64(len(data))
	}

	reply, err = send(failover.Frame{Type: failover.FrameCommit})
	if err != nil {
		return err
	}
	var res failover.Result
	if reply.Type != failover.FrameResult || failover.DecodePayload(reply.Payload, &res) != nil {
		return fmt.Errorf("core: migrate: malformed commit reply: %w", api.ErrInvalidValue)
	}
	if res.Code != 0 {
		return fmt.Errorf("core: migrate: target refused import: %s: %w", res.Detail, api.Error(res.Code))
	}

	// Committed: ownership moves. Release the lease first (the target or
	// the resuming client re-acquires it fresh), then depose this
	// connection so no later mutating call can touch the moved state.
	if t := rt.cfg.Leases; t != nil {
		t.Release(ctx.id, rt.cfg.node())
	}
	ctx.deposed.Store(true)
	if j := rt.journal; j != nil {
		// The session's durable home is the target's journal now.
		j.ContextReleased(ctx.id)
	}
	rt.migCompleted.Add(1)
	rt.timings.MigrationDur.Observe(int64(rt.clock.Now() - start))
	rt.timings.MigrationBytes.Observe(shipped)
	if ctx.tm != nil {
		ctx.tm.AddMigrationBytes(shipped)
	}
	rt.event(trace.KindCrossMigration, ctx.id, 0, -1,
		fmt.Sprintf("out to %s: %d/%d bytes shipped", target, shipped, hello.TotalBytes))
	rt.logf("ctx %d migrated to %s (%d of %d bytes shipped, %d chunks reused)",
		ctx.id, target, shipped, hello.TotalBytes, len(need.Chunks))
	return nil
}

// sendMigFrame ships one wire frame to the target and decodes the
// response frame from the reply. The transfer fault hook fires per
// frame: an injected crash kills the source mid-stream, an injected
// error or drop models a partition.
func (rt *Runtime) sendMigFrame(conn transport.Conn, f failover.Frame) (failover.Frame, error) {
	if h := rt.migXferHook; h != nil {
		dec := h.Check()
		if dec.Crash {
			rt.flightCrashDump()
			ckptlog.Die()
		}
		if dec.Delay > 0 {
			rt.clock.Sleep(dec.Delay)
		}
		if dec.Err != nil {
			return failover.Frame{}, dec.Err
		}
		if dec.Drop {
			return failover.Frame{}, api.ErrConnectionClosed
		}
	}
	reply, err := conn.Call(api.MigrateFrameCall{Frame: failover.EncodeFrame(nil, f)})
	if err != nil {
		return failover.Frame{}, err
	}
	if err := reply.Code.Err(); err != nil {
		return failover.Frame{}, err
	}
	rf, _, res := failover.DecodeFrame(reply.Data)
	if res != failover.DecodeOK {
		return failover.Frame{}, fmt.Errorf("core: migrate: bad response frame: %w", api.ErrInvalidValue)
	}
	return rf, nil
}

// handleMigrateFrame is the target side: it services one wire frame
// arriving on a serving connection. Caller holds ctx.mu (the serving
// connection's own context — not the session being imported).
func (rt *Runtime) handleMigrateFrame(ctx *Context, raw []byte) api.Reply {
	if h := rt.migImportHook; h != nil {
		dec := h.Check()
		if dec.Crash {
			rt.flightCrashDump()
			ckptlog.Die()
		}
		if dec.Delay > 0 {
			rt.clock.Sleep(dec.Delay)
		}
		if dec.Corrupt && len(raw) > 0 {
			raw = append([]byte(nil), raw...)
			raw[len(raw)/2] ^= 0xff
		}
		if dec.Err != nil {
			return api.Reply{Code: api.Code(dec.Err)}
		}
	}
	f, _, res := failover.DecodeFrame(raw)
	if res != failover.DecodeOK {
		// Torn or corrupt frame: reject before any byte can reach an
		// imported image. The source retries or aborts; the spool keeps
		// every chunk that arrived intact.
		return api.Reply{Code: api.ErrInvalidValue}
	}
	switch f.Type {
	case failover.FrameHello:
		return rt.migrateHello(ctx, f)
	case failover.FrameChunk:
		return rt.migrateChunk(ctx, f)
	case failover.FrameCommit:
		return rt.migrateCommit(ctx, f)
	default:
		return api.Reply{Code: api.ErrInvalidValue}
	}
}

func frameReply(session int64, t failover.FrameType, payload any) api.Reply {
	p, err := failover.EncodePayload(payload)
	if err != nil {
		return api.Reply{Code: api.Code(err)}
	}
	return api.Reply{Data: failover.EncodeFrame(nil, failover.Frame{Type: t, Session: session, Payload: p})}
}

func (rt *Runtime) migrateHello(ctx *Context, f failover.Frame) api.Reply {
	var hello failover.Hello
	if err := failover.DecodePayload(f.Payload, &hello); err != nil {
		return api.Reply{Code: api.ErrInvalidValue}
	}
	if rt.hasSession(hello.Session) {
		return api.Reply{Code: api.ErrSessionClaimed}
	}
	if mi := ctx.migrate; mi != nil && mi.spool != nil {
		// A fresh Hello supersedes any half-done transfer on this
		// connection; keep its spool on disk for a same-epoch resume.
		mi.spool.Close()
	}
	total := 0
	for _, em := range hello.Entries {
		total += len(em.Chunks)
	}
	spool, err := failover.OpenSpool(rt.cfg.MigrateDir, failover.PendingRecord{
		Session: hello.Session,
		Owner:   hello.Owner,
		Epoch:   hello.Epoch,
		Total:   total,
	})
	if err != nil {
		return api.Reply{Code: api.Code(err)}
	}
	mi := &migrateImport{
		hello: hello,
		spool: spool,
		need:  make(map[failover.ChunkID]failover.ChunkRef, total),
	}
	var need failover.Need
	reused := 0
	for i, em := range hello.Entries {
		for k, ref := range em.Chunks {
			id := failover.ChunkID{Entry: int32(i), Index: int32(k)}
			mi.need[id] = ref
			if spool.Has(id) {
				// Spooled by a previous attempt at this epoch — the
				// resumable offset: don't ask for it again.
				continue
			}
			if data, ok := rt.mm.DedupLookup(ref.Hash, int(ref.Len), ref.Sum); ok {
				// Another tenant's identical chunk already lives here;
				// no transfer needed.
				spool.PutLocal(id, data)
				reused++
				continue
			}
			need.Chunks = append(need.Chunks, id)
		}
	}
	ctx.migrate = mi
	rt.logf("import of session %d from %s: need %d of %d chunks (%d spooled, %d dedup-reused)",
		hello.Session, hello.Owner, len(need.Chunks), total, total-len(need.Chunks)-reused, reused)
	return frameReply(hello.Session, failover.FrameNeed, need)
}

func (rt *Runtime) migrateChunk(ctx *Context, f failover.Frame) api.Reply {
	mi := ctx.migrate
	if mi == nil || f.Session != mi.hello.Session {
		return api.Reply{Code: api.ErrInvalidValue}
	}
	var c failover.Chunk
	if err := failover.DecodePayload(f.Payload, &c); err != nil {
		return api.Reply{Code: api.ErrInvalidValue}
	}
	ref, ok := mi.need[c.ID]
	if !ok || !failover.VerifyChunk(ref, c.Data) {
		// Unannounced chunk, or bytes that don't match the manifest's
		// hash/length/CRC — poisoned; refuse it.
		return api.Reply{Code: api.ErrInvalidValue}
	}
	if err := mi.spool.Put(c.ID, c.Data); err != nil {
		return api.Reply{Code: api.Code(err)}
	}
	return frameReply(f.Session, failover.FrameResult, failover.Result{})
}

func (rt *Runtime) migrateCommit(ctx *Context, f failover.Frame) api.Reply {
	mi := ctx.migrate
	if mi == nil || f.Session != mi.hello.Session {
		return api.Reply{Code: api.ErrInvalidValue}
	}
	refuse := func(err error, detail string) api.Reply {
		rt.migAborted.Add(1)
		rt.logf("import of session %d refused: %s: %v", mi.hello.Session, detail, err)
		return frameReply(f.Session, failover.FrameResult, failover.Result{
			Code:   int32(api.Code(err)),
			Detail: detail,
		})
	}
	img := &memmgr.ContextImage{CtxID: mi.hello.Session, NextOff: mi.hello.NextOff}
	for i, em := range mi.hello.Entries {
		e := em.Meta
		if e.HasData {
			var size int
			for _, ref := range em.Chunks {
				size += int(ref.Len)
			}
			data := make([]byte, 0, size)
			for k := range em.Chunks {
				b, ok := mi.spool.Get(failover.ChunkID{Entry: int32(i), Index: int32(k)})
				if !ok {
					return refuse(api.ErrInvalidValue, fmt.Sprintf("chunk %d.%d never arrived", i, k))
				}
				data = append(data, b...)
			}
			e.Data = data
		}
		img.Entries = append(img.Entries, e)
	}
	if err := rt.adoptImage(img, mi.hello.Pending, "migrated in from "+mi.hello.Owner); err != nil {
		return refuse(err, "import failed")
	}
	mi.spool.Resolve()
	ctx.migrate = nil
	return frameReply(f.Session, failover.FrameResult, failover.Result{})
}

// adoptImage installs an imported context image as an orphan session a
// reconnecting client can Resume: page table and swap copies into the
// memory manager, pending kernels set aside for replay, the image
// journaled so it survives this node too, and — when the lease table
// allows — ownership taken for this node.
func (rt *Runtime) adoptImage(img *memmgr.ContextImage, pending []api.LaunchCall, detail string) error {
	if rt.hasSession(img.CtxID) {
		return api.ErrSessionClaimed
	}
	if err := rt.mm.ImportContext(img); err != nil {
		return err
	}
	rt.mu.Lock()
	if rt.orphans == nil {
		rt.orphans = make(map[int64]bool)
	}
	rt.orphans[img.CtxID] = true
	if len(pending) > 0 {
		if rt.orphanReplay == nil {
			rt.orphanReplay = make(map[int64][]api.LaunchCall)
		}
		rt.orphanReplay[img.CtxID] = append([]api.LaunchCall(nil), pending...)
	}
	if img.CtxID > rt.nextCtx {
		rt.nextCtx = img.CtxID
	}
	rt.mu.Unlock()
	if j := rt.journal; j != nil {
		if err := j.SnapshotContext(img, pending); err != nil {
			return err
		}
	}
	if t := rt.cfg.Leases; t != nil {
		// Best effort: a failover steal already moved ownership here and
		// this renews it; after a cooperative migration the source
		// released and this takes it fresh. A still-live source lease
		// (source crashed after commit, before release) is left alone —
		// the resuming client's Acquire settles ownership after expiry.
		_, _ = t.Acquire(img.CtxID, rt.cfg.node())
	}
	rt.event(trace.KindCrossMigration, img.CtxID, 0, -1, detail)
	rt.logf("adopted session %d (%d entries, %d pending kernels): %s",
		img.CtxID, len(img.Entries), len(pending), detail)
	return nil
}

// AdoptJournalDir recovers every session committed in a dead peer's
// journal directory into this runtime — the failover promotion step. The
// caller must have fenced the old owner first (the monitor's Steal, or
// lease expiry). Sessions this node already knows are skipped, so a
// promotion racing a completed migration is idempotent.
func (rt *Runtime) AdoptJournalDir(dir string) (int, error) {
	j, rec, err := ckptlog.Open(dir, ckptlog.Options{Logf: rt.cfg.Logf})
	if err != nil {
		return 0, err
	}
	defer j.Close()
	n := 0
	for _, img := range rec.Images {
		if rt.hasSession(img.CtxID) {
			continue
		}
		if err := rt.adoptImage(img, rec.Pending[img.CtxID], "promoted from journal "+dir); err != nil {
			return n, err
		}
		n++
	}
	rt.mu.Lock()
	// Never re-issue a context ID the dead peer's journal has seen.
	if rec.MaxCtxID > rt.nextCtx {
		rt.nextCtx = rec.MaxCtxID
	}
	rt.mu.Unlock()
	return n, nil
}

// hasSession reports whether this runtime already knows the session —
// live, orphaned, or claimed.
func (rt *Runtime) hasSession(id int64) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.ctxs[id]; ok {
		return true
	}
	return rt.orphans[id] || rt.claimed[id]
}
