package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
)

// TestChaos runs a storm of concurrent applications against a runtime
// while devices fail, recover (as fresh hot-added hardware), and jobs
// compete for memory — then checks the global invariants:
//
//   - every job either completes with correct data or fails with a
//     resource error (never a corruption, hang, or unexpected code);
//   - after everything exits, no device memory is leaked;
//   - the runtime serves a fresh client normally afterwards.
//
// The test is randomized but deterministic per seed.
func TestChaos(t *testing.T) {
	const (
		jobs       = 32
		kernelsPer = 6
	)
	env := newEnv(t, Config{VGPUsPerDevice: 2, AutoCheckpoint: 5 * time.Millisecond},
		smallSpec(1<<20, 1), smallSpec(1<<20, 0.5), smallSpec(1<<20, 0.8))

	var completed, failed atomic.Int64
	var wg sync.WaitGroup

	// The saboteur: keeps killing and replacing devices while jobs run.
	stop := make(chan struct{})
	var sabWg sync.WaitGroup
	sabWg.Add(1)
	go func() {
		defer sabWg.Done()
		rng := sim.NewRNG(7)
		next := 3
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			env.rt.mu.Lock()
			var healthy []*deviceState
			for _, ds := range env.rt.devs {
				if ds.healthy {
					healthy = append(healthy, ds)
				}
			}
			env.rt.mu.Unlock()
			if len(healthy) <= 1 {
				// Always keep at least one device alive, and top the
				// node back up with fresh hardware.
				d := gpu.NewDevice(next, smallSpec(1<<20, 1), env.clock)
				if _, err := env.rt.AddDevice(d); err != nil {
					t.Errorf("AddDevice: %v", err)
					return
				}
				next++
				continue
			}
			victim := healthy[rng.Intn(len(healthy))]
			env.rt.FailDevice(victim.index)
		}
	}()

	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			c := env.client()
			defer c.Close()
			if err := c.RegisterFatBinary(testBinary()); err != nil {
				failed.Add(1)
				return
			}
			// Each job carries 4 bytes of real data plus a chunk of
			// modeled memory to create pressure.
			p, err := c.Malloc(64 << 10)
			if err != nil {
				failed.Add(1)
				return
			}
			seed := byte(j)
			if err := c.MemcpyHD(p, []byte{seed, seed, seed, seed}); err != nil {
				failed.Add(1)
				return
			}
			for k := 0; k < kernelsPer; k++ {
				if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
					// Acceptable only when the whole node ran out of
					// devices mid-call.
					if code := api.Code(err); code != api.ErrNoDevice && code != api.ErrDeviceUnavailable {
						t.Errorf("job %d kernel %d: unexpected error %v", j, k, err)
					}
					failed.Add(1)
					return
				}
			}
			out, err := c.MemcpyDH(p, 4)
			if err != nil {
				failed.Add(1)
				return
			}
			want := seed + kernelsPer
			for i := 0; i < 4; i++ {
				if out[i] != want {
					t.Errorf("job %d: data = %v, want %d each (CORRUPTION)", j, out, want)
					failed.Add(1)
					return
				}
			}
			completed.Add(1)
		}(j)
	}
	wg.Wait()
	close(stop)
	sabWg.Wait()
	env.wg.Wait()

	t.Logf("chaos: %d completed, %d failed-clean; metrics: %+v",
		completed.Load(), failed.Load(), env.rt.Metrics())
	if completed.Load() == 0 {
		t.Error("no job survived the chaos; recovery is not working")
	}

	// No leaks on healthy devices: everything the jobs held is back.
	env.rt.mu.Lock()
	var leaks []string
	for _, ds := range env.rt.devs {
		if !ds.healthy {
			continue
		}
		want := ds.dev.Capacity() - uint64(len(ds.vgpus))*1024
		if got := ds.dev.Available(); got != want {
			leaks = append(leaks, fmt.Sprintf("dev %d: %d != %d", ds.index, got, want))
		}
	}
	env.rt.mu.Unlock()
	if len(leaks) > 0 {
		t.Errorf("device memory leaked after chaos: %v", leaks)
	}

	// The runtime still serves new work.
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
		t.Fatalf("post-chaos launch: %v", err)
	}
}
