package core

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
)

// chaosSeed returns the fault-plan seed: GVRT_CHAOS_SEED when set (the
// replay knob — see EXPERIMENTS.md), a fixed default otherwise.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("GVRT_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("GVRT_CHAOS_SEED=%q: %v", s, err)
		}
		return v
	}
	return 20260804
}

// chaosPlan is the storm the chaos test and gvrt-chaos driver run under:
// two of the three boot devices die at fixed kernel counts (the third
// stays clean so forward progress is guaranteed), the hot-added
// replacement dies later too, DMA is sporadically slow, the dispatcher
// sporadically stalls, and a bounded burst of device allocations is
// denied. No corruption rules: data integrity must survive everything
// this plan throws.
func chaosPlan(seed int64) faultinject.Plan {
	return faultinject.Plan{
		Name: "chaos-storm",
		Seed: seed,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointDeviceExec, Label: "gpu0", AtNth: 8, Action: faultinject.ActFailDevice},
			{Point: faultinject.PointDeviceExec, Label: "gpu1", AtNth: 20, Action: faultinject.ActFailDevice},
			{Point: faultinject.PointDeviceExec, Label: "gpu3", AtNth: 25, Action: faultinject.ActFailDevice},
			{Point: faultinject.PointDeviceDMA, Prob: 0.05, Action: faultinject.ActDelay, Delay: 2 * time.Millisecond},
			{Point: faultinject.PointDeviceMalloc, Prob: 0.02, MaxFires: 3, Action: faultinject.ActError},
			{Point: faultinject.PointDispatch, Prob: 0.02, Action: faultinject.ActDelay, Delay: time.Millisecond},
		},
	}
}

// TestChaos runs a storm of concurrent applications against a runtime
// while the fault plane fails devices, stalls DMA and the dispatcher,
// and denies allocations — then checks the global invariants:
//
//   - every job either completes with correct data or fails with a
//     clean resource error (never a corruption, hang, or unexpected
//     code);
//   - after everything exits, no device memory is leaked;
//   - the runtime serves a fresh client normally afterwards;
//   - the fired fault schedule replays exactly from the plan seed.
//
// A failing run logs the seed; GVRT_CHAOS_SEED reproduces it.
func TestChaos(t *testing.T) {
	const (
		jobs       = 32
		kernelsPer = 6
	)
	seed := chaosSeed(t)
	plan := chaosPlan(seed)
	plane := faultinject.New(plan)
	t.Logf("chaos plan %q seed %d (GVRT_CHAOS_SEED=%d reproduces this run)", plan.Name, seed, seed)

	env := newEnv(t, Config{VGPUsPerDevice: 2, AutoCheckpoint: 5 * time.Millisecond, Faults: plane},
		smallSpec(1<<20, 1), smallSpec(1<<20, 0.5), smallSpec(1<<20, 0.8))

	var completed, failed atomic.Int64
	var wg sync.WaitGroup

	// Replacement hardware: once the plane has killed a device, hot-add
	// a fresh one (which the runtime arms against the same plane — the
	// gpu3 rule above kills it too, later).
	stop := make(chan struct{})
	var opsWg sync.WaitGroup
	opsWg.Add(1)
	go func() {
		defer opsWg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if env.rt.Metrics().DeviceFailures >= 1 {
				d := gpu.NewDevice(3, smallSpec(1<<20, 1), env.clock)
				if _, err := env.rt.AddDevice(d); err != nil {
					t.Errorf("AddDevice: %v", err)
				}
				return
			}
		}
	}()

	// Each job gets its own forked RNG stream, so workload randomness is
	// deterministic per (seed, job) no matter how goroutines interleave.
	baseRNG := sim.NewRNG(seed)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			rng := baseRNG.Fork(fmt.Sprintf("job%d", j))
			c := env.client()
			defer c.Close()
			if err := c.RegisterFatBinary(testBinary()); err != nil {
				failed.Add(1)
				return
			}
			// Each job carries 4 bytes of real data plus a randomized
			// chunk of modeled memory to create pressure.
			p, err := c.Malloc(uint64(32+rng.Intn(64)) << 10)
			if err != nil {
				failed.Add(1)
				return
			}
			seedByte := byte(j)
			if err := c.MemcpyHD(p, []byte{seedByte, seedByte, seedByte, seedByte}); err != nil {
				failed.Add(1)
				return
			}
			for k := 0; k < kernelsPer; k++ {
				if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
					// Acceptable only as a clean resource error: the node
					// ran out of devices or memory mid-call.
					switch api.Code(err) {
					case api.ErrNoDevice, api.ErrDeviceUnavailable, api.ErrMemoryAllocation, api.ErrSwapAllocation:
					default:
						t.Errorf("job %d kernel %d: unexpected error %v", j, k, err)
					}
					failed.Add(1)
					return
				}
			}
			out, err := c.MemcpyDH(p, 4)
			if err != nil {
				failed.Add(1)
				return
			}
			want := seedByte + kernelsPer
			for i := 0; i < 4; i++ {
				if out[i] != want {
					t.Errorf("job %d: data = %v, want %d each (CORRUPTION)", j, out, want)
					failed.Add(1)
					return
				}
			}
			completed.Add(1)
		}(j)
	}

	// The never-hangs invariant, enforced: a wedged storm fails loudly
	// instead of tripping the go test timeout ten minutes later.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("chaos run hung; reproduce with GVRT_CHAOS_SEED=%d", seed)
	}
	close(stop)
	opsWg.Wait()
	env.wg.Wait()

	t.Logf("chaos: %d completed, %d failed-clean; metrics: %+v",
		completed.Load(), failed.Load(), env.rt.Metrics())
	t.Logf("fault post-mortem:\n%s", plane)
	if completed.Load() == 0 {
		t.Error("no job survived the chaos; recovery is not working")
	}

	// The plan must actually have bitten: at least one device death went
	// through the plane (gpu0 dies after 8 kernels, far fewer than the
	// storm executes).
	schedule := plane.Schedule()
	devFails := 0
	for _, f := range schedule {
		if f.Action == faultinject.ActFailDevice {
			devFails++
		}
	}
	if devFails == 0 {
		t.Error("fault plane fired no device failure; the storm tested nothing")
	}

	// No leaks on healthy devices: everything the jobs held is back.
	env.rt.mu.Lock()
	var leaks []string
	for _, ds := range env.rt.devs {
		if !ds.healthy.Load() {
			continue
		}
		want := ds.dev.Capacity() - uint64(len(ds.slots()))*1024
		if got := ds.dev.Available(); got != want {
			leaks = append(leaks, fmt.Sprintf("dev %d: %d != %d", ds.index, got, want))
		}
	}
	env.rt.mu.Unlock()
	if len(leaks) > 0 {
		t.Errorf("device memory leaked after chaos: %v", leaks)
	}

	// The runtime still serves new work.
	c := env.client()
	defer c.Close()
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{0}}); err != nil {
		t.Fatalf("post-chaos launch: %v", err)
	}

	// Seed replay: feed a fresh plane the same per-hook occurrence
	// counts and require the identical per-hook fault schedule. This is
	// the property that makes a CI chaos failure reproducible locally
	// from nothing but the seed.
	assertScheduleReplays(t, plan, plane)
}

// assertScheduleReplays re-runs ran's plan on a fresh plane, driving
// each hook for exactly the occurrences the live run consumed, and
// requires the same faults at the same occurrence indices.
func assertScheduleReplays(t *testing.T, plan faultinject.Plan, ran *faultinject.Plane) {
	t.Helper()
	replay := faultinject.New(plan)
	for key, n := range ran.Occurrences() {
		point, label, _ := strings.Cut(key, "/")
		h := replay.Hook(faultinject.Point(point), label)
		if h == nil {
			t.Errorf("replay: hook %q vanished", key)
			continue
		}
		for i := uint64(0); i < n; i++ {
			h.Check()
		}
	}
	group := func(p *faultinject.Plane) map[string][]faultinject.Fired {
		out := make(map[string][]faultinject.Fired)
		for _, f := range p.Schedule() {
			k := string(f.Point) + "/" + f.Label
			out[k] = append(out[k], f)
		}
		return out
	}
	a, b := group(ran), group(replay)
	for key, fs := range a {
		rs := b[key]
		if len(rs) != len(fs) {
			t.Errorf("replay of %s: %d faults, live run had %d", key, len(rs), len(fs))
			continue
		}
		for i := range fs {
			if fs[i] != rs[i] {
				t.Errorf("replay of %s diverged at %d: live %v, replay %v", key, i, fs[i], rs[i])
			}
		}
	}
	for key := range b {
		if _, ok := a[key]; !ok {
			t.Errorf("replay fired at %s where the live run did not", key)
		}
	}
}
