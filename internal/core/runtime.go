// Package core implements the gvrt node-level runtime of the paper's §4:
// connection manager, multithreaded dispatcher, virtual GPUs, and the
// orchestration of the memory manager that yields GPU sharing, dynamic
// application→GPU binding, inter-/intra-application swapping, load
// balancing through migration, fault tolerance and checkpoint-restart.
//
// One Runtime instance runs per node. Applications reach it through
// transport connections (one per application thread); every CUDA call
// arriving on a connection is served synchronously, exactly like the
// paper's interposed frontend → daemon RPC.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/api"

	"gvrt/internal/ckptlog"
	"gvrt/internal/cudart"
	"gvrt/internal/failover"
	"gvrt/internal/faultinject"
	"gvrt/internal/gpu"
	"gvrt/internal/memmgr"
	"gvrt/internal/obs"
	"gvrt/internal/sched"
	"gvrt/internal/sim"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// Default configuration values.
const (
	// DefaultVGPUsPerDevice is the sharing degree the paper settles on
	// (§5.3.2: "four vGPUs per device provide a good compromise").
	DefaultVGPUsPerDevice = 4
	// DefaultCallOverhead models the per-call cost of interception,
	// queuing and scheduling; calibrated so framework overhead lands
	// around the paper's ≤10% worst case on short-running jobs.
	DefaultCallOverhead = 100 * time.Microsecond
	// DefaultBindBackoff is the pause before a context that could not
	// obtain memory retries binding (§4.5: "the calling application
	// will unbind from the virtual-GPU and retry later").
	DefaultBindBackoff = 50 * time.Millisecond
	// DefaultMinVictimIdle is the idle time after which a context is
	// considered to be in a CPU phase for swap/migration eligibility.
	DefaultMinVictimIdle = 100 * time.Millisecond
	// DefaultHealthInterval is the pause between the health monitor's
	// probes of unhealthy devices for re-admission.
	DefaultHealthInterval = 250 * time.Millisecond
)

// Config tunes a Runtime. The zero value gives the paper's evaluation
// configuration: 4 vGPUs per device, FCFS scheduling, transfer deferral
// on, both swap flavours enabled, no migration, no offloading.
type Config struct {
	// VGPUsPerDevice is the number of virtual GPUs (concurrent
	// applications) per physical device; 0 means DefaultVGPUsPerDevice.
	VGPUsPerDevice int
	// Policy is the dispatcher's scheduling policy; nil means FCFS.
	Policy sched.Policy
	// WriteThrough disables transfer deferral (§4.5): host writes to
	// resident entries go straight to the device.
	WriteThrough bool
	// CallOverhead is the modeled per-call framework overhead; 0 means
	// DefaultCallOverhead, negative means none.
	CallOverhead time.Duration
	// DisableIntraSwap turns off intra-application swapping (ablation).
	DisableIntraSwap bool
	// DisableInterSwap turns off inter-application swapping (ablation).
	DisableInterSwap bool
	// DisablePrefetch turns off the predictive prefetcher (prefetch.go):
	// no speculative swap-ins happen between kernel calls (ablation).
	DisablePrefetch bool
	// EnableMigration turns on load balancing through dynamic binding
	// (§5.3.4): when a faster GPU's vGPU frees with nobody waiting, a
	// job bound to a slower GPU is migrated to it.
	EnableMigration bool
	// AutoCheckpoint, when positive, checkpoints a context after any
	// kernel call whose modeled duration is at least this long (§4.6:
	// automatic checkpoints after long-running kernels).
	AutoCheckpoint time.Duration
	// HostMemory caps the swap area (0 = unlimited). The paper's node
	// has 48 GB.
	HostMemory uint64
	// BindBackoff is the retry pause after a failed memory acquisition;
	// 0 means DefaultBindBackoff.
	BindBackoff time.Duration
	// MinVictimIdle is how long a context must have been idle before it
	// counts as "running a CPU phase" and may honour an
	// inter-application swap request or be migrated (§4.5: an
	// application between two back-to-back kernel calls is not in a CPU
	// phase and "may not" accept). 0 means DefaultMinVictimIdle;
	// negative means no minimum.
	MinVictimIdle time.Duration
	// MaxBindAttempts bounds the unbind-and-retry loop; 0 means
	// unlimited (the paper's behaviour).
	MaxBindAttempts int
	// PeerDial, when set together with OffloadThreshold, lets the node
	// offload incoming application threads to a peer node (§4.7).
	PeerDial func() (transport.Conn, error)
	// OffloadThreshold is the pending/waiting queue length above which
	// new connections are offloaded; 0 disables offloading.
	OffloadThreshold int
	// PeerAvailable, when set, gates offloading: shouldOffload only
	// attempts the peer while it returns true. The cluster layer wires
	// it to the peer link's circuit breaker, so an open breaker stops
	// the node from even dialing a partitioned peer.
	PeerAvailable func() bool
	// AdmissionMaxQueue is the admission-control hard cap: when the
	// projected queue depth exceeds it and no peer can absorb the load
	// (PeerAvailable is nil or false), new connections are rejected
	// fast with ErrOverloaded instead of queueing forever. 0 disables
	// admission control (the paper's unbounded behaviour).
	AdmissionMaxQueue int
	// HealthInterval is the pause between health-monitor probes of
	// unhealthy devices for hot re-admission; 0 means
	// DefaultHealthInterval, negative disables the monitor.
	HealthInterval time.Duration
	// Logf, when set, receives debug events.
	Logf func(format string, args ...any)
	// Trace, when set, records structured scheduling events (bindings,
	// swaps, migrations, failures, recoveries, offloads) into a bounded
	// ring for tests and operators.
	Trace *trace.Recorder
	// Flight, when set, is the node's black-box crash recorder: every
	// structured event is mirrored into its bounded ring, and fence or
	// breaker storms trigger an automatic dump. Fed only from cold
	// paths — the launch/swap hot paths never touch it.
	Flight *obs.FlightRecorder
	// Faults, when set, arms the deterministic fault plane: devices, the
	// memory manager's swap area and the dispatcher consult it at their
	// injection points. Nil (the default) leaves every hook nil, so the
	// hot path pays one nil check per site.
	Faults *faultinject.Plane
	// Leases, when set, arms lease-fenced session ownership (DESIGN.md
	// §13): every mutating call checks this node's (owner, epoch) pair
	// against the shared table and is rejected with ErrFenced once
	// ownership moved. Nil disables fencing (single-node operation).
	Leases *failover.Table
	// NodeName identifies this node in the lease table and migration
	// protocol; "" means "local".
	NodeName string
	// MigrateDir is where the migration target keeps pending-operation
	// records and chunk spools (normally the journal directory). ""
	// keeps them in memory: live-transfer resume still works, but a
	// target crash mid-import is not recorded on disk.
	MigrateDir string
	// SessionBase offsets locally-created context IDs. A failover
	// target sets it above the ID range its peers issue, so adopted
	// sessions can keep their original IDs without colliding with the
	// target's own connections.
	SessionBase int64
}

func (c *Config) node() string {
	if c.NodeName == "" {
		return "local"
	}
	return c.NodeName
}

func (c *Config) vgpus() int {
	if c.VGPUsPerDevice <= 0 {
		return DefaultVGPUsPerDevice
	}
	return c.VGPUsPerDevice
}

func (c *Config) overhead() time.Duration {
	switch {
	case c.CallOverhead == 0:
		return DefaultCallOverhead
	case c.CallOverhead < 0:
		return 0
	default:
		return c.CallOverhead
	}
}

func (c *Config) backoff() time.Duration {
	if c.BindBackoff <= 0 {
		return DefaultBindBackoff
	}
	return c.BindBackoff
}

func (c *Config) healthInterval() time.Duration {
	switch {
	case c.HealthInterval == 0:
		return DefaultHealthInterval
	case c.HealthInterval < 0:
		return 0
	default:
		return c.HealthInterval
	}
}

func (c *Config) minVictimIdle() time.Duration {
	switch {
	case c.MinVictimIdle == 0:
		return DefaultMinVictimIdle
	case c.MinVictimIdle < 0:
		return 0
	default:
		return c.MinVictimIdle
	}
}

// vGPU is a virtual GPU: one sharing slot of a physical device, owning
// a persistent CUDA context created at startup (§4.4). bound is guarded
// by the owning device's shard mutex (deviceState.mu); dead is an
// atomic so the hot path can check slot liveness lock-free.
type vGPU struct {
	name  string
	ds    *deviceState
	cuctx *cudart.Context
	bound *Context
	dead  atomic.Bool
}

// deviceState is one per-device shard (DESIGN.md §11): it tracks a
// physical device, its vGPU slots, and their binding occupancy under
// its own mutex, so slot traffic on one device never contends with
// another's. healthy is atomic for lock-free reads on the hot path.
//
// Lock order: ctx.mu → rt.mu → ds.mu → memmgr shard. A ds.mu holder
// never takes rt.mu or another device's ds.mu.
type deviceState struct {
	index   int
	dev     *gpu.Device
	healthy atomic.Bool
	// nslots is len(vgpus), written once before the shard is published.
	// Re-admission rebuilds vgpus but always at the configured count, so
	// hot paths (checkFits, projectedQueue) read this without ds.mu.
	nslots int

	mu    sync.Mutex
	vgpus []*vGPU
}

// slots snapshots the shard's vGPU slice (replaced wholesale on
// re-admission, never mutated in place).
func (ds *deviceState) slots() []*vGPU {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.vgpus
}

// freeVGPU returns an unbound live slot, nil when none. The returned
// slot must still be claimed under ds.mu (tryClaim) — another party
// may take it first.
func (ds *deviceState) freeVGPU() *vGPU {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.freeVGPUShardLocked()
}

func (ds *deviceState) freeVGPUShardLocked() *vGPU {
	for _, v := range ds.vgpus {
		if v.bound == nil && !v.dead.Load() {
			return v
		}
	}
	return nil
}

// tryClaim binds ctx to v if the slot is still free and live.
func (ds *deviceState) tryClaim(v *vGPU, ctx *Context) bool {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if v.bound != nil || v.dead.Load() {
		return false
	}
	v.bound = ctx
	return true
}

// clearBound unbinds the slot unconditionally.
func (ds *deviceState) clearBound(v *vGPU) {
	ds.mu.Lock()
	v.bound = nil
	ds.mu.Unlock()
}

// clearBoundIf unbinds the slot only while it is still bound to ctx —
// rollback paths use it so they cannot clobber a re-granted slot.
func (ds *deviceState) clearBoundIf(v *vGPU, ctx *Context) {
	ds.mu.Lock()
	if v.bound == ctx {
		v.bound = nil
	}
	ds.mu.Unlock()
}

func (ds *deviceState) activeVGPUs() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	n := 0
	for _, v := range ds.vgpus {
		if v.bound != nil {
			n++
		}
	}
	return n
}

// DeviceUtilization is the per-device slice of a metrics snapshot.
type DeviceUtilization struct {
	Index   int
	Name    string
	Healthy bool
	// Busy is the cumulative model time the device's execution engine
	// was occupied by kernels.
	Busy     time.Duration
	Launches int64
	H2DBytes int64
	D2HBytes int64
	// ActiveVGPUs / VGPUs are the bound and total sharing slots.
	ActiveVGPUs  int
	VGPUs        int
	MemAvailable uint64
	Capacity     uint64
}

// Metrics is a snapshot of the runtime's counters plus the memory
// manager's statistics and per-device utilization.
type Metrics struct {
	CallsServed    int64
	Binds          int64
	InterAppSwaps  int64
	IntraAppSwaps  int64
	Migrations     int64
	Recoveries     int64
	Replays        int64
	DeviceFailures int64
	Offloaded      int64
	UnbindRetries  int64
	BreakerTrips   int64
	Readmissions   int64
	RetriesSpent   int64
	Sheds          int64
	// PrefetchIssued / PrefetchHits / PrefetchSkipped describe the
	// predictive prefetcher (prefetch.go).
	PrefetchIssued  int64
	PrefetchHits    int64
	PrefetchSkipped int64
	// Cross-node failover-plane counters (distinct from Migrations,
	// which counts intra-node device rebinds).
	MigrationsStarted   int64
	MigrationsCompleted int64
	MigrationsAborted   int64
	FenceRejections     int64
	LeaseRenewals       int64
	Memory              memmgr.Stats
	Devices             []DeviceUtilization
}

// Runtime is the gvrt node-level runtime daemon.
type Runtime struct {
	cfg    Config
	clock  *sim.Clock
	crt    *cudart.Runtime
	mm     *memmgr.Manager
	policy sched.Policy

	// dispatchHook is the fault plane's scheduler-stall site; nil
	// without a plan.
	dispatchHook *faultinject.Hook
	// leaseHook / migXferHook / migImportHook are the failover plane's
	// injection sites: the lease-expiry race, the mid-transfer
	// partition, and the target crash during import.
	leaseHook     *faultinject.Hook
	migXferHook   *faultinject.Hook
	migImportHook *faultinject.Hook

	// journal, when attached, shadows the durable checkpoint state on
	// disk (see journal.go). Set once at boot, read without rt.mu.
	journal *ckptlog.Journal

	// mu is the narrow cross-device scheduler lock (DESIGN.md §11):
	// it guards the waiting list, grant hand-off, the context registry
	// and the device-list slice — the state that coordinates *across*
	// devices. Per-device slot state lives in each deviceState shard;
	// per-context memory state in the memory manager's shards.
	mu      sync.Mutex
	cond    *sync.Cond
	devs    []*deviceState
	waiting []*Context
	ctxs    map[int64]*Context
	orphans map[int64]bool
	// orphanReplay holds, per orphan session, the kernels committed
	// after its last checkpoint; a Resume turns them back into the
	// context's replay log.
	orphanReplay map[int64][]api.LaunchCall
	// claimed remembers sessions already resumed, so a second claimant
	// gets the typed ErrSessionClaimed instead of "no such session".
	claimed       map[int64]bool
	nextCtx       int64
	closed        bool
	healthRunning bool

	// devList is a copy-on-write snapshot of devs, refreshed under
	// rt.mu whenever the device list changes; hot-path readers
	// (checkFits, VGPUCount, Metrics, the monitors) load it without
	// taking the scheduler lock.
	devList atomic.Pointer[[]*deviceState]

	// timings holds the runtime's latency/size histograms. Always
	// live (Observe is lock-free and cheap), independent of cfg.Trace.
	timings trace.Timings

	// prefetchCh feeds the background prefetch worker; quit stops it
	// (and any other runtime-owned background goroutine) at Close.
	prefetchCh chan prefetchReq
	quit       chan struct{}

	calls          atomic.Int64
	binds          atomic.Int64
	interSwaps     atomic.Int64
	intraSwaps     atomic.Int64
	migrations     atomic.Int64
	recoveries     atomic.Int64
	replays        atomic.Int64
	deviceFailures atomic.Int64
	offloaded      atomic.Int64
	unbindRetries  atomic.Int64
	admitted       atomic.Int64
	breakerTrips   atomic.Int64
	readmissions   atomic.Int64
	retriesSpent   atomic.Int64
	sheds          atomic.Int64

	prefetchIssued  atomic.Int64
	prefetchHits    atomic.Int64
	prefetchSkipped atomic.Int64

	migStarted      atomic.Int64
	migCompleted    atomic.Int64
	migAborted      atomic.Int64
	fenceRejections atomic.Int64
	leaseRenewals   atomic.Int64

	// Tenant quota enforcement (tenant.go): tenantMu guards the
	// registry; per-tenant usage counters live inside each entry.
	tenantMu     sync.Mutex
	tenants      map[string]*tenantState
	quotaRejects atomic.Int64

	// obsTenants attributes runtime work to tenants (internal/obs).
	// Hot paths reach it only through the *obs.TenantMetrics pointer
	// cached on each context at admission (ctx.tm, under ctx.mu), so
	// attribution adds atomic ops but no locks to launch/swap paths.
	obsTenants *obs.Registry
	// gpuTimeNS totals modeled kernel execution time across all
	// contexts — the node figure per-tenant attribution is conserved
	// against.
	gpuTimeNS atomic.Int64

	// draining, once set, makes HandleConn refuse every new connection
	// (graceful shutdown: the daemon stops admitting, lets in-flight
	// sessions finish, then exits).
	draining atomic.Bool
}

// New builds a runtime over a CUDA runtime instance, creating the
// configured number of virtual GPUs per device up front (each one a
// persistent CUDA context, statically bound to its physical GPU via
// cudaSetDevice at startup, §4.4). It fails if any context cannot be
// created — a sign the sharing degree exceeds what the CUDA runtime
// supports.
func New(crt *cudart.Runtime, cfg Config) (*Runtime, error) {
	rt := &Runtime{
		cfg:        cfg,
		clock:      crt.Clock(),
		crt:        crt,
		mm:         memmgr.New(!cfg.WriteThrough, cfg.HostMemory),
		policy:     cfg.Policy,
		ctxs:       make(map[int64]*Context),
		tenants:    make(map[string]*tenantState),
		obsTenants: obs.NewRegistry(),
		prefetchCh: make(chan prefetchReq, 64),
		quit:       make(chan struct{}),
	}
	if rt.policy == nil {
		rt.policy = sched.FCFS{}
	}
	rt.mm.InstallFaults(cfg.Faults)
	rt.mm.SetTracer(&trace.Tracer{
		Rec:        cfg.Trace,
		Now:        rt.clock.Now,
		SwapDur:    &rt.timings.SwapDur,
		SwapBytes:  &rt.timings.SwapBytes,
		H2D:        &rt.timings.H2D,
		D2H:        &rt.timings.D2H,
		DedupSaved: &rt.timings.DedupSaved,
		Prefetch:   &rt.timings.Prefetch,
		Attr:       rt.obsTenants.ObserveCtx,
	})
	if cfg.Flight != nil {
		cfg.Flight.SetSources(rt.clock.Now, rt.timings.Snapshot, rt.wireStats)
	}
	rt.dispatchHook = cfg.Faults.Hook(faultinject.PointDispatch, "")
	rt.leaseHook = cfg.Faults.Hook(faultinject.PointLeaseCheck, "")
	rt.migXferHook = cfg.Faults.Hook(faultinject.PointMigrateTransfer, "")
	rt.migImportHook = cfg.Faults.Hook(faultinject.PointMigrateImport, "")
	if cfg.SessionBase > 0 {
		rt.nextCtx = cfg.SessionBase
	}
	if n := failover.ResolvePending(cfg.MigrateDir, cfg.Logf); n > 0 {
		// A pending record at boot is an import the crash interrupted —
		// it never committed, so aborting it is the clean outcome.
		rt.migAborted.Add(int64(n))
	}
	rt.cond = sync.NewCond(&rt.mu)
	for i := 0; i < crt.DeviceCount(); i++ {
		if err := rt.addDeviceState(i); err != nil {
			rt.Close()
			return nil, err
		}
	}
	if cfg.EnableMigration {
		go rt.migrationMonitor()
	}
	if !cfg.DisablePrefetch {
		go rt.prefetchWorker()
	}
	return rt, nil
}

// migrationMonitor periodically looks for an idle vGPU on a fast device
// with nobody waiting and migrates a job from a slower device onto it
// (§5.3.4: "the dispatcher keeps track of fast GPUs becoming idle").
// Release events also trigger migration directly; the monitor catches
// victims that only became eligible (entered a CPU phase) later.
func (rt *Runtime) migrationMonitor() {
	const interval = 200 * time.Millisecond
	for {
		rt.clock.Sleep(interval)
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			return
		}
		if len(rt.waiting) == 0 {
			var best *vGPU
			for _, ds := range rt.deviceList() {
				if !ds.healthy.Load() {
					continue
				}
				if v := ds.freeVGPU(); v != nil {
					if best == nil || v.ds.dev.Spec().Speed > best.ds.dev.Spec().Speed {
						best = v
					}
				}
			}
			if best != nil {
				rt.tryMigrateLocked(best, 0)
			}
		}
		rt.mu.Unlock()
	}
}

// addDeviceState creates the vGPUs for device index i.
func (rt *Runtime) addDeviceState(i int) error {
	ds := &deviceState{index: i, dev: rt.crt.Device(i)}
	ds.healthy.Store(true)
	// Arm the device's fault hooks here so hot-added devices (AddDevice
	// during a chaos run) are covered the same as boot-time ones.
	ds.dev.InstallFaults(rt.cfg.Faults)
	for k := 0; k < rt.cfg.vgpus(); k++ {
		cuctx, err := rt.crt.CreateContext(i)
		if err != nil {
			return fmt.Errorf("core: creating vGPU %d.%d: %w", i, k, err)
		}
		ds.vgpus = append(ds.vgpus, &vGPU{
			name:  fmt.Sprintf("vGPU%d.%d", i, k),
			ds:    ds,
			cuctx: cuctx,
		})
	}
	ds.nslots = len(ds.vgpus)
	rt.mu.Lock()
	rt.devs = append(rt.devs, ds)
	rt.refreshDeviceListLocked()
	rt.mu.Unlock()
	return nil
}

// refreshDeviceListLocked republishes the COW device-list snapshot.
// Caller holds rt.mu.
func (rt *Runtime) refreshDeviceListLocked() {
	snap := append([]*deviceState(nil), rt.devs...)
	rt.devList.Store(&snap)
}

// deviceList returns the current device-list snapshot without taking
// the scheduler lock.
func (rt *Runtime) deviceList() []*deviceState {
	p := rt.devList.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Clock returns the runtime's model clock.
func (rt *Runtime) Clock() *sim.Clock { return rt.clock }

// NodeName reports the name this runtime uses in the lease table and
// migration protocol ("local" when unconfigured).
func (rt *Runtime) NodeName() string { return rt.cfg.node() }

// MemoryManager exposes the memory manager (read-mostly; used by tests
// and the experiment harness).
func (rt *Runtime) MemoryManager() *memmgr.Manager { return rt.mm }

// Metrics returns a snapshot of all counters.
func (rt *Runtime) Metrics() Metrics {
	list := rt.deviceList()
	devs := make([]DeviceUtilization, 0, len(list))
	for _, ds := range list {
		st := ds.dev.Stats()
		devs = append(devs, DeviceUtilization{
			Index:        ds.index,
			Name:         ds.dev.Spec().Name,
			Healthy:      ds.healthy.Load(),
			Busy:         st.Busy,
			Launches:     st.Launches,
			H2DBytes:     st.H2DBytes,
			D2HBytes:     st.D2HBytes,
			ActiveVGPUs:  ds.activeVGPUs(),
			VGPUs:        len(ds.slots()),
			MemAvailable: ds.dev.Available(),
			Capacity:     ds.dev.Capacity(),
		})
	}
	return Metrics{
		Devices:         devs,
		CallsServed:     rt.calls.Load(),
		Binds:           rt.binds.Load(),
		InterAppSwaps:   rt.interSwaps.Load(),
		IntraAppSwaps:   rt.intraSwaps.Load(),
		Migrations:      rt.migrations.Load(),
		Recoveries:      rt.recoveries.Load(),
		Replays:         rt.replays.Load(),
		DeviceFailures:  rt.deviceFailures.Load(),
		Offloaded:       rt.offloaded.Load(),
		UnbindRetries:   rt.unbindRetries.Load(),
		BreakerTrips:    rt.breakerTrips.Load(),
		Readmissions:    rt.readmissions.Load(),
		RetriesSpent:    rt.retriesSpent.Load(),
		Sheds:           rt.sheds.Load(),
		PrefetchIssued:  rt.prefetchIssued.Load(),
		PrefetchHits:    rt.prefetchHits.Load(),
		PrefetchSkipped: rt.prefetchSkipped.Load(),

		MigrationsStarted:   rt.migStarted.Load(),
		MigrationsCompleted: rt.migCompleted.Load(),
		MigrationsAborted:   rt.migAborted.Load(),
		FenceRejections:     rt.fenceRejections.Load(),
		LeaseRenewals:       rt.leaseRenewals.Load(),

		Memory: rt.mm.Stats(),
	}
}

// wireStats builds the operator-facing metrics snapshot served for a
// StatsCall.
func (rt *Runtime) wireStats() api.RuntimeStats {
	m := rt.Metrics()
	rt.mu.Lock()
	depth := len(rt.waiting)
	live := len(rt.ctxs)
	rt.mu.Unlock()
	out := api.RuntimeStats{
		CallsServed:         m.CallsServed,
		Binds:               m.Binds,
		InterAppSwaps:       m.InterAppSwaps,
		IntraAppSwaps:       m.IntraAppSwaps,
		SwapOps:             m.Memory.SwapOps,
		SwapBytes:           m.Memory.SwapBytes,
		CheckpointBytes:     m.Memory.CheckpointBytes,
		PrefetchIssued:      m.PrefetchIssued,
		PrefetchHits:        m.PrefetchHits,
		PrefetchSkipped:     m.PrefetchSkipped,
		DedupHits:           m.Memory.DedupHits,
		DedupSavedBytes:     m.Memory.DedupSavedBytes,
		CowBreaks:           m.Memory.CowBreaks,
		Migrations:          m.Migrations,
		MigrationsStarted:   m.MigrationsStarted,
		MigrationsCompleted: m.MigrationsCompleted,
		MigrationsAborted:   m.MigrationsAborted,
		FenceRejections:     m.FenceRejections,
		LeaseRenewals:       m.LeaseRenewals,

		Recoveries:     m.Recoveries,
		Replays:        m.Replays,
		DeviceFailures: m.DeviceFailures,
		Offloaded:      m.Offloaded,
		UnbindRetries:  m.UnbindRetries,
		BreakerTrips:   m.BreakerTrips,
		Readmissions:   m.Readmissions,
		RetriesSpent:   m.RetriesSpent,
		Sheds:          m.Sheds,
		GPUTimeNS:      rt.gpuTimeNS.Load(),
		QueueDepth:     depth,
		LiveContexts:   live,
		Histograms:     rt.timings.Snapshot(),
		Tenants:        rt.obsTenants.Snapshot(),
	}
	for _, d := range m.Devices {
		out.Devices = append(out.Devices, api.DeviceStats{
			Index:        d.Index,
			Name:         d.Name,
			Healthy:      d.Healthy,
			BusyNS:       int64(d.Busy),
			Launches:     d.Launches,
			H2DBytes:     d.H2DBytes,
			D2HBytes:     d.D2HBytes,
			ActiveVGPUs:  d.ActiveVGPUs,
			VGPUs:        d.VGPUs,
			MemAvailable: d.MemAvailable,
			Capacity:     d.Capacity,
		})
	}
	return out
}

// VGPUCount reports the number of live (healthy-device) virtual GPUs —
// the value the runtime returns for cudaGetDeviceCount (§4.3).
func (rt *Runtime) VGPUCount() int {
	n := 0
	for _, ds := range rt.deviceList() {
		if !ds.healthy.Load() {
			continue
		}
		n += len(ds.slots())
	}
	return n
}

// QueueDepth reports how many contexts are waiting for a virtual GPU —
// the load signal used for inter-node offloading (§4.7).
func (rt *Runtime) QueueDepth() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.waiting)
}

// NoteBreakerTrip records a peer-link circuit breaker opening; the
// cluster layer wires its breaker's trip callback here so breaker
// activity shows up in this node's stats and trace.
func (rt *Runtime) NoteBreakerTrip(link string) {
	rt.breakerTrips.Add(1)
	rt.logf("peer link %s: breaker tripped open", link)
	rt.event(trace.KindBreakerTrip, 0, 0, -1, link)
}

// NoteBreakerHeal records a breaker re-closing after its half-open
// probe succeeded.
func (rt *Runtime) NoteBreakerHeal(link string) {
	rt.logf("peer link %s: breaker re-closed", link)
	rt.event(trace.KindBreakerHeal, 0, 0, -1, link)
}

// NoteRetrySpent records one transparent frontend retry; the cluster
// layer wires its shared retrier's hook here.
func (rt *Runtime) NoteRetrySpent() { rt.retriesSpent.Add(1) }

// TenantAttribution returns the per-tenant attribution snapshot
// (internal/obs): what each tenant's sessions consumed on this node.
func (rt *Runtime) TenantAttribution() map[string]api.TenantUsage {
	return rt.obsTenants.Snapshot()
}

// logf emits a debug event when configured.
// Logf forwards to the runtime's configured logger (no-op when
// unset), so sibling subsystems like the failover monitor can share
// the daemon's log stream.
func (rt *Runtime) Logf(format string, args ...any) { rt.logf(format, args...) }

func (rt *Runtime) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// flightCrashDump writes the black box before an armed crash point
// kills the process, so even a faultinject SIGKILL at a site that
// calls ckptlog.Die directly leaves a post-mortem behind.
func (rt *Runtime) flightCrashDump() {
	if rt.cfg.Flight != nil {
		rt.cfg.Flight.Dump("crash-point")
	}
}

// event records a structured trace event (no-op without a recorder)
// and mirrors it to the debug log and the flight recorder. Every call
// site is a cold-path state transition, so the flight recorder's short
// mutex never sits on the launch or swap hot paths.
func (rt *Runtime) event(kind trace.Kind, ctx, other int64, device int, detail string) {
	if rt.cfg.Flight != nil {
		rt.cfg.Flight.Note(kind.String(), ctx, device, detail)
	}
	if rt.cfg.Trace != nil {
		rt.cfg.Trace.Record(trace.Event{
			Time:   rt.clock.Now(),
			Kind:   kind,
			Ctx:    ctx,
			Other:  other,
			Device: device,
			Detail: detail,
		})
	}
}

// span is an in-flight causal span. A nil *span (no recorder
// configured) is valid: every method no-ops, so call sites instrument
// unconditionally.
type span struct {
	rt *Runtime
	s  trace.Span
}

// beginSpan opens a span at the current model time; parent is the
// enclosing span's ID (0 for roots). Returns nil without a recorder.
func (rt *Runtime) beginSpan(phase string, ctx int64, parent trace.SpanID) *span {
	if rt.cfg.Trace == nil {
		return nil
	}
	return &span{rt: rt, s: trace.Span{
		ID: trace.NewSpanID(), Parent: parent, Ctx: ctx,
		Phase: phase, Start: rt.clock.Now(), Device: -1,
	}}
}

// id returns the span's ID, 0 for a nil span.
func (sp *span) id() trace.SpanID {
	if sp == nil {
		return 0
	}
	return sp.s.ID
}

// end closes and records the span.
func (sp *span) end(device int, detail string, err error) {
	if sp == nil {
		return
	}
	sp.s.End = sp.rt.clock.Now()
	sp.s.Device = device
	sp.s.Detail = detail
	if err != nil {
		sp.s.Err = err.Error()
	}
	sp.rt.cfg.Trace.RecordSpan(sp.s)
}

// endIfTimed records the span only when model time advanced inside it
// — used for phases (swap-in) that usually complete instantly and
// would otherwise flood the ring with zero-length spans.
func (sp *span) endIfTimed(device int, detail string, err error) {
	if sp == nil {
		return
	}
	if sp.rt.clock.Now() == sp.s.Start && err == nil {
		return
	}
	sp.end(device, detail, err)
}

// Timings exposes the runtime's latency/size histograms (read-only
// use: snapshotting for exposition).
func (rt *Runtime) Timings() *trace.Timings { return &rt.timings }

// TraceRecorder returns the configured trace recorder, nil when
// tracing is off.
func (rt *Runtime) TraceRecorder() *trace.Recorder { return rt.cfg.Trace }

// StatsSnapshot returns the operator-facing metrics snapshot — the
// same structure served over the wire for a StatsCall, reused by the
// HTTP operator plane.
func (rt *Runtime) StatsSnapshot() api.RuntimeStats { return rt.wireStats() }

// NotePeerCall records one peer RPC round trip; the cluster layer's
// link wrapper feeds it.
func (rt *Runtime) NotePeerCall(d time.Duration) {
	rt.timings.PeerCall.Observe(int64(d))
}

// Close shuts the runtime down: waiting contexts are released with an
// error and the vGPU contexts are destroyed.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	close(rt.quit)
	devs := rt.devs
	rt.cond.Broadcast()
	rt.mu.Unlock()
	for _, ds := range devs {
		for _, v := range ds.slots() {
			v.cuctx.Destroy()
		}
	}
}
