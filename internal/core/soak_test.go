package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
)

// TestSoakShardedRuntime is the concurrency soak for the per-device
// sharding refactor (DESIGN.md §11), meant to run under -race: N
// tenants hammer M devices with Malloc / MemcpyHD / Launch / MemcpyDH /
// Free epochs whose aggregate footprint oversubscribes device memory
// (forcing inter-application swaps every epoch), while the main
// goroutine kills and restores a device mid-storm. It asserts:
//
//   - no deadlock (the test completes) and no data corruption (every
//     epoch reads back exactly what its kernels computed, across
//     device death and replay);
//   - memory accounting is conserved: at every audited instant the
//     swap-area occupancy is at least the sum of per-context usage
//     (reserve-before-publish), and both drop to zero after teardown;
//   - device memory is fully returned once every tenant exits.
func TestSoakShardedRuntime(t *testing.T) {
	const (
		tenants  = 12
		epochs   = 8
		bufBytes = 600 << 10 // two co-bound tenants overflow a 1 MiB device
	)
	env := newEnv(t, Config{VGPUsPerDevice: 2, MinVictimIdle: -1},
		smallSpec(1<<20, 1), smallSpec(1<<20, 0.8), smallSpec(1<<20, 0.6))

	// Accounting audit: hostUsed is reserved before a context's usage is
	// published and released after it is retracted, so the global
	// occupancy may transiently exceed the per-context sum but never
	// undershoot it. Swap dedup releases the shared bytes it saves, so
	// the conserved quantity is occupancy plus the published saving.
	// The counters are separate atomics mutated mid-transfer by
	// concurrent seals and COW breaks, so a single violating read can
	// be a benign interleaving: only a violation that persists across
	// retries is a real leak.
	audit := func() error {
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			env.rt.mu.Lock()
			ctxs := make([]*Context, 0, len(env.rt.ctxs))
			for _, c := range env.rt.ctxs {
				ctxs = append(ctxs, c)
			}
			env.rt.mu.Unlock()
			var sum uint64
			for _, c := range ctxs {
				sum += env.rt.mm.UsageOf(c.id)
			}
			st := env.rt.mm.Stats()
			covered := st.HostBytesInUse + uint64(st.DedupSavedBytes)
			if covered >= sum {
				return nil
			}
			err = fmt.Errorf("host occupancy %d + dedup saving %d below per-context sum %d",
				st.HostBytesInUse, st.DedupSavedBytes, sum)
			time.Sleep(100 * time.Microsecond)
		}
		return err
	}

	var wg sync.WaitGroup
	var stop atomic.Bool
	errs := make(chan error, tenants+1)

	// Continuous conservation audits while the storm runs. The auditor
	// has its own done-channel: it must outlive the tenant WaitGroup.
	auditDone := make(chan struct{})
	go func() {
		defer close(auditDone)
		for !stop.Load() {
			if err := audit(); err != nil {
				errs <- err
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := env.client()
			defer c.Close()
			if err := c.RegisterFatBinary(testBinary()); err != nil {
				errs <- fmt.Errorf("tenant %d: register: %w", id, err)
				return
			}
			seed := make([]byte, 16)
			for j := range seed {
				seed[j] = byte(id + j)
			}
			for e := 0; e < epochs; e++ {
				p, err := c.Malloc(bufBytes)
				if err != nil {
					errs <- fmt.Errorf("tenant %d epoch %d: malloc: %w", id, e, err)
					return
				}
				if err := c.MemcpyHD(p, seed); err != nil {
					errs <- fmt.Errorf("tenant %d epoch %d: h2d: %w", id, e, err)
					return
				}
				for k := 0; k < 3; k++ {
					err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{16}})
					if err != nil {
						errs <- fmt.Errorf("tenant %d epoch %d: launch %d: %w", id, e, k, err)
						return
					}
					// Yield while holding residency: on GOMAXPROCS=1 the
					// scaled model sleeps return without a scheduling point,
					// so without this the tenants can serialize and never
					// contend for the same device's memory.
					time.Sleep(50 * time.Microsecond)
				}
				got, err := c.MemcpyDH(p, 16)
				if err != nil {
					errs <- fmt.Errorf("tenant %d epoch %d: d2h: %w", id, e, err)
					return
				}
				for j := range seed {
					if got[j] != seed[j]+3 {
						errs <- fmt.Errorf("tenant %d epoch %d: byte %d = %d, want %d",
							id, e, j, got[j], seed[j]+3)
						return
					}
				}
				if err := c.Free(p); err != nil {
					errs <- fmt.Errorf("tenant %d epoch %d: free: %w", id, e, err)
					return
				}
			}
		}(i)
	}

	// Kill device 0 mid-storm and restore it shortly after; the health
	// monitor must re-admit it while the tenants keep making progress on
	// the survivors.
	time.Sleep(2 * time.Millisecond)
	env.rt.FailDevice(0)
	time.Sleep(2 * time.Millisecond)
	env.rt.deviceList()[0].dev.Restore()

	wg.Wait()
	stop.Store(true)
	<-auditDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The storm must actually have exercised the cross-shard swap path.
	m := env.rt.Metrics()
	if m.InterAppSwaps == 0 && m.UnbindRetries == 0 {
		t.Error("soak drove no swap or unbind traffic; the oversubscription tested nothing")
	}
	if m.DeviceFailures == 0 {
		t.Error("injected device failure was not observed")
	}

	// Re-admission: device 0 must come back healthy.
	deadline := time.Now().Add(5 * time.Second)
	for !env.rt.deviceList()[0].healthy.Load() {
		if time.Now().After(deadline) {
			t.Fatal("device 0 was not re-admitted after restore")
		}
		time.Sleep(time.Millisecond)
	}

	// Conservation after teardown: every tenant exited, so the swap area
	// must be empty and healthy devices fully returned (minus the fixed
	// per-vGPU context reservation).
	if used := env.rt.mm.Stats().HostBytesInUse; used != 0 {
		t.Errorf("swap area holds %d bytes after all tenants exited", used)
	}
	for _, ds := range env.rt.deviceList() {
		if !ds.healthy.Load() {
			continue
		}
		want := ds.dev.Capacity() - uint64(len(ds.slots()))*1024
		if got := ds.dev.Available(); got != want {
			t.Errorf("device %d: available %d after teardown, want %d", ds.index, got, want)
		}
	}
}
