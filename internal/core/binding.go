package core

import (
	"gvrt/internal/api"
	"gvrt/internal/gpu"
	"gvrt/internal/sched"
	"gvrt/internal/trace"
)

// This file implements dynamic application→GPU binding (§4.3/§4.4):
// delayed binding at first kernel launch, the waiting-contexts list,
// vGPU release and hand-off, and load balancing through migration
// (§5.3.4).

// bind attaches the context to a free virtual GPU, blocking on the
// waiting list when none is available. The scheduling policy chooses
// both the device (when several have a free vGPU) and, on release, the
// next waiter.
func (rt *Runtime) bind(ctx *Context) error {
	sp := rt.beginSpan("bind", ctx.id, ctx.curSpan)
	start := rt.clock.Now()
	err := rt.bindWait(ctx)
	rt.timings.BindWait.Observe(int64(rt.clock.Now() - start))
	dev := -1
	if v := rt.boundVGPU(ctx); err == nil && v != nil {
		dev = v.ds.index
	}
	sp.endIfTimed(dev, "", err)
	return err
}

// bindWait is bind's blocking body.
func (rt *Runtime) bindWait(ctx *Context) error {
	rt.mu.Lock()
	for {
		if rt.closed {
			rt.mu.Unlock()
			return api.ErrNoDevice
		}
		if v := rt.pickFreeVGPULocked(ctx); v != nil {
			// Claim under the device shard's lock: a concurrent device
			// failure (which runs without rt.mu) may have killed the
			// slot between pick and claim — then re-pick.
			if !v.ds.tryClaim(v, ctx) {
				continue
			}
			ctx.vgpu.Store(v)
			rt.mu.Unlock()
			return rt.onBind(ctx, v)
		}
		if !rt.anyHealthy() {
			rt.mu.Unlock()
			return api.ErrNoDevice
		}
		// Park on the waiting-contexts list until a release grants us a
		// vGPU (§4.3: "application threads are enqueued in the list of
		// waiting contexts for later scheduling").
		ctx.inWaiting = true
		ctx.granted = nil
		ctx.arrived = rt.clock.Now()
		qsp := rt.beginSpan("queue-wait", ctx.id, ctx.curSpan)
		rt.waiting = append(rt.waiting, ctx)
		for ctx.granted == nil && !rt.closed {
			rt.cond.Wait()
		}
		waited := rt.clock.Now() - ctx.arrived
		rt.timings.QueueWait.Observe(int64(waited))
		if ctx.tm != nil {
			// Safe: the dispatcher holds ctx.mu for the whole call, and
			// tm only changes under ctx.mu. AddQueueWait is atomic adds.
			ctx.tm.AddQueueWait(int64(waited))
		}
		qsp.end(-1, "", nil)
		v := ctx.granted
		ctx.granted = nil
		if rt.closed {
			rt.mu.Unlock()
			if v != nil {
				v.ds.clearBound(v)
			}
			return api.ErrNoDevice
		}
		ctx.vgpu.Store(v)
		rt.mu.Unlock()
		return rt.onBind(ctx, v)
	}
}

// onBind completes a binding outside rt.mu: the application's fat
// binaries are registered with the vGPU's CUDA context (the dispatcher
// issues registration functions before any kernel work, §4.3).
func (rt *Runtime) onBind(ctx *Context, v *vGPU) error {
	rt.binds.Add(1)
	rt.logf("ctx %d (%s) bound to %s", ctx.id, ctx.label, v.name)
	rt.event(trace.KindBind, ctx.id, 0, v.ds.index, v.name)
	for _, fb := range ctx.binaries {
		if err := v.cuctx.RegisterFatBinary(fb); err != nil {
			return err
		}
	}
	return nil
}

// anyHealthy reports whether any device can still serve.
func (rt *Runtime) anyHealthy() bool {
	for _, ds := range rt.deviceList() {
		if ds.healthy.Load() {
			return true
		}
	}
	return false
}

// siblingDeviceLocked returns the device a bound thread of the same
// application occupies, if any (§4.8: threads of one application share
// data and must land on one device). Caller holds rt.mu.
func (rt *Runtime) siblingDeviceLocked(ctx *Context) *deviceState {
	if ctx.appID == "" {
		return nil
	}
	for _, other := range rt.ctxs {
		if other == ctx || other.appID != ctx.appID {
			continue
		}
		if v := other.vgpu.Load(); v != nil {
			return v.ds
		}
	}
	return nil
}

// pickFreeVGPULocked asks the policy to choose among devices that have
// a free vGPU. A context whose application already has a bound sibling
// thread is constrained to the sibling's device (§4.8).
func (rt *Runtime) pickFreeVGPULocked(ctx *Context) *vGPU {
	if sib := rt.siblingDeviceLocked(ctx); sib != nil {
		if sib.healthy.Load() {
			return sib.freeVGPU()
		}
		return nil
	}
	var loads []sched.DeviceLoad
	var states []*deviceState
	for _, ds := range rt.devs {
		if !ds.healthy.Load() || ds.freeVGPU() == nil {
			continue
		}
		active := ds.activeVGPUs()
		loads = append(loads, sched.DeviceLoad{
			Index:        ds.index,
			Speed:        ds.dev.Spec().Speed,
			FreeVGPUs:    len(ds.slots()) - active,
			ActiveVGPUs:  active,
			MemAvailable: ds.dev.Available(),
		})
		states = append(states, ds)
	}
	if len(loads) == 0 {
		return nil
	}
	i := rt.policy.PickDevice(ctx.waiterInfo(), loads)
	if i < 0 || i >= len(states) {
		return nil
	}
	return states[i].freeVGPU()
}

// dropWaiterLocked removes a context from the waiting list.
func (rt *Runtime) dropWaiterLocked(ctx *Context) {
	for i, w := range rt.waiting {
		if w == ctx {
			rt.waiting = append(rt.waiting[:i], rt.waiting[i+1:]...)
			break
		}
	}
	ctx.inWaiting = false
}

// releaseVGPULocked frees a vGPU and hands it to the policy-chosen
// waiter; with nobody waiting and migration enabled, it tries to
// migrate a job from a slower device instead (§5.3.4: "the dispatcher
// keeps track of fast GPUs becoming idle, and, in the absence of
// pending jobs, it migrates running jobs from slow to fast GPUs").
func (rt *Runtime) releaseVGPULocked(v *vGPU) {
	v.ds.clearBound(v)
	if v.dead.Load() || !v.ds.healthy.Load() {
		return
	}
	// Waiters whose application has a bound sibling elsewhere must not
	// take this slot (§4.8); filter them before asking the policy.
	var eligible []int
	for i, w := range rt.waiting {
		if sib := rt.siblingDeviceLocked(w); sib != nil && sib != v.ds {
			continue
		}
		eligible = append(eligible, i)
	}
	if len(eligible) > 0 {
		infos := make([]sched.Waiter, len(eligible))
		for k, i := range eligible {
			infos[k] = rt.waiting[i].waiterInfo()
		}
		k := rt.policy.PickWaiter(infos)
		if k < 0 || k >= len(eligible) {
			k = 0
		}
		i := eligible[k]
		w := rt.waiting[i]
		// Re-claim under the shard lock: a device failure may have
		// killed the slot since clearBound; then the waiter stays
		// parked and recovery/re-admission will re-offer a slot.
		if !v.ds.tryClaim(v, w) {
			return
		}
		rt.waiting = append(rt.waiting[:i], rt.waiting[i+1:]...)
		w.inWaiting = false
		w.granted = v
		rt.cond.Broadcast()
		return
	}
	if rt.cfg.EnableMigration {
		rt.tryMigrateLocked(v, 0)
	}
}

// tryMigrateLocked attempts to move a context bound to a slower device
// onto the freed vGPU v. The victim must be idle (its service lock
// acquired without blocking — i.e. it is in a CPU phase) and not
// pinned. Called with rt.mu held; temporarily releases it for the swap.
func (rt *Runtime) tryMigrateLocked(v *vGPU, depth int) {
	if depth > 4 {
		return
	}
	speed := v.ds.dev.Spec().Speed
	var victim *Context
	var oldV *vGPU
	// Prefer the longest-idle context on the slowest device; only
	// contexts genuinely in a CPU phase are eligible.
	now := int64(rt.clock.Now())
	minIdle := int64(rt.cfg.minVictimIdle())
	bestIdle := int64(-1)
	var locked *Context
	for _, ds := range rt.devs {
		if !ds.healthy.Load() || ds.dev.Spec().Speed >= speed {
			continue
		}
		ds.mu.Lock()
		cands := append([]*vGPU(nil), ds.vgpus...)
		bounds := make([]*Context, len(cands))
		for i, cand := range cands {
			bounds[i] = cand.bound
		}
		ds.mu.Unlock()
		for i, cand := range cands {
			c := bounds[i]
			// Threads of a multi-threaded application are not migrated
			// independently (§4.8: they may share device data).
			if c == nil || c.pinned.Load() || c.exited.Load() || c.appID != "" {
				continue
			}
			idle := c.lastActiveNS.Load()
			if now-idle < minIdle {
				continue
			}
			if bestIdle == -1 || idle < bestIdle {
				if c.mu.TryLock() {
					if locked != nil {
						locked.mu.Unlock()
					}
					locked = c
					victim = c
					oldV = cand
					bestIdle = idle
				}
			}
		}
	}
	if victim == nil {
		return
	}
	// Reserve the destination slot and commit intent before unlocking
	// the runtime for the slow swap work. The victim's own slot stays
	// claimed (oldV.bound == victim) until the migration resolves.
	claimed := v.ds.tryClaim(v, victim)
	if !claimed || victim.vgpu.Load() != oldV {
		// The destination died/got taken, or the victim moved on its
		// own since the scan; undo a successful claim and give up.
		if claimed {
			v.ds.clearBoundIf(v, victim)
		}
		victim.mu.Unlock()
		return
	}
	rt.mu.Unlock()

	err := func() error {
		if _, err := rt.mm.SwapOutAll(victim.id, oldV.cuctx); err != nil {
			return err
		}
		victim.clearReplay() // swap-out flushed everything: checkpoint
		for _, fb := range victim.binaries {
			if err := v.cuctx.RegisterFatBinary(fb); err != nil {
				return err
			}
		}
		return nil
	}()

	rt.mu.Lock()
	if err != nil {
		// Migration failed (e.g. source device died mid-swap); leave
		// the victim unbound so its own recovery path kicks in.
		rt.logf("migration of ctx %d failed: %v", victim.id, err)
		v.ds.clearBoundIf(v, victim)
		if victim.vgpu.Load() == oldV {
			victim.vgpu.Store(nil)
			victim.needsRecovery.Store(true)
			oldV.ds.clearBoundIf(oldV, victim)
		}
		victim.mu.Unlock()
		return
	}
	victim.vgpu.Store(v)
	oldV.ds.clearBoundIf(oldV, victim)
	rt.migrations.Add(1)
	rt.logf("migrated ctx %d from %s to %s", victim.id, oldV.name, v.name)
	rt.event(trace.KindMigration, victim.id, 0, v.ds.index, oldV.name+" -> "+v.name)
	victim.mu.Unlock()
	// The old (slower) slot is now free; cascade.
	rt.releaseVGPULocked(oldV)
	_ = depth
}

// AddDevice hot-adds a physical GPU (dynamic upgrade, §2): vGPUs are
// created for it and waiting contexts — or, with migration enabled,
// jobs on slower devices — immediately benefit.
func (rt *Runtime) AddDevice(d *gpu.Device) (int, error) {
	idx := rt.crt.AddDevice(d)
	if err := rt.addDeviceState(idx); err != nil {
		return idx, err
	}
	rt.mu.Lock()
	ds := rt.devs[len(rt.devs)-1]
	for _, v := range ds.slots() {
		rt.releaseVGPULocked(v)
	}
	rt.mu.Unlock()
	return idx, nil
}

// RemoveDevice gracefully drains a device (dynamic downgrade, §2):
// bound contexts are checkpointed to swap and unbound, then the device
// is marked removed. Their next kernel launches re-bind elsewhere.
func (rt *Runtime) RemoveDevice(index int) error {
	var ds *deviceState
	for _, d := range rt.deviceList() {
		if d.index == index {
			ds = d
			break
		}
	}
	if ds == nil {
		return api.ErrInvalidDevice
	}
	ds.healthy.Store(false) // no new binds
	vgpus := ds.slots()

	for _, v := range vgpus {
		ds.mu.Lock()
		c := v.bound
		ds.mu.Unlock()
		if c == nil {
			v.dead.Store(true)
			continue
		}
		// Blocking acquisition is safe here: this is an administrative
		// goroutine holding no other locks.
		c.mu.Lock()
		if c.vgpu.Load() == v {
			if _, err := rt.mm.SwapOutAll(c.id, v.cuctx); err != nil {
				// Device died during graceful removal; fall back to the
				// failure path.
				rt.mm.InvalidateResidency(c.id)
			}
			c.clearReplay()
			c.vgpu.Store(nil)
			ds.mu.Lock()
			v.bound = nil
			v.dead.Store(true)
			ds.mu.Unlock()
		} else {
			v.dead.Store(true)
		}
		c.mu.Unlock()
	}
	ds.dev.MarkRemoved()
	return nil
}
