package core

import (
	"fmt"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/ckptlog"
)

// This file connects the runtime to the crash-consistent checkpoint
// journal (internal/ckptlog). The journal shadows the durable state of
// §4.6 — the page table + swap area checkpoint plus the replay log — on
// disk, so the checkpoint survives not just device failures but daemon
// kills: RecoverFromJournal rebuilds every committed session as an
// orphan a reconnecting client can Resume, with the kernels committed
// since its last checkpoint replayed on first use.
//
// Consistency invariant: for every context the journal mirrors a pair
// (entries E, pending kernels P) such that replaying P over E yields
// the context's current durable state. Entry mutations that would break
// the invariant — a host write, free, or read-back of a buffer some
// logged kernel references — are preceded by a checkpoint (flush +
// atomic full-image record + log reset), so E jumps forward and P
// empties in one durable step. Swap-outs intentionally do NOT update E:
// the journal keeps pre-kernel data plus P, and recovery recomputes.

// AttachJournal installs j as the runtime's durability journal: the
// memory manager's mutations, kernel commits and checkpoints are
// shadowed to it from now on. State the runtime already holds (live
// contexts, restored orphans) that the journal does not — e.g. on first
// enablement over a pre-journal state file — is checkpoint-flushed and
// seeded into it. Call it at boot, after RecoverFromJournal and
// RestoreState, before serving connections.
func (rt *Runtime) AttachJournal(j *ckptlog.Journal) error {
	rt.mu.Lock()
	rt.journal = j
	ctxs := make([]*Context, 0, len(rt.ctxs))
	for _, c := range rt.ctxs {
		ctxs = append(ctxs, c)
	}
	orphans := make([]int64, 0, len(rt.orphans))
	for id := range rt.orphans {
		orphans = append(orphans, id)
	}
	rt.mu.Unlock()
	rt.mm.SetObserver(j)

	for _, ctx := range ctxs {
		ctx.mu.Lock()
		err := func() error {
			if j.HasContext(ctx.id) {
				return nil
			}
			// checkpoint flushes device-dirty entries first, so the seeded
			// image can never capture stale swap data, and — with
			// rt.journal now set — writes the image record itself.
			return rt.checkpoint(ctx)
		}()
		ctx.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: seeding journal with ctx %d: %w", ctx.id, err)
		}
	}
	for _, id := range orphans {
		if j.HasContext(id) {
			continue
		}
		img, err := rt.mm.ExportContext(id)
		if err != nil {
			return fmt.Errorf("core: seeding journal with orphan %d: %w", id, err)
		}
		rt.mu.Lock()
		pending := rt.orphanReplay[id]
		rt.mu.Unlock()
		if err := j.SnapshotContext(img, pending); err != nil {
			return fmt.Errorf("core: seeding journal with orphan %d: %w", id, err)
		}
	}
	return nil
}

// RecoverFromJournal installs the state a ckptlog.Open recovered into
// this (fresh) runtime: every recovered context becomes an unclaimed
// orphan session, and its pending kernels are kept aside so the first
// operation after a Resume replays them (§4.6's bounded replay, now
// across a daemon restart). Call it before AttachJournal.
func (rt *Runtime) RecoverFromJournal(rec *ckptlog.Recovered) error {
	for _, img := range rec.Images {
		if err := rt.mm.ImportContext(img); err != nil {
			return fmt.Errorf("core: recovering ctx %d from journal: %w", img.CtxID, err)
		}
		rt.mu.Lock()
		if rt.orphans == nil {
			rt.orphans = make(map[int64]bool)
		}
		rt.orphans[img.CtxID] = true
		if p := rec.Pending[img.CtxID]; len(p) > 0 {
			if rt.orphanReplay == nil {
				rt.orphanReplay = make(map[int64][]api.LaunchCall)
			}
			rt.orphanReplay[img.CtxID] = p
		}
		rt.mu.Unlock()
		rt.logf("recovered session %d from journal (%d entries, %d pending kernels)",
			img.CtxID, len(img.Entries), len(rec.Pending[img.CtxID]))
	}
	rt.mu.Lock()
	// Never re-issue any context ID the journal has ever seen — including
	// quarantined and destroyed ones.
	if rec.MaxCtxID > rt.nextCtx {
		rt.nextCtx = rec.MaxCtxID
	}
	rt.mu.Unlock()
	return nil
}

// journalCommit write-ahead-logs an acknowledged kernel launch. It must
// succeed before the launch is acknowledged: on error the caller
// returns it to the client instead of a success, so no client ever
// believes in a kernel a crash could lose.
func (rt *Runtime) journalCommit(ctx *Context, call api.LaunchCall) error {
	if rt.journal == nil {
		return nil
	}
	// Commit cost is real wall time (fsync), not model time — recorded
	// in its own histogram so operators see the durability tax.
	wallStart := time.Now()
	err := rt.journal.KernelCommitted(ctx.id, call)
	rt.timings.JournalCommitWall.Observe(time.Since(wallStart).Nanoseconds())
	if err != nil {
		rt.logf("ctx %d: kernel commit not durable, refusing ack: %v", ctx.id, err)
		return err
	}
	return nil
}

// journalSnapshot records a context's full, flushed state as one atomic
// image record, resetting its pending-kernel list. Callers hold the
// context's service lock and guarantee no entry is device-dirty (a
// checkpoint or full swap-out just completed).
func (rt *Runtime) journalSnapshot(ctxID int64) error {
	if rt.journal == nil {
		return nil
	}
	img, err := rt.mm.ExportContext(ctxID)
	if err != nil {
		return fmt.Errorf("core: exporting ctx %d for journal: %w", ctxID, err)
	}
	return rt.journal.SnapshotContext(img, nil)
}

// journalSnapshotLogged is journalSnapshot for call sites that cannot
// propagate an error (swap-out of a victim context); a failure is loud
// but not fatal — the journal keeps the context's previous image plus
// its pending kernels, which still recovers to the correct state.
func (rt *Runtime) journalSnapshotLogged(ctxID int64) {
	if err := rt.journalSnapshot(ctxID); err != nil {
		rt.logf("ctx %d: journal snapshot failed: %v", ctxID, err)
	}
}
