package frontend

import (
	"testing"

	"gvrt/internal/api"
	"gvrt/internal/resilience"
)

func retrier(budget *resilience.Budget) *resilience.Retrier {
	return resilience.NewRetrier(resilience.RetryPolicy{
		MaxAttempts: 5,
		Budget:      budget,
	})
}

func TestWithRetryRidesThroughTransientCodes(t *testing.T) {
	c, s := newScripted(t,
		api.Reply{Code: api.ErrDeviceUnavailable}, // re-bind in progress
		api.Reply{Code: api.ErrOverloaded},        // load spike
		api.Reply{Ptr: 0x42},                      // third time lucky
		api.Reply{},                               // Exit
	)
	c.WithRetry(retrier(nil))
	p, err := c.Malloc(64)
	if err != nil || p != 0x42 {
		t.Fatalf("Malloc under retry = %#x, %v; want 0x42, nil", p, err)
	}
	c.Close()
	<-s.done
	if len(s.seen) != 4 {
		t.Fatalf("server saw %d calls, want 4 (3 mallocs + exit)", len(s.seen))
	}
	for i := 0; i < 3; i++ {
		if s.seen[i].CallName() != "cudaMalloc" {
			t.Errorf("call %d = %s, want cudaMalloc", i, s.seen[i].CallName())
		}
	}
}

func TestWithRetryStopsOnPermanentCode(t *testing.T) {
	c, s := newScripted(t,
		api.Reply{Code: api.ErrInvalidDevicePointer},
		api.Reply{}, // Exit
	)
	c.WithRetry(retrier(nil))
	_, err := c.Malloc(64)
	if api.Code(err) != api.ErrInvalidDevicePointer {
		t.Fatalf("err = %v, want the permanent code unchanged", err)
	}
	c.Close()
	<-s.done
	if len(s.seen) != 2 {
		t.Fatalf("server saw %d calls, want 2 (no retries of a permanent error)", len(s.seen))
	}
}

func TestWithRetryHonoursBudget(t *testing.T) {
	replies := make([]api.Reply, 0, 12)
	for i := 0; i < 11; i++ {
		replies = append(replies, api.Reply{Code: api.ErrOverloaded})
	}
	replies = append(replies, api.Reply{}) // Exit
	c, s := newScripted(t, replies...)
	budget := resilience.NewBudget(1, 0, nil) // one retry, ever
	c.WithRetry(retrier(budget))
	_, err := c.Malloc(64)
	if api.Code(err) != api.ErrOverloaded {
		t.Fatalf("err = %v, want ErrOverloaded after budget exhaustion", err)
	}
	c.Close()
	<-s.done
	if len(s.seen) != 3 {
		t.Fatalf("server saw %d calls, want 3 (first try + 1 budgeted retry + exit)", len(s.seen))
	}
}
