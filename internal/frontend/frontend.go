// Package frontend is the gvrt intercept library: the client-side API
// an application (thread) uses in place of the CUDA runtime (§3, §4.2).
//
// In the paper, a shared library overrides the CUDA Runtime API symbols
// and redirects every call over a gVirtuS socket to the runtime daemon.
// Here, Client plays that role over a transport.Conn: each method is one
// intercepted CUDA call, sent synchronously and returning the CUDA-style
// result code the daemon produced. One Client corresponds to exactly one
// application thread — multithreaded applications open one Client per
// thread, matching the CUDA 3.2 context-per-thread semantics the
// runtime preserves (§4.2).
package frontend

import (
	"encoding/json"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/resilience"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

// DevPtr2 is the result of a pitched allocation: the base pointer and
// the row pitch in bytes.
type DevPtr2 struct {
	Ptr   api.DevPtr
	Pitch uint64
}

// Client is one application thread's connection to a gvrt runtime (or,
// via the same wire protocol, to a peer node it was offloaded to).
// Client is not safe for concurrent use: like a CUDA application
// thread, it issues one call at a time.
type Client struct {
	conn   transport.Conn
	closed bool
	retry  *resilience.Retrier
	tracer *trace.Tracer
}

// Connect wraps an established connection. Use transport.Pipe for an
// in-process runtime or transport.Dial for a remote daemon.
func Connect(conn transport.Conn) *Client {
	return &Client{conn: conn}
}

// WithRetry arms transparent retries: calls failing with a transient
// code that leaves the connection intact (device unavailable, no
// device, overloaded) are re-issued under r's backoff and budget, so
// the application rides through a device re-bind or a load spike
// without seeing the error. r may be shared across clients — the
// retry budget is then the node-wide amplification cap. Returns c.
func (c *Client) WithRetry(r *resilience.Retrier) *Client {
	c.retry = r
	return c
}

// WithTrace records a client-side span per call (phase
// "client.<call>", the application's view of the round trip,
// including any transparent retries) into rec, stamped with now()'s
// model time. Returns c.
func (c *Client) WithTrace(rec *trace.Recorder, now func() time.Duration) *Client {
	c.tracer = &trace.Tracer{Rec: rec, Now: now}
	return c
}

// call performs one RPC and folds transport errors into CUDA codes.
func (c *Client) call(call api.Call) (api.Reply, error) {
	if c.closed {
		return api.Reply{}, api.ErrConnectionClosed
	}
	if t := c.tracer; t != nil {
		start := t.Start()
		defer func() { t.Span("client."+call.CallName(), 0, start, -1, "") }()
	}
	if c.retry == nil {
		r, err := c.conn.Call(call)
		if err != nil {
			return api.Reply{}, api.ErrConnectionClosed
		}
		return r, r.Code.Err()
	}
	var r api.Reply
	err := c.retry.Do(func() error {
		var cerr error
		r, cerr = c.conn.Call(call)
		if cerr != nil {
			r = api.Reply{}
			// Fold transport errors exactly like the no-retry path; the
			// classifier treats a dead conn as non-retryable here.
			return api.ErrConnectionClosed
		}
		return r.Code.Err()
	})
	return r, err
}

// RegisterFatBinary mirrors the __cudaRegisterFatBinary sequence the
// CUDA toolchain emits before main: it ships the application's kernel
// image to the runtime.
func (c *Client) RegisterFatBinary(fb api.FatBinary) error {
	_, err := c.call(api.RegisterFatBinaryCall{Binary: fb})
	return err
}

// Malloc mirrors cudaMalloc. The returned pointer is virtual: only the
// runtime ever sees device addresses.
func (c *Client) Malloc(size uint64) (api.DevPtr, error) {
	r, err := c.call(api.MallocCall{Size: size})
	return r.Ptr, err
}

// MallocPitch mirrors cudaMallocPitch: it allocates height rows of
// widthBytes, each padded to a 512-byte pitch for coalesced access, and
// returns the base pointer plus the pitch.
func (c *Client) MallocPitch(widthBytes, height uint64) (ptr DevPtr2, err error) {
	const align = 512
	pitch := (widthBytes + align - 1) &^ uint64(align-1)
	r, err := c.call(api.MallocCall{Size: pitch * height, Kind: api.AllocPitched})
	return DevPtr2{Ptr: r.Ptr, Pitch: pitch}, err
}

// MallocArray mirrors cudaMallocArray for a width x height array of
// elemBytes elements.
func (c *Client) MallocArray(elemBytes, width, height uint64) (api.DevPtr, error) {
	if height == 0 {
		height = 1
	}
	r, err := c.call(api.MallocCall{Size: elemBytes * width * height, Kind: api.AllocArray})
	return r.Ptr, err
}

// Memset mirrors cudaMemset.
func (c *Client) Memset(dst api.DevPtr, value byte, size uint64) error {
	_, err := c.call(api.MemsetCall{Dst: dst, Value: value, Size: size})
	return err
}

// Free mirrors cudaFree.
func (c *Client) Free(p api.DevPtr) error {
	_, err := c.call(api.FreeCall{Ptr: p})
	return err
}

// MemcpyHD mirrors cudaMemcpy(HostToDevice) with real bytes.
func (c *Client) MemcpyHD(dst api.DevPtr, data []byte) error {
	_, err := c.call(api.MemcpyHDCall{Dst: dst, Data: data})
	return err
}

// MemcpyHDSynthetic is a host→device transfer of size bytes carrying no
// real payload — the workload models use it so multi-gigabyte modeled
// data sets cost no host memory.
func (c *Client) MemcpyHDSynthetic(dst api.DevPtr, size uint64) error {
	_, err := c.call(api.MemcpyHDCall{Dst: dst, Size: size})
	return err
}

// MemcpyDH mirrors cudaMemcpy(DeviceToHost). The returned slice is nil
// for synthetic data.
func (c *Client) MemcpyDH(src api.DevPtr, size uint64) ([]byte, error) {
	r, err := c.call(api.MemcpyDHCall{Src: src, Size: size})
	return r.Data, err
}

// MemcpyDD mirrors cudaMemcpy(DeviceToDevice).
func (c *Client) MemcpyDD(dst, src api.DevPtr, size uint64) error {
	_, err := c.call(api.MemcpyDDCall{Dst: dst, Src: src, Size: size})
	return err
}

// Launch mirrors cudaConfigureCall + cudaLaunch.
func (c *Client) Launch(call api.LaunchCall) error {
	_, err := c.call(call)
	return err
}

// SetDevice mirrors cudaSetDevice. The gvrt runtime ignores it (§4.3);
// it exists so unmodified applications keep working.
func (c *Client) SetDevice(device int) error {
	_, err := c.call(api.SetDeviceCall{Device: device})
	return err
}

// DeviceCount mirrors cudaGetDeviceCount; under gvrt it reports the
// number of virtual GPUs (§4.3).
func (c *Client) DeviceCount() (int, error) {
	r, err := c.call(api.GetDeviceCountCall{})
	return r.Count, err
}

// Synchronize mirrors cudaDeviceSynchronize.
func (c *Client) Synchronize() error {
	_, err := c.call(api.SynchronizeCall{})
	return err
}

// SetAppID announces the application this thread belongs to (the CUDA
// 4.0 compatibility extension of §4.8). Threads of one application
// share data on the GPU, so the runtime binds all connections carrying
// the same identifier to the same physical device. Call it before the
// first kernel launch.
func (c *Client) SetAppID(id string) error {
	_, err := c.call(api.SetAppIDCall{AppID: id})
	return err
}

// SetTenant announces which tenant this thread belongs to, entering it
// into the tenant's control-plane quotas (session cap immediately,
// byte cap on every subsequent allocation). Fails with ErrQuotaExceeded
// when the tenant's session cap is already full.
func (c *Client) SetTenant(name string) error {
	_, err := c.call(api.SetTenantCall{Tenant: name})
	return err
}

// RegisterNested declares a nested data structure to the runtime (§1):
// parent embeds, at offsets[i], the pointer to members[i]. Required for
// kernels that traverse nested pointers.
func (c *Client) RegisterNested(parent api.DevPtr, members []api.DevPtr, offsets []uint64) error {
	_, err := c.call(api.RegisterNestedCall{Parent: parent, Members: members, Offsets: offsets})
	return err
}

// Stats asks the daemon for its metrics snapshot — the node-level load
// information §2 suggests exposing to cluster schedulers.
func (c *Client) Stats() (api.RuntimeStats, error) {
	r, err := c.call(api.StatsCall{})
	if err != nil {
		return api.RuntimeStats{}, err
	}
	var out api.RuntimeStats
	if jerr := json.Unmarshal(r.Data, &out); jerr != nil {
		return api.RuntimeStats{}, api.ErrInvalidValue
	}
	return out, nil
}

// SetDeadline declares a quality-of-service deadline: the thread hopes
// to finish within d of model time. Deadline-aware policies
// (EarliestDeadlineFirst) order the waiting list by it; other policies
// ignore it. A non-positive d clears the deadline.
func (c *Client) SetDeadline(d time.Duration) error {
	_, err := c.call(api.SetDeadlineCall{Relative: d})
	return err
}

// SessionID returns the identifier under which this thread's memory
// state is persisted by Runtime.SaveState; after a node restart, a new
// connection can Resume it (§4.6's full-restart capability).
func (c *Client) SessionID() (int64, error) {
	r, err := c.call(api.GetSessionCall{})
	return r.ID, err
}

// Resume re-attaches this fresh connection to memory state persisted
// under id before a node restart. It must precede any allocation on
// this connection; virtual pointers from the previous session remain
// valid afterwards.
func (c *Client) Resume(id int64) error {
	_, err := c.call(api.ResumeCall{ID: id})
	return err
}

// Checkpoint asks the runtime to capture the thread's device state in
// host memory (§2, §4.6), so a later device failure costs no recompute.
func (c *Client) Checkpoint() error {
	_, err := c.call(api.CheckpointCall{})
	return err
}

// Migrate ships this connection's session to the node listening at
// target (DESIGN.md §13). On success the local copy is deposed — any
// further mutating call on this connection fails with ErrFenced — and
// the caller should reconnect to target and Resume under the session ID
// from Session().
func (c *Client) Migrate(target string) error {
	_, err := c.call(api.MigrateCall{Target: target})
	return err
}

// Adopt asks the connected runtime to recover every session committed
// in journal directory dir — a dead peer's durable state on shared
// storage — as resumable orphan sessions (failover promotion). Returns
// the number of sessions adopted.
func (c *Client) Adopt(dir string) (int, error) {
	r, err := c.call(api.AdoptCall{Dir: dir})
	return r.Count, err
}

// Close announces an orderly exit and tears the connection down.
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	_, _ = c.call(api.ExitCall{})
	c.closed = true
	return c.conn.Close()
}
