package frontend

import (
	"errors"
	"testing"

	"gvrt/internal/api"
	"gvrt/internal/transport"
)

// scriptedServer replies to calls in order from a script and records
// what it saw.
type scriptedServer struct {
	t       *testing.T
	sc      transport.ServerConn
	seen    []api.Call
	replies []api.Reply
	done    chan struct{}
}

func newScripted(t *testing.T, replies ...api.Reply) (*Client, *scriptedServer) {
	c, sc := transport.Pipe()
	s := &scriptedServer{t: t, sc: sc, replies: replies, done: make(chan struct{})}
	go s.run()
	return Connect(c), s
}

func (s *scriptedServer) run() {
	defer close(s.done)
	for {
		call, err := s.sc.Recv()
		if err != nil {
			return
		}
		s.seen = append(s.seen, call)
		var r api.Reply
		if len(s.replies) > 0 {
			r = s.replies[0]
			s.replies = s.replies[1:]
		}
		if err := s.sc.Reply(r); err != nil {
			return
		}
	}
}

func TestClientMapsReplies(t *testing.T) {
	c, s := newScripted(t,
		api.Reply{Ptr: 0x42},                     // Malloc
		api.Reply{},                              // MemcpyHD
		api.Reply{Data: []byte{7, 8}},            // MemcpyDH
		api.Reply{Count: 12},                     // DeviceCount
		api.Reply{},                              // Synchronize
		api.Reply{Code: api.ErrMemoryAllocation}, // Malloc again
		api.Reply{},                              // Exit
	)
	p, err := c.Malloc(100)
	if err != nil || p != 0x42 {
		t.Errorf("Malloc = %#x, %v", p, err)
	}
	if err := c.MemcpyHD(p, []byte{1}); err != nil {
		t.Errorf("MemcpyHD: %v", err)
	}
	data, err := c.MemcpyDH(p, 2)
	if err != nil || len(data) != 2 {
		t.Errorf("MemcpyDH = %v, %v", data, err)
	}
	n, err := c.DeviceCount()
	if err != nil || n != 12 {
		t.Errorf("DeviceCount = %d, %v", n, err)
	}
	if err := c.Synchronize(); err != nil {
		t.Errorf("Synchronize: %v", err)
	}
	if _, err := c.Malloc(1 << 40); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("failing Malloc err = %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	<-s.done

	wantCalls := []string{"cudaMalloc", "cudaMemcpyHtoD", "cudaMemcpyDtoH",
		"cudaGetDeviceCount", "cudaDeviceSynchronize", "cudaMalloc", "gvrtExit"}
	if len(s.seen) != len(wantCalls) {
		t.Fatalf("server saw %d calls, want %d", len(s.seen), len(wantCalls))
	}
	for i, w := range wantCalls {
		if s.seen[i].CallName() != w {
			t.Errorf("call %d = %s, want %s", i, s.seen[i].CallName(), w)
		}
	}
}

func TestClientSendsExitOnClose(t *testing.T) {
	c, s := newScripted(t, api.Reply{})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	<-s.done
	if len(s.seen) != 1 || s.seen[0].CallName() != "gvrtExit" {
		t.Errorf("server saw %v, want exactly gvrtExit", s.seen)
	}
	// Closing twice is safe and sends nothing more.
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestClientAfterClose(t *testing.T) {
	c, _ := newScripted(t, api.Reply{})
	_ = c.Close()
	if _, err := c.Malloc(1); !errors.Is(err, api.ErrConnectionClosed) {
		t.Errorf("Malloc after Close err = %v", err)
	}
	if err := c.Synchronize(); !errors.Is(err, api.ErrConnectionClosed) {
		t.Errorf("Synchronize after Close err = %v", err)
	}
}

func TestClientTornConnection(t *testing.T) {
	conn, sc := transport.Pipe()
	c := Connect(conn)
	_ = sc.Close() // server vanishes
	if _, err := c.Malloc(1); !errors.Is(err, api.ErrConnectionClosed) {
		t.Errorf("Malloc on torn conn err = %v", err)
	}
}

func TestClientSyntheticAndNestedCalls(t *testing.T) {
	c, s := newScripted(t, api.Reply{}, api.Reply{}, api.Reply{}, api.Reply{}, api.Reply{})
	if err := c.MemcpyHDSynthetic(1, 999); err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyDD(2, 3, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterNested(5, []api.DevPtr{6}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := c.SetDevice(3); err != nil {
		t.Fatal(err)
	}
	hd := s.seen[0].(api.MemcpyHDCall)
	if hd.Data != nil || hd.Size != 999 {
		t.Errorf("synthetic MemcpyHD = %+v", hd)
	}
	dd := s.seen[1].(api.MemcpyDDCall)
	if dd.Dst != 2 || dd.Src != 3 || dd.Size != 4 {
		t.Errorf("MemcpyDD = %+v", dd)
	}
	nested := s.seen[2].(api.RegisterNestedCall)
	if nested.Parent != 5 || len(nested.Members) != 1 {
		t.Errorf("RegisterNested = %+v", nested)
	}
	c.Close()
}

func TestClientLaunchPassthrough(t *testing.T) {
	c, s := newScripted(t, api.Reply{})
	call := api.LaunchCall{
		Kernel: "k", Grid: api.Dim3{X: 4}, Block: api.Dim3{X: 64},
		PtrArgs: []api.DevPtr{1, 2}, Scalars: []uint64{9}, Repeat: 3,
		ReadOnly: []bool{true, false},
	}
	if err := c.Launch(call); err != nil {
		t.Fatal(err)
	}
	got := s.seen[0].(api.LaunchCall)
	if got.Kernel != "k" || got.Repeat != 3 || len(got.PtrArgs) != 2 || !got.ReadOnly[0] {
		t.Errorf("launch mangled: %+v", got)
	}
	c.Close()
}
