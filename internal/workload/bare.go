package workload

import (
	"gvrt/internal/api"
	"gvrt/internal/cudart"
)

// BareClient runs an application directly against the simulated CUDA
// runtime — the paper's baseline. Each client is one application
// process: it attaches to the runtime (subject to the stability limit
// on concurrent processes) and owns one CUDA context on the device it
// selected, with no virtual memory, no swapping and no dynamic binding.
type BareClient struct {
	crt    *cudart.Runtime
	proc   *cudart.Process
	ctx    *cudart.Context
	device int
	closed bool
}

var _ CUDA = (*BareClient)(nil)

// NewBareClient attaches a new application process to the bare CUDA
// runtime and creates its context on the given device (applications
// pick their device with cudaSetDevice; unmodified CUDA programs
// default to device 0).
func NewBareClient(crt *cudart.Runtime, device int) (*BareClient, error) {
	proc, err := crt.AttachProcess()
	if err != nil {
		return nil, err
	}
	ctx, err := crt.CreateContext(device)
	if err != nil {
		proc.Detach()
		return nil, err
	}
	return &BareClient{crt: crt, proc: proc, ctx: ctx, device: device}, nil
}

// RegisterFatBinary implements CUDA.
func (b *BareClient) RegisterFatBinary(fb api.FatBinary) error {
	return b.ctx.RegisterFatBinary(fb)
}

// Malloc implements CUDA.
func (b *BareClient) Malloc(size uint64) (api.DevPtr, error) { return b.ctx.Malloc(size) }

// Free implements CUDA.
func (b *BareClient) Free(p api.DevPtr) error { return b.ctx.Free(p) }

// MemcpyHDSynthetic implements CUDA.
func (b *BareClient) MemcpyHDSynthetic(dst api.DevPtr, size uint64) error {
	return b.ctx.MemcpyHD(dst, nil, size)
}

// MemcpyDH implements CUDA.
func (b *BareClient) MemcpyDH(src api.DevPtr, size uint64) ([]byte, error) {
	return b.ctx.MemcpyDH(src, size)
}

// Launch implements CUDA.
func (b *BareClient) Launch(call api.LaunchCall) error { return b.ctx.Launch(call) }

// Checkpoint implements CUDA: the bare runtime has no checkpoint
// capability, so this is a no-op (applications relying on it must run
// under gvrt).
func (b *BareClient) Checkpoint() error { return nil }

// Close destroys the context and detaches the process.
func (b *BareClient) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	b.ctx.Destroy()
	b.proc.Detach()
	return nil
}
