// Package workload models the benchmark applications of the paper's
// evaluation (Table 2): each is a timed trace of CUDA calls — device
// allocations, host↔device transfers, kernel launches and CPU phases —
// with memory footprints, kernel-call counts and durations calibrated
// to §5.2 (short-running jobs take 3–5 model seconds on a Tesla C2050,
// long-running ones 30–90 s depending on the injected CPU fraction).
//
// The traces are synthetic in their *data* (transfers carry sizes, not
// bytes, so modeling multi-gigabyte footprints costs nothing) but real
// in their *structure*: the interleaving of phases is what the paper's
// runtime exploits, and it is reproduced per application.
//
// Back-to-back kernel sequences with no intervening CPU phase are
// compressed with LaunchCall.Repeat (see api): Table 2 kernel-call
// counts are preserved exactly while the number of timed simulation
// steps stays manageable.
package workload

import (
	"fmt"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// Op is one step of an application trace.
type Op interface{ op() }

// CPUPhase is host-side work of the given model duration.
type CPUPhase struct{ D time.Duration }

// MallocOp allocates logical buffer Buf.
type MallocOp struct {
	Buf  int
	Size uint64
}

// FreeOp releases logical buffer Buf.
type FreeOp struct{ Buf int }

// CopyHDOp transfers Size bytes host→device into buffer Buf
// (synthetic payload).
type CopyHDOp struct {
	Buf  int
	Size uint64
}

// CopyDHOp transfers Size bytes device→host from buffer Buf.
type CopyDHOp struct {
	Buf  int
	Size uint64
}

// KernelOp launches kernel Name Repeat times back to back, reading and
// writing the listed buffers.
type KernelOp struct {
	Name   string
	Bufs   []int
	Repeat int
	// ReadOnly optionally marks Bufs entries the kernel only reads.
	ReadOnly []bool
}

// CheckpointOp asks the runtime for an explicit checkpoint.
type CheckpointOp struct{}

func (CPUPhase) op()     {}
func (MallocOp) op()     {}
func (FreeOp) op()       {}
func (CopyHDOp) op()     {}
func (CopyDHOp) op()     {}
func (KernelOp) op()     {}
func (CheckpointOp) op() {}

// App is one benchmark application instance.
type App struct {
	// Name is the Table 2 program name (e.g. "BFS", "MM-L").
	Name string
	// Binary carries the app's kernels and their reference durations.
	Binary api.FatBinary
	// Ops is the call trace.
	Ops []Op
	// MemBytes is the application's peak device-memory footprint.
	MemBytes uint64
	// KernelCalls is the total number of kernel launches (Table 2,
	// third column).
	KernelCalls int
	// LongRunning marks the §5.2 long-running category.
	LongRunning bool
}

// Validate checks internal consistency: every buffer is allocated
// before use, kernel names exist in the binary, and the kernel-call
// count matches the trace.
func (a *App) Validate() error {
	alive := map[int]uint64{}
	calls := 0
	for i, op := range a.Ops {
		switch o := op.(type) {
		case MallocOp:
			alive[o.Buf] = o.Size
		case FreeOp:
			if _, ok := alive[o.Buf]; !ok {
				return fmt.Errorf("%s: op %d frees unallocated buffer %d", a.Name, i, o.Buf)
			}
			delete(alive, o.Buf)
		case CopyHDOp:
			if alive[o.Buf] < o.Size {
				return fmt.Errorf("%s: op %d copies %d bytes into buffer %d of %d bytes", a.Name, i, o.Size, o.Buf, alive[o.Buf])
			}
		case CopyDHOp:
			if alive[o.Buf] < o.Size {
				return fmt.Errorf("%s: op %d copies %d bytes out of buffer %d of %d bytes", a.Name, i, o.Size, o.Buf, alive[o.Buf])
			}
		case KernelOp:
			if _, err := a.Binary.FindKernel(o.Name); err != nil {
				return fmt.Errorf("%s: op %d: %w", a.Name, i, err)
			}
			for _, b := range o.Bufs {
				if _, ok := alive[b]; !ok {
					return fmt.Errorf("%s: op %d launches over unallocated buffer %d", a.Name, i, b)
				}
			}
			r := o.Repeat
			if r < 1 {
				r = 1
			}
			calls += r
		}
	}
	if calls != a.KernelCalls {
		return fmt.Errorf("%s: trace has %d kernel calls, metadata says %d", a.Name, calls, a.KernelCalls)
	}
	return nil
}

// GPUTime returns the app's total modeled kernel time on the reference
// device (useful for calibration tests and SJF estimates).
func (a *App) GPUTime() time.Duration {
	var sum time.Duration
	for _, op := range a.Ops {
		if k, ok := op.(KernelOp); ok {
			meta, err := a.Binary.FindKernel(k.Name)
			if err != nil {
				continue
			}
			r := k.Repeat
			if r < 1 {
				r = 1
			}
			sum += meta.BaseTime * time.Duration(r)
		}
	}
	return sum
}

// CPUTime returns the app's total modeled CPU-phase time.
func (a *App) CPUTime() time.Duration {
	var sum time.Duration
	for _, op := range a.Ops {
		if c, ok := op.(CPUPhase); ok {
			sum += c.D
		}
	}
	return sum
}

// CUDA is the slice of the CUDA API an application trace needs. Both
// the gvrt frontend client and the bare-runtime adapter satisfy it.
type CUDA interface {
	RegisterFatBinary(fb api.FatBinary) error
	Malloc(size uint64) (api.DevPtr, error)
	Free(p api.DevPtr) error
	MemcpyHDSynthetic(dst api.DevPtr, size uint64) error
	MemcpyDH(src api.DevPtr, size uint64) ([]byte, error)
	Launch(call api.LaunchCall) error
	Checkpoint() error
	Close() error
}

// Run drives an application trace to completion against a CUDA client.
// CPU phases elapse on the caller's goroutine (they belong to the
// application, not the runtime). It returns the first error.
func Run(clock *sim.Clock, c CUDA, app App) error {
	if err := c.RegisterFatBinary(app.Binary); err != nil {
		return fmt.Errorf("%s: register: %w", app.Name, err)
	}
	bufs := make(map[int]api.DevPtr)
	for i, op := range app.Ops {
		switch o := op.(type) {
		case CPUPhase:
			clock.Sleep(o.D)
		case MallocOp:
			p, err := c.Malloc(o.Size)
			if err != nil {
				return fmt.Errorf("%s: op %d malloc: %w", app.Name, i, err)
			}
			bufs[o.Buf] = p
		case FreeOp:
			if err := c.Free(bufs[o.Buf]); err != nil {
				return fmt.Errorf("%s: op %d free: %w", app.Name, i, err)
			}
			delete(bufs, o.Buf)
		case CopyHDOp:
			if err := c.MemcpyHDSynthetic(bufs[o.Buf], o.Size); err != nil {
				return fmt.Errorf("%s: op %d copyHD: %w", app.Name, i, err)
			}
		case CopyDHOp:
			if _, err := c.MemcpyDH(bufs[o.Buf], o.Size); err != nil {
				return fmt.Errorf("%s: op %d copyDH: %w", app.Name, i, err)
			}
		case KernelOp:
			ptrs := make([]api.DevPtr, len(o.Bufs))
			for j, b := range o.Bufs {
				ptrs[j] = bufs[b]
			}
			call := api.LaunchCall{
				Kernel:   o.Name,
				Grid:     api.Dim3{X: 256},
				Block:    api.Dim3{X: 256},
				PtrArgs:  ptrs,
				Repeat:   o.Repeat,
				ReadOnly: o.ReadOnly,
			}
			if err := c.Launch(call); err != nil {
				return fmt.Errorf("%s: op %d kernel %s: %w", app.Name, i, o.Name, err)
			}
		case CheckpointOp:
			if err := c.Checkpoint(); err != nil {
				return fmt.Errorf("%s: op %d checkpoint: %w", app.Name, i, err)
			}
		}
	}
	return nil
}
