package workload

import (
	"time"

	"gvrt/internal/api"
)

// Figure1Apps builds the two applications of the paper's Figure 1 —
// the motivating example for dynamic binding and GPU virtual memory.
//
// app₁: m, c_HD, k11, k12, k13, c_DH, f — three kernels with *no*
// explicit data transfers between them (the runtime must insert any
// transfers needed when unbinding/rebinding), separated by CPU phases.
//
// app₂: m, c_HD, k21, k22, c_DH, k23, c_DH, f — a data transfer between
// k22 and k23 is already part of the application.
//
// Each app's footprint is bufBytes; choose it so one app fits the
// device but two together do not, and the two applications can
// effectively time-share a GPU: one computes while the other runs a
// CPU phase, with the memory manager swapping their data in and out.
func Figure1Apps(bufBytes uint64) (App, App) {
	const (
		kernel = 2 * time.Second
		cpu    = 2500 * time.Millisecond
	)
	bin1 := api.FatBinary{ID: "fig1/app1", Kernels: []api.KernelMeta{
		{Name: "k11", BaseTime: kernel},
		{Name: "k12", BaseTime: kernel},
		{Name: "k13", BaseTime: kernel},
	}}
	app1 := App{Name: "fig1-app1", Binary: bin1, MemBytes: bufBytes, KernelCalls: 3, LongRunning: true}
	app1.Ops = []Op{
		MallocOp{0, bufBytes},
		CopyHDOp{0, bufBytes},
		CPUPhase{cpu / 2},
		KernelOp{Name: "k11", Bufs: []int{0}},
		CPUPhase{cpu},
		KernelOp{Name: "k12", Bufs: []int{0}},
		CPUPhase{cpu},
		KernelOp{Name: "k13", Bufs: []int{0}},
		CopyDHOp{0, bufBytes},
		FreeOp{0},
	}

	bin2 := api.FatBinary{ID: "fig1/app2", Kernels: []api.KernelMeta{
		{Name: "k21", BaseTime: kernel},
		{Name: "k22", BaseTime: kernel},
		{Name: "k23", BaseTime: kernel},
	}}
	app2 := App{Name: "fig1-app2", Binary: bin2, MemBytes: bufBytes, KernelCalls: 3, LongRunning: true}
	app2.Ops = []Op{
		MallocOp{0, bufBytes},
		CopyHDOp{0, bufBytes},
		CPUPhase{cpu},
		KernelOp{Name: "k21", Bufs: []int{0}},
		CPUPhase{cpu},
		KernelOp{Name: "k22", Bufs: []int{0}},
		CopyDHOp{0, bufBytes}, // the explicit transfer between k22 and k23
		CPUPhase{cpu},
		KernelOp{Name: "k23", Bufs: []int{0}},
		CopyDHOp{0, bufBytes},
		FreeOp{0},
	}
	return app1, app2
}
