package workload

import (
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// This file defines the Table 2 benchmark programs. Kernel durations,
// CPU phases and memory footprints are calibrated (DESIGN.md §5) so
// that on the reference Tesla C2050:
//
//   - each short-running program takes 3–5 model seconds standalone,
//     with roughly 60–70% of that in kernels (the programs are
//     GPU-intensive but alternate CPU phases, which is what sharing
//     exploits);
//   - long-running programs take 30–90 s depending on the injected CPU
//     fraction (§5.3.3);
//   - kernel-call counts match Table 2's third column exactly;
//   - MM-L's footprint (1.2 GB) creates memory conflicts as soon as
//     three jobs land on one 3 GB GPU (§5.3.3), while all short
//     programs stay well below device capacity.

const mib = 1 << 20

// kernel builds a one-kernel fat binary plus metadata.
func binary(app string, kernels ...api.KernelMeta) api.FatBinary {
	return api.FatBinary{ID: "tbl2/" + app, Kernels: kernels}
}

// BP is Back Propagation: training of 20 neural networks with 64K
// nodes per input layer; 40 kernel calls.
func BP() App {
	bin := binary("BP", api.KernelMeta{Name: "bp_layer", BaseTime: 55 * time.Millisecond})
	app := App{Name: "BP", Binary: bin, MemBytes: 50 * mib, KernelCalls: 40}
	app.Ops = append(app.Ops,
		MallocOp{0, 16 * mib}, MallocOp{1, 32 * mib}, MallocOp{2, 2 * mib},
		CopyHDOp{0, 16 * mib}, CopyHDOp{1, 32 * mib},
	)
	for net := 0; net < 20; net++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "bp_layer", Bufs: []int{0, 1, 2}, Repeat: 2, ReadOnly: []bool{true, false, false}},
			CPUPhase{35 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops, CopyDHOp{1, 32 * mib}, FreeOp{0}, FreeOp{1}, FreeOp{2})
	return app
}

// BFS is Breadth-First Search: traversal of a graph with 1M nodes;
// 24 kernel calls (one per frontier level, in bursts).
func BFS() App {
	bin := binary("BFS", api.KernelMeta{Name: "bfs_level", BaseTime: 90 * time.Millisecond})
	app := App{Name: "BFS", Binary: bin, MemBytes: 24 * mib, KernelCalls: 24}
	app.Ops = append(app.Ops,
		MallocOp{0, 16 * mib}, MallocOp{1, 4 * mib}, MallocOp{2, 4 * mib},
		CopyHDOp{0, 16 * mib}, CopyHDOp{1, 4 * mib},
	)
	for burst := 0; burst < 6; burst++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "bfs_level", Bufs: []int{0, 1, 2}, Repeat: 4, ReadOnly: []bool{true, false, false}},
			CPUPhase{100 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops, CopyDHOp{2, 4 * mib}, FreeOp{0}, FreeOp{1}, FreeOp{2})
	return app
}

// HS is HotSpot: thermal simulation of 1M grid cells; a single long
// kernel call.
func HS() App {
	bin := binary("HS", api.KernelMeta{Name: "hotspot", BaseTime: 2600 * time.Millisecond})
	return App{
		Name: "HS", Binary: bin, MemBytes: 16 * mib, KernelCalls: 1,
		Ops: []Op{
			MallocOp{0, 8 * mib}, MallocOp{1, 8 * mib},
			CopyHDOp{0, 8 * mib}, CopyHDOp{1, 8 * mib},
			CPUPhase{300 * time.Millisecond},
			KernelOp{Name: "hotspot", Bufs: []int{0, 1}, ReadOnly: []bool{true, false}},
			CPUPhase{300 * time.Millisecond},
			CopyDHOp{1, 8 * mib},
			FreeOp{0}, FreeOp{1},
		},
	}
}

// NW is Needleman-Wunsch: DNA sequence alignment of 2K potential pairs;
// 256 kernel calls in 8 anti-diagonal sweeps.
func NW() App {
	bin := binary("NW", api.KernelMeta{Name: "nw_diag", BaseTime: 8500 * time.Microsecond})
	app := App{Name: "NW", Binary: bin, MemBytes: 33 * mib, KernelCalls: 256}
	app.Ops = append(app.Ops,
		MallocOp{0, 16 * mib}, MallocOp{1, 16 * mib}, MallocOp{2, mib},
		CopyHDOp{0, 16 * mib}, CopyHDOp{1, 16 * mib},
	)
	for sweep := 0; sweep < 8; sweep++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "nw_diag", Bufs: []int{0, 1, 2}, Repeat: 32},
			CPUPhase{80 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops, CopyDHOp{2, mib}, FreeOp{0}, FreeOp{1}, FreeOp{2})
	return app
}

// SP is Scalar Product of 512 vector pairs of 1M elements; one kernel.
func SP() App {
	bin := binary("SP", api.KernelMeta{Name: "sdot", BaseTime: 2 * time.Second})
	return App{
		Name: "SP", Binary: bin, MemBytes: 512*mib + 4096, KernelCalls: 1,
		Ops: []Op{
			MallocOp{0, 256 * mib}, MallocOp{1, 256 * mib}, MallocOp{2, 4096},
			CopyHDOp{0, 256 * mib}, CopyHDOp{1, 256 * mib},
			CPUPhase{350 * time.Millisecond},
			KernelOp{Name: "sdot", Bufs: []int{0, 1, 2}, ReadOnly: []bool{true, true, false}},
			CPUPhase{350 * time.Millisecond},
			CopyDHOp{2, 4096},
			FreeOp{0}, FreeOp{1}, FreeOp{2},
		},
	}
}

// MT is Matrix Transpose of a 384x384 matrix, repeated; 816 kernel
// calls in 8 bursts.
func MT() App {
	bin := binary("MT", api.KernelMeta{Name: "transpose", BaseTime: 2700 * time.Microsecond})
	app := App{Name: "MT", Binary: bin, MemBytes: 2 * mib, KernelCalls: 816}
	app.Ops = append(app.Ops,
		MallocOp{0, mib}, MallocOp{1, mib},
		CopyHDOp{0, mib},
	)
	for burst := 0; burst < 8; burst++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "transpose", Bufs: []int{0, 1}, Repeat: 102, ReadOnly: []bool{true, false}},
			CPUPhase{80 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops, CopyDHOp{1, mib}, FreeOp{0}, FreeOp{1})
	return app
}

// PR is Parallel Reduction of 4M elements; 801 kernel calls.
func PR() App {
	bin := binary("PR",
		api.KernelMeta{Name: "reduce", BaseTime: 2700 * time.Microsecond},
		api.KernelMeta{Name: "reduce_final", BaseTime: 4 * time.Millisecond},
	)
	app := App{Name: "PR", Binary: bin, MemBytes: 17 * mib, KernelCalls: 801}
	app.Ops = append(app.Ops,
		MallocOp{0, 16 * mib}, MallocOp{1, mib},
		CopyHDOp{0, 16 * mib},
	)
	for burst := 0; burst < 8; burst++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "reduce", Bufs: []int{0, 1}, Repeat: 100, ReadOnly: []bool{true, false}},
			CPUPhase{80 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops,
		KernelOp{Name: "reduce_final", Bufs: []int{1}},
		CopyDHOp{1, 4096},
		FreeOp{0}, FreeOp{1},
	)
	return app
}

// SC is Scan (parallel prefix sum) of 260K elements; 3,300 kernel
// calls in 10 bursts.
func SC() App {
	bin := binary("SC", api.KernelMeta{Name: "scan", BaseTime: 700 * time.Microsecond})
	app := App{Name: "SC", Binary: bin, MemBytes: 2 * mib, KernelCalls: 3300}
	app.Ops = append(app.Ops,
		MallocOp{0, mib}, MallocOp{1, mib},
		CopyHDOp{0, mib},
	)
	for burst := 0; burst < 10; burst++ {
		app.Ops = append(app.Ops,
			KernelOp{Name: "scan", Bufs: []int{0, 1}, Repeat: 330},
			CPUPhase{60 * time.Millisecond},
		)
	}
	app.Ops = append(app.Ops, CopyDHOp{1, mib}, FreeOp{0}, FreeOp{1})
	return app
}

// blackScholes builds the Black-Scholes option-pricing trace shared by
// BS-S (4M options) and BS-L (40M options): 256 kernel calls over five
// buffers (three inputs, two outputs).
func blackScholes(name string, optionBytes uint64, kernelTime time.Duration, cpu time.Duration, long bool) App {
	bin := binary(name, api.KernelMeta{Name: "black_scholes", BaseTime: kernelTime})
	app := App{
		Name: name, Binary: bin,
		MemBytes: 5 * optionBytes, KernelCalls: 256, LongRunning: long,
	}
	app.Ops = append(app.Ops,
		MallocOp{0, optionBytes}, MallocOp{1, optionBytes}, MallocOp{2, optionBytes},
		MallocOp{3, optionBytes}, MallocOp{4, optionBytes},
		CopyHDOp{0, optionBytes}, CopyHDOp{1, optionBytes}, CopyHDOp{2, optionBytes},
	)
	for burst := 0; burst < 8; burst++ {
		app.Ops = append(app.Ops,
			KernelOp{
				Name: "black_scholes", Bufs: []int{0, 1, 2, 3, 4}, Repeat: 32,
				ReadOnly: []bool{true, true, true, false, false},
			},
			CPUPhase{cpu},
		)
	}
	app.Ops = append(app.Ops,
		CopyDHOp{3, optionBytes}, CopyDHOp{4, optionBytes},
		FreeOp{0}, FreeOp{1}, FreeOp{2}, FreeOp{3}, FreeOp{4},
	)
	return app
}

// BSS is Black Scholes - small: processing of 4M financial options;
// 256 kernel calls.
func BSS() App {
	return blackScholes("BS-S", 16*mib, 8500*time.Microsecond, 80*time.Millisecond, false)
}

// BSL is Black Scholes - large: processing of 40M financial options;
// 256 kernel calls, long-running and GPU-intensive with very short CPU
// phases (§5.3.3).
func BSL() App {
	return blackScholes("BS-L", 160*mib, 130*time.Millisecond, 50*time.Millisecond, true)
}

// VA is Vector Addition of 100M elements; a single kernel over three
// large buffers.
func VA() App {
	bin := binary("VA", api.KernelMeta{Name: "vecadd", BaseTime: 1900 * time.Millisecond})
	const buf = 133 * mib
	return App{
		Name: "VA", Binary: bin, MemBytes: 3 * buf, KernelCalls: 1,
		Ops: []Op{
			MallocOp{0, buf}, MallocOp{1, buf}, MallocOp{2, buf},
			CopyHDOp{0, buf}, CopyHDOp{1, buf},
			CPUPhase{300 * time.Millisecond},
			KernelOp{Name: "vecadd", Bufs: []int{0, 1, 2}, ReadOnly: []bool{true, true, false}},
			CPUPhase{300 * time.Millisecond},
			CopyDHOp{2, buf},
			FreeOp{0}, FreeOp{1}, FreeOp{2},
		},
	}
}

// MMS is Small Matrix Multiplication: 200 multiplications of 2Kx2K
// matrices with injected CPU phases of cpuFraction times the kernel
// time (§5.3.4). Footprint 48 MB.
func MMS(cpuFraction float64) App {
	const kernel = 150 * time.Millisecond
	bin := binary("MM-S", api.KernelMeta{Name: "matmul_s", BaseTime: kernel})
	app := App{
		Name: "MM-S", Binary: bin,
		MemBytes: 48 * mib, KernelCalls: 200, LongRunning: true,
	}
	app.Ops = append(app.Ops,
		MallocOp{0, 16 * mib}, MallocOp{1, 16 * mib}, MallocOp{2, 16 * mib},
		CopyHDOp{1, 16 * mib},
	)
	cpu := time.Duration(cpuFraction * float64(kernel))
	for i := 0; i < 200; i++ {
		app.Ops = append(app.Ops, CopyHDOp{0, 16 * mib},
			KernelOp{Name: "matmul_s", Bufs: []int{0, 1, 2}, ReadOnly: []bool{true, true, false}})
		if cpu > 0 {
			app.Ops = append(app.Ops, CopyDHOp{2, 16 * mib}, CPUPhase{cpu})
		}
	}
	app.Ops = append(app.Ops, CopyDHOp{2, 16 * mib}, FreeOp{0}, FreeOp{1}, FreeOp{2})
	return app
}

// MML is Large Matrix Multiplication: 10 multiplications of 10Kx10K
// matrices (400 MB each, 1.2 GB footprint) with injected CPU phases of
// cpuFraction times the kernel time (§5.3.3). Its data size creates
// conflicting memory requirements as soon as three jobs share a 3 GB
// GPU.
func MML(cpuFraction float64) App {
	const kernel = 3 * time.Second
	const matrix = 400 * mib
	bin := binary("MM-L", api.KernelMeta{Name: "matmul_l", BaseTime: kernel})
	app := App{
		Name: "MM-L", Binary: bin,
		MemBytes: 3 * matrix, KernelCalls: 10, LongRunning: true,
	}
	app.Ops = append(app.Ops,
		MallocOp{0, matrix}, MallocOp{1, matrix}, MallocOp{2, matrix},
	)
	cpu := time.Duration(cpuFraction * float64(kernel))
	for i := 0; i < 10; i++ {
		app.Ops = append(app.Ops,
			CopyHDOp{0, matrix}, CopyHDOp{1, matrix},
			KernelOp{Name: "matmul_l", Bufs: []int{0, 1, 2}, ReadOnly: []bool{true, true, false}},
			CopyDHOp{2, matrix},
		)
		if cpu > 0 {
			app.Ops = append(app.Ops, CPUPhase{cpu})
		}
	}
	app.Ops = append(app.Ops, FreeOp{0}, FreeOp{1}, FreeOp{2})
	return app
}

// ShortApps returns constructors for the ten short-running programs of
// Table 2, in table order.
func ShortApps() []func() App {
	return []func() App{BP, BFS, HS, NW, SP, MT, PR, SC, BSS, VA}
}

// RandomShortBatch draws n jobs uniformly from the short-running pool
// (§5.3.1's methodology); the same seed reproduces the same draw so a
// batch can be replayed on every runtime configuration.
func RandomShortBatch(rng *sim.RNG, n int) []App {
	pool := ShortApps()
	batch := make([]App, n)
	for i := range batch {
		batch[i] = pool[rng.Intn(len(pool))]()
	}
	return batch
}

// MixedBatch builds n jobs of which bslPercent% are BS-L and the rest
// MM-L with the given CPU fraction (the Figure 8 workload mix).
func MixedBatch(n, bslPercent int, mmlCPUFraction float64) []App {
	batch := make([]App, n)
	nBSL := n * bslPercent / 100
	for i := range batch {
		if i < nBSL {
			batch[i] = BSL()
		} else {
			batch[i] = MML(mmlCPUFraction)
		}
	}
	return batch
}

// AllApps returns one instance of every Table 2 program (CPU fraction 1
// for the matrix multiplications), for table generation and tests.
func AllApps() []App {
	apps := make([]App, 0, 13)
	for _, f := range ShortApps() {
		apps = append(apps, f())
	}
	apps = append(apps, MMS(1), MML(1), BSL())
	return apps
}
