package workload

import (
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/cudart"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
)

func testRuntime(nDevices int) *cudart.Runtime {
	clock := sim.NewClock(1e-7)
	devs := make([]*gpu.Device, nDevices)
	for i := range devs {
		devs[i] = gpu.NewDevice(i, gpu.TeslaC2050, clock)
	}
	return cudart.New(clock, devs...)
}

// TestTable2KernelCounts verifies every program's trace reproduces the
// kernel-call count from Table 2 of the paper.
func TestTable2KernelCounts(t *testing.T) {
	want := map[string]int{
		"BP": 40, "BFS": 24, "HS": 1, "NW": 256, "SP": 1,
		"MT": 816, "PR": 801, "SC": 3300, "BS-S": 256, "VA": 1,
		"MM-S": 200, "MM-L": 10, "BS-L": 256,
	}
	for _, app := range AllApps() {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if got := app.KernelCalls; got != want[app.Name] {
			t.Errorf("%s: KernelCalls = %d, want %d (Table 2)", app.Name, got, want[app.Name])
		}
	}
}

// TestShortAppDurations checks the §5.2 calibration: short programs
// take 3–5 model seconds standalone on a Tesla C2050 (kernels + CPU
// phases + transfers).
func TestShortAppDurations(t *testing.T) {
	for _, mk := range ShortApps() {
		app := mk()
		if app.LongRunning {
			t.Errorf("%s marked long-running", app.Name)
		}
		xfer := transferTime(app)
		total := app.GPUTime() + app.CPUTime() + xfer
		if total < 2500*time.Millisecond || total > 5500*time.Millisecond {
			t.Errorf("%s: standalone estimate %v outside the 3-5s band (gpu=%v cpu=%v xfer=%v)",
				app.Name, total, app.GPUTime(), app.CPUTime(), xfer)
		}
	}
}

// TestLongAppDurations checks long-running programs land in the
// 30–90 s band across the evaluated CPU fractions.
func TestLongAppDurations(t *testing.T) {
	cases := []struct {
		name string
		app  App
	}{
		{"MM-S frac 0", MMS(0)},
		{"MM-S frac 1", MMS(1)},
		{"MM-L frac 0", MML(0)},
		{"MM-L frac 1", MML(1)},
		{"MM-L frac 2", MML(2)},
		{"BS-L", BSL()},
	}
	for _, c := range cases {
		if !c.app.LongRunning {
			t.Errorf("%s not marked long-running", c.name)
		}
		total := c.app.GPUTime() + c.app.CPUTime() + transferTime(c.app)
		if total < 28*time.Second || total > 100*time.Second {
			t.Errorf("%s: standalone estimate %v outside the 30-90s band", c.name, total)
		}
	}
}

// transferTime estimates the app's total copy time at the C2050's
// modeled bandwidth.
func transferTime(app App) time.Duration {
	var bytes uint64
	for _, op := range app.Ops {
		switch o := op.(type) {
		case CopyHDOp:
			bytes += o.Size
		case CopyDHOp:
			bytes += o.Size
		}
	}
	return time.Duration(float64(bytes) / float64(gpu.TeslaC2050.BandwidthBps) * float64(time.Second))
}

// TestMMLFootprintCreatesConflicts verifies the §5.3.3 data-set sizing:
// two MM-L jobs fit a 3 GB C2050 (minus 4 vGPU reservations), three do
// not.
func TestMMLFootprintCreatesConflicts(t *testing.T) {
	avail := gpu.TeslaC2050.MemBytes - 4*uint64(cudart.DefaultContextReservation)
	f := MML(1).MemBytes
	if 2*f > avail {
		t.Errorf("two MM-L jobs (%d) do not fit available memory (%d)", 2*f, avail)
	}
	if 3*f <= avail {
		t.Errorf("three MM-L jobs (%d) fit available memory (%d); conflicts never arise", 3*f, avail)
	}
	if BSL().MemBytes >= f {
		t.Error("BS-L footprint should be below MM-L's (§5.3.3)")
	}
}

// TestShortAppsFitComfortably: §5.2 says short-running applications
// "have memory requirements well below the capacity of the GPUs".
func TestShortAppsFitComfortably(t *testing.T) {
	for _, mk := range ShortApps() {
		app := mk()
		if app.MemBytes > gpu.TeslaC2050.MemBytes/4 {
			t.Errorf("%s: footprint %d exceeds a quarter of device memory", app.Name, app.MemBytes)
		}
	}
}

func TestRandomShortBatchDeterministic(t *testing.T) {
	a := RandomShortBatch(sim.NewRNG(99), 20)
	b := RandomShortBatch(sim.NewRNG(99), 20)
	if len(a) != 20 || len(b) != 20 {
		t.Fatal("wrong batch size")
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("draw %d differs: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
	names := map[string]bool{}
	for _, app := range RandomShortBatch(sim.NewRNG(1), 100) {
		names[app.Name] = true
	}
	if len(names) < 5 {
		t.Errorf("100 draws hit only %d distinct programs", len(names))
	}
}

func TestMixedBatchComposition(t *testing.T) {
	batch := MixedBatch(36, 25, 1)
	nBSL := 0
	for _, app := range batch {
		if app.Name == "BS-L" {
			nBSL++
		}
	}
	if nBSL != 9 {
		t.Errorf("25%% of 36 = %d BS-L jobs, want 9", nBSL)
	}
	if len(batch) != 36 {
		t.Errorf("batch size = %d", len(batch))
	}
}

func TestRunAgainstBareRuntime(t *testing.T) {
	crt := testRuntime(1)
	c, err := NewBareClient(crt, 0)
	if err != nil {
		t.Fatal(err)
	}
	app := BFS()
	if err := Run(crt.Clock(), c, app); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything released.
	if got := crt.Device(0).Available(); got != crt.Device(0).Capacity() {
		t.Errorf("device leak after bare run: %d != %d", got, crt.Device(0).Capacity())
	}
	st := crt.Device(0).Stats()
	if st.Launches != int64(app.KernelCalls) {
		t.Errorf("device saw %d launches, want %d", st.Launches, app.KernelCalls)
	}
}

func TestBareClientProcessLimit(t *testing.T) {
	crt := testRuntime(1)
	var clients []*BareClient
	for i := 0; i < cudart.DefaultMaxProcesses; i++ {
		c, err := NewBareClient(crt, 0)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if _, err := NewBareClient(crt, 0); !errors.Is(err, api.ErrRuntimeUnstable) {
		t.Errorf("9th bare client err = %v, want ErrRuntimeUnstable", err)
	}
	for _, c := range clients {
		c.Close()
	}
	if crt.AttachedProcesses() != 0 {
		t.Errorf("AttachedProcesses = %d after closing all", crt.AttachedProcesses())
	}
}

func TestRunBatchBareSerializesOnDevice(t *testing.T) {
	crt := testRuntime(1)
	apps := []App{MT(), MT()}
	res := RunBatch(crt.Clock(), apps, func(i int) (CUDA, error) {
		return NewBareClient(crt, 0)
	})
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	if res.Total <= 0 || res.Avg <= 0 || res.Max() < res.Avg {
		t.Errorf("suspicious batch result: %+v", res)
	}
	if len(res.JobTimes) != 2 {
		t.Errorf("JobTimes = %v", res.JobTimes)
	}
}

func TestBatchResultStats(t *testing.T) {
	r := BatchResult{JobTimes: []time.Duration{4, 1, 3, 2}}
	if r.Max() != 4 {
		t.Errorf("Max = %v", r.Max())
	}
	if p := r.Percentile(0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := r.Percentile(100); p != 4 {
		t.Errorf("P100 = %v", p)
	}
	r.Errors = []error{nil, errors.New("x"), nil, nil}
	if r.Failed() != 1 {
		t.Errorf("Failed = %d", r.Failed())
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	bin := binary("X", api.KernelMeta{Name: "k", BaseTime: time.Millisecond})
	bad := []App{
		{Name: "free-unalloc", Binary: bin, Ops: []Op{FreeOp{0}}},
		{Name: "copy-oversize", Binary: bin, Ops: []Op{MallocOp{0, 4}, CopyHDOp{0, 8}}},
		{Name: "kernel-unalloc", Binary: bin, KernelCalls: 1, Ops: []Op{KernelOp{Name: "k", Bufs: []int{3}}}},
		{Name: "kernel-unknown", Binary: bin, KernelCalls: 1, Ops: []Op{MallocOp{0, 4}, KernelOp{Name: "zz", Bufs: []int{0}}}},
		{Name: "count-mismatch", Binary: bin, KernelCalls: 5, Ops: []Op{MallocOp{0, 4}, KernelOp{Name: "k", Bufs: []int{0}}}},
	}
	for _, app := range bad {
		if err := app.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", app.Name)
		}
	}
}

// TestRandomBatchesAlwaysValidate property-checks the generator: every
// generated application passes trace validation for any seed and size.
func TestRandomBatchesAlwaysValidate(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		for _, app := range RandomShortBatch(sim.NewRNG(seed), 8) {
			if err := app.Validate(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
	for _, pct := range []int{0, 25, 50, 75, 100} {
		for _, app := range MixedBatch(10, pct, 1.5) {
			if err := app.Validate(); err != nil {
				t.Fatalf("mix %d%%: %v", pct, err)
			}
		}
	}
}

// TestFigure1AppsShape validates the motivating-example traces.
func TestFigure1AppsShape(t *testing.T) {
	a, b := Figure1Apps(1 << 20)
	for _, app := range []App{a, b} {
		if err := app.Validate(); err != nil {
			t.Fatal(err)
		}
		if app.KernelCalls != 3 {
			t.Errorf("%s kernel calls = %d, want 3", app.Name, app.KernelCalls)
		}
		if app.MemBytes != 1<<20 {
			t.Errorf("%s footprint = %d", app.Name, app.MemBytes)
		}
	}
	// app2 carries an explicit mid-stream device→host transfer; app1
	// does not (the runtime must insert any transfers it needs).
	countMidDH := func(app App) int {
		n := 0
		for i, op := range app.Ops {
			if _, ok := op.(CopyDHOp); ok && i < len(app.Ops)-3 {
				n++
			}
		}
		return n
	}
	if countMidDH(a) != 0 {
		t.Error("app1 should have no explicit mid-stream copyDH")
	}
	if countMidDH(b) != 1 {
		t.Error("app2 should have exactly one mid-stream copyDH")
	}
}
