package workload

import (
	"sort"
	"sync"
	"time"

	"gvrt/internal/sim"
)

// BatchResult aggregates one concurrent batch run: the paper's primary
// metric is Total (the time elapsed between the first job starting and
// the last finishing, §5), with Avg reported for the cluster
// experiments (Figures 10 and 11).
type BatchResult struct {
	// Total is the batch makespan in model time.
	Total time.Duration
	// Avg is the mean per-job completion time.
	Avg time.Duration
	// JobTimes holds each job's completion time, in submission order.
	JobTimes []time.Duration
	// Errors holds each job's error (nil on success), in submission
	// order.
	Errors []error
}

// Failed reports how many jobs errored.
func (r BatchResult) Failed() int {
	n := 0
	for _, err := range r.Errors {
		if err != nil {
			n++
		}
	}
	return n
}

// Max returns the slowest job's completion time.
func (r BatchResult) Max() time.Duration {
	var m time.Duration
	for _, d := range r.JobTimes {
		if d > m {
			m = d
		}
	}
	return m
}

// Percentile returns the p-th percentile job time (p in [0,100]).
func (r BatchResult) Percentile(p float64) time.Duration {
	if len(r.JobTimes) == 0 {
		return 0
	}
	ts := append([]time.Duration(nil), r.JobTimes...)
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	idx := int(p / 100 * float64(len(ts)-1))
	return ts[idx]
}

// Connector opens the CUDA client a job will run against; it receives
// the job's index in the batch (cluster schedulers use it for
// round-robin node assignment, the bare baseline for device placement).
type Connector func(job int) (CUDA, error)

// RunBatch launches all jobs concurrently (the paper's batches arrive
// together) and waits for completion, measuring per-job and batch
// model times.
func RunBatch(clock *sim.Clock, apps []App, connect Connector) BatchResult {
	res := BatchResult{
		JobTimes: make([]time.Duration, len(apps)),
		Errors:   make([]error, len(apps)),
	}
	start := clock.Now()
	var wg sync.WaitGroup
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jobStart := clock.Now()
			c, err := connect(i)
			if err != nil {
				res.Errors[i] = err
				res.JobTimes[i] = clock.Now() - jobStart
				return
			}
			err = Run(clock, c, apps[i])
			if cerr := c.Close(); err == nil && cerr != nil {
				err = cerr
			}
			res.Errors[i] = err
			res.JobTimes[i] = clock.Now() - jobStart
		}(i)
	}
	wg.Wait()
	res.Total = clock.Now() - start
	var sum time.Duration
	for _, d := range res.JobTimes {
		sum += d
	}
	if len(res.JobTimes) > 0 {
		res.Avg = sum / time.Duration(len(res.JobTimes))
	}
	return res
}
