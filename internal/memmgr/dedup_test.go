package memmgr

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"gvrt/internal/api"
)

// batchFakeOps extends fakeOps with the vectored transfer methods, so
// manager-level tests exercise the same batched swap-out path the
// runtime uses against real cudart contexts.
type batchFakeOps struct {
	*fakeOps
}

func (b *batchFakeOps) MemcpyHDBatch(items []api.HDCopy) error {
	for _, it := range items {
		if err := b.MemcpyHD(it.Dst, it.Data, it.Size); err != nil {
			return err
		}
	}
	return nil
}

func (b *batchFakeOps) MemcpyDHBatch(items []api.DHCopy) ([][]byte, error) {
	out := make([][]byte, len(items))
	for i, it := range items {
		data, err := b.MemcpyDH(it.Src, it.Size)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// pagePattern fills a buffer with bytes that differ between pages and
// between the chunks of one page, so dedup matches exactly the pairs a
// test intends to match.
func pagePattern(page int, size uint64) []byte {
	data := make([]byte, size)
	for j := range data {
		data[j] = byte(j * 7)
	}
	// Stamp every chunk with its (page, chunk) coordinates: byte
	// arithmetic alone collides across pages (everything is mod 256),
	// an explicit tag cannot.
	for c := uint64(0); c*dedupChunkSize < size; c++ {
		data[c*dedupChunkSize] = byte(page)
		data[c*dedupChunkSize+1] = byte(c)
	}
	return data
}

// TestDedupSealSharing drives the sequential dedup lifecycle: a second
// identical image costs no extra host bytes, a partial write breaks the
// sharing (COW), and frees drop chunk refcounts to zero.
func TestDedupSealSharing(t *testing.T) {
	m := New(true, 0)
	const size = 2 * dedupChunkSize
	data := pagePattern(1, size)

	a := mustMalloc(t, m, 1, size)
	b := mustMalloc(t, m, 2, size)
	if err := m.CopyHD(a, 0, data, 0, nil); err != nil {
		t.Fatalf("CopyHD(a): %v", err)
	}
	if err := m.CopyHD(b, 0, data, 0, nil); err != nil {
		t.Fatalf("CopyHD(b): %v", err)
	}

	st := m.Stats()
	if st.DedupHits != 2 || st.DedupSavedBytes != size {
		t.Fatalf("after identical seals: DedupHits=%d DedupSavedBytes=%d, want 2, %d",
			st.DedupHits, st.DedupSavedBytes, size)
	}
	if got := m.DedupChunks(); got != 2 {
		t.Fatalf("DedupChunks = %d, want 2", got)
	}
	if st.HostBytesInUse != size {
		t.Fatalf("HostBytesInUse = %d, want %d (second image deduped)", st.HostBytesInUse, size)
	}

	// Reads through the sealed image see the original bytes.
	out, err := m.CopyDH(b, 0, size, nil)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("CopyDH(b) = err %v, content match %v", err, bytes.Equal(out, data))
	}

	// A partial write to b privatises its image; a keeps the chunks.
	patch := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := m.CopyHD(b, 10, patch, 0, nil); err != nil {
		t.Fatalf("partial CopyHD(b): %v", err)
	}
	st = m.Stats()
	if st.CowBreaks != 1 || st.DedupSavedBytes != 0 {
		t.Fatalf("after COW break: CowBreaks=%d DedupSavedBytes=%d, want 1, 0",
			st.CowBreaks, st.DedupSavedBytes)
	}
	if st.HostBytesInUse != 2*size {
		t.Fatalf("HostBytesInUse = %d, want %d (sharing broken)", st.HostBytesInUse, 2*size)
	}
	want := append([]byte(nil), data...)
	copy(want[10:], patch)
	out, err = m.CopyDH(b, 0, size, nil)
	if err != nil || !bytes.Equal(out, want) {
		t.Fatalf("CopyDH(b) after COW = err %v, content match %v", err, bytes.Equal(out, want))
	}
	// a is untouched by b's write.
	out, err = m.CopyDH(a, 0, size, nil)
	if err != nil || !bytes.Equal(out, data) {
		t.Fatalf("CopyDH(a) after COW on b = err %v, content match %v", err, bytes.Equal(out, data))
	}

	if err := m.Free(a, nil); err != nil {
		t.Fatalf("Free(a): %v", err)
	}
	if got := m.DedupChunks(); got != 0 {
		t.Fatalf("DedupChunks after freeing last sealed holder = %d, want 0", got)
	}
	if err := m.Free(b, nil); err != nil {
		t.Fatalf("Free(b): %v", err)
	}
	st = m.Stats()
	if st.HostBytesInUse != 0 || st.DedupSavedBytes != 0 {
		t.Fatalf("after frees: HostBytesInUse=%d DedupSavedBytes=%d, want 0, 0",
			st.HostBytesInUse, st.DedupSavedBytes)
	}
}

// TestDedupConcurrentSwapOutAll swaps out two contexts whose pages hold
// identical content concurrently (run under -race): the refcounted
// store must end with exactly one interned copy per distinct chunk, one
// context's worth of saved bytes, and clean teardown accounting.
func TestDedupConcurrentSwapOutAll(t *testing.T) {
	m := New(true, 0)
	const (
		pageSize = 2 * dedupChunkSize
		pages    = 8
	)
	ops := [2]*batchFakeOps{
		{newFakeOps(1 << 30)},
		{newFakeOps(1 << 30)},
	}
	ptes := [2][]*PTE{}
	for c := 0; c < 2; c++ {
		for i := 0; i < pages; i++ {
			pte := mustMalloc(t, m, int64(c+1), pageSize)
			if err := m.MakeResident(pte, ops[c]); err != nil {
				t.Fatalf("MakeResident ctx%d page%d: %v", c+1, i, err)
			}
			ops[c].poke(pte.Device, pagePattern(i, pageSize))
			ptes[c] = append(ptes[c], pte)
		}
		m.MarkKernelEffects(ptes[c], nil)
	}

	var wg sync.WaitGroup
	errs := [2]error{}
	ns := [2]int{}
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ns[c], errs[c] = m.SwapOutAll(int64(c+1), ops[c])
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil || ns[c] != pages {
			t.Fatalf("SwapOutAll ctx%d = %d entries, err %v; want %d, nil", c+1, ns[c], err, pages)
		}
	}

	if got := m.DedupChunks(); got != 2*pages {
		t.Fatalf("DedupChunks = %d, want %d (one interned copy per distinct chunk)", got, 2*pages)
	}
	st := m.Stats()
	if st.DedupSavedBytes != pages*pageSize {
		t.Fatalf("DedupSavedBytes = %d, want %d (one context's worth)", st.DedupSavedBytes, pages*pageSize)
	}
	if st.HostBytesInUse != pages*pageSize {
		t.Fatalf("HostBytesInUse = %d, want %d", st.HostBytesInUse, pages*pageSize)
	}

	// Both contexts read back their own pages intact through the shared
	// chunks.
	for c := 0; c < 2; c++ {
		for i, pte := range ptes[c] {
			out, err := m.CopyDH(pte, 0, pageSize, ops[c])
			if err != nil || !bytes.Equal(out, pagePattern(i, pageSize)) {
				t.Fatalf("ctx%d page%d readback: err %v, match %v", c+1, i, err, err == nil && bytes.Equal(out, pagePattern(i, pageSize)))
			}
		}
	}

	m.ReleaseContext(1, ops[0])
	m.ReleaseContext(2, ops[1])
	st = m.Stats()
	if got := m.DedupChunks(); got != 0 || st.DedupSavedBytes != 0 || st.HostBytesInUse != 0 {
		t.Fatalf("after release: chunks=%d saved=%d host=%d, want all 0",
			got, st.DedupSavedBytes, st.HostBytesInUse)
	}
}

// TestPullDeviceCopy pins the shared guard's semantics: reads always
// pull a device-newer copy, partial writes pull it (and fail unbound),
// full-extent writes never pull.
func TestPullDeviceCopy(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 512)
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatalf("MakeResident: %v", err)
	}
	devData := pagePattern(3, 512)
	ops.poke(pte.Device, devData)
	m.MarkKernelEffects([]*PTE{pte}, nil)

	// Read: pulls the device copy.
	out, err := m.CopyDH(pte, 0, 512, ops)
	if err != nil || !bytes.Equal(out, devData) {
		t.Fatalf("CopyDH on device-newer entry: err %v, match %v", err, bytes.Equal(out, devData))
	}
	if pte.ToCopy2Swap {
		t.Fatal("ToCopy2Swap still set after read pull")
	}

	// Partial write while unbound: must fail, the device-newer bytes
	// around the write cannot be fetched.
	m.MarkKernelEffects([]*PTE{pte}, nil)
	if err := m.CopyHD(pte, 8, []byte{1, 2, 3}, 0, nil); !errors.Is(err, api.ErrInvalidValue) {
		t.Fatalf("partial CopyHD unbound on device-newer entry = %v, want ErrInvalidValue", err)
	}

	// Full overwrite while unbound: allowed, nothing to pull.
	full := pagePattern(4, 512)
	if err := m.CopyHD(pte, 0, full, 0, nil); err != nil {
		t.Fatalf("full CopyHD unbound on device-newer entry: %v", err)
	}
	if out, _ := m.CopyDH(pte, 0, 512, nil); !bytes.Equal(out, full) {
		t.Fatal("full overwrite content lost")
	}

	// Partial write while bound: pulls the device copy, then overlays.
	dev2 := pagePattern(5, 512)
	ops.poke(pte.Device, dev2)
	m.MarkKernelEffects([]*PTE{pte}, nil)
	patch := []byte{9, 9, 9}
	if err := m.CopyHD(pte, 100, patch, 0, ops); err != nil {
		t.Fatalf("partial CopyHD bound: %v", err)
	}
	want := append([]byte(nil), dev2...)
	copy(want[100:], patch)
	if out, _ := m.CopyDH(pte, 0, 512, ops); !bytes.Equal(out, want) {
		t.Fatal("partial write did not overlay the pulled device copy")
	}
}
