// Package memmgr implements the paper's central contribution: a virtual
// memory abstraction for GPUs (§4.5).
//
// Applications never see device addresses. Every allocation returns a
// virtual pointer backed by a page-table entry (PTE) holding the three
// pointers of the paper's design — virtual, swap, device — plus the
// isAllocated / toCopy2Dev / toCopy2Swap flags whose transitions follow
// Figure 4 exactly. Data lives in the host-side swap area and moves to
// the device on demand, which is what makes application→GPU binding
// dynamic: a context can be unbound (fully swapped out) at any CPU
// phase and later re-bound to any device.
//
// The manager implements the per-call actions and error returns of
// Table 1, the two swap flavours (§4.5 intra-application and
// inter-application swap are orchestrated above this package, using
// SwapOut/SwapOutAll), nested-structure registration with device-pointer
// patching, transfer deferral with bulk coalescing, and the implicit
// checkpoint capability of §4.6.
//
// Locking: the maps are guarded by the manager's mutex. PTE fields are
// mutated only while holding the owning context's service lock (the
// runtime guarantees this: a context's own dispatcher goroutine holds it
// while serving a call, and inter-application swap or migration acquire
// it via TryLock before touching a victim's entries), so flag
// transitions never race.
package memmgr

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/trace"
)

// Kind distinguishes the allocation flavours of the CUDA API (the
// page-table entry's "type" attribute in §4.5).
type Kind int

// Allocation kinds.
const (
	// KindLinear is a cudaMalloc linear allocation.
	KindLinear Kind = iota
	// KindArray is a cudaMallocArray allocation.
	KindArray
	// KindPitched is a cudaMallocPitch allocation.
	KindPitched
)

// Nested describes a registered nested data structure (§1, §4.5): the
// parent allocation embeds, at Offsets[i], the device address of
// Members[i]. The manager keeps those embedded pointers consistent:
// virtual in the swap copy, physical in the device copy.
type Nested struct {
	Members []api.DevPtr
	Offsets []uint64
}

// PTE is a page-table entry: one per allocation, created on a memory
// allocation operation (§4.5).
type PTE struct {
	// Virtual is the pointer the application sees.
	Virtual api.DevPtr
	// Device is the real device pointer while IsAllocated.
	Device api.DevPtr
	// Size is the allocation length in bytes.
	Size uint64
	// IsAllocated reports whether the entry currently has device memory.
	IsAllocated bool
	// ToCopy2Dev reports that the authoritative data is only in the
	// swap area and must move to the device before the next kernel.
	ToCopy2Dev bool
	// ToCopy2Swap reports that the authoritative data is only on the
	// device (a kernel may have written it) and must be copied back
	// before the device copy is dropped.
	ToCopy2Swap bool
	// Kind is the allocation flavour.
	Kind Kind
	// Nested is non-nil for registered nested structures.
	Nested *Nested
	// LostDirty records that device-only data was lost to a device
	// failure; the runtime clears it by replaying kernels (§4.6).
	LostDirty bool
	// Prefetched marks an entry whose residency was established
	// speculatively by the predictive prefetcher; the next launch that
	// references it consumes the mark as a prefetch hit.
	Prefetched bool

	ctxID int64
	// data is the swap-area backing. It is materialised lazily and only
	// for entries that carry real bytes; synthetic (timing-only)
	// workloads keep it nil however large Size is. A sealed entry (see
	// dedup.go) keeps data nil and carries its bytes in chunks instead.
	data []byte
	// chunks is the content-addressed form of the swap image; non-nil
	// exactly when the entry is sealed into the dedup store.
	chunks []*swapChunk
	// dedupSaved counts swap bytes this entry shares with other entries
	// (released from host occupancy while sealed).
	dedupSaved uint64
	// writesSinceResident counts deferred host writes folded into the
	// next bulk host→device transfer (the §4.5 coalescing benefit).
	writesSinceResident int
}

// CtxID returns the owning context's identifier.
func (p *PTE) CtxID() int64 { return p.ctxID }

// HasData reports whether the entry carries real bytes in swap.
func (p *PTE) HasData() bool { return p.hasSwapBytes() }

// Stats is a snapshot of the manager's counters.
type Stats struct {
	// SwapOps counts page-table entries swapped out (device→swap spill
	// plus device free), the quantity reported on top of the bars in
	// Figures 7 and 8.
	SwapOps int64
	// SwapBytes counts bytes moved device→swap by swap operations.
	SwapBytes int64
	// CoalescedWrites counts host→device transfers avoided because
	// several deferred writes to one entry were folded into a single
	// bulk transfer.
	CoalescedWrites int64
	// BadOpsRejected counts out-of-bounds or invalid-pointer operations
	// rejected before reaching the CUDA runtime (§4.5: bad memory
	// operations are detected without overloading the CUDA runtime).
	BadOpsRejected int64
	// Checkpoints counts explicit and automatic checkpoint flushes.
	Checkpoints int64
	// CheckpointBytes counts bytes flushed device→swap by checkpoints
	// (kept apart from SwapBytes, which measures only real swap-out
	// spills — the quantity the evaluation plots).
	CheckpointBytes int64
	// DedupHits counts swap chunks found already interned at seal time.
	DedupHits int64
	// DedupSavedBytes is the swap occupancy currently avoided by chunk
	// sharing (rises at seal, falls at COW break or free).
	DedupSavedBytes int64
	// CowBreaks counts sealed entries rematerialised by a mutating
	// access.
	CowBreaks int64
	// HostBytesInUse is the current swap-area occupancy (modeled).
	HostBytesInUse uint64
}

// DeviceOps is the slice of a bound virtual GPU's CUDA context that the
// manager drives: real allocation, de-allocation and transfers on the
// physical device.
type DeviceOps interface {
	Malloc(size uint64) (api.DevPtr, error)
	Free(p api.DevPtr) error
	MemcpyHD(dst api.DevPtr, data []byte, size uint64) error
	MemcpyDH(src api.DevPtr, size uint64) ([]byte, error)
}

// BatchDeviceOps is the optional batching extension of DeviceOps: a
// bound CUDA context that implements it can land several deferred
// host→device transfers in one copy-engine submission (FlushDeferred
// batches through it when available) and spill several dirty entries
// device→host in one submission (SwapOutAll batches through it).
type BatchDeviceOps interface {
	DeviceOps
	MemcpyHDBatch(items []api.HDCopy) error
	MemcpyDHBatch(items []api.DHCopy) ([][]byte, error)
}

// numShards is the stripe count of the manager's page-table state.
// Contexts hash to shards by ID, so two applications' allocation
// traffic only contends when they land on the same stripe; 64 stripes
// keep that probability low for any realistic tenant count.
const numShards = 64

// shard is one stripe of per-context state. All three maps are keyed
// by context ID and guarded by the stripe's own mutex; host-swap-area
// occupancy is global and lives in the Manager as an atomic.
type shard struct {
	mu     sync.Mutex
	tables map[int64][]*PTE
	next   map[int64]uint64
	usage  map[int64]uint64
}

// Manager is the runtime's memory manager. One instance serves all
// contexts and all devices of a node.
//
// State is sharded (DESIGN.md §11): each context's page table, cursor
// and usage live in one of numShards stripes selected by context ID,
// so the former global mutex never serialises independent tenants.
// The only cross-shard quantity — swap-area occupancy versus the host
// limit — is an atomic with a reserve/release protocol.
type Manager struct {
	// DeferTransfers selects the transfer-deferral configuration
	// (§4.5): when true (the evaluation's setting), host→device data
	// movement happens lazily at kernel launch; when false, writes go
	// through to the device immediately while it is resident, trading
	// swap overhead for computation/communication overlap.
	DeferTransfers bool

	hostLimit uint64
	hostUsed  atomic.Uint64
	shards    [numShards]shard

	// Fault-plane hooks for the swap area; nil when no plan targets it.
	// Faults fire before any state is mutated, so an injected failure
	// leaves the entry in a legal Figure 4 state.
	swapWriteHook *faultinject.Hook
	swapAllocHook *faultinject.Hook

	// obs shadows every durable-state mutation (see Observer); nil when
	// no journal is attached.
	obs Observer

	// tracer records swap/transfer spans and feeds the runtime's
	// histograms; nil records nothing. The manager has no clock of its
	// own, so the tracer carries the model-time source.
	tracer *trace.Tracer

	// dedup is the manager-global content-addressed chunk store
	// (dedup.go); its own mutex orders it after the shard locks.
	dedup dedupStore

	swapOps         atomic.Int64
	swapBytes       atomic.Int64
	coalesced       atomic.Int64
	badOps          atomic.Int64
	checkpoint      atomic.Int64
	checkpointBytes atomic.Int64
	dedupHits       atomic.Int64
	dedupSavedBytes atomic.Int64
	cowBreaks       atomic.Int64
}

// virtTag marks virtual addresses so they can never be mistaken for
// device addresses (devices live below 1<<48).
const virtTag = uint64(1) << 63

// ctxShift positions the context ID inside a virtual address, leaving
// 40 bits (1 TiB) of per-context offset space.
const ctxShift = 40

// New creates a manager whose swap area is capped at hostLimit bytes of
// modeled occupancy (0 means unlimited). The paper's node has 48 GB of
// host memory backing the swap area.
func New(deferTransfers bool, hostLimit uint64) *Manager {
	m := &Manager{
		DeferTransfers: deferTransfers,
		hostLimit:      hostLimit,
	}
	m.dedup.chunks = make(map[uint64][]*swapChunk)
	for i := range m.shards {
		s := &m.shards[i]
		s.tables = make(map[int64][]*PTE)
		s.next = make(map[int64]uint64)
		s.usage = make(map[int64]uint64)
	}
	return m
}

// shardOf selects the stripe owning a context's state.
func (m *Manager) shardOf(ctxID int64) *shard {
	return &m.shards[uint64(ctxID)%numShards]
}

// reserveHost claims n bytes of swap-area occupancy against the host
// limit, returning false (and claiming nothing) when the limit would
// be exceeded. The CAS loop makes concurrent reservations from
// different shards linearise without a global lock.
func (m *Manager) reserveHost(n uint64) bool {
	if m.hostLimit == 0 {
		m.hostUsed.Add(n)
		return true
	}
	for {
		cur := m.hostUsed.Load()
		if cur+n > m.hostLimit {
			return false
		}
		if m.hostUsed.CompareAndSwap(cur, cur+n) {
			return true
		}
	}
}

// releaseHost returns n bytes of swap-area occupancy.
func (m *Manager) releaseHost(n uint64) {
	m.hostUsed.Add(^uint64(n - 1))
}

// InstallFaults arms the manager's swap-area injection sites against
// plane. Call it before the manager starts serving; a nil plane — or a
// plan with no memmgr rules — leaves the sites nil and free.
func (m *Manager) InstallFaults(p *faultinject.Plane) {
	m.swapWriteHook = p.Hook(faultinject.PointSwapWrite, "")
	m.swapAllocHook = p.Hook(faultinject.PointSwapAlloc, "")
}

// swapWriteFault consults the swap-write hook; a non-nil return aborts
// the write before any entry state changed. The manager has no clock,
// so delay decisions are ignored here.
func (m *Manager) swapWriteFault() error {
	if h := m.swapWriteHook; h != nil {
		return h.Check().Err
	}
	return nil
}

// SetTracer installs the span/histogram tracer (mirrors SetObserver).
// Call it before the manager starts serving; nil disables tracing.
func (m *Manager) SetTracer(t *trace.Tracer) { m.tracer = t }

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	used := m.hostUsed.Load()
	return Stats{
		SwapOps:         m.swapOps.Load(),
		SwapBytes:       m.swapBytes.Load(),
		CoalescedWrites: m.coalesced.Load(),
		BadOpsRejected:  m.badOps.Load(),
		Checkpoints:     m.checkpoint.Load(),
		CheckpointBytes: m.checkpointBytes.Load(),
		DedupHits:       m.dedupHits.Load(),
		DedupSavedBytes: m.dedupSavedBytes.Load(),
		CowBreaks:       m.cowBreaks.Load(),
		HostBytesInUse:  used,
	}
}

// Malloc services an allocation call (Table 1, malloc row): it creates
// the page-table entry and reserves swap space, touching no device. The
// returned pointer is virtual.
func (m *Manager) Malloc(ctxID int64, size uint64, kind Kind) (api.DevPtr, error) {
	if size == 0 {
		m.badOps.Add(1)
		return 0, api.ErrInvalidValue
	}
	if h := m.swapAllocHook; h != nil {
		if err := h.Check().Err; err != nil {
			return 0, err
		}
	}
	if !m.reserveHost(size) {
		return 0, api.ErrSwapAllocation
	}
	s := m.shardOf(ctxID)
	s.mu.Lock()
	off := s.next[ctxID]
	// Align entries to 256 bytes like device allocations.
	s.next[ctxID] = off + (size+255)&^uint64(255)
	nextOff := s.next[ctxID]
	v := api.DevPtr(virtTag | uint64(ctxID)<<ctxShift | off)
	pte := &PTE{Virtual: v, Size: size, Kind: kind, ctxID: ctxID}
	s.tables[ctxID] = append(s.tables[ctxID], pte)
	s.usage[ctxID] += size
	s.mu.Unlock()
	if m.obs != nil {
		m.obs.EntryWritten(ctxID, pte.image(), nextOff)
	}
	return v, nil
}

// Resolve maps a virtual pointer (possibly mid-entry) to its entry and
// offset. Table 1's "check valid PTE": failures are counted as bad
// operations and reported as ErrInvalidDevicePointer without reaching
// the device.
func (m *Manager) Resolve(ptr api.DevPtr) (*PTE, uint64, error) {
	if uint64(ptr)&virtTag == 0 {
		m.badOps.Add(1)
		return nil, 0, api.ErrInvalidDevicePointer
	}
	ctxID := int64(uint64(ptr) &^ virtTag >> ctxShift)
	s := m.shardOf(ctxID)
	s.mu.Lock()
	defer s.mu.Unlock()
	// The table is sorted by Virtual (the allocation cursor only grows
	// and Free preserves order), so the owning entry is the last one
	// starting at or below ptr.
	tbl := s.tables[ctxID]
	i := sort.Search(len(tbl), func(i int) bool { return tbl[i].Virtual > ptr })
	if i > 0 {
		pte := tbl[i-1]
		if ptr < pte.Virtual+api.DevPtr(pte.Size) {
			return pte, uint64(ptr - pte.Virtual), nil
		}
	}
	m.badOps.Add(1)
	return nil, 0, api.ErrInvalidDevicePointer
}

// EntriesOf returns a snapshot of a context's page table.
func (m *Manager) EntriesOf(ctxID int64) []*PTE {
	s := m.shardOf(ctxID)
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*PTE(nil), s.tables[ctxID]...)
}

// UsageOf reports the context's total allocation footprint (the
// MemUsage map of §4.5).
func (m *Manager) UsageOf(ctxID int64) uint64 {
	s := m.shardOf(ctxID)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.usage[ctxID]
}

// ResidentBytes reports how much of the context's footprint currently
// occupies device memory.
func (m *Manager) ResidentBytes(ctxID int64) uint64 {
	s := m.shardOf(ctxID)
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum uint64
	for _, pte := range s.tables[ctxID] {
		if pte.IsAllocated {
			sum += pte.Size
		}
	}
	return sum
}

// swapData returns the entry's swap backing, materialising it when the
// entry carries real bytes.
func (p *PTE) swapData() []byte {
	if p.data == nil {
		p.data = make([]byte, p.Size)
	}
	return p.data
}

// CopyHD services a host→device transfer (Table 1, copyHD row): bounds
// are checked against the entry, the bytes land in the swap area, and —
// under deferral or while the entry is off-device — the device is not
// touched; the entry moves to the "data only on host" state of Figure 4.
// Without deferral, a resident entry is written through. ops may be nil
// when the context is unbound (then writes always defer).
func (m *Manager) CopyHD(pte *PTE, off uint64, data []byte, size uint64, ops DeviceOps) error {
	if data != nil {
		size = uint64(len(data))
	}
	if off+size > pte.Size {
		m.badOps.Add(1)
		return api.ErrSizeMismatch
	}
	if err := m.swapWriteFault(); err != nil {
		return err
	}
	if err := m.pullDeviceCopy(pte, off, size, ops, false); err != nil {
		return err
	}
	if data != nil {
		if off == 0 && size == pte.Size {
			// Full overwrite: drop any chunk sharing without
			// rematerialising the old image, then re-seal the new one.
			m.discardSeal(pte)
			copy(pte.swapData(), data)
			m.seal(pte)
		} else {
			copy(m.mutableSwap(pte)[off:], data)
		}
	}
	pte.ToCopy2Swap = false
	if !m.DeferTransfers && pte.IsAllocated && ops != nil {
		if err := ops.MemcpyHD(pte.Device+api.DevPtr(off), data, size); err != nil {
			return err
		}
		pte.ToCopy2Dev = false
		m.noteWrite(pte)
		return nil
	}
	pte.ToCopy2Dev = true
	pte.writesSinceResident++
	m.noteWrite(pte)
	return nil
}

// Memset services a cudaMemset (Table 1's copyHD row semantics with a
// constant source): the fill lands in the swap area and defers to the
// device like any host write. Real bytes are materialised only when the
// entry already carries data.
func (m *Manager) Memset(pte *PTE, off uint64, value byte, size uint64, ops DeviceOps) error {
	if off+size > pte.Size {
		m.badOps.Add(1)
		return api.ErrInvalidValue
	}
	if err := m.swapWriteFault(); err != nil {
		return err
	}
	if err := m.pullDeviceCopy(pte, off, size, ops, false); err != nil {
		return err
	}
	if pte.hasSwapBytes() || value != 0 {
		buf := m.mutableSwap(pte)
		for i := off; i < off+size; i++ {
			buf[i] = value
		}
	}
	pte.ToCopy2Swap = false
	if !m.DeferTransfers && pte.IsAllocated && ops != nil {
		data := make([]byte, size)
		for i := range data {
			data[i] = value
		}
		if err := ops.MemcpyHD(pte.Device+api.DevPtr(off), data, size); err != nil {
			return err
		}
		pte.ToCopy2Dev = false
		m.noteWrite(pte)
		return nil
	}
	pte.ToCopy2Dev = true
	pte.writesSinceResident++
	m.noteWrite(pte)
	return nil
}

// CopyDH services a device→host transfer (Table 1, copyDH row): when
// the authoritative copy is on the device it is pulled into swap first;
// the returned bytes come from the swap area (nil for synthetic
// entries). The entry ends in the "host and device in sync" state.
func (m *Manager) CopyDH(pte *PTE, off, size uint64, ops DeviceOps) ([]byte, error) {
	if off+size > pte.Size {
		m.badOps.Add(1)
		return nil, api.ErrInvalidValue
	}
	if err := m.pullDeviceCopy(pte, off, size, ops, true); err != nil {
		return nil, err
	}
	if !pte.hasSwapBytes() {
		return nil, nil
	}
	out := make([]byte, size)
	pte.readSwapRange(out, off)
	return out, nil
}

// pullDeviceCopy ensures the swap copy reflects device-newer data
// before a host-side access touches it (the former three near-identical
// guards of CopyHD/Memset/CopyDH). Reads always need the pull; a write
// needs it only when partial — a full-extent overwrite replaces the
// whole image anyway, and syncing first would clobber nothing but cost
// a transfer.
func (m *Manager) pullDeviceCopy(pte *PTE, off, size uint64, ops DeviceOps, read bool) error {
	if !pte.ToCopy2Swap {
		return nil
	}
	if !read && off == 0 && size == pte.Size {
		return nil
	}
	if ops == nil {
		return api.ErrInvalidValue
	}
	return m.syncToSwap(pte, ops)
}

// syncToSwap pulls the whole entry device→swap and clears ToCopy2Swap.
// An injected swap-write failure aborts before anything moved: the
// entry stays in the legal "device copy authoritative" state.
func (m *Manager) syncToSwap(pte *PTE, ops DeviceOps) error {
	if err := m.swapWriteFault(); err != nil {
		return err
	}
	t := m.tracer
	start := t.Start()
	data, err := ops.MemcpyDH(pte.Device, pte.Size)
	if err != nil {
		return err
	}
	if t != nil {
		elapsed := t.Start() - start
		t.Observe(t.D2H, int64(elapsed))
		if elapsed > 0 && t.Spans() {
			t.Span("d2h", pte.ctxID, start, -1, fmt.Sprintf("%d bytes", pte.Size))
		}
	}
	if data != nil {
		m.discardSeal(pte)
		copy(pte.swapData(), data)
		if pte.Nested != nil {
			m.patchPointers(pte, pte.swapData(), true)
		}
		// A device→swap sync produces a full consistent image — the
		// natural point to intern it for cross-context sharing.
		m.seal(pte)
	}
	pte.ToCopy2Swap = false
	m.noteWrite(pte)
	return nil
}

// Free services a de-allocation (Table 1, free row): swap space is
// released and, if the entry is resident, the device allocation is
// freed.
func (m *Manager) Free(pte *PTE, ops DeviceOps) error {
	if pte.IsAllocated && ops != nil {
		if err := ops.Free(pte.Device); err != nil {
			return err
		}
	}
	pte.IsAllocated = false
	pte.Device = 0
	s := m.shardOf(pte.ctxID)
	s.mu.Lock()
	removed := false
	tbl := s.tables[pte.ctxID]
	for i, e := range tbl {
		if e == pte {
			s.tables[pte.ctxID] = append(tbl[:i], tbl[i+1:]...)
			s.usage[pte.ctxID] -= pte.Size
			removed = true
			break
		}
	}
	s.mu.Unlock()
	if removed {
		// Shared chunk bytes were already released at seal time; only
		// the entry's private share of host occupancy returns here.
		m.dedupSavedBytes.Add(-int64(pte.dedupSaved))
		m.tracer.Attribute(pte.ctxID, trace.AttrDedupSaved, -int64(pte.dedupSaved))
		m.releaseHost(pte.Size - pte.dedupSaved)
		pte.dedupSaved = 0
		m.dropChunks(pte)
	}
	if !removed {
		m.badOps.Add(1)
		return api.ErrInvalidDevicePointer
	}
	if m.obs != nil {
		m.obs.EntryFreed(pte.ctxID, pte.Virtual)
	}
	return nil
}

// RegisterNested records a nested structure (§4.5 "nested" attribute):
// parent embeds the device addresses of members at the given offsets.
// Members must be entries of the same context and offsets must leave
// room for an 8-byte pointer.
func (m *Manager) RegisterNested(parent *PTE, members []api.DevPtr, offsets []uint64) error {
	if len(members) != len(offsets) {
		m.badOps.Add(1)
		return api.ErrInvalidValue
	}
	for i, off := range offsets {
		if off+8 > parent.Size {
			m.badOps.Add(1)
			return api.ErrInvalidValue
		}
		pte, _, err := m.Resolve(members[i])
		if err != nil {
			return err
		}
		if pte.ctxID != parent.ctxID {
			m.badOps.Add(1)
			return api.ErrInvalidDevicePointer
		}
	}
	parent.Nested = &Nested{
		Members: append([]api.DevPtr(nil), members...),
		Offsets: append([]uint64(nil), offsets...),
	}
	return nil
}

// patchPointers rewrites the embedded member pointers inside buf (the
// parent's swap image): toVirtual=false installs the members' current
// device addresses (device-bound image), toVirtual=true restores the
// virtual addresses (host-side image).
func (m *Manager) patchPointers(parent *PTE, buf []byte, toVirtual bool) {
	for i, member := range parent.Nested.Members {
		pte, off, err := m.Resolve(member)
		if err != nil {
			continue
		}
		addr := uint64(member)
		if !toVirtual {
			addr = uint64(pte.Device) + off
		}
		o := parent.Nested.Offsets[i]
		putU64(buf[o:], addr)
	}
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// MakeResident performs the launch-row actions of Table 1 for one
// entry: allocate device memory if needed (the caller handles
// ErrMemoryAllocation by swapping, per §4.5) and perform the deferred
// bulk host→device transfer if the swap copy is authoritative. Nested
// members are made resident first and the parent's device image gets
// their device addresses patched in.
func (m *Manager) MakeResident(pte *PTE, ops DeviceOps) error {
	return m.makeResident(pte, ops, 0)
}

func (m *Manager) makeResident(pte *PTE, ops DeviceOps, depth int) error {
	if depth > 8 {
		return api.ErrInvalidValue // nested cycle; registration bug
	}
	if pte.Nested != nil {
		for _, member := range pte.Nested.Members {
			mp, _, err := m.Resolve(member)
			if err != nil {
				return err
			}
			if err := m.makeResident(mp, ops, depth+1); err != nil {
				return err
			}
		}
	}
	if !pte.IsAllocated {
		dev, err := ops.Malloc(pte.Size)
		if err != nil {
			return err
		}
		pte.Device = dev
		pte.IsAllocated = true
		// Fresh device memory never holds the entry's data.
		if pte.ToCopy2Swap {
			pte.ToCopy2Swap = false
		}
	}
	if pte.ToCopy2Dev {
		var img []byte
		if pte.hasSwapBytes() {
			if pte.Nested != nil {
				// Install device addresses in the on-device image; the
				// swap image keeps virtual addresses.
				img = pte.swapImageCopy()
				m.patchPointers(pte, img, false)
			} else {
				// Read-only use: a sealed entry hands out a fresh copy,
				// an unsealed one its private buffer.
				img = pte.swapView()
			}
		}
		t := m.tracer
		start := t.Start()
		if err := ops.MemcpyHD(pte.Device, img, pte.Size); err != nil {
			return err
		}
		if t != nil {
			elapsed := t.Start() - start
			t.Observe(t.H2D, int64(elapsed))
			if elapsed > 0 && t.Spans() {
				t.Span("h2d", pte.ctxID, start, -1, fmt.Sprintf("%d bytes", pte.Size))
			}
		}
		if pte.writesSinceResident > 1 {
			m.coalesced.Add(int64(pte.writesSinceResident - 1))
		}
		pte.writesSinceResident = 0
		pte.ToCopy2Dev = false
	} else if pte.Nested != nil && pte.hasSwapBytes() {
		// Data already on device but member residency may have changed
		// the embedded addresses; refresh the pointer words only.
		img := pte.swapImageCopy()
		m.patchPointers(pte, img, false)
		for _, o := range pte.Nested.Offsets {
			if err := ops.MemcpyHD(pte.Device+api.DevPtr(o), img[o:o+8], 8); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnsureAllocated performs only the allocation half of MakeResident for
// one entry (nested members included) without moving any data, so a
// caller can allocate a launch's whole working set first — retrying
// per-entry allocation failures with swaps — and then flush the
// deferred transfers in one batch (FlushDeferred).
func (m *Manager) EnsureAllocated(pte *PTE, ops DeviceOps) error {
	return m.ensureAllocated(pte, ops, 0)
}

func (m *Manager) ensureAllocated(pte *PTE, ops DeviceOps, depth int) error {
	if depth > 8 {
		return api.ErrInvalidValue // nested cycle; registration bug
	}
	if pte.Nested != nil {
		for _, member := range pte.Nested.Members {
			mp, _, err := m.Resolve(member)
			if err != nil {
				return err
			}
			if err := m.ensureAllocated(mp, ops, depth+1); err != nil {
				return err
			}
		}
	}
	if !pte.IsAllocated {
		dev, err := ops.Malloc(pte.Size)
		if err != nil {
			return err
		}
		pte.Device = dev
		pte.IsAllocated = true
		// Fresh device memory never holds the entry's data.
		if pte.ToCopy2Swap {
			pte.ToCopy2Swap = false
		}
	}
	return nil
}

// FlushDeferred lands the pending host→device transfers of a launch's
// already-allocated entries. Two or more pending simple (non-nested)
// entries go to the device as one batched copy-engine submission when
// ops supports it; nested parents keep the per-entry path, whose member
// pointer patching must interleave with the transfer. The modeled
// timing and byte accounting are identical to per-entry flushes
// (gpu.CopyInBatch documents the equivalence) — batching only cuts the
// per-transfer engine round trips.
func (m *Manager) FlushDeferred(ptes []*PTE, ops DeviceOps) error {
	bops, canBatch := ops.(BatchDeviceOps)
	var batch []*PTE
	for i, pte := range ptes {
		if dupEntry(ptes, i) {
			continue
		}
		if pte.Nested != nil || !canBatch {
			if err := m.makeResident(pte, ops, 0); err != nil {
				return err
			}
			continue
		}
		if pte.ToCopy2Dev {
			batch = append(batch, pte)
		}
	}
	if len(batch) == 0 {
		return nil
	}
	if len(batch) == 1 {
		return m.makeResident(batch[0], ops, 0)
	}
	items := make([]api.HDCopy, len(batch))
	var total uint64
	for i, pte := range batch {
		var img []byte
		if pte.hasSwapBytes() {
			img = pte.swapView()
		}
		items[i] = api.HDCopy{Dst: pte.Device, Data: img, Size: pte.Size}
		total += pte.Size
	}
	t := m.tracer
	start := t.Start()
	if err := bops.MemcpyHDBatch(items); err != nil {
		// Entries keep ToCopy2Dev set: the swap copy stays authoritative,
		// a legal Figure 4 state, and the next launch retries the flush.
		return err
	}
	for _, pte := range batch {
		if pte.writesSinceResident > 1 {
			m.coalesced.Add(int64(pte.writesSinceResident - 1))
		}
		pte.writesSinceResident = 0
		pte.ToCopy2Dev = false
	}
	if t != nil {
		elapsed := t.Start() - start
		t.Observe(t.H2D, int64(elapsed))
		if elapsed > 0 && t.Spans() {
			t.Span("h2d", batch[0].ctxID, start, -1, fmt.Sprintf("%d bytes in %d batched transfers", total, len(batch)))
		}
	}
	return nil
}

// dupEntry reports whether ptes[i] already appeared earlier in the
// slice (same entry referenced by several pointer arguments).
func dupEntry(ptes []*PTE, i int) bool {
	for _, prev := range ptes[:i] {
		if prev == ptes[i] {
			return true
		}
	}
	return false
}

// MarkKernelEffects applies Figure 4's post-launch transition to the
// launch's referenced entries: absent read-only information, every
// referenced entry is assumed modified, so the device copy becomes the
// authoritative one. readOnly, when non-nil, marks entries the kernel
// only reads (the finer-grained handling §4.5 mentions), which then
// stay in sync.
func (m *Manager) MarkKernelEffects(ptes []*PTE, readOnly []bool) {
	for i, pte := range ptes {
		if readOnly != nil && i < len(readOnly) && readOnly[i] {
			continue
		}
		pte.ToCopy2Swap = true
	}
}

// SwapOut performs the swap row of Table 1 on one entry: spill the
// device-newer data to swap if needed, then free the device memory.
// After SwapOut the entry is in the "data only on host" state and can
// be made resident on any device.
func (m *Manager) SwapOut(pte *PTE, ops DeviceOps) error {
	if !pte.IsAllocated {
		return nil
	}
	t := m.tracer
	start := t.Start()
	if pte.ToCopy2Swap {
		if err := m.syncToSwap(pte, ops); err != nil {
			return err
		}
		m.swapBytes.Add(int64(pte.Size))
		t.Attribute(pte.ctxID, trace.AttrSwapBytes, int64(pte.Size))
	}
	if err := ops.Free(pte.Device); err != nil {
		return err
	}
	pte.IsAllocated = false
	pte.Device = 0
	pte.ToCopy2Dev = true
	m.swapOps.Add(1)
	t.Attribute(pte.ctxID, trace.AttrSwapOps, 1)
	if t != nil {
		elapsed := t.Start() - start
		t.Observe(t.SwapDur, int64(elapsed))
		t.Observe(t.SwapBytes, int64(pte.Size))
		if elapsed > 0 && t.Spans() {
			t.Span("swap-out", pte.ctxID, start, -1, fmt.Sprintf("%d bytes", pte.Size))
		}
	}
	return nil
}

// SwapOutAll swaps out every resident entry of a context — the
// inter-application swap action (§4.5: "all the page table entries
// belonging to the application that accepts the request will be
// swapped") and the implicit checkpoint that precedes unbinding and
// migration. It returns the number of entries swapped.
func (m *Manager) SwapOutAll(ctxID int64, ops DeviceOps) (int, error) {
	return m.SwapOutEntries(m.EntriesOf(ctxID), ops)
}

// SwapOutEntries swaps out the given entries (non-resident ones are
// skipped), spilling all dirty ones in one copy-engine submission when
// the bound context supports batching; the per-entry SwapOut pass below
// then only frees device memory and flips flags. Besides the unbind
// path, this serves batched intra-application eviction: a launch that
// must displace a whole working set submits one d2h batch instead of
// one engine round trip per victim. It returns the number of entries
// swapped.
func (m *Manager) SwapOutEntries(entries []*PTE, ops DeviceOps) (int, error) {
	if bops, ok := ops.(BatchDeviceOps); ok {
		var dirty []*PTE
		for _, pte := range entries {
			if pte.IsAllocated && pte.ToCopy2Swap {
				dirty = append(dirty, pte)
			}
		}
		if len(dirty) >= 2 {
			if err := m.syncBatchToSwap(dirty, bops); err != nil {
				return 0, err
			}
		}
	}
	n := 0
	for _, pte := range entries {
		if !pte.IsAllocated {
			continue
		}
		if err := m.SwapOut(pte, ops); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// syncBatchToSwap pulls several dirty entries device→swap as one
// copy-engine submission — the unbind fast path: an inter-application
// swap spills a whole working set at once. Timing, byte accounting and
// fault-hook consultation match the per-entry syncToSwap path exactly
// (one hook check and one SwapBytes credit per entry; the engine hold
// is the sum of the per-item modeled times); only per-transfer engine
// round trips are saved.
func (m *Manager) syncBatchToSwap(dirty []*PTE, ops BatchDeviceOps) error {
	for range dirty {
		if err := m.swapWriteFault(); err != nil {
			return err
		}
	}
	items := make([]api.DHCopy, len(dirty))
	var total uint64
	for i, pte := range dirty {
		items[i] = api.DHCopy{Src: pte.Device, Size: pte.Size}
		total += pte.Size
	}
	t := m.tracer
	start := t.Start()
	datas, err := ops.MemcpyDHBatch(items)
	if err != nil {
		// Entries keep ToCopy2Swap set: the device copy stays
		// authoritative, a legal Figure 4 state, and the caller's
		// per-entry pass (or the next unbind) retries the sync.
		return err
	}
	if t != nil {
		elapsed := t.Start() - start
		t.Observe(t.D2H, int64(elapsed))
		if elapsed > 0 && t.Spans() {
			t.Span("d2h", dirty[0].ctxID, start, -1, fmt.Sprintf("%d bytes in %d batched transfers", total, len(dirty)))
		}
	}
	for i, pte := range dirty {
		if data := datas[i]; data != nil {
			m.discardSeal(pte)
			copy(pte.swapData(), data)
			if pte.Nested != nil {
				m.patchPointers(pte, pte.swapData(), true)
			}
			m.seal(pte)
		}
		pte.ToCopy2Swap = false
		m.swapBytes.Add(int64(pte.Size))
		m.tracer.Attribute(pte.ctxID, trace.AttrSwapBytes, int64(pte.Size))
		m.noteWrite(pte)
	}
	return nil
}

// Checkpoint flushes every device-newer entry of the context to swap
// without releasing device memory (§4.6): afterwards the page table and
// swap area hold the full device state, so the context can be restarted
// on another GPU at the cost of replaying only not-yet-executed work.
func (m *Manager) Checkpoint(ctxID int64, ops DeviceOps) (int, error) {
	n := 0
	for _, pte := range m.EntriesOf(ctxID) {
		if !pte.IsAllocated || !pte.ToCopy2Swap {
			continue
		}
		if err := m.syncToSwap(pte, ops); err != nil {
			return n, err
		}
		m.checkpointBytes.Add(int64(pte.Size))
		m.tracer.Attribute(pte.ctxID, trace.AttrCheckpointBytes, int64(pte.Size))
		n++
	}
	m.checkpoint.Add(1)
	return n, nil
}

// InvalidateResidency drops every device mapping of a context without
// touching the (failed or removed) device. Entries whose authoritative
// copy was device-only are marked LostDirty; the runtime recovers them
// by replaying kernels since the last checkpoint (§4.6). It returns the
// number of entries that lost dirty data.
func (m *Manager) InvalidateResidency(ctxID int64) int {
	lost := 0
	for _, pte := range m.EntriesOf(ctxID) {
		if !pte.IsAllocated {
			continue
		}
		if pte.ToCopy2Swap {
			pte.LostDirty = true
			lost++
		}
		pte.IsAllocated = false
		pte.Device = 0
		pte.ToCopy2Swap = false
		pte.ToCopy2Dev = true
	}
	return lost
}

// ClearLost clears the LostDirty marks after a successful replay.
func (m *Manager) ClearLost(ctxID int64) {
	for _, pte := range m.EntriesOf(ctxID) {
		pte.LostDirty = false
	}
}

// ReleaseContext drops the whole page table and swap area of a context
// (application exit), freeing any device memory it still holds.
func (m *Manager) ReleaseContext(ctxID int64, ops DeviceOps) {
	entries := m.EntriesOf(ctxID)
	for _, pte := range entries {
		if pte.IsAllocated && ops != nil {
			_ = ops.Free(pte.Device)
		}
	}
	s := m.shardOf(ctxID)
	s.mu.Lock()
	released := s.usage[ctxID]
	delete(s.tables, ctxID)
	delete(s.usage, ctxID)
	delete(s.next, ctxID)
	s.mu.Unlock()
	for _, pte := range entries {
		// Shared chunk bytes were released at seal time; the bulk
		// release below must not return them a second time.
		if pte.dedupSaved > 0 {
			released -= pte.dedupSaved
			m.dedupSavedBytes.Add(-int64(pte.dedupSaved))
			m.tracer.Attribute(ctxID, trace.AttrDedupSaved, -int64(pte.dedupSaved))
			pte.dedupSaved = 0
		}
		m.dropChunks(pte)
	}
	m.releaseHost(released)
	if m.obs != nil {
		m.obs.ContextReleased(ctxID)
	}
}
