package memmgr

import (
	"bytes"
	"hash/crc32"
	"sync"

	"gvrt/internal/trace"
)

// This file implements content-addressed swap deduplication with
// copy-on-write sharing (DESIGN.md §12). Swap images are split into
// fixed chunks, hashed, and interned in a manager-global refcounted
// store, so tenants holding identical data (same model weights, same
// dataset shards) keep one host copy between them. An entry whose swap
// image was interned is "sealed": its data pointer is nil and reads go
// through the chunk list; the first mutating access breaks sharing
// COW-style by rematerialising a private buffer.
//
// Sealing points — the only two places a full, consistent swap image
// exists — are a full-extent host write (CopyHD over the whole entry)
// and a device→swap sync (syncToSwap / syncBatchToSwap). Synthetic
// entries (nil data) are never sealed, so timing-only workloads pay
// nothing. Memset and ImportContext intentionally do not seal: the
// first is rarely a stable image, the second restores exactly the
// bytes the journal recorded.
//
// Host accounting: Malloc charges an entry's full Size. When sealing
// finds chunks already present, the duplicate bytes are released from
// hostUsed and remembered in the entry's dedupSaved; breaking the seal
// re-charges them with forceReserve. The re-charge is unconditional —
// it can transiently overshoot a tight host limit, but only ever by
// bytes that sealing previously released, so occupancy never exceeds
// what the same workload would have used with deduplication off.

// dedupChunkSize is the granularity of content addressing. 64 KiB
// amortises the hash over real pages while still sharing partially
// identical buffers.
const dedupChunkSize = 64 << 10

// swapChunk is one interned chunk. data is immutable once the chunk is
// published: mutators never write through a chunk, they rematerialise
// (unseal) first.
type swapChunk struct {
	hash uint64
	data []byte
	refs int
}

// dedupStore is the manager-global chunk intern table, keyed by hash
// with a collision list compared byte-for-byte.
type dedupStore struct {
	mu     sync.Mutex
	chunks map[uint64][]*swapChunk
}

// fnv64a is FNV-1a, inlined to keep the per-chunk hash allocation-free.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// forceReserve charges n bytes of swap occupancy unconditionally (no
// limit check) — used only to undo a dedup saving, which keeps the
// overshoot bounded (see the file comment).
func (m *Manager) forceReserve(n uint64) {
	m.hostUsed.Add(n)
}

// seal interns the entry's materialised swap image into the dedup
// store. No-op for synthetic or already-sealed entries. Caller holds
// the owning context's service lock.
func (m *Manager) seal(p *PTE) {
	if p.data == nil || p.chunks != nil {
		return
	}
	buf := p.data
	p.chunks = make([]*swapChunk, 0, (len(buf)+dedupChunkSize-1)/dedupChunkSize)
	var saved uint64
	d := &m.dedup
	d.mu.Lock()
	for off := 0; off < len(buf); off += dedupChunkSize {
		end := off + dedupChunkSize
		if end > len(buf) {
			end = len(buf)
		}
		part := buf[off:end:end]
		h := fnv64a(part)
		var found *swapChunk
		for _, c := range d.chunks[h] {
			if len(c.data) == len(part) && bytes.Equal(c.data, part) {
				found = c
				break
			}
		}
		if found != nil {
			found.refs++
			saved += uint64(len(part))
			m.dedupHits.Add(1)
		} else {
			// The chunk aliases p.data; that array becomes unreachable
			// through the entry below, so the alias stays immutable.
			found = &swapChunk{hash: h, data: part, refs: 1}
			d.chunks[h] = append(d.chunks[h], found)
		}
		p.chunks = append(p.chunks, found)
	}
	d.mu.Unlock()
	p.data = nil
	if saved > 0 {
		// Publish the saving before releasing the bytes, so an auditor
		// summing used+saved never observes the transfer half-done low.
		p.dedupSaved += saved
		m.dedupSavedBytes.Add(int64(saved))
		m.tracer.Attribute(p.ctxID, trace.AttrDedupSaved, int64(saved))
		m.releaseHost(saved)
		if t := m.tracer; t != nil {
			t.Observe(t.DedupSaved, int64(saved))
		}
	}
}

// unseal breaks chunk sharing: it re-charges any saved bytes,
// rematerialises a private buffer from the chunk list, and drops the
// chunk references. No-op for unsealed entries.
func (m *Manager) unseal(p *PTE) {
	if p.chunks == nil {
		return
	}
	m.reclaimSaved(p)
	buf := make([]byte, p.Size)
	off := 0
	for _, c := range p.chunks {
		off += copy(buf[off:], c.data)
	}
	m.dropChunks(p)
	p.data = buf
	m.cowBreaks.Add(1)
}

// discardSeal drops an entry's chunk references without
// rematerialising — for callers about to overwrite the whole image.
func (m *Manager) discardSeal(p *PTE) {
	if p.chunks == nil {
		return
	}
	m.reclaimSaved(p)
	m.dropChunks(p)
}

// reclaimSaved re-charges the entry's dedup saving against hostUsed.
func (m *Manager) reclaimSaved(p *PTE) {
	if p.dedupSaved == 0 {
		return
	}
	m.forceReserve(p.dedupSaved)
	m.dedupSavedBytes.Add(-int64(p.dedupSaved))
	m.tracer.Attribute(p.ctxID, trace.AttrDedupSaved, -int64(p.dedupSaved))
	p.dedupSaved = 0
}

// dropChunks releases the entry's chunk references, evicting chunks
// whose refcount reaches zero from the store.
func (m *Manager) dropChunks(p *PTE) {
	if p.chunks == nil {
		return
	}
	d := &m.dedup
	d.mu.Lock()
	for _, c := range p.chunks {
		c.refs--
		if c.refs > 0 {
			continue
		}
		list := d.chunks[c.hash]
		for i := range list {
			if list[i] == c {
				list[i] = list[len(list)-1]
				list = list[:len(list)-1]
				break
			}
		}
		if len(list) == 0 {
			delete(d.chunks, c.hash)
		} else {
			d.chunks[c.hash] = list
		}
	}
	d.mu.Unlock()
	p.chunks = nil
}

// mutableSwap returns the entry's private writable swap backing,
// breaking chunk sharing first when the entry is sealed.
func (m *Manager) mutableSwap(p *PTE) []byte {
	m.unseal(p)
	return p.swapData()
}

// hasSwapBytes reports whether the entry carries real bytes, sealed or
// not.
func (p *PTE) hasSwapBytes() bool { return p.data != nil || p.chunks != nil }

// swapView returns the entry's swap bytes for reading: the private
// buffer when unsealed (NOT a copy — callers must not mutate it), or a
// freshly concatenated copy when sealed. Returns nil for synthetic
// entries.
func (p *PTE) swapView() []byte {
	if p.chunks == nil {
		return p.data
	}
	buf := make([]byte, p.Size)
	off := 0
	for _, c := range p.chunks {
		off += copy(buf[off:], c.data)
	}
	return buf
}

// swapImageCopy returns a private copy of the entry's swap bytes (nil
// for synthetic entries) without changing the seal state.
func (p *PTE) swapImageCopy() []byte {
	if p.chunks != nil {
		return p.swapView()
	}
	if p.data == nil {
		return nil
	}
	return append([]byte(nil), p.data...)
}

// readSwapRange copies len(dst) bytes starting at off out of the swap
// image without materialising the whole entry.
func (p *PTE) readSwapRange(dst []byte, off uint64) {
	if p.chunks == nil {
		copy(dst, p.data[off:])
		return
	}
	for _, c := range p.chunks {
		clen := uint64(len(c.data))
		if off >= clen {
			off -= clen
			continue
		}
		n := copy(dst, c.data[off:])
		dst = dst[n:]
		if len(dst) == 0 {
			return
		}
		off = 0
	}
}

// DedupChunks reports the number of distinct chunks currently interned
// (test and introspection hook).
func (m *Manager) DedupChunks() int {
	d := &m.dedup
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, list := range d.chunks {
		n += len(list)
	}
	return n
}

// DedupLookup returns a copy of an interned chunk whose content matches
// (hash, length, CRC-32C sum) — the migration target's local-satisfy
// path: a manifest chunk already present in this node's dedup store
// (another tenant's identical data, or a prior import) need not cross
// the wire at all. The CRC disambiguates hash-colliding candidates the
// same way the seal path's byte-compare does, without the caller having
// to ship the bytes it is trying to avoid shipping.
func (m *Manager) DedupLookup(hash uint64, length int, sum uint32) ([]byte, bool) {
	d := &m.dedup
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range d.chunks[hash] {
		if len(c.data) == length && crc32.Checksum(c.data, dedupCRCTable) == sum {
			return append([]byte(nil), c.data...), true
		}
	}
	return nil, false
}

// dedupCRCTable matches the failover wire protocol's chunk checksum.
var dedupCRCTable = crc32.MakeTable(crc32.Castagnoli)
