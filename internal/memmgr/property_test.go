package memmgr

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
)

// TestFlagInvariantsUnderRandomOps property-checks the Figure 4 state
// machine against random call sequences: after every operation the
// entry must be in one of the five legal states, and the accounting of
// the fake device must match the entries' IsAllocated flags.
func TestFlagInvariantsUnderRandomOps(t *testing.T) {
	legal := func(p *PTE) bool {
		// The five states of Figure 4: F/F/F, F/T/F, T/F/F, T/T/F,
		// T/F/T. Equivalently: never both transfer flags, and a
		// non-allocated entry is never device-newer.
		if p.ToCopy2Dev && p.ToCopy2Swap {
			return false
		}
		if !p.IsAllocated && p.ToCopy2Swap {
			return false
		}
		return true
	}

	check := func(ops []uint8) bool {
		m := New(true, 0)
		dev := newFakeOps(1 << 20)
		var entries []*PTE
		for _, op := range ops {
			switch {
			case op < 60 || len(entries) == 0: // malloc
				v, err := m.Malloc(1, uint64(op)%2048+1, KindLinear)
				if err != nil {
					return false
				}
				pte, _, err := m.Resolve(v)
				if err != nil {
					return false
				}
				entries = append(entries, pte)
			default:
				pte := entries[int(op)%len(entries)]
				switch op % 5 {
				case 0: // copyHD
					if err := m.CopyHD(pte, 0, []byte{op}, 0, dev); err != nil {
						return false
					}
				case 1: // launch path
					if err := m.MakeResident(pte, dev); err != nil {
						return false
					}
					m.MarkKernelEffects([]*PTE{pte}, nil)
				case 2: // copyDH
					if _, err := m.CopyDH(pte, 0, 1, dev); err != nil {
						return false
					}
				case 3: // swap
					if err := m.SwapOut(pte, dev); err != nil {
						return false
					}
				case 4: // memset
					if err := m.Memset(pte, 0, op, 1, dev); err != nil {
						return false
					}
				}
			}
			// Invariants after every step.
			var resident uint64
			for _, e := range entries {
				if !legal(e) {
					return false
				}
				if e.IsAllocated {
					if e.Device == 0 {
						return false
					}
					resident += (e.Size + 255) &^ 255 // fake dev doesn't round; compare loosely below
				}
			}
			_ = resident
			// Device accounting: every allocated entry has backing in
			// the fake device; total used there equals the sum of
			// entry sizes.
			var sum uint64
			for _, e := range entries {
				if e.IsAllocated {
					n, ok := dev.sizes[e.Device]
					if !ok || n != e.Size {
						return false
					}
					sum += n
				}
			}
			if sum != dev.used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestDataIntegrityUnderRandomSwaps property-checks that an entry's
// logical content survives arbitrary interleavings of residency changes
// and swaps: whatever was last written (host- or device-side) is what a
// copyDH returns.
func TestDataIntegrityUnderRandomSwaps(t *testing.T) {
	check := func(ops []uint8, seedByte uint8) bool {
		m := New(true, 0)
		dev := newFakeOps(1 << 20)
		v, err := m.Malloc(1, 64, KindLinear)
		if err != nil {
			return false
		}
		pte, _, _ := m.Resolve(v)
		expect := make([]byte, 64)

		write := func(b byte) {
			img := bytes.Repeat([]byte{b}, 64)
			if err := m.CopyHD(pte, 0, img, 0, dev); err != nil {
				panic(err)
			}
			copy(expect, img)
		}
		write(seedByte)

		for _, op := range ops {
			switch op % 4 {
			case 0:
				write(op)
			case 1:
				if err := m.MakeResident(pte, dev); err != nil {
					return false
				}
				m.MarkKernelEffects([]*PTE{pte}, nil)
				// Simulate the kernel incrementing every byte.
				if buf, ok := dev.bufs[pte.Device]; ok {
					for i := range buf {
						buf[i]++
					}
					dev.real[pte.Device] = true
					for i := range expect {
						expect[i]++
					}
				}
			case 2:
				if err := m.SwapOut(pte, dev); err != nil {
					return false
				}
			case 3:
				// Re-bind on a brand new device: migration.
				if pte.IsAllocated {
					if err := m.SwapOut(pte, dev); err != nil {
						return false
					}
				}
				dev = newFakeOps(1 << 20)
			}
		}
		got, err := m.CopyDH(pte, 0, 64, dev)
		if err != nil {
			return false
		}
		return bytes.Equal(got, expect)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestFlagInvariantsUnderSwapWriteFailures replays the Figure 4
// property check with the fault plane denying a third of all swap-area
// writes and a tenth of all page-table allocations: injected failures
// are tolerated (the op reports ErrSwapAllocation and moves on), but
// after every step — failed or not — each entry must still be in a
// legal state, with never both transfer flags set, and the fake
// device's accounting must still match the IsAllocated flags.
func TestFlagInvariantsUnderSwapWriteFailures(t *testing.T) {
	legal := func(p *PTE) bool {
		if p.ToCopy2Dev && p.ToCopy2Swap {
			return false
		}
		if !p.IsAllocated && p.ToCopy2Swap {
			return false
		}
		return true
	}

	var seed int64
	check := func(ops []uint8) bool {
		seed++
		m := New(true, 0)
		m.InstallFaults(faultinject.New(faultinject.Plan{
			Name: "swap-storm",
			Seed: seed,
			Rules: []faultinject.Rule{
				{Point: faultinject.PointSwapWrite, Prob: 0.3, Action: faultinject.ActError},
				{Point: faultinject.PointSwapAlloc, Prob: 0.1, Action: faultinject.ActError},
			},
		}))
		dev := newFakeOps(1 << 20)
		var entries []*PTE
		for _, op := range ops {
			var err error
			switch {
			case op < 60 || len(entries) == 0: // malloc
				var v api.DevPtr
				v, err = m.Malloc(1, uint64(op)%2048+1, KindLinear)
				if err == nil {
					var pte *PTE
					pte, _, err = m.Resolve(v)
					if err != nil {
						return false
					}
					entries = append(entries, pte)
				}
			default:
				pte := entries[int(op)%len(entries)]
				switch op % 5 {
				case 0:
					err = m.CopyHD(pte, 0, []byte{op}, 0, dev)
				case 1:
					err = m.MakeResident(pte, dev)
					if err == nil {
						m.MarkKernelEffects([]*PTE{pte}, nil)
					}
				case 2:
					_, err = m.CopyDH(pte, 0, 1, dev)
				case 3:
					err = m.SwapOut(pte, dev)
				case 4:
					err = m.Memset(pte, 0, op, 1, dev)
				}
			}
			// Injected faults surface as the swap-allocation code and
			// nothing else; any other failure is a real bug.
			if err != nil && !errors.Is(err, api.ErrSwapAllocation) {
				return false
			}
			// Invariants after every step, including failed ones.
			for _, e := range entries {
				if !legal(e) {
					return false
				}
				if e.IsAllocated && e.Device == 0 {
					return false
				}
			}
			var sum uint64
			for _, e := range entries {
				if e.IsAllocated {
					n, ok := dev.sizes[e.Device]
					if !ok || n != e.Size {
						return false
					}
					sum += n
				}
			}
			if sum != dev.used {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMemsetDirect(t *testing.T) {
	m := New(true, 0)
	dev := newFakeOps(1 << 20)
	v, _ := m.Malloc(1, 8, KindLinear)
	pte, _, _ := m.Resolve(v)
	if err := m.Memset(pte, 2, 9, 4, dev); err != nil {
		t.Fatal(err)
	}
	out, err := m.CopyDH(pte, 0, 8, dev)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 9, 9, 9, 9, 0, 0}
	if !bytes.Equal(out, want) {
		t.Errorf("after memset, data = %v, want %v", out, want)
	}
	if err := m.Memset(pte, 6, 1, 4, dev); err != api.ErrInvalidValue {
		t.Errorf("out-of-bounds memset err = %v", err)
	}
}
