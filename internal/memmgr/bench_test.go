package memmgr

import (
	"testing"

	"gvrt/internal/api"
)

func BenchmarkMallocResolve(b *testing.B) {
	m := New(true, 0)
	var ptrs []api.DevPtr
	for i := 0; i < 64; i++ {
		v, err := m.Malloc(1, 4096, KindLinear)
		if err != nil {
			b.Fatal(err)
		}
		ptrs = append(ptrs, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Resolve(ptrs[i%len(ptrs)] + 17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeResidentSwapOut(b *testing.B) {
	m := New(true, 0)
	dev := newFakeOps(1 << 30)
	v, err := m.Malloc(1, 1<<20, KindLinear)
	if err != nil {
		b.Fatal(err)
	}
	pte, _, _ := m.Resolve(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MakeResident(pte, dev); err != nil {
			b.Fatal(err)
		}
		if err := m.SwapOut(pte, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyHDDeferred(b *testing.B) {
	m := New(true, 0)
	v, _ := m.Malloc(1, 1<<16, KindLinear)
	pte, _, _ := m.Resolve(v)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CopyHD(pte, uint64(i%16)*4096, data, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	m := New(true, 0)
	dev := newFakeOps(1 << 30)
	var ptes []*PTE
	for i := 0; i < 16; i++ {
		v, _ := m.Malloc(1, 1<<16, KindLinear)
		pte, _, _ := m.Resolve(v)
		if err := m.MakeResident(pte, dev); err != nil {
			b.Fatal(err)
		}
		ptes = append(ptes, pte)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkKernelEffects(ptes, nil)
		if _, err := m.Checkpoint(1, dev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapOutEntriesBatch measures the batched working-set
// eviction path (one copy-engine submission for all dirty entries)
// plus the swap-in that restores residency for the next round — the
// hot cycle of the swap-pressure macro-benchmark.
func BenchmarkSwapOutEntriesBatch(b *testing.B) {
	m := New(true, 0)
	ops := &batchFakeOps{newFakeOps(1 << 30)}
	var ptes []*PTE
	for i := 0; i < 16; i++ {
		v, err := m.Malloc(1, 1<<20, KindLinear)
		if err != nil {
			b.Fatal(err)
		}
		pte, _, _ := m.Resolve(v)
		ptes = append(ptes, pte)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pte := range ptes {
			if err := m.EnsureAllocated(pte, ops); err != nil {
				b.Fatal(err)
			}
		}
		if err := m.FlushDeferred(ptes, ops); err != nil {
			b.Fatal(err)
		}
		m.MarkKernelEffects(ptes, nil)
		if _, err := m.SwapOutEntries(ptes, ops); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSwapPathAllocBudget gates per-entry heap allocations on the
// swap-out/swap-in cycle (synthetic entries, batched ops): the CI runs
// this with the ordinary test suite, so an allocation regression on the
// hot path fails fast without needing a benchmark harness. The budget
// includes the fake device's own bookkeeping and carries slack; it
// exists to catch order-of-magnitude regressions.
func TestSwapPathAllocBudget(t *testing.T) {
	m := New(true, 0)
	ops := &batchFakeOps{newFakeOps(1 << 30)}
	const entries = 16
	var ptes []*PTE
	for i := 0; i < entries; i++ {
		v, err := m.Malloc(1, 1<<20, KindLinear)
		if err != nil {
			t.Fatal(err)
		}
		pte, _, _ := m.Resolve(v)
		ptes = append(ptes, pte)
	}
	cycle := func() {
		for _, pte := range ptes {
			if err := m.EnsureAllocated(pte, ops); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.FlushDeferred(ptes, ops); err != nil {
			t.Fatal(err)
		}
		m.MarkKernelEffects(ptes, nil)
		if _, err := m.SwapOutEntries(ptes, ops); err != nil {
			t.Fatal(err)
		}
	}
	cycle() // warm up lazy structures
	perEntry := testing.AllocsPerRun(20, cycle) / entries
	// Measured ~1.8 per entry (2026-08); 8 leaves room for noise while
	// still catching a per-entry allocation regression immediately.
	const budget = 8.0
	if perEntry > budget {
		t.Errorf("swap cycle allocates %.1f objects per entry, budget %.1f", perEntry, budget)
	}
}
