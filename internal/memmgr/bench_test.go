package memmgr

import (
	"testing"

	"gvrt/internal/api"
)

func BenchmarkMallocResolve(b *testing.B) {
	m := New(true, 0)
	var ptrs []api.DevPtr
	for i := 0; i < 64; i++ {
		v, err := m.Malloc(1, 4096, KindLinear)
		if err != nil {
			b.Fatal(err)
		}
		ptrs = append(ptrs, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Resolve(ptrs[i%len(ptrs)] + 17); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMakeResidentSwapOut(b *testing.B) {
	m := New(true, 0)
	dev := newFakeOps(1 << 30)
	v, err := m.Malloc(1, 1<<20, KindLinear)
	if err != nil {
		b.Fatal(err)
	}
	pte, _, _ := m.Resolve(v)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MakeResident(pte, dev); err != nil {
			b.Fatal(err)
		}
		if err := m.SwapOut(pte, dev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCopyHDDeferred(b *testing.B) {
	m := New(true, 0)
	v, _ := m.Malloc(1, 1<<16, KindLinear)
	pte, _, _ := m.Resolve(v)
	data := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.CopyHD(pte, uint64(i%16)*4096, data, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	m := New(true, 0)
	dev := newFakeOps(1 << 30)
	var ptes []*PTE
	for i := 0; i < 16; i++ {
		v, _ := m.Malloc(1, 1<<16, KindLinear)
		pte, _, _ := m.Resolve(v)
		if err := m.MakeResident(pte, dev); err != nil {
			b.Fatal(err)
		}
		ptes = append(ptes, pte)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MarkKernelEffects(ptes, nil)
		if _, err := m.Checkpoint(1, dev); err != nil {
			b.Fatal(err)
		}
	}
}
