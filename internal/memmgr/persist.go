package memmgr

import (
	"fmt"

	"gvrt/internal/api"
)

// This file implements the state persistence behind §4.6's full-node
// restart capability (the paper combines its runtime with BLCR; here
// the runtime serialises its own memory-manager state instead). A
// context image captures everything the virtual memory system knows
// about one application thread: its page-table entries and the swap
// copies of their data. Because the swap area plus page table *are* the
// checkpoint, an image taken after a Checkpoint fully reconstructs the
// context's device state on any node.

// EntryImage is the serialisable form of one page-table entry.
type EntryImage struct {
	Virtual api.DevPtr
	Size    uint64
	Kind    Kind
	// HasData distinguishes real-byte entries from synthetic ones.
	HasData bool
	// Data is the swap copy (nil for synthetic entries).
	Data []byte
	// Nested carries the registered nested-structure layout, if any.
	NestedMembers []api.DevPtr
	NestedOffsets []uint64
}

// ContextImage is the serialisable form of one context's memory state.
type ContextImage struct {
	CtxID   int64
	NextOff uint64
	Entries []EntryImage
}

// ExportContext captures a context's page table and swap area. Entries
// still dirty on the device (ToCopy2Swap) cannot be captured — the
// caller must Checkpoint or SwapOutAll first; ExportContext fails
// loudly rather than snapshot stale data.
func (m *Manager) ExportContext(ctxID int64) (*ContextImage, error) {
	m.mu.Lock()
	entries := append([]*PTE(nil), m.tables[ctxID]...)
	next := m.next[ctxID]
	m.mu.Unlock()

	img := &ContextImage{CtxID: ctxID, NextOff: next}
	for _, pte := range entries {
		if pte.ToCopy2Swap {
			return nil, fmt.Errorf("memmgr: entry %#x has device-only data; checkpoint before export", uint64(pte.Virtual))
		}
		img.Entries = append(img.Entries, pte.image())
	}
	return img, nil
}

// ImportContext reconstructs a context's memory state from an image.
// Every entry comes back off-device with its swap copy authoritative
// (ToCopy2Dev set when it carries data), so the first kernel launch
// after resume lazily restores residency — exactly the §4.6 restart
// semantics. It fails if the context ID is already in use.
func (m *Manager) ImportContext(img *ContextImage) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.tables[img.CtxID]) > 0 {
		return fmt.Errorf("memmgr: context %d already present", img.CtxID)
	}
	var total uint64
	for _, e := range img.Entries {
		total += e.Size
	}
	if m.hostLimit > 0 && m.hostUsed+total > m.hostLimit {
		return api.ErrSwapAllocation
	}
	var entries []*PTE
	for _, e := range img.Entries {
		pte := &PTE{
			Virtual: e.Virtual,
			Size:    e.Size,
			Kind:    e.Kind,
			ctxID:   img.CtxID,
			// Data must return to a device before the next kernel.
			ToCopy2Dev: true,
		}
		if e.HasData {
			pte.data = append([]byte(nil), e.Data...)
		}
		if len(e.NestedMembers) > 0 {
			pte.Nested = &Nested{
				Members: append([]api.DevPtr(nil), e.NestedMembers...),
				Offsets: append([]uint64(nil), e.NestedOffsets...),
			}
		}
		entries = append(entries, pte)
	}
	m.tables[img.CtxID] = entries
	m.next[img.CtxID] = img.NextOff
	m.usage[img.CtxID] = total
	m.hostUsed += total
	return nil
}

// ContextIDs lists the contexts with live page tables.
func (m *Manager) ContextIDs() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]int64, 0, len(m.tables))
	for id := range m.tables {
		ids = append(ids, id)
	}
	return ids
}
