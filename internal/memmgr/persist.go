package memmgr

import (
	"fmt"
	"sort"

	"gvrt/internal/api"
)

// This file implements the state persistence behind §4.6's full-node
// restart capability (the paper combines its runtime with BLCR; here
// the runtime serialises its own memory-manager state instead). A
// context image captures everything the virtual memory system knows
// about one application thread: its page-table entries and the swap
// copies of their data. Because the swap area plus page table *are* the
// checkpoint, an image taken after a Checkpoint fully reconstructs the
// context's device state on any node.

// EntryImage is the serialisable form of one page-table entry.
type EntryImage struct {
	Virtual api.DevPtr
	Size    uint64
	Kind    Kind
	// HasData distinguishes real-byte entries from synthetic ones.
	HasData bool
	// Data is the swap copy (nil for synthetic entries).
	Data []byte
	// Nested carries the registered nested-structure layout, if any.
	NestedMembers []api.DevPtr
	NestedOffsets []uint64
}

// ContextImage is the serialisable form of one context's memory state.
type ContextImage struct {
	CtxID   int64
	NextOff uint64
	Entries []EntryImage
}

// ExportContext captures a context's page table and swap area. Entries
// still dirty on the device (ToCopy2Swap) cannot be captured — the
// caller must Checkpoint or SwapOutAll first; ExportContext fails
// loudly rather than snapshot stale data.
func (m *Manager) ExportContext(ctxID int64) (*ContextImage, error) {
	s := m.shardOf(ctxID)
	s.mu.Lock()
	entries := append([]*PTE(nil), s.tables[ctxID]...)
	next := s.next[ctxID]
	s.mu.Unlock()

	img := &ContextImage{CtxID: ctxID, NextOff: next}
	for _, pte := range entries {
		if pte.ToCopy2Swap {
			return nil, fmt.Errorf("memmgr: entry %#x has device-only data; checkpoint before export", uint64(pte.Virtual))
		}
		img.Entries = append(img.Entries, pte.image())
	}
	return img, nil
}

// ImportContext reconstructs a context's memory state from an image.
// Every entry comes back off-device with its swap copy authoritative
// (ToCopy2Dev set when it carries data), so the first kernel launch
// after resume lazily restores residency — exactly the §4.6 restart
// semantics. It fails if the context ID is already in use.
func (m *Manager) ImportContext(img *ContextImage) error {
	s := m.shardOf(img.CtxID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.tables[img.CtxID]) > 0 {
		return fmt.Errorf("memmgr: context %d already present", img.CtxID)
	}
	var total uint64
	for _, e := range img.Entries {
		total += e.Size
	}
	// Bulk-reserve the whole image against the host limit up front; a
	// failed reservation imports nothing.
	if !m.reserveHost(total) {
		return api.ErrSwapAllocation
	}
	var entries []*PTE
	for _, e := range img.Entries {
		pte := &PTE{
			Virtual: e.Virtual,
			Size:    e.Size,
			Kind:    e.Kind,
			ctxID:   img.CtxID,
			// Data must return to a device before the next kernel.
			ToCopy2Dev: true,
		}
		if e.HasData {
			pte.data = append([]byte(nil), e.Data...)
		}
		if len(e.NestedMembers) > 0 {
			pte.Nested = &Nested{
				Members: append([]api.DevPtr(nil), e.NestedMembers...),
				Offsets: append([]uint64(nil), e.NestedOffsets...),
			}
		}
		entries = append(entries, pte)
	}
	// Resolve binary-searches the table by Virtual; images produced by
	// ExportContext are already ordered, but sort defensively so a
	// hand-built image cannot break lookups.
	sort.Slice(entries, func(i, j int) bool { return entries[i].Virtual < entries[j].Virtual })
	s.tables[img.CtxID] = entries
	s.next[img.CtxID] = img.NextOff
	s.usage[img.CtxID] = total
	return nil
}

// ContextIDs lists the contexts with live page tables.
func (m *Manager) ContextIDs() []int64 {
	var ids []int64
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for id := range s.tables {
			ids = append(ids, id)
		}
		s.mu.Unlock()
	}
	return ids
}
