package memmgr

import (
	"bytes"
	"errors"
	"testing"

	"gvrt/internal/api"
)

// fakeOps is a deterministic in-memory DeviceOps with a capacity cap
// and failure injection.
type fakeOps struct {
	capacity uint64
	used     uint64
	next     uint64
	bufs     map[api.DevPtr][]byte
	sizes    map[api.DevPtr]uint64
	// real marks allocations that carry real bytes; like the gpu
	// package, MemcpyDH returns nil for purely synthetic allocations.
	real     map[api.DevPtr]bool
	mallocs  int
	frees    int
	hdCopies int
	dhCopies int
	failNext error
}

func newFakeOps(capacity uint64) *fakeOps {
	return &fakeOps{
		capacity: capacity,
		next:     0x10000,
		bufs:     make(map[api.DevPtr][]byte),
		sizes:    make(map[api.DevPtr]uint64),
		real:     make(map[api.DevPtr]bool),
	}
}

// poke simulates a kernel writing real bytes to device memory.
func (f *fakeOps) poke(base api.DevPtr, data []byte) {
	copy(f.bufs[base], data)
	f.real[base] = true
}

func (f *fakeOps) takeErr() error {
	err := f.failNext
	f.failNext = nil
	return err
}

func (f *fakeOps) Malloc(size uint64) (api.DevPtr, error) {
	if err := f.takeErr(); err != nil {
		return 0, err
	}
	f.mallocs++
	if f.used+size > f.capacity {
		return 0, api.ErrMemoryAllocation
	}
	f.used += size
	p := api.DevPtr(f.next)
	f.next += size + 256
	f.bufs[p] = make([]byte, size)
	f.sizes[p] = size
	return p, nil
}

func (f *fakeOps) Free(p api.DevPtr) error {
	if err := f.takeErr(); err != nil {
		return err
	}
	f.frees++
	size, ok := f.sizes[p]
	if !ok {
		return api.ErrInvalidDevicePointer
	}
	f.used -= size
	delete(f.bufs, p)
	delete(f.sizes, p)
	delete(f.real, p)
	return nil
}

// resolve finds the allocation containing ptr.
func (f *fakeOps) resolve(ptr api.DevPtr) (api.DevPtr, uint64, bool) {
	for base, size := range f.sizes {
		if ptr >= base && ptr < base+api.DevPtr(size) {
			return base, uint64(ptr - base), true
		}
	}
	return 0, 0, false
}

func (f *fakeOps) MemcpyHD(dst api.DevPtr, data []byte, size uint64) error {
	if err := f.takeErr(); err != nil {
		return err
	}
	f.hdCopies++
	base, off, ok := f.resolve(dst)
	if !ok {
		return api.ErrInvalidDevicePointer
	}
	if data != nil {
		copy(f.bufs[base][off:], data)
		f.real[base] = true
	}
	return nil
}

func (f *fakeOps) MemcpyDH(src api.DevPtr, size uint64) ([]byte, error) {
	if err := f.takeErr(); err != nil {
		return nil, err
	}
	f.dhCopies++
	base, off, ok := f.resolve(src)
	if !ok {
		return nil, api.ErrInvalidDevicePointer
	}
	if !f.real[base] {
		return nil, nil
	}
	out := make([]byte, size)
	copy(out, f.bufs[base][off:])
	return out, nil
}

func mustMalloc(t *testing.T, m *Manager, ctx int64, size uint64) *PTE {
	t.Helper()
	v, err := m.Malloc(ctx, size, KindLinear)
	if err != nil {
		t.Fatalf("Malloc: %v", err)
	}
	pte, off, err := m.Resolve(v)
	if err != nil || off != 0 {
		t.Fatalf("Resolve(%#x) = %v, off=%d", v, err, off)
	}
	return pte
}

func TestMallocCreatesEntryWithoutDevice(t *testing.T) {
	m := New(true, 0)
	pte := mustMalloc(t, m, 1, 1024)
	if pte.IsAllocated || pte.ToCopy2Dev || pte.ToCopy2Swap {
		t.Errorf("fresh entry flags = %v/%v/%v, want F/F/F",
			pte.IsAllocated, pte.ToCopy2Dev, pte.ToCopy2Swap)
	}
	if m.UsageOf(1) != 1024 {
		t.Errorf("UsageOf = %d, want 1024", m.UsageOf(1))
	}
	if pte.HasData() {
		t.Error("fresh entry should have no materialised swap data")
	}
}

func TestMallocZeroSize(t *testing.T) {
	m := New(true, 0)
	if _, err := m.Malloc(1, 0, KindLinear); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("Malloc(0) err = %v, want ErrInvalidValue", err)
	}
}

func TestMallocHostLimit(t *testing.T) {
	m := New(true, 1000)
	if _, err := m.Malloc(1, 800, KindLinear); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Malloc(1, 300, KindLinear); !errors.Is(err, api.ErrSwapAllocation) {
		t.Errorf("over-limit Malloc err = %v, want ErrSwapAllocation", err)
	}
}

func TestResolveMidEntryAndInvalid(t *testing.T) {
	m := New(true, 0)
	v, _ := m.Malloc(7, 100, KindLinear)
	pte, off, err := m.Resolve(v + 42)
	if err != nil || off != 42 || pte.Virtual != v {
		t.Errorf("Resolve(v+42) = (%v, %d, %v)", pte, off, err)
	}
	if _, _, err := m.Resolve(v + 100); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("Resolve past end err = %v", err)
	}
	if _, _, err := m.Resolve(0x1234); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("Resolve of raw device-looking ptr err = %v", err)
	}
	if m.Stats().BadOpsRejected < 2 {
		t.Errorf("BadOpsRejected = %d, want >= 2", m.Stats().BadOpsRejected)
	}
}

func TestVirtualAddressesDisjointAcrossContexts(t *testing.T) {
	m := New(true, 0)
	v1, _ := m.Malloc(1, 64, KindLinear)
	v2, _ := m.Malloc(2, 64, KindLinear)
	if v1 == v2 {
		t.Error("different contexts got the same virtual address")
	}
	p1, _, err1 := m.Resolve(v1)
	p2, _, err2 := m.Resolve(v2)
	if err1 != nil || err2 != nil || p1.CtxID() != 1 || p2.CtxID() != 2 {
		t.Error("virtual addresses did not resolve to their contexts")
	}
}

// TestFigure4FlagTransitions walks the full state machine of the
// paper's Figure 4 under transfer deferral.
func TestFigure4FlagTransitions(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 256)

	assertState := func(step string, alloc, toDev, toSwap bool) {
		t.Helper()
		if pte.IsAllocated != alloc || pte.ToCopy2Dev != toDev || pte.ToCopy2Swap != toSwap {
			t.Fatalf("%s: state = %v/%v/%v, want %v/%v/%v", step,
				pte.IsAllocated, pte.ToCopy2Dev, pte.ToCopy2Swap, alloc, toDev, toSwap)
		}
	}

	assertState("malloc", false, false, false) // F/F/F
	if err := m.CopyHD(pte, 0, []byte{1, 2, 3}, 0, ops); err != nil {
		t.Fatal(err)
	}
	assertState("copyHD", false, true, false) // F/T/F
	if ops.hdCopies != 0 || ops.mallocs != 0 {
		t.Error("deferred copyHD touched the device")
	}

	// launch: alloc + deferred transfer, then kernel dirties the entry.
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	m.MarkKernelEffects([]*PTE{pte}, nil)
	assertState("launch", true, false, true) // T/F/T
	if ops.mallocs != 1 || ops.hdCopies != 1 {
		t.Errorf("launch did %d mallocs, %d HD copies; want 1, 1", ops.mallocs, ops.hdCopies)
	}

	// copyDH: pulls device data to swap, entry synced.
	if _, err := m.CopyDH(pte, 0, 3, ops); err != nil {
		t.Fatal(err)
	}
	assertState("copyDH", true, false, false) // T/F/F

	// copyHD over a synced resident entry (deferred): swap newer.
	if err := m.CopyHD(pte, 0, []byte{9, 9, 9}, 0, ops); err != nil {
		t.Fatal(err)
	}
	assertState("copyHD resident", true, true, false) // T/T/F

	// swap: free device, data only on host.
	if err := m.SwapOut(pte, ops); err != nil {
		t.Fatal(err)
	}
	assertState("swap", false, true, false) // F/T/F
	if ops.frees != 1 {
		t.Errorf("swap did %d frees, want 1", ops.frees)
	}
}

func TestCopyHDBoundsChecked(t *testing.T) {
	m := New(true, 0)
	pte := mustMalloc(t, m, 1, 10)
	if err := m.CopyHD(pte, 0, make([]byte, 11), 0, nil); !errors.Is(err, api.ErrSizeMismatch) {
		t.Errorf("oversized CopyHD err = %v, want ErrSizeMismatch", err)
	}
	if err := m.CopyHD(pte, 8, make([]byte, 4), 0, nil); !errors.Is(err, api.ErrSizeMismatch) {
		t.Errorf("out-of-bounds offset CopyHD err = %v, want ErrSizeMismatch", err)
	}
	if _, err := m.CopyDH(pte, 8, 4, nil); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("out-of-bounds CopyDH err = %v, want ErrInvalidValue", err)
	}
	if got := m.Stats().BadOpsRejected; got != 3 {
		t.Errorf("BadOpsRejected = %d, want 3", got)
	}
}

func TestCopyDHFromSwapWithoutDevice(t *testing.T) {
	// Data written host-side can be read back before any launch, with
	// no device at all (nil ops): everything is served from swap.
	m := New(true, 0)
	pte := mustMalloc(t, m, 1, 16)
	if err := m.CopyHD(pte, 0, []byte{5, 6, 7, 8}, 0, nil); err != nil {
		t.Fatal(err)
	}
	out, err := m.CopyDH(pte, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{6, 7}) {
		t.Errorf("CopyDH = %v, want [6 7]", out)
	}
}

func TestSyntheticEntriesCarryNoBytes(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 30)
	pte := mustMalloc(t, m, 1, 1<<20)
	if err := m.CopyHD(pte, 0, nil, 1<<20, ops); err != nil {
		t.Fatal(err)
	}
	if pte.HasData() {
		t.Error("synthetic CopyHD materialised swap data")
	}
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	m.MarkKernelEffects([]*PTE{pte}, nil)
	out, err := m.CopyDH(pte, 0, 1<<20, ops)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("synthetic CopyDH returned bytes")
	}
}

func TestWriteThroughWithoutDeferral(t *testing.T) {
	m := New(false, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 64)
	// Before first residency, writes still go to swap only.
	if err := m.CopyHD(pte, 0, []byte{1}, 0, ops); err != nil {
		t.Fatal(err)
	}
	if ops.hdCopies != 0 {
		t.Error("pre-binding write should not touch the device even without deferral")
	}
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	hd := ops.hdCopies
	if err := m.CopyHD(pte, 0, []byte{2}, 0, ops); err != nil {
		t.Fatal(err)
	}
	if ops.hdCopies != hd+1 {
		t.Error("resident write should go through to the device without deferral")
	}
	if pte.ToCopy2Dev {
		t.Error("write-through should leave nothing deferred")
	}
}

func TestCoalescingCountsSavedTransfers(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 64)
	for i := 0; i < 5; i++ {
		if err := m.CopyHD(pte, uint64(i), []byte{byte(i)}, 0, ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	if ops.hdCopies != 1 {
		t.Errorf("5 deferred writes produced %d transfers, want 1 bulk transfer", ops.hdCopies)
	}
	if got := m.Stats().CoalescedWrites; got != 4 {
		t.Errorf("CoalescedWrites = %d, want 4", got)
	}
}

func TestPartialCopyHDOverDirtyEntrySyncsFirst(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 4)
	if err := m.CopyHD(pte, 0, []byte{1, 2, 3, 4}, 0, ops); err != nil {
		t.Fatal(err)
	}
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	m.MarkKernelEffects([]*PTE{pte}, nil)
	// Kernel wrote 9s on the device.
	ops.poke(pte.Device, []byte{9, 9, 9, 9})
	// Partial host write of one byte must not lose the other three 9s.
	if err := m.CopyHD(pte, 0, []byte{7}, 0, ops); err != nil {
		t.Fatal(err)
	}
	out, err := m.CopyDH(pte, 0, 4, ops)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{7, 9, 9, 9}) {
		t.Errorf("after partial write, data = %v, want [7 9 9 9]", out)
	}
}

func TestSwapOutPreservesDirtyData(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 4)
	if err := m.CopyHD(pte, 0, []byte{1, 2, 3, 4}, 0, ops); err != nil {
		t.Fatal(err)
	}
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	m.MarkKernelEffects([]*PTE{pte}, nil)
	ops.poke(pte.Device, []byte{40, 41, 42, 43}) // kernel output
	if err := m.SwapOut(pte, ops); err != nil {
		t.Fatal(err)
	}
	// Re-bind on a *different* device: data must follow.
	ops2 := newFakeOps(1 << 20)
	if err := m.MakeResident(pte, ops2); err != nil {
		t.Fatal(err)
	}
	out, err := m.CopyDH(pte, 0, 4, ops2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{40, 41, 42, 43}) {
		t.Errorf("data after swap + rebind = %v, want [40 41 42 43]", out)
	}
	st := m.Stats()
	if st.SwapOps != 1 || st.SwapBytes != 4 {
		t.Errorf("swap stats = %+v", st)
	}
}

func TestSwapOutAllAndUsage(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	for i := 0; i < 3; i++ {
		pte := mustMalloc(t, m, 5, 100)
		if err := m.MakeResident(pte, ops); err != nil {
			t.Fatal(err)
		}
	}
	if m.ResidentBytes(5) != 300 {
		t.Errorf("ResidentBytes = %d, want 300", m.ResidentBytes(5))
	}
	n, err := m.SwapOutAll(5, ops)
	if err != nil || n != 3 {
		t.Fatalf("SwapOutAll = %d, %v", n, err)
	}
	if m.ResidentBytes(5) != 0 {
		t.Errorf("ResidentBytes after SwapOutAll = %d", m.ResidentBytes(5))
	}
	if m.UsageOf(5) != 300 {
		t.Errorf("UsageOf after SwapOutAll = %d, want 300 (still allocated virtually)", m.UsageOf(5))
	}
	if ops.used != 0 {
		t.Errorf("device still holds %d bytes after SwapOutAll", ops.used)
	}
}

func TestMakeResidentPropagatesOOM(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(100)
	pte := mustMalloc(t, m, 1, 200)
	if err := m.MakeResident(pte, ops); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("MakeResident on tiny device err = %v, want ErrMemoryAllocation", err)
	}
	if pte.IsAllocated {
		t.Error("failed MakeResident left entry marked allocated")
	}
}

func TestCheckpointFlushesDirtyEntries(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	a := mustMalloc(t, m, 1, 4)
	b := mustMalloc(t, m, 1, 4)
	for _, p := range []*PTE{a, b} {
		if err := m.MakeResident(p, ops); err != nil {
			t.Fatal(err)
		}
	}
	m.MarkKernelEffects([]*PTE{a}, nil) // only a is dirty
	ops.poke(a.Device, []byte{1, 1, 1, 1})
	n, err := m.Checkpoint(1, ops)
	if err != nil || n != 1 {
		t.Fatalf("Checkpoint = %d, %v; want 1 flush", n, err)
	}
	if a.ToCopy2Swap || !a.IsAllocated {
		t.Error("checkpoint should flush but keep residency")
	}
	// Device state now recoverable without the device.
	out, err := m.CopyDH(a, 0, 4, nil)
	if err != nil || !bytes.Equal(out, []byte{1, 1, 1, 1}) {
		t.Errorf("post-checkpoint swap copy = %v, %v", out, err)
	}
}

func TestInvalidateResidencyMarksLost(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	a := mustMalloc(t, m, 1, 4)
	b := mustMalloc(t, m, 1, 4)
	for _, p := range []*PTE{a, b} {
		if err := m.MakeResident(p, ops); err != nil {
			t.Fatal(err)
		}
	}
	m.MarkKernelEffects([]*PTE{a}, nil)
	lost := m.InvalidateResidency(1)
	if lost != 1 {
		t.Errorf("InvalidateResidency lost = %d, want 1", lost)
	}
	if !a.LostDirty || b.LostDirty {
		t.Error("LostDirty marks wrong")
	}
	if a.IsAllocated || b.IsAllocated {
		t.Error("entries still marked resident after invalidation")
	}
	m.ClearLost(1)
	if a.LostDirty {
		t.Error("ClearLost did not clear")
	}
}

func TestReadOnlyKernelArgsStaySynced(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	in := mustMalloc(t, m, 1, 4)
	out := mustMalloc(t, m, 1, 4)
	for _, p := range []*PTE{in, out} {
		if err := m.MakeResident(p, ops); err != nil {
			t.Fatal(err)
		}
	}
	m.MarkKernelEffects([]*PTE{in, out}, []bool{true, false})
	if in.ToCopy2Swap {
		t.Error("read-only arg marked dirty")
	}
	if !out.ToCopy2Swap {
		t.Error("written arg not marked dirty")
	}
}

func TestFreeReleasesEverything(t *testing.T) {
	m := New(true, 100)
	ops := newFakeOps(1 << 20)
	pte := mustMalloc(t, m, 1, 64)
	if err := m.MakeResident(pte, ops); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(pte, ops); err != nil {
		t.Fatal(err)
	}
	if ops.frees != 1 || ops.used != 0 {
		t.Error("Free did not release device memory")
	}
	if m.UsageOf(1) != 0 {
		t.Errorf("UsageOf after Free = %d", m.UsageOf(1))
	}
	if _, _, err := m.Resolve(pte.Virtual); err == nil {
		t.Error("freed entry still resolvable")
	}
	// Swap headroom returned: a new 100-byte alloc must fit the limit.
	if _, err := m.Malloc(1, 100, KindLinear); err != nil {
		t.Errorf("Malloc after Free err = %v", err)
	}
}

func TestNestedPointerPatching(t *testing.T) {
	m := New(true, 0)
	ops := newFakeOps(1 << 20)
	member := mustMalloc(t, m, 1, 32)
	parent := mustMalloc(t, m, 1, 24)
	if err := m.CopyHD(member, 0, []byte("member-data"), 0, ops); err != nil {
		t.Fatal(err)
	}
	// Parent embeds the member's virtual pointer at offset 8.
	img := make([]byte, 24)
	putU64(img[8:], uint64(member.Virtual))
	if err := m.CopyHD(parent, 0, img, 0, ops); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterNested(parent, []api.DevPtr{member.Virtual}, []uint64{8}); err != nil {
		t.Fatal(err)
	}
	if err := m.MakeResident(parent, ops); err != nil {
		t.Fatal(err)
	}
	if !member.IsAllocated {
		t.Fatal("member not made resident with parent")
	}
	// Device image must hold the member's *device* address.
	devImg := ops.bufs[parent.Device]
	got := uint64(devImg[8]) | uint64(devImg[9])<<8 | uint64(devImg[10])<<16 | uint64(devImg[11])<<24 |
		uint64(devImg[12])<<32 | uint64(devImg[13])<<40 | uint64(devImg[14])<<48 | uint64(devImg[15])<<56
	if got != uint64(member.Device) {
		t.Errorf("device image embeds %#x, want member device ptr %#x", got, uint64(member.Device))
	}
	// Swap image must keep the virtual address.
	out, err := m.CopyDH(parent, 8, 8, ops)
	if err != nil {
		t.Fatal(err)
	}
	var swapPtr uint64
	for i := 7; i >= 0; i-- {
		swapPtr = swapPtr<<8 | uint64(out[i])
	}
	if swapPtr != uint64(member.Virtual) {
		t.Errorf("swap image embeds %#x, want virtual ptr %#x", swapPtr, uint64(member.Virtual))
	}
}

func TestRegisterNestedValidation(t *testing.T) {
	m := New(true, 0)
	parent := mustMalloc(t, m, 1, 16)
	other := mustMalloc(t, m, 2, 16) // different context
	if err := m.RegisterNested(parent, []api.DevPtr{other.Virtual}, []uint64{0}); err == nil {
		t.Error("cross-context nested registration should fail")
	}
	member := mustMalloc(t, m, 1, 16)
	if err := m.RegisterNested(parent, []api.DevPtr{member.Virtual}, []uint64{12}); err == nil {
		t.Error("offset without room for a pointer should fail")
	}
	if err := m.RegisterNested(parent, []api.DevPtr{member.Virtual}, []uint64{0, 8}); err == nil {
		t.Error("mismatched members/offsets should fail")
	}
	if err := m.RegisterNested(parent, []api.DevPtr{member.Virtual}, []uint64{8}); err != nil {
		t.Errorf("valid nested registration err = %v", err)
	}
}

func TestReleaseContext(t *testing.T) {
	m := New(true, 1000)
	ops := newFakeOps(1 << 20)
	for i := 0; i < 3; i++ {
		pte := mustMalloc(t, m, 9, 100)
		if err := m.MakeResident(pte, ops); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseContext(9, ops)
	if ops.used != 0 {
		t.Error("ReleaseContext leaked device memory")
	}
	if m.UsageOf(9) != 0 || len(m.EntriesOf(9)) != 0 {
		t.Error("ReleaseContext left table state")
	}
	if m.Stats().HostBytesInUse != 0 {
		t.Errorf("HostBytesInUse = %d after release", m.Stats().HostBytesInUse)
	}
}

// TestIntraAppSwapMatmul reproduces the §4.5 walk-through: three square
// matrices of which only two fit the device at once. The sequence
// fails on the bare allocation path but succeeds when the launch path
// swaps out the entry the next kernel does not need.
func TestIntraAppSwapMatmul(t *testing.T) {
	const matrix = 400
	m := New(true, 0)
	ops := newFakeOps(2*matrix + 100) // room for two matrices only

	a := mustMalloc(t, m, 1, matrix) // 1. malloc A
	b := mustMalloc(t, m, 1, matrix) // 2. malloc B
	c := mustMalloc(t, m, 1, matrix) // 3. malloc C — no error under gvrt!
	if err := m.CopyHD(a, 0, nil, matrix, ops); err != nil {
		t.Fatal(err) // 4. copyHD A
	}

	// 5. matmul(A, A, B): A and B become resident.
	for _, p := range []*PTE{a, b} {
		if err := m.MakeResident(p, ops); err != nil {
			t.Fatalf("kernel 1 residency: %v", err)
		}
	}
	m.MarkKernelEffects([]*PTE{a, b}, []bool{true, false})

	// 6. matmul(B, B, C): C does not fit — swap out A (not referenced).
	if err := m.MakeResident(c, ops); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Fatalf("expected OOM before intra-app swap, got %v", err)
	}
	if err := m.SwapOut(a, ops); err != nil {
		t.Fatal(err)
	}
	if err := m.MakeResident(c, ops); err != nil {
		t.Fatalf("residency after intra-app swap: %v", err)
	}
	m.MarkKernelEffects([]*PTE{b, c}, []bool{true, false})

	// 7-8. copyDH B and C succeed.
	if _, err := m.CopyDH(b, 0, matrix, ops); err != nil {
		t.Fatal(err)
	}
	if _, err := m.CopyDH(c, 0, matrix, ops); err != nil {
		t.Fatal(err)
	}
	if m.Stats().SwapOps != 1 {
		t.Errorf("SwapOps = %d, want 1", m.Stats().SwapOps)
	}
}
