package memmgr

import "gvrt/internal/api"

// Observer receives a notification after every mutation of the durable
// memory state — the page table and swap area that §4.6 declares to be
// the checkpoint. The checkpoint journal implements it to shadow that
// state on disk; a nil observer costs one nil check per mutation.
//
// Callbacks run on the mutating goroutine, after the mutation succeeded,
// while the owning context's service lock is still held — so for one
// context they arrive in mutation order. Implementations must not call
// back into the Manager.
type Observer interface {
	// EntryWritten reports that an entry's swap-side state changed: a
	// fresh allocation, a host write, a memset, or a device→swap sync.
	// nextOff, when non-zero, is the context's new allocation cursor.
	EntryWritten(ctxID int64, e EntryImage, nextOff uint64)
	// EntryFreed reports an entry de-allocation.
	EntryFreed(ctxID int64, virtual api.DevPtr)
	// ContextReleased reports a whole context's teardown.
	ContextReleased(ctxID int64)
}

// SetObserver installs the durable-state observer. Install it before
// the manager starts serving calls; it is not synchronised against
// in-flight mutations.
func (m *Manager) SetObserver(obs Observer) { m.obs = obs }

// image captures the entry's serialisable form (swap-side state only).
// The caller holds the owning context's service lock.
func (p *PTE) image() EntryImage {
	e := EntryImage{
		Virtual: p.Virtual,
		Size:    p.Size,
		Kind:    p.Kind,
		HasData: p.hasSwapBytes(),
	}
	if e.HasData {
		e.Data = p.swapImageCopy()
	}
	if p.Nested != nil {
		e.NestedMembers = append([]api.DevPtr(nil), p.Nested.Members...)
		e.NestedOffsets = append([]uint64(nil), p.Nested.Offsets...)
	}
	return e
}

// noteWrite notifies the observer of an entry mutation.
func (m *Manager) noteWrite(p *PTE) {
	if m.obs != nil {
		m.obs.EntryWritten(p.ctxID, p.image(), 0)
	}
}
