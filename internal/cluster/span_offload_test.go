package cluster

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"

	"gvrt/internal/core"
	"gvrt/internal/trace"
	"gvrt/internal/workload"
)

// TestOffloadSpansCrossHop proves the causal chain survives an offload
// hop: the overloaded node records an "offload" span per proxied
// connection and stamps its ID onto every forwarded call, so the spans
// the serving peer records carry that ID as their parent — one merged
// trace shows which remote work a hop caused.
func TestOffloadSpansCrossHop(t *testing.T) {
	recA := trace.NewRecorder(2048)
	recB := trace.NewRecorder(2048)
	cfgA := core.Config{CallOverhead: -1, VGPUsPerDevice: 1, Trace: recA}
	cfgB := core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: 2, Trace: recB}
	_, a, b, clock := newTestCluster(t, cfgA, cfgB)

	// Batch arrival (as in TestOffloadRebalancesUnbalancedCluster) so
	// node B actually overloads and offloads to A.
	const n = 16
	barrier := make(chan struct{})
	var connected atomic.Int32
	nodes := []*Node{a, b}
	res := workload.RunBatch(clock, fastApps(n), func(i int) (workload.CUDA, error) {
		c, err := nodes[i%2].Connect()
		if connected.Add(1) == n {
			close(barrier)
		}
		<-barrier
		return c, err
	})
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	if b.RT.Metrics().Offloaded == 0 {
		t.Fatal("node B never offloaded; the test premise is gone")
	}

	// Collect node B's offload span IDs and check node A parents call
	// spans to them.
	offloadIDs := make(map[trace.SpanID]bool)
	for _, s := range recB.Spans() {
		if s.Phase == "offload" {
			if s.ID == 0 {
				t.Fatal("offload span recorded without an ID")
			}
			offloadIDs[s.ID] = true
		}
	}
	if len(offloadIDs) == 0 {
		t.Fatal("no offload spans on the overloaded node")
	}
	crossed := 0
	for _, s := range recA.Spans() {
		if offloadIDs[s.Parent] {
			crossed++
		}
	}
	if crossed == 0 {
		t.Fatalf("no span on node A is parented to node B's %d offload spans (parent lost crossing the wire)", len(offloadIDs))
	}

	// A merged two-process export must be valid JSON and draw the
	// cross-node parent links as flow ("s"/"f") arrow pairs.
	var buf bytes.Buffer
	err := trace.WriteChromeTrace(&buf,
		trace.ChromeProcess{Name: "node-b", Spans: recB.Spans(), Events: recB.Snapshot()},
		trace.ChromeProcess{Name: "node-a", Spans: recA.Spans(), Events: recA.Snapshot()},
	)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged export is not valid JSON: %v", err)
	}
	var flowStart, flowEnd, procs int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "s":
			flowStart++
		case "f":
			flowEnd++
		case "M":
			procs++
		}
	}
	if procs != 2 {
		t.Errorf("merged export has %d process rows, want 2", procs)
	}
	if flowStart == 0 || flowStart != flowEnd {
		t.Errorf("flow arrows: %d starts, %d ends; want a matched non-zero pairing", flowStart, flowEnd)
	}
}
