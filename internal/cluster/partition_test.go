package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/core"
	"gvrt/internal/faultinject"
	"gvrt/internal/workload"
)

// TestPartitionMidOffloadNeverHangs severs the overloaded node's peer
// link through the fault plane while offloaded work is in flight, and
// asserts the paper's §4.7 degradation contract: every pending
// connection is either served locally or fails with a clean resource
// error — no job hangs, no opaque error escapes.
func TestPartitionMidOffloadNeverHangs(t *testing.T) {
	// The 12th use of node B's outbound link (dials + proxied calls)
	// partitions it for good — early enough that offloaded tenants still
	// have calls in flight, late enough that offloading actually began.
	plan := faultinject.Plan{
		Name: "split-brain",
		Seed: 99,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointClusterLink, Label: "node-b", AtNth: 12, Action: faultinject.ActPartition},
		},
	}
	plane := faultinject.New(plan)
	cfgA := core.Config{CallOverhead: -1, VGPUsPerDevice: 1}
	cfgB := core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: 2, Faults: plane}
	_, _, b, clock := newTestCluster(t, cfgA, cfgB)

	// Batch arrival on the small node, as in the offload test: all
	// tenants connect before any issues calls, so node B overloads and
	// starts shedding to node A before the partition hits.
	const n = 16
	barrier := make(chan struct{})
	var connected atomic.Int32
	done := make(chan workload.BatchResult, 1)
	go func() {
		done <- workload.RunBatch(clock, fastApps(n), func(i int) (workload.CUDA, error) {
			c, err := b.Connect()
			if connected.Add(1) == n {
				close(barrier)
			}
			<-barrier
			return c, err
		})
	}()

	var res workload.BatchResult
	select {
	case res = <-done:
	case <-time.After(30 * time.Second):
		t.Fatalf("batch hung after mid-offload partition; reproduce with plan %q seed %d", plan.Name, plane.Seed())
	}

	// The partition must actually have fired mid-run...
	fired := false
	for _, f := range plane.Schedule() {
		if f.Action == faultinject.ActPartition {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("link partition never fired; the test exercised nothing (schedule: %v)", plane.Schedule())
	}
	// ...and stuck: the link hook reports down.
	if link := plane.Hook(faultinject.PointClusterLink, "node-b"); !link.Down() {
		t.Error("link hook not down after partition")
	}

	// Every job either completed or failed with a clean resource error.
	for i, err := range res.Errors {
		if err == nil {
			continue
		}
		switch api.Code(err) {
		case api.ErrConnectionClosed, api.ErrNoDevice, api.ErrDeviceUnavailable,
			api.ErrMemoryAllocation, api.ErrSwapAllocation:
		default:
			t.Errorf("job %d: unclean error after partition: %v", i, err)
		}
	}
	if res.Failed() == n {
		t.Error("every job failed; local fallback never served anyone")
	}

	// The severed node kept serving locally: it bound work itself even
	// though its offload threshold wanted to shed it.
	if b.RT.Metrics().Binds == 0 {
		t.Errorf("node B bound nothing locally after the partition (metrics: %+v)", b.RT.Metrics())
	}
	t.Logf("partition chaos: %d/%d jobs failed clean, node B offloaded %d then bound %d locally",
		res.Failed(), n, b.RT.Metrics().Offloaded, b.RT.Metrics().Binds)
}
