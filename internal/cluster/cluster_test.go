package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/workload"
)

// tinySpec keeps cluster tests fast: short kernels still dominate the
// modeled durations, but wall time is negligible at this clock scale.
func tinySpec() gpu.Spec {
	return gpu.Spec{Name: "t", SMs: 1, CoresPerSM: 1, ClockMHz: 1000,
		MemBytes: 4 << 30, Speed: 1, BandwidthBps: 1 << 40}
}

func newTestCluster(t *testing.T, cfgA, cfgB core.Config) (*Head, *Node, *Node, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock(1e-7)
	a, err := NewNode("node-a", clock, []gpu.Spec{tinySpec(), tinySpec(), tinySpec()}, cfgA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("node-b", clock, []gpu.Spec{tinySpec()}, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	a.SetPeer(b)
	b.SetPeer(a)
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewHead(clock, a, b), a, b, clock
}

// fastApps builds n trivial jobs (cheap MT variants) for plumbing
// tests.
func fastApps(n int) []workload.App {
	apps := make([]workload.App, n)
	for i := range apps {
		apps[i] = workload.MT()
	}
	return apps
}

func TestObliviousSplitsJobsEvenly(t *testing.T) {
	cfg := core.Config{CallOverhead: -1}
	head, a, b, _ := newTestCluster(t, cfg, cfg)
	res := head.RunOblivious(fastApps(8))
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	// Each node served half the jobs (binds count per node).
	ma, mb := a.RT.Metrics(), b.RT.Metrics()
	if ma.Binds != 4 || mb.Binds != 4 {
		t.Errorf("binds split = %d/%d, want 4/4", ma.Binds, mb.Binds)
	}
}

func TestGPUAwareSerializesPerGPU(t *testing.T) {
	cfg := core.Config{CallOverhead: -1}
	head, a, b, _ := newTestCluster(t, cfg, cfg)
	res := head.RunGPUAware(fastApps(12))
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	// The bare path bypasses gvrt entirely.
	if a.RT.Metrics().Binds != 0 || b.RT.Metrics().Binds != 0 {
		t.Error("GPU-aware mode should not touch the gvrt runtimes")
	}
	// The cluster has 4 GPUs; the bare runtime never saw more than 4
	// concurrent contexts, i.e. no stability failures.
	if a.CRT.AttachedProcesses() != 0 || b.CRT.AttachedProcesses() != 0 {
		t.Error("processes leaked")
	}
}

func TestOffloadRebalancesUnbalancedCluster(t *testing.T) {
	// Node B has 1 GPU and 1 vGPU per device, and offloads to node A
	// (3 GPUs) as soon as 2 contexts are queued beyond its capacity.
	cfgA := core.Config{CallOverhead: -1, VGPUsPerDevice: 1}
	cfgB := core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: 2}
	_, a, b, clock := newTestCluster(t, cfgA, cfgB)

	// All 16 tenants connect before any starts issuing calls — the
	// batch-arrival pattern of the paper's cluster runs (at this test's
	// fast clock scale, jobs would otherwise serialize and the node
	// would never look overloaded).
	const n = 16
	barrier := make(chan struct{})
	var connected atomic.Int32
	nodes := []*Node{a, b}
	res := workload.RunBatch(clock, fastApps(n), func(i int) (workload.CUDA, error) {
		c, err := nodes[i%2].Connect()
		if connected.Add(1) == n {
			close(barrier)
		}
		<-barrier
		return c, err
	})
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	mb := b.RT.Metrics()
	if mb.Offloaded == 0 {
		t.Errorf("overloaded node never offloaded (metrics: %+v)", mb)
	}
	// Offloaded jobs really ran on node A: it served more binds than
	// its own half of the batch.
	if a.RT.Metrics().Binds <= 8 {
		t.Errorf("node A binds = %d, want > 8 (its own share)", a.RT.Metrics().Binds)
	}
}

func TestClusterResultSanity(t *testing.T) {
	// Timing assertions need a scale where modeled sleeps dominate wall
	// noise: 1 model second = 1 wall millisecond.
	clock := sim.NewClock(1e-3)
	cfg := core.Config{CallOverhead: -1}
	a, err := NewNode("a", clock, []gpu.Spec{tinySpec(), tinySpec(), tinySpec()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode("b", clock, []gpu.Spec{tinySpec()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	head := NewHead(clock, a, b)

	res := head.RunOblivious(fastApps(4))
	if res.Failed() != 0 {
		t.Fatal(res.Errors)
	}
	if res.Total < res.Max() {
		t.Errorf("Total %v < Max job %v", res.Total, res.Max())
	}
	if res.Avg <= 0 || res.Avg > res.Total {
		t.Errorf("Avg %v out of range (Total %v)", res.Avg, res.Total)
	}
	// A single MT job takes ~3 model seconds; with 4 GPUs everything
	// should overlap: total well below the ~12s serial sum.
	if res.Total > 8*time.Second {
		t.Errorf("Total %v suspiciously close to serial execution", res.Total)
	}
}

func TestNodeWithoutPeerServesLocally(t *testing.T) {
	clock := sim.NewClock(1e-7)
	n, err := NewNode("solo", clock, []gpu.Spec{tinySpec()},
		core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	// Even with the offload threshold exceeded, a peerless node must
	// fall back to serving locally.
	res := workload.RunBatch(clock, fastApps(3), func(i int) (workload.CUDA, error) {
		return n.Connect()
	})
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	if n.RT.Metrics().Binds != 3 {
		t.Errorf("Binds = %d, want 3", n.RT.Metrics().Binds)
	}
}

// TestThreeNodeRingOffload: offloading composes around a ring of three
// nodes — each overloaded node sheds to the next.
func TestThreeNodeRingOffload(t *testing.T) {
	clock := sim.NewClock(1e-7)
	mk := func(name string, gpus int, threshold int) *Node {
		specs := make([]gpu.Spec, gpus)
		for i := range specs {
			specs[i] = tinySpec()
		}
		n, err := NewNode(name, clock, specs,
			core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: threshold})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	a := mk("a", 1, 2)
	b := mk("b", 1, 2)
	c := mk("c", 4, 0) // the big node absorbs
	a.SetPeer(b)
	b.SetPeer(c)
	c.SetPeer(a)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	// All 12 jobs hit node A simultaneously.
	const n = 12
	barrier := make(chan struct{})
	var connected atomic.Int32
	res := workload.RunBatch(clock, fastApps(n), func(i int) (workload.CUDA, error) {
		conn, err := a.Connect()
		if connected.Add(1) == n {
			close(barrier)
		}
		<-barrier
		return conn, err
	})
	if res.Failed() != 0 {
		t.Fatalf("failures: %v", res.Errors)
	}
	if a.RT.Metrics().Offloaded == 0 {
		t.Error("node A never offloaded")
	}
	// Work reached at least one other node.
	if b.RT.Metrics().Binds+c.RT.Metrics().Binds == 0 {
		t.Error("no work reached the peers")
	}
}
