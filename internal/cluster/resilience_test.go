package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/core"
	"gvrt/internal/faultinject"
	"gvrt/internal/frontend"
	"gvrt/internal/resilience"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

const resBinID = "cluster-resilience-bin"

func init() {
	api.RegisterKernelImpl(resBinID, "inc", func(mem api.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := 0; i < int(scalars[0]); i++ {
			buf[i]++
		}
		return nil
	})
}

// resJob pushes one data-checked roundtrip through a deadline-bounded
// connection to node b: register, malloc, seed, 4 increments, verify.
func resJob(b *Node, seed byte) error {
	conn := transport.WithDeadline(b.Dial(), b.clock, 5*time.Minute)
	c := frontend.Connect(conn)
	defer c.Close()
	if err := c.RegisterFatBinary(api.FatBinary{
		ID:      resBinID,
		Kernels: []api.KernelMeta{{Name: "inc", BaseTime: time.Millisecond}},
	}); err != nil {
		return err
	}
	p, err := c.Malloc(1 << 12)
	if err != nil {
		return err
	}
	if err := c.MemcpyHD(p, []byte{seed, seed, seed, seed}); err != nil {
		return err
	}
	for k := 0; k < 4; k++ {
		if err := c.Launch(api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{4}}); err != nil {
			return err
		}
	}
	out, err := c.MemcpyDH(p, 4)
	if err != nil {
		return err
	}
	for i := range out {
		if out[i] != seed+4 {
			return fmt.Errorf("data corruption: byte %d = %d, want %d", i, out[i], seed+4)
		}
	}
	return nil
}

// TestPartitionAndHealSelfHeals is the resilience layer's acceptance
// test: a seeded fault plan partitions the overloaded node's peer link
// mid-offload AND kills its only device; application threads keep
// hammering the node throughout. Then both faults clear — the breaker
// must re-close off a half-open probe, the device must be re-admitted
// with a device-level recovery event, and every application thread must
// finish with verified data, with no call outliving its deadline.
func TestPartitionAndHealSelfHeals(t *testing.T) {
	plan := faultinject.Plan{
		Name: "partition-and-heal",
		Seed: 20260805,
		Rules: []faultinject.Rule{
			// B's outbound link partitions for good mid-offload...
			{Point: faultinject.PointClusterLink, Label: "node-b", AtNth: 8, Action: faultinject.ActPartition},
			// ...and B's only GPU dies shortly after its 5th kernel.
			{Point: faultinject.PointDeviceExec, Label: "gpu0", AtNth: 5, Action: faultinject.ActFailDevice},
		},
	}
	plane := faultinject.New(plan)
	rec := trace.NewRecorder(1024)
	cfgA := core.Config{CallOverhead: -1, VGPUsPerDevice: 1}
	cfgB := core.Config{CallOverhead: -1, VGPUsPerDevice: 1, OffloadThreshold: 2,
		Faults: plane, Trace: rec}
	_, _, b, _ := newTestCluster(t, cfgA, cfgB)

	// Application threads: keep issuing data-checked roundtrips (feeding
	// the offload path, the link and the device) until the cluster has
	// healed AND their latest roundtrip verified clean. Failures during
	// the outage are retried by reconnecting — the connection-level
	// resilience contract: a thread never hangs, so it can always try
	// again.
	const jobs = 10
	healed := make(chan struct{})
	var unfinished atomic.Int32
	unfinished.Store(jobs)
	var wg sync.WaitGroup
	deadline := time.Now().Add(60 * time.Second)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				err := resJob(b, byte(j))
				if err == nil {
					select {
					case <-healed:
						unfinished.Add(-1)
						return
					default:
						continue // keep the pressure on until the faults clear
					}
				}
				time.Sleep(time.Millisecond)
			}
		}(j)
	}

	// Phase 1: both faults fire under load.
	link := plane.Hook(faultinject.PointClusterLink, "node-b")
	dev := b.CRT.Device(0)
	waitFor(t, deadline, "link partition and device failure", func() bool {
		return link.Down() && dev.Failed()
	})
	// Phase 2: the breaker trips open — offload attempts and dead
	// proxied calls supply the consecutive failures.
	waitFor(t, deadline, "breaker trip", func() bool {
		return b.Breaker().State() != resilience.BreakerClosed
	})

	// Phase 3: both faults clear (partition heals, operator restores the
	// device).
	link.Heal()
	dev.Restore()
	close(healed)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(time.Until(deadline) + 5*time.Second):
		t.Fatalf("application threads hung after heal; reproduce with plan %q seed %d",
			plan.Name, plane.Seed())
	}
	if n := unfinished.Load(); n != 0 {
		t.Fatalf("%d/%d application threads never finished a verified roundtrip after heal", n, jobs)
	}

	// Phase 4: the self-healing evidence. The breaker re-closed off a
	// half-open probe...
	waitFor(t, time.Now().Add(15*time.Second), "breaker re-close", func() bool {
		return b.Breaker().State() == resilience.BreakerClosed
	})
	if b.Breaker().Trips() == 0 {
		t.Error("breaker never tripped; the test exercised nothing")
	}
	m := b.RT.Metrics()
	if m.BreakerTrips == 0 {
		t.Errorf("BreakerTrips metric = 0, want > 0")
	}
	// ...and the device was re-admitted, with the device-level recovery
	// event.
	waitFor(t, time.Now().Add(15*time.Second), "device re-admission", func() bool {
		return b.RT.Metrics().Readmissions > 0
	})
	found := false
	for _, e := range rec.Filter(trace.KindRecovery) {
		if e.Device == 0 && e.Detail == "device re-admitted" {
			found = true
		}
	}
	if !found {
		t.Error("no device-level recovery event in node B's trace")
	}
	if evs := rec.Filter(trace.KindBreakerTrip); len(evs) == 0 {
		t.Error("no breaker-trip event in node B's trace")
	}
	if evs := rec.Filter(trace.KindBreakerHeal); len(evs) == 0 {
		t.Error("no breaker-heal event in node B's trace")
	}
	t.Logf("self-heal: trips=%d readmissions=%d retries=%d offloaded=%d sheds=%d",
		m.BreakerTrips, b.RT.Metrics().Readmissions, m.RetriesSpent, m.Offloaded, m.Sheds)
}

// waitFor polls cond until it holds or the wall deadline passes.
func waitFor(t *testing.T, deadline time.Time, what string, cond func() bool) {
	t.Helper()
	for !cond() {
		if !time.Now().Before(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
