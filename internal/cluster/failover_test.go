package cluster

import (
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/ckptlog"
	"gvrt/internal/core"
	"gvrt/internal/failover"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/resilience"
	"gvrt/internal/sim"
)

// connectFull opens a node connection with the full client surface
// (SessionID, Resume, Stats) rather than the workload.CUDA subset.
func connectFull(t *testing.T, n *Node) *frontend.Client {
	t.Helper()
	c, err := n.Connect()
	if err != nil {
		t.Fatal(err)
	}
	return c.(*frontend.Client)
}

// failoverBinID registers a deterministic increment kernel for data
// verification across a node takeover.
const failoverBinID = "cluster-failover-bin"

func failoverBinary() api.FatBinary {
	return api.FatBinary{
		ID:      failoverBinID,
		Kernels: []api.KernelMeta{{Name: "inc", BaseTime: time.Millisecond}},
	}
}

func init() {
	api.RegisterKernelImpl(failoverBinID, "inc", func(mem api.KernelMemory, scalars []uint64) error {
		buf, err := mem.Arg(0)
		if err != nil {
			return err
		}
		for i := 0; i < int(scalars[0]); i++ {
			buf[i]++
		}
		return nil
	})
}

// TestFencedPermanentNoRetryBudget is the offload-path regression for
// the fencing satellite: a deposed owner's mutating call must surface
// ErrFenced through the retry-wrapped client WITHOUT spending any retry
// budget — retrying a fenced write can never succeed (the lease moved),
// and burning tokens on it would slow down real transient recovery.
func TestFencedPermanentNoRetryBudget(t *testing.T) {
	clock := sim.NewClock(1e-7)
	table := failover.NewTable(5*time.Second, clock.Now)
	n, err := NewNode("node-a", clock, []gpu.Spec{tinySpec()},
		core.Config{CallOverhead: -1, Leases: table})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	c := connectFull(t, n) // retry-wrapped, like every cluster client
	defer c.Close()
	if _, err := c.Malloc(64); err != nil {
		t.Fatal(err)
	}
	session, err := c.SessionID()
	if err != nil || session == 0 {
		t.Fatalf("SessionID = %d, %v", session, err)
	}
	if l, ok := table.Lookup(session); !ok || l.Owner != "node-a" {
		t.Fatalf("lease after connect = %+v, %v; want owned by node-a", l, ok)
	}

	// Another node steals ownership (modeled as a revocation: epoch
	// bumps, owner cleared — the deposed node's epoch can never match
	// again).
	table.Revoke(session)

	if _, err := c.Malloc(64); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("mutating call after revoke err = %v, want ErrFenced", err)
	}
	m := n.RT.Metrics()
	if m.RetriesSpent != 0 {
		t.Errorf("RetriesSpent = %d, want 0: ErrFenced must be classified permanent", m.RetriesSpent)
	}
	if m.FenceRejections == 0 {
		t.Error("FenceRejections = 0, want >= 1")
	}

	// Non-mutating calls (stats) still work on the deposed connection so
	// operators can observe a fenced node.
	if _, err := c.Stats(); err != nil {
		t.Errorf("Stats on fenced session: %v", err)
	}
}

// TestAutoFailover drives the automatic path end to end: a journaled
// session runs on node A, node A dies without releasing its lease, and
// node B's failover monitor — watching the shared lease table — steals
// the expired lease, adopts the session from A's journal directory, and
// serves the client's resume with every acknowledged kernel intact.
func TestAutoFailover(t *testing.T) {
	clock := sim.NewClock(1e-7)
	table := failover.NewTable(2*time.Second, clock.Now)
	dir := t.TempDir()

	j1, rec1, err := ckptlog.Open(dir, ckptlog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewNode("node-a", clock, []gpu.Spec{tinySpec()},
		core.Config{CallOverhead: -1, Leases: table})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.RT.RecoverFromJournal(rec1); err != nil {
		t.Fatal(err)
	}
	if err := a.RT.AttachJournal(j1); err != nil {
		t.Fatal(err)
	}
	// The target's own sessions start far above the source's so adopted
	// IDs never collide.
	b, err := NewNode("node-b", clock, []gpu.Spec{tinySpec()},
		core.Config{CallOverhead: -1, Leases: table, SessionBase: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c1 := connectFull(t, a)
	if err := c1.RegisterFatBinary(failoverBinary()); err != nil {
		t.Fatal(err)
	}
	p, err := c1.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.MemcpyHD(p, []byte{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	inc := api.LaunchCall{Kernel: "inc", PtrArgs: []api.DevPtr{p}, Scalars: []uint64{3}}
	for i := 0; i < 2; i++ {
		if err := c1.Launch(inc); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := c1.Launch(inc); err != nil {
			t.Fatal(err)
		}
	}
	session, err := c1.SessionID()
	if err != nil || session == 0 {
		t.Fatalf("SessionID = %d, %v", session, err)
	}

	// Node A dies: the journal freezes (a SIGKILL drops the teardown
	// release record) and the node stops renewing its lease. An
	// in-process Close still runs the graceful teardown — which releases
	// the lease — so re-plant node-a's ownership afterwards: that is
	// exactly the table state a real SIGKILL leaves behind.
	j1.Close()
	c1.Close()
	a.Close()
	if _, err := table.Acquire(session, "node-a"); err != nil {
		t.Fatal(err)
	}

	mon := b.StartFailover(table, func(int64) string { return dir })
	defer mon.Stop()

	// The lease expires in model time almost immediately at this clock
	// scale; poll in wall time so the monitor goroutine gets scheduled.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := b.RT.OrphanSessions(); len(got) == 1 && got[0] == session {
			break
		}
		if time.Now().After(deadline) {
			promoted, failed, limited := mon.Counts()
			t.Fatalf("monitor never adopted session %d (promoted %d, failed %d, limited %d, orphans %v)",
				session, promoted, failed, limited, b.RT.OrphanSessions())
		}
		time.Sleep(time.Millisecond)
	}
	if l, ok := table.Lookup(session); !ok || l.Owner != "node-b" {
		t.Fatalf("lease after failover = %+v, %v; want owned by node-b", l, ok)
	}
	// Stop the monitor before serving the resumed client: at this clock
	// scale every wall-microsecond gap between calls is model-minutes,
	// so the idle lease perpetually re-expires and the monitor would
	// keep re-stealing (and epoch-bumping) it mid-conversation.
	mon.Stop()

	// The client reconnects to the new owner and resumes: 2 committed +
	// 3 replayed + 1 fresh increments.
	c2 := connectFull(t, b)
	defer c2.Close()
	if err := c2.Resume(session); err != nil {
		t.Fatal(err)
	}
	if err := c2.RegisterFatBinary(failoverBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Launch(inc); err != nil {
		t.Fatal(err)
	}
	out, err := c2.MemcpyDH(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{16, 26, 36}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("data after failover = %v, want %v", out, want)
		}
	}
}

// TestFailoverStormLimiter: a node expiring many leases at once cannot
// trigger unbounded concurrent promotions — the storm budget caps the
// burst and the overflow is deferred instead of adopted all at once.
// The budget here deliberately never refills, so the cap is exact and
// deterministic regardless of how fast model time runs.
func TestFailoverStormLimiter(t *testing.T) {
	clock := sim.NewClock(1e-7)
	table := failover.NewTable(time.Second, clock.Now)
	// 3x the burst cap of expired sessions, owned by a dead node.
	const sessions = 3 * DefaultMigrationStormCap
	for i := int64(1); i <= sessions; i++ {
		if _, err := table.Acquire(i, "dead-node"); err != nil {
			t.Fatal(err)
		}
	}
	clock.Sleep(2 * time.Second) // expire them all

	mon := failover.StartMonitor(failover.MonitorConfig{
		Table:   table,
		Owner:   "node-b",
		Sleep:   clock.Sleep,
		Limit:   resilience.NewBudget(DefaultMigrationStormCap, 0, clock.Now),
		Promote: func(session int64) error { return nil },
	})
	defer mon.Stop()

	// Wait (in wall time, so the monitor goroutine runs) for the burst
	// to be capped: exactly the budget's worth of promotions, the rest
	// limited.
	deadline := time.Now().Add(10 * time.Second)
	for {
		promoted, _, limited := mon.Counts()
		if promoted == DefaultMigrationStormCap && limited > 0 {
			break
		}
		if promoted > DefaultMigrationStormCap {
			t.Fatalf("promoted %d sessions, want at most the burst cap %d", promoted, DefaultMigrationStormCap)
		}
		if time.Now().After(deadline) {
			_, failed, _ := mon.Counts()
			t.Fatalf("storm never capped: promoted %d, failed %d, limited %d", promoted, failed, limited)
		}
		time.Sleep(time.Millisecond)
	}
}
