// Package cluster implements the cluster-level substrate of the
// paper's evaluation (§2, §5.4): a TORQUE-like batch resource manager
// (the head node) dispatching jobs to compute nodes, each of which runs
// its own CUDA runtime and — optionally — a gvrt runtime daemon.
//
// Two dispatch modes reproduce the paper's configurations:
//
//   - GPU-aware (native TORQUE + bare CUDA runtime): the head knows the
//     number of GPUs per node and "serializes the execution of
//     concurrent jobs by enqueuing them on the head node and submitting
//     them to the compute nodes only when a GPU becomes available";
//   - GPU-oblivious (TORQUE + gvrt): the GPUs are hidden from the head,
//     which "divides the workload equally between the nodes"; sharing,
//     queuing and (when enabled) inter-node offloading happen inside
//     the per-node gvrt runtimes.
package cluster

import (
	"fmt"
	"sync"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/core"
	"gvrt/internal/ctrlplane"
	"gvrt/internal/cudart"
	"gvrt/internal/failover"
	"gvrt/internal/faultinject"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/obs"
	"gvrt/internal/resilience"
	"gvrt/internal/sim"
	"gvrt/internal/transport"
	"gvrt/internal/workload"
)

// Resilience defaults for the peer link. All durations are model time.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that
	// trips the peer-link circuit breaker open.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker refuses
	// traffic before admitting a half-open probe.
	DefaultBreakerCooldown = 500 * time.Millisecond
	// DefaultPeerCallDeadline bounds every proxied call to the peer.
	// Very generous on purpose: an offloaded thread legitimately queues
	// for model-minutes on the peer's waiting list behind long kernels,
	// so the deadline only catches genuine hangs (a partition that bit
	// mid-rendezvous), never load. Fault-plane partitions surface as
	// errors, not hangs, so this is the backstop, not the first line.
	DefaultPeerCallDeadline = time.Hour
	// DefaultProbeInterval is the half-open probe monitor's pace.
	DefaultProbeInterval = 250 * time.Millisecond
	// DefaultPromoteBackoffBase / Cap shape the decorrelated-jitter
	// backoff between failed failover promotions.
	DefaultPromoteBackoffBase = 100 * time.Millisecond
	DefaultPromoteBackoffCap  = 2 * time.Second
	// DefaultMigrationStormCap is the failover storm limiter: at most
	// this many promotion attempts in a burst, refilled at
	// DefaultMigrationStormRefill per model second, so a flapping node
	// expiring dozens of leases cannot melt the cluster with concurrent
	// image adoptions.
	DefaultMigrationStormCap    = 4
	DefaultMigrationStormRefill = 2.0
)

// Node is one compute node: its GPUs, its CUDA runtime and its gvrt
// runtime daemon.
type Node struct {
	Name string
	CRT  *cudart.Runtime
	RT   *core.Runtime

	clock *sim.Clock
	// link is the fault plane's hook for this node's outbound peer
	// connection (PointClusterLink, labeled with the node name); nil
	// without a matching plan. A sticky partition makes dialPeer fail —
	// so new offloads fall back to local service — and tears down
	// in-flight proxied calls with a connection error.
	link *faultinject.Hook
	// breaker guards the outbound peer link: after
	// DefaultBreakerThreshold consecutive dial/call failures it opens,
	// shouldOffload stops attempting the peer, and the probe monitor
	// pings the link until it heals (half-open → closed).
	breaker *resilience.Breaker
	// retrier is shared by every client the node vends: transparent
	// retries of transient codes under one node-wide token budget.
	retrier *resilience.Retrier

	mu           sync.Mutex
	peer         *Node
	probeRunning bool
	wg           sync.WaitGroup
	probeWG      sync.WaitGroup
	stop         chan struct{}
	stopOnce     sync.Once
}

// NewNode builds a compute node with the given devices. cfg configures
// the node's gvrt runtime; its PeerDial is wired by SetPeer, so leave
// it nil.
func NewNode(name string, clock *sim.Clock, specs []gpu.Spec, cfg core.Config) (*Node, error) {
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	n := &Node{Name: name, CRT: crt, clock: clock, stop: make(chan struct{})}
	n.link = cfg.Faults.Hook(faultinject.PointClusterLink, name)
	n.breaker = resilience.NewBreaker(name, DefaultBreakerThreshold, DefaultBreakerCooldown, clock.Now)
	if cfg.PeerDial == nil {
		cfg.PeerDial = n.dialPeer
		if cfg.PeerAvailable == nil {
			cfg.PeerAvailable = n.breaker.Ready
		}
	}
	if cfg.NodeName == "" {
		// Lease ownership and migration frames identify nodes by this
		// name; default it to the cluster-visible one.
		cfg.NodeName = name
	}
	rt, err := core.New(crt, cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	n.RT = rt
	n.breaker.OnTransition(
		func() { rt.NoteBreakerTrip(name); n.ensureProbe() },
		func() { rt.NoteBreakerHeal(name) },
	)
	n.retrier = resilience.NewRetrier(resilience.RetryPolicy{
		Budget:  resilience.NewBudget(64, 16, clock.Now),
		RNG:     sim.NewRNG(1).Fork("retry/" + name),
		Sleep:   clock.Sleep,
		OnRetry: rt.NoteRetrySpent,
	})
	return n, nil
}

// AttachCtrlPlane opens (creating if needed) a control-plane store in
// dir and builds the pending-operation manager over this node's
// runtime, running the full boot sequence: operations a previous run
// left mid-flight are resolved (resumed or rolled back), device
// membership is synced, stored quotas and drains are re-applied, and
// the node is registered. The caller closes the returned manager's
// store (Manager.Store().Close()) on shutdown.
func (n *Node) AttachCtrlPlane(dir string, opts ctrlplane.Options, mopts ctrlplane.ManagerOptions) (*ctrlplane.Manager, error) {
	st, err := ctrlplane.Open(dir, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: opening store: %w", n.Name, err)
	}
	mopts.Hooks = n.RT
	if mopts.Now == nil {
		mopts.Now = n.clock.Now
	}
	m := ctrlplane.NewManager(st, mopts)
	if err := m.Resume(); err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: node %s: resuming operations: %w", n.Name, err)
	}
	if err := m.SyncDevices(); err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: node %s: syncing devices: %w", n.Name, err)
	}
	if err := m.ApplyStored(); err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: node %s: re-applying stored state: %w", n.Name, err)
	}
	if err := m.RegisterNode(n.Name, n.RT.DeviceCount()); err != nil {
		st.Close()
		return nil, fmt.Errorf("cluster: node %s: registering: %w", n.Name, err)
	}
	return m, nil
}

// SetPeer wires the offload target (§4.7). A node with no peer serves
// everything locally.
func (n *Node) SetPeer(peer *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peer = peer
}

// Breaker exposes the peer link's circuit breaker (tests, operators).
func (n *Node) Breaker() *resilience.Breaker { return n.breaker }

// dialPeer opens a connection to the peer node's runtime, used by the
// offloading proxy. The dial routes through the link's circuit
// breaker: an open breaker refuses instantly, and dial failures count
// toward tripping it.
func (n *Node) dialPeer() (transport.Conn, error) {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	if peer == nil {
		return nil, fmt.Errorf("cluster: node %s has no offload peer", n.Name)
	}
	if !n.breaker.Allow() {
		return nil, fmt.Errorf("cluster: node %s peer link breaker open", n.Name)
	}
	// The dial itself is one use of the link: a partitioned (or
	// fault-failed) link refuses new offload connections, which makes
	// the connection manager fall back to serving locally.
	if dec := n.link.Check(); dec.Drop || dec.Err != nil {
		n.breaker.Failure()
		if dec.Err != nil {
			return nil, fmt.Errorf("cluster: node %s peer link: %w", n.Name, dec.Err)
		}
		return nil, fmt.Errorf("cluster: node %s peer link partitioned", n.Name)
	}
	c, s := transport.Pipe()
	peer.wg.Add(1)
	go func() {
		defer peer.wg.Done()
		// Offloaded threads are served directly (they are not
		// re-offloaded: the paper's offloading is one hop).
		peer.RT.Serve(s)
	}()
	// A successful dial resolves a half-open probe in the breaker's
	// favour; per-call outcomes keep adjusting it below.
	n.breaker.Success()
	// Every proxied call re-consults the link (a partition firing
	// mid-offload drops the established connection), is bounded by the
	// call deadline (no proxied call outlives it), and feeds the
	// breaker (timeouts and drops mid-stream trip it too).
	conn := transport.WithFaults(c, n.link, n.clock.Sleep)
	conn = transport.WithDeadline(conn, n.clock, DefaultPeerCallDeadline)
	return &observedConn{inner: conn, breaker: n.breaker, now: n.clock.Now, note: n.RT.NotePeerCall}, nil
}

// observedConn feeds every call outcome on a peer connection to the
// link's circuit breaker and its model-time round trip to the node's
// peer-call latency histogram.
type observedConn struct {
	inner   transport.Conn
	breaker *resilience.Breaker
	now     func() time.Duration
	note    func(time.Duration)
}

func (o *observedConn) Call(call api.Call) (api.Reply, error) {
	start := o.now()
	r, err := o.inner.Call(call)
	o.note(o.now() - start)
	if err != nil {
		o.breaker.Failure()
	} else {
		o.breaker.Success()
	}
	return r, err
}

func (o *observedConn) Close() error { return o.inner.Close() }

// ensureProbe starts the half-open probe monitor; called when the
// breaker trips. The monitor is lazy — it runs only while the breaker
// is non-closed — so healthy clusters carry no extra goroutine.
func (n *Node) ensureProbe() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.probeRunning {
		return
	}
	select {
	case <-n.stop:
		return
	default:
	}
	n.probeRunning = true
	n.probeWG.Add(1)
	go n.probeMonitor()
}

// probeMonitor pings the peer link every probe interval while the
// breaker is open, re-admitting the link (breaker re-closes) as soon
// as a half-open probe succeeds. It exits once the breaker is closed;
// the next trip restarts it.
func (n *Node) probeMonitor() {
	defer n.probeWG.Done()
	for {
		select {
		case <-n.stop:
			n.mu.Lock()
			n.probeRunning = false
			n.mu.Unlock()
			return
		default:
		}
		n.clock.Sleep(DefaultProbeInterval)
		n.mu.Lock()
		if n.breaker.Ready() {
			n.probeRunning = false
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		if !n.breaker.Allow() {
			continue // cooldown still running, or another probe in flight
		}
		if err := n.pingPeer(); err != nil {
			n.breaker.Failure()
		} else {
			n.breaker.Success()
		}
	}
}

// pingPeer performs the breaker's half-open probe: one PingCall over a
// fresh link-faulted, deadline-bounded connection. It is the cheapest
// evidence that the partition healed — no real work rides on it.
func (n *Node) pingPeer() error {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	if peer == nil {
		return fmt.Errorf("cluster: node %s has no offload peer", n.Name)
	}
	if dec := n.link.Check(); dec.Drop || dec.Err != nil {
		if dec.Err != nil {
			return dec.Err
		}
		return fmt.Errorf("cluster: node %s peer link partitioned", n.Name)
	}
	c, s := transport.Pipe()
	peer.wg.Add(1)
	go func() {
		defer peer.wg.Done()
		peer.RT.Serve(s)
	}()
	conn := transport.WithFaults(c, n.link, n.clock.Sleep)
	conn = transport.WithDeadline(conn, n.clock, DefaultProbeInterval)
	defer func() { _ = conn.Close() }()
	_, err := conn.Call(api.PingCall{})
	return err
}

// Dial opens a raw client connection to this node, routed through the
// connection manager (HandleConn) so offloading and admission control
// apply. Callers that need to wrap the conn (deadlines, observers)
// before attaching a frontend use this; Connect is the common path.
func (n *Node) Dial() transport.Conn {
	c, s := transport.Pipe()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.RT.HandleConn(s)
	}()
	return c
}

// Connect opens a gvrt client connection to this node, routed through
// the connection manager so the offloading decision applies. The
// client transparently retries transient failures (device re-bind,
// load shed) under the node's shared retry budget.
func (n *Node) Connect() (workload.CUDA, error) {
	return frontend.Connect(n.Dial()).WithRetry(n.retrier), nil
}

// StartFailover launches this node's failover monitor over the
// cluster's shared lease table (the same Table wired into every node's
// Config.Leases): every session whose owner's lease expired has its
// lease stolen for this node and its durable state adopted from the
// dead owner's journal directory, reported by journalDirFor. Promotion
// retries use decorrelated-jitter backoff, and a storm limiter bounds
// concurrent adoptions after a mass expiry. Stop the returned monitor
// before Close.
func (n *Node) StartFailover(table *failover.Table, journalDirFor func(session int64) string) *failover.Monitor {
	return failover.StartMonitor(failover.MonitorConfig{
		Table:   table,
		Owner:   n.RT.NodeName(),
		Sleep:   n.clock.Sleep,
		Limit:   resilience.NewBudget(DefaultMigrationStormCap, DefaultMigrationStormRefill, n.clock.Now),
		Backoff: resilience.NewBackoff(DefaultPromoteBackoffBase, DefaultPromoteBackoffCap, sim.NewRNG(1).Fork("failover/"+n.Name)),
		Logf:    n.RT.Logf,
		Promote: func(session int64) error {
			dir := journalDirFor(session)
			if dir == "" {
				return fmt.Errorf("cluster: node %s: no journal dir for session %d", n.Name, session)
			}
			// AdoptJournalDir is idempotent per session, so several
			// expired sessions sharing one journal adopt in one pass and
			// the rest resolve as already-known.
			_, err := n.RT.AdoptJournalDir(dir)
			return err
		},
	})
}

// ConnectBare opens a bare CUDA runtime client on the given local
// device (the native-TORQUE baseline path).
func (n *Node) ConnectBare(device int) (workload.CUDA, error) {
	return workload.NewBareClient(n.CRT, device)
}

// GPUs reports the node's physical device count.
func (n *Node) GPUs() int { return n.CRT.DeviceCount() }

// Close shuts the node down after all in-flight connections drain.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.RT.Close()
	n.wg.Wait()
	n.probeWG.Wait()
}

// FleetCollector builds the cluster-scoped stats collector over a head
// node: self's snapshot is read in-process, every peer is pulled over a
// fresh client connection — the same StatsCall transport gvrt-top uses —
// so aggregation needs no new wire protocol. Mount the result as the
// opserver Source.Fleet on the head node to enable /metrics?scope=cluster.
func FleetCollector(self *Node, peers ...*Node) *obs.Collector {
	c := obs.NewCollector(self.Name, self.RT.StatsSnapshot)
	for _, p := range peers {
		if p == self {
			continue
		}
		c.AddPeer(p.Name, func() (api.RuntimeStats, error) {
			cl := frontend.Connect(p.Dial())
			defer cl.Close()
			return cl.Stats()
		})
	}
	return c
}

// FleetCollector builds the head's cluster-wide collector, anchored on
// its first node.
func (h *Head) FleetCollector() *obs.Collector {
	if len(h.nodes) == 0 {
		return nil
	}
	return FleetCollector(h.nodes[0], h.nodes[1:]...)
}

// Head is the TORQUE-like cluster resource manager.
type Head struct {
	clock *sim.Clock
	nodes []*Node
}

// NewHead builds a head managing the given compute nodes.
func NewHead(clock *sim.Clock, nodes ...*Node) *Head {
	return &Head{clock: clock, nodes: nodes}
}

// Nodes returns the managed nodes.
func (h *Head) Nodes() []*Node { return h.nodes }

// RunOblivious dispatches a batch in the GPU-oblivious mode: jobs are
// split between the nodes round-robin ("TORQUE ... divides the workload
// equally between the two nodes", §5.4) and all submitted immediately;
// each node's gvrt runtime does the fine-grained scheduling.
func (h *Head) RunOblivious(apps []workload.App) workload.BatchResult {
	return workload.RunBatch(h.clock, apps, func(i int) (workload.CUDA, error) {
		return h.nodes[i%len(h.nodes)].Connect()
	})
}

// RunGPUAware dispatches a batch in the native-TORQUE mode: the head
// holds jobs in its queue and releases each to a compute node only when
// one of that node's GPUs is free, running it on the bare CUDA runtime.
func (h *Head) RunGPUAware(apps []workload.App) workload.BatchResult {
	type slot struct {
		node   *Node
		device int
	}
	// Size the pool to the cluster's actual GPU count: a fixed buffer
	// would block the filler loop on clusters with more GPUs than the
	// buffer, deadlocking dispatch before the first job ran.
	total := 0
	for _, n := range h.nodes {
		total += n.GPUs()
	}
	if total < 1 {
		total = 1
	}
	slots := make(chan slot, total)
	for _, n := range h.nodes {
		for d := 0; d < n.GPUs(); d++ {
			slots <- slot{node: n, device: d}
		}
	}
	return workload.RunBatch(h.clock, apps, func(i int) (workload.CUDA, error) {
		s := <-slots
		c, err := s.node.ConnectBare(s.device)
		if err != nil {
			slots <- s
			return nil, err
		}
		return &releasing{CUDA: c, release: func() { slots <- s }}, nil
	})
}

// releasing wraps a client to return its GPU slot to the head's pool
// when the job completes.
type releasing struct {
	workload.CUDA
	release func()
	once    sync.Once
}

func (r *releasing) Close() error {
	err := r.CUDA.Close()
	r.once.Do(r.release)
	return err
}
