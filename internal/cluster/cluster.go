// Package cluster implements the cluster-level substrate of the
// paper's evaluation (§2, §5.4): a TORQUE-like batch resource manager
// (the head node) dispatching jobs to compute nodes, each of which runs
// its own CUDA runtime and — optionally — a gvrt runtime daemon.
//
// Two dispatch modes reproduce the paper's configurations:
//
//   - GPU-aware (native TORQUE + bare CUDA runtime): the head knows the
//     number of GPUs per node and "serializes the execution of
//     concurrent jobs by enqueuing them on the head node and submitting
//     them to the compute nodes only when a GPU becomes available";
//   - GPU-oblivious (TORQUE + gvrt): the GPUs are hidden from the head,
//     which "divides the workload equally between the nodes"; sharing,
//     queuing and (when enabled) inter-node offloading happen inside
//     the per-node gvrt runtimes.
package cluster

import (
	"fmt"
	"sync"

	"gvrt/internal/core"
	"gvrt/internal/cudart"
	"gvrt/internal/faultinject"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/transport"
	"gvrt/internal/workload"
)

// Node is one compute node: its GPUs, its CUDA runtime and its gvrt
// runtime daemon.
type Node struct {
	Name string
	CRT  *cudart.Runtime
	RT   *core.Runtime

	clock *sim.Clock
	// link is the fault plane's hook for this node's outbound peer
	// connection (PointClusterLink, labeled with the node name); nil
	// without a matching plan. A sticky partition makes dialPeer fail —
	// so new offloads fall back to local service — and tears down
	// in-flight proxied calls with a connection error.
	link *faultinject.Hook

	mu   sync.Mutex
	peer *Node
	wg   sync.WaitGroup
}

// NewNode builds a compute node with the given devices. cfg configures
// the node's gvrt runtime; its PeerDial is wired by SetPeer, so leave
// it nil.
func NewNode(name string, clock *sim.Clock, specs []gpu.Spec, cfg core.Config) (*Node, error) {
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	n := &Node{Name: name, CRT: crt, clock: clock}
	n.link = cfg.Faults.Hook(faultinject.PointClusterLink, name)
	if cfg.PeerDial == nil {
		cfg.PeerDial = n.dialPeer
	}
	rt, err := core.New(crt, cfg)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", name, err)
	}
	n.RT = rt
	return n, nil
}

// SetPeer wires the offload target (§4.7). A node with no peer serves
// everything locally.
func (n *Node) SetPeer(peer *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peer = peer
}

// dialPeer opens a connection to the peer node's runtime, used by the
// offloading proxy.
func (n *Node) dialPeer() (transport.Conn, error) {
	n.mu.Lock()
	peer := n.peer
	n.mu.Unlock()
	if peer == nil {
		return nil, fmt.Errorf("cluster: node %s has no offload peer", n.Name)
	}
	// The dial itself is one use of the link: a partitioned (or
	// fault-failed) link refuses new offload connections, which makes
	// the connection manager fall back to serving locally.
	if dec := n.link.Check(); dec.Drop || dec.Err != nil {
		if dec.Err != nil {
			return nil, fmt.Errorf("cluster: node %s peer link: %w", n.Name, dec.Err)
		}
		return nil, fmt.Errorf("cluster: node %s peer link partitioned", n.Name)
	}
	c, s := transport.Pipe()
	peer.wg.Add(1)
	go func() {
		defer peer.wg.Done()
		// Offloaded threads are served directly (they are not
		// re-offloaded: the paper's offloading is one hop).
		peer.RT.Serve(s)
	}()
	// Every proxied call re-consults the link, so a partition that
	// fires mid-offload drops the established connection too; the proxy
	// surfaces that as a clean ErrConnectionClosed to the application.
	return transport.WithFaults(c, n.link, n.clock.Sleep), nil
}

// Connect opens a gvrt client connection to this node, routed through
// the connection manager so the offloading decision applies.
func (n *Node) Connect() (workload.CUDA, error) {
	c, s := transport.Pipe()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		n.RT.HandleConn(s)
	}()
	return frontend.Connect(c), nil
}

// ConnectBare opens a bare CUDA runtime client on the given local
// device (the native-TORQUE baseline path).
func (n *Node) ConnectBare(device int) (workload.CUDA, error) {
	return workload.NewBareClient(n.CRT, device)
}

// GPUs reports the node's physical device count.
func (n *Node) GPUs() int { return n.CRT.DeviceCount() }

// Close shuts the node down after all in-flight connections drain.
func (n *Node) Close() {
	n.RT.Close()
	n.wg.Wait()
}

// Head is the TORQUE-like cluster resource manager.
type Head struct {
	clock *sim.Clock
	nodes []*Node
}

// NewHead builds a head managing the given compute nodes.
func NewHead(clock *sim.Clock, nodes ...*Node) *Head {
	return &Head{clock: clock, nodes: nodes}
}

// Nodes returns the managed nodes.
func (h *Head) Nodes() []*Node { return h.nodes }

// RunOblivious dispatches a batch in the GPU-oblivious mode: jobs are
// split between the nodes round-robin ("TORQUE ... divides the workload
// equally between the two nodes", §5.4) and all submitted immediately;
// each node's gvrt runtime does the fine-grained scheduling.
func (h *Head) RunOblivious(apps []workload.App) workload.BatchResult {
	return workload.RunBatch(h.clock, apps, func(i int) (workload.CUDA, error) {
		return h.nodes[i%len(h.nodes)].Connect()
	})
}

// RunGPUAware dispatches a batch in the native-TORQUE mode: the head
// holds jobs in its queue and releases each to a compute node only when
// one of that node's GPUs is free, running it on the bare CUDA runtime.
func (h *Head) RunGPUAware(apps []workload.App) workload.BatchResult {
	type slot struct {
		node   *Node
		device int
	}
	slots := make(chan slot, 64)
	for _, n := range h.nodes {
		for d := 0; d < n.GPUs(); d++ {
			slots <- slot{node: n, device: d}
		}
	}
	return workload.RunBatch(h.clock, apps, func(i int) (workload.CUDA, error) {
		s := <-slots
		c, err := s.node.ConnectBare(s.device)
		if err != nil {
			slots <- s
			return nil, err
		}
		return &releasing{CUDA: c, release: func() { slots <- s }}, nil
	})
}

// releasing wraps a client to return its GPU slot to the head's pool
// when the job completes.
type releasing struct {
	workload.CUDA
	release func()
	once    sync.Once
}

func (r *releasing) Close() error {
	err := r.CUDA.Close()
	r.once.Do(r.release)
	return err
}
