package cluster

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/core"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/opserver"
	"gvrt/internal/sim"
)

// smallMemSpec is a device with just 1 MiB left after the two vGPU
// context reservations (2 x 64 MiB), so two 600 KiB working sets
// cannot coexist — forcing inter-application swaps with real bytes.
func smallMemSpec() gpu.Spec {
	return gpu.Spec{Name: "t", SMs: 1, CoresPerSM: 1, ClockMHz: 1000,
		MemBytes: 129 << 20, Speed: 1, BandwidthBps: 1 << 40}
}

func obsBinary() api.FatBinary {
	return api.FatBinary{
		ID:      "cluster-obs-bin",
		Kernels: []api.KernelMeta{{Name: "work", BaseTime: time.Millisecond}},
	}
}

// tenantClient opens a client on n joined to the given tenant with a
// dirty 600 KiB working set.
func tenantClient(t *testing.T, n *Node, tenant string) (*frontend.Client, api.DevPtr) {
	t.Helper()
	c := frontend.Connect(n.Dial())
	if err := c.RegisterFatBinary(obsBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTenant(tenant); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(600 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MemcpyHD(p, make([]byte, 600<<10)); err != nil {
		t.Fatal(err)
	}
	return c, p
}

// TestClusterAttributionConservation is the tentpole acceptance check:
// two tenants spread over two nodes, with swap pressure on one of them,
// must have >= 99% of the cluster's GPU time and swap bytes attributed
// to a tenant in the fleet-merged view (here 100%: every session joins
// a tenant), and the per-tenant usage endpoint plus the cluster
// Prometheus exposition must agree with it.
func TestClusterAttributionConservation(t *testing.T) {
	clock := sim.NewClock(1e-7)
	cfg := func() core.Config {
		return core.Config{CallOverhead: -1, BindBackoff: time.Millisecond, VGPUsPerDevice: 2}
	}
	n1, err := NewNode("node-1", clock, []gpu.Spec{smallMemSpec()}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	n2, err := NewNode("node-2", clock, []gpu.Spec{smallMemSpec()}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close(); n2.Close() })

	// Node 1: tenants alpha and beta contend for one small device; the
	// alternating launches force inter-app swaps of dirty data.
	a, pa := tenantClient(t, n1, "alpha")
	b, pb := tenantClient(t, n1, "beta")
	defer a.Close()
	defer b.Close()
	// Node 2: alpha runs alone (the cross-node attribution leg).
	c, pc := tenantClient(t, n2, "alpha")
	defer c.Close()

	idle := func() { time.Sleep(2 * time.Millisecond) }
	launch := func(cl *frontend.Client, p api.DevPtr) {
		t.Helper()
		if err := cl.Launch(api.LaunchCall{Kernel: "work", PtrArgs: []api.DevPtr{p}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		launch(a, pa)
		idle()
		launch(b, pb)
		idle()
		launch(c, pc)
	}
	for _, cl := range []*frontend.Client{a, b, c} {
		if err := cl.Synchronize(); err != nil {
			t.Fatal(err)
		}
	}

	fleet := FleetCollector(n1, n2)
	cs := fleet.Collect()
	if len(cs.Unreachable) != 0 {
		t.Fatalf("unreachable nodes: %v", cs.Unreachable)
	}
	m := cs.Merged
	if m.GPUTimeNS == 0 {
		t.Fatal("no GPU time recorded")
	}
	if m.SwapBytes == 0 {
		t.Fatal("no swap bytes recorded — the pressure leg of the test is dead")
	}
	if len(m.Tenants) != 2 {
		t.Fatalf("merged tenants = %v, want alpha+beta", m.Tenants)
	}

	var gpu, swap int64
	for _, u := range m.Tenants {
		gpu += u.GPUTimeNS
		swap += u.SwapBytes
	}
	if frac := float64(gpu) / float64(m.GPUTimeNS); frac < 0.99 || frac > 1.0 {
		t.Errorf("attributed GPU time fraction = %.4f (%d of %d), want [0.99, 1]", frac, gpu, m.GPUTimeNS)
	}
	if frac := float64(swap) / float64(m.SwapBytes); frac < 0.99 || frac > 1.0 {
		t.Errorf("attributed swap bytes fraction = %.4f (%d of %d), want [0.99, 1]", frac, swap, m.SwapBytes)
	}

	// alpha ran on both nodes: its merged usage must exceed what either
	// node alone attributes, proving cross-node folding.
	alphaMerged := m.Tenants["alpha"].GPUTimeNS
	for name, ns := range cs.Nodes {
		if local := ns.Tenants["alpha"].GPUTimeNS; local >= alphaMerged {
			t.Errorf("node %s alone attributes %d >= merged %d for alpha", name, local, alphaMerged)
		}
	}

	// The operator surfaces must tell the same story: per-tenant usage
	// endpoint (local and cluster scope) and the cluster exposition.
	h := opserver.Handler(opserver.Source{
		Stats: n1.RT.StatsSnapshot,
		Now:   clock.Now,
		Name:  n1.Name,
		Fleet: fleet,
	})
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		if w.Code != 200 {
			t.Fatalf("GET %s = %d: %s", path, w.Code, w.Body)
		}
		return w
	}
	var usage api.TenantUsage
	if err := json.NewDecoder(get("/tenants/alpha/usage?scope=cluster").Body).Decode(&usage); err != nil {
		t.Fatal(err)
	}
	if usage.GPUTimeNS != alphaMerged {
		t.Errorf("/tenants/alpha/usage?scope=cluster GPU time = %d, want %d", usage.GPUTimeNS, alphaMerged)
	}
	var local api.TenantUsage
	if err := json.NewDecoder(get("/tenants/alpha/usage").Body).Decode(&local); err != nil {
		t.Fatal(err)
	}
	if local.GPUTimeNS != cs.Nodes["node-1"].Tenants["alpha"].GPUTimeNS {
		t.Errorf("local usage = %d, want node-1's %d", local.GPUTimeNS, cs.Nodes["node-1"].Tenants["alpha"].GPUTimeNS)
	}

	body := get("/metrics?scope=cluster").Body.String()
	for _, want := range []string{
		`gvrt_tenant_gpu_seconds_total{tenant="alpha"}`,
		`gvrt_tenant_gpu_seconds_total{tenant="beta"}`,
		`gvrt_tenant_swap_bytes_total{tenant=`,
		"gvrt_cluster_nodes 2",
		"gvrt_gpu_seconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("cluster exposition missing %q", want)
		}
	}
	wantLine := fmt.Sprintf("gvrt_tenant_gpu_seconds_total{tenant=%q} ", "alpha")
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, wantLine) {
			var v float64
			if _, err := fmt.Sscanf(line[len(wantLine):], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			if got := int64(v * 1e9); !within(got, alphaMerged, alphaMerged/100+1) {
				t.Errorf("exposition alpha GPU seconds = %d ns, want ~%d", got, alphaMerged)
			}
		}
	}
}

func within(got, want, tol int64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
