package gpu

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
	"gvrt/internal/sim"
)

// Extra fixed costs of device memory management calls (model time).
const (
	// MallocTime models cudaMalloc's synchronous round trip.
	MallocTime = 100 * time.Microsecond
	// FreeTime models cudaFree's synchronous round trip.
	FreeTime = 50 * time.Microsecond
)

// Device is one simulated GPU. All methods are safe for concurrent use:
// memory-map state is guarded by a mutex, while kernel execution and DMA
// transfers serialise on the execution and copy engines respectively —
// concurrent callers queue exactly as concurrent CUDA contexts queue on
// real hardware.
type Device struct {
	id    int
	spec  Spec
	clock *sim.Clock

	mu    sync.Mutex
	alloc *allocator
	// bufs backs allocations that have carried real data, keyed by
	// allocation base. Synthetic (timing-only) traffic never
	// materialises backing, which keeps multi-gigabyte modeled
	// workloads cheap in host RAM.
	bufs map[api.DevPtr][]byte

	// The execution engine and the two copy engines are independent
	// mutexes, mirroring dual-copy-engine GPUs: an h2d transfer, a d2h
	// transfer and a kernel can all be in flight at once, so modeled
	// transfer time submitted by a background goroutine (prefetch,
	// swap-out) overlaps the modeled execution of the current kernel
	// instead of queueing behind it.
	execMu sync.Mutex // the execution engine: one kernel at a time
	h2dMu  sync.Mutex // host→device copy engine: one DMA transfer at a time
	d2hMu  sync.Mutex // device→host copy engine: one DMA transfer at a time

	failed  atomic.Bool
	removed atomic.Bool

	// Fault-plane hooks; nil (the common case) means no plan targets
	// this device and each site pays exactly one nil check.
	execHook   *faultinject.Hook
	dmaHook    *faultinject.Hook
	mallocHook *faultinject.Hook

	launches atomic.Int64
	h2dBytes atomic.Int64
	d2hBytes atomic.Int64
	h2dOps   atomic.Int64
	d2hOps   atomic.Int64
	busy     atomic.Int64 // model ns the execution engine was held
}

// Stats is a snapshot of a device's activity counters.
type Stats struct {
	Launches int64
	H2DBytes int64
	D2HBytes int64
	// H2DOps and D2HOps count individual DMA transfers; bulk transfer
	// coalescing shows up as fewer H2DOps for the same H2DBytes.
	H2DOps int64
	D2HOps int64
	// Busy is the cumulative model time the execution engine was
	// occupied by kernels.
	Busy time.Duration
}

// NewDevice creates a device with the given ordinal and specification.
// Each device owns a disjoint slice of the global address space so
// device pointers from different GPUs can never be confused.
func NewDevice(id int, spec Spec, clock *sim.Clock) *Device {
	base := uint64(id+1) << 40
	return &Device{
		id:    id,
		spec:  spec,
		clock: clock,
		alloc: newAllocator(base, spec.MemBytes),
		bufs:  make(map[api.DevPtr][]byte),
	}
}

// ID returns the device ordinal.
func (d *Device) ID() int { return d.id }

// Spec returns the device specification.
func (d *Device) Spec() Spec { return d.spec }

// String implements fmt.Stringer.
func (d *Device) String() string { return fmt.Sprintf("GPU%d(%s)", d.id, d.spec.Name) }

// Capacity returns the device memory size.
func (d *Device) Capacity() uint64 { return d.spec.MemBytes }

// Available returns the total free device memory.
func (d *Device) Available() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alloc.available()
}

// LargestFree returns the largest single allocatable block; because of
// fragmentation it can be smaller than Available.
func (d *Device) LargestFree() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alloc.largestFree()
}

// AllocCount returns the number of live allocations.
func (d *Device) AllocCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.alloc.allocCount()
}

// Stats returns a snapshot of the activity counters.
func (d *Device) Stats() Stats {
	return Stats{
		Launches: d.launches.Load(),
		H2DBytes: d.h2dBytes.Load(),
		D2HBytes: d.d2hBytes.Load(),
		H2DOps:   d.h2dOps.Load(),
		D2HOps:   d.d2hOps.Load(),
		Busy:     time.Duration(d.busy.Load()),
	}
}

// Fail marks the device failed: every subsequent operation returns
// ErrDeviceUnavailable until Restore.
func (d *Device) Fail() { d.failed.Store(true) }

// Restore clears the failed state.
func (d *Device) Restore() { d.failed.Store(false) }

// Failed reports whether the device is failed.
func (d *Device) Failed() bool { return d.failed.Load() }

// MarkRemoved flags the device as administratively removed (dynamic
// downgrade); operations fail as on a failed device but the distinction
// is preserved for metrics.
func (d *Device) MarkRemoved() { d.removed.Store(true) }

// Removed reports whether the device was administratively removed.
func (d *Device) Removed() bool { return d.removed.Load() }

// ClearRemoved undoes an administrative removal (control-plane
// readmission): the device becomes usable again once any failed state
// is also cleared with Restore.
func (d *Device) ClearRemoved() { d.removed.Store(false) }

// InstallFaults arms the device's injection sites against plane. Call it
// before the device starts serving (NewDevice has no plane parameter so
// un-faulted construction sites stay untouched). Hooks stay nil when the
// plane has no rule matching this device — or when plane itself is nil —
// so each site pays exactly one nil check.
func (d *Device) InstallFaults(p *faultinject.Plane) {
	label := fmt.Sprintf("gpu%d", d.id)
	d.execHook = p.Hook(faultinject.PointDeviceExec, label)
	d.dmaHook = p.Hook(faultinject.PointDeviceDMA, label)
	d.mallocHook = p.Hook(faultinject.PointDeviceMalloc, label)
}

// applyFault enacts a hook decision: sticky device failure first (so the
// error the caller sees matches the device state), then a model-time
// stall, then the decision's error. Payload corruption is enacted by the
// DMA sites themselves.
func (d *Device) applyFault(dec faultinject.Decision) error {
	if dec.FailDevice {
		d.failed.Store(true)
	}
	if dec.Delay > 0 {
		d.clock.Sleep(dec.Delay)
	}
	return dec.Err
}

// usable returns ErrDeviceUnavailable when the device cannot serve.
func (d *Device) usable() error {
	if d.failed.Load() || d.removed.Load() {
		return api.ErrDeviceUnavailable
	}
	return nil
}

// Malloc reserves n bytes of device memory. It fails with
// ErrMemoryAllocation when no single free block can satisfy the request,
// exactly like cudaMalloc under fragmentation.
func (d *Device) Malloc(n uint64) (api.DevPtr, error) {
	if err := d.usable(); err != nil {
		return 0, err
	}
	if h := d.mallocHook; h != nil {
		if err := d.applyFault(h.Check()); err != nil {
			return 0, err
		}
	}
	d.clock.Sleep(MallocTime)
	d.mu.Lock()
	addr, ok := d.alloc.alloc(n)
	d.mu.Unlock()
	if !ok {
		return 0, api.ErrMemoryAllocation
	}
	return api.DevPtr(addr), nil
}

// Free releases an allocation made by Malloc. Freeing an address that is
// not an allocation base returns ErrInvalidDevicePointer.
func (d *Device) Free(p api.DevPtr) error {
	if err := d.usable(); err != nil {
		return err
	}
	d.clock.Sleep(FreeTime)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.alloc.freeBlock(uint64(p)); err != nil {
		return api.ErrInvalidDevicePointer
	}
	delete(d.bufs, p)
	return nil
}

// resolve maps ptr to (allocation base, offset, allocation size).
func (d *Device) resolve(ptr api.DevPtr) (base api.DevPtr, off, size uint64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, o, ok := d.alloc.resolve(uint64(ptr))
	if !ok {
		return 0, 0, 0, api.ErrInvalidDevicePointer
	}
	n, _ := d.alloc.sizeOf(b)
	return api.DevPtr(b), o, n, nil
}

// dmaTime returns the model duration of moving n bytes over the copy
// engine.
func (d *Device) dmaTime(n uint64) time.Duration {
	bw := d.spec.BandwidthBps
	if bw == 0 {
		bw = 6 << 30
	}
	return MemcpyOverhead + time.Duration(float64(n)/float64(bw)*float64(time.Second))
}

// CopyIn transfers size bytes from host to dst. When data is non-nil it
// carries the real bytes (len(data) == size) and the allocation's
// backing store is updated; when data is nil the transfer is
// timing-and-accounting only. The transfer occupies the copy engine for
// its modeled duration and fails if it would run past the end of the
// allocation.
func (d *Device) CopyIn(dst api.DevPtr, data []byte, size uint64) error {
	if err := d.usable(); err != nil {
		return err
	}
	var corrupt bool
	if h := d.dmaHook; h != nil {
		dec := h.Check()
		corrupt = dec.Corrupt
		if err := d.applyFault(dec); err != nil {
			return err
		}
	}
	if data != nil {
		size = uint64(len(data))
	}
	base, off, alloc, err := d.resolve(dst)
	if err != nil {
		return err
	}
	if off+size > alloc {
		return api.ErrInvalidValue
	}
	d.h2dMu.Lock()
	d.clock.Sleep(d.dmaTime(size))
	d.h2dMu.Unlock()
	if err := d.usable(); err != nil {
		return err
	}
	d.h2dBytes.Add(int64(size))
	d.h2dOps.Add(1)
	if data != nil {
		d.mu.Lock()
		buf := d.backing(base, alloc)
		copy(buf[off:], data)
		if corrupt && size > 0 {
			// ECC-style corruption: one flipped byte in the landed data.
			buf[off] ^= 0xFF
		}
		d.mu.Unlock()
	}
	return nil
}

// CopyInBatch lands several host→device transfers as one copy-engine
// submission: the engine is acquired once and occupied for the sum of
// the per-transfer model times, so timing and accounting stay
// byte-identical to issuing each transfer alone — batching removes only
// the per-transfer engine round trips (lock handoff, clock sleep) that
// dominate small-transfer cost on the host side. Every destination is
// validated before the engine is touched; a batch fails as a whole
// without landing any data.
func (d *Device) CopyInBatch(items []api.HDCopy) error {
	if err := d.usable(); err != nil {
		return err
	}
	type plan struct {
		base    api.DevPtr
		off     uint64
		alloc   uint64
		size    uint64
		corrupt bool
	}
	plans := make([]plan, len(items))
	var total time.Duration
	for i := range items {
		it := &items[i]
		var corrupt bool
		if h := d.dmaHook; h != nil {
			dec := h.Check()
			corrupt = dec.Corrupt
			if err := d.applyFault(dec); err != nil {
				return err
			}
		}
		size := it.Size
		if it.Data != nil {
			size = uint64(len(it.Data))
		}
		base, off, alloc, err := d.resolve(it.Dst)
		if err != nil {
			return err
		}
		if off+size > alloc {
			return api.ErrInvalidValue
		}
		plans[i] = plan{base, off, alloc, size, corrupt}
		total += d.dmaTime(size)
	}
	d.h2dMu.Lock()
	d.clock.Sleep(total)
	d.h2dMu.Unlock()
	if err := d.usable(); err != nil {
		return err
	}
	for i := range items {
		p := &plans[i]
		d.h2dBytes.Add(int64(p.size))
		d.h2dOps.Add(1)
		if items[i].Data != nil {
			d.mu.Lock()
			buf := d.backing(p.base, p.alloc)
			copy(buf[p.off:], items[i].Data)
			if p.corrupt && p.size > 0 {
				buf[p.off] ^= 0xFF
			}
			d.mu.Unlock()
		}
	}
	return nil
}

// CopyOut transfers size bytes from src to the host. The returned slice
// is nil when the allocation has no real backing (synthetic traffic);
// timing and accounting are identical either way.
func (d *Device) CopyOut(src api.DevPtr, size uint64) ([]byte, error) {
	if err := d.usable(); err != nil {
		return nil, err
	}
	var corrupt bool
	if h := d.dmaHook; h != nil {
		dec := h.Check()
		corrupt = dec.Corrupt
		if err := d.applyFault(dec); err != nil {
			return nil, err
		}
	}
	base, off, alloc, err := d.resolve(src)
	if err != nil {
		return nil, err
	}
	if off+size > alloc {
		return nil, api.ErrInvalidValue
	}
	d.d2hMu.Lock()
	d.clock.Sleep(d.dmaTime(size))
	d.d2hMu.Unlock()
	if err := d.usable(); err != nil {
		return nil, err
	}
	d.d2hBytes.Add(int64(size))
	d.d2hOps.Add(1)
	d.mu.Lock()
	defer d.mu.Unlock()
	if buf, ok := d.bufs[base]; ok {
		out := make([]byte, size)
		copy(out, buf[off:])
		if corrupt && size > 0 {
			out[0] ^= 0xFF
		}
		return out, nil
	}
	return nil, nil
}

// CopyOutBatch lands several device→host transfers as one copy-engine
// submission, the d2h mirror of CopyInBatch: the engine is acquired
// once and occupied for the sum of the per-transfer model times, so
// timing and accounting stay byte-identical to issuing each transfer
// alone. Every source is validated before the engine is touched; a
// batch fails as a whole. The returned slice is parallel to items;
// entries are nil for allocations with no real backing.
func (d *Device) CopyOutBatch(items []api.DHCopy) ([][]byte, error) {
	if err := d.usable(); err != nil {
		return nil, err
	}
	type plan struct {
		base    api.DevPtr
		off     uint64
		corrupt bool
	}
	plans := make([]plan, len(items))
	var total time.Duration
	for i := range items {
		it := &items[i]
		var corrupt bool
		if h := d.dmaHook; h != nil {
			dec := h.Check()
			corrupt = dec.Corrupt
			if err := d.applyFault(dec); err != nil {
				return nil, err
			}
		}
		base, off, alloc, err := d.resolve(it.Src)
		if err != nil {
			return nil, err
		}
		if off+it.Size > alloc {
			return nil, api.ErrInvalidValue
		}
		plans[i] = plan{base, off, corrupt}
		total += d.dmaTime(it.Size)
	}
	d.d2hMu.Lock()
	d.clock.Sleep(total)
	d.d2hMu.Unlock()
	if err := d.usable(); err != nil {
		return nil, err
	}
	out := make([][]byte, len(items))
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range items {
		p := &plans[i]
		size := items[i].Size
		d.d2hBytes.Add(int64(size))
		d.d2hOps.Add(1)
		if buf, ok := d.bufs[p.base]; ok {
			data := make([]byte, size)
			copy(data, buf[p.off:])
			if p.corrupt && size > 0 {
				data[0] ^= 0xFF
			}
			out[i] = data
		}
	}
	return out, nil
}

// CopyDD transfers size bytes between two device allocations.
func (d *Device) CopyDD(dst, src api.DevPtr, size uint64) error {
	if err := d.usable(); err != nil {
		return err
	}
	db, doff, dalloc, err := d.resolve(dst)
	if err != nil {
		return err
	}
	sb, soff, salloc, err := d.resolve(src)
	if err != nil {
		return err
	}
	if doff+size > dalloc || soff+size > salloc {
		return api.ErrInvalidValue
	}
	// On-device copies ride the h2d engine (one engine is enough for a
	// same-device blit; picking one side keeps the lock order trivial).
	d.h2dMu.Lock()
	// On-device copies are roughly an order of magnitude faster than
	// PCIe transfers.
	d.clock.Sleep(d.dmaTime(size / 10))
	d.h2dMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if sbuf, ok := d.bufs[sb]; ok {
		dbuf := d.backing(db, dalloc)
		copy(dbuf[doff:doff+size], sbuf[soff:])
	}
	return nil
}

// backing returns (materialising if needed) the byte store for the
// allocation based at base. Caller holds d.mu.
func (d *Device) backing(base api.DevPtr, size uint64) []byte {
	buf, ok := d.bufs[base]
	if !ok {
		buf = make([]byte, size)
		d.bufs[base] = buf
	}
	return buf
}

// Bytes exposes the backing bytes of the allocation containing ptr,
// starting at ptr, materialising the store on first use. It is how
// kernel implementations see "device memory".
func (d *Device) Bytes(ptr api.DevPtr) ([]byte, error) {
	base, off, size, err := d.resolve(ptr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.backing(base, size)[off:], nil
}

// Exec occupies the execution engine for repeat back-to-back runs of a
// kernel whose reference-device duration is base, then applies fn (the
// kernel's host-side data transformation) once per run if non-nil.
// The per-launch overhead is charged for every run.
func (d *Device) Exec(base time.Duration, repeat int, fn func() error) error {
	if err := d.usable(); err != nil {
		return err
	}
	if h := d.execHook; h != nil {
		if err := d.applyFault(h.Check()); err != nil {
			return err
		}
	}
	if repeat < 1 {
		repeat = 1
	}
	speed := d.spec.Speed
	if speed <= 0 {
		speed = 1
	}
	per := LaunchOverhead + time.Duration(float64(base)/speed)
	total := per * time.Duration(repeat)

	d.execMu.Lock()
	d.clock.Sleep(total)
	d.busy.Add(int64(total))
	d.launches.Add(int64(repeat))
	d.execMu.Unlock()

	if err := d.usable(); err != nil {
		// The device died while the kernel was in flight.
		return err
	}
	if fn != nil {
		for i := 0; i < repeat; i++ {
			if err := fn(); err != nil {
				return fmt.Errorf("kernel execution: %w", api.ErrLaunchFailure)
			}
		}
	}
	return nil
}
