package gpu

import (
	"testing"
	"testing/quick"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(0x1000, 1<<20)
	p1, ok := a.alloc(100)
	if !ok || p1 != 0x1000 {
		t.Fatalf("first alloc = %#x, ok=%v", p1, ok)
	}
	p2, ok := a.alloc(100)
	if !ok || p2 != 0x1000+allocGranularity {
		t.Fatalf("second alloc = %#x, want %#x", p2, 0x1000+allocGranularity)
	}
	if a.available() != 1<<20-2*allocGranularity {
		t.Errorf("available = %d", a.available())
	}
	if err := a.freeBlock(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(p2); err != nil {
		t.Fatal(err)
	}
	if a.available() != 1<<20 {
		t.Errorf("available after frees = %d, want %d", a.available(), 1<<20)
	}
	if len(a.free) != 1 {
		t.Errorf("free list not coalesced: %v", a.free)
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := newAllocator(0, 1<<20)
	p, ok := a.alloc(0)
	if !ok {
		t.Fatal("zero-size alloc failed")
	}
	if n, _ := a.sizeOf(p); n != allocGranularity {
		t.Errorf("zero-size alloc got %d bytes, want %d", n, allocGranularity)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAllocator(0, 4*allocGranularity)
	var ptrs []uint64
	for {
		p, ok := a.alloc(allocGranularity)
		if !ok {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) != 4 {
		t.Fatalf("allocated %d blocks, want 4", len(ptrs))
	}
	if _, ok := a.alloc(1); ok {
		t.Error("alloc succeeded on exhausted arena")
	}
	for _, p := range ptrs {
		if err := a.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := a.alloc(4 * allocGranularity); !ok {
		t.Error("full-size alloc failed after freeing everything")
	}
}

func TestAllocatorFragmentation(t *testing.T) {
	// Allocate 4 blocks, free alternating ones: total free is 2 blocks
	// but the largest single allocation is 1 block.
	a := newAllocator(0, 4*allocGranularity)
	var ptrs []uint64
	for i := 0; i < 4; i++ {
		p, ok := a.alloc(allocGranularity)
		if !ok {
			t.Fatal("setup alloc failed")
		}
		ptrs = append(ptrs, p)
	}
	if err := a.freeBlock(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(ptrs[2]); err != nil {
		t.Fatal(err)
	}
	if a.available() != 2*allocGranularity {
		t.Errorf("available = %d, want %d", a.available(), 2*allocGranularity)
	}
	if a.largestFree() != allocGranularity {
		t.Errorf("largestFree = %d, want %d", a.largestFree(), allocGranularity)
	}
	// This is the fragmentation failure the paper's §4.5 calls out:
	// accounting says 2 blocks are free, yet a 2-block alloc fails.
	if _, ok := a.alloc(2 * allocGranularity); ok {
		t.Error("2-block alloc should fail on fragmented arena")
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	a := newAllocator(0, 1<<20)
	p, _ := a.alloc(64)
	if err := a.freeBlock(p); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(p); err == nil {
		t.Error("double free not detected")
	}
	if err := a.freeBlock(0x9999999); err == nil {
		t.Error("free of never-allocated address not detected")
	}
}

func TestAllocatorResolve(t *testing.T) {
	a := newAllocator(0x1000, 1<<20)
	p, _ := a.alloc(1000) // rounds to 1024
	base, off, ok := a.resolve(p + 500)
	if !ok || base != p || off != 500 {
		t.Errorf("resolve(p+500) = (%#x, %d, %v)", base, off, ok)
	}
	if _, _, ok := a.resolve(p + 2048); ok {
		t.Error("resolve past end of allocation should fail")
	}
	if _, _, ok := a.resolve(0x500); ok {
		t.Error("resolve below arena base should fail")
	}
}

// TestAllocatorInvariants property-tests the allocator against a random
// sequence of alloc/free operations: accounting must balance, live
// allocations must never overlap, and the free list must stay sorted
// and coalesced.
func TestAllocatorInvariants(t *testing.T) {
	check := func(ops []uint16) bool {
		a := newAllocator(1<<20, 1<<22)
		var live []uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := uint64(op)%(128*1024) + 1
				if p, ok := a.alloc(size); ok {
					live = append(live, p)
				}
			} else {
				i := int(op) % len(live)
				if err := a.freeBlock(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if !allocatorInvariantsHold(a, live) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func allocatorInvariantsHold(a *allocator, live []uint64) bool {
	// Accounting balances.
	var liveSum uint64
	for _, p := range live {
		n, ok := a.sizeOf(p)
		if !ok {
			return false
		}
		liveSum += n
	}
	if liveSum != a.inUse {
		return false
	}
	var freeSum uint64
	for i, s := range a.free {
		freeSum += s.len
		if s.len == 0 {
			return false
		}
		if i > 0 {
			prev := a.free[i-1]
			if prev.addr+prev.len > s.addr {
				return false // overlapping or unsorted
			}
			if prev.addr+prev.len == s.addr {
				return false // uncoalesced neighbours
			}
		}
	}
	if freeSum != a.available() || freeSum+liveSum != a.size {
		return false
	}
	// Live allocations never overlap a free span.
	for _, p := range live {
		n, _ := a.sizeOf(p)
		for _, s := range a.free {
			if p < s.addr+s.len && s.addr < p+n {
				return false
			}
		}
	}
	return true
}
