package gpu

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestAllocatorBasic(t *testing.T) {
	a := newAllocator(0x1000, 1<<20)
	p1, ok := a.alloc(100)
	if !ok || p1 != 0x1000 {
		t.Fatalf("first alloc = %#x, ok=%v", p1, ok)
	}
	p2, ok := a.alloc(100)
	if !ok || p2 != 0x1000+allocGranularity {
		t.Fatalf("second alloc = %#x, want %#x", p2, 0x1000+allocGranularity)
	}
	if a.available() != 1<<20-2*allocGranularity {
		t.Errorf("available = %d", a.available())
	}
	if err := a.freeBlock(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(p2); err != nil {
		t.Fatal(err)
	}
	if a.available() != 1<<20 {
		t.Errorf("available after frees = %d, want %d", a.available(), 1<<20)
	}
	if spans := a.freeSpans(); len(spans) != 1 || spans[0].len != 1<<20 {
		t.Errorf("free space not coalesced: %v", spans)
	}
}

func TestAllocatorZeroSize(t *testing.T) {
	a := newAllocator(0, 1<<20)
	p, ok := a.alloc(0)
	if !ok {
		t.Fatal("zero-size alloc failed")
	}
	if n, _ := a.sizeOf(p); n != allocGranularity {
		t.Errorf("zero-size alloc got %d bytes, want %d", n, allocGranularity)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := newAllocator(0, 4*allocGranularity)
	var ptrs []uint64
	for {
		p, ok := a.alloc(allocGranularity)
		if !ok {
			break
		}
		ptrs = append(ptrs, p)
	}
	if len(ptrs) != 4 {
		t.Fatalf("allocated %d blocks, want 4", len(ptrs))
	}
	if _, ok := a.alloc(1); ok {
		t.Error("alloc succeeded on exhausted arena")
	}
	for _, p := range ptrs {
		if err := a.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := a.alloc(4 * allocGranularity); !ok {
		t.Error("full-size alloc failed after freeing everything")
	}
}

func TestAllocatorFragmentation(t *testing.T) {
	// Allocate 4 blocks, free alternating ones: total free is 2 blocks
	// but the largest single allocation is 1 block. The arena is too
	// small for a slab chunk, so each granule is a direct buddy carve.
	a := newAllocator(0, 4*allocGranularity)
	var ptrs []uint64
	for i := 0; i < 4; i++ {
		p, ok := a.alloc(allocGranularity)
		if !ok {
			t.Fatal("setup alloc failed")
		}
		ptrs = append(ptrs, p)
	}
	if err := a.freeBlock(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(ptrs[2]); err != nil {
		t.Fatal(err)
	}
	if a.available() != 2*allocGranularity {
		t.Errorf("available = %d, want %d", a.available(), 2*allocGranularity)
	}
	if a.largestFree() != allocGranularity {
		t.Errorf("largestFree = %d, want %d", a.largestFree(), allocGranularity)
	}
	// This is the fragmentation failure the paper's §4.5 calls out:
	// accounting says 2 blocks are free, yet a 2-block alloc fails.
	if _, ok := a.alloc(2 * allocGranularity); ok {
		t.Error("2-block alloc should fail on fragmented arena")
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	a := newAllocator(0, 1<<20)
	p, _ := a.alloc(64)
	if err := a.freeBlock(p); err != nil {
		t.Fatal(err)
	}
	if err := a.freeBlock(p); err == nil {
		t.Error("double free not detected")
	}
	if err := a.freeBlock(0x9999999); err == nil {
		t.Error("free of never-allocated address not detected")
	}
}

func TestAllocatorResolve(t *testing.T) {
	a := newAllocator(0x1000, 1<<20)
	p, _ := a.alloc(1000) // rounds to 1024
	base, off, ok := a.resolve(p + 500)
	if !ok || base != p || off != 500 {
		t.Errorf("resolve(p+500) = (%#x, %d, %v)", base, off, ok)
	}
	if _, _, ok := a.resolve(p + 2048); ok {
		t.Error("resolve past end of allocation should fail")
	}
	if _, _, ok := a.resolve(0x500); ok {
		t.Error("resolve below arena base should fail")
	}
}

// TestAllocatorSpanFallback pins the satisfiability guarantee the span
// fallback exists for: after small carves fragment the buddy
// decomposition, a request larger than any single power-of-two block
// must still succeed by carving across adjacent free blocks — the
// near-capacity tenant-buffer case the runtime's swap tests rely on.
func TestAllocatorSpanFallback(t *testing.T) {
	a := newAllocator(0, 1<<20)
	// Two context reservations, as the runtime carves per vGPU.
	r1, ok := a.alloc(1024)
	if !ok {
		t.Fatal("reservation alloc failed")
	}
	if _, ok := a.alloc(1024); !ok {
		t.Fatal("reservation alloc failed")
	}
	// 600 KiB exceeds every remaining single buddy block (the largest
	// is 512 KiB) but fits in the coalesced span.
	p, ok := a.alloc(600 << 10)
	if !ok {
		t.Fatalf("span-fallback alloc failed: largestFree=%d available=%d",
			a.largestFree(), a.available())
	}
	if _, ok := a.alloc(600 << 10); ok {
		t.Error("second 600 KiB alloc should not fit")
	}
	if err := a.freeBlock(p); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.alloc(600 << 10); !ok {
		t.Error("600 KiB alloc should fit again after free")
	}
	_ = r1
}

// TestAllocatorFragmentationVsFirstFit runs the same interleaved
// small/large trace through the buddy/slab allocator and the original
// first-fit allocator. First-fit peppers the arena with small-object
// islands, so freeing the large blocks leaves only block-sized holes;
// the slab tier clusters the small objects in one chunk, so the same
// frees coalesce back into one huge span.
func TestAllocatorFragmentationVsFirstFit(t *testing.T) {
	const (
		smalls = 32
		large  = uint64(64 << 10)
		arena  = (smalls + 1) * (64 << 10) // hybrid worst case: 1 chunk + 32 larges
	)
	bd := newAllocator(0, arena)
	ff := newFFAllocator(0, arena)
	var bdLarge, ffLarge []uint64
	for i := 0; i < smalls; i++ {
		if _, ok := bd.alloc(allocGranularity); !ok {
			t.Fatalf("buddy small alloc %d failed", i)
		}
		p, ok := bd.alloc(large)
		if !ok {
			t.Fatalf("buddy large alloc %d failed", i)
		}
		bdLarge = append(bdLarge, p)
		if _, ok := ff.alloc(allocGranularity); !ok {
			t.Fatalf("first-fit small alloc %d failed", i)
		}
		p, ok = ff.alloc(large)
		if !ok {
			t.Fatalf("first-fit large alloc %d failed", i)
		}
		ffLarge = append(ffLarge, p)
	}
	for _, p := range bdLarge {
		if err := bd.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range ffLarge {
		if err := ff.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if bd.available() != ff.available() {
		t.Errorf("accounting diverged: buddy %d, first-fit %d", bd.available(), ff.available())
	}
	bdMax, ffMax := bd.largestFree(), ff.largestFree()
	t.Logf("largest free span after churn: buddy=%d first-fit=%d", bdMax, ffMax)
	if ffMax > 2*large {
		t.Errorf("first-fit largest span %d unexpectedly large; trace no longer fragments", ffMax)
	}
	if bdMax < 8*ffMax {
		t.Errorf("buddy largest span %d not clearly better than first-fit %d", bdMax, ffMax)
	}
	// The coalesced span must be usable as one allocation.
	if _, ok := bd.alloc(bdMax); !ok {
		t.Errorf("buddy cannot allocate its own largest span %d", bdMax)
	}
}

// TestAllocatorInvariants property-tests the allocator against a random
// sequence of alloc/free operations: accounting must balance, live
// allocations must never overlap each other or free space, buddy
// blocks must stay aligned, and freeing everything must coalesce back
// to a single span.
func TestAllocatorInvariants(t *testing.T) {
	check := func(ops []uint16) bool {
		a := newAllocator(1<<20, 1<<22)
		var live []uint64
		for _, op := range ops {
			if op%3 != 0 || len(live) == 0 {
				size := uint64(op)%(128*1024) + 1
				if p, ok := a.alloc(size); ok {
					live = append(live, p)
				}
			} else {
				i := int(op) % len(live)
				if err := a.freeBlock(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if !allocatorInvariantsHold(a, live) {
				return false
			}
		}
		for _, p := range live {
			if err := a.freeBlock(p); err != nil {
				return false
			}
		}
		spans := a.freeSpans()
		return a.available() == a.size && len(spans) == 1 && spans[0].len == a.size
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func allocatorInvariantsHold(a *allocator, live []uint64) bool {
	// Accounting balances.
	var liveSum uint64
	for _, p := range live {
		n, ok := a.sizeOf(p)
		if !ok {
			return false
		}
		liveSum += n
	}
	if liveSum != a.inUse {
		return false
	}
	// Buddy free lists hold aligned, in-arena, non-duplicate blocks.
	var freeSum uint64
	for k := range a.freeLists {
		for i, off := range a.freeLists[k] {
			if off&(1<<k-1) != 0 || off+1<<k > a.size {
				return false
			}
			if i > 0 && a.freeLists[k][i-1] >= off {
				return false // unsorted or duplicate
			}
			freeSum += 1 << k
		}
	}
	// Slab chunks: free space inside chunks is neither buddy-free nor
	// allocated; it accounts for the remainder.
	var slabFree uint64
	for off, m := range a.chunks {
		if off&(chunkSize-1) != 0 || m.live == 0 {
			return false
		}
		slabFree += chunkSize - uint64(m.live)*m.objSize
	}
	if freeSum+slabFree != a.available() || freeSum+slabFree+liveSum != a.size {
		return false
	}
	// Free spans are sorted, disjoint and inside the arena.
	var prevEnd uint64
	for _, s := range a.freeSpans() {
		off := s.addr - a.base
		if off < prevEnd || off+s.len > a.size {
			return false
		}
		prevEnd = off + s.len
	}
	// Live allocations never overlap a free span or each other.
	for i, p := range live {
		n, _ := a.sizeOf(p)
		for _, s := range a.freeSpans() {
			if p < s.addr+s.len && s.addr < p+n {
				return false
			}
		}
		for _, q := range live[i+1:] {
			qn, _ := a.sizeOf(q)
			if p < q+qn && q < p+n {
				return false
			}
		}
	}
	return true
}

// TestAllocatorSlabReuse exercises the slab free/reuse cycle: a chunk
// that fills, partially drains, and refills must keep handing out
// non-overlapping class objects, and draining it completely must
// return the chunk to the buddy lists.
func TestAllocatorSlabReuse(t *testing.T) {
	a := newAllocator(0, 1<<20)
	objs := make(map[uint64]bool)
	var ptrs []uint64
	perChunk := chunkSize / allocGranularity
	for i := 0; i < perChunk+4; i++ { // spills into a second chunk
		p, ok := a.alloc(allocGranularity)
		if !ok {
			t.Fatalf("slab alloc %d failed", i)
		}
		if objs[p] {
			t.Fatalf("slab handed out duplicate object %#x", p)
		}
		objs[p] = true
		ptrs = append(ptrs, p)
	}
	if got := len(a.chunks); got != 2 {
		t.Fatalf("chunks = %d, want 2", got)
	}
	// Drain and refill the first chunk's worth.
	for _, p := range ptrs[:perChunk] {
		if err := a.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(a.chunks); got != 1 {
		t.Fatalf("chunks after drain = %d, want 1", got)
	}
	for _, p := range ptrs[perChunk:] {
		if err := a.freeBlock(p); err != nil {
			t.Fatal(err)
		}
	}
	if a.available() != 1<<20 || len(a.chunks) != 0 {
		t.Fatalf("arena not fully returned: available=%d chunks=%d", a.available(), len(a.chunks))
	}
	if spans := a.freeSpans(); len(spans) != 1 {
		t.Errorf("free space not coalesced after slab drain: %v", spans)
	}
}

// TestAllocatorNonPowerOfTwoArena checks buddy bookkeeping on an arena
// whose size is not a power of two (real device capacities, e.g. 3 GB).
func TestAllocatorNonPowerOfTwoArena(t *testing.T) {
	const arena = 3 << 20 // decomposes into 2 MiB + 1 MiB blocks
	a := newAllocator(0, arena)
	if got := a.largestFree(); got != arena {
		t.Fatalf("initial largestFree = %d, want %d (adjacent blocks must span)", got, arena)
	}
	// A request above the largest single block must carve across the
	// 2 MiB / 1 MiB block boundary.
	p, ok := a.alloc(arena - (256 << 10))
	if !ok {
		t.Fatal("near-capacity alloc failed on non-power-of-two arena")
	}
	if _, ok := a.alloc(512 << 10); ok {
		t.Error("overcommit alloc should fail")
	}
	if _, ok := a.alloc(256 << 10); !ok {
		t.Error("tail alloc should fit")
	}
	if err := a.freeBlock(p); err != nil {
		t.Fatal(err)
	}
	if a.available() != arena-(256<<10) {
		t.Errorf("available = %d", a.available())
	}
}

func TestCeilOrder(t *testing.T) {
	cases := []struct {
		n    uint64
		want int
	}{
		{1, minOrder}, {255, minOrder}, {256, minOrder}, {257, 9},
		{512, 9}, {1 << 16, 16}, {1<<16 + 1, 17}, {600 << 10, 20},
	}
	for _, c := range cases {
		if got := ceilOrder(c.n); got != c.want {
			t.Errorf("ceilOrder(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Sanity: ceilOrder agrees with bits.Len64 semantics for powers of two.
	for o := minOrder; o < 40; o++ {
		if got := ceilOrder(1 << o); got != o {
			t.Errorf("ceilOrder(1<<%d) = %d", o, got)
		}
		if got := bits.Len64(uint64(1)<<o) - 1; got != o {
			t.Errorf("bits.Len64 sanity failed at %d", o)
		}
	}
}
