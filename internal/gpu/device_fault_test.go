package gpu

import (
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/faultinject"
)

// faultedDevice builds a device armed against a plan.
func faultedDevice(t *testing.T, rules ...faultinject.Rule) *Device {
	t.Helper()
	d := testDevice()
	d.InstallFaults(faultinject.New(faultinject.Plan{Name: "device-test", Seed: 7, Rules: rules}))
	return d
}

func TestInstallFaultsNilPlaneLeavesDeviceClean(t *testing.T) {
	d := testDevice()
	d.InstallFaults(nil)
	if d.execHook != nil || d.dmaHook != nil || d.mallocHook != nil {
		t.Fatal("nil plane armed hooks")
	}
	if _, err := d.Malloc(64); err != nil {
		t.Fatal(err)
	}
}

func TestExecFaultFailsDeviceStickily(t *testing.T) {
	d := faultedDevice(t, faultinject.Rule{
		Point: faultinject.PointDeviceExec, Label: "gpu0", AtNth: 2, Action: faultinject.ActFailDevice,
	})
	if err := d.Exec(time.Millisecond, 1, nil); err != nil {
		t.Fatalf("exec 1: %v", err)
	}
	if err := d.Exec(time.Millisecond, 1, nil); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Fatalf("exec 2 err = %v, want ErrDeviceUnavailable", err)
	}
	if !d.Failed() {
		t.Error("device not marked failed after ActFailDevice")
	}
	// Sticky: the device stays dead like real hardware would.
	if err := d.Exec(time.Millisecond, 1, nil); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("exec 3 err = %v, want ErrDeviceUnavailable", err)
	}
}

func TestDMACorruptionFlipsExactlyOneByte(t *testing.T) {
	d := faultedDevice(t, faultinject.Rule{
		Point: faultinject.PointDeviceDMA, AtNth: 2, Action: faultinject.ActCorrupt,
	})
	p, err := d.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte{1, 2, 3, 4}
	if err := d.CopyIn(p, data, 4); err != nil { // occurrence 1: clean
		t.Fatal(err)
	}
	if err := d.CopyIn(p, data, 4); err != nil { // occurrence 2: corrupted
		t.Fatal(err)
	}
	out, err := d.CopyOut(p, 4) // occurrence 3: clean
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1^0xFF {
		t.Errorf("first byte = %#x, want ECC-style flip %#x", out[0], 1^0xFF)
	}
	for i := 1; i < 4; i++ {
		if out[i] != data[i] {
			t.Errorf("byte %d = %d, want %d (corruption must hit one byte)", i, out[i], data[i])
		}
	}
}

func TestSlowDMAStallsModelTime(t *testing.T) {
	const stall = 500 * time.Millisecond // model time; test clock runs at 1e-6
	d := faultedDevice(t, faultinject.Rule{
		Point: faultinject.PointDeviceDMA, AtNth: 1, Action: faultinject.ActDelay, Delay: stall,
	})
	p, err := d.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	before := d.clock.Now()
	if err := d.CopyIn(p, nil, 4); err != nil {
		t.Fatal(err)
	}
	if got := d.clock.Now() - before; got < stall {
		t.Errorf("slow DMA advanced the clock by %v, want >= %v", got, stall)
	}
}

func TestMallocDenialBounded(t *testing.T) {
	d := faultedDevice(t, faultinject.Rule{
		Point: faultinject.PointDeviceMalloc, EveryNth: 1, MaxFires: 2, Action: faultinject.ActError,
	})
	for i := 0; i < 2; i++ {
		if _, err := d.Malloc(64); !errors.Is(err, api.ErrMemoryAllocation) {
			t.Fatalf("denied alloc %d err = %v, want ErrMemoryAllocation", i, err)
		}
	}
	// MaxFires exhausted: allocations succeed again.
	if _, err := d.Malloc(64); err != nil {
		t.Fatalf("alloc after denial burst: %v", err)
	}
}
