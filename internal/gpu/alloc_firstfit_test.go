package gpu

import (
	"fmt"
	"sort"
)

// ffAllocator is the original first-fit free-list allocator, kept as a
// test-only reference so property tests can compare the buddy/slab
// allocator's fragmentation behaviour against the allocator it
// replaced (DESIGN.md §12).
type ffAllocator struct {
	base, size uint64
	free       []span
	used       map[uint64]uint64
	inUse      uint64
}

func newFFAllocator(base, size uint64) *ffAllocator {
	return &ffAllocator{
		base: base,
		size: size,
		free: []span{{addr: base, len: size}},
		used: make(map[uint64]uint64),
	}
}

func (a *ffAllocator) alloc(n uint64) (addr uint64, ok bool) {
	if n == 0 {
		n = allocGranularity
	}
	n = roundUp(n)
	for i := range a.free {
		if a.free[i].len >= n {
			addr = a.free[i].addr
			a.free[i].addr += n
			a.free[i].len -= n
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used[addr] = n
			a.inUse += n
			return addr, true
		}
	}
	return 0, false
}

func (a *ffAllocator) freeBlock(addr uint64) error {
	n, ok := a.used[addr]
	if !ok {
		return fmt.Errorf("gpu: free of unallocated address %#x", addr)
	}
	delete(a.used, addr)
	a.inUse -= n
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{addr: addr, len: n}
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].len == a.free[i+1].addr {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].len == a.free[i].addr {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

func (a *ffAllocator) available() uint64 { return a.size - a.inUse }

func (a *ffAllocator) largestFree() uint64 {
	var max uint64
	for _, s := range a.free {
		if s.len > max {
			max = s.len
		}
	}
	return max
}
