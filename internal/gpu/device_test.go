package gpu

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/sim"
)

// testClock runs fast: 1 model second = 1 wall microsecond.
func testClock() *sim.Clock { return sim.NewClock(1e-6) }

func testDevice() *Device { return NewDevice(0, TeslaC2050, testClock()) }

func TestDeviceMallocFree(t *testing.T) {
	d := testDevice()
	p, err := d.Malloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("Malloc returned null pointer")
	}
	if got := d.Available(); got != d.Capacity()-1<<20 {
		t.Errorf("Available = %d, want %d", got, d.Capacity()-1<<20)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := d.Available(); got != d.Capacity() {
		t.Errorf("Available after Free = %d, want %d", got, d.Capacity())
	}
	if err := d.Free(p); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("double Free err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestDeviceOOM(t *testing.T) {
	d := testDevice()
	if _, err := d.Malloc(d.Capacity() + 1); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("oversized Malloc err = %v, want ErrMemoryAllocation", err)
	}
	p, err := d.Malloc(d.Capacity())
	if err != nil {
		t.Fatalf("exact-capacity Malloc failed: %v", err)
	}
	if _, err := d.Malloc(1); !errors.Is(err, api.ErrMemoryAllocation) {
		t.Errorf("Malloc on full device err = %v, want ErrMemoryAllocation", err)
	}
	if err := d.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceAddressSpacesDisjoint(t *testing.T) {
	c := testClock()
	d0 := NewDevice(0, TeslaC2050, c)
	d1 := NewDevice(1, TeslaC1060, c)
	p0, _ := d0.Malloc(64)
	p1, _ := d1.Malloc(64)
	if p0 == p1 {
		t.Errorf("devices handed out the same address %#x", p0)
	}
	if err := d1.Free(p0); err == nil {
		t.Error("freeing another device's pointer should fail")
	}
}

func TestDeviceCopyRoundTrip(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(1024)
	in := []byte("hello, device memory")
	if err := d.CopyIn(p, in, 0); err != nil {
		t.Fatal(err)
	}
	out, err := d.CopyOut(p, uint64(len(in)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Errorf("CopyOut = %q, want %q", out, in)
	}
}

func TestDeviceCopyAtOffset(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(1024)
	if err := d.CopyIn(p+100, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	out, err := d.CopyOut(p+101, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0] != 2 {
		t.Errorf("offset CopyOut = %v, want [2]", out)
	}
}

func TestDeviceCopyBoundsChecked(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(100) // rounds to 256
	if err := d.CopyIn(p, make([]byte, 300), 0); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("out-of-bounds CopyIn err = %v, want ErrInvalidValue", err)
	}
	if _, err := d.CopyOut(p, 300); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("out-of-bounds CopyOut err = %v, want ErrInvalidValue", err)
	}
	if err := d.CopyIn(0xdeadbeef, []byte{1}, 0); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("CopyIn to wild pointer err = %v, want ErrInvalidDevicePointer", err)
	}
}

func TestDeviceSyntheticCopy(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(1 << 20)
	if err := d.CopyIn(p, nil, 1<<20); err != nil {
		t.Fatal(err)
	}
	out, err := d.CopyOut(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("synthetic allocation should CopyOut nil data")
	}
	st := d.Stats()
	if st.H2DBytes != 1<<20 || st.D2HBytes != 1<<20 {
		t.Errorf("byte accounting = %d/%d, want 1MiB/1MiB", st.H2DBytes, st.D2HBytes)
	}
}

func TestDeviceCopyDD(t *testing.T) {
	d := testDevice()
	src, _ := d.Malloc(256)
	dst, _ := d.Malloc(256)
	if err := d.CopyIn(src, []byte{7, 8, 9}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.CopyDD(dst, src, 3); err != nil {
		t.Fatal(err)
	}
	out, err := d.CopyOut(dst, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{7, 8, 9}) {
		t.Errorf("CopyDD result = %v", out)
	}
	if err := d.CopyDD(dst, src, 1024); !errors.Is(err, api.ErrInvalidValue) {
		t.Errorf("oversized CopyDD err = %v, want ErrInvalidValue", err)
	}
}

func TestDeviceExecRunsKernelFunc(t *testing.T) {
	d := testDevice()
	runs := 0
	err := d.Exec(time.Millisecond, 3, func() error { runs++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if runs != 3 {
		t.Errorf("kernel fn ran %d times, want 3", runs)
	}
	st := d.Stats()
	if st.Launches != 3 {
		t.Errorf("Launches = %d, want 3", st.Launches)
	}
	if st.Busy < 3*time.Millisecond {
		t.Errorf("Busy = %v, want >= 3ms", st.Busy)
	}
}

func TestDeviceExecSpeedScaling(t *testing.T) {
	c := testClock()
	fast := NewDevice(0, TeslaC2050, c) // speed 1.0
	slow := NewDevice(1, Quadro2000, c) // speed 0.35
	if err := fast.Exec(10*time.Millisecond, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := slow.Exec(10*time.Millisecond, 1, nil); err != nil {
		t.Fatal(err)
	}
	fb, sb := fast.Stats().Busy, slow.Stats().Busy
	ratio := float64(sb) / float64(fb)
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("slow/fast busy ratio = %.2f, want ~1/0.35", ratio)
	}
}

func TestDeviceExecSerialized(t *testing.T) {
	// Two concurrent kernels must occupy the execution engine back to
	// back: total busy time is additive and wall time >= sum.
	d := NewDevice(0, TeslaC2050, sim.NewClock(1e-3)) // 1 model s = 1 ms
	const kernel = 100 * time.Millisecond             // 100 µs wall each
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := d.Exec(kernel, 1, nil); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if wall < 380*time.Microsecond {
		t.Errorf("4 serialized 100µs-wall kernels finished in %v, want >= ~400µs", wall)
	}
}

func TestDeviceFailure(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(256)
	d.Fail()
	if !d.Failed() {
		t.Error("Failed() = false after Fail()")
	}
	if _, err := d.Malloc(1); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("Malloc on failed device err = %v", err)
	}
	if err := d.CopyIn(p, nil, 1); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("CopyIn on failed device err = %v", err)
	}
	if err := d.Exec(time.Millisecond, 1, nil); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("Exec on failed device err = %v", err)
	}
	d.Restore()
	if _, err := d.Malloc(1); err != nil {
		t.Errorf("Malloc after Restore err = %v", err)
	}
}

func TestDeviceRemoved(t *testing.T) {
	d := testDevice()
	d.MarkRemoved()
	if !d.Removed() {
		t.Error("Removed() = false after MarkRemoved()")
	}
	if _, err := d.Malloc(1); !errors.Is(err, api.ErrDeviceUnavailable) {
		t.Errorf("Malloc on removed device err = %v", err)
	}
}

func TestDeviceBytesMaterialises(t *testing.T) {
	d := testDevice()
	p, _ := d.Malloc(512)
	b, err := d.Bytes(p + 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 502 {
		t.Errorf("Bytes length = %d, want 502", len(b))
	}
	b[0] = 42
	out, _ := d.CopyOut(p+10, 1)
	if len(out) != 1 || out[0] != 42 {
		t.Error("mutation through Bytes not visible to CopyOut")
	}
	if _, err := d.Bytes(0x1); !errors.Is(err, api.ErrInvalidDevicePointer) {
		t.Errorf("Bytes(wild) err = %v", err)
	}
}

func TestDeviceConcurrentMallocFree(t *testing.T) {
	d := testDevice()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				p, err := d.Malloc(4096)
				if err != nil {
					t.Error(err)
					return
				}
				if err := d.Free(p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Available() != d.Capacity() {
		t.Errorf("leak: Available = %d, want %d", d.Available(), d.Capacity())
	}
}
