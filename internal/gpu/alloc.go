package gpu

import (
	"fmt"
	"sort"
)

// allocGranularity mirrors cudaMalloc's coarse alignment: every
// allocation is rounded up to a multiple of this and aligned to it.
const allocGranularity = 256

// allocator is a first-fit free-list allocator over a contiguous device
// address range. It is deliberately simple and deliberately subject to
// fragmentation: the paper (§4.5) notes that because of possible memory
// fragmentation on the GPU the runtime cannot rely on utilization
// accounting alone and must also consult the allocation return code —
// behaviour this allocator reproduces.
//
// allocator is not safe for concurrent use; Device serialises access.
type allocator struct {
	base, size uint64
	// free holds the free blocks sorted by address; adjacent blocks are
	// always coalesced.
	free []span
	// used maps allocation base -> length.
	used map[uint64]uint64
	// inUse is the sum of allocated lengths.
	inUse uint64
}

type span struct{ addr, len uint64 }

func newAllocator(base, size uint64) *allocator {
	return &allocator{
		base: base,
		size: size,
		free: []span{{addr: base, len: size}},
		used: make(map[uint64]uint64),
	}
}

func roundUp(n uint64) uint64 {
	return (n + allocGranularity - 1) &^ uint64(allocGranularity-1)
}

// alloc reserves n bytes (rounded up to the granularity) and returns the
// base address, or ok=false if no free block is large enough.
func (a *allocator) alloc(n uint64) (addr uint64, ok bool) {
	if n == 0 {
		n = allocGranularity
	}
	n = roundUp(n)
	for i := range a.free {
		if a.free[i].len >= n {
			addr = a.free[i].addr
			a.free[i].addr += n
			a.free[i].len -= n
			if a.free[i].len == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used[addr] = n
			a.inUse += n
			return addr, true
		}
	}
	return 0, false
}

// freeBlock releases the allocation based at addr.
func (a *allocator) freeBlock(addr uint64) error {
	n, ok := a.used[addr]
	if !ok {
		return fmt.Errorf("gpu: free of unallocated address %#x", addr)
	}
	delete(a.used, addr)
	a.inUse -= n
	// Insert in address order, then coalesce with neighbours.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{addr: addr, len: n}
	a.coalesce(i)
	return nil
}

func (a *allocator) coalesce(i int) {
	// Try to merge free[i] with its successor, then its predecessor.
	if i+1 < len(a.free) && a.free[i].addr+a.free[i].len == a.free[i+1].addr {
		a.free[i].len += a.free[i+1].len
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+a.free[i-1].len == a.free[i].addr {
		a.free[i-1].len += a.free[i].len
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// available reports the total free bytes (which, due to fragmentation,
// may exceed the largest satisfiable single allocation).
func (a *allocator) available() uint64 { return a.size - a.inUse }

// largestFree reports the largest single free block.
func (a *allocator) largestFree() uint64 {
	var max uint64
	for _, s := range a.free {
		if s.len > max {
			max = s.len
		}
	}
	return max
}

// resolve maps an address that may point into the middle of an
// allocation to (allocation base, offset). ok is false if the address
// is not inside any live allocation.
func (a *allocator) resolve(ptr uint64) (base, off uint64, ok bool) {
	// Linear scan is fine: allocation counts per device are small
	// (tens), and resolve is not on the per-byte path.
	for b, n := range a.used {
		if ptr >= b && ptr < b+n {
			return b, ptr - b, true
		}
	}
	return 0, 0, false
}

// sizeOf returns the length of the allocation based at addr.
func (a *allocator) sizeOf(addr uint64) (uint64, bool) {
	n, ok := a.used[addr]
	return n, ok
}

// allocCount returns the number of live allocations.
func (a *allocator) allocCount() int { return len(a.used) }
