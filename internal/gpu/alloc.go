package gpu

import (
	"fmt"
	"math/bits"
	"sort"
)

// allocGranularity mirrors cudaMalloc's coarse alignment: every
// allocation is rounded up to a multiple of this and aligned to it.
const allocGranularity = 256

const (
	// minOrder is log2(allocGranularity): no buddy block is ever
	// smaller than one allocation granule.
	minOrder = 8
	// chunkOrder is log2 of the slab chunk size (64 KiB). Slab chunks
	// are always whole buddy blocks, so their offsets are 64 KiB
	// aligned and chunkOf() can recover the owning chunk from any
	// object offset with a mask.
	chunkOrder = 16
	chunkSize  = 1 << chunkOrder
	// maxSlabSize is the largest slab class. Power-of-two requests up
	// to this size are served from per-class slab chunks; everything
	// else goes to the buddy lists.
	maxSlabSize = 4096
)

// allocator is a hybrid buddy/slab allocator over a contiguous device
// address range, replacing the original first-fit free list (DESIGN.md
// §12). Three tiers cooperate:
//
//   - power-of-two requests ≤ maxSlabSize come from slab chunks (whole
//     64 KiB buddy blocks diced into equal objects), so small
//     allocations cluster instead of peppering the arena with holes;
//   - larger power-of-two requests take the lowest free buddy block of
//     the exact order — O(log) with zero tail waste;
//   - everything else goes through a span first-fit: the lowest run of
//     adjacent free blocks covering the request is carved across, and
//     the remainder is returned as the canonical block decomposition.
//     A free buddy block always lies inside a span of at least its own
//     size, so the allocator satisfies a request if and only if some
//     contiguous free span is large enough — exactly the first-fit
//     criterion, which is what lets near-capacity requests (e.g. a
//     600 KiB tenant buffer on a 1 MiB device) succeed where a pure
//     buddy allocator would refuse anything above half the arena.
//     Routing non-power-of-two requests straight to the span tier also
//     keeps their placement identical to the replaced first-fit
//     allocator, so the modeled-time experiments (Fig. 7 shape) stay
//     on their measured trajectory.
//
// Fragmentation still exists — the paper (§4.5) notes the runtime
// cannot rely on utilization accounting alone and must also consult
// the allocation return code — but buddy coalescing plus slab
// clustering keeps the largest free span far larger than first-fit's
// under mixed-size churn (see TestAllocatorFragmentationVsFirstFit).
//
// allocator is not safe for concurrent use; Device serialises access.
type allocator struct {
	base, size uint64
	// freeLists[k] holds the arena-relative offsets of free 2^k buddy
	// blocks, sorted ascending. Offsets are always 2^k aligned.
	freeLists [64][]uint64
	// used maps allocation offset -> length.
	used map[uint64]uint64
	// inUse is the sum of allocated lengths.
	inUse uint64
	// chunks maps slab chunk offset -> metadata for live chunks.
	chunks map[uint64]*slabChunk
	// classes[i] serves objects of size allocGranularity<<i.
	classes [5]slabClass
}

type span struct{ addr, len uint64 }

type slabClass struct {
	// partial holds chunks with at least one free object, used as a
	// stack so recently touched chunks fill first.
	partial []*slabChunk
}

type slabChunk struct {
	off     uint64 // arena-relative, chunkSize aligned
	class   int
	objSize uint64
	// freeObjs holds free object offsets (arena-relative), used as a
	// stack. Populated in descending order so first allocations hand
	// out ascending addresses.
	freeObjs []uint64
	live     int
}

func newAllocator(base, size uint64) *allocator {
	a := &allocator{
		base: base,
		// A sub-granule tail could never be allocated anyway; drop it
		// so the buddy decomposition stays granule-aligned.
		size:   size &^ uint64(allocGranularity-1),
		used:   make(map[uint64]uint64),
		chunks: make(map[uint64]*slabChunk),
	}
	a.insertRange(0, a.size)
	return a
}

func roundUp(n uint64) uint64 {
	return (n + allocGranularity - 1) &^ uint64(allocGranularity-1)
}

// ceilOrder returns the smallest order whose block covers n bytes,
// floored at minOrder.
func ceilOrder(n uint64) int {
	o := bits.Len64(n - 1) // n ≥ 1
	if o < minOrder {
		o = minOrder
	}
	return o
}

// alloc reserves n bytes (rounded up to the granularity) and returns
// the base address, or ok=false if no contiguous free span is large
// enough.
func (a *allocator) alloc(n uint64) (addr uint64, ok bool) {
	if n == 0 {
		n = allocGranularity
	}
	n = roundUp(n)
	pow2 := n&(n-1) == 0
	// Slab tier: only exact power-of-two class sizes, so every
	// allocation's recorded length equals its rounded request and
	// available() matches the old first-fit accounting exactly.
	if pow2 && n <= maxSlabSize {
		if off, ok := a.slabAlloc(n); ok {
			return a.base + off, true
		}
		// No chunk could be carved (tiny or exhausted arena): fall
		// through to a direct buddy/span allocation.
	}
	var off uint64
	ok = false
	if pow2 {
		off, ok = a.carve(n)
	}
	if !ok {
		off, ok = a.spanAlloc(n)
	}
	if !ok {
		return 0, false
	}
	a.used[off] = n
	a.inUse += n
	return a.base + off, true
}

// blockAlloc removes and returns the lowest free buddy block of exactly
// the given order, splitting a larger block if needed.
func (a *allocator) blockAlloc(order int) (uint64, bool) {
	for k := order; k < len(a.freeLists); k++ {
		list := a.freeLists[k]
		if len(list) == 0 {
			continue
		}
		off := list[0]
		a.freeLists[k] = list[1:]
		// Split down, returning the upper halves. Their buddies are
		// the halves we keep splitting, so no merge can occur.
		for j := k; j > order; j-- {
			a.insertBlock(off+1<<(j-1), j-1)
		}
		return off, true
	}
	return 0, false
}

// carve allocates need bytes from a single buddy block, returning the
// tail past need to the free lists so occupancy stays exact.
func (a *allocator) carve(need uint64) (uint64, bool) {
	order := ceilOrder(need)
	if order >= len(a.freeLists) {
		return 0, false
	}
	off, ok := a.blockAlloc(order)
	if !ok {
		return 0, false
	}
	if end := off + 1<<order; end > off+need {
		a.insertRange(off+need, end)
	}
	return off, true
}

// spanAlloc is the first-fit fallback over the coalesced span view: it
// finds the lowest run of adjacent free blocks covering need bytes and
// carves the request across them.
func (a *allocator) spanAlloc(need uint64) (uint64, bool) {
	blocks := a.freeBlocks()
	for i := 0; i < len(blocks); {
		start := blocks[i].addr
		end := start + blocks[i].len
		j := i + 1
		for j < len(blocks) && blocks[j].addr == end {
			end += blocks[j].len
			j++
		}
		if end-start >= need {
			var covered uint64
			for k := i; covered < need; k++ {
				a.removeBlock(blocks[k].addr, blocks[k].len)
				covered += blocks[k].len
			}
			if covered > need {
				a.insertRange(start+need, start+covered)
			}
			return start, true
		}
		i = j
	}
	return 0, false
}

func (a *allocator) slabAlloc(n uint64) (uint64, bool) {
	ci := bits.Len64(n) - 1 - minOrder // n is a power of two ≥ allocGranularity
	c := &a.classes[ci]
	if len(c.partial) == 0 {
		// Slab chunks come from blockAlloc only: a whole buddy block
		// is chunkSize aligned, which chunkOf depends on.
		chunkOff, ok := a.blockAlloc(chunkOrder)
		if !ok {
			return 0, false
		}
		m := &slabChunk{off: chunkOff, class: ci, objSize: n}
		m.freeObjs = make([]uint64, 0, chunkSize/n)
		for o := chunkSize - n; ; o -= n {
			m.freeObjs = append(m.freeObjs, chunkOff+o)
			if o == 0 {
				break
			}
		}
		a.chunks[chunkOff] = m
		c.partial = append(c.partial, m)
	}
	m := c.partial[len(c.partial)-1]
	obj := m.freeObjs[len(m.freeObjs)-1]
	m.freeObjs = m.freeObjs[:len(m.freeObjs)-1]
	m.live++
	if len(m.freeObjs) == 0 {
		c.partial = c.partial[:len(c.partial)-1]
	}
	a.used[obj] = n
	a.inUse += n
	return obj, true
}

// freeBlock releases the allocation based at addr.
func (a *allocator) freeBlock(addr uint64) error {
	off := addr - a.base
	n, ok := a.used[off]
	if !ok {
		return fmt.Errorf("gpu: free of unallocated address %#x", addr)
	}
	delete(a.used, off)
	a.inUse -= n
	if m := a.chunks[off&^uint64(chunkSize-1)]; m != nil && n == m.objSize {
		a.slabFree(m, off)
		return nil
	}
	a.insertRange(off, off+n)
	return nil
}

func (a *allocator) slabFree(m *slabChunk, off uint64) {
	m.live--
	c := &a.classes[m.class]
	if m.live == 0 {
		// Last object gone: return the whole chunk to the buddy lists
		// so it can coalesce with neighbours.
		delete(a.chunks, m.off)
		for i, p := range c.partial {
			if p == m {
				c.partial = append(c.partial[:i], c.partial[i+1:]...)
				break
			}
		}
		a.insertBlock(m.off, chunkOrder)
		return
	}
	wasFull := len(m.freeObjs) == 0
	m.freeObjs = append(m.freeObjs, off)
	if wasFull {
		c.partial = append(c.partial, m)
	}
}

// insertBlock adds a free block of the given order, merging with its
// buddy repeatedly while the merged parent stays inside the arena.
func (a *allocator) insertBlock(off uint64, order int) {
	for order+1 < len(a.freeLists) {
		parent := off &^ (1<<(order+1) - 1)
		if parent+1<<(order+1) > a.size {
			break
		}
		buddy := off ^ 1<<order
		list := a.freeLists[order]
		i := sort.Search(len(list), func(i int) bool { return list[i] >= buddy })
		if i >= len(list) || list[i] != buddy {
			break
		}
		a.freeLists[order] = append(list[:i], list[i+1:]...)
		off = parent
		order++
	}
	list := a.freeLists[order]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= off })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = off
	a.freeLists[order] = list
}

// insertRange returns [start, end) to the free lists as the canonical
// greedy decomposition into aligned power-of-two blocks. Both bounds
// are always multiples of allocGranularity.
func (a *allocator) insertRange(start, end uint64) {
	for start < end {
		o := bits.Len64(end-start) - 1
		if start != 0 {
			if tz := bits.TrailingZeros64(start); tz < o {
				o = tz
			}
		}
		a.insertBlock(start, o)
		start += 1 << o
	}
}

// removeBlock deletes the free block of the given size at off.
func (a *allocator) removeBlock(off, size uint64) {
	order := bits.Len64(size) - 1
	list := a.freeLists[order]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= off })
	a.freeLists[order] = append(list[:i], list[i+1:]...)
}

// freeBlocks gathers every free buddy block, sorted by offset.
func (a *allocator) freeBlocks() []span {
	var blocks []span
	for k := range a.freeLists {
		for _, off := range a.freeLists[k] {
			blocks = append(blocks, span{addr: off, len: 1 << k})
		}
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].addr < blocks[j].addr })
	return blocks
}

// freeSpans reports the coalesced view of free memory: maximal runs of
// adjacent free blocks, in absolute addresses. Free space inside live
// slab chunks is not included — a chunk belongs to its class until its
// last object is freed.
func (a *allocator) freeSpans() []span {
	blocks := a.freeBlocks()
	var spans []span
	for i := 0; i < len(blocks); {
		start := blocks[i].addr
		end := start + blocks[i].len
		j := i + 1
		for j < len(blocks) && blocks[j].addr == end {
			end += blocks[j].len
			j++
		}
		spans = append(spans, span{addr: a.base + start, len: end - start})
		i = j
	}
	return spans
}

// available reports the total free bytes (which, due to fragmentation,
// may exceed the largest satisfiable single allocation).
func (a *allocator) available() uint64 { return a.size - a.inUse }

// largestFree reports the largest contiguous free span. Like the
// paper's §4.5 accounting it is advisory: slab-interior free objects
// are excluded, so a small allocation may still succeed when
// largestFree reads low.
func (a *allocator) largestFree() uint64 {
	var max uint64
	for _, s := range a.freeSpans() {
		if s.len > max {
			max = s.len
		}
	}
	return max
}

// resolve maps an address that may point into the middle of an
// allocation to (allocation base, offset). ok is false if the address
// is not inside any live allocation.
func (a *allocator) resolve(ptr uint64) (base, off uint64, ok bool) {
	// Linear scan is fine: allocation counts per device are small
	// (tens), and resolve is not on the per-byte path.
	p := ptr - a.base
	for b, n := range a.used {
		if p >= b && p < b+n {
			return a.base + b, p - b, true
		}
	}
	return 0, 0, false
}

// sizeOf returns the length of the allocation based at addr.
func (a *allocator) sizeOf(addr uint64) (uint64, bool) {
	n, ok := a.used[addr-a.base]
	return n, ok
}

// allocCount returns the number of live allocations.
func (a *allocator) allocCount() int { return len(a.used) }
