// Package gpu models the GPU devices the paper's evaluation runs on.
//
// A Device owns a fixed-capacity device memory managed by a first-fit
// allocator (so fragmentation and allocation failure behave like
// cudaMalloc), a single execution engine that kernels occupy one at a
// time (contexts time-share the processing cores, as on Fermi-class
// parts), and a single DMA engine through which host↔device transfers
// move at PCIe-like bandwidth. Devices can fail and be restored, and are
// added to / removed from a node at runtime by the layers above.
//
// All durations are model time, executed through a sim.Clock.
package gpu

import "time"

// Spec describes a GPU model. Speed is the device's kernel throughput
// relative to the reference device (Tesla C2050 = 1.0); a kernel whose
// metadata says BaseTime t runs in t/Speed on the device.
type Spec struct {
	Name       string
	SMs        int
	CoresPerSM int
	ClockMHz   int
	// MemBytes is the device memory capacity.
	MemBytes uint64
	// Speed is kernel throughput relative to the Tesla C2050.
	Speed float64
	// BandwidthBps is the host↔device DMA bandwidth in bytes per model
	// second.
	BandwidthBps uint64
}

// Cores returns the total CUDA core count.
func (s Spec) Cores() int { return s.SMs * s.CoresPerSM }

// Predefined device models, matching §5.1 of the paper. Relative speeds
// follow the paper's qualitative ranking (C2050 fastest, C1060 mid,
// Quadro 2000 "less powerful"); see DESIGN.md §6.
var (
	TeslaC2050 = Spec{
		Name: "Tesla C2050", SMs: 14, CoresPerSM: 32, ClockMHz: 1150,
		MemBytes: 3 << 30, Speed: 1.0, BandwidthBps: 6 << 30,
	}
	TeslaC1060 = Spec{
		Name: "Tesla C1060", SMs: 30, CoresPerSM: 8, ClockMHz: 1300,
		MemBytes: 4 << 30, Speed: 0.60, BandwidthBps: 5 << 30,
	}
	Quadro2000 = Spec{
		Name: "Quadro 2000", SMs: 4, CoresPerSM: 48, ClockMHz: 1250,
		MemBytes: 1 << 30, Speed: 0.35, BandwidthBps: 4 << 30,
	}
)

// Fixed per-operation overheads (model time), calibrated in DESIGN.md §6.
const (
	// LaunchOverhead is charged per kernel launch.
	LaunchOverhead = 10 * time.Microsecond
	// MemcpyOverhead is charged per DMA transfer, on top of the
	// bandwidth-proportional part.
	MemcpyOverhead = 20 * time.Microsecond
	// ContextCreateTime is the cost of spawning a CUDA context on the
	// device (paid by cudart at context creation).
	ContextCreateTime = 15 * time.Millisecond
)
