// Package sim provides the model-time substrate on which the whole
// simulation runs.
//
// The paper's evaluation is expressed in wall-clock seconds on real
// hardware. This reproduction keeps every duration in "model time"
// (model seconds map 1:1 to the paper's seconds) but executes them as
// scaled-down wall-clock sleeps, so that real goroutine concurrency —
// queueing, overlap of CPU and GPU phases, contention on the dispatcher —
// produces the timing behaviour, while the full evaluation suite runs in
// seconds instead of hours.
//
// A Clock with Scale = 0.001 executes one model second as one wall
// millisecond. All packages in this module take durations in model time
// and route every delay through a Clock.
package sim

import (
	"runtime"
	"sync/atomic"
	"time"
)

// DefaultScale is the default wall-seconds-per-model-second factor:
// one model second runs as one wall millisecond.
const DefaultScale = 1e-3

// Clock converts model time to scaled wall time. The zero value is not
// usable; construct with NewClock. A Clock is safe for concurrent use.
type Clock struct {
	scale   float64
	start   time.Time
	sleeps  atomic.Int64 // number of Sleep calls, for tests/metrics
	slept   atomic.Int64 // total model time slept, in nanoseconds
	stopped atomic.Bool
}

// NewClock returns a Clock that executes one model second in scale wall
// seconds. A scale <= 0 falls back to DefaultScale.
func NewClock(scale float64) *Clock {
	if scale <= 0 {
		scale = DefaultScale
	}
	return &Clock{scale: scale, start: time.Now()}
}

// Scale reports the wall-seconds-per-model-second factor.
func (c *Clock) Scale() float64 { return c.scale }

// Now returns the model time elapsed since the clock was created.
func (c *Clock) Now() time.Duration {
	wall := time.Since(c.start)
	return time.Duration(float64(wall) / c.scale)
}

// sleepFloor is the empirically observed minimum wall duration of
// time.Sleep on coarse-timer kernels (~1.2 ms). Wall delays below
// spinCutoff are executed as a Gosched spin, which is accurate to a few
// microseconds even under heavy goroutine concurrency; longer delays
// sleep for all but the last sleepFloor*2 and spin the remainder.
const (
	sleepFloor = 1200 * time.Microsecond
	spinCutoff = 3 * time.Millisecond
)

// Sleep blocks for d of model time (executed as d*scale of wall time).
// Negative or zero durations return immediately.
//
// The wall-clock delay is realised with a hybrid timer: the bulk via
// time.Sleep and the tail (below the OS timer granularity) via a
// cooperative spin, so that sub-millisecond wall delays — which carry
// multi-millisecond model meaning at small scales — keep their ratios.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.sleeps.Add(1)
	c.slept.Add(int64(d))
	sleepWall(c.wall(d))
}

// resolutionFloor bounds the fast path below: wall delays this short
// are finer than a clock read can resolve, so the deadline spin would
// expire on its very first check — after paying two clock reads. The
// fast path skips the reads and returns at once, which is the same
// observable behaviour (no yield, immediate return) at a fraction of
// the cost; experiment scales (1e-6 and up) put every meaningful model
// delay well above this threshold.
const resolutionFloor = 80 * time.Nanosecond

// sleepWall delays for approximately w of wall time.
func sleepWall(w time.Duration) {
	if w <= resolutionFloor {
		return
	}
	deadline := time.Now().Add(w)
	if w > spinCutoff {
		time.Sleep(w - 2*sleepFloor)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// After returns a channel that receives the current model time after d
// of model time has elapsed.
func (c *Clock) After(d time.Duration) <-chan time.Duration {
	ch := make(chan time.Duration, 1)
	go func() {
		c.Sleep(d)
		ch <- c.Now()
	}()
	return ch
}

// SleepCount reports how many Sleep calls have executed. Useful for
// asserting that a code path really paid a modeled latency.
func (c *Clock) SleepCount() int64 { return c.sleeps.Load() }

// TotalSlept reports the cumulative model time passed to Sleep.
func (c *Clock) TotalSlept() time.Duration { return time.Duration(c.slept.Load()) }

// wall converts a model duration to a wall duration.
func (c *Clock) wall(d time.Duration) time.Duration {
	w := time.Duration(float64(d) * c.scale)
	if w <= 0 && d > 0 {
		w = time.Nanosecond
	}
	return w
}

// Stopwatch measures elapsed model time against a Clock.
type Stopwatch struct {
	clock *Clock
	begin time.Duration
}

// NewStopwatch starts a stopwatch at the clock's current model time.
func NewStopwatch(c *Clock) *Stopwatch {
	return &Stopwatch{clock: c, begin: c.Now()}
}

// Elapsed returns the model time since the stopwatch started.
func (s *Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.begin }

// Restart resets the stopwatch to the current model time.
func (s *Stopwatch) Restart() { s.begin = s.clock.Now() }
