package sim

import "testing"

func TestForkDeterministicPerLabel(t *testing.T) {
	a := NewRNG(42).Fork("alpha")
	b := NewRNG(42).Fork("alpha")
	for i := 0; i < 100; i++ {
		if x, y := a.Int63(), b.Int63(); x != y {
			t.Fatalf("draw %d: forks of the same (seed, label) diverge: %d != %d", i, x, y)
		}
	}
}

func TestForkIndependentOfParentConsumption(t *testing.T) {
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		p2.Int63() // consume part of p2's stream before forking
	}
	a, b := p1.Fork("x"), p2.Fork("x")
	if a.Int63() != b.Int63() {
		t.Error("fork stream depends on how much of the parent was consumed")
	}
}

func TestForkLabelsDiverge(t *testing.T) {
	parent := NewRNG(1)
	a, b := parent.Fork("a"), parent.Fork("b")
	same := 0
	for i := 0; i < 20; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 20 {
		t.Error("forks with different labels produce identical streams")
	}
}

func TestForkSeedDependence(t *testing.T) {
	a := NewRNG(1).Fork("x")
	b := NewRNG(2).Fork("x")
	if a.Int63() == b.Int63() && a.Int63() == b.Int63() && a.Int63() == b.Int63() {
		t.Error("fork streams ignore the parent seed")
	}
}

func TestForkOfForkDiverges(t *testing.T) {
	root := NewRNG(3)
	direct := root.Fork("x")
	nested := root.Fork("y").Fork("x")
	if direct.Int63() == nested.Int63() && direct.Int63() == nested.Int63() {
		t.Error("fork chains collapse to the same stream")
	}
}
