package sim

import (
	"sync"
	"testing"
	"time"
)

func TestNewClockDefaultScale(t *testing.T) {
	for _, bad := range []float64{0, -1} {
		c := NewClock(bad)
		if c.Scale() != DefaultScale {
			t.Errorf("NewClock(%v).Scale() = %v, want %v", bad, c.Scale(), DefaultScale)
		}
	}
	c := NewClock(0.5)
	if c.Scale() != 0.5 {
		t.Errorf("Scale() = %v, want 0.5", c.Scale())
	}
}

func TestClockSleepAdvancesModelTime(t *testing.T) {
	c := NewClock(1e-4) // 1 model sec = 0.1 ms wall
	before := c.Now()
	c.Sleep(2 * time.Second) // 0.2 ms wall
	after := c.Now()
	if got := after - before; got < 2*time.Second {
		t.Errorf("model time advanced %v during a 2s model sleep, want >= 2s", got)
	}
	// Wildly generous upper bound: scheduling noise at this scale can be
	// large relative to the sleep, but not 100x.
	if got := after - before; got > 200*time.Second {
		t.Errorf("model time advanced %v during a 2s model sleep, want < 200s", got)
	}
}

func TestClockSleepZeroAndNegative(t *testing.T) {
	c := NewClock(1)
	c.Sleep(0)
	c.Sleep(-time.Second)
	if n := c.SleepCount(); n != 0 {
		t.Errorf("SleepCount() = %d after only no-op sleeps, want 0", n)
	}
	if s := c.TotalSlept(); s != 0 {
		t.Errorf("TotalSlept() = %v, want 0", s)
	}
}

func TestClockAccounting(t *testing.T) {
	c := NewClock(1e-6)
	c.Sleep(time.Second)
	c.Sleep(3 * time.Second)
	if n := c.SleepCount(); n != 2 {
		t.Errorf("SleepCount() = %d, want 2", n)
	}
	if s := c.TotalSlept(); s != 4*time.Second {
		t.Errorf("TotalSlept() = %v, want 4s", s)
	}
}

func TestClockAfter(t *testing.T) {
	c := NewClock(1e-6)
	select {
	case now := <-c.After(time.Second):
		if now < time.Second {
			t.Errorf("After(1s) delivered at model time %v, want >= 1s", now)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("After(1s) never fired")
	}
}

func TestClockConcurrentSleeps(t *testing.T) {
	c := NewClock(1e-6)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Sleep(time.Second)
			_ = c.Now()
		}()
	}
	wg.Wait()
	if n := c.SleepCount(); n != 50 {
		t.Errorf("SleepCount() = %d, want 50", n)
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock(1e-5)
	sw := NewStopwatch(c)
	c.Sleep(time.Second)
	if e := sw.Elapsed(); e < time.Second {
		t.Errorf("Elapsed() = %v after 1s model sleep, want >= 1s", e)
	}
	sw.Restart()
	if e := sw.Elapsed(); e > 30*time.Second {
		t.Errorf("Elapsed() = %v right after Restart, want small", e)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Intn(1000), b.Intn(1000); x != y {
			t.Fatalf("draw %d: RNGs with equal seeds diverged: %d vs %d", i, x, y)
		}
	}
	c := NewRNG(43)
	same := true
	for i := 0; i < 20; i++ {
		if NewRNG(42).Intn(1<<30) != c.Intn(1<<30) {
			same = false
		}
	}
	if same {
		t.Error("RNGs with different seeds produced identical streams")
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	g := NewRNG(7)
	p := g.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm(64) = %v is not a permutation", p)
		}
		seen[v] = true
	}
}
