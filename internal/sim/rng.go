package sim

import "math/rand"

// RNG is a deterministic random source used by workload generators and
// experiment drivers, so that (as in the paper's §5.3.1 methodology)
// the same randomly drawn job combinations can be replayed across all
// runtime configurations for apple-to-apple comparison.
//
// RNG is a thin wrapper over math/rand.Rand and is NOT safe for
// concurrent use; give each generator its own RNG.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
