package sim

import (
	"hash/fnv"
	"math/rand"
)

// RNG is a deterministic random source used by workload generators and
// experiment drivers, so that (as in the paper's §5.3.1 methodology)
// the same randomly drawn job combinations can be replayed across all
// runtime configurations for apple-to-apple comparison.
//
// RNG is a thin wrapper over math/rand.Rand and is NOT safe for
// concurrent use; give each generator its own RNG — Fork derives
// independently seeded children for exactly that purpose.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// NewRNG returns a deterministic RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this RNG was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Fork returns an independently seeded child RNG whose stream is a pure
// function of the parent's seed and the label — not of how much of the
// parent's stream has been consumed, nor of the order in which siblings
// are forked. Handing each goroutine (fault-plane hook, workload
// generator) its own fork gives every consumer a private deterministic
// stream, fixing the footgun that one shared RNG is neither safe for
// concurrent use nor replayable once draws interleave.
func (g *RNG) Fork(label string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(label))
	// Mix the label hash with the parent seed through the golden-ratio
	// multiplier so fork chains (a fork of a fork) keep diverging.
	child := int64(h.Sum64() ^ uint64(g.seed)*0x9E3779B97F4A7C15)
	return NewRNG(child)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform int64.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }
