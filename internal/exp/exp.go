// Package exp regenerates every table and figure of the paper's
// evaluation (§5) on the simulated cluster. Each experiment builds the
// corresponding hardware model from scratch, replays the paper's
// workloads and reports the same rows/series the paper plots, plus the
// counters it annotates (swap operations, migrations).
//
// Absolute numbers differ from the paper — the substrate is a model,
// not the authors' testbed — but the shapes are the reproduction
// target: who wins, by what rough factor, and where behaviour changes
// (see EXPERIMENTS.md for the side-by-side reading).
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"

	"gvrt/internal/core"
	"gvrt/internal/cudart"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/transport"
	"gvrt/internal/workload"

	"gvrt/internal/frontend"
)

// Options tunes an experiment run.
type Options struct {
	// Scale is the wall-seconds-per-model-second factor; 0 means 1e-3
	// (one model second per wall millisecond).
	Scale float64
	// Runs is the number of repetitions averaged for the randomized
	// experiments (the paper uses 10); 0 means 3.
	Runs int
	// Seed drives the random job draws; runs use Seed, Seed+1, ...
	Seed int64
	// Verbose, when set, receives progress lines.
	Verbose func(format string, args ...any)
}

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return 1e-3
	}
	return o.Scale
}

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 3
	}
	return o.Runs
}

func (o Options) logf(format string, args ...any) {
	if o.Verbose != nil {
		o.Verbose(format, args...)
	}
}

// Table is one regenerated table or figure.
type Table struct {
	// ID is the experiment identifier, e.g. "fig5".
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarises what the original figure showed, for
	// side-by-side reading.
	Paper string
	// Header and Rows are the regenerated series.
	Header []string
	Rows   [][]string
	// Notes carry calibration or methodology remarks.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Paper != "" {
		fmt.Fprintf(w, "paper: %s\n", t.Paper)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// secs formats a model duration as seconds with one decimal.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

// nodeEnv is a freshly built single-node environment.
type nodeEnv struct {
	clock *sim.Clock
	crt   *cudart.Runtime
	rt    *core.Runtime
}

// newNodeEnv builds devices + CUDA runtime + gvrt runtime.
func newNodeEnv(o Options, cfg core.Config, specs ...gpu.Spec) (*nodeEnv, error) {
	clock := sim.NewClock(o.scale())
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	rt, err := core.New(crt, cfg)
	if err != nil {
		return nil, err
	}
	return &nodeEnv{clock: clock, crt: crt, rt: rt}, nil
}

// connect opens an in-process gvrt client.
func (e *nodeEnv) connect(int) (workload.CUDA, error) {
	c, s := transport.Pipe()
	go e.rt.Serve(s)
	return frontend.Connect(c), nil
}

// runGvrtBatch runs a batch on a fresh gvrt node and returns the result
// plus runtime metrics.
func runGvrtBatch(o Options, cfg core.Config, specs []gpu.Spec, apps []workload.App) (workload.BatchResult, core.Metrics, error) {
	env, err := newNodeEnv(o, cfg, specs...)
	if err != nil {
		return workload.BatchResult{}, core.Metrics{}, err
	}
	defer env.rt.Close()
	res := workload.RunBatch(env.clock, apps, env.connect)
	return res, env.rt.Metrics(), nil
}

// runBareBatch runs a batch directly on a fresh bare CUDA runtime,
// placing job i on device i modulo the device count (the strongest
// bare-runtime configuration: a user manually spreading jobs).
func runBareBatch(o Options, specs []gpu.Spec, apps []workload.App) (workload.BatchResult, error) {
	clock := sim.NewClock(o.scale())
	devs := make([]*gpu.Device, len(specs))
	for i, s := range specs {
		devs[i] = gpu.NewDevice(i, s, clock)
	}
	crt := cudart.New(clock, devs...)
	res := workload.RunBatch(clock, apps, func(i int) (workload.CUDA, error) {
		return workload.NewBareClient(crt, i%len(specs))
	})
	return res, nil
}

// threeGPUNode is the §5.1 node: two Tesla C2050s and one Tesla C1060.
func threeGPUNode() []gpu.Spec {
	return []gpu.Spec{gpu.TeslaC2050, gpu.TeslaC2050, gpu.TeslaC1060}
}

// unbalancedNode is the §5.3.4 node: two C2050s and a Quadro 2000.
func unbalancedNode() []gpu.Spec {
	return []gpu.Spec{gpu.TeslaC2050, gpu.TeslaC2050, gpu.Quadro2000}
}

// All returns every experiment regenerator keyed by ID, in report
// order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"table2", Table2},
		{"ctxlimit", CtxLimit},
		{"fig1", Fig1},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"abl-vgpus", AblationVGPUCount},
		{"abl-defer", AblationDeferral},
		{"abl-swap", AblationInterSwap},
		{"abl-sched", AblationSchedulers},
		{"abl-ckpt", AblationCheckpoint},
		{"abl-offload", AblationOffloadThreshold},
	}
}
