package exp

import (
	"fmt"
	"time"

	"gvrt/internal/api"

	"gvrt/internal/cluster"
	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/sched"
	"gvrt/internal/sim"
	"gvrt/internal/workload"
)

// The ablations isolate the design choices §4 calls out: transfer
// deferral, inter-application swapping, the pluggable scheduler, the
// automatic checkpoint, and the offload threshold.

// chunkedUploadApp builds a synthetic application that uploads its
// input buffer in 16 chunks before every kernel — the "multiple data
// copy operations within the same allocated area" pattern whose bulk
// coalescing §4.5 calls out as a benefit of deferral.
func chunkedUploadApp() workload.App {
	const (
		buf    = 64 << 20
		chunk  = buf / 16
		iters  = 20
		kernel = 200 * time.Millisecond
	)
	bin := api.FatBinary{ID: "abl/chunked", Kernels: []api.KernelMeta{
		{Name: "consume", BaseTime: kernel},
	}}
	app := workload.App{Name: "chunked", Binary: bin, MemBytes: buf, KernelCalls: iters}
	app.Ops = append(app.Ops, workload.MallocOp{Buf: 0, Size: buf})
	for i := 0; i < iters; i++ {
		for c := 0; c < 16; c++ {
			app.Ops = append(app.Ops, workload.CopyHDOp{Buf: 0, Size: chunk})
		}
		app.Ops = append(app.Ops, workload.KernelOp{Name: "consume", Bufs: []int{0}})
	}
	app.Ops = append(app.Ops, workload.FreeOp{Buf: 0})
	return app
}

// AblationDeferral compares transfer deferral (the evaluation's
// configuration) against write-through (§4.5: "deferring has the
// opposite effect") on a chunked-upload workload where coalescing
// matters.
func AblationDeferral(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-defer",
		Title:  "Transfer deferral vs write-through: 4 chunked-upload jobs, 1 GPU, 4 vGPUs",
		Paper:  "§4.5: multiple copies into one area become a single bulk transfer under deferral",
		Header: []string{"configuration", "total (s)", "H2D transfers", "coalesced writes"},
	}
	for _, wt := range []bool{false, true} {
		env, err := newNodeEnv(o, core.Config{VGPUsPerDevice: 4, WriteThrough: wt}, gpu.TeslaC2050)
		if err != nil {
			return nil, err
		}
		apps := make([]workload.App, 4)
		for i := range apps {
			apps[i] = chunkedUploadApp()
		}
		res := workload.RunBatch(env.clock, apps, env.connect)
		m := env.rt.Metrics()
		st := env.crt.Device(0).Stats()
		env.rt.Close()
		if res.Failed() > 0 {
			return nil, fmt.Errorf("abl-defer wt=%v: %v", wt, firstErr(res))
		}
		name := "deferral (default)"
		if wt {
			name = "write-through"
		}
		t.Rows = append(t.Rows, []string{name, secs(res.Total),
			fmt.Sprintf("%d", st.H2DOps), fmt.Sprintf("%d", m.Memory.CoalescedWrites)})
		o.logf("abl-defer: wt=%v done", wt)
	}
	return t, nil
}

// AblationInterSwap disables inter-application swap: contexts that
// cannot obtain memory fall back to unbind-and-retry only, showing what
// the swap protocol buys on a memory-conflicted workload.
func AblationInterSwap(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-swap",
		Title:  "Inter-application swap on/off: 12 MM-L jobs, 1 GPU, 4 vGPUs",
		Paper:  "§4.5: without swap, conflicting apps can only unbind and retry",
		Header: []string{"configuration", "total (s)", "inter-app swaps", "unbind retries"},
	}
	mk := func() []workload.App {
		apps := make([]workload.App, 12)
		for i := range apps {
			// CPU fraction 2: long CPU phases leave the GPU idle
			// whenever the co-located apps cannot obtain memory, which
			// is exactly what inter-application swap fixes.
			apps[i] = workload.MML(2)
		}
		return apps
	}
	for _, disabled := range []bool{false, true} {
		res, m, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 4, DisableInterSwap: disabled},
			[]gpu.Spec{gpu.TeslaC2050}, mk())
		if err != nil {
			return nil, err
		}
		if res.Failed() > 0 {
			return nil, fmt.Errorf("abl-swap disabled=%v: %v", disabled, firstErr(res))
		}
		name := "inter-app swap enabled"
		if disabled {
			name = "inter-app swap disabled"
		}
		t.Rows = append(t.Rows, []string{name, secs(res.Total),
			fmt.Sprintf("%d", m.InterAppSwaps), fmt.Sprintf("%d", m.UnbindRetries)})
		o.logf("abl-swap: disabled=%v done", disabled)
	}
	return t, nil
}

// AblationSchedulers compares the three §2 scheduling policies on a
// contended single-vGPU device, where the waiting-list pick matters.
func AblationSchedulers(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-sched",
		Title:  "Scheduling policies: 12 short + 4 MM-L jobs, 1 GPU, 1 vGPU",
		Paper:  "§2: FCFS default; SJF lowers average completion; credit-based adds fairness",
		Header: []string{"policy", "total (s)", "avg (s)", "p95 (s)"},
	}
	policies := []sched.Policy{sched.FCFS{}, sched.ShortestJobFirst{}, sched.CreditBased{}}
	for _, p := range policies {
		var total, avg, p95 float64
		for r := 0; r < o.runs(); r++ {
			// A mix of short jobs and long MM-L jobs: the waiting-list
			// pick decides whether short jobs are stuck behind 30s+
			// kernels (FCFS) or overtake them (SJF).
			rng := sim.NewRNG(o.Seed + int64(r))
			apps := workload.RandomShortBatch(rng, 12)
			for i := 0; i < 4; i++ {
				apps = append(apps, workload.MML(0))
			}
			rng.Shuffle(len(apps), func(i, j int) { apps[i], apps[j] = apps[j], apps[i] })
			res, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 1, Policy: p},
				[]gpu.Spec{gpu.TeslaC2050}, apps)
			if err != nil {
				return nil, err
			}
			if res.Failed() > 0 {
				return nil, fmt.Errorf("abl-sched %s: %v", p.Name(), firstErr(res))
			}
			total += res.Total.Seconds()
			avg += res.Avg.Seconds()
			p95 += res.Percentile(95).Seconds()
		}
		runs := float64(o.runs())
		t.Rows = append(t.Rows, []string{p.Name(),
			fmt.Sprintf("%.1f", total/runs), fmt.Sprintf("%.1f", avg/runs), fmt.Sprintf("%.1f", p95/runs)})
		o.logf("abl-sched: %s done", p.Name())
	}
	return t, nil
}

// AblationCheckpoint measures fault recovery with and without the
// automatic checkpoint after long kernels (§4.6): a device is failed
// mid-run and the kernels replayed are counted.
func AblationCheckpoint(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-ckpt",
		Title:  "Automatic checkpointing: device failure halfway through an iterative job (2 GPUs)",
		Paper:  "§4.6: checkpoints after long kernels bound the restart penalty",
		Header: []string{"configuration", "job time (s)", "kernels replayed", "checkpoints"},
	}
	// An iterative solver: one upload, then ten 3s kernels updating the
	// state in place, one download at the end. Without checkpoints,
	// every kernel since the start must be replayed after a failure.
	iterative := func() workload.App {
		bin := api.FatBinary{ID: "abl/iter", Kernels: []api.KernelMeta{
			{Name: "step", BaseTime: 3 * time.Second},
		}}
		app := workload.App{Name: "iter", Binary: bin, MemBytes: 256 << 20, KernelCalls: 10}
		app.Ops = append(app.Ops,
			workload.MallocOp{Buf: 0, Size: 256 << 20},
			workload.CopyHDOp{Buf: 0, Size: 256 << 20},
		)
		for i := 0; i < 10; i++ {
			app.Ops = append(app.Ops,
				workload.KernelOp{Name: "step", Bufs: []int{0}},
				workload.CPUPhase{D: 500 * time.Millisecond},
			)
		}
		app.Ops = append(app.Ops, workload.CopyDHOp{Buf: 0, Size: 256 << 20}, workload.FreeOp{Buf: 0})
		return app
	}

	for _, auto := range []time.Duration{0, 2 * time.Second} {
		env, err := newNodeEnv(o, core.Config{AutoCheckpoint: auto}, gpu.TeslaC2050, gpu.TeslaC2050)
		if err != nil {
			return nil, err
		}
		app := iterative()

		// Fail device 0 once it has run roughly half the job's kernels.
		half := app.GPUTime() / 2
		done := make(chan struct{})
		go func() {
			for env.crt.Device(0).Stats().Busy < half {
				select {
				case <-done:
					return
				default:
				}
				env.clock.Sleep(500 * time.Millisecond)
			}
			env.rt.FailDevice(0)
		}()

		res := workload.RunBatch(env.clock, []workload.App{app}, env.connect)
		close(done)
		m := env.rt.Metrics()
		env.rt.Close()
		if res.Failed() > 0 {
			return nil, fmt.Errorf("abl-ckpt auto=%v: %v", auto, firstErr(res))
		}
		name := "no auto-checkpoint"
		if auto > 0 {
			name = fmt.Sprintf("auto-checkpoint >= %s kernels", auto)
		}
		t.Rows = append(t.Rows, []string{name, secs(res.Total),
			fmt.Sprintf("%d", m.Replays), fmt.Sprintf("%d", m.Memory.Checkpoints)})
		o.logf("abl-ckpt: auto=%v done", auto)
	}
	t.Notes = append(t.Notes,
		"jobs always complete with correct state; the difference is replay work after the failure")
	return t, nil
}

// AblationOffloadThreshold sweeps the §4.7 offload threshold on an
// overloaded single-GPU node with a three-GPU peer.
func AblationOffloadThreshold(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-offload",
		Title:  "Offload threshold sweep: 24 short jobs on a 1-GPU node with a 3-GPU peer",
		Paper:  "§4.7: the pending-list threshold trades local queuing against remote execution",
		Header: []string{"threshold", "total (s)", "offloaded"},
	}
	for _, thr := range []int{0, 2, 4, 8, 16} {
		clock := sim.NewClock(o.scale())
		small, err := cluster.NewNode("small", clock, []gpu.Spec{gpu.TeslaC1060},
			core.Config{VGPUsPerDevice: 4, OffloadThreshold: thr})
		if err != nil {
			return nil, err
		}
		big, err := cluster.NewNode("big", clock, threeGPUNode(), core.Config{VGPUsPerDevice: 4})
		if err != nil {
			return nil, err
		}
		small.SetPeer(big)

		apps := workload.RandomShortBatch(sim.NewRNG(o.Seed), 24)
		res := workload.RunBatch(clock, apps, func(i int) (workload.CUDA, error) {
			return small.Connect()
		})
		m := small.RT.Metrics()
		small.Close()
		big.Close()
		if res.Failed() > 0 {
			return nil, fmt.Errorf("abl-offload thr=%d: %v", thr, firstErr(res))
		}
		name := fmt.Sprintf("%d", thr)
		if thr == 0 {
			name = "off"
		}
		t.Rows = append(t.Rows, []string{name, secs(res.Total), fmt.Sprintf("%d", m.Offloaded)})
		o.logf("abl-offload: thr=%d done", thr)
	}
	return t, nil
}
