package exp

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// RenderChart draws the table's numeric columns as horizontal ASCII bar
// groups, one group per row — a terminal-friendly approximation of the
// paper's bar charts. Non-numeric columns become the group labels;
// every numeric column is one bar per group, scaled to the table-wide
// maximum.
func (t *Table) RenderChart(w io.Writer) {
	const barWidth = 44

	numeric := numericColumns(t)
	if len(numeric) == 0 {
		fmt.Fprintf(w, "== %s: no numeric series to chart ==\n", t.ID)
		return
	}

	// Table-wide maximum for a common scale.
	max := 0.0
	for _, row := range t.Rows {
		for _, col := range numeric {
			if v, ok := cellValue(row, col); ok && v > max {
				max = v
			}
		}
	}
	if max <= 0 {
		max = 1
	}

	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	labelWidth := 0
	for _, col := range numeric {
		if n := len(t.Header[col]); n > labelWidth {
			labelWidth = n
		}
	}
	for _, row := range t.Rows {
		fmt.Fprintf(w, "%s\n", rowLabel(t, row, numeric))
		for _, col := range numeric {
			v, ok := cellValue(row, col)
			if !ok {
				continue
			}
			n := int(v / max * barWidth)
			if n == 0 && v > 0 {
				n = 1
			}
			fmt.Fprintf(w, "  %-*s |%s %s\n", labelWidth, t.Header[col],
				strings.Repeat("#", n), row[col])
		}
	}
	fmt.Fprintln(w)
}

// numericColumns finds the columns where every non-empty cell parses as
// a number (ignoring a trailing '%').
func numericColumns(t *Table) []int {
	var cols []int
	for col := 1; col < len(t.Header); col++ {
		any := false
		ok := true
		for _, row := range t.Rows {
			if col >= len(row) || row[col] == "" || row[col] == "-" {
				continue
			}
			if _, isNum := cellValue(row, col); !isNum {
				ok = false
				break
			}
			any = true
		}
		if ok && any {
			cols = append(cols, col)
		}
	}
	return cols
}

// cellValue parses a numeric cell; "n/a", "-" and labels fail cleanly.
func cellValue(row []string, col int) (float64, bool) {
	if col >= len(row) {
		return 0, false
	}
	s := strings.TrimSuffix(strings.TrimSpace(row[col]), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 {
		return 0, false
	}
	return v, true
}

// rowLabel joins the non-numeric cells of a row into its group label.
func rowLabel(t *Table, row []string, numeric []int) string {
	isNumeric := map[int]bool{}
	for _, c := range numeric {
		isNumeric[c] = true
	}
	var parts []string
	for i, cell := range row {
		if isNumeric[i] || cell == "" {
			continue
		}
		label := cell
		if i < len(t.Header) && t.Header[i] != "" {
			label = t.Header[i] + "=" + cell
		}
		parts = append(parts, label)
	}
	if len(parts) == 0 {
		return "(row)"
	}
	return strings.Join(parts, " ")
}
