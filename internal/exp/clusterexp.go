package exp

import (
	"fmt"

	"gvrt/internal/cluster"
	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/workload"
)

// clusterConfigs is the three cluster configurations of §5.4: GPU
// serialization (1 vGPU/device), GPU sharing (4 vGPUs/device), and
// sharing plus load balancing via inter-node offloading.
type clusterConfig struct {
	name    string
	vgpus   int
	offload bool
}

func clusterConfigs() []clusterConfig {
	return []clusterConfig{
		{name: "serialized", vgpus: 1},
		{name: "sharing (4 vGPUs)", vgpus: 4},
		{name: "sharing + LB", vgpus: 4, offload: true},
	}
}

// runCluster builds the §5.4 two-compute-node cluster — a three-GPU
// node (2x C2050 + C1060) plus a single-C1060 node behind a
// GPU-oblivious TORQUE-like head — and runs the batch. The offload
// threshold scales with node capacity: a node redirects new application
// threads once its projected queue exceeds twice its vGPU count, so
// only genuinely overloaded nodes shed work.
func runCluster(o Options, cc clusterConfig, apps []workload.App) (workload.BatchResult, []core.Metrics, error) {
	clock := sim.NewClock(o.scale())
	cfg := func(nGPUs int) core.Config {
		c := core.Config{VGPUsPerDevice: cc.vgpus}
		if cc.offload {
			c.OffloadThreshold = 2 * cc.vgpus * nGPUs
		}
		return c
	}
	a, err := cluster.NewNode("node-a", clock, threeGPUNode(), cfg(3))
	if err != nil {
		return workload.BatchResult{}, nil, err
	}
	b, err := cluster.NewNode("node-b", clock, []gpu.Spec{gpu.TeslaC1060}, cfg(1))
	if err != nil {
		return workload.BatchResult{}, nil, err
	}
	a.SetPeer(b)
	b.SetPeer(a)
	defer a.Close()
	defer b.Close()

	head := cluster.NewHead(clock, a, b)
	res := head.RunOblivious(apps)
	return res, []core.Metrics{a.RT.Metrics(), b.RT.Metrics()}, nil
}

// Fig10 reproduces Figure 10: a variable number of short-running jobs
// on the two-node cluster under the TORQUE-like head, comparing
// serialized execution, GPU sharing, and sharing plus inter-node load
// balancing. Reported metrics are Total and Avg, as in the paper.
func Fig10(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Two-node cluster, short jobs: sharing and offloading (s)",
		Paper:  "sharing gives up to ~28% over serialized; offloading adds up to ~18% by draining the 1-GPU node",
		Header: []string{"# jobs", "metric", "serialized", "sharing (4 vGPUs)", "sharing + LB", "offloaded"},
	}
	for _, n := range []int{16, 32, 48} {
		type agg struct{ total, avg float64 }
		sums := make([]agg, len(clusterConfigs()))
		var offloadedSum int64
		for r := 0; r < o.runs(); r++ {
			seed := o.Seed + int64(r)
			for i, cc := range clusterConfigs() {
				apps := workload.RandomShortBatch(sim.NewRNG(seed), n)
				res, ms, err := runCluster(o, cc, apps)
				if err != nil {
					return nil, err
				}
				if res.Failed() > 0 {
					return nil, fmt.Errorf("fig10 %s n=%d: %v", cc.name, n, firstErr(res))
				}
				sums[i].total += res.Total.Seconds()
				sums[i].avg += res.Avg.Seconds()
				if cc.offload {
					offloadedSum += ms[0].Offloaded + ms[1].Offloaded
				}
			}
			o.logf("fig10: n=%d run %d done", n, r)
		}
		runs := float64(o.runs())
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("%d", n), "Total",
				fmt.Sprintf("%.1f", sums[0].total/runs),
				fmt.Sprintf("%.1f", sums[1].total/runs),
				fmt.Sprintf("%.1f", sums[2].total/runs),
				fmt.Sprintf("%.1f", float64(offloadedSum)/runs)},
			[]string{"", "Avg",
				fmt.Sprintf("%.1f", sums[0].avg/runs),
				fmt.Sprintf("%.1f", sums[1].avg/runs),
				fmt.Sprintf("%.1f", sums[2].avg/runs),
				""})
	}
	return t, nil
}

// Fig11 reproduces Figure 11: long-running jobs with conflicting
// memory requirements (25% BS-L / 75% MM-L) on the two-node cluster,
// same three configurations.
func Fig11(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "Two-node cluster, long jobs (BS-L/MM-L 25/75): sharing and offloading (s)",
		Paper:  "sharing gives up to ~50% despite swap overhead; offloading accelerates further",
		Header: []string{"# jobs", "metric", "serialized", "sharing (4 vGPUs)", "sharing + LB", "offloaded"},
	}
	for _, n := range []int{16, 32, 48} {
		type agg struct{ total, avg float64 }
		sums := make([]agg, len(clusterConfigs()))
		var offloadedSum int64
		for i, cc := range clusterConfigs() {
			apps := workload.MixedBatch(n, 25, 1)
			res, ms, err := runCluster(o, cc, apps)
			if err != nil {
				return nil, err
			}
			if res.Failed() > 0 {
				return nil, fmt.Errorf("fig11 %s n=%d: %v", cc.name, n, firstErr(res))
			}
			sums[i].total = res.Total.Seconds()
			sums[i].avg = res.Avg.Seconds()
			if cc.offload {
				offloadedSum = ms[0].Offloaded + ms[1].Offloaded
			}
			o.logf("fig11: n=%d %s done (%.1fs)", n, cc.name, res.Total.Seconds())
		}
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("%d", n), "Total",
				fmt.Sprintf("%.1f", sums[0].total),
				fmt.Sprintf("%.1f", sums[1].total),
				fmt.Sprintf("%.1f", sums[2].total),
				fmt.Sprintf("%d", offloadedSum)},
			[]string{"", "Avg",
				fmt.Sprintf("%.1f", sums[0].avg),
				fmt.Sprintf("%.1f", sums[1].avg),
				fmt.Sprintf("%.1f", sums[2].avg),
				""})
	}
	return t, nil
}
