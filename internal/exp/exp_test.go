package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/workload"
)

// fast options: the logic paths run fully, wall time stays negligible.
// Timing *ratios* are not asserted at this scale (wall noise dominates);
// the shape regression tests below use a slower clock.
func fastOpts() Options { return Options{Scale: 1e-6, Runs: 1, Seed: 1} }

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID: "x", Title: "demo", Paper: "paper says so",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== x: demo ==", "paper says so", "long-header", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != 1e-3 || o.runs() != 3 {
		t.Errorf("defaults = scale %v, runs %d", o.scale(), o.runs())
	}
	o = Options{Scale: 0.5, Runs: 7}
	if o.scale() != 0.5 || o.runs() != 7 {
		t.Errorf("overrides ignored")
	}
	o.logf("no verbose sink: must not panic")
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Run == nil {
			t.Errorf("experiment with empty ID or nil Run")
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table2", "ctxlimit", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
		if !ids[want] {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

// TestCtxLimitShape: the one experiment whose outcome is count-based,
// not timing-based, so it is exact at any clock scale.
func TestCtxLimitShape(t *testing.T) {
	tbl, err := CtxLimit(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	if tbl.Rows[0][3] != "4" {
		t.Errorf("bare runtime failed %s of 12 jobs, want 4", tbl.Rows[0][3])
	}
	if tbl.Rows[1][2] != "48" || tbl.Rows[1][3] != "0" {
		t.Errorf("gvrt row = %v, want 48 completed, 0 failed", tbl.Rows[1])
	}
	for _, n := range tbl.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("note flags broken model: %s", n)
		}
	}
}

// TestTable2Shape checks every program runs to completion and the
// kernel-call column matches the paper.
func TestTable2Shape(t *testing.T) {
	tbl, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 13 {
		t.Fatalf("%d rows, want 13", len(tbl.Rows))
	}
	want := map[string]string{"BP": "40", "SC": "3300", "MM-L": "10"}
	for _, row := range tbl.Rows {
		if w, ok := want[row[0]]; ok && row[1] != w {
			t.Errorf("%s kernel calls = %s, want %s", row[0], row[1], w)
		}
	}
}

// TestFig7Shape is the headline shape regression: serialized execution
// grows with CPU fraction while sharing stays flat. It runs at a clock
// scale where modeled time dominates, with a trimmed workload (12 jobs,
// 2 fractions) to stay fast.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-shape test")
	}
	o := Options{Scale: 2e-4, Runs: 1, Seed: 1}
	specs := threeGPUNode()
	mk := func(frac float64) []workload.App {
		batch := make([]workload.App, 12)
		for i := range batch {
			batch[i] = workload.MML(frac)
		}
		return batch
	}
	measure := func(vgpus int, frac float64) float64 {
		res, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: vgpus}, specs, mk(frac))
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed() > 0 {
			t.Fatalf("vgpus=%d frac=%v: %v", vgpus, frac, firstErr(res))
		}
		return res.Total.Seconds()
	}

	ser0, ser2 := measure(1, 0), measure(1, 2)
	shr0, shr2 := measure(4, 0), measure(4, 2)

	// Serialized grows strongly with CPU fraction.
	if ser2 < ser0*1.8 {
		t.Errorf("serialized: frac 2 (%v s) not ≫ frac 0 (%v s)", ser2, ser0)
	}
	// Sharing stays flat-ish.
	if shr2 > shr0*1.5 {
		t.Errorf("sharing: frac 2 (%v s) grew vs frac 0 (%v s)", shr2, shr0)
	}
	// At high CPU fraction, sharing clearly beats serialization.
	if shr2 > ser2*0.7 {
		t.Errorf("sharing at frac 2 (%v s) not clearly below serialized (%v s)", shr2, ser2)
	}
}

// TestBareBaselineRoundRobin checks the bare batch places jobs across
// devices.
func TestBareBaselineRoundRobin(t *testing.T) {
	o := fastOpts()
	apps := []workload.App{workload.MT(), workload.MT(), workload.MT()}
	res, err := runBareBatch(o, []gpu.Spec{gpu.TeslaC2050, gpu.TeslaC1060}, apps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() != 0 {
		t.Fatalf("bare batch failed: %v", res.Errors)
	}
}

// TestBenchNumbersParse: every numeric cell in a regenerated table must
// parse, so downstream tooling (bench harness, plots) can consume it.
func TestBenchNumbersParse(t *testing.T) {
	tbl, err := CtxLimit(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.Atoi(cell); err != nil {
				t.Errorf("cell %q does not parse as int", cell)
			}
		}
	}
}

func TestRenderChart(t *testing.T) {
	tbl := &Table{
		ID: "c", Title: "chart demo",
		Header: []string{"x", "series-a", "series-b", "note"},
		Rows: [][]string{
			{"p1", "10.0", "5.0", "n/a"},
			{"p2", "20.0", "0", "n/a"},
		},
	}
	var buf bytes.Buffer
	tbl.RenderChart(&buf)
	out := buf.String()
	for _, want := range []string{"chart demo", "series-a", "series-b", "x=p1", "x=p2", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The 20.0 bar must be about twice the 10.0 bar.
	lines := strings.Split(out, "\n")
	bars := map[string]int{}
	ctx := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "x=") {
			ctx = l
		}
		if strings.Contains(l, "series-a") && ctx != "" {
			bars[ctx] = strings.Count(l, "#")
		}
	}
	if bars["x=p2"] < bars["x=p1"]*2-2 || bars["x=p2"] > bars["x=p1"]*2+2 {
		t.Errorf("bar scaling off: %v", bars)
	}
	// A table with no numeric columns degrades gracefully.
	empty := &Table{ID: "e", Header: []string{"a", "b"}, Rows: [][]string{{"x", "y"}}}
	buf.Reset()
	empty.RenderChart(&buf)
	if !strings.Contains(buf.String(), "no numeric series") {
		t.Error("empty chart message missing")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at a tiny
// clock scale: no timing assertions, but every code path — workload
// construction, cluster wiring, failure injection, table assembly —
// must complete without error.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole evaluation")
	}
	o := Options{Scale: 1e-6, Runs: 1, Seed: 1}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Error("no rows")
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			tbl.RenderChart(&buf)
			if buf.Len() == 0 {
				t.Error("rendering produced nothing")
			}
		})
	}
}
