package exp

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/workload"
)

// The determinism-equivalence suite guards the per-device sharding
// refactor (DESIGN.md §11): for a fixed seed, the experiment machinery
// must keep producing byte-identical rows before and after any change
// to the runtime's locking. The golden files under testdata/ were
// generated from the pre-sharding runtime and are only regenerated
// deliberately with -update.
//
// Timing cells (the "(s)" columns) are wall-clock derived — the model
// clock divides real elapsed time by the scale — so they can never be
// byte-stable across runs, on any runtime. The goldens therefore pin
// every deterministic projection of the Table 2 and Figure 5 rows:
// program identity, kernel-call counts, footprints, classes, the
// seeded job draws, per-cell success counts and the exact number of
// client calls served. A scheduling change that alters which calls are
// issued, reorders a draw, or fails a job shows up as a golden diff.

var update = flag.Bool("update", false, "rewrite determinism golden files")

// table2Rows renders the deterministic projection of exp.Table2: every
// column except the wall-derived standalone time.
func table2Rows(t *testing.T, o Options) string {
	t.Helper()
	tab, err := Table2(o)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	var b strings.Builder
	for _, row := range tab.Rows {
		if len(row) != 5 {
			t.Fatalf("Table2 row has %d columns, want 5: %q", len(row), row)
		}
		// row = [program, kernel calls, memory MB, class, standalone s];
		// drop only the timing column.
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n", row[0], row[1], row[2], row[3])
	}
	return b.String()
}

// fig5Rows renders the deterministic projection of exp.Fig5's
// configuration matrix: for each batch size, the seeded job draw and,
// per vGPU configuration, the jobs completed and total client calls
// served by the runtime.
func fig5Rows(t *testing.T, o Options) string {
	t.Helper()
	specs := []gpu.Spec{gpu.TeslaC2050}
	var b strings.Builder
	for _, n := range []int{1, 2, 4, 8} {
		draw := workload.RandomShortBatch(sim.NewRNG(o.Seed), n)
		names := make([]string, len(draw))
		for i, app := range draw {
			names[i] = app.Name
		}
		fmt.Fprintf(&b, "n=%d draw=%s\n", n, strings.Join(names, ","))
		for _, v := range []int{1, 2, 4, 8} {
			res, m, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: v}, specs,
				workload.RandomShortBatch(sim.NewRNG(o.Seed), n))
			if err != nil {
				t.Fatalf("fig5 projection n=%d vgpus=%d: %v", n, v, err)
			}
			fmt.Fprintf(&b, "n=%d vgpus=%d completed=%d failed=%d calls=%d\n",
				n, v, len(res.JobTimes)-res.Failed(), res.Failed(), m.CallsServed)
		}
	}
	return b.String()
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (generate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("rows diverge from %s (pre-sharding golden).\n--- got ---\n%s--- want ---\n%s",
			path, got, string(want))
	}
}

func goldenOpts() Options {
	// Match exp_test.go's fastOpts: tiny scale, one run, fixed seed.
	return Options{Scale: 1e-6, Runs: 1, Seed: 1}
}

// TestTable2GoldenRows pins Table 2's deterministic row projection to
// the pre-sharding golden.
func TestTable2GoldenRows(t *testing.T) {
	checkGolden(t, "table2_rows.golden", table2Rows(t, goldenOpts()))
}

// TestFig5GoldenRows pins the Figure 5 matrix's deterministic
// projection — seeded draws, completions, and calls served per cell —
// to the pre-sharding golden.
func TestFig5GoldenRows(t *testing.T) {
	checkGolden(t, "fig5_rows.golden", fig5Rows(t, goldenOpts()))
}

// TestDeterminismRunTwice runs the Figure 5 projection twice in one
// process and requires byte equality: a refactor that makes scheduling
// outcomes depend on map iteration order or racy state shows up here
// even without consulting the goldens.
func TestDeterminismRunTwice(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	first := fig5Rows(t, goldenOpts())
	second := fig5Rows(t, goldenOpts())
	if first != second {
		t.Errorf("same-seed runs diverge within one process:\n--- first ---\n%s--- second ---\n%s",
			first, second)
	}
}
