package exp

import (
	"fmt"
	"time"

	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/workload"
)

// Table2 reproduces Table 2: the benchmark programs with their
// kernel-call counts, modeled footprints, and the measured standalone
// execution time of each on a dedicated Tesla C2050 under gvrt —
// verifying the §5.2 calibration (short: 3–5 s, long: 30–90 s).
func Table2(o Options) (*Table, error) {
	t := &Table{
		ID:     "table2",
		Title:  "Benchmark programs (standalone on a Tesla C2050, CPU fraction 1 for MM-*)",
		Paper:  "short-running programs take 3-5 s each, long-running ones 30-90 s",
		Header: []string{"program", "kernel calls", "memory (MB)", "class", "standalone (s)"},
	}
	for _, app := range workload.AllApps() {
		res, _, err := runGvrtBatch(o, core.Config{}, []gpu.Spec{gpu.TeslaC2050}, []workload.App{app})
		if err != nil {
			return nil, err
		}
		if res.Failed() > 0 {
			return nil, fmt.Errorf("table2: %s failed: %v", app.Name, res.Errors)
		}
		class := "short"
		if app.LongRunning {
			class = "long"
		}
		t.Rows = append(t.Rows, []string{
			app.Name,
			fmt.Sprintf("%d", app.KernelCalls),
			fmt.Sprintf("%d", app.MemBytes>>20),
			class,
			secs(res.Total),
		})
		o.logf("table2: %s done (%s s)", app.Name, secs(res.Total))
	}
	return t, nil
}

// CtxLimit reproduces the §1/§5.3.1 observation: the bare CUDA runtime
// cannot handle more than eight concurrent jobs stably, while gvrt
// funnels arbitrarily many through its few persistent contexts.
func CtxLimit(o Options) (*Table, error) {
	t := &Table{
		ID:     "ctxlimit",
		Title:  "Concurrency limit: bare CUDA runtime vs gvrt (1x Tesla C2050)",
		Paper:  "the CUDA runtime supports at most 8 concurrent jobs; gvrt handles 48+",
		Header: []string{"configuration", "jobs", "completed", "failed"},
	}
	mk := func(n int) []workload.App {
		apps := make([]workload.App, n)
		for i := range apps {
			apps[i] = workload.MT()
		}
		return apps
	}
	// Bare runtime, 12 concurrent jobs: the ninth and later fail.
	bare, err := runBareBatch(o, []gpu.Spec{gpu.TeslaC2050}, mk(12))
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"bare CUDA runtime", "12",
		fmt.Sprintf("%d", 12-bare.Failed()), fmt.Sprintf("%d", bare.Failed())})

	// gvrt, 48 concurrent jobs on the same single GPU.
	res, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 8}, []gpu.Spec{gpu.TeslaC2050}, mk(48))
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"gvrt (8 vGPUs)", "48",
		fmt.Sprintf("%d", 48-res.Failed()), fmt.Sprintf("%d", res.Failed())})
	if bare.Failed() == 0 {
		t.Notes = append(t.Notes, "WARNING: bare runtime showed no failures; limit model broken")
	}
	return t, nil
}

// Fig5 reproduces Figure 5: total execution time of 1/2/4/8 randomly
// drawn short-running jobs on a node with one GPU, comparing the bare
// CUDA runtime (lower bound) with gvrt at 1/2/4/8 vGPUs. Each cell
// averages Runs draws, with identical draws across configurations
// (§5.3.1's apple-to-apple methodology).
func Fig5(o Options) (*Table, error) {
	t := &Table{
		ID:    "fig5",
		Title: "Overhead: short jobs on 1 GPU (total execution time, s)",
		Paper: "gvrt approaches the bare runtime as vGPUs increase; worst-case overhead ~10%",
		Header: []string{"# jobs", "CUDA runtime", "1 vGPU", "2 vGPUs", "4 vGPUs", "8 vGPUs",
			"overhead @8vGPU"},
	}
	specs := []gpu.Spec{gpu.TeslaC2050}
	vgpuConfigs := []int{1, 2, 4, 8}
	for _, n := range []int{1, 2, 4, 8} {
		totals := make([]time.Duration, 1+len(vgpuConfigs))
		for r := 0; r < o.runs(); r++ {
			seed := o.Seed + int64(r)
			bare, err := runBareBatch(o, specs, workload.RandomShortBatch(sim.NewRNG(seed), n))
			if err != nil {
				return nil, err
			}
			if bare.Failed() > 0 {
				return nil, fmt.Errorf("fig5: bare run failed: %v", bare.Errors)
			}
			totals[0] += bare.Total
			for k, v := range vgpuConfigs {
				res, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: v}, specs,
					workload.RandomShortBatch(sim.NewRNG(seed), n))
				if err != nil {
					return nil, err
				}
				if res.Failed() > 0 {
					return nil, fmt.Errorf("fig5: %d vGPUs failed: %v", v, res.Errors)
				}
				totals[k+1] += res.Total
			}
			o.logf("fig5: n=%d run %d done", n, r)
		}
		row := []string{fmt.Sprintf("%d", n)}
		for _, tot := range totals {
			row = append(row, secs(tot/time.Duration(o.runs())))
		}
		row = append(row, fmt.Sprintf("%.0f%%", 100*(float64(totals[len(totals)-1])/float64(totals[0])-1)))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reproduces Figure 6: 8–48 short-running jobs on the three-GPU
// node. The bare CUDA runtime cannot handle more than 8 concurrent
// jobs, so it is reported only for the first point.
func Fig6(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "GPU sharing: short jobs on 3 GPUs (total execution time, s)",
		Paper:  "sharing gains grow with job count; 4 vGPUs/device is the sweet spot; bare runtime capped at 8 jobs",
		Header: []string{"# jobs", "CUDA runtime", "1 vGPU", "2 vGPUs", "4 vGPUs"},
	}
	specs := threeGPUNode()
	vgpuConfigs := []int{1, 2, 4}
	for _, n := range []int{8, 16, 32, 48} {
		totals := make([]time.Duration, 1+len(vgpuConfigs))
		bareOK := n <= 8
		for r := 0; r < o.runs(); r++ {
			seed := o.Seed + int64(r)
			if bareOK {
				bare, err := runBareBatch(o, specs, workload.RandomShortBatch(sim.NewRNG(seed), n))
				if err != nil {
					return nil, err
				}
				totals[0] += bare.Total
			}
			for k, v := range vgpuConfigs {
				res, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: v}, specs,
					workload.RandomShortBatch(sim.NewRNG(seed), n))
				if err != nil {
					return nil, err
				}
				if res.Failed() > 0 {
					return nil, fmt.Errorf("fig6: %d vGPUs, %d jobs failed: %v", v, n, res.Errors)
				}
				totals[k+1] += res.Total
			}
			o.logf("fig6: n=%d run %d done", n, r)
		}
		row := []string{fmt.Sprintf("%d", n)}
		if bareOK {
			row = append(row, secs(totals[0]/time.Duration(o.runs())))
		} else {
			row = append(row, "n/a (>8)")
		}
		for k := range vgpuConfigs {
			row = append(row, secs(totals[k+1]/time.Duration(o.runs())))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig7 reproduces Figure 7: 36 MM-L jobs with conflicting memory
// requirements on the three-GPU node, varying the fraction of CPU work;
// serialized execution (1 vGPU) vs GPU sharing (4 vGPUs), with the
// number of swap operations annotated.
func Fig7(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig7",
		Title:  "Swapping under conflicting memory needs: 36 MM-L jobs on 3 GPUs",
		Paper:  "serialized time grows linearly with CPU fraction; sharing stays flat, at the cost of swaps",
		Header: []string{"CPU fraction", "serialized 1 vGPU (s)", "sharing 4 vGPUs (s)", "swaps @1", "swaps @4"},
	}
	specs := threeGPUNode()
	for _, frac := range []float64{0, 0.5, 1, 1.5, 2} {
		apps := func() []workload.App {
			batch := make([]workload.App, 36)
			for i := range batch {
				batch[i] = workload.MML(frac)
			}
			return batch
		}
		ser, mSer, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 1}, specs, apps())
		if err != nil {
			return nil, err
		}
		if ser.Failed() > 0 {
			return nil, fmt.Errorf("fig7 serialized frac %.1f: %v", frac, firstErr(ser))
		}
		shr, mShr, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 4}, specs, apps())
		if err != nil {
			return nil, err
		}
		if shr.Failed() > 0 {
			return nil, fmt.Errorf("fig7 sharing frac %.1f: %v", frac, firstErr(shr))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", frac),
			secs(ser.Total), secs(shr.Total),
			fmt.Sprintf("%d", mSer.InterAppSwaps+mSer.IntraAppSwaps),
			fmt.Sprintf("%d", mShr.InterAppSwaps+mShr.IntraAppSwaps),
		})
		o.logf("fig7: frac %.1f done (ser %s, shr %s)", frac, secs(ser.Total), secs(shr.Total))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: 36 long-running jobs mixing BS-L
// (GPU-intensive, smaller footprint) and MM-L (CPU phases, large
// footprint) at varying ratios; serialized vs shared execution with
// swap counts.
func Fig8(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig8",
		Title:  "Workload mix: 36 jobs of BS-L/MM-L on 3 GPUs",
		Paper:  "sharing gains grow as MM-L dominates; a mostly-BS-L mix can lose to serialization (swap overhead)",
		Header: []string{"BS-L/MM-L", "serialized 1 vGPU (s)", "sharing 4 vGPUs (s)", "swaps @1", "swaps @4"},
	}
	specs := threeGPUNode()
	for _, pct := range []int{100, 75, 50, 25, 0} {
		ser, mSer, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 1}, specs, workload.MixedBatch(36, pct, 1))
		if err != nil {
			return nil, err
		}
		if ser.Failed() > 0 {
			return nil, fmt.Errorf("fig8 serialized %d%%: %v", pct, firstErr(ser))
		}
		shr, mShr, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 4}, specs, workload.MixedBatch(36, pct, 1))
		if err != nil {
			return nil, err
		}
		if shr.Failed() > 0 {
			return nil, fmt.Errorf("fig8 sharing %d%%: %v", pct, firstErr(shr))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/%d", pct, 100-pct),
			secs(ser.Total), secs(shr.Total),
			fmt.Sprintf("%d", mSer.InterAppSwaps+mSer.IntraAppSwaps),
			fmt.Sprintf("%d", mShr.InterAppSwaps+mShr.IntraAppSwaps),
		})
		o.logf("fig8: mix %d/%d done", pct, 100-pct)
	}
	return t, nil
}

// Fig9 reproduces Figure 9: MM-S jobs on the unbalanced node (two
// C2050s and a Quadro 2000) with and without load balancing through
// dynamic binding, for CPU fractions 0 and 1; migration counts
// annotated.
func Fig9(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig9",
		Title:  "Load balancing through dynamic binding: MM-S jobs on 2x C2050 + Quadro 2000",
		Paper:  "migration helps most for small batches; with many jobs, balancing happens by scheduling pending jobs instead",
		Header: []string{"CPU fraction", "# jobs", "no LB (s)", "LB (s)", "migrations"},
	}
	specs := unbalancedNode()
	for _, frac := range []float64{0, 1} {
		for _, n := range []int{12, 24, 36} {
			apps := func() []workload.App {
				batch := make([]workload.App, n)
				for i := range batch {
					batch[i] = workload.MMS(frac)
				}
				return batch
			}
			off, _, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 4}, specs, apps())
			if err != nil {
				return nil, err
			}
			if off.Failed() > 0 {
				return nil, fmt.Errorf("fig9 noLB frac %.0f n %d: %v", frac, n, firstErr(off))
			}
			on, mOn, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 4, EnableMigration: true}, specs, apps())
			if err != nil {
				return nil, err
			}
			if on.Failed() > 0 {
				return nil, fmt.Errorf("fig9 LB frac %.0f n %d: %v", frac, n, firstErr(on))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", frac), fmt.Sprintf("%d", n),
				secs(off.Total), secs(on.Total),
				fmt.Sprintf("%d", mOn.Migrations),
			})
			o.logf("fig9: frac %.0f n %d done", frac, n)
		}
	}
	return t, nil
}

// firstErr extracts the first job error for reporting.
func firstErr(r workload.BatchResult) error {
	for _, err := range r.Errors {
		if err != nil {
			return err
		}
	}
	return nil
}
