package exp

import (
	"fmt"

	"gvrt/internal/core"
	"gvrt/internal/gpu"
	"gvrt/internal/workload"
)

// Fig1 reproduces the paper's motivating example (Figure 1 and §1): two
// applications whose aggregate memory requirements exceed one GPU.
// On the bare CUDA runtime they must be serialized (concurrent
// execution fails with out-of-memory); under gvrt they time-share the
// GPU — one computes while the other runs a CPU phase — via
// inter-application swap.
func Fig1(o Options) (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "Motivating example: two apps exceeding one GPU's memory (Tesla C2050)",
		Paper:  "serialization idles the GPU during CPU phases; time-sharing via dynamic binding + virtual memory overlaps them",
		Header: []string{"configuration", "total (s)", "inter-app swaps", "outcome"},
	}
	// 1.6 GB each: one fits a 3 GB C2050, two do not.
	const buf = 1600 << 20
	mk := func() []workload.App {
		a, b := workload.Figure1Apps(buf)
		return []workload.App{a, b}
	}

	// Bare CUDA runtime, concurrent: the second app's allocation fails.
	bare, err := runBareBatch(o, []gpu.Spec{gpu.TeslaC2050}, mk())
	if err != nil {
		return nil, err
	}
	outcome := "both succeed"
	if bare.Failed() > 0 {
		outcome = fmt.Sprintf("%d of 2 FAIL (out of memory)", bare.Failed())
	}
	t.Rows = append(t.Rows, []string{"bare CUDA runtime, concurrent", secs(bare.Total), "-", outcome})

	// gvrt serialized (1 vGPU): correct but the GPU idles in CPU phases.
	ser, mSer, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 1}, []gpu.Spec{gpu.TeslaC2050}, mk())
	if err != nil {
		return nil, err
	}
	if ser.Failed() > 0 {
		return nil, fmt.Errorf("fig1 serialized: %v", firstErr(ser))
	}
	t.Rows = append(t.Rows, []string{"gvrt, serialized (1 vGPU)", secs(ser.Total),
		fmt.Sprintf("%d", mSer.InterAppSwaps), "both succeed"})

	// gvrt shared (2 vGPUs): time-sharing through swap.
	shr, mShr, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: 2}, []gpu.Spec{gpu.TeslaC2050}, mk())
	if err != nil {
		return nil, err
	}
	if shr.Failed() > 0 {
		return nil, fmt.Errorf("fig1 shared: %v", firstErr(shr))
	}
	t.Rows = append(t.Rows, []string{"gvrt, time-shared (2 vGPUs)", secs(shr.Total),
		fmt.Sprintf("%d", mShr.InterAppSwaps), "both succeed"})
	return t, nil
}

// AblationVGPUCount sweeps the sharing degree on a memory-conflicted
// long-job workload — the §5.3.2 question ("four vGPUs per device
// provide a good compromise between resource sharing and runtime
// overhead") asked of the swap-heavy case.
func AblationVGPUCount(o Options) (*Table, error) {
	t := &Table{
		ID:     "abl-vgpus",
		Title:  "Sharing degree: 12 MM-L jobs (CPU fraction 1), 1 GPU",
		Paper:  "§5.3.2: sharing gains saturate; beyond the sweet spot only swap overhead grows",
		Header: []string{"vGPUs", "total (s)", "swap events", "unbind retries"},
	}
	for _, v := range []int{1, 2, 4, 8} {
		apps := make([]workload.App, 12)
		for i := range apps {
			apps[i] = workload.MML(1)
		}
		res, m, err := runGvrtBatch(o, core.Config{VGPUsPerDevice: v}, []gpu.Spec{gpu.TeslaC2050}, apps)
		if err != nil {
			return nil, err
		}
		if res.Failed() > 0 {
			return nil, fmt.Errorf("abl-vgpus v=%d: %v", v, firstErr(res))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", v), secs(res.Total),
			fmt.Sprintf("%d", m.InterAppSwaps+m.IntraAppSwaps),
			fmt.Sprintf("%d", m.UnbindRetries)})
		o.logf("abl-vgpus: %d done", v)
	}
	return t, nil
}
