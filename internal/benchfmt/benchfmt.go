// Package benchfmt defines the on-disk format of the repository's
// macro-benchmark trajectory: the BENCH_<n>.json files written by
// cmd/gvrt-bench, one per PR, never overwritten. Keeping the encoder
// and validator in one importable package means the tool, the CI
// smoke job and the golden-schema test all agree on the exact bytes —
// the format cannot drift silently.
package benchfmt

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Schema is the format identifier stamped into every report. Bump it
// only with a migration note in EXPERIMENTS.md; the golden-schema test
// in this package pins the rendered bytes.
const Schema = "gvrt-bench/v1"

// Report is one recorded benchmark run: the unit of the trajectory.
type Report struct {
	// Schema identifies the file format (always the Schema constant).
	Schema string `json:"schema"`
	// PR is the pull-request ordinal this report baselines (the <n> of
	// BENCH_<n>.json).
	PR int `json:"pr"`
	// Label is a free-form description of the code state measured,
	// e.g. "pre-sharding baseline" or "per-device shards".
	Label string `json:"label,omitempty"`
	// Quick marks reduced-scale runs (-quick); quick reports are for
	// smoke gating, not trajectory comparison.
	Quick bool `json:"quick"`
	// Scenarios holds one entry per benchmark scenario, in run order.
	Scenarios []Scenario `json:"scenarios"`
}

// Scenario is the measured outcome of one benchmark scenario.
type Scenario struct {
	// Name identifies the scenario ("multi-device", "multi-node",
	// "swap-pressure", "paper-mix").
	Name string `json:"name"`
	// Sessions is the number of concurrent client sessions driven.
	Sessions int `json:"sessions"`
	// Calls is the total number of client calls served.
	Calls int64 `json:"calls"`
	// WallSeconds is the wall-clock duration of the measured phase.
	WallSeconds float64 `json:"wall_seconds"`
	// CallsPerSec is Calls / WallSeconds — the headline throughput.
	CallsPerSec float64 `json:"calls_per_sec"`

	// Latency quantiles are wall-clock microseconds derived from the
	// runtime's model-time histograms (model × clock scale), so they
	// are comparable across runs at the same scale regardless of the
	// model/wall ratio chosen.
	LaunchP50US    float64 `json:"launch_p50_us"`
	LaunchP99US    float64 `json:"launch_p99_us"`
	QueueWaitP50US float64 `json:"queue_wait_p50_us"`
	QueueWaitP99US float64 `json:"queue_wait_p99_us"`
	BindWaitP50US  float64 `json:"bind_wait_p50_us"`
	BindWaitP99US  float64 `json:"bind_wait_p99_us"`

	// SwapBytesPerSec is device→swap traffic per wall second.
	SwapBytesPerSec float64 `json:"swap_bytes_per_sec"`
	// SwapOps counts swap operations during the measured phase.
	SwapOps int64 `json:"swap_ops"`
	// H2DOps / H2DBytes expose transfer coalescing: batching shows up
	// as fewer ops for the same bytes.
	H2DOps   int64 `json:"h2d_ops"`
	H2DBytes int64 `json:"h2d_bytes"`
	// Offloaded counts sessions redirected to a peer node (multi-node
	// scenario only).
	Offloaded int64 `json:"offloaded,omitempty"`
	// PrefetchHits counts launches whose working set a speculative
	// swap-in had already restored (omitted when the scenario produced
	// none).
	PrefetchHits int64 `json:"prefetch_hits,omitempty"`
	// DedupSavedBytes is the swap-area host occupancy avoided by
	// content deduplication at the end of the run (omitted when zero).
	DedupSavedBytes int64 `json:"dedup_saved_bytes,omitempty"`
}

// Encode renders the report as the canonical trajectory bytes:
// two-space indented JSON with a trailing newline, fields in struct
// order. Every writer must go through Encode so files are diffable.
func Encode(r *Report) ([]byte, error) {
	if r.Schema == "" {
		r.Schema = Schema
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, fmt.Errorf("benchfmt: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Write encodes the report to w.
func Write(w io.Writer, r *Report) error {
	b, err := Encode(r)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode parses report bytes and validates them.
func Decode(b []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchfmt: decode: %w", err)
	}
	if err := Validate(&r); err != nil {
		return nil, err
	}
	return &r, nil
}

// ReadFile loads and validates a trajectory file.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(b)
}

// Validate checks the structural invariants every trajectory file must
// satisfy; the CI smoke job runs it against freshly emitted reports.
func Validate(r *Report) error {
	if r.Schema != Schema {
		return fmt.Errorf("benchfmt: schema %q, want %q", r.Schema, Schema)
	}
	if r.PR < 0 {
		return fmt.Errorf("benchfmt: negative PR ordinal %d", r.PR)
	}
	if len(r.Scenarios) == 0 {
		return fmt.Errorf("benchfmt: report has no scenarios")
	}
	seen := make(map[string]bool, len(r.Scenarios))
	for i, s := range r.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("benchfmt: scenario %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("benchfmt: duplicate scenario %q", s.Name)
		}
		seen[s.Name] = true
		if s.Sessions <= 0 {
			return fmt.Errorf("benchfmt: scenario %q: sessions = %d", s.Name, s.Sessions)
		}
		if s.Calls <= 0 {
			return fmt.Errorf("benchfmt: scenario %q: calls = %d", s.Name, s.Calls)
		}
		if s.WallSeconds <= 0 {
			return fmt.Errorf("benchfmt: scenario %q: wall_seconds = %v", s.Name, s.WallSeconds)
		}
		if s.CallsPerSec <= 0 {
			return fmt.Errorf("benchfmt: scenario %q: calls_per_sec = %v", s.Name, s.CallsPerSec)
		}
		if s.LaunchP99US < s.LaunchP50US {
			return fmt.Errorf("benchfmt: scenario %q: launch p99 %v below p50 %v",
				s.Name, s.LaunchP99US, s.LaunchP50US)
		}
	}
	return nil
}

// Scenario returns the named scenario, nil when absent.
func (r *Report) Scenario(name string) *Scenario {
	for i := range r.Scenarios {
		if r.Scenarios[i].Name == name {
			return &r.Scenarios[i]
		}
	}
	return nil
}

// CompareP99 applies the trajectory regression gate: for every
// scenario present in both reports, the candidate's p99 launch latency
// must not exceed maxRatio times the baseline's. It returns a
// description of each violation (empty slice = pass). Scenarios
// missing from either side are skipped — the gate is generous by
// design; it exists to catch order-of-magnitude regressions, not
// noise.
func CompareP99(baseline, candidate *Report, maxRatio float64) []string {
	var bad []string
	for _, cs := range candidate.Scenarios {
		bs := baseline.Scenario(cs.Name)
		if bs == nil || bs.LaunchP99US <= 0 {
			continue
		}
		if cs.LaunchP99US > bs.LaunchP99US*maxRatio {
			bad = append(bad, fmt.Sprintf(
				"scenario %q: launch p99 %.1fus > %.1fx baseline %.1fus",
				cs.Name, cs.LaunchP99US, maxRatio, bs.LaunchP99US))
		}
	}
	return bad
}
