package benchfmt

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenReport is the fixture pinned by testdata/report_v1.golden. Any
// change to the rendered bytes — field order, indentation, a renamed
// JSON tag — breaks the trajectory's diffability and must show up here
// as a deliberate golden update plus a schema bump.
func goldenReport() *Report {
	return &Report{
		PR:    6,
		Label: "golden fixture",
		Scenarios: []Scenario{{
			Name: "multi-device", Sessions: 16, Calls: 100000, WallSeconds: 2.5,
			CallsPerSec: 40000, LaunchP50US: 2.2, LaunchP99US: 8.8,
			QueueWaitP50US: 0.5, QueueWaitP99US: 3.5, BindWaitP50US: 1, BindWaitP99US: 9,
			SwapBytesPerSec: 1048576, SwapOps: 12, H2DOps: 40, H2DBytes: 1 << 20,
		}, {
			Name: "multi-node", Sessions: 32, Calls: 50000, WallSeconds: 2,
			CallsPerSec: 25000, LaunchP50US: 3, LaunchP99US: 15, Offloaded: 7,
		}},
	}
}

func TestGoldenSchema(t *testing.T) {
	got, err := Encode(goldenReport())
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "report_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoded report drifted from golden schema\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	r, err := ReadFile(filepath.Join("testdata", "report_v1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if r.PR != 6 || len(r.Scenarios) != 2 {
		t.Fatalf("golden decoded to PR=%d with %d scenarios", r.PR, len(r.Scenarios))
	}
	re, err := Encode(r)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := os.ReadFile(filepath.Join("testdata", "report_v1.golden"))
	if !bytes.Equal(re, want) {
		t.Error("decode → encode is not byte-stable")
	}
	if s := r.Scenario("multi-node"); s == nil || s.Offloaded != 7 {
		t.Errorf("Scenario lookup: %+v", s)
	}
	if s := r.Scenario("nope"); s != nil {
		t.Errorf("Scenario(nope) = %+v, want nil", s)
	}
}

func TestEncodeStampsSchema(t *testing.T) {
	r := goldenReport()
	r.Schema = ""
	if _, err := Encode(r); err != nil {
		t.Fatal(err)
	}
	if r.Schema != Schema {
		t.Errorf("Encode left schema %q", r.Schema)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
	}{
		{"wrong schema", func(r *Report) { r.Schema = "gvrt-bench/v0" }},
		{"negative pr", func(r *Report) { r.PR = -1 }},
		{"no scenarios", func(r *Report) { r.Scenarios = nil }},
		{"unnamed scenario", func(r *Report) { r.Scenarios[0].Name = "" }},
		{"duplicate scenario", func(r *Report) { r.Scenarios[1].Name = r.Scenarios[0].Name }},
		{"zero sessions", func(r *Report) { r.Scenarios[0].Sessions = 0 }},
		{"zero calls", func(r *Report) { r.Scenarios[0].Calls = 0 }},
		{"zero wall", func(r *Report) { r.Scenarios[0].WallSeconds = 0 }},
		{"zero rate", func(r *Report) { r.Scenarios[0].CallsPerSec = 0 }},
		{"p99 below p50", func(r *Report) { r.Scenarios[0].LaunchP99US = r.Scenarios[0].LaunchP50US / 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := goldenReport()
			r.Schema = Schema
			tc.mutate(r)
			if err := Validate(r); err == nil {
				t.Error("Validate accepted a broken report")
			}
		})
	}
	ok := goldenReport()
	ok.Schema = Schema
	if err := Validate(ok); err != nil {
		t.Errorf("Validate rejected the golden fixture: %v", err)
	}
}

func TestCompareP99(t *testing.T) {
	base := goldenReport()
	cand := goldenReport()
	if bad := CompareP99(base, cand, 2); len(bad) != 0 {
		t.Errorf("identical reports flagged: %v", bad)
	}
	cand.Scenarios[0].LaunchP99US = base.Scenarios[0].LaunchP99US * 3
	if bad := CompareP99(base, cand, 2); len(bad) != 1 {
		t.Errorf("3x regression yielded %d violations, want 1: %v", len(bad), bad)
	}
	// Scenarios absent from the baseline are skipped, not flagged.
	cand.Scenarios[0].Name = "brand-new"
	if bad := CompareP99(base, cand, 2); len(bad) != 0 {
		t.Errorf("unknown scenario flagged: %v", bad)
	}
}
