package ctrlplane

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"gvrt/internal/faultinject"
)

// fakeHooks is a Hooks implementation backed by plain maps with no
// internal locking: the Manager's mutex is the only thing standing
// between concurrent mutations and a data race, which is exactly what
// the -race test below relies on.
type fakeHooks struct {
	quotas  map[string][2]uint64 // tenant -> {maxSessions, hostBytes}
	drained map[int]bool
	devices int
	failOn  string // substring of the method name to fail
	calls   []string
}

func newFakeHooks(devices int) *fakeHooks {
	return &fakeHooks{
		quotas:  make(map[string][2]uint64),
		drained: make(map[int]bool),
		devices: devices,
	}
}

func (h *fakeHooks) fail(method string) error {
	h.calls = append(h.calls, method)
	if h.failOn != "" && strings.Contains(method, h.failOn) {
		return fmt.Errorf("fakeHooks: %s failed", method)
	}
	return nil
}

func (h *fakeHooks) ApplyQuota(tenant string, maxSessions int, hostBytes uint64) error {
	if err := h.fail("ApplyQuota"); err != nil {
		return err
	}
	h.quotas[tenant] = [2]uint64{uint64(maxSessions), hostBytes}
	return nil
}

func (h *fakeHooks) RemoveQuota(tenant string) error {
	if err := h.fail("RemoveQuota"); err != nil {
		return err
	}
	delete(h.quotas, tenant)
	return nil
}

func (h *fakeHooks) DrainDevice(id int) error {
	if err := h.fail("DrainDevice"); err != nil {
		return err
	}
	h.drained[id] = true
	return nil
}

func (h *fakeHooks) ReadmitDevice(id int) error {
	if err := h.fail("ReadmitDevice"); err != nil {
		return err
	}
	delete(h.drained, id)
	return nil
}

func (h *fakeHooks) DeviceCount() int { return h.devices }

func newTestManager(t *testing.T, dir string, hooks Hooks, opts ManagerOptions) *Manager {
	t.Helper()
	s := mustOpenStore(t, dir, Options{})
	t.Cleanup(func() { s.Close() })
	opts.Hooks = hooks
	m := NewManager(s, opts)
	if err := m.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := m.SyncDevices(); err != nil {
		t.Fatalf("SyncDevices: %v", err)
	}
	return m
}

// TestOpsLifecycle walks every mutation end to end: each must leave no
// pending record behind and its state visible through the read API.
func TestOpsLifecycle(t *testing.T) {
	h := newFakeHooks(2)
	m := newTestManager(t, t.TempDir(), h, ManagerOptions{})

	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatalf("CreateTenant: %v", err)
	}
	if _, err := m.CreateTenant("acme"); err == nil {
		t.Fatal("duplicate CreateTenant succeeded")
	}
	if _, err := m.SetQuota("acme", Quota{MaxSessions: 4, HostBytes: 1 << 20}); err != nil {
		t.Fatalf("SetQuota: %v", err)
	}
	if got := h.quotas["acme"]; got != [2]uint64{4, 1 << 20} {
		t.Fatalf("hooks quota = %v", got)
	}
	if err := m.DrainDevice(0); err != nil {
		t.Fatalf("DrainDevice: %v", err)
	}
	if err := m.DrainDevice(0); err == nil {
		t.Fatal("draining a drained device succeeded")
	}
	if !h.drained[0] {
		t.Fatal("hooks never drained device 0")
	}
	if err := m.ReadmitDevice(0); err != nil {
		t.Fatalf("ReadmitDevice: %v", err)
	}
	if h.drained[0] {
		t.Fatal("hooks still consider device 0 drained")
	}
	if err := m.DeleteTenant("acme"); err != nil {
		t.Fatalf("DeleteTenant: %v", err)
	}
	if _, ok := h.quotas["acme"]; ok {
		t.Fatal("quota enforcement survived tenant delete")
	}
	if _, ok := m.GetTenant("acme"); ok {
		t.Fatal("tenant record survived delete")
	}
	if _, ok := m.GetQuota("acme"); ok {
		t.Fatal("quota record survived tenant delete")
	}
	if ops := m.Ops(); len(ops) != 0 {
		t.Fatalf("pending ops after clean run: %+v", ops)
	}
	c := m.CountersSnapshot()
	if c.Started != 5 || c.Completed != 5 || c.RolledBack != 0 || c.Stuck != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestOpsHookFailureRollsBack checks the live (non-crash) failure path:
// a hook error aborts the op, rolls back, and leaves nothing pending.
func TestOpsHookFailureRollsBack(t *testing.T) {
	h := newFakeHooks(1)
	m := newTestManager(t, t.TempDir(), h, ManagerOptions{})
	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}
	h.failOn = "ApplyQuota"
	if _, err := m.SetQuota("acme", Quota{MaxSessions: 4}); err == nil {
		t.Fatal("SetQuota succeeded despite hook failure")
	}
	if ops := m.Ops(); len(ops) != 0 {
		t.Fatalf("aborted op left pending: %+v", ops)
	}
	if _, ok := m.GetQuota("acme"); ok {
		t.Fatal("failed SetQuota committed a quota record")
	}
	if got := m.CountersSnapshot().RolledBack; got != 1 {
		t.Fatalf("rolledBack = %d, want 1", got)
	}
}

// opCrashManager builds a manager whose per-step crash point panics at
// the nth boundary, simulating a SIGKILL mid-mutation.
func opCrashManager(t *testing.T, dir string, hooks Hooks, nth uint64) *Manager {
	t.Helper()
	s := mustOpenStore(t, dir, Options{})
	t.Cleanup(func() { s.Close() })
	m := NewManager(s, ManagerOptions{
		Hooks: hooks,
		Faults: faultinject.New(faultinject.Plan{
			Name: "op-crash",
			Rules: []faultinject.Rule{{
				Point: faultinject.PointCtrlOpStep, AtNth: nth, Action: faultinject.ActCrash,
			}},
		}),
		OnCrash: func() { panic(storeCrashSentinel{}) },
	})
	if err := m.Resume(); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDevices(); err != nil {
		t.Fatal(err)
	}
	return m
}

// simulateOpCrash catches the sentinel panic from an armed op-step
// crash point; the manager is abandoned (its mutex died with the
// "process") but the store remains reopenable.
func simulateOpCrash(t *testing.T, fn func()) (crashed bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(storeCrashSentinel); !ok {
			panic(r)
		}
		crashed = true
	}()
	fn()
	return false
}

// TestOpsResumeForward crashes a quota-set after its intent was
// recorded: a fresh manager's Resume must drive it to completion, the
// quota applied to hooks and store both.
func TestOpsResumeForward(t *testing.T) {
	dir := t.TempDir()
	h := newFakeHooks(1)
	// CreateTenant consumes step boundaries 1-2; boundary 3 is SetQuota's
	// "intent recorded, nothing applied".
	m := opCrashManager(t, dir, h, 3)
	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}
	if !simulateOpCrash(t, func() {
		m.SetQuota("acme", Quota{MaxSessions: 4, HostBytes: 1 << 20})
	}) {
		t.Fatal("op-step crash point did not fire")
	}
	m.Store().Close()

	h2 := newFakeHooks(1)
	m2 := newTestManager(t, dir, h2, ManagerOptions{})
	if ops := m2.Ops(); len(ops) != 0 {
		t.Fatalf("ops pending after resume: %+v", ops)
	}
	q, ok := m2.GetQuota("acme")
	if !ok || q.MaxSessions != 4 || q.HostBytes != 1<<20 {
		t.Fatalf("resumed quota = %+v, ok=%v", q, ok)
	}
	if got := h2.quotas["acme"]; got != [2]uint64{4, 1 << 20} {
		t.Fatalf("resumed quota not applied to hooks: %v", got)
	}
	if got := m2.CountersSnapshot().Resumed; got != 1 {
		t.Fatalf("resumed counter = %d, want 1", got)
	}
}

// TestOpsRollbackTenantCreate crashes a tenant-create after its intent
// was recorded: the client never saw an ack, so Resume must roll it
// back and the tenant must not exist.
func TestOpsRollbackTenantCreate(t *testing.T) {
	dir := t.TempDir()
	m := opCrashManager(t, dir, newFakeHooks(1), 1)
	if !simulateOpCrash(t, func() { m.CreateTenant("ghost") }) {
		t.Fatal("op-step crash point did not fire")
	}
	m.Store().Close()

	m2 := newTestManager(t, dir, newFakeHooks(1), ManagerOptions{})
	if ops := m2.Ops(); len(ops) != 0 {
		t.Fatalf("ops pending after resume: %+v", ops)
	}
	if _, ok := m2.GetTenant("ghost"); ok {
		t.Fatal("unacknowledged tenant-create survived rollback")
	}
	if got := m2.CountersSnapshot().RolledBack; got != 1 {
		t.Fatalf("rolledBack counter = %d, want 1", got)
	}
}

// TestOpsStuckAndCleanup crashes a drain mid-flight, reboots with
// resume disabled (the operator-inspection path): the op must surface
// as stuck with the device quarantined in "draining", and CleanupOps
// must roll it back to active.
func TestOpsStuckAndCleanup(t *testing.T) {
	dir := t.TempDir()
	h := newFakeHooks(1)
	m := opCrashManager(t, dir, h, 2) // boundary: hook ran, record still "draining"
	if !simulateOpCrash(t, func() { m.DrainDevice(0) }) {
		t.Fatal("op-step crash point did not fire")
	}
	m.Store().Close()

	h2 := newFakeHooks(1)
	m2 := newTestManager(t, dir, h2, ManagerOptions{DisableResume: true})
	ops := m2.Ops()
	if len(ops) != 1 || ops[0].State != StateStuck || ops[0].Kind != OpDeviceDrain {
		t.Fatalf("ops after resume-disabled boot: %+v", ops)
	}
	if ops[0].Err == "" {
		t.Fatal("stuck op carries no reason")
	}
	devs := m2.Devices()
	if len(devs) != 1 || devs[0].State != DeviceDraining {
		t.Fatalf("device not quarantined draining: %+v", devs)
	}

	n, err := m2.CleanupOps()
	if err != nil || n != 1 {
		t.Fatalf("CleanupOps = %d, %v", n, err)
	}
	if ops := m2.Ops(); len(ops) != 0 {
		t.Fatalf("ops after cleanup: %+v", ops)
	}
	devs = m2.Devices()
	if len(devs) != 1 || devs[0].State != DeviceActive {
		t.Fatalf("device after cleanup rollback: %+v", devs)
	}
	if h2.drained[0] {
		t.Fatal("cleanup did not readmit the device on the runtime")
	}
	c := m2.CountersSnapshot()
	if c.Stuck != 1 || c.Cleaned != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestOpsConcurrentMutations hammers one device and one tenant from
// many goroutines. The fake hooks are deliberately unsynchronized:
// under -race this fails unless the Manager serialises every mutation.
// Afterwards the store must hold a consistent terminal state.
func TestOpsConcurrentMutations(t *testing.T) {
	h := newFakeHooks(1)
	m := newTestManager(t, t.TempDir(), h, ManagerOptions{})
	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				v := i*8 + k + 1
				if _, err := m.SetQuota("acme", Quota{
					MaxSessions: v, HostBytes: uint64(v) << 10,
				}); err != nil {
					t.Errorf("SetQuota: %v", err)
				}
			}
		}(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 8; k++ {
				// Drain and readmit race with each other; losing the state
				// precondition ("is drained, not active") is expected, any
				// other error is not.
				if err := m.DrainDevice(0); err != nil && !strings.Contains(err.Error(), "not active") {
					t.Errorf("DrainDevice: %v", err)
				}
				if err := m.ReadmitDevice(0); err != nil && !strings.Contains(err.Error(), "not drained") {
					t.Errorf("ReadmitDevice: %v", err)
				}
			}
		}()
	}
	wg.Wait()

	if ops := m.Ops(); len(ops) != 0 {
		t.Fatalf("pending ops after storm: %+v", ops)
	}
	q, ok := m.GetQuota("acme")
	if !ok {
		t.Fatal("quota lost in storm")
	}
	if q.HostBytes != uint64(q.MaxSessions)<<10 {
		t.Fatalf("HALF-APPLIED quota: %+v", q)
	}
	devs := m.Devices()
	if len(devs) != 1 || (devs[0].State != DeviceActive && devs[0].State != DeviceDrained) {
		t.Fatalf("device in bad terminal state: %+v", devs)
	}
	// The store's view and the runtime's must agree.
	if (devs[0].State == DeviceDrained) != h.drained[0] {
		t.Fatalf("store says %s, hooks say drained=%v", devs[0].State, h.drained[0])
	}
}
