package ctrlplane

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// RESTHandler exposes the control plane as REST resources, mounted by
// the opserver next to the read-only introspection pages. All mutating
// verbs funnel into Manager methods, so the REST surface inherits the
// pending-operation durability for free: the HTTP response is written
// only after the terminal transaction is fsynced.
//
//	GET    /tenants              list tenants
//	POST   /tenants              create a tenant          {"name": "..."}
//	GET    /tenants/{name}       fetch one tenant
//	DELETE /tenants/{name}       delete a tenant (and its quota)
//	GET    /quotas               list quotas
//	GET    /quotas/{tenant}      fetch one quota
//	PUT    /quotas/{tenant}      set a quota   {"max_sessions": n, "host_bytes": n}
//	GET    /devices              list device records
//	POST   /devices/{id}/drain   evacuate + remove a device from scheduling
//	POST   /devices/{id}/readmit return a drained device to scheduling
//	GET    /slos                 list SLO records
//	GET    /slos/{tenant}        fetch one tenant's SLO
//	PUT    /slos/{tenant}        declare objectives {"launch_p99_ns": n, "max_error_ratio": f}
//	DELETE /slos/{tenant}        remove a tenant's SLO
//	GET    /ops                  list pending/stuck operations
//	POST   /ops/cleanup          force-roll-back every listed operation
//	POST   /ops/{id}/cleanup     force-roll-back one operation
//	GET    /events               SSE stream of store commits and SLO burn events
func RESTHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /tenants", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, orEmpty(m.Tenants()))
	})
	mux.HandleFunc("POST /tenants", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		t, err := m.CreateTenant(req.Name)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, t)
	})
	mux.HandleFunc("GET /tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		t, ok := m.GetTenant(r.PathValue("name"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("tenant not found"))
			return
		}
		writeJSON(w, http.StatusOK, t)
	})
	mux.HandleFunc("DELETE /tenants/{name}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.DeleteTenant(r.PathValue("name")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /quotas", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, orEmpty(m.Quotas()))
	})
	mux.HandleFunc("GET /quotas/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		q, ok := m.GetQuota(r.PathValue("tenant"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("quota not found"))
			return
		}
		writeJSON(w, http.StatusOK, q)
	})
	mux.HandleFunc("PUT /quotas/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		var req Quota
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		q, err := m.SetQuota(r.PathValue("tenant"), req)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, q)
	})

	mux.HandleFunc("GET /devices", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, orEmpty(m.Devices()))
	})
	mux.HandleFunc("POST /devices/{id}/drain", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad device id"))
			return
		}
		if err := m.DrainDevice(id); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"device": id, "state": DeviceDrained})
	})
	mux.HandleFunc("POST /devices/{id}/readmit", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad device id"))
			return
		}
		if err := m.ReadmitDevice(id); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"device": id, "state": DeviceActive})
	})

	mux.HandleFunc("GET /slos", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, orEmpty(m.SLOs()))
	})
	mux.HandleFunc("GET /slos/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		s, ok := m.GetSLO(r.PathValue("tenant"))
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("slo not found"))
			return
		}
		writeJSON(w, http.StatusOK, s)
	})
	mux.HandleFunc("PUT /slos/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		var req SLO
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
		s, err := m.SetSLO(r.PathValue("tenant"), req)
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, s)
	})
	mux.HandleFunc("DELETE /slos/{tenant}", func(w http.ResponseWriter, r *http.Request) {
		if err := m.DeleteSLO(r.PathValue("tenant")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /ops", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ops":      orEmpty(m.Ops()),
			"counters": m.CountersSnapshot(),
		})
	})
	mux.HandleFunc("POST /ops/cleanup", func(w http.ResponseWriter, r *http.Request) {
		n, err := m.CleanupOps()
		resp := map[string]any{"cleaned": n}
		if err != nil {
			resp["error"] = err.Error()
			writeJSON(w, http.StatusConflict, resp)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /ops/{id}/cleanup", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad op id"))
			return
		}
		if err := m.CleanupOp(id); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("GET /events", m.serveEvents)

	return mux
}

// sseHeartbeat is how often an idle /events stream emits a comment
// line. It doubles as the reap bound: a client that vanished without a
// context cancellation (half-open TCP, crashed reader) is detected by
// the heartbeat write failing, so its Subscribe slot is released within
// one interval instead of leaking until the next commit.
var sseHeartbeat = 15 * time.Second

// serveEvents streams store commits and injected SLO events as
// server-sent events, one `data:` line of Event JSON each, so watchers
// (gvrt-top) react to tenant/device changes instead of polling. A
// comment line is sent immediately so clients know the stream is live,
// and again every sseHeartbeat while idle.
func (m *Manager) serveEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	ch, cancel := m.store.Subscribe(256)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": gvrt ctrlplane event stream, seq %d\n\n", m.store.Seq())
	fl.Flush()

	beat := time.NewTicker(sseHeartbeat)
	defer beat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-beat.C:
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case ev, ok := <-ch:
			if !ok {
				return // store closed
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", encodeJSON(ev)); err != nil {
				return
			}
			fl.Flush()
		}
	}
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes a JSON error envelope.
func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// orEmpty keeps list endpoints returning [] instead of null.
func orEmpty[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}
