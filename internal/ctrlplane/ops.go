package ctrlplane

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gvrt/internal/faultinject"
	"gvrt/internal/trace"
)

// Hooks is the runtime surface the control plane drives. Every method
// MUST be idempotent: a resumed operation re-runs its steps from the
// beginning, so applying a quota that is already applied or draining a
// device that is already drained must succeed as a no-op. The core
// runtime implements this interface (core.Runtime); tests substitute
// fakes.
type Hooks interface {
	// ApplyQuota installs or updates a tenant's enforcement limits on
	// the admission-control and memory-manager paths.
	ApplyQuota(tenant string, maxSessions int, hostBytes uint64) error
	// RemoveQuota lifts a tenant's limits.
	RemoveQuota(tenant string) error
	// DrainDevice evacuates every session from the device (checkpoint
	// to swap, rebind elsewhere) and removes it from scheduling.
	DrainDevice(id int) error
	// ReadmitDevice returns a drained device to scheduling.
	ReadmitDevice(id int) error
	// DeviceCount reports how many devices the runtime owns.
	DeviceCount() int
}

// ManagerOptions tunes a Manager.
type ManagerOptions struct {
	// Hooks is the runtime the control plane drives. Required.
	Hooks Hooks
	// Faults, when set, arms the per-step crash point
	// (faultinject.PointCtrlOpStep): the hook is consulted once at every
	// step boundary of every operation, so an occurrence-indexed rule
	// (AtNth) selects exactly which boundary kills the daemon.
	Faults *faultinject.Plane
	// OnCrash is invoked when the step crash point fires (daemons
	// install ckptlog.Die).
	OnCrash func()
	// Trace, when set, receives one KindCtrlOp event per operation
	// transition (started, completed, resumed, rolled-back, stuck).
	Trace *trace.Recorder
	// Now supplies event timestamps for Trace (model time). Nil uses
	// wall-clock time since manager creation.
	Now func() time.Duration
	// DisableResume makes boot-time resolution mark every pending
	// operation stuck instead of resuming or rolling it back. Torture
	// harnesses use it to exercise the stuck-op/cleanup path
	// deterministically; operators would use it to inspect a crashed
	// mutation before letting the daemon touch it.
	DisableResume bool
	// Logf, when set, receives manager events.
	Logf func(format string, args ...any)
}

// Counters is a snapshot of the manager's operation counters.
type Counters struct {
	Started    int64 `json:"started"`
	Completed  int64 `json:"completed"`
	Resumed    int64 `json:"resumed"`
	RolledBack int64 `json:"rolled_back"`
	Stuck      int64 `json:"stuck"`
	Cleaned    int64 `json:"cleaned"`
}

// Manager executes control-plane mutations as journaled pending
// operations over a Store. One mutex serialises all mutations — quota
// updates and a drain racing on the same device serialise here, and the
// store's WAL gives them a total order on disk too.
type Manager struct {
	store *Store
	opts  ManagerOptions
	step  *faultinject.Hook
	start time.Time

	mu     sync.Mutex
	nextID uint64

	started    atomic.Int64
	completed  atomic.Int64
	resumed    atomic.Int64
	rolledBack atomic.Int64
	stuck      atomic.Int64
	cleaned    atomic.Int64

	// OpDur observes completed-operation durations in nanoseconds,
	// exported under /metrics as gvrt_ctrl_op_duration.
	opDur trace.Histogram
}

// NewManager builds a Manager over an open store.
func NewManager(store *Store, opts ManagerOptions) *Manager {
	m := &Manager{store: store, opts: opts, start: time.Now()}
	m.step = opts.Faults.Hook(faultinject.PointCtrlOpStep, "")
	// Seed the ID allocator past every op ever recorded, including ones
	// a previous run left behind.
	for _, kv := range store.List(KeyOpPrefix) {
		if id, ok := ParseOpKey(kv.Key); ok && id >= m.nextID {
			m.nextID = id + 1
		}
	}
	if m.nextID == 0 {
		m.nextID = 1
	}
	return m
}

// Store returns the manager's backing store.
func (m *Manager) Store() *Store { return m.store }

// CountersSnapshot returns the manager's operation counters.
func (m *Manager) CountersSnapshot() Counters {
	return Counters{
		Started:    m.started.Load(),
		Completed:  m.completed.Load(),
		Resumed:    m.resumed.Load(),
		RolledBack: m.rolledBack.Load(),
		Stuck:      m.stuck.Load(),
		Cleaned:    m.cleaned.Load(),
	}
}

// OpDurations returns a snapshot of the completed-op duration
// histogram (nanoseconds).
func (m *Manager) OpDurations() trace.HistSnapshot { return m.opDur.Snapshot() }

func (m *Manager) now() time.Duration {
	if m.opts.Now != nil {
		return m.opts.Now()
	}
	return time.Since(m.start)
}

func (m *Manager) event(op *Op, outcome string) {
	if m.opts.Trace == nil {
		return
	}
	dev := -1
	if op.Kind == OpDeviceDrain || op.Kind == OpDeviceReadmit {
		dev = op.Device
	}
	detail := fmt.Sprintf("%s %s", op.Kind, outcome)
	if op.Tenant != "" {
		detail += " tenant=" + op.Tenant
	}
	m.opts.Trace.Record(trace.Event{
		Time: m.now(), Kind: trace.KindCtrlOp, Device: dev, Detail: detail,
	})
}

func (m *Manager) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// crashStep consults the per-step crash point. Called at every step
// boundary of every operation; an armed AtNth rule picks the boundary.
func (m *Manager) crashStep() {
	if m.step == nil {
		return
	}
	if m.step.Check().Crash && m.opts.OnCrash != nil {
		m.opts.OnCrash()
	}
}

// record commits a new pending-operation record (the durable intent)
// and returns it. First crash window: after this commit, before any
// side effect — boot resolution sees the op with Step 0.
func (m *Manager) record(op *Op) (*Op, error) {
	op.ID = m.nextID
	m.nextID++
	op.State = StatePending
	op.Seq = m.store.Seq() + 1 // all commits serialise under m.mu
	txn := &Txn{}
	txn.Put(OpKey(op.ID), encodeJSON(op))
	if op.Kind == OpDeviceDrain {
		// The device enters "draining" in the same transaction that
		// records the intent, so observers never see an unexplained
		// intermediate state.
		txn.Put(DeviceKey(op.Device), encodeJSON(DeviceRec{ID: op.Device, State: DeviceDraining}))
	}
	if err := m.store.Commit(txn); err != nil {
		return nil, err
	}
	m.started.Add(1)
	m.event(op, "started")
	return op, nil
}

// advance commits an op's step counter after a side-effecting step
// completed, so /ops shows progress and post-crash forensics can tell
// which step was in flight.
func (m *Manager) advance(op *Op) error {
	op.Step++
	return m.store.Commit((&Txn{}).Put(OpKey(op.ID), encodeJSON(op)))
}

// finish commits the op's terminal transaction: the resource mutations
// plus the deletion of the pending record, atomically. After this
// commit the operation is fully applied; before it, boot resolution
// still owns it.
func (m *Manager) finish(op *Op, txn *Txn, began time.Duration) error {
	txn.Delete(OpKey(op.ID))
	if err := m.store.Commit(txn); err != nil {
		return err
	}
	m.completed.Add(1)
	m.opDur.Observe(int64(m.now() - began))
	m.event(op, "completed")
	return nil
}

// --- Mutations -------------------------------------------------------

// CreateTenant registers a tenant. Fails if it already exists.
func (m *Manager) CreateTenant(name string) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("ctrlplane: tenant name required")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	began := m.now()
	if _, ok := m.store.Get(TenantKey(name)); ok {
		return nil, fmt.Errorf("ctrlplane: tenant %q exists", name)
	}
	op, err := m.record(&Op{Kind: OpTenantCreate, Tenant: name})
	if err != nil {
		return nil, err
	}
	m.crashStep() // boundary: intent recorded, nothing applied
	t := Tenant{Name: name, CreatedSeq: m.store.Seq()}
	if err := m.finish(op, (&Txn{}).Put(TenantKey(name), encodeJSON(t)), began); err != nil {
		return nil, err
	}
	m.crashStep() // boundary: fully applied
	return &t, nil
}

// DeleteTenant removes a tenant and its quota, lifting runtime
// enforcement.
func (m *Manager) DeleteTenant(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	began := m.now()
	if _, ok := m.store.Get(TenantKey(name)); !ok {
		return fmt.Errorf("ctrlplane: tenant %q not found", name)
	}
	op := &Op{Kind: OpTenantDelete, Tenant: name, PrevTenantExists: true}
	if raw, ok := m.store.Get(QuotaKey(name)); ok {
		var q Quota
		if err := decodeJSON(raw, &q); err == nil {
			op.PrevQuota = &q
		}
	}
	op, err := m.record(op)
	if err != nil {
		return err
	}
	m.crashStep() // boundary: intent recorded, enforcement still live
	if err := m.opts.Hooks.RemoveQuota(name); err != nil {
		return m.abort(op, began, err)
	}
	if err := m.advance(op); err != nil {
		return err
	}
	m.crashStep() // boundary: enforcement lifted, records still present
	txn := (&Txn{}).Delete(TenantKey(name)).Delete(QuotaKey(name))
	if err := m.finish(op, txn, began); err != nil {
		return err
	}
	m.crashStep()
	return nil
}

// SetQuota installs or updates a tenant's quota and applies it to the
// runtime's admission and memory paths.
func (m *Manager) SetQuota(tenant string, q Quota) (*Quota, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	began := m.now()
	if _, ok := m.store.Get(TenantKey(tenant)); !ok {
		return nil, fmt.Errorf("ctrlplane: tenant %q not found", tenant)
	}
	if q.MaxSessions < 0 {
		return nil, fmt.Errorf("ctrlplane: max_sessions must be >= 0")
	}
	q.Tenant = tenant
	op := &Op{Kind: OpQuotaSet, Tenant: tenant, Quota: &q}
	if raw, ok := m.store.Get(QuotaKey(tenant)); ok {
		var prev Quota
		if err := decodeJSON(raw, &prev); err == nil {
			op.PrevQuota = &prev
		}
	}
	op, err := m.record(op)
	if err != nil {
		return nil, err
	}
	m.crashStep() // boundary: intent recorded, old quota still enforced
	if err := m.opts.Hooks.ApplyQuota(tenant, q.MaxSessions, q.HostBytes); err != nil {
		return nil, m.abort(op, began, err)
	}
	if err := m.advance(op); err != nil {
		return nil, err
	}
	m.crashStep() // boundary: new quota enforced, record not yet durable
	if err := m.finish(op, (&Txn{}).Put(QuotaKey(tenant), encodeJSON(q)), began); err != nil {
		return nil, err
	}
	m.crashStep()
	return &q, nil
}

// DrainDevice evacuates a device's sessions (checkpoint to swap,
// rebind elsewhere — PR-8's migration machinery) and removes it from
// scheduling. The device record passes active → draining → drained.
func (m *Manager) DrainDevice(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	began := m.now()
	rec, err := m.deviceRec(id)
	if err != nil {
		return err
	}
	if rec.State != DeviceActive {
		return fmt.Errorf("ctrlplane: device %d is %s, not active", id, rec.State)
	}
	op, err := m.record(&Op{Kind: OpDeviceDrain, Device: id, PrevDeviceState: rec.State})
	if err != nil {
		return err
	}
	m.crashStep() // boundary: marked draining, sessions untouched
	if err := m.opts.Hooks.DrainDevice(id); err != nil {
		return m.abort(op, began, err)
	}
	if err := m.advance(op); err != nil {
		return err
	}
	m.crashStep() // boundary: evacuated, record still "draining"
	txn := (&Txn{}).Put(DeviceKey(id), encodeJSON(DeviceRec{ID: id, State: DeviceDrained}))
	if err := m.finish(op, txn, began); err != nil {
		return err
	}
	m.crashStep()
	return nil
}

// ReadmitDevice returns a drained device to scheduling.
func (m *Manager) ReadmitDevice(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	began := m.now()
	rec, err := m.deviceRec(id)
	if err != nil {
		return err
	}
	if rec.State != DeviceDrained {
		return fmt.Errorf("ctrlplane: device %d is %s, not drained", id, rec.State)
	}
	op, err := m.record(&Op{Kind: OpDeviceReadmit, Device: id, PrevDeviceState: rec.State})
	if err != nil {
		return err
	}
	m.crashStep() // boundary: intent recorded, device still out
	if err := m.opts.Hooks.ReadmitDevice(id); err != nil {
		return m.abort(op, began, err)
	}
	if err := m.advance(op); err != nil {
		return err
	}
	m.crashStep() // boundary: device serving, record still "drained"
	txn := (&Txn{}).Put(DeviceKey(id), encodeJSON(DeviceRec{ID: id, State: DeviceActive}))
	if err := m.finish(op, txn, began); err != nil {
		return err
	}
	m.crashStep()
	return nil
}

// abort rolls an in-flight op back after a hook error on the live
// (non-crash) path, returning the hook's error.
func (m *Manager) abort(op *Op, _ time.Duration, cause error) error {
	if err := m.rollbackLocked(op); err != nil {
		m.logf("op %d (%s) failed (%v) and rollback also failed: %v", op.ID, op.Kind, cause, err)
		m.markStuckLocked(op, fmt.Errorf("%v (rollback: %v)", cause, err))
		return cause
	}
	m.rolledBack.Add(1)
	m.event(op, "rolled-back")
	return cause
}

// deviceRec loads a device record.
func (m *Manager) deviceRec(id int) (DeviceRec, error) {
	raw, ok := m.store.Get(DeviceKey(id))
	if !ok {
		return DeviceRec{}, fmt.Errorf("ctrlplane: device %d not found", id)
	}
	var rec DeviceRec
	if err := decodeJSON(raw, &rec); err != nil {
		return DeviceRec{}, err
	}
	return rec, nil
}

// --- Reads -----------------------------------------------------------

// GetTenant returns one tenant.
func (m *Manager) GetTenant(name string) (*Tenant, bool) {
	raw, ok := m.store.Get(TenantKey(name))
	if !ok {
		return nil, false
	}
	var t Tenant
	if decodeJSON(raw, &t) != nil {
		return nil, false
	}
	return &t, true
}

// Tenants lists all tenants, sorted by name.
func (m *Manager) Tenants() []Tenant {
	var out []Tenant
	for _, kv := range m.store.List(KeyTenantPrefix) {
		var t Tenant
		if decodeJSON(kv.Val, &t) == nil {
			out = append(out, t)
		}
	}
	return out
}

// GetQuota returns one tenant's quota.
func (m *Manager) GetQuota(tenant string) (*Quota, bool) {
	raw, ok := m.store.Get(QuotaKey(tenant))
	if !ok {
		return nil, false
	}
	var q Quota
	if decodeJSON(raw, &q) != nil {
		return nil, false
	}
	return &q, true
}

// Quotas lists all quotas.
func (m *Manager) Quotas() []Quota {
	var out []Quota
	for _, kv := range m.store.List(KeyQuotaPrefix) {
		var q Quota
		if decodeJSON(kv.Val, &q) == nil {
			out = append(out, q)
		}
	}
	return out
}

// Devices lists all device records.
func (m *Manager) Devices() []DeviceRec {
	var out []DeviceRec
	for _, kv := range m.store.List(KeyDevicePrefix) {
		var d DeviceRec
		if decodeJSON(kv.Val, &d) == nil {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Ops lists pending and stuck operations, oldest first.
func (m *Manager) Ops() []Op {
	var out []Op
	for _, kv := range m.store.List(KeyOpPrefix) {
		var op Op
		if decodeJSON(kv.Val, &op) == nil {
			out = append(out, op)
		}
	}
	return out
}

// --- Boot resolution -------------------------------------------------

// Resume resolves every operation a previous run left pending: it is
// called once at boot, after the store opens and before the daemon
// serves traffic. Forward-safe kinds (quota-set, device-drain,
// device-readmit — the full intent is in the record and every step is
// idempotent) are resumed to completion; ack-gated kinds
// (tenant-create, tenant-delete — the client never saw a success, so
// the least surprising outcome is "it didn't happen") are rolled back.
// An op whose resolution fails — or every op, when DisableResume is
// set — is marked stuck: its resources stay quarantined (a draining
// device stays out of scheduling) until an operator forces rollback
// through the cleanup endpoint.
func (m *Manager) Resume() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, op := range m.Ops() {
		op := op
		if op.State == StateStuck {
			continue // already quarantined; waits for cleanup
		}
		if m.opts.DisableResume {
			m.markStuckLocked(&op, fmt.Errorf("resume disabled at boot"))
			continue
		}
		var err error
		switch op.Kind {
		case OpQuotaSet, OpDeviceDrain, OpDeviceReadmit:
			err = m.resumeForwardLocked(&op)
		case OpTenantCreate, OpTenantDelete:
			err = m.rollbackLocked(&op)
			if err == nil {
				m.rolledBack.Add(1)
				m.event(&op, "rolled-back")
			}
		default:
			err = fmt.Errorf("unknown op kind %q", op.Kind)
		}
		if err != nil {
			m.markStuckLocked(&op, err)
		}
	}
	return nil
}

// resumeForwardLocked re-executes a forward-safe op from the top. The
// hooks are idempotent, so steps that ran before the crash are
// harmless no-ops.
func (m *Manager) resumeForwardLocked(op *Op) error {
	began := m.now()
	var txn *Txn
	switch op.Kind {
	case OpQuotaSet:
		if op.Quota == nil {
			return fmt.Errorf("quota-set op %d has no target quota", op.ID)
		}
		if err := m.opts.Hooks.ApplyQuota(op.Tenant, op.Quota.MaxSessions, op.Quota.HostBytes); err != nil {
			return err
		}
		txn = (&Txn{}).Put(QuotaKey(op.Tenant), encodeJSON(*op.Quota))
	case OpDeviceDrain:
		if err := m.opts.Hooks.DrainDevice(op.Device); err != nil {
			return err
		}
		txn = (&Txn{}).Put(DeviceKey(op.Device), encodeJSON(DeviceRec{ID: op.Device, State: DeviceDrained}))
	case OpDeviceReadmit:
		if err := m.opts.Hooks.ReadmitDevice(op.Device); err != nil {
			return err
		}
		txn = (&Txn{}).Put(DeviceKey(op.Device), encodeJSON(DeviceRec{ID: op.Device, State: DeviceActive}))
	}
	if err := m.finish(op, txn, began); err != nil {
		return err
	}
	m.resumed.Add(1)
	m.event(op, "resumed")
	m.logf("op %d (%s) resumed to completion", op.ID, op.Kind)
	return nil
}

// rollbackLocked undoes an op's observable effects and deletes its
// record, restoring the pre-op state captured when it was recorded.
func (m *Manager) rollbackLocked(op *Op) error {
	txn := &Txn{}
	switch op.Kind {
	case OpTenantCreate:
		// The tenant record is written only in the op's final (atomic)
		// transaction, which also deletes the op — so a pending create
		// has, by construction, applied nothing. Defensively delete the
		// record anyway.
		txn.Delete(TenantKey(op.Tenant))
	case OpTenantDelete:
		// The store records survived (they are deleted only in the final
		// txn); re-assert runtime enforcement, which the crashed run may
		// have lifted.
		if op.PrevQuota != nil {
			if err := m.opts.Hooks.ApplyQuota(op.Tenant, op.PrevQuota.MaxSessions, op.PrevQuota.HostBytes); err != nil {
				return err
			}
		}
	case OpQuotaSet:
		// Restore the previous enforcement (or lift it if there was
		// none); the store's quota record was never overwritten.
		if op.PrevQuota != nil {
			if err := m.opts.Hooks.ApplyQuota(op.Tenant, op.PrevQuota.MaxSessions, op.PrevQuota.HostBytes); err != nil {
				return err
			}
		} else if err := m.opts.Hooks.RemoveQuota(op.Tenant); err != nil {
			return err
		}
	case OpDeviceDrain:
		// Undo a partial drain by readmitting (idempotent: if the drain
		// never ran, readmit restores scheduling state that was never
		// torn down).
		if err := m.opts.Hooks.ReadmitDevice(op.Device); err != nil {
			return err
		}
		txn.Put(DeviceKey(op.Device), encodeJSON(DeviceRec{ID: op.Device, State: DeviceActive}))
	case OpDeviceReadmit:
		if err := m.opts.Hooks.DrainDevice(op.Device); err != nil {
			return err
		}
		txn.Put(DeviceKey(op.Device), encodeJSON(DeviceRec{ID: op.Device, State: DeviceDrained}))
	default:
		return fmt.Errorf("unknown op kind %q", op.Kind)
	}
	txn.Delete(OpKey(op.ID))
	return m.store.Commit(txn)
}

// markStuckLocked quarantines an op: state recorded as stuck with the
// failure, resources left exactly as the crash left them, awaiting an
// operator's cleanup.
func (m *Manager) markStuckLocked(op *Op, cause error) {
	op.State = StateStuck
	op.Err = cause.Error()
	if err := m.store.Commit((&Txn{}).Put(OpKey(op.ID), encodeJSON(op))); err != nil {
		m.logf("marking op %d stuck failed: %v", op.ID, err)
		return
	}
	m.stuck.Add(1)
	m.event(op, "stuck")
	m.logf("op %d (%s) stuck: %v", op.ID, op.Kind, cause)
}

// --- Cleanup ---------------------------------------------------------

// CleanupOp force-rolls-back one stuck (or pending) operation,
// restoring the pre-op state and releasing its quarantined resources.
func (m *Manager) CleanupOp(id uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cleanupLocked(id)
}

// CleanupOps force-rolls-back every listed operation, returning the
// number cleaned and the first error.
func (m *Manager) CleanupOps() (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int
	var firstErr error
	for _, op := range m.Ops() {
		if err := m.cleanupLocked(op.ID); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		n++
	}
	return n, firstErr
}

func (m *Manager) cleanupLocked(id uint64) error {
	raw, ok := m.store.Get(OpKey(id))
	if !ok {
		return fmt.Errorf("ctrlplane: op %d not found", id)
	}
	var op Op
	if err := decodeJSON(raw, &op); err != nil {
		return err
	}
	if err := m.rollbackLocked(&op); err != nil {
		return fmt.Errorf("ctrlplane: cleaning op %d (%s): %w", id, op.Kind, err)
	}
	m.cleaned.Add(1)
	m.rolledBack.Add(1)
	m.event(&op, "cleaned")
	m.logf("op %d (%s) cleaned up (rolled back)", id, op.Kind)
	return nil
}

// --- Boot sync -------------------------------------------------------

// SyncDevices reconciles device membership with the runtime: a record
// is created (active) for every device the runtime owns that the store
// has never seen. Existing records keep their state — a drained device
// stays drained across restarts.
func (m *Manager) SyncDevices() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	txn := &Txn{}
	n := m.opts.Hooks.DeviceCount()
	for id := 0; id < n; id++ {
		if _, ok := m.store.Get(DeviceKey(id)); !ok {
			txn.Put(DeviceKey(id), encodeJSON(DeviceRec{ID: id, State: DeviceActive}))
		}
	}
	return m.store.Commit(txn)
}

// RegisterNode records this node's membership.
func (m *Manager) RegisterNode(name string, devices int) error {
	if name == "" {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.store.Commit((&Txn{}).Put(NodeKey(name), encodeJSON(NodeRec{Name: name, Devices: devices})))
}

// ApplyStored pushes the store's committed state into a freshly booted
// runtime: every quota is re-applied to the enforcement paths and
// every drained device is re-drained (the runtime boots with all
// devices active). Called after Resume so resolved state wins.
func (m *Manager) ApplyStored() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var firstErr error
	for _, q := range m.Quotas() {
		if err := m.opts.Hooks.ApplyQuota(q.Tenant, q.MaxSessions, q.HostBytes); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("ctrlplane: re-applying quota for %q: %w", q.Tenant, err)
		}
	}
	for _, d := range m.Devices() {
		if d.State == DeviceDrained {
			if err := m.opts.Hooks.DrainDevice(d.ID); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("ctrlplane: re-draining device %d: %w", d.ID, err)
			}
		}
	}
	return firstErr
}
