package ctrlplane

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"gvrt/internal/ckptlog"
)

// FuzzStoreRecover writes arbitrary bytes as both snapshot and WAL and
// runs full store recovery: Open must either succeed (truncating torn
// tails, quarantining corrupt records) or return ErrCorruptSnapshot,
// and never panic. A store that opens must still accept commits and
// recover identically on a second pass.
func FuzzStoreRecover(f *testing.F) {
	seedDir := f.TempDir()
	s, err := Open(seedDir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	s.Commit((&Txn{}).Put(TenantKey("acme"), encodeJSON(Tenant{Name: "acme"})))
	s.Commit((&Txn{}).Put(QuotaKey("acme"), encodeJSON(Quota{Tenant: "acme", MaxSessions: 4})))
	if err := s.Compact(); err != nil {
		f.Fatal(err)
	}
	s.Commit((&Txn{}).Put(OpKey(1), encodeJSON(Op{ID: 1, Kind: OpQuotaSet, State: StatePending})))
	s.Close()
	snap, _ := os.ReadFile(filepath.Join(seedDir, snapName))
	wal, _ := os.ReadFile(filepath.Join(seedDir, walName))
	f.Add(snap, wal)
	f.Add([]byte{}, wal)
	f.Add(snap, []byte{})
	f.Add(snap, append(append([]byte{}, wal...), []byte("torn-tail")...))

	f.Fuzz(func(t *testing.T, snapshot, walBytes []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), snapshot, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName), walBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("Open = untyped error %v", err)
			}
			return
		}
		state1 := s.List("")
		if err := s.Commit((&Txn{}).Put("post", []byte("recovery"))); err != nil {
			t.Fatalf("post-recovery Commit: %v", err)
		}
		s.Close()

		// Second pass: recovery must be deterministic — same surviving
		// keys, plus the post-recovery commit.
		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open after clean close: %v", err)
		}
		defer s2.Close()
		state2 := s2.List("")
		if len(state2) != len(state1)+1 {
			t.Fatalf("second recovery found %d keys, first %d (+1 commit)", len(state2), len(state1))
		}
		for _, kv := range state1 {
			v, ok := s2.Get(kv.Key)
			if !ok || string(v) != string(kv.Val) {
				t.Fatalf("key %q changed across recoveries: %q -> %q (ok=%v)", kv.Key, kv.Val, v, ok)
			}
		}
	})
}

// FuzzDecodeOpRecord feeds arbitrary bytes to the pending-op record
// decoder and the store's gob record decoders: a typed error or
// success, never a panic — these feed on disk bytes.
func FuzzDecodeOpRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeJSON(Op{ID: 7, Kind: OpDeviceDrain, State: StatePending, Device: 1}))
	f.Add(encodeJSON(Quota{Tenant: "acme", MaxSessions: 4, HostBytes: 1 << 20}))
	if p, err := encodeRec(txnRec{Puts: []kvRec{{Key: "a", Val: []byte("1")}}, Deletes: []string{"b"}}); err == nil {
		f.Add(p)
	}
	if p, err := encodeRec(headerRec{AppliedSeq: 42, Keys: 3}); err == nil {
		f.Add(p)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var op Op
		_ = decodeJSON(data, &op)
		var q Quota
		_ = decodeJSON(data, &q)
		for _, v := range []any{new(txnRec), new(headerRec), new(kvRec)} {
			_ = decodeRec(data, v) // must not panic (hostile gob streams panic internally)
		}
		// A full frame wrapping the bytes must classify, never panic.
		frame := ckptlog.EncodeRawFrame(nil, ckptlog.RawFrame{Kind: kindTxn, Seq: 1, Payload: data})
		if _, _, res := ckptlog.DecodeRawFrame(frame); res != ckptlog.FrameOK {
			t.Fatalf("round-tripped frame classified %v", res)
		}
	})
}
