package ctrlplane

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Key space. Every resource lives under a typed prefix so List(prefix)
// enumerates one resource class. Values are JSON: the store is an
// operator-facing source of truth and its contents must be readable
// with nothing but a hex dump.
const (
	KeyTenantPrefix = "tenant/"
	KeyQuotaPrefix  = "quota/"
	KeyDevicePrefix = "device/"
	KeyNodePrefix   = "node/"
	KeyOpPrefix     = "op/"
	KeySLOPrefix    = "slo/"
)

// TenantKey returns the store key for a tenant record.
func TenantKey(name string) string { return KeyTenantPrefix + name }

// QuotaKey returns the store key for a tenant's quota record.
func QuotaKey(tenant string) string { return KeyQuotaPrefix + tenant }

// DeviceKey returns the store key for a device record.
func DeviceKey(id int) string { return fmt.Sprintf("%s%d", KeyDevicePrefix, id) }

// NodeKey returns the store key for a node record.
func NodeKey(name string) string { return KeyNodePrefix + name }

// OpKey returns the store key for a pending operation. IDs are
// fixed-width hex so lexical order is creation order.
func OpKey(id uint64) string { return fmt.Sprintf("%s%016x", KeyOpPrefix, id) }

// ParseOpKey recovers the operation ID from its store key.
func ParseOpKey(key string) (uint64, bool) {
	hex, ok := strings.CutPrefix(key, KeyOpPrefix)
	if !ok {
		return 0, false
	}
	id, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// Tenant is a registered tenant.
type Tenant struct {
	Name string `json:"name"`
	// CreatedSeq is the store sequence at which the tenant was created,
	// a logical timestamp (the store has no wall clock).
	CreatedSeq uint64 `json:"created_seq"`
}

// SLOKey returns the store key for a tenant's SLO record.
func SLOKey(tenant string) string { return KeySLOPrefix + tenant }

// SLO is a tenant's declared service-level objectives. Zero fields
// disable the corresponding objective. Like quotas, the durable record
// of WHAT the objective is lives here; evaluation (burn rates) happens
// in the observability plane (internal/obs).
type SLO struct {
	Tenant string `json:"tenant"`
	// LaunchP99NS: at least 99% of the tenant's kernel launches must
	// complete within this many model nanoseconds.
	LaunchP99NS int64 `json:"launch_p99_ns,omitempty"`
	// MaxErrorRatio: at most this fraction of the tenant's calls may
	// fail.
	MaxErrorRatio float64 `json:"max_error_ratio,omitempty"`
}

// Quota bounds a tenant's resource consumption. Zero fields are
// unlimited.
type Quota struct {
	Tenant string `json:"tenant"`
	// MaxSessions caps concurrently admitted sessions for the tenant.
	MaxSessions int `json:"max_sessions"`
	// HostBytes caps the tenant's aggregate allocated bytes across all
	// its sessions (enforced on the memmgr Malloc path).
	HostBytes uint64 `json:"host_bytes"`
}

// Device lifecycle states.
const (
	// DeviceActive: serving vGPUs.
	DeviceActive = "active"
	// DeviceDraining: a drain operation is in flight — sessions are
	// being evacuated. Only observable while the op is pending.
	DeviceDraining = "draining"
	// DeviceDrained: removed from scheduling, sessions evacuated.
	DeviceDrained = "drained"
)

// DeviceRec is a device membership record.
type DeviceRec struct {
	ID    int    `json:"id"`
	State string `json:"state"`
}

// NodeRec is a node membership record.
type NodeRec struct {
	Name string `json:"name"`
	// Devices is the node's device count at registration.
	Devices int `json:"devices"`
}

// Operation kinds.
const (
	OpTenantCreate  = "tenant-create"
	OpTenantDelete  = "tenant-delete"
	OpQuotaSet      = "quota-set"
	OpDeviceDrain   = "device-drain"
	OpDeviceReadmit = "device-readmit"
)

// Operation states.
const (
	// StatePending: recorded, executing (or interrupted mid-execution
	// and awaiting boot-time resolution).
	StatePending = "pending"
	// StateStuck: boot-time resolution failed or was disabled; the
	// operation holds its resources quarantined until an operator
	// cleans it up via the REST cleanup endpoint.
	StateStuck = "stuck"
)

// Op is a journaled pending operation: the durable intent record
// written BEFORE any side effect, updated after each idempotent step,
// and deleted in the same transaction that commits the final state.
// Its presence in the store is the definition of "in flight": boot
// finding one means the daemon died mid-mutation and must resume or
// roll back (see Manager.Resume).
type Op struct {
	ID    uint64 `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"`
	// Step is the index of the next step to execute; steps already
	// executed are idempotent so resuming re-runs from 0 harmlessly,
	// but the count shows progress under /ops.
	Step int `json:"step"`
	// Seq is the store sequence at which the op was recorded.
	Seq uint64 `json:"seq"`

	// Subject fields; which are set depends on Kind.
	Tenant string `json:"tenant,omitempty"`
	Device int    `json:"device,omitempty"`
	// Quota is the target quota for quota-set.
	Quota *Quota `json:"quota,omitempty"`

	// Rollback state captured when the op was recorded: what to restore
	// if the op is rolled back instead of resumed.
	PrevQuota *Quota `json:"prev_quota,omitempty"`
	// PrevTenantExists records whether the tenant existed before a
	// create/delete, so rollback knows to restore or remove it.
	PrevTenantExists bool `json:"prev_tenant_exists,omitempty"`
	// PrevDeviceState is the device state before drain/readmit.
	PrevDeviceState string `json:"prev_device_state,omitempty"`

	// Err, on a stuck op, records why resolution failed.
	Err string `json:"err,omitempty"`
}

// encodeJSON marshals a record value for the store.
func encodeJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		// All record types marshal by construction; this is a
		// programming error, not a data error.
		panic(fmt.Sprintf("ctrlplane: marshal %T: %v", v, err))
	}
	return b
}

// decodeJSON unmarshals a record value read back from the store.
func decodeJSON(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("ctrlplane: record %T corrupt: %w", v, err)
	}
	return nil
}
