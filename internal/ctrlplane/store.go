// Package ctrlplane is the daemon's crash-resumable control plane: a
// transactional embedded cluster store holding tenants, quotas, device
// and node membership, plus a pending-operation engine that makes every
// mutating administrative action survive daemon crashes.
//
// The store generalizes the checkpoint journal's durability discipline
// (DESIGN.md §9) from per-context images to an arbitrary keyed state
// space: commits are CRC-framed transaction records appended to a WAL
// (one frame per transaction, so a multi-key commit is atomic by
// construction), folded periodically into a snapshot via write-temp +
// fsync + atomic rename, with a sequence fence making replay idempotent
// across a compaction crash. Recovery truncates torn tails and
// quarantines (skips and counts) records whose payload fails its CRC —
// the same classification the journal's recovery applies, via the same
// exported frame codec (ckptlog.DecodeRawFrame).
//
// On top of the store, ops.go models every mutation as a journaled
// pending operation (heketi's pending-operations pattern): recorded
// before execution, executed in idempotent steps, committed together
// with the removal of its pending record, and on daemon restart either
// resumed or rolled back and quarantined.
package ctrlplane

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"gvrt/internal/ckptlog"
	"gvrt/internal/faultinject"
)

// File names inside a store directory.
const (
	snapName = "store.snap"
	walName  = "store.wal"
	tmpName  = "store.tmp"
)

// DefaultCompactBytes is the WAL growth (bytes appended since the last
// compaction) that triggers an automatic compaction.
const DefaultCompactBytes = 1 << 20

// Record kinds inside the store's frames. Zero is invalid so a zeroed
// frame can never masquerade as a record.
const (
	kindHeader uint8 = iota + 1 // snapshot header (payload: headerRec)
	kindEntry                   // snapshot key/value entry (payload: kvRec)
	kindTxn                     // WAL transaction (payload: txnRec)
)

// headerRec opens a snapshot file; AppliedSeq is the sequence fence:
// every WAL record with Seq <= AppliedSeq is already folded into the
// snapshot and replays as a no-op.
type headerRec struct {
	AppliedSeq uint64
	Keys       int
}

// kvRec is one snapshot entry.
type kvRec struct {
	Key string
	Val []byte
}

// txnRec is one committed transaction: all puts and deletes applied
// atomically (they travel in one frame, so a crash either keeps the
// whole transaction or none of it).
type txnRec struct {
	Puts    []kvRec
	Deletes []string
}

// Txn is a batch of mutations committed atomically.
type Txn struct {
	rec txnRec
}

// Put stages a key write.
func (t *Txn) Put(key string, val []byte) *Txn {
	t.rec.Puts = append(t.rec.Puts, kvRec{Key: key, Val: append([]byte(nil), val...)})
	return t
}

// Delete stages a key removal.
func (t *Txn) Delete(key string) *Txn {
	t.rec.Deletes = append(t.rec.Deletes, key)
	return t
}

// empty reports whether the transaction stages nothing.
func (t *Txn) empty() bool { return len(t.rec.Puts) == 0 && len(t.rec.Deletes) == 0 }

// Event describes one committed transaction to a store watcher, or —
// when Kind is non-empty — a synthetic event injected onto the stream
// (SLO burn-rate transitions). Synthetic events carry no Seq: they are
// liveness signals, not store state.
type Event struct {
	// Seq is the commit's sequence number (0 for synthetic events).
	Seq uint64 `json:"seq"`
	// Puts / Deletes list the affected keys.
	Puts    []string `json:"puts,omitempty"`
	Deletes []string `json:"deletes,omitempty"`
	// Kind tags a synthetic event ("slo"); empty for commits.
	Kind string `json:"kind,omitempty"`
	// Detail is the synthetic event's JSON payload.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// Options tunes a Store.
type Options struct {
	// Faults, when set, arms the store's crash points (pre-fsync,
	// post-fsync, mid-compaction) against the deterministic fault plane.
	Faults *faultinject.Plane
	// OnCrash is invoked when an armed crash point fires. Nil ignores
	// crash decisions; daemons install ckptlog.Die so an armed point
	// kills the process exactly as a power loss would.
	OnCrash func()
	// CompactBytes is the auto-compaction threshold; 0 means
	// DefaultCompactBytes, negative disables auto-compaction.
	CompactBytes int64
	// Logf, when set, receives store events (compactions, recovery
	// repairs, quarantined records).
	Logf func(format string, args ...any)
}

// Stats is a snapshot of a store's counters.
type Stats struct {
	// Commits is the number of transactions committed this run.
	Commits int64 `json:"commits"`
	// Syncs is the number of fsync barriers issued.
	Syncs int64 `json:"syncs"`
	// Bytes is the number of WAL bytes appended this run.
	Bytes int64 `json:"bytes"`
	// Compactions counts snapshot compactions completed this run.
	Compactions int64 `json:"compactions"`
	// TornBytes is the torn-tail length truncated during recovery.
	TornBytes int64 `json:"torn_bytes"`
	// Quarantined counts WAL records skipped during recovery because
	// their payload failed its CRC or did not decode.
	Quarantined int64 `json:"quarantined"`
	// Keys is the number of keys currently held.
	Keys int `json:"keys"`
}

// Store is an open control-plane store: the WAL file plus the in-memory
// mirror of the keyed state it encodes. Safe for concurrent use; one
// mutex serialises commits so transactions land in a total order.
type Store struct {
	dir  string
	opts Options

	preSync  *faultinject.Hook
	postSync *faultinject.Hook
	compact  *faultinject.Hook

	mu       sync.Mutex
	f        *os.File
	seq      uint64
	applied  uint64 // sequence fence of the current snapshot
	kv       map[string][]byte
	dead     bool // a persistent write error; commits fail loudly
	appended int64
	stats    Stats

	watchMu  sync.Mutex
	watchers map[int]chan Event
	nextW    int
}

// Open opens (creating if absent) the store in dir, recovering its
// state from the snapshot and WAL. A torn WAL tail is truncated; a
// record with an intact header but corrupt payload is quarantined
// (skipped and counted) and the scan continues. Only a corrupt snapshot
// header is unrecoverable, because it carries the sequence fence.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ctrlplane: creating store dir: %w", err)
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		kv:       make(map[string][]byte),
		watchers: make(map[int]chan Event),
	}
	s.preSync = opts.Faults.Hook(faultinject.PointStorePreSync, "")
	s.postSync = opts.Faults.Hook(faultinject.PointStorePostSync, "")
	s.compact = opts.Faults.Hook(faultinject.PointStoreCompact, "")

	if err := s.recoverSnapshot(); err != nil {
		return nil, err
	}
	if err := s.recoverWAL(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ctrlplane: opening WAL: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("ctrlplane: seeking WAL: %w", err)
	}
	s.f = f
	return s, nil
}

// ErrCorruptSnapshot reports an unrecoverable snapshot header: the
// sequence fence is gone, so replaying the WAL over a fresh mirror
// could double-apply folded records. Operators must restore the
// directory or move it aside.
var ErrCorruptSnapshot = fmt.Errorf("ctrlplane: store snapshot header corrupt")

// recoverSnapshot loads the snapshot file into the mirror.
func (s *Store) recoverSnapshot() error {
	data, err := os.ReadFile(filepath.Join(s.dir, snapName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ctrlplane: reading snapshot: %w", err)
	}
	if len(data) == 0 {
		return nil
	}
	f, n, res := ckptlog.DecodeRawFrame(data)
	if res != ckptlog.FrameOK || f.Kind != kindHeader {
		return ErrCorruptSnapshot
	}
	var hdr headerRec
	if err := decodeRec(f.Payload, &hdr); err != nil {
		return ErrCorruptSnapshot
	}
	s.applied = hdr.AppliedSeq
	s.seq = hdr.AppliedSeq
	data = data[n:]
	for len(data) > 0 {
		f, n, res := ckptlog.DecodeRawFrame(data)
		switch res {
		case ckptlog.FrameTorn:
			// A snapshot is written whole and renamed into place; a torn
			// entry means the file was damaged after the fact. The entries
			// already decoded are good; the rest are lost.
			s.stats.TornBytes += int64(len(data))
			s.logf("snapshot torn after %d keys; %d bytes dropped", len(s.kv), len(data))
			return nil
		case ckptlog.FrameCorrupt:
			s.stats.Quarantined++
			s.logf("snapshot entry quarantined (payload CRC)")
			data = data[n:]
			continue
		}
		if f.Kind == kindEntry {
			var kv kvRec
			if err := decodeRec(f.Payload, &kv); err != nil {
				s.stats.Quarantined++
				s.logf("snapshot entry quarantined (decode: %v)", err)
			} else {
				s.kv[kv.Key] = kv.Val
			}
		}
		data = data[n:]
	}
	return nil
}

// recoverWAL replays the WAL over the mirror, truncating a torn tail.
func (s *Store) recoverWAL() error {
	path := filepath.Join(s.dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ctrlplane: reading WAL: %w", err)
	}
	off := 0
	for off < len(data) {
		f, n, res := ckptlog.DecodeRawFrame(data[off:])
		if res == ckptlog.FrameTorn {
			torn := int64(len(data) - off)
			s.stats.TornBytes += torn
			s.logf("WAL torn tail: truncating %d bytes (interrupted write)", torn)
			if err := os.Truncate(path, int64(off)); err != nil {
				return fmt.Errorf("ctrlplane: truncating torn WAL tail: %w", err)
			}
			break
		}
		if res == ckptlog.FrameCorrupt {
			// The frame's extent is known but its content is gone. For a
			// keyed store the affected keys are unknowable, so the record
			// is quarantined as a unit: skipped, counted, reported.
			s.stats.Quarantined++
			s.logf("WAL record seq %d quarantined (payload CRC)", f.Seq)
			off += n
			continue
		}
		if f.Seq > s.seq {
			s.seq = f.Seq
		}
		if f.Kind == kindTxn && f.Seq > s.applied {
			var txn txnRec
			if err := decodeRec(f.Payload, &txn); err != nil {
				s.stats.Quarantined++
				s.logf("WAL record seq %d quarantined (decode: %v)", f.Seq, err)
			} else {
				s.applyLocked(txn)
			}
		}
		off += n
	}
	s.appended = int64(off)
	return nil
}

// applyLocked applies a transaction to the mirror. Caller holds s.mu
// (or is in single-threaded recovery).
func (s *Store) applyLocked(t txnRec) {
	for _, kv := range t.Puts {
		s.kv[kv.Key] = kv.Val
	}
	for _, k := range t.Deletes {
		delete(s.kv, k)
	}
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Healthy reports whether the store can still commit (no persistent
// write error, not closed).
func (s *Store) Healthy() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f != nil && !s.dead
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Keys = len(s.kv)
	return st
}

// Seq returns the latest committed sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Get returns the value stored under key.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// List returns every key with the given prefix, sorted, with values.
func (s *Store) List(prefix string) []KV {
	s.mu.Lock()
	var out []KV
	for k, v := range s.kv {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, KV{Key: k, Val: append([]byte(nil), v...)})
		}
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KV is one listed key/value pair.
type KV struct {
	Key string
	Val []byte
}

// Commit durably applies the transaction: one CRC-framed record
// appended and fsynced (through the armed crash points), then applied
// to the mirror and broadcast to watchers. The multi-key atomicity is
// physical — the puts and deletes travel in a single frame, so recovery
// sees all of them or none.
func (s *Store) Commit(t *Txn) error {
	if t.empty() {
		return nil
	}
	payload, err := encodeRec(t.rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.dead || s.f == nil {
		s.mu.Unlock()
		return fmt.Errorf("ctrlplane: store dead after earlier write error")
	}
	s.seq++
	seq := s.seq
	buf := ckptlog.EncodeRawFrame(nil, ckptlog.RawFrame{Kind: kindTxn, Seq: seq, Payload: payload})
	if _, err := s.f.Write(buf); err != nil {
		s.dead = true
		s.mu.Unlock()
		return fmt.Errorf("ctrlplane: appending commit (store now dead): %w", err)
	}
	s.appended += int64(len(buf))
	s.stats.Bytes += int64(len(buf))
	s.crashPoint(s.preSync)
	if err := s.f.Sync(); err != nil {
		s.dead = true
		s.mu.Unlock()
		return fmt.Errorf("ctrlplane: fsync (store now dead): %w", err)
	}
	s.stats.Syncs++
	s.crashPoint(s.postSync)
	s.applyLocked(t.rec)
	s.stats.Commits++
	ev := Event{Seq: seq}
	for _, kv := range t.rec.Puts {
		ev.Puts = append(ev.Puts, kv.Key)
	}
	ev.Deletes = append(ev.Deletes, t.rec.Deletes...)
	limit := s.opts.CompactBytes
	if limit == 0 {
		limit = DefaultCompactBytes
	}
	needCompact := limit > 0 && s.appended >= limit
	s.mu.Unlock()

	s.broadcast(ev)
	if needCompact {
		if err := s.Compact(); err != nil {
			s.logf("auto-compaction failed: %v", err)
		}
	}
	return nil
}

// Compact folds the WAL into a fresh snapshot: mirror written to a
// temporary file, fsynced, atomically renamed over the snapshot, WAL
// truncated. A crash at either armed boundary leaves either the old
// state (before the rename) or the new state (after it), never a mix:
// the snapshot header's sequence fence makes already-folded WAL records
// no-ops on replay.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead || s.f == nil {
		return fmt.Errorf("ctrlplane: store dead")
	}
	if err := s.f.Sync(); err != nil {
		s.dead = true
		return fmt.Errorf("ctrlplane: pre-compaction fsync: %w", err)
	}
	tmp := filepath.Join(s.dir, tmpName)
	tf, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ctrlplane: compaction temp: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			tf.Close()
			os.Remove(tmp)
		}
	}()

	hdr, err := encodeRec(headerRec{AppliedSeq: s.seq, Keys: len(s.kv)})
	if err != nil {
		return err
	}
	buf := ckptlog.EncodeRawFrame(nil, ckptlog.RawFrame{Kind: kindHeader, Seq: s.seq, Payload: hdr})
	keys := make([]string, 0, len(s.kv))
	for k := range s.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		payload, err := encodeRec(kvRec{Key: k, Val: s.kv[k]})
		if err != nil {
			return err
		}
		buf = ckptlog.EncodeRawFrame(buf, ckptlog.RawFrame{Kind: kindEntry, Seq: s.seq, Payload: payload})
	}
	if _, err := tf.Write(buf); err != nil {
		return fmt.Errorf("ctrlplane: writing snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		return fmt.Errorf("ctrlplane: syncing snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("ctrlplane: closing snapshot: %w", err)
	}

	// Crash point 1: temp written and durable, rename not yet done. A
	// crash here recovers from the OLD snapshot + full WAL.
	s.crashPoint(s.compact)

	if err := os.Rename(tmp, filepath.Join(s.dir, snapName)); err != nil {
		return fmt.Errorf("ctrlplane: installing snapshot: %w", err)
	}
	ok = true
	ckptlog.SyncDir(s.dir)

	// Crash point 2: new snapshot installed, WAL not yet truncated. A
	// crash here recovers from the NEW snapshot; the WAL's stale records
	// sit below the sequence fence and replay as no-ops.
	s.crashPoint(s.compact)

	if err := s.f.Truncate(0); err != nil {
		s.dead = true
		return fmt.Errorf("ctrlplane: truncating WAL: %w", err)
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		s.dead = true
		return fmt.Errorf("ctrlplane: rewinding WAL: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		s.dead = true
		return fmt.Errorf("ctrlplane: syncing truncated WAL: %w", err)
	}
	s.applied = s.seq
	s.appended = 0
	s.stats.Compactions++
	s.logf("store compacted: %d keys, fence seq %d", len(s.kv), s.applied)
	return nil
}

// Close syncs and closes the store. The files remain for the next Open.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil
	}
	var serr error
	if !s.dead {
		serr = s.f.Sync()
	}
	cerr := s.f.Close()
	s.f = nil
	s.dead = true
	s.mu.Unlock()

	s.watchMu.Lock()
	for id, ch := range s.watchers {
		close(ch)
		delete(s.watchers, id)
	}
	s.watchMu.Unlock()
	if serr != nil {
		return serr
	}
	return cerr
}

// Subscribe registers a watcher fed one Event per committed
// transaction. The channel is buffered; a watcher that falls more than
// buf events behind loses the oldest (watchers observe liveness, the
// store itself is the source of truth). cancel unregisters and closes
// the channel; Close closes every watcher's channel.
func (s *Store) Subscribe(buf int) (ch <-chan Event, cancel func()) {
	if buf <= 0 {
		buf = 64
	}
	c := make(chan Event, buf)
	s.watchMu.Lock()
	id := s.nextW
	s.nextW++
	if s.watchers == nil {
		s.watchers = make(map[int]chan Event)
	}
	s.watchers[id] = c
	s.watchMu.Unlock()
	return c, func() {
		s.watchMu.Lock()
		if c, ok := s.watchers[id]; ok {
			delete(s.watchers, id)
			close(c)
		}
		s.watchMu.Unlock()
	}
}

// Inject broadcasts a synthetic event to every watcher without
// touching the store: the observability plane uses it to push SLO
// burn-rate transitions onto the same /events stream commits ride.
func (s *Store) Inject(ev Event) {
	s.broadcast(ev)
}

// Watchers reports how many subscribers are currently registered — the
// observable the SSE reap path is tested against.
func (s *Store) Watchers() int {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	return len(s.watchers)
}

// broadcast fans one commit event out to every watcher, dropping the
// oldest buffered event for a slow one.
func (s *Store) broadcast(ev Event) {
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	for _, ch := range s.watchers {
		for {
			select {
			case ch <- ev:
			default:
				select {
				case <-ch:
					continue // dropped the oldest; retry
				default:
				}
			}
			break
		}
	}
}

// crashPoint consults an armed crash hook and, when it fires, invokes
// the configured OnCrash. With the production OnCrash (ckptlog.Die)
// this call never returns.
func (s *Store) crashPoint(h *faultinject.Hook) {
	if h == nil {
		return
	}
	if h.Check().Crash && s.opts.OnCrash != nil {
		s.opts.OnCrash()
	}
}

// logf emits a store event when configured.
func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// encodeRec gob-encodes a record payload.
func encodeRec(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("ctrlplane: encoding record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRec gob-decodes a record payload. Any failure — including a
// panic from a hostile gob stream — is reported as an error, never a
// crash: this feeds on disk bytes.
func decodeRec(data []byte, v any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("ctrlplane: record decode panicked: %v", r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("ctrlplane: decoding record: %w", err)
	}
	return nil
}
