package ctrlplane

import (
	"os"
	"path/filepath"
	"testing"

	"gvrt/internal/ckptlog"
	"gvrt/internal/faultinject"
)

func mustOpenStore(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func mustCommit(t *testing.T, s *Store, txn *Txn) {
	t.Helper()
	if err := s.Commit(txn); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

func wantVal(t *testing.T, s *Store, key, want string) {
	t.Helper()
	v, ok := s.Get(key)
	if !ok {
		t.Fatalf("key %q missing, want %q", key, want)
	}
	if string(v) != want {
		t.Fatalf("key %q = %q, want %q", key, v, want)
	}
}

// TestStoreCommitRecover commits transactions (including a multi-key
// one and a delete) and checks the state survives a close/reopen.
func TestStoreCommitRecover(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, Options{})
	mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
	mustCommit(t, s, (&Txn{}).Put("b", []byte("2")).Put("c", []byte("3")))
	mustCommit(t, s, (&Txn{}).Put("a", []byte("4")).Delete("b"))
	seq := s.Seq()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpenStore(t, dir, Options{})
	defer s2.Close()
	wantVal(t, s2, "a", "4")
	wantVal(t, s2, "c", "3")
	if _, ok := s2.Get("b"); ok {
		t.Fatal("deleted key b survived recovery")
	}
	if got := s2.Seq(); got != seq {
		t.Fatalf("recovered seq = %d, want %d", got, seq)
	}
	if kvs := s2.List(""); len(kvs) != 2 {
		t.Fatalf("recovered %d keys, want 2: %+v", len(kvs), kvs)
	}
}

// TestStoreTornTail appends garbage where the next record would go and
// checks recovery truncates it without losing committed state.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, Options{})
	mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
	s.Close()

	f, err := os.OpenFile(filepath.Join(dir, walName), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("torn-write-garbage"))
	f.Close()

	s2 := mustOpenStore(t, dir, Options{})
	defer s2.Close()
	wantVal(t, s2, "a", "1")
	if s2.Stats().TornBytes == 0 {
		t.Fatal("torn tail not counted")
	}
	// The truncated WAL must accept new commits and survive another
	// reopen (the torn bytes are really gone, not re-read).
	mustCommit(t, s2, (&Txn{}).Put("b", []byte("2")))
	s2.Close()
	s3 := mustOpenStore(t, dir, Options{})
	defer s3.Close()
	wantVal(t, s3, "a", "1")
	wantVal(t, s3, "b", "2")
	if s3.Stats().TornBytes != 0 {
		t.Fatalf("torn bytes reappeared after truncation: %+v", s3.Stats())
	}
}

// TestStoreCorruptRecordQuarantined flips a payload byte in the middle
// WAL record: recovery must skip exactly that transaction, count it,
// and keep every other record.
func TestStoreCorruptRecordQuarantined(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, Options{})
	mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
	mustCommit(t, s, (&Txn{}).Put("b", []byte("2")))
	mustCommit(t, s, (&Txn{}).Put("c", []byte("3")))
	s.Close()

	path := filepath.Join(dir, walName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Walk to the second frame and flip a byte just before its trailing
	// payload CRC.
	_, n1, res := ckptlog.DecodeRawFrame(data)
	if res != ckptlog.FrameOK {
		t.Fatalf("first frame: %v", res)
	}
	_, n2, res := ckptlog.DecodeRawFrame(data[n1:])
	if res != ckptlog.FrameOK {
		t.Fatalf("second frame: %v", res)
	}
	data[n1+n2-5] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpenStore(t, dir, Options{})
	defer s2.Close()
	wantVal(t, s2, "a", "1")
	wantVal(t, s2, "c", "3")
	if _, ok := s2.Get("b"); ok {
		t.Fatal("corrupt record's key b survived")
	}
	if got := s2.Stats().Quarantined; got != 1 {
		t.Fatalf("quarantined = %d, want 1", got)
	}
}

// TestStoreCorruptSnapshotHeader destroys the snapshot header: the
// sequence fence is gone, so Open must refuse with ErrCorruptSnapshot
// rather than risk double-applying folded records.
func TestStoreCorruptSnapshotHeader(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, Options{})
	mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	s.Close()

	path := filepath.Join(dir, snapName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err != ErrCorruptSnapshot {
		t.Fatalf("Open over corrupt snapshot = %v, want ErrCorruptSnapshot", err)
	}
}

// storeCrashSentinel distinguishes the simulated crash from real panics.
type storeCrashSentinel struct{}

// simulateStoreCrash runs fn with the store's OnCrash panicking,
// catching the panic — the in-process stand-in for SIGKILL.
func simulateStoreCrash(t *testing.T, s *Store, fn func()) (crashed bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(storeCrashSentinel); !ok {
			panic(r)
		}
		crashed = true
		// The "process" died with s.mu possibly held; the instance is
		// dead either way, but unlock so Close cannot deadlock.
		s.mu.TryLock()
		s.mu.Unlock()
		s.dead = true
	}()
	fn()
	return false
}

func storeCrashPlan(point faultinject.Point, nth uint64) *faultinject.Plane {
	return faultinject.New(faultinject.Plan{
		Name: "store-crash",
		Rules: []faultinject.Rule{{
			Point:  point,
			AtNth:  nth,
			Action: faultinject.ActCrash,
		}},
	})
}

// TestStoreCompactionCrashAtomicity kills the store at both
// mid-compaction crash points: before the rename the old snapshot +
// full WAL must recover the state; after it the new snapshot holds the
// state and the stale WAL records sit below the sequence fence (the
// double-apply trap).
func TestStoreCompactionCrashAtomicity(t *testing.T) {
	for _, tc := range []struct {
		name string
		nth  uint64
	}{
		{"before-rename", 1},
		{"after-rename-before-truncate", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpenStore(t, dir, Options{
				Faults:  storeCrashPlan(faultinject.PointStoreCompact, tc.nth),
				OnCrash: func() { panic(storeCrashSentinel{}) },
			})
			mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
			mustCommit(t, s, (&Txn{}).Put("b", []byte("2")).Delete("a"))
			if !simulateStoreCrash(t, s, func() { _ = s.Compact() }) {
				t.Fatal("compaction crash point did not fire")
			}

			s2 := mustOpenStore(t, dir, Options{})
			defer s2.Close()
			wantVal(t, s2, "b", "2")
			if _, ok := s2.Get("a"); ok {
				t.Fatal("deleted key a resurrected by compaction crash")
			}
			if got := s2.Stats().Quarantined; got != 0 {
				t.Fatalf("crash recovery quarantined %d records", got)
			}
		})
	}
}

// TestStoreCommitCrashPoints kills the store around the commit fsync. A
// post-fsync crash's transaction is durable by contract; a pre-fsync
// crash's may or may not survive (the bytes reached the OS), but
// recovery must keep earlier state intact either way.
func TestStoreCommitCrashPoints(t *testing.T) {
	for _, tc := range []struct {
		name    string
		point   faultinject.Point
		require bool // the crashed commit must survive
	}{
		{"pre-fsync", faultinject.PointStorePreSync, false},
		{"post-fsync", faultinject.PointStorePostSync, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpenStore(t, dir, Options{
				Faults:  storeCrashPlan(tc.point, 2),
				OnCrash: func() { panic(storeCrashSentinel{}) },
			})
			mustCommit(t, s, (&Txn{}).Put("a", []byte("1")))
			crashed := simulateStoreCrash(t, s, func() {
				_ = s.Commit((&Txn{}).Put("b", []byte("2")))
			})
			if !crashed {
				t.Fatal("commit crash point did not fire")
			}

			s2 := mustOpenStore(t, dir, Options{})
			defer s2.Close()
			wantVal(t, s2, "a", "1")
			if v, ok := s2.Get("b"); ok && string(v) != "2" {
				t.Fatalf("crashed commit recovered mangled: %q", v)
			} else if tc.require && !ok {
				t.Fatal("post-fsync commit lost")
			}
		})
	}
}

// TestStoreSubscribe checks commit events reach a watcher with the
// affected keys, and that cancel closes the channel.
func TestStoreSubscribe(t *testing.T) {
	s := mustOpenStore(t, t.TempDir(), Options{})
	defer s.Close()
	ch, cancel := s.Subscribe(4)
	mustCommit(t, s, (&Txn{}).Put("a", []byte("1")).Delete("z"))
	ev := <-ch
	if ev.Seq != s.Seq() || len(ev.Puts) != 1 || ev.Puts[0] != "a" ||
		len(ev.Deletes) != 1 || ev.Deletes[0] != "z" {
		t.Fatalf("event = %+v", ev)
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
}

// TestStoreAutoCompact drives the WAL past the threshold and checks a
// compaction ran and the state still recovers.
func TestStoreAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenStore(t, dir, Options{CompactBytes: 256})
	for i := 0; i < 32; i++ {
		mustCommit(t, s, (&Txn{}).Put("k", []byte{byte(i)}))
	}
	if got := s.Stats().Compactions; got == 0 {
		t.Fatal("auto-compaction never ran")
	}
	s.Close()
	s2 := mustOpenStore(t, dir, Options{})
	defer s2.Close()
	wantVal(t, s2, "k", string([]byte{31}))
}
