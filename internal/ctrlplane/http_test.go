package ctrlplane

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestSLORest walks the /slos resource end to end over the REST
// surface: declare, read back, list, and delete, with the tenant
// existence check enforced.
func TestSLORest(t *testing.T) {
	m := newTestManager(t, t.TempDir(), newFakeHooks(1), ManagerOptions{})
	h := RESTHandler(m)

	do := func(method, path, body string) *httptest.ResponseRecorder {
		t.Helper()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(method, path, strings.NewReader(body)))
		return w
	}

	// Declaring an SLO for an unknown tenant is refused.
	if w := do("PUT", "/slos/ghost", `{"launch_p99_ns": 1000}`); w.Code != http.StatusConflict {
		t.Fatalf("PUT for unknown tenant = %d, want 409", w.Code)
	}

	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}
	w := do("PUT", "/slos/acme", `{"launch_p99_ns": 1000000, "max_error_ratio": 0.01}`)
	if w.Code != http.StatusOK {
		t.Fatalf("PUT /slos/acme = %d: %s", w.Code, w.Body)
	}

	var got SLO
	w = do("GET", "/slos/acme", "")
	if w.Code != http.StatusOK {
		t.Fatalf("GET /slos/acme = %d", w.Code)
	}
	if err := json.NewDecoder(w.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Tenant != "acme" || got.LaunchP99NS != 1000000 || got.MaxErrorRatio != 0.01 {
		t.Errorf("round-tripped SLO = %+v", got)
	}

	var list []SLO
	w = do("GET", "/slos", "")
	if err := json.NewDecoder(w.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Errorf("GET /slos = %+v, want one record", list)
	}

	// Out-of-range objectives are refused.
	if w := do("PUT", "/slos/acme", `{"max_error_ratio": 2}`); w.Code != http.StatusConflict {
		t.Errorf("out-of-range ratio accepted: %d", w.Code)
	}

	if w := do("DELETE", "/slos/acme", ""); w.Code != http.StatusNoContent {
		t.Errorf("DELETE /slos/acme = %d", w.Code)
	}
	if w := do("GET", "/slos/acme", ""); w.Code != http.StatusNotFound {
		t.Errorf("GET after delete = %d, want 404", w.Code)
	}
	if w := do("DELETE", "/slos/acme", ""); w.Code != http.StatusNotFound {
		t.Errorf("double DELETE = %d, want 404", w.Code)
	}
}

// TestEventsStream covers the SSE surface: commits and injected SLO
// events arrive as data lines, heartbeats arrive while idle, and a
// client disconnect reaps the watcher.
func TestEventsStream(t *testing.T) {
	old := sseHeartbeat
	sseHeartbeat = 50 * time.Millisecond
	defer func() { sseHeartbeat = old }()

	m := newTestManager(t, t.TempDir(), newFakeHooks(1), ManagerOptions{})
	srv := httptest.NewServer(RESTHandler(m))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if l := sc.Text(); l != "" {
				lines <- l
			}
		}
		close(lines)
	}()

	wait := func(substr string, what string) string {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case l, ok := <-lines:
				if !ok {
					t.Fatalf("stream closed waiting for %s", what)
				}
				if strings.Contains(l, substr) {
					return l
				}
			case <-deadline:
				t.Fatalf("timed out waiting for %s", what)
			}
		}
	}

	wait(": gvrt ctrlplane event stream", "banner")
	wait(": heartbeat", "idle heartbeat")

	if _, err := m.CreateTenant("acme"); err != nil {
		t.Fatal(err)
	}
	// The create commits twice (pending-op record, then the tenant key
	// plus op removal); wait for the one carrying the tenant record.
	wait(TenantKey("acme"), "tenant commit event")

	m.Store().Inject(Event{Kind: "slo", Detail: json.RawMessage(`{"tenant":"acme","breaching":true}`)})
	injected := wait(`"kind":"slo"`, "injected SLO event")
	if !strings.Contains(injected, `"breaching":true`) {
		t.Errorf("injected event lost detail: %q", injected)
	}

	// Disconnect; the handler must reap the watcher (at the latest when
	// the next heartbeat write fails), releasing the Subscribe slot so
	// future broadcasts don't pile into a dead channel.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m.Store().Watchers() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("watcher not reaped after disconnect: %d still registered", m.Store().Watchers())
}
