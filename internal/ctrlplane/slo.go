package ctrlplane

import (
	"fmt"
	"sort"
)

// SLO records are plain single-key store state: setting one has no
// multi-step runtime side effect to journal, so unlike tenant/quota
// mutations these commit directly without a pending operation. The
// record is durable intent ("tenant A is owed p99 < X"); the
// observability plane evaluates it against live histograms.

// SetSLO stores a tenant's SLO record. The tenant must exist.
func (m *Manager) SetSLO(tenant string, s SLO) (*SLO, error) {
	if tenant == "" {
		return nil, fmt.Errorf("slo-set: empty tenant name")
	}
	if s.LaunchP99NS < 0 || s.MaxErrorRatio < 0 || s.MaxErrorRatio > 1 {
		return nil, fmt.Errorf("slo-set %q: objectives out of range", tenant)
	}
	if _, ok := m.store.Get(TenantKey(tenant)); !ok {
		return nil, fmt.Errorf("slo-set %q: tenant does not exist", tenant)
	}
	s.Tenant = tenant
	if err := m.store.Commit((&Txn{}).Put(SLOKey(tenant), encodeJSON(s))); err != nil {
		return nil, err
	}
	return &s, nil
}

// DeleteSLO removes a tenant's SLO record.
func (m *Manager) DeleteSLO(tenant string) error {
	if _, ok := m.store.Get(SLOKey(tenant)); !ok {
		return fmt.Errorf("slo-delete %q: no such record", tenant)
	}
	return m.store.Commit((&Txn{}).Delete(SLOKey(tenant)))
}

// GetSLO returns one tenant's SLO record.
func (m *Manager) GetSLO(tenant string) (*SLO, bool) {
	raw, ok := m.store.Get(SLOKey(tenant))
	if !ok {
		return nil, false
	}
	var s SLO
	if decodeJSON(raw, &s) != nil {
		return nil, false
	}
	return &s, true
}

// SLOs lists all SLO records, sorted by tenant.
func (m *Manager) SLOs() []SLO {
	var out []SLO
	for _, kv := range m.store.List(KeySLOPrefix) {
		var s SLO
		if decodeJSON(kv.Val, &s) == nil {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
