package opserver

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gvrt/internal/api"
	"gvrt/internal/ctrlplane"
	"gvrt/internal/trace"
)

// This file renders a RuntimeStats snapshot as Prometheus text
// exposition format (version 0.0.4). The runtime's log2 histograms map
// directly onto Prometheus histograms: bucket i's upper bound is
// 2^i nanoseconds, exposed in seconds, with the trimmed tail folded
// into +Inf.

// counter pairs a metric name with a monotonic value.
type counter struct {
	name  string
	help  string
	value int64
}

// statCounters lists the snapshot's monotonic counters in exposition
// order. /statusz reuses it so the two views can never drift.
func statCounters(s api.RuntimeStats) []counter {
	return []counter{
		{"calls_served_total", "CUDA calls served.", s.CallsServed},
		{"binds_total", "Context-to-vGPU bindings.", s.Binds},
		{"inter_app_swaps_total", "Inter-application swap-outs (context evictions).", s.InterAppSwaps},
		{"intra_app_swaps_total", "Intra-application swap-outs (working-set evictions).", s.IntraAppSwaps},
		{"swap_ops_total", "Swap-area operations.", s.SwapOps},
		{"swap_bytes_total", "Bytes moved through the swap area.", s.SwapBytes},
		{"migrations_total", "Inter-device context migrations.", s.Migrations},
		{"migrations_started_total", "Cross-node session migrations started.", s.MigrationsStarted},
		{"migrations_completed_total", "Cross-node session migrations committed on the target.", s.MigrationsCompleted},
		{"migrations_aborted_total", "Cross-node session migrations aborted or refused.", s.MigrationsAborted},
		{"fence_rejections_total", "Mutating calls rejected by the session-lease write fence.", s.FenceRejections},
		{"lease_renewals_total", "Session-lease renewals piggybacked on served calls.", s.LeaseRenewals},
		{"recoveries_total", "Device-failure recoveries.", s.Recoveries},
		{"replays_total", "Kernels replayed during recovery.", s.Replays},
		{"device_failures_total", "Device failures observed.", s.DeviceFailures},
		{"offloaded_total", "Connections offloaded to a peer node.", s.Offloaded},
		{"unbind_retries_total", "Unbind attempts retried.", s.UnbindRetries},
		{"breaker_trips_total", "Circuit-breaker trips on peer links.", s.BreakerTrips},
		{"readmissions_total", "Offloaded connections readmitted locally.", s.Readmissions},
		{"retries_spent_total", "Retry-budget tokens spent.", s.RetriesSpent},
		{"sheds_total", "Connections shed by admission control.", s.Sheds},
	}
}

// writeMetrics renders the full exposition.
func writeMetrics(w io.Writer, s api.RuntimeStats) {
	for _, c := range statCounters(s) {
		name := "gvrt_" + c.name
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, c.help, name, name, c.value)
	}

	fmt.Fprintf(w, "# HELP gvrt_gpu_seconds_total Model seconds of kernel execution across all contexts (the per-tenant conservation anchor).\n# TYPE gvrt_gpu_seconds_total counter\ngvrt_gpu_seconds_total %s\n",
		fmtFloat(float64(s.GPUTimeNS)/1e9))

	writeGauge(w, "gvrt_queue_depth", "Contexts waiting for a virtual GPU.", float64(s.QueueDepth))
	writeGauge(w, "gvrt_live_contexts", "Live application contexts.", float64(s.LiveContexts))

	writeDeviceMetrics(w, s.Devices)
	writeTenantMetrics(w, s.Tenants)
	writeHistograms(w, s.Histograms)
}

// tenantMetric describes one per-tenant series.
type tenantMetric struct {
	name string
	help string
	typ  string
	val  func(api.TenantUsage) float64
}

// writeTenantMetrics renders the per-tenant attribution bundle as
// tenant-labeled series. Counter families end in _total; dedup savings
// are a gauge because reclaiming a saving (COW break, free) takes the
// value back down.
func writeTenantMetrics(w io.Writer, tenants map[string]api.TenantUsage) {
	if len(tenants) == 0 {
		return
	}
	names := make([]string, 0, len(tenants))
	for t := range tenants {
		names = append(names, t)
	}
	sort.Strings(names)

	metrics := []tenantMetric{
		{"gvrt_tenant_sessions", "Sessions currently admitted for the tenant.", "gauge",
			func(u api.TenantUsage) float64 { return float64(u.Sessions) }},
		{"gvrt_tenant_calls_total", "CUDA calls served for the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.Calls) }},
		{"gvrt_tenant_errors_total", "Calls that returned an error to the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.Errors) }},
		{"gvrt_tenant_launches_total", "Kernel launches completed for the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.Launches) }},
		{"gvrt_tenant_gpu_seconds_total", "Model seconds of GPU execution attributed to the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.GPUTimeNS) / 1e9 }},
		{"gvrt_tenant_queue_wait_seconds_total", "Model seconds the tenant's contexts spent queued for a vGPU.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.QueueWaitNS) / 1e9 }},
		{"gvrt_tenant_swap_bytes_total", "Swap-area bytes moved on behalf of the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.SwapBytes) }},
		{"gvrt_tenant_swap_ops_total", "Swap-area operations attributed to the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.SwapOps) }},
		{"gvrt_tenant_checkpoint_bytes_total", "Checkpoint bytes written for the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.CheckpointBytes) }},
		{"gvrt_tenant_migration_bytes_total", "Migration wire bytes shipped for the tenant.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.MigrationBytes) }},
		{"gvrt_tenant_dedup_saved_bytes", "Host bytes currently saved for the tenant by swap deduplication.", "gauge",
			func(u api.TenantUsage) float64 { return float64(u.DedupSavedBytes) }},
		{"gvrt_tenant_fence_rejections_total", "Tenant calls rejected by the session-lease write fence.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.FenceRejections) }},
		{"gvrt_tenant_quota_rejects_total", "Tenant admissions or allocations rejected by quota.", "counter",
			func(u api.TenantUsage) float64 { return float64(u.QuotaRejects) }},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, t := range names {
			fmt.Fprintf(w, "%s{tenant=%q} %s\n", m.name, t, fmtFloat(m.val(tenants[t])))
		}
	}

	fmt.Fprintf(w, "# HELP gvrt_tenant_launch_latency_seconds Per-tenant kernel launch service time (model seconds).\n# TYPE gvrt_tenant_launch_latency_seconds histogram\n")
	for _, t := range names {
		writeHist(w, "gvrt_tenant_launch_latency_seconds", fmt.Sprintf("tenant=%q,", t), tenants[t].Launch, 1e9)
	}
	fmt.Fprintf(w, "# HELP gvrt_tenant_queue_wait_seconds Per-tenant vGPU queue wait (model seconds).\n# TYPE gvrt_tenant_queue_wait_seconds histogram\n")
	for _, t := range names {
		writeHist(w, "gvrt_tenant_queue_wait_seconds", fmt.Sprintf("tenant=%q,", t), tenants[t].QueueWait, 1e9)
	}
}

// writeCtrlMetrics renders the control plane's operation counters,
// store counters, and the completed-operation duration histogram.
func writeCtrlMetrics(w io.Writer, m *ctrlplane.Manager) {
	oc := m.CountersSnapshot()
	st := m.Store().Stats()
	for _, c := range []counter{
		{"ctrl_ops_started_total", "Control-plane operations recorded.", oc.Started},
		{"ctrl_ops_completed_total", "Control-plane operations fully applied.", oc.Completed},
		{"ctrl_ops_resumed_total", "Interrupted operations resumed to completion at boot.", oc.Resumed},
		{"ctrl_ops_rolled_back_total", "Interrupted operations rolled back.", oc.RolledBack},
		{"ctrl_ops_stuck_total", "Operations quarantined awaiting operator cleanup.", oc.Stuck},
		{"ctrl_ops_cleaned_total", "Stuck operations force-rolled-back via the cleanup endpoint.", oc.Cleaned},
		{"ctrl_store_commits_total", "Control-plane store transactions committed.", st.Commits},
		{"ctrl_store_syncs_total", "Control-plane store fsync barriers.", st.Syncs},
		{"ctrl_store_compactions_total", "Control-plane store snapshot compactions.", st.Compactions},
		{"ctrl_store_quarantined_total", "Store records quarantined during recovery (payload CRC).", st.Quarantined},
	} {
		name := "gvrt_" + c.name
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, c.help, name, name, c.value)
	}
	writeGauge(w, "gvrt_ctrl_store_keys", "Keys held in the control-plane store.", float64(st.Keys))
	writeGauge(w, "gvrt_ctrl_ops_pending", "Operations currently pending or stuck.", float64(len(m.Ops())))
	fmt.Fprintf(w, "# HELP gvrt_ctrl_op_duration_seconds Completed control-plane operation duration (seconds).\n# TYPE gvrt_ctrl_op_duration_seconds histogram\n")
	writeHist(w, "gvrt_ctrl_op_duration_seconds", "", m.OpDurations(), 1e9)
}

func writeGauge(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
}

// deviceMetric describes one per-device series.
type deviceMetric struct {
	name string
	help string
	typ  string
	val  func(api.DeviceStats) float64
}

func writeDeviceMetrics(w io.Writer, devs []api.DeviceStats) {
	if len(devs) == 0 {
		return
	}
	metrics := []deviceMetric{
		{"gvrt_device_healthy", "1 when the device is healthy, 0 after a failure.", "gauge",
			func(d api.DeviceStats) float64 {
				if d.Healthy {
					return 1
				}
				return 0
			}},
		{"gvrt_device_busy_seconds_total", "Model seconds the device spent executing.", "counter",
			func(d api.DeviceStats) float64 { return float64(d.BusyNS) / 1e9 }},
		{"gvrt_device_launches_total", "Kernel launches executed on the device.", "counter",
			func(d api.DeviceStats) float64 { return float64(d.Launches) }},
		{"gvrt_device_h2d_bytes_total", "Host-to-device bytes transferred.", "counter",
			func(d api.DeviceStats) float64 { return float64(d.H2DBytes) }},
		{"gvrt_device_d2h_bytes_total", "Device-to-host bytes transferred.", "counter",
			func(d api.DeviceStats) float64 { return float64(d.D2HBytes) }},
		{"gvrt_device_active_vgpus", "Virtual GPUs currently bound to a context.", "gauge",
			func(d api.DeviceStats) float64 { return float64(d.ActiveVGPUs) }},
		{"gvrt_device_vgpus", "Virtual GPUs configured on the device.", "gauge",
			func(d api.DeviceStats) float64 { return float64(d.VGPUs) }},
		{"gvrt_device_mem_available_bytes", "Device memory currently available.", "gauge",
			func(d api.DeviceStats) float64 { return float64(d.MemAvailable) }},
		{"gvrt_device_capacity_bytes", "Device memory capacity.", "gauge",
			func(d api.DeviceStats) float64 { return float64(d.Capacity) }},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.typ)
		for _, d := range devs {
			fmt.Fprintf(w, "%s{device=%q,model=%q} %s\n",
				m.name, strconv.Itoa(d.Index), d.Name, fmtFloat(m.val(d)))
		}
	}
}

// histMeta maps a snapshot key to its exposition name, help text and
// unit scale (raw value units per exposed unit: 1e9 for ns→seconds,
// 1 for bytes).
type histMeta struct {
	metric string
	help   string
	scale  float64
}

func histInfo(key string) histMeta {
	switch key {
	case "launch_latency":
		return histMeta{"gvrt_launch_latency_seconds", "End-to-end kernel launch service time (model seconds).", 1e9}
	case "queue_wait":
		return histMeta{"gvrt_queue_wait_seconds", "Time parked waiting for a free virtual GPU (model seconds).", 1e9}
	case "bind_wait":
		return histMeta{"gvrt_bind_wait_seconds", "Time from first bind attempt to bound (model seconds).", 1e9}
	case "swap_duration":
		return histMeta{"gvrt_swap_duration_seconds", "Per-swap-operation duration (model seconds).", 1e9}
	case "swap_bytes":
		return histMeta{"gvrt_swap_size_bytes", "Per-swap-operation size (bytes).", 1}
	case "h2d":
		return histMeta{"gvrt_h2d_transfer_seconds", "Per-transfer host-to-device copy duration (model seconds).", 1e9}
	case "d2h":
		return histMeta{"gvrt_d2h_transfer_seconds", "Per-transfer device-to-host copy duration (model seconds).", 1e9}
	case "journal_commit_wall":
		return histMeta{"gvrt_journal_commit_wall_seconds", "Durable kernel commit cost (WALL seconds, dominated by fsync).", 1e9}
	case "peer_call":
		return histMeta{"gvrt_peer_call_seconds", "Peer RPC round-trip time (model seconds).", 1e9}
	case "migration_duration":
		return histMeta{"gvrt_migration_duration_seconds", "Cross-node session migration duration (model seconds).", 1e9}
	case "migration_bytes":
		return histMeta{"gvrt_migration_size_bytes", "Wire bytes actually shipped per cross-node migration (after dedup/resume exclusion).", 1}
	case "dedup_saved":
		return histMeta{"gvrt_dedup_saved_bytes", "Bytes saved per swap-image seal by chunk deduplication (bytes).", 1}
	case "prefetch":
		return histMeta{"gvrt_prefetch_seconds", "Predictive swap-in prefetch duration (model seconds).", 1e9}
	default:
		// Unknown future keys still expose, as sanitized model-second
		// histograms, so adding a histogram never silently drops data.
		name := strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				return r
			default:
				return '_'
			}
		}, key)
		return histMeta{"gvrt_" + name + "_seconds", "Runtime histogram " + key + " (model seconds).", 1e9}
	}
}

// writeHistograms renders every histogram in the snapshot. Per-call
// histograms ("call.<kind>" keys) are folded into one
// gvrt_call_duration_seconds family with a kind label.
func writeHistograms(w io.Writer, hists map[string]trace.HistSnapshot) {
	if len(hists) == 0 {
		return
	}
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	callHeader := false
	for _, k := range keys {
		kind, isCall := strings.CutPrefix(k, "call.")
		if !isCall {
			continue
		}
		if !callHeader {
			fmt.Fprintf(w, "# HELP gvrt_call_duration_seconds Service time per CUDA call kind (model seconds).\n# TYPE gvrt_call_duration_seconds histogram\n")
			callHeader = true
		}
		writeHist(w, "gvrt_call_duration_seconds", fmt.Sprintf("kind=%q,", kind), hists[k], 1e9)
	}
	for _, k := range keys {
		if strings.HasPrefix(k, "call.") {
			continue
		}
		m := histInfo(k)
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", m.metric, m.help, m.metric)
		writeHist(w, m.metric, "", hists[k], m.scale)
	}
}

// writeHist renders one histogram's _bucket/_sum/_count series.
// extraLabels is either empty or a "k=\"v\"," prefix.
func writeHist(w io.Writer, name, extraLabels string, s trace.HistSnapshot, scale float64) {
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n",
			name, extraLabels, fmtFloat(float64(trace.BucketBound(i))/scale), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extraLabels, s.Count)
	var labels string
	if extraLabels != "" {
		labels = "{" + strings.TrimSuffix(extraLabels, ",") + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, fmtFloat(float64(s.Sum)/scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Count)
}

// fmtFloat renders a float the way Prometheus expects: shortest
// round-trip representation, integers without a decimal point.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
