// Package opserver is the HTTP operator plane of a gvrt daemon: a
// small handler serving Prometheus text-format metrics (/metrics), a
// human-readable node status page (/statusz), the slowest recent spans
// (/tracez), a Perfetto-loadable Chrome trace-event export
// (/trace.json), and the Go profiler (/debug/pprof). It reads only
// snapshot APIs — the runtime's StatsCall structure and the trace
// recorder — so scraping never contends with the dispatch path beyond
// what a StatsCall already costs.
package opserver

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/ctrlplane"
	"gvrt/internal/obs"
	"gvrt/internal/trace"
)

// Source is the slice of a runtime the operator plane reads. Stats is
// required; the rest degrade gracefully (nil Trace serves empty
// /tracez and /trace.json, nil Now omits model uptime, nil Ctrl omits
// the control-plane REST resources).
type Source struct {
	// Stats returns the node's metrics snapshot (Runtime.StatsSnapshot).
	Stats func() api.RuntimeStats
	// Trace is the node's trace recorder; nil when tracing is off.
	Trace *trace.Recorder
	// Now is the model clock, used for uptime and the trace export.
	Now func() time.Duration
	// Name labels the process in trace exports (default "gvrtd").
	Name string
	// Ctrl is the node's control plane; when set, its REST resources
	// (/tenants, /quotas, /devices, /ops, /events) are mounted and
	// /healthz includes store health.
	Ctrl *ctrlplane.Manager
	// JournalHealthy reports whether the checkpoint journal can still
	// persist commits; nil means "no journal attached" (healthy).
	JournalHealthy func() bool
	// Fleet, when set (head nodes), enables /metrics?scope=cluster and
	// /cluster: the fleet-wide merge of every reachable peer's snapshot.
	Fleet *obs.Collector
	// SLO, when set, serves per-tenant burn-rate status at /slo.
	SLO *obs.SLOEngine
}

// Handler builds the operator-plane HTTP handler.
func Handler(src Source) http.Handler {
	if src.Name == "" {
		src.Name = "gvrtd"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "gvrt operator plane (%s)\n\n", src.Name)
		fmt.Fprintln(w, "  /metrics      Prometheus text exposition (?scope=cluster on head nodes)")
		fmt.Fprintln(w, "  /tenants/{t}/usage  per-tenant attribution snapshot (JSON)")
		fmt.Fprintln(w, "  /slo          per-tenant SLO burn-rate status (JSON)")
		fmt.Fprintln(w, "  /cluster      fleet-wide merged snapshot (JSON, head nodes)")
		fmt.Fprintln(w, "  /statusz      node status: devices, queue, counters")
		fmt.Fprintln(w, "  /tracez       slowest recent spans (?n=100)")
		fmt.Fprintln(w, "  /trace.json   Chrome trace-event export (load in Perfetto)")
		fmt.Fprintln(w, "  /healthz      readiness probe (JSON)")
		fmt.Fprintln(w, "  /debug/pprof  Go profiler")
		if src.Ctrl != nil {
			fmt.Fprintln(w, "\ncontrol plane:")
			fmt.Fprintln(w, "  /tenants      tenant registry (GET list, POST create, DELETE one)")
			fmt.Fprintln(w, "  /quotas       tenant quotas (GET list, PUT /quotas/{tenant})")
			fmt.Fprintln(w, "  /devices      device membership (POST /devices/{id}/drain|readmit)")
			fmt.Fprintln(w, "  /slos         tenant SLO records (PUT /slos/{tenant})")
			fmt.Fprintln(w, "  /ops          pending/stuck operations (POST /ops/cleanup)")
			fmt.Fprintln(w, "  /events       SSE stream of store commits and SLO burn events")
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeHealthz(w, src)
	})
	if src.Ctrl != nil {
		rest := ctrlplane.RESTHandler(src.Ctrl)
		for _, p := range []string{"/tenants", "/tenants/", "/quotas", "/quotas/",
			"/devices", "/devices/", "/slos", "/slos/", "/ops", "/ops/", "/events"} {
			mux.Handle(p, rest)
		}
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r.URL.Query().Get("scope") == "cluster" {
			if src.Fleet == nil {
				http.Error(w, "no fleet collector on this node", http.StatusNotFound)
				return
			}
			cs := src.Fleet.Collect()
			writeGauge(w, "gvrt_cluster_nodes", "Nodes whose snapshot is folded into this exposition.", float64(len(cs.Nodes)))
			writeGauge(w, "gvrt_cluster_nodes_unreachable", "Nodes that failed to answer the stats pull.", float64(len(cs.Unreachable)))
			writeMetrics(w, cs.Merged)
			return
		}
		writeMetrics(w, src.Stats())
		if src.Ctrl != nil {
			writeCtrlMetrics(w, src.Ctrl)
		}
	})
	// Registered with an explicit method + trailing segment so it wins
	// over the control plane's /tenants/ prefix mount above.
	mux.HandleFunc("GET /tenants/{tenant}/usage", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("tenant")
		var u api.TenantUsage
		var ok bool
		if r.URL.Query().Get("scope") == "cluster" && src.Fleet != nil {
			u, ok = src.Fleet.Collect().Merged.Tenants[name]
		} else {
			u, ok = src.Stats().Tenants[name]
		}
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]string{"error": "no usage recorded for tenant " + name})
			return
		}
		json.NewEncoder(w).Encode(u)
	})
	mux.HandleFunc("GET /slo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if src.SLO == nil {
			json.NewEncoder(w).Encode([]any{})
			return
		}
		st := src.SLO.Status()
		if st == nil {
			st = []obs.SLOStatus{}
		}
		json.NewEncoder(w).Encode(st)
	})
	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		if src.Fleet == nil {
			http.Error(w, "no fleet collector on this node", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(src.Fleet.Collect())
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeStatusz(w, src)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeTracez(w, src, r.URL.Query().Get("n"))
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		proc := trace.ChromeProcess{Name: src.Name}
		if src.Trace != nil {
			proc.Spans = src.Trace.Spans()
			proc.Events = src.Trace.Snapshot()
		}
		if err := trace.WriteChromeTrace(w, proc); err != nil {
			// Headers are gone; the truncated body is the best signal left.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeHealthz answers the readiness probe: 200 with a JSON summary
// when the node can take work — control-plane store committing (when
// one is attached), checkpoint journal writable (when attached), and
// at least one healthy device — 503 otherwise. Load balancers and the
// CI smoke jobs key off the status code; the body says which leg failed.
func writeHealthz(w http.ResponseWriter, src Source) {
	s := src.Stats()
	healthyDevs := 0
	for _, d := range s.Devices {
		if d.Healthy {
			healthyDevs++
		}
	}
	storeOK := true
	if src.Ctrl != nil {
		storeOK = src.Ctrl.Store().Healthy()
	}
	journalOK := src.JournalHealthy == nil || src.JournalHealthy()
	ready := storeOK && journalOK && healthyDevs > 0

	resp := map[string]any{
		"ready":           ready,
		"store_ok":        storeOK,
		"journal_ok":      journalOK,
		"devices_healthy": healthyDevs,
		"devices_total":   len(s.Devices),
	}
	if src.Ctrl != nil {
		resp["pending_ops"] = len(src.Ctrl.Ops())
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(resp)
}

// writeStatusz renders the human status page.
func writeStatusz(w http.ResponseWriter, src Source) {
	s := src.Stats()
	fmt.Fprintf(w, "gvrt node status (%s)\n", src.Name)
	if src.Now != nil {
		fmt.Fprintf(w, "model time:    %v\n", src.Now())
	}
	fmt.Fprintf(w, "queue depth:   %d\n", s.QueueDepth)
	fmt.Fprintf(w, "live contexts: %d\n\n", s.LiveContexts)

	fmt.Fprintln(w, "devices:")
	fmt.Fprintf(w, "  %-3s %-12s %-9s %5s/%-5s %9s %10s %12s %12s\n",
		"idx", "model", "state", "vgpu", "cap", "launches", "busy", "mem avail", "capacity")
	for _, d := range s.Devices {
		state := "healthy"
		if !d.Healthy {
			state = "FAILED"
		}
		fmt.Fprintf(w, "  %-3d %-12s %-9s %5d/%-5d %9d %10v %12d %12d\n",
			d.Index, d.Name, state, d.ActiveVGPUs, d.VGPUs,
			d.Launches, time.Duration(d.BusyNS).Round(time.Millisecond),
			d.MemAvailable, d.Capacity)
	}

	fmt.Fprintln(w, "\ncounters:")
	for _, c := range statCounters(s) {
		fmt.Fprintf(w, "  %-22s %d\n", c.name, c.value)
	}

	if len(s.Histograms) > 0 {
		keys := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "\nlatency (model time unless noted):")
		fmt.Fprintf(w, "  %-26s %9s %12s %12s %12s\n", "histogram", "count", "p50", "p99", "mean")
		for _, k := range keys {
			h := s.Histograms[k]
			if k == "swap_bytes" {
				fmt.Fprintf(w, "  %-26s %9d %12d %12d %12.0f (bytes)\n",
					k, h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Mean())
				continue
			}
			fmt.Fprintf(w, "  %-26s %9d %12v %12v %12v\n",
				k, h.Count,
				time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)),
				time.Duration(h.Mean()))
		}
	}
	if src.Trace != nil {
		fmt.Fprintf(w, "\nspans recorded: %d (retained %d)\n",
			src.Trace.SpanTotal(), len(src.Trace.Spans()))
	}
}

// writeTracez renders the slowest retained spans, one per line.
func writeTracez(w http.ResponseWriter, src Source, nParam string) {
	n := 100
	if v, err := strconv.Atoi(nParam); err == nil && v > 0 {
		n = v
	}
	if src.Trace == nil {
		fmt.Fprintln(w, "tracing off (runtime built without a trace recorder)")
		return
	}
	spans := src.Trace.SlowestSpans(n)
	fmt.Fprintf(w, "slowest %d of %d retained spans (%d recorded)\n\n",
		len(spans), len(src.Trace.Spans()), src.Trace.SpanTotal())
	fmt.Fprintf(w, "%12s %10s %-16s\n", "start", "dur", "phase")
	for _, s := range spans {
		fmt.Fprintln(w, s.String())
	}
}
