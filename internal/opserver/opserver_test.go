package opserver

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gvrt/internal/api"
	"gvrt/internal/core"
	"gvrt/internal/cudart"
	"gvrt/internal/frontend"
	"gvrt/internal/gpu"
	"gvrt/internal/sim"
	"gvrt/internal/trace"
	"gvrt/internal/transport"
)

const testBinID = "opserver-test-bin"

func testBinary() api.FatBinary {
	return api.FatBinary{
		ID:      testBinID,
		Kernels: []api.KernelMeta{{Name: "work", BaseTime: time.Millisecond}},
	}
}

// newNode builds an in-process runtime with tracing on, runs a small
// workload through it so every exposition surface has data, and
// returns the operator-plane handler over it.
func newNode(t *testing.T) (http.Handler, *core.Runtime) {
	t.Helper()
	clock := sim.NewClock(1e-7)
	dev := gpu.NewDevice(0, gpu.TeslaC2050, clock)
	crt := cudart.New(clock, dev)
	rec := trace.NewRecorder(1024)
	rt, err := core.New(crt, core.Config{Trace: rec, CallOverhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	t.Cleanup(func() {
		rt.Close()
		wg.Wait()
	})

	cc, sc := transport.Pipe()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rt.Serve(sc)
	}()
	c := frontend.Connect(cc)
	if err := c.RegisterFatBinary(testBinary()); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTenant("acme"); err != nil {
		t.Fatal(err)
	}
	p, err := c.Malloc(1 << 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Launch(api.LaunchCall{Kernel: "work", PtrArgs: []api.DevPtr{p}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Synchronize(); err != nil {
		t.Fatal(err)
	}
	c.Close()

	h := Handler(Source{
		Stats: rt.StatsSnapshot,
		Trace: rt.TraceRecorder(),
		Now:   rt.Clock().Now,
		Name:  "gvrtd test-node",
	})
	return h, rt
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", path, w.Code)
	}
	return w
}

// expositionLine is the shape every non-comment /metrics line must
// have: a metric name, optional label set, and a number.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{([a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*",?)*\})? -?[0-9.eE+-]+(Inf)?$`)

func TestMetricsExposition(t *testing.T) {
	h, _ := newNode(t)
	body := get(t, h, "/metrics").Body.String()

	launchCount := int64(-1)
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("malformed comment line: %q", line)
			}
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		if strings.HasPrefix(line, "gvrt_launch_latency_seconds_count") {
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			launchCount = v
		}
	}
	switch {
	case launchCount < 0:
		t.Error("gvrt_launch_latency_seconds_count missing from exposition")
	case launchCount != 5:
		t.Errorf("launch latency count = %d, want 5", launchCount)
	}
	for _, want := range []string{
		"gvrt_calls_served_total",
		"gvrt_queue_depth",
		"gvrt_device_healthy{device=\"0\"",
		"gvrt_call_duration_seconds_bucket{kind=\"cudaLaunch\"",
		"gvrt_launch_latency_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsBucketsCumulative checks the histogram contract scrapers
// rely on: bucket counts are non-decreasing in le order and the +Inf
// bucket equals _count.
func TestMetricsBucketsCumulative(t *testing.T) {
	h, _ := newNode(t)
	body := get(t, h, "/metrics").Body.String()

	var prev, inf, count int64 = -1, -1, -1
	for _, line := range strings.Split(body, "\n") {
		switch {
		case strings.HasPrefix(line, "gvrt_launch_latency_seconds_bucket"):
			v, _ := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if v < prev {
				t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "gvrt_launch_latency_seconds_count"):
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if inf < 0 || inf != count {
		t.Errorf("+Inf bucket = %d, _count = %d; want equal and present", inf, count)
	}
}

func TestStatusz(t *testing.T) {
	h, _ := newNode(t)
	body := get(t, h, "/statusz").Body.String()
	for _, want := range []string{"devices:", "Tesla C2050", "healthy", "counters:", "launch_latency", "spans recorded:"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q\n%s", want, body)
		}
	}
}

func TestTracez(t *testing.T) {
	h, _ := newNode(t)
	body := get(t, h, "/tracez").Body.String()
	if !strings.Contains(body, "call.cudaLaunch") {
		t.Errorf("/tracez missing launch spans:\n%s", body)
	}
	limited := get(t, h, "/tracez?n=1").Body.String()
	if !strings.Contains(limited, "slowest 1 of") {
		t.Errorf("/tracez?n=1 did not limit:\n%s", limited)
	}
}

func TestTraceJSON(t *testing.T) {
	h, _ := newNode(t)
	body := get(t, h, "/trace.json").Body.Bytes()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/trace.json is not valid JSON: %v", err)
	}
	var complete, meta bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			complete = true
		case "M":
			meta = true
		}
	}
	if !complete || !meta {
		t.Errorf("trace export lacks spans (X=%v) or process metadata (M=%v)", complete, meta)
	}
}

func TestIndexAndNotFound(t *testing.T) {
	h, _ := newNode(t)
	if body := get(t, h, "/").Body.String(); !strings.Contains(body, "/metrics") {
		t.Errorf("index page missing endpoint list:\n%s", body)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", w.Code)
	}
}

// TestTracingOff covers the degraded plane: no recorder, no clock.
func TestTracingOff(t *testing.T) {
	clock := sim.NewClock(1e-7)
	crt := cudart.New(clock, gpu.NewDevice(0, gpu.TeslaC1060, clock))
	rt, err := core.New(crt, core.Config{CallOverhead: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	h := Handler(Source{Stats: rt.StatsSnapshot})
	if body := get(t, h, "/tracez").Body.String(); !strings.Contains(body, "tracing off") {
		t.Errorf("/tracez without recorder: %q", body)
	}
	get(t, h, "/metrics")
	get(t, h, "/statusz")
	get(t, h, "/trace.json")
}
