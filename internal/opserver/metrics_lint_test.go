package opserver

// Exposition hygiene tests: a promlint-style naming/typing pass over
// the live /metrics output, and a golden metric inventory so renaming
// or adding a series is always a reviewed, deliberate act. If
// TestMetricsGoldenInventory fails after an intentional change, update
// goldenFamilies below — that diff IS the review surface.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// family is one parsed metric family from the exposition.
type family struct {
	name    string
	typ     string // counter | gauge | histogram
	help    string
	samples int
}

// parseExposition groups a text exposition into families, folding
// histogram _bucket/_sum/_count series onto their base name. It fails
// the test on structurally malformed lines (sample before TYPE,
// unknown suffix for the declared type).
func parseExposition(t *testing.T, body string) map[string]*family {
	t.Helper()
	fams := map[string]*family{}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			f := fams[name]
			if f == nil {
				f = &family{name: name}
				fams[name] = f
			}
			f.help = help
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			f := fams[fields[0]]
			if f == nil {
				f = &family{name: fields[0]}
				fams[fields[0]] = f
			}
			f.typ = fields[1]
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				trimmed := strings.TrimSuffix(name, suf)
				if trimmed != name && fams[trimmed] != nil && fams[trimmed].typ == "histogram" {
					base = trimmed
					break
				}
			}
			f := fams[base]
			if f == nil || f.typ == "" || f.help == "" {
				t.Errorf("sample %q appears before its # HELP/# TYPE header", name)
				continue
			}
			f.samples++
		}
	}
	return fams
}

// scrapeFamilies runs the standard test workload and parses /metrics.
func scrapeFamilies(t *testing.T) map[string]*family {
	t.Helper()
	h, _ := newNode(t)
	return parseExposition(t, get(t, h, "/metrics").Body.String())
}

// TestMetricsPromlint enforces the naming rules promtool's lint
// applies: counters end in _total, gauges and histograms do not,
// units are base units (seconds/bytes, never ms/ns/kb in the name),
// names are lowercase snake_case under the gvrt_ namespace, and every
// family carries help text ending in a period.
func TestMetricsPromlint(t *testing.T) {
	fams := scrapeFamilies(t)
	if len(fams) == 0 {
		t.Fatal("no metric families parsed")
	}
	for name, f := range fams {
		if !strings.HasPrefix(name, "gvrt_") {
			t.Errorf("%s: outside the gvrt_ namespace", name)
		}
		if strings.ToLower(name) != name || strings.Contains(name, "__") {
			t.Errorf("%s: not lowercase snake_case", name)
		}
		for _, bad := range []string{"_ns", "_nanoseconds", "_ms", "_milliseconds", "_micros", "_kb", "_mb", "_gb"} {
			if strings.HasSuffix(name, bad) || strings.Contains(name, bad+"_") {
				t.Errorf("%s: non-base unit %q in metric name", name, bad)
			}
		}
		switch f.typ {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				t.Errorf("%s: counter without _total suffix", name)
			}
		case "gauge", "histogram":
			if strings.HasSuffix(name, "_total") {
				t.Errorf("%s: %s must not end in _total", name, f.typ)
			}
		default:
			t.Errorf("%s: unknown or missing TYPE %q", name, f.typ)
		}
		if f.help == "" {
			t.Errorf("%s: missing # HELP", name)
		} else if !strings.HasSuffix(f.help, ".") {
			t.Errorf("%s: help text %q does not end with a period", name, f.help)
		}
		if f.samples == 0 {
			t.Errorf("%s: declared but has no samples", name)
		}
	}
}

// goldenFamilies is the full metric inventory: every family the node
// exposition may contain. "required" families must be present for the
// standard test workload (tenant joined, launches run); the rest are
// data-dependent histograms that appear once their subsystem observes
// a value.
var goldenFamilies = map[string]bool{ // name -> required
	// Node counters (statCounters order).
	"gvrt_calls_served_total":         true,
	"gvrt_binds_total":                true,
	"gvrt_inter_app_swaps_total":      true,
	"gvrt_intra_app_swaps_total":      true,
	"gvrt_swap_ops_total":             true,
	"gvrt_swap_bytes_total":           true,
	"gvrt_migrations_total":           true,
	"gvrt_migrations_started_total":   true,
	"gvrt_migrations_completed_total": true,
	"gvrt_migrations_aborted_total":   true,
	"gvrt_fence_rejections_total":     true,
	"gvrt_lease_renewals_total":       true,
	"gvrt_recoveries_total":           true,
	"gvrt_replays_total":              true,
	"gvrt_device_failures_total":      true,
	"gvrt_offloaded_total":            true,
	"gvrt_unbind_retries_total":       true,
	"gvrt_breaker_trips_total":        true,
	"gvrt_readmissions_total":         true,
	"gvrt_retries_spent_total":        true,
	"gvrt_sheds_total":                true,
	"gvrt_gpu_seconds_total":          true,
	// Node gauges.
	"gvrt_queue_depth":   true,
	"gvrt_live_contexts": true,
	// Per-device series.
	"gvrt_device_healthy":             true,
	"gvrt_device_busy_seconds_total":  true,
	"gvrt_device_launches_total":      true,
	"gvrt_device_h2d_bytes_total":     true,
	"gvrt_device_d2h_bytes_total":     true,
	"gvrt_device_active_vgpus":        true,
	"gvrt_device_vgpus":               true,
	"gvrt_device_mem_available_bytes": true,
	"gvrt_device_capacity_bytes":      true,
	// Per-tenant attribution series.
	"gvrt_tenant_sessions":                 true,
	"gvrt_tenant_calls_total":              true,
	"gvrt_tenant_errors_total":             true,
	"gvrt_tenant_launches_total":           true,
	"gvrt_tenant_gpu_seconds_total":        true,
	"gvrt_tenant_queue_wait_seconds_total": true,
	"gvrt_tenant_swap_bytes_total":         true,
	"gvrt_tenant_swap_ops_total":           true,
	"gvrt_tenant_checkpoint_bytes_total":   true,
	"gvrt_tenant_migration_bytes_total":    true,
	"gvrt_tenant_dedup_saved_bytes":        true,
	"gvrt_tenant_fence_rejections_total":   true,
	"gvrt_tenant_quota_rejects_total":      true,
	"gvrt_tenant_launch_latency_seconds":   true,
	"gvrt_tenant_queue_wait_seconds":       true,
	// Runtime histograms (appear when observed; launch/call always do
	// under the standard workload).
	"gvrt_launch_latency_seconds":      true,
	"gvrt_call_duration_seconds":       true,
	"gvrt_queue_wait_seconds":          false,
	"gvrt_bind_wait_seconds":           false,
	"gvrt_swap_duration_seconds":       false,
	"gvrt_swap_size_bytes":             false,
	"gvrt_h2d_transfer_seconds":        false,
	"gvrt_d2h_transfer_seconds":        false,
	"gvrt_journal_commit_wall_seconds": false,
	"gvrt_peer_call_seconds":           false,
	"gvrt_prefetch_seconds":            false,
	"gvrt_dedup_saved_bytes":           false,
	"gvrt_migration_duration_seconds":  false,
	"gvrt_migration_size_bytes":        false,
	// Control-plane series (Ctrl attached) and cluster-scope gauges
	// (head nodes); not emitted by the bare test node.
	"gvrt_ctrl_ops_started_total":       false,
	"gvrt_ctrl_ops_completed_total":     false,
	"gvrt_ctrl_ops_resumed_total":       false,
	"gvrt_ctrl_ops_rolled_back_total":   false,
	"gvrt_ctrl_ops_stuck_total":         false,
	"gvrt_ctrl_ops_cleaned_total":       false,
	"gvrt_ctrl_store_commits_total":     false,
	"gvrt_ctrl_store_syncs_total":       false,
	"gvrt_ctrl_store_compactions_total": false,
	"gvrt_ctrl_store_quarantined_total": false,
	"gvrt_ctrl_store_keys":              false,
	"gvrt_ctrl_ops_pending":             false,
	"gvrt_ctrl_op_duration_seconds":     false,
	"gvrt_cluster_nodes":                false,
	"gvrt_cluster_nodes_unreachable":    false,
}

func TestMetricsGoldenInventory(t *testing.T) {
	fams := scrapeFamilies(t)

	var unknown, missing []string
	for name := range fams {
		if _, ok := goldenFamilies[name]; !ok {
			unknown = append(unknown, name)
		}
	}
	for name, required := range goldenFamilies {
		if required && fams[name] == nil {
			missing = append(missing, name)
		}
	}
	sort.Strings(unknown)
	sort.Strings(missing)
	if len(unknown) > 0 {
		t.Errorf("families not in the golden inventory (new metric? add it to goldenFamilies in %s):\n  %s",
			"metrics_lint_test.go", strings.Join(unknown, "\n  "))
	}
	if len(missing) > 0 {
		t.Errorf("required golden families missing from the exposition (renamed or dropped?):\n  %s",
			strings.Join(missing, "\n  "))
	}
	if t.Failed() {
		var got []string
		for name := range fams {
			got = append(got, fmt.Sprintf("%s (%s)", name, fams[name].typ))
		}
		sort.Strings(got)
		t.Logf("exposition families:\n  %s", strings.Join(got, "\n  "))
	}
}
