package trace

import "time"

// Tracer is a small handle layers below core (memmgr, faultinject)
// use to record spans and observe histograms without importing core.
// A nil *Tracer is valid and records nothing, so callers instrument
// unconditionally.
type Tracer struct {
	// Rec receives completed spans; may be nil.
	Rec *Recorder
	// Now returns current model time; required when Rec is set.
	Now func() time.Duration
	// Histograms fed by the instrumented layer; each may be nil.
	SwapDur   *Histogram
	SwapBytes *Histogram
	H2D       *Histogram
	D2H       *Histogram
	// DedupSaved observes the bytes saved each time a swap image seals
	// with at least one shared chunk.
	DedupSaved *Histogram
	// Prefetch observes the model-time duration of speculative swap-in
	// work done by the predictive prefetcher.
	Prefetch *Histogram
}

// Start returns the current model time, or 0 on a nil tracer.
func (t *Tracer) Start() time.Duration {
	if t == nil || t.Now == nil {
		return 0
	}
	return t.Now()
}

// Spans reports whether Span calls will actually record anything.
// Hot paths consult it before building span detail strings, so the
// formatting cost is only paid when a recorder is attached.
func (t *Tracer) Spans() bool {
	return t != nil && t.Rec != nil && t.Now != nil
}

// Span records a span from start to now. No-op on a nil tracer or
// nil recorder.
func (t *Tracer) Span(phase string, ctx int64, start time.Duration, device int, detail string) {
	if t == nil || t.Rec == nil || t.Now == nil {
		return
	}
	t.Rec.RecordSpan(Span{
		ID: NewSpanID(), Ctx: ctx, Phase: phase,
		Start: start, End: t.Now(), Device: device, Detail: detail,
	})
}

// Observe records v into h when both the tracer and histogram are
// non-nil.
func (t *Tracer) Observe(h *Histogram, v int64) {
	if t == nil || h == nil {
		return
	}
	h.Observe(v)
}
