package trace

import "time"

// Tracer is a small handle layers below core (memmgr, faultinject)
// use to record spans and observe histograms without importing core.
// A nil *Tracer is valid and records nothing, so callers instrument
// unconditionally.
type Tracer struct {
	// Rec receives completed spans; may be nil.
	Rec *Recorder
	// Now returns current model time; required when Rec is set.
	Now func() time.Duration
	// Histograms fed by the instrumented layer; each may be nil.
	SwapDur   *Histogram
	SwapBytes *Histogram
	H2D       *Histogram
	D2H       *Histogram
	// DedupSaved observes the bytes saved each time a swap image seals
	// with at least one shared chunk.
	DedupSaved *Histogram
	// Prefetch observes the model-time duration of speculative swap-in
	// work done by the predictive prefetcher.
	Prefetch *Histogram
	// Attr, when set, receives the same byte-level accounting the
	// instrumented layer adds to its own counters, keyed by the owning
	// context so the caller can attribute it (per tenant). It must be
	// safe to call from swap paths: implementations may not take locks.
	Attr func(ctx int64, kind AttrKind, v int64)
}

// AttrKind names a per-context attributable quantity reported through
// Tracer.Attr.
type AttrKind uint8

const (
	// AttrSwapBytes: bytes spilled device→swap for ctx (dirty syncs
	// only — mirrors the runtime's swap_bytes counter, not the
	// per-operation size histogram).
	AttrSwapBytes AttrKind = iota
	// AttrSwapOps: swap-out operations completed for ctx.
	AttrSwapOps
	// AttrCheckpointBytes: bytes flushed device→swap by checkpoints.
	AttrCheckpointBytes
	// AttrDedupSaved: net change in host bytes avoided by dedup for
	// images owned by ctx (negative when a shared image privatises).
	AttrDedupSaved
)

// Start returns the current model time, or 0 on a nil tracer.
func (t *Tracer) Start() time.Duration {
	if t == nil || t.Now == nil {
		return 0
	}
	return t.Now()
}

// Spans reports whether Span calls will actually record anything.
// Hot paths consult it before building span detail strings, so the
// formatting cost is only paid when a recorder is attached.
func (t *Tracer) Spans() bool {
	return t != nil && t.Rec != nil && t.Now != nil
}

// Span records a span from start to now. No-op on a nil tracer or
// nil recorder.
func (t *Tracer) Span(phase string, ctx int64, start time.Duration, device int, detail string) {
	if t == nil || t.Rec == nil || t.Now == nil {
		return
	}
	t.Rec.RecordSpan(Span{
		ID: NewSpanID(), Ctx: ctx, Phase: phase,
		Start: start, End: t.Now(), Device: device, Detail: detail,
	})
}

// Observe records v into h when both the tracer and histogram are
// non-nil.
func (t *Tracer) Observe(h *Histogram, v int64) {
	if t == nil || h == nil {
		return
	}
	h.Observe(v)
}

// Attribute reports an attributable quantity for ctx. No-op on a nil
// tracer or unset Attr sink.
func (t *Tracer) Attribute(ctx int64, kind AttrKind, v int64) {
	if t == nil || t.Attr == nil {
		return
	}
	t.Attr(ctx, kind, v)
}
