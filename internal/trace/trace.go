// Package trace records structured runtime events into a bounded ring
// buffer, giving operators and tests visibility into the scheduling
// decisions the paper's runtime makes invisibly: bindings, swaps,
// migrations, failures, recoveries and offloads.
//
// A Recorder is cheap enough to stay enabled in production: recording
// is one mutex acquisition and one slice write, with no allocation
// beyond the pre-sized ring. Plug one into core.Config.Trace.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	// KindConnect is a new application-thread connection.
	KindConnect Kind = iota
	// KindBind is an application→vGPU binding.
	KindBind
	// KindUnbind is a voluntary vGPU release (exit or retry).
	KindUnbind
	// KindIntraSwap is an intra-application swap-out of one entry.
	KindIntraSwap
	// KindInterSwap is an inter-application swap (victim vacates).
	KindInterSwap
	// KindMigration is a dynamic re-binding to a faster device.
	KindMigration
	// KindCheckpoint is an explicit or automatic checkpoint.
	KindCheckpoint
	// KindFailure is a device failure.
	KindFailure
	// KindRecovery is a context recovery (rebind + replay).
	KindRecovery
	// KindOffload is a connection redirected to a peer node.
	KindOffload
	// KindShed is a connection rejected by admission control.
	KindShed
	// KindBreakerTrip is a peer-link circuit breaker opening.
	KindBreakerTrip
	// KindBreakerHeal is a breaker re-closing after a half-open probe.
	KindBreakerHeal
	// KindExit is an application-thread exit.
	KindExit
	// KindFence is a mutating call rejected because the session's lease
	// epoch moved (deposed owner).
	KindFence
	// KindCrossMigration is a cross-node context migration event
	// (export shipped, import committed, or failover promotion) —
	// distinct from KindMigration, the intra-node device re-binding.
	KindCrossMigration
	// KindCtrlOp is a control-plane pending-operation transition
	// (started, completed, resumed, rolled back, stuck); Detail carries
	// the operation kind and outcome.
	KindCtrlOp
)

var kindNames = [...]string{
	KindConnect:        "connect",
	KindBind:           "bind",
	KindUnbind:         "unbind",
	KindIntraSwap:      "intra-swap",
	KindInterSwap:      "inter-swap",
	KindMigration:      "migration",
	KindCheckpoint:     "checkpoint",
	KindFailure:        "failure",
	KindRecovery:       "recovery",
	KindOffload:        "offload",
	KindShed:           "shed",
	KindBreakerTrip:    "breaker-trip",
	KindBreakerHeal:    "breaker-heal",
	KindExit:           "exit",
	KindFence:          "fence",
	KindCrossMigration: "cross-migration",
	KindCtrlOp:         "ctrl-op",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one recorded runtime event.
type Event struct {
	// Time is the model time of the event.
	Time time.Duration
	// Kind classifies the event.
	Kind Kind
	// Ctx is the acting context's ID (0 when not applicable).
	Ctx int64
	// Other is the other party's context ID (swap victim, migration
	// subject), 0 when not applicable.
	Other int64
	// Device is the device ordinal involved, -1 when not applicable.
	Device int
	// Detail is a short human-readable annotation.
	Detail string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12.3fs %-10s", e.Time.Seconds(), e.Kind)
	if e.Ctx != 0 {
		fmt.Fprintf(&b, " ctx=%d", e.Ctx)
	}
	if e.Other != 0 {
		fmt.Fprintf(&b, " other=%d", e.Other)
	}
	if e.Device >= 0 {
		fmt.Fprintf(&b, " dev=%d", e.Device)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, " %s", e.Detail)
	}
	return b.String()
}

// Recorder is a bounded ring buffer of events, safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	count uint64
	full  bool

	spans spanRing
}

// NewRecorder creates a recorder keeping the most recent capacity
// events (minimum 16).
func NewRecorder(capacity int) *Recorder {
	if capacity < 16 {
		capacity = 16
	}
	return &Recorder{ring: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	r.ring[r.next] = e
	r.next++
	r.count++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many events are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.ring)
	}
	return r.next
}

// Total reports how many events were ever recorded (including evicted).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot returns the retained events in recording order.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.ring[:r.next]...)
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Filter returns the retained events of the given kinds, in order.
func (r *Recorder) Filter(kinds ...Kind) []Event {
	want := make(map[Kind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []Event
	for _, e := range r.Snapshot() {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Snapshot() {
		out[e.Kind]++
	}
	return out
}

// Dump renders the retained events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Snapshot() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
