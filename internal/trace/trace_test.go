package trace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(64)
	if r.Len() != 0 || r.Total() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(Event{Time: time.Second, Kind: KindBind, Ctx: 1, Device: 0})
	r.Record(Event{Time: 2 * time.Second, Kind: KindInterSwap, Ctx: 2, Other: 1, Device: 0})
	if r.Len() != 2 || r.Total() != 2 {
		t.Errorf("Len=%d Total=%d, want 2/2", r.Len(), r.Total())
	}
	evs := r.Snapshot()
	if evs[0].Kind != KindBind || evs[1].Kind != KindInterSwap {
		t.Errorf("order wrong: %v", evs)
	}
	if evs[1].Other != 1 {
		t.Errorf("Other = %d", evs[1].Other)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Record(Event{Ctx: int64(i), Kind: KindBind})
	}
	if r.Len() != 16 {
		t.Errorf("Len = %d, want 16", r.Len())
	}
	if r.Total() != 40 {
		t.Errorf("Total = %d, want 40", r.Total())
	}
	evs := r.Snapshot()
	if evs[0].Ctx != 24 || evs[15].Ctx != 39 {
		t.Errorf("retained window = [%d..%d], want [24..39]", evs[0].Ctx, evs[15].Ctx)
	}
}

func TestRecorderMinimumCapacity(t *testing.T) {
	r := NewRecorder(1)
	for i := 0; i < 20; i++ {
		r.Record(Event{Ctx: int64(i)})
	}
	if r.Len() != 16 {
		t.Errorf("minimum capacity not applied: Len = %d", r.Len())
	}
}

func TestFilterAndCount(t *testing.T) {
	r := NewRecorder(64)
	r.Record(Event{Kind: KindBind})
	r.Record(Event{Kind: KindInterSwap})
	r.Record(Event{Kind: KindBind})
	r.Record(Event{Kind: KindMigration})
	if got := r.Filter(KindBind); len(got) != 2 {
		t.Errorf("Filter(bind) = %d events, want 2", len(got))
	}
	if got := r.Filter(KindBind, KindMigration); len(got) != 3 {
		t.Errorf("Filter(bind,migration) = %d events, want 3", len(got))
	}
	counts := r.CountByKind()
	if counts[KindBind] != 2 || counts[KindInterSwap] != 1 || counts[KindMigration] != 1 {
		t.Errorf("CountByKind = %v", counts)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Time: 1500 * time.Millisecond, Kind: KindMigration, Ctx: 7, Device: 2, Detail: "vGPU1.0 -> vGPU0.0"}
	s := e.String()
	for _, want := range []string{"migration", "ctx=7", "dev=2", "vGPU1.0 -> vGPU0.0", "1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("Event.String() = %q, missing %q", s, want)
		}
	}
	// Unknown kinds don't panic.
	if Kind(99).String() == "" {
		t.Error("unknown kind produced empty string")
	}
}

func TestDump(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{Kind: KindConnect, Ctx: 1})
	r.Record(Event{Kind: KindExit, Ctx: 1})
	d := r.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Errorf("Dump = %q", d)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Ctx: int64(g), Kind: KindBind})
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 800 {
		t.Errorf("Total = %d, want 800", r.Total())
	}
}

// TestRecorderRingProperty property-checks that the snapshot is always
// the last min(total, capacity) events in order.
func TestRecorderRingProperty(t *testing.T) {
	check := func(nRecords uint8, capSeed uint8) bool {
		capacity := int(capSeed)%64 + 16
		r := NewRecorder(capacity)
		n := int(nRecords)
		for i := 0; i < n; i++ {
			r.Record(Event{Ctx: int64(i)})
		}
		evs := r.Snapshot()
		want := n
		if want > capacity {
			want = capacity
		}
		if len(evs) != want {
			return false
		}
		for i, e := range evs {
			if e.Ctx != int64(n-want+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
