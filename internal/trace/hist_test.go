package trace

import (
	"math"
	"testing"
)

// Edge cases for the mergeable/subtractable snapshot algebra that the
// fleet collector and gvrt-top lean on: empty snapshots, single-bucket
// shapes, the overflow bucket, and Delta across a process restart
// (non-monotonic input must not panic or go negative).

func snap(vals ...int64) HistSnapshot {
	var h Histogram
	for _, v := range vals {
		h.Observe(v)
	}
	return h.Snapshot()
}

func TestMergeEmpty(t *testing.T) {
	var empty HistSnapshot
	got := empty.Merge(empty)
	if got.Count != 0 || got.Sum != 0 || len(got.Buckets) != 0 {
		t.Fatalf("empty.Merge(empty) = %+v, want zero", got)
	}
	s := snap(100, 200, 300)
	if got := s.Merge(empty); got.Count != 3 || got.Sum != 600 {
		t.Fatalf("s.Merge(empty) = %+v, want count 3 sum 600", got)
	}
	if got := empty.Merge(s); got.Count != 3 || got.Sum != 600 {
		t.Fatalf("empty.Merge(s) = %+v, want count 3 sum 600", got)
	}
}

func TestMergeUnevenBucketLengths(t *testing.T) {
	short := snap(1)      // one bucket
	long := snap(1 << 40) // many buckets, trailing non-zero far out
	for _, got := range []HistSnapshot{short.Merge(long), long.Merge(short)} {
		if got.Count != 2 {
			t.Fatalf("merged count = %d, want 2", got.Count)
		}
		if len(got.Buckets) != len(long.Buckets) {
			t.Fatalf("merged bucket len = %d, want %d", len(got.Buckets), len(long.Buckets))
		}
		var sum int64
		for _, b := range got.Buckets {
			sum += b
		}
		if sum != 2 {
			t.Fatalf("merged bucket total = %d, want 2", sum)
		}
	}
}

func TestMergeDoesNotAliasInputs(t *testing.T) {
	a, b := snap(5, 6), snap(7)
	got := a.Merge(b)
	got.Buckets[0] += 99
	if a.Buckets[0] == got.Buckets[0] || b.Buckets[0] == got.Buckets[0] {
		t.Fatal("Merge result shares backing array with an input")
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	s := snap(1000, 1000, 1000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got != BucketBound(bucketOf(1000)) {
			t.Fatalf("Quantile(%v) = %d, want %d", q, got, BucketBound(bucketOf(1000)))
		}
	}
}

func TestQuantileEmptyAndClamping(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	s := snap(10, 1000)
	if lo, hi := s.Quantile(-5), s.Quantile(0); lo != hi {
		t.Fatalf("q<0 not clamped: %d vs %d", lo, hi)
	}
	if lo, hi := s.Quantile(99), s.Quantile(1); lo != hi {
		t.Fatalf("q>1 not clamped: %d vs %d", lo, hi)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// Values with bits.Len64 >= 63 land in the top buckets whose bound
	// is the +Inf sentinel; the quantile walk must return the sentinel,
	// not panic or overflow.
	s := snap(math.MaxInt64, math.MaxInt64)
	got := s.Quantile(0.99)
	if got != int64(1)<<62 {
		t.Fatalf("overflow-bucket quantile = %d, want sentinel %d", got, int64(1)<<62)
	}
}

func TestObserveNonPositive(t *testing.T) {
	s := snap(0, -5)
	if s.Count != 2 || len(s.Buckets) != 1 || s.Buckets[0] != 2 {
		t.Fatalf("non-positive values should land in bucket 0: %+v", s)
	}
	if got := s.Quantile(0.5); got != BucketBound(0) {
		t.Fatalf("bucket-0 quantile = %d, want %d", got, BucketBound(0))
	}
}

func TestDeltaMonotonic(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(200)
	prev := h.Snapshot()
	h.Observe(400)
	got := h.Snapshot().Delta(prev)
	if got.Count != 1 || got.Sum != 400 {
		t.Fatalf("delta = %+v, want count 1 sum 400", got)
	}
}

func TestDeltaEmptyPrev(t *testing.T) {
	s := snap(1, 2, 3)
	got := s.Delta(HistSnapshot{})
	if got.Count != s.Count || got.Sum != s.Sum {
		t.Fatalf("delta vs empty = %+v, want %+v", got, s)
	}
}

func TestDeltaAcrossRestart(t *testing.T) {
	// prev came from a process that observed a lot; the process
	// restarted and the new (smaller) snapshot is not a superset of
	// prev. Delta must not panic and must not report negative counts —
	// it treats the post-restart snapshot as entirely new.
	prev := snap(100, 100, 100, 5000)
	cur := snap(250)
	got := cur.Delta(prev)
	if got.Count != cur.Count || got.Sum != cur.Sum {
		t.Fatalf("restart delta = %+v, want cur %+v", got, cur)
	}
	for i, b := range got.Buckets {
		if b < 0 {
			t.Fatalf("restart delta bucket %d = %d, negative", i, b)
		}
	}
}

func TestDeltaRestartShorterPrev(t *testing.T) {
	// Restart where the new process has already observed more total
	// events than prev, but in different buckets — count alone cannot
	// detect the reset; the per-bucket check must.
	prev := snap(1 << 30)
	cur := snap(1, 1, 1)
	got := cur.Delta(prev)
	if got.Count != 3 {
		t.Fatalf("restart delta count = %d, want 3 (treat cur as fresh)", got.Count)
	}
	for i, b := range got.Buckets {
		if b < 0 {
			t.Fatalf("restart delta bucket %d = %d, negative", i, b)
		}
	}
}

func TestDeltaDoesNotAliasInput(t *testing.T) {
	cur := snap(10, 20)
	got := cur.Delta(snap(10, 20, 40, 80)) // forces the reset copy path
	if len(got.Buckets) > 0 {
		got.Buckets[0] += 99
		if cur.Buckets[0] == got.Buckets[0] {
			t.Fatal("Delta reset path aliases the current snapshot's buckets")
		}
	}
}

func TestDeltaNegativeSumNoReset(t *testing.T) {
	// DedupSaved observes negative adjustments, so Sum may legitimately
	// decrease between snapshots while counts stay monotonic. That must
	// not be misread as a restart.
	var h Histogram
	h.Observe(1000)
	prev := h.Snapshot()
	h.Observe(-500)
	got := h.Snapshot().Delta(prev)
	if got.Count != 1 || got.Sum != -500 {
		t.Fatalf("negative-sum delta = %+v, want count 1 sum -500", got)
	}
}

func TestMergeDeltaRoundTrip(t *testing.T) {
	// (a merged b).Delta(a) == b for disjoint monotonic snapshots.
	a, b := snap(100, 2000), snap(300000)
	got := a.Merge(b).Delta(a)
	if got.Count != b.Count || got.Sum != b.Sum {
		t.Fatalf("round trip = %+v, want %+v", got, b)
	}
}
