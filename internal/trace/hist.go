package trace

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets. Bucket i holds values v
// with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i); bucket 0 holds
// v <= 0. 64 buckets cover the full int64 range, so nanosecond
// latencies from 1ns to ~292 years land without configuration.
const histBuckets = 64

// Histogram is a fixed-shape log2-bucketed histogram. Observe is
// lock-free (one atomic add per bucket plus count and sum), Snapshot
// is a consistent-enough read for monitoring (buckets are read
// individually, so a snapshot taken during heavy traffic may be off
// by in-flight observations — acceptable for exposition). The shape
// is identical across all histograms, which makes snapshots mergeable
// bucket-by-bucket.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf returns the bucket index for a value.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBound returns the exclusive upper bound of bucket i (2^i),
// shared by every Histogram. Bucket histBuckets-1 is unbounded in
// practice; callers render it as +Inf.
func BucketBound(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return int64(1) << 62 // sentinel; exposition renders +Inf
	}
	return int64(1) << uint(i)
}

// Observe records one value (typically nanoseconds or bytes).
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistSnapshot is a point-in-time copy of a Histogram, shaped for the
// wire: Buckets[i] is the count of observations in log2 bucket i,
// with trailing zero buckets trimmed to keep StatsCall replies small.
type HistSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	last := -1
	var raw [histBuckets]int64
	for i := range h.buckets {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append(s.Buckets, raw[:last+1]...)
	}
	return s
}

// Merge adds other's observations into s (same fixed bucket shape).
func (s HistSnapshot) Merge(other HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + other.Count, Sum: s.Sum + other.Sum}
	n := len(s.Buckets)
	if len(other.Buckets) > n {
		n = len(other.Buckets)
	}
	if n > 0 {
		out.Buckets = make([]int64, n)
		copy(out.Buckets, s.Buckets)
		for i, v := range other.Buckets {
			out.Buckets[i] += v
		}
	}
	return out
}

// Delta returns the observations recorded since prev, assuming s is a
// later snapshot of the same histogram. Used by gvrt-top to compute
// interval quantiles from cumulative snapshots.
//
// Counters are cumulative, so a later snapshot of the same histogram
// can never be smaller than an earlier one — unless the process
// restarted in between and the counters reset. When any count would go
// negative (non-monotonic input), Delta treats s as a fresh counter
// and returns it whole: everything the restarted process observed is
// new since prev. Sum is deliberately not used for reset detection —
// it can legitimately decrease for histograms observing negative
// values.
func (s HistSnapshot) Delta(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count - prev.Count, Sum: s.Sum - prev.Sum}
	reset := out.Count < 0 || len(prev.Buckets) > len(s.Buckets) && anyPositive(prev.Buckets[len(s.Buckets):])
	if len(s.Buckets) > 0 {
		out.Buckets = make([]int64, len(s.Buckets))
		copy(out.Buckets, s.Buckets)
		for i, v := range prev.Buckets {
			if i < len(out.Buckets) {
				out.Buckets[i] -= v
				if out.Buckets[i] < 0 {
					reset = true
				}
			}
		}
	}
	if reset {
		out = HistSnapshot{Count: s.Count, Sum: s.Sum}
		if len(s.Buckets) > 0 {
			out.Buckets = append([]int64(nil), s.Buckets...)
		}
	}
	return out
}

func anyPositive(b []int64) bool {
	for _, v := range b {
		if v > 0 {
			return true
		}
	}
	return false
}

// Quantile estimates the q-quantile (0..1) as the upper bound of the
// bucket containing the q*Count-th observation. The log2 shape bounds
// the overestimate at 2x. Returns 0 when the snapshot is empty.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum > rank {
			return BucketBound(i)
		}
	}
	return BucketBound(len(s.Buckets) - 1)
}

// Mean returns the average observed value, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistVec is a set of Histograms keyed by label (e.g. per call kind).
// Lookup takes a read lock; Observe on the returned histogram is
// lock-free.
type HistVec struct {
	mu sync.RWMutex
	m  map[string]*Histogram
}

// Observe records v under label, creating the histogram on first use.
func (v *HistVec) Observe(label string, val int64) {
	v.With(label).Observe(val)
}

// With returns the histogram for label, creating it on first use.
func (v *HistVec) With(label string) *Histogram {
	v.mu.RLock()
	h := v.m[label]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.m == nil {
		v.m = make(map[string]*Histogram)
	}
	if h = v.m[label]; h == nil {
		h = &Histogram{}
		v.m[label] = h
	}
	return h
}

// Labels returns the registered labels, sorted.
func (v *HistVec) Labels() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, 0, len(v.m))
	for k := range v.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Snapshot copies every labeled histogram.
func (v *HistVec) Snapshot() map[string]HistSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(v.m))
	for k, h := range v.m {
		out[k] = h.Snapshot()
	}
	return out
}

// Timings bundles the runtime's latency and size histograms. All
// durations are model-time nanoseconds except JournalCommitWall,
// which is wall time (fsync cost is real, not simulated). A zero
// Timings is ready to use.
type Timings struct {
	// Call records service time per call kind ("call.<name>" keys in
	// Snapshot).
	Call HistVec
	// Launch is end-to-end kernel launch service time.
	Launch Histogram
	// QueueWait is time parked waiting for a free vGPU.
	QueueWait Histogram
	// BindWait is total time from first bind attempt to bound.
	BindWait Histogram
	// SwapDur is per-swap-operation duration.
	SwapDur Histogram
	// SwapBytes is per-swap-operation size in bytes.
	SwapBytes Histogram
	// H2D and D2H are per-transfer durations.
	H2D Histogram
	D2H Histogram
	// JournalCommitWall is wall-clock nanoseconds per durable kernel
	// commit (dominated by fsync).
	JournalCommitWall Histogram
	// PeerCall is per-peer-RPC round-trip time.
	PeerCall Histogram
	// Prefetch is per-speculative-swap-in duration (the background
	// residency work done between a context's kernel calls).
	Prefetch Histogram
	// DedupSaved is bytes saved per swap-image seal that shared at
	// least one chunk with the dedup store.
	DedupSaved Histogram
	// MigrationDur is model time per completed cross-node migration
	// (export → committed import on the target).
	MigrationDur Histogram
	// MigrationBytes is wire bytes actually shipped per migration —
	// after dedup/resume chunks were excluded from the transfer.
	MigrationBytes Histogram
}

// Snapshot renders every histogram with a non-zero count, keyed by
// metric name. Per-call-kind histograms are keyed "call.<name>".
func (t *Timings) Snapshot() map[string]HistSnapshot {
	out := make(map[string]HistSnapshot)
	for k, s := range t.Call.Snapshot() {
		if s.Count > 0 {
			out["call."+k] = s
		}
	}
	named := map[string]*Histogram{
		"launch_latency":      &t.Launch,
		"queue_wait":          &t.QueueWait,
		"bind_wait":           &t.BindWait,
		"swap_duration":       &t.SwapDur,
		"swap_bytes":          &t.SwapBytes,
		"h2d":                 &t.H2D,
		"d2h":                 &t.D2H,
		"journal_commit_wall": &t.JournalCommitWall,
		"peer_call":           &t.PeerCall,
		"prefetch":            &t.Prefetch,
		"dedup_saved":         &t.DedupSaved,
		"migration_duration":  &t.MigrationDur,
		"migration_bytes":     &t.MigrationBytes,
	}
	for name, h := range named {
		if s := h.Snapshot(); s.Count > 0 {
			out[name] = s
		}
	}
	return out
}
