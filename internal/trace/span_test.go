package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestKindStringNegative(t *testing.T) {
	// Regression: the bounds check used to pass for negative kinds and
	// panic on the array index.
	if got := Kind(-1).String(); got != "kind(-1)" {
		t.Errorf("Kind(-1).String() = %q, want %q", got, "kind(-1)")
	}
	if got := Kind(-99).String(); got != "kind(-99)" {
		t.Errorf("Kind(-99).String() = %q", got)
	}
	if got := KindBind.String(); got != "bind" {
		t.Errorf("KindBind.String() = %q", got)
	}
}

func TestSpanIDsUnique(t *testing.T) {
	seen := make(map[SpanID]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]SpanID, 0, 100)
			for i := 0; i < 100; i++ {
				local = append(local, NewSpanID())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if id == 0 || seen[id] {
					t.Errorf("duplicate or zero span ID %d", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestSpanRing(t *testing.T) {
	r := NewRecorder(16)
	if len(r.Spans()) != 0 || r.SpanTotal() != 0 {
		t.Fatal("fresh recorder has spans")
	}
	for i := 0; i < 300; i++ {
		r.RecordSpan(Span{
			ID: NewSpanID(), Ctx: int64(i), Phase: "launch",
			Start: time.Duration(i), End: time.Duration(i) + time.Duration(i%7)*time.Millisecond,
		})
	}
	if r.SpanTotal() != 300 {
		t.Errorf("SpanTotal = %d, want 300", r.SpanTotal())
	}
	spans := r.Spans()
	if len(spans) != 256 { // span ring floor is 256
		t.Fatalf("retained %d spans, want 256", len(spans))
	}
	if spans[0].Ctx != 44 || spans[255].Ctx != 299 {
		t.Errorf("retained window = [%d..%d], want [44..299]", spans[0].Ctx, spans[255].Ctx)
	}
	slow := r.SlowestSpans(10)
	if len(slow) != 10 {
		t.Fatalf("SlowestSpans(10) = %d spans", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Dur() > slow[i-1].Dur() {
			t.Errorf("SlowestSpans not sorted: %v > %v at %d", slow[i].Dur(), slow[i-1].Dur(), i)
		}
	}
}

func TestSpanString(t *testing.T) {
	s := Span{ID: 3, Parent: 2, Ctx: 7, Phase: "swap-in", Start: time.Second,
		End: time.Second + 40*time.Millisecond, Device: 1, Detail: "3 entries", Err: "boom"}
	str := s.String()
	for _, want := range []string{"swap-in", "ctx=7", "parent=2", "dev=1", "3 entries", `err="boom"`} {
		if !strings.Contains(str, want) {
			t.Errorf("Span.String() = %q, missing %q", str, want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not empty")
	}
	// 100 observations of 1000ns, 10 of 1_000_000ns.
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000000)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Sum != 100*1000+10*1000000 {
		t.Errorf("Sum = %d", s.Sum)
	}
	// p50 must land in the 1000ns bucket: bound 1024.
	if q := s.Quantile(0.5); q != 1024 {
		t.Errorf("p50 = %d, want 1024", q)
	}
	// p99 must land in the 1000000ns bucket: bucket 20, bound 2^20.
	if q := s.Quantile(0.99); q != 1<<20 {
		t.Errorf("p99 = %d, want %d", q, 1<<20)
	}
	if m := s.Mean(); m < 90000 || m > 92000 {
		t.Errorf("Mean = %v", m)
	}
	// Non-positive values land in bucket 0 without panicking.
	h.Observe(0)
	h.Observe(-5)
	if got := h.Snapshot().Buckets[0]; got != 2 {
		t.Errorf("bucket 0 = %d, want 2", got)
	}
}

func TestHistSnapshotMergeDelta(t *testing.T) {
	var a, b Histogram
	a.Observe(10)
	a.Observe(2000)
	b.Observe(10)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 2020 {
		t.Errorf("merged = %+v", m)
	}
	prev := a.Snapshot()
	a.Observe(500000)
	d := a.Snapshot().Delta(prev)
	if d.Count != 1 || d.Sum != 500000 {
		t.Errorf("delta = %+v", d)
	}
	if q := d.Quantile(0.5); q != BucketBound(bucketOf(500000)) {
		t.Errorf("delta p50 = %d", q)
	}
}

func TestHistVec(t *testing.T) {
	var v HistVec
	v.Observe("cudaLaunch", 100)
	v.Observe("cudaLaunch", 200)
	v.Observe("cudaMalloc", 50)
	labels := v.Labels()
	if len(labels) != 2 || labels[0] != "cudaLaunch" || labels[1] != "cudaMalloc" {
		t.Errorf("Labels = %v", labels)
	}
	snap := v.Snapshot()
	if snap["cudaLaunch"].Count != 2 || snap["cudaMalloc"].Count != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(i))
				_ = h.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("Count = %d, want 8000", got)
	}
}

func TestTimingsSnapshotSkipsEmpty(t *testing.T) {
	var tm Timings
	tm.Launch.Observe(5000)
	tm.Call.Observe("cudaLaunch", 5000)
	snap := tm.Snapshot()
	if len(snap) != 2 {
		t.Errorf("Snapshot keys = %v, want launch_latency and call.cudaLaunch only", snap)
	}
	if snap["launch_latency"].Count != 1 || snap["call.cudaLaunch"].Count != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	start := tr.Start()
	tr.Span("x", 1, start, -1, "")
	tr.Observe(nil, 5) // must not panic
}

func TestWriteChromeTrace(t *testing.T) {
	rootID, childID := NewSpanID(), NewSpanID()
	head := ChromeProcess{
		Name: "node-a",
		Spans: []Span{{
			ID: rootID, Ctx: 1, Phase: "offload",
			Start: time.Millisecond, End: 5 * time.Millisecond, Device: -1,
		}},
		Events: []Event{{Time: 2 * time.Millisecond, Kind: KindOffload, Ctx: 1, Device: -1}},
	}
	peer := ChromeProcess{
		Name: "node-b",
		Spans: []Span{{
			ID: childID, Parent: rootID, Ctx: 1, Phase: "call.cudaLaunch",
			Start: 2 * time.Millisecond, End: 4 * time.Millisecond, Device: 0,
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, head, peer); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var phases []string
	for _, e := range doc.TraceEvents {
		phases = append(phases, e["ph"].(string))
	}
	joined := strings.Join(phases, "")
	// Two process_name metadata records, the spans, the instant event,
	// and a flow pair for the cross-process parent link.
	for _, want := range []string{"M", "X", "i", "s", "f"} {
		if !strings.Contains(joined, want) {
			t.Errorf("export missing ph=%q events: %v", want, phases)
		}
	}
	if !strings.Contains(buf.String(), `"node-b"`) {
		t.Error("peer process name missing")
	}
}
