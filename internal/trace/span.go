package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanID identifies one span. IDs are unique within a process; zero
// means "no span" and is used for roots with no parent. Because the
// counter is process-global (not per-recorder), a span ID minted on
// one node can safely be carried across an offload hop and used as a
// parent on the peer without colliding with the peer's own spans in a
// merged trace — the pid/tid namespace of the exporter disambiguates
// the rare cross-process collision.
type SpanID uint64

var spanIDCounter atomic.Uint64

// NewSpanID mints a fresh non-zero span ID.
func NewSpanID() SpanID {
	return SpanID(spanIDCounter.Add(1))
}

// Span is one timed phase of runtime work, in model time. Spans form
// a forest: a kernel launch span parents queue-wait, bind, swap-in
// and journal-commit children, and an offload span on the head node
// parents the per-call spans recorded by the peer that served them.
type Span struct {
	// ID is the span's unique ID (never zero for recorded spans).
	ID SpanID
	// Parent is the enclosing span's ID, zero for roots.
	Parent SpanID
	// Ctx is the acting context's ID (0 when not applicable).
	Ctx int64
	// Phase is a short label such as "call.cudaLaunch", "queue-wait",
	// "bind", "swap-in", "h2d", "launch" or "journal-commit".
	Phase string
	// Start and End bracket the span in model time.
	Start time.Duration
	End   time.Duration
	// Device is the device ordinal involved, -1 when not applicable.
	Device int
	// Detail is a short human-readable annotation.
	Detail string
	// Err is a one-line error description when the phase failed.
	Err string
}

// Dur is the span's duration.
func (s Span) Dur() time.Duration { return s.End - s.Start }

// String implements fmt.Stringer.
func (s Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12.6fs %10s %-16s", s.Start.Seconds(), s.Dur(), s.Phase)
	if s.Ctx != 0 {
		fmt.Fprintf(&b, " ctx=%d", s.Ctx)
	}
	if s.Parent != 0 {
		fmt.Fprintf(&b, " parent=%d", s.Parent)
	}
	if s.Device >= 0 {
		fmt.Fprintf(&b, " dev=%d", s.Device)
	}
	if s.Detail != "" {
		fmt.Fprintf(&b, " %s", s.Detail)
	}
	if s.Err != "" {
		fmt.Fprintf(&b, " err=%q", s.Err)
	}
	return b.String()
}

// spanRing is a bounded ring of completed spans, mirroring the event
// ring. It has its own lock so heavy span traffic does not contend
// with event recording.
type spanRing struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	count uint64
	full  bool
}

func (r *spanRing) record(s Span, capacity int) {
	r.mu.Lock()
	if len(r.ring) == 0 {
		if capacity < 256 {
			capacity = 256
		}
		r.ring = make([]Span, capacity)
	}
	r.ring[r.next] = s
	r.next++
	r.count++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

func (r *spanRing) snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.ring[:r.next]...)
	}
	out := make([]Span, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// RecordSpan appends a completed span, evicting the oldest when the
// span ring is full. The span ring's capacity tracks the event ring's.
func (r *Recorder) RecordSpan(s Span) {
	r.spans.record(s, len(r.ring))
}

// Spans returns the retained spans in completion order.
func (r *Recorder) Spans() []Span { return r.spans.snapshot() }

// SpanTotal reports how many spans were ever recorded (including
// evicted ones).
func (r *Recorder) SpanTotal() uint64 {
	r.spans.mu.Lock()
	defer r.spans.mu.Unlock()
	return r.spans.count
}

// SlowestSpans returns up to n retained spans ordered by descending
// duration — the /tracez view.
func (r *Recorder) SlowestSpans(n int) []Span {
	out := r.spans.snapshot()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Dur() > out[j].Dur() })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
