package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeProcess groups one recorder's output under a named "process"
// row in the exported trace. A single-node export uses one process; a
// cluster export passes one per node so offload flows draw as arrows
// between process rows in Perfetto.
type ChromeProcess struct {
	// Name labels the process row (e.g. "gvrtd node-a").
	Name string
	// Spans are rendered as complete ("X") duration events, one track
	// (tid) per context ID.
	Spans []Span
	// Events are rendered as instant ("i") events.
	Events []Event
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the subset Perfetto's importer understands).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(d int64) float64 { return float64(d) / 1e3 }

// WriteChromeTrace renders spans and events as Chrome trace-event
// JSON (the {"traceEvents":[...]} form), loadable in Perfetto and
// chrome://tracing. Model-time nanoseconds become trace microseconds.
// Parent links that cross a (process, context) track boundary — e.g.
// an offload span on the head node parenting call spans served by a
// peer — are drawn as flow arrows.
func WriteChromeTrace(w io.Writer, procs ...ChromeProcess) error {
	var out []chromeEvent

	// Track location of every span so cross-track parent links can be
	// emitted as flows.
	type loc struct {
		pid int
		tid int64
		s   Span
	}
	byID := make(map[SpanID]loc)
	for pi, p := range procs {
		for _, s := range p.Spans {
			byID[s.ID] = loc{pid: pi + 1, tid: s.Ctx, s: s}
		}
	}

	for pi, p := range procs {
		pid := pi + 1
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": p.Name},
		})
		for _, s := range p.Spans {
			args := map[string]any{"span": uint64(s.ID)}
			if s.Parent != 0 {
				args["parent"] = uint64(s.Parent)
			}
			if s.Device >= 0 {
				args["device"] = s.Device
			}
			if s.Detail != "" {
				args["detail"] = s.Detail
			}
			if s.Err != "" {
				args["err"] = s.Err
			}
			dur := usec(int64(s.Dur()))
			if dur <= 0 {
				dur = 0.001 // keep zero-length spans visible
			}
			out = append(out, chromeEvent{
				Name: s.Phase, Cat: "span", Ph: "X",
				TS: usec(int64(s.Start)), Dur: dur,
				PID: pid, TID: s.Ctx, Args: args,
			})
			if parent, ok := byID[s.Parent]; ok && (parent.pid != pid || parent.tid != s.Ctx) {
				id := fmt.Sprintf("0x%x", uint64(s.ID))
				out = append(out, chromeEvent{
					Name: "flow", Cat: "flow", Ph: "s",
					TS: usec(int64(parent.s.Start)), PID: parent.pid, TID: parent.tid, ID: id,
				})
				out = append(out, chromeEvent{
					Name: "flow", Cat: "flow", Ph: "f", BP: "e",
					TS: usec(int64(s.Start)), PID: pid, TID: s.Ctx, ID: id,
				})
			}
		}
		for _, e := range p.Events {
			args := map[string]any{}
			if e.Other != 0 {
				args["other"] = e.Other
			}
			if e.Device >= 0 {
				args["device"] = e.Device
			}
			if e.Detail != "" {
				args["detail"] = e.Detail
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "event", Ph: "i",
				TS: usec(int64(e.Time)), PID: pid, TID: e.Ctx,
				S: "t", Args: args,
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}
