// Package sched defines the pluggable scheduling policies of the gvrt
// dispatcher (paper §2 "Configurable Scheduling", §4.3).
//
// A policy makes two kinds of decisions:
//
//   - PickDevice: which physical GPU a context binds to when one or more
//     devices have a free virtual GPU;
//   - PickWaiter: which waiting context receives a virtual GPU that has
//     just been released.
//
// The paper's evaluation uses first-come-first-served with round-robin
// device assignment that keeps the number of active vGPUs uniform
// (§5: "a first-come-first-served scheduling policy that assigns jobs to
// physical GPUs in a round-robin fashion and attempts to perform load
// balancing"); that is FCFS here. ShortestJobFirst and CreditBased
// implement the two alternatives §2 sketches.
package sched

import "time"

// DeviceLoad describes one candidate device at decision time.
type DeviceLoad struct {
	// Index is the device ordinal within the node.
	Index int
	// Speed is the device's relative kernel throughput.
	Speed float64
	// FreeVGPUs and ActiveVGPUs count the device's idle and bound
	// virtual GPUs.
	FreeVGPUs   int
	ActiveVGPUs int
	// MemAvailable is the device's free memory in bytes.
	MemAvailable uint64
}

// Waiter describes one context waiting for a virtual GPU.
type Waiter struct {
	// CtxID identifies the context.
	CtxID int64
	// Arrived is the model time the context joined the waiting list.
	Arrived time.Duration
	// NextKernelTime is the modeled duration of the kernel launch the
	// context is blocked on (duration × repeat), if known.
	NextKernelTime time.Duration
	// ConsumedGPUTime is the GPU time the context has used so far.
	ConsumedGPUTime time.Duration
	// MemDemand is the context's current memory footprint in bytes.
	MemDemand uint64
	// Deadline is the context's absolute QoS deadline in model time
	// (0 = none declared).
	Deadline time.Duration
}

// Policy is a dispatcher scheduling policy. Implementations must be
// safe for concurrent use; the dispatcher may consult them from several
// goroutines.
type Policy interface {
	// Name identifies the policy in logs and experiment output.
	Name() string
	// PickDevice returns the index into devs of the device the context
	// should bind to, or -1 to decline all candidates. devs is never
	// empty and every entry has at least one free vGPU.
	PickDevice(w Waiter, devs []DeviceLoad) int
	// PickWaiter returns the index into waiters of the context that
	// should receive a freed vGPU. waiters is never empty.
	PickWaiter(waiters []Waiter) int
}

// pickDeviceBalanced implements the dispatcher's default device choice:
// prefer devices whose free memory covers the context's demand, then
// fewest active vGPUs (uniform sharing), then highest speed.
func pickDeviceBalanced(w Waiter, devs []DeviceLoad) int {
	best := -1
	bestFits := false
	for i, d := range devs {
		fits := d.MemAvailable >= w.MemDemand
		if best == -1 {
			best, bestFits = i, fits
			continue
		}
		b := devs[best]
		switch {
		case fits != bestFits:
			if fits {
				best, bestFits = i, fits
			}
		case d.ActiveVGPUs != b.ActiveVGPUs:
			if d.ActiveVGPUs < b.ActiveVGPUs {
				best, bestFits = i, fits
			}
		case d.Speed > b.Speed:
			best, bestFits = i, fits
		}
	}
	return best
}

// FCFS is the default policy: waiting contexts are served in arrival
// order and devices are chosen to keep active vGPU counts uniform.
type FCFS struct{}

// Name implements Policy.
func (FCFS) Name() string { return "fcfs" }

// PickDevice implements Policy.
func (FCFS) PickDevice(w Waiter, devs []DeviceLoad) int { return pickDeviceBalanced(w, devs) }

// PickWaiter implements Policy: first come, first served.
func (FCFS) PickWaiter(waiters []Waiter) int {
	best := 0
	for i, w := range waiters {
		if w.Arrived < waiters[best].Arrived {
			best = i
		}
	}
	return best
}

// ShortestJobFirst favours the waiting context whose pending kernel
// launch is shortest — the profile-driven alternative of §2. Scheduling
// decisions are "based on the kernels executed by the applications,
// their parameters, and their execution configuration" (§4.3): the
// dispatcher knows the blocked launch's modeled duration because
// binding is delayed until the first kernel launch.
type ShortestJobFirst struct{}

// Name implements Policy.
func (ShortestJobFirst) Name() string { return "sjf" }

// PickDevice implements Policy.
func (ShortestJobFirst) PickDevice(w Waiter, devs []DeviceLoad) int {
	return pickDeviceBalanced(w, devs)
}

// PickWaiter implements Policy: shortest pending kernel first; FCFS
// breaks ties.
func (ShortestJobFirst) PickWaiter(waiters []Waiter) int {
	best := 0
	for i, w := range waiters {
		b := waiters[best]
		if w.NextKernelTime < b.NextKernelTime ||
			(w.NextKernelTime == b.NextKernelTime && w.Arrived < b.Arrived) {
			best = i
		}
	}
	return best
}

// CreditBased favours the waiting context that has consumed the least
// GPU time so far — the fairness-oriented alternative of §2. Each
// context effectively holds credit inversely proportional to its past
// consumption.
type CreditBased struct{}

// Name implements Policy.
func (CreditBased) Name() string { return "credit" }

// PickDevice implements Policy.
func (CreditBased) PickDevice(w Waiter, devs []DeviceLoad) int {
	return pickDeviceBalanced(w, devs)
}

// PickWaiter implements Policy: least consumed GPU time first; FCFS
// breaks ties.
func (CreditBased) PickWaiter(waiters []Waiter) int {
	best := 0
	for i, w := range waiters {
		b := waiters[best]
		if w.ConsumedGPUTime < b.ConsumedGPUTime ||
			(w.ConsumedGPUTime == b.ConsumedGPUTime && w.Arrived < b.Arrived) {
			best = i
		}
	}
	return best
}

// EarliestDeadlineFirst serves the waiting context whose declared QoS
// deadline expires soonest — the §2 policy for workloads with execution
// deadlines. Contexts without a deadline queue behind those with one,
// in arrival order.
type EarliestDeadlineFirst struct{}

// Name implements Policy.
func (EarliestDeadlineFirst) Name() string { return "edf" }

// PickDevice implements Policy.
func (EarliestDeadlineFirst) PickDevice(w Waiter, devs []DeviceLoad) int {
	return pickDeviceBalanced(w, devs)
}

// PickWaiter implements Policy.
func (EarliestDeadlineFirst) PickWaiter(waiters []Waiter) int {
	best := 0
	better := func(a, b Waiter) bool {
		switch {
		case a.Deadline == 0 && b.Deadline == 0:
			return a.Arrived < b.Arrived
		case a.Deadline == 0:
			return false
		case b.Deadline == 0:
			return true
		case a.Deadline != b.Deadline:
			return a.Deadline < b.Deadline
		default:
			return a.Arrived < b.Arrived
		}
	}
	for i, w := range waiters {
		if better(w, waiters[best]) {
			best = i
		}
	}
	return best
}
