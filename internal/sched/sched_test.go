package sched

import (
	"testing"
	"time"
)

func TestFCFSPickWaiter(t *testing.T) {
	ws := []Waiter{
		{CtxID: 1, Arrived: 30 * time.Second},
		{CtxID: 2, Arrived: 10 * time.Second},
		{CtxID: 3, Arrived: 20 * time.Second},
	}
	if got := (FCFS{}).PickWaiter(ws); got != 1 {
		t.Errorf("FCFS picked index %d, want 1 (earliest arrival)", got)
	}
}

func TestSJFPickWaiter(t *testing.T) {
	ws := []Waiter{
		{CtxID: 1, Arrived: 1, NextKernelTime: 30 * time.Second},
		{CtxID: 2, Arrived: 2, NextKernelTime: 5 * time.Second},
		{CtxID: 3, Arrived: 3, NextKernelTime: 20 * time.Second},
	}
	if got := (ShortestJobFirst{}).PickWaiter(ws); got != 1 {
		t.Errorf("SJF picked index %d, want 1 (shortest kernel)", got)
	}
	// Tie broken by arrival.
	ws[0].NextKernelTime = 5 * time.Second
	if got := (ShortestJobFirst{}).PickWaiter(ws); got != 0 {
		t.Errorf("SJF tie-break picked %d, want 0", got)
	}
}

func TestCreditPickWaiter(t *testing.T) {
	ws := []Waiter{
		{CtxID: 1, Arrived: 1, ConsumedGPUTime: 90 * time.Second},
		{CtxID: 2, Arrived: 2, ConsumedGPUTime: 10 * time.Second},
		{CtxID: 3, Arrived: 3, ConsumedGPUTime: 50 * time.Second},
	}
	if got := (CreditBased{}).PickWaiter(ws); got != 1 {
		t.Errorf("credit picked index %d, want 1 (least consumed)", got)
	}
	ws[2].ConsumedGPUTime = 10 * time.Second
	if got := (CreditBased{}).PickWaiter(ws); got != 1 {
		t.Errorf("credit tie-break picked %d, want 1 (earlier arrival)", got)
	}
}

func TestPickDevicePrefersMemoryFit(t *testing.T) {
	devs := []DeviceLoad{
		{Index: 0, Speed: 1.0, FreeVGPUs: 2, ActiveVGPUs: 0, MemAvailable: 1 << 20},
		{Index: 1, Speed: 0.5, FreeVGPUs: 2, ActiveVGPUs: 3, MemAvailable: 1 << 30},
	}
	w := Waiter{MemDemand: 1 << 25}
	if got := (FCFS{}).PickDevice(w, devs); got != 1 {
		t.Errorf("PickDevice = %d, want 1 (only device with room)", got)
	}
}

func TestPickDeviceBalancesActiveVGPUs(t *testing.T) {
	devs := []DeviceLoad{
		{Index: 0, Speed: 1.0, ActiveVGPUs: 3, MemAvailable: 1 << 30},
		{Index: 1, Speed: 0.4, ActiveVGPUs: 1, MemAvailable: 1 << 30},
		{Index: 2, Speed: 1.0, ActiveVGPUs: 2, MemAvailable: 1 << 30},
	}
	if got := (FCFS{}).PickDevice(Waiter{}, devs); got != 1 {
		t.Errorf("PickDevice = %d, want 1 (fewest active vGPUs)", got)
	}
}

func TestPickDevicePrefersFasterOnTie(t *testing.T) {
	devs := []DeviceLoad{
		{Index: 0, Speed: 0.35, ActiveVGPUs: 1, MemAvailable: 1 << 30},
		{Index: 1, Speed: 1.0, ActiveVGPUs: 1, MemAvailable: 1 << 30},
	}
	if got := (FCFS{}).PickDevice(Waiter{}, devs); got != 1 {
		t.Errorf("PickDevice = %d, want 1 (faster device)", got)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FCFS{}, ShortestJobFirst{}, CreditBased{}} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

func TestEDFPickWaiter(t *testing.T) {
	ws := []Waiter{
		{CtxID: 1, Arrived: 1, Deadline: 0},                // no deadline
		{CtxID: 2, Arrived: 2, Deadline: 50 * time.Second}, // loose
		{CtxID: 3, Arrived: 3, Deadline: 10 * time.Second}, // tight
	}
	if got := (EarliestDeadlineFirst{}).PickWaiter(ws); got != 2 {
		t.Errorf("EDF picked index %d, want 2 (tightest deadline)", got)
	}
	// Without deadlines it degenerates to FCFS.
	plain := []Waiter{{CtxID: 1, Arrived: 5}, {CtxID: 2, Arrived: 2}}
	if got := (EarliestDeadlineFirst{}).PickWaiter(plain); got != 1 {
		t.Errorf("EDF without deadlines picked %d, want 1 (FCFS)", got)
	}
	// Deadline holders always beat deadline-less waiters.
	mixed := []Waiter{{CtxID: 1, Arrived: 1}, {CtxID: 2, Arrived: 9, Deadline: time.Hour}}
	if got := (EarliestDeadlineFirst{}).PickWaiter(mixed); got != 1 {
		t.Errorf("EDF picked %d, want 1 (the deadline holder)", got)
	}
	if (EarliestDeadlineFirst{}).Name() != "edf" {
		t.Error("name")
	}
	if (EarliestDeadlineFirst{}).PickDevice(Waiter{}, []DeviceLoad{{Index: 0, MemAvailable: 1}}) != 0 {
		t.Error("PickDevice broken")
	}
}
