package failover

import (
	"os"
	"testing"
)

func TestSpoolResumeSameEpoch(t *testing.T) {
	dir := t.TempDir()
	rec := PendingRecord{Session: 7, Owner: "src", Epoch: 3, Total: 4}

	s1, err := OpenSpool(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ChunkID{Entry: 0, Index: 0}, []byte("chunk-0")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ChunkID{Entry: 0, Index: 1}, []byte("chunk-1")); err != nil {
		t.Fatal(err)
	}
	// Dedup-satisfied chunks are NOT spooled: the store satisfies them
	// again after a crash.
	s1.PutLocal(ChunkID{Entry: 1, Index: 0}, []byte("local"))
	s1.Close() // crash/partition: record and spool stay on disk

	if ops := PendingOps(dir); len(ops) != 1 || ops[0] != rec {
		t.Fatalf("PendingOps = %+v, want [%+v]", ops, rec)
	}

	// Same source, same epoch: the retry resumes the wire chunks.
	s2, err := OpenSpool(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(ChunkID{0, 0}) || !s2.Has(ChunkID{0, 1}) {
		t.Fatalf("resumed spool lost wire chunks (count %d)", s2.Count())
	}
	if s2.Has(ChunkID{1, 0}) {
		t.Fatal("dedup-satisfied chunk leaked into the durable spool")
	}
	if b, ok := s2.Get(ChunkID{0, 1}); !ok || string(b) != "chunk-1" {
		t.Fatalf("resumed chunk bytes = %q, %v", b, ok)
	}

	// Commit resolves both files.
	s2.Resolve()
	if ops := PendingOps(dir); len(ops) != 0 {
		t.Fatalf("PendingOps after resolve = %+v", ops)
	}
	if _, err := os.Stat(spoolPath(dir, 7)); !os.IsNotExist(err) {
		t.Fatalf("spool file survived resolve: %v", err)
	}
}

func TestSpoolDiscardsStaleEpoch(t *testing.T) {
	dir := t.TempDir()
	s1, err := OpenSpool(dir, PendingRecord{Session: 7, Owner: "src", Epoch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ChunkID{0, 0}, []byte("old-epoch")); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// The source was deposed and re-acquired at a later epoch: its image
	// may have changed, so the old spool is untrustworthy.
	s2, err := OpenSpool(dir, PendingRecord{Session: 7, Owner: "src", Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 0 {
		t.Fatalf("stale-epoch spool kept %d chunks", s2.Count())
	}
	s2.Close()

	// Same for a different claimed owner at the same epoch.
	s3, err := OpenSpool(dir, PendingRecord{Session: 7, Owner: "other", Epoch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s3.Count() != 0 {
		t.Fatalf("foreign-owner spool kept %d chunks", s3.Count())
	}
	s3.Resolve()
}

func TestSpoolTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	rec := PendingRecord{Session: 9, Owner: "src", Epoch: 1}
	s1, err := OpenSpool(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ChunkID{0, 0}, []byte("intact")); err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(ChunkID{0, 1}, []byte("to-be-torn")); err != nil {
		t.Fatal(err)
	}
	s1.Close()

	// Crash mid-append: chop bytes off the last frame.
	path := spoolPath(dir, 9)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSpool(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Has(ChunkID{0, 0}) {
		t.Fatal("intact chunk lost with the torn tail")
	}
	if s2.Has(ChunkID{0, 1}) {
		t.Fatal("torn chunk resurrected")
	}
	// The file was truncated to the clean prefix, so a fresh append
	// extends intact frames.
	if err := s2.Put(ChunkID{0, 1}, []byte("re-sent")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenSpool(dir, rec)
	if err != nil {
		t.Fatal(err)
	}
	if b, ok := s3.Get(ChunkID{0, 1}); !ok || string(b) != "re-sent" {
		t.Fatalf("re-sent chunk after torn-tail truncate = %q, %v", b, ok)
	}
	s3.Resolve()
}

func TestSpoolInMemoryWithoutDir(t *testing.T) {
	s, err := OpenSpool("", PendingRecord{Session: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(ChunkID{0, 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !s.Has(ChunkID{0, 0}) {
		t.Fatal("in-memory spool lost a chunk")
	}
	s.Resolve()
	if got := PendingOps(""); got != nil {
		t.Fatalf("PendingOps(\"\") = %v", got)
	}
}

func TestResolvePendingAbortsAllAtBoot(t *testing.T) {
	dir := t.TempDir()
	for i := int64(1); i <= 3; i++ {
		s, err := OpenSpool(dir, PendingRecord{Session: i, Owner: "src", Epoch: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put(ChunkID{0, 0}, []byte("x")); err != nil {
			t.Fatal(err)
		}
		s.Close() // all three die mid-import
	}
	var logged int
	if n := ResolvePending(dir, func(string, ...any) { logged++ }); n != 3 {
		t.Fatalf("ResolvePending aborted %d, want 3", n)
	}
	if logged != 3 {
		t.Fatalf("ResolvePending logged %d aborts, want 3", logged)
	}
	if ops := PendingOps(dir); len(ops) != 0 {
		t.Fatalf("pending ops survived boot abort: %+v", ops)
	}
	// Idempotent on a clean dir.
	if n := ResolvePending(dir, nil); n != 0 {
		t.Fatalf("second ResolvePending aborted %d, want 0", n)
	}
}

func TestPendingOpsSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSpool(dir, PendingRecord{Session: 1, Owner: "src", Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(pendingPath(dir, 2), []byte("{torn json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ops := PendingOps(dir)
	if len(ops) != 1 || ops[0].Session != 1 {
		t.Fatalf("PendingOps with corrupt sibling = %+v, want just session 1", ops)
	}
}
