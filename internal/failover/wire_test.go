package failover

import (
	"bytes"
	"testing"

	"gvrt/internal/api"
)

func TestFrameRoundTrip(t *testing.T) {
	payload, err := EncodePayload(Chunk{ID: ChunkID{Entry: 2, Index: 5}, Data: []byte("chunk bytes")})
	if err != nil {
		t.Fatal(err)
	}
	in := Frame{Type: FrameChunk, Session: 42, Seq: 7, Payload: payload}
	enc := EncodeFrame(nil, in)

	out, n, res := DecodeFrame(enc)
	if res != DecodeOK || n != len(enc) {
		t.Fatalf("decode = %v, consumed %d of %d", res, n, len(enc))
	}
	if out.Type != in.Type || out.Session != in.Session || out.Seq != in.Seq || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
	var c Chunk
	if err := DecodePayload(out.Payload, &c); err != nil {
		t.Fatal(err)
	}
	if c.ID != (ChunkID{Entry: 2, Index: 5}) || string(c.Data) != "chunk bytes" {
		t.Fatalf("payload round trip = %+v", c)
	}

	// Two concatenated frames decode one at a time.
	enc2 := EncodeFrame(enc, Frame{Type: FrameCommit, Session: 42, Seq: 8})
	if _, n1, res := DecodeFrame(enc2); res != DecodeOK || n1 != len(enc) {
		t.Fatalf("first of two frames: %v, %d", res, n1)
	}
	f2, _, res := DecodeFrame(enc2[len(enc):])
	if res != DecodeOK || f2.Type != FrameCommit {
		t.Fatalf("second of two frames: %v, %+v", res, f2)
	}
}

func TestFrameTornAndCorruptClassification(t *testing.T) {
	valid := EncodeFrame(nil, Frame{Type: FrameHello, Session: 1, Payload: []byte("abcdef")})

	// Every strict prefix is torn, never corrupt, never OK.
	for cut := 0; cut < len(valid); cut++ {
		if _, _, res := DecodeFrame(valid[:cut]); res != DecodeTorn {
			t.Fatalf("prefix of %d bytes classified %v, want DecodeTorn", cut, res)
		}
	}
	// A flipped byte anywhere makes it corrupt (header magic, header
	// CRC, payload CRC — every region is covered by some checksum).
	for i := 0; i < len(valid); i++ {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		if _, _, res := DecodeFrame(mut); res == DecodeOK {
			t.Fatalf("flipping byte %d went undetected", i)
		}
	}
	// An insane payload length is corrupt, not a huge allocation.
	mut := append([]byte(nil), valid...)
	mut[21], mut[22], mut[23], mut[24] = 0xff, 0xff, 0xff, 0xff
	if _, _, res := DecodeFrame(mut); res != DecodeCorrupt {
		t.Fatalf("oversized length classified %v, want DecodeCorrupt", res)
	}
	// An unknown frame type is corrupt.
	bad := EncodeFrame(nil, Frame{Type: FrameResult + 1, Session: 1})
	if _, _, res := DecodeFrame(bad); res != DecodeCorrupt {
		t.Fatalf("unknown frame type classified %v, want DecodeCorrupt", res)
	}
}

func TestDecodePayloadHostileBytes(t *testing.T) {
	var h Hello
	if err := DecodePayload([]byte("definitely not gob"), &h); err == nil {
		t.Fatal("hostile payload decoded without error")
	}
	// The gob panic-recovery path reports, never crashes.
	var n Need
	if err := DecodePayload([]byte{0x07, 0xff, 0x81, 0x01}, &n); err == nil {
		t.Fatal("truncated gob decoded without error")
	}
}

func TestManifestAndChunks(t *testing.T) {
	data := make([]byte, ChunkSize*2+100)
	for i := range data {
		data[i] = byte(i * 13)
	}
	refs := ManifestOf(data)
	if len(refs) != 3 {
		t.Fatalf("manifest of %d bytes has %d chunks, want 3", len(data), len(refs))
	}
	if refs[2].Len != 100 {
		t.Fatalf("final short chunk len = %d, want 100", refs[2].Len)
	}
	for i, ref := range refs {
		c := ChunkAt(data, i)
		if !VerifyChunk(ref, c) {
			t.Fatalf("chunk %d does not verify against its own manifest", i)
		}
		// A corrupted byte fails verification.
		mut := append([]byte(nil), c...)
		mut[0] ^= 1
		if VerifyChunk(ref, mut) {
			t.Fatalf("chunk %d verified after corruption", i)
		}
		// Truncation fails verification.
		if VerifyChunk(ref, c[:len(c)-1]) {
			t.Fatalf("chunk %d verified after truncation", i)
		}
	}
	if ManifestOf(nil) != nil {
		t.Fatal("empty data should have an empty manifest")
	}
	if got := ChunkAt(data, 99); len(got) != 0 {
		t.Fatalf("out-of-range ChunkAt returned %d bytes", len(got))
	}
}

// FuzzDecodeFrame is the migration decoder fuzz target (hostile frames
// arriving mid-import): for any input, DecodeFrame must not panic, must
// never consume more bytes than given, and everything it accepts must
// re-encode to the identical bytes it consumed.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("GVMF"))
	valid := EncodeFrame(nil, Frame{Type: FrameChunk, Session: 3, Seq: 9, Payload: []byte("payload")})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	mut := append([]byte(nil), valid...)
	mut[7] ^= 0x10
	f.Add(mut)
	hello, _ := EncodePayload(Hello{Session: 1, Owner: "x", Entries: []EntryManifest{{Chunks: []ChunkRef{{Hash: 1, Len: 2, Sum: 3}}}}})
	f.Add(EncodeFrame(nil, Frame{Type: FrameHello, Session: 1, Payload: hello}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, res := DecodeFrame(data)
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		switch res {
		case DecodeOK:
			if n == 0 {
				t.Fatal("DecodeOK consumed nothing")
			}
			// Accepted frames survive a re-encode byte-for-byte: the
			// decoder accepts no frame the encoder would not produce.
			if got := EncodeFrame(nil, fr); !bytes.Equal(got, data[:n]) {
				t.Fatalf("re-encode differs from consumed bytes")
			}
			// Payloads of accepted frames must never panic the gob layer,
			// whatever they hold.
			var h Hello
			_ = DecodePayload(fr.Payload, &h)
			var c Chunk
			_ = DecodePayload(fr.Payload, &c)
		case DecodeTorn, DecodeCorrupt:
			if n != 0 {
				t.Fatalf("rejected frame consumed %d bytes", n)
			}
		default:
			t.Fatalf("unknown decode result %v", res)
		}
	})
}

// errInvalidIsTyped pins DecodePayload's error contract: hostile bytes
// wrap api.ErrInvalidValue so the import path maps them to the right
// wire code.
func TestDecodePayloadErrorIsTyped(t *testing.T) {
	var h Hello
	err := DecodePayload([]byte("junk"), &h)
	if err == nil {
		t.Fatal("junk decoded")
	}
	if code := api.Code(err); code != api.ErrInvalidValue {
		t.Fatalf("error code = %v, want ErrInvalidValue", code)
	}
}
