package failover

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"

	"gvrt/internal/api"
	"gvrt/internal/memmgr"
)

// This file defines the migration wire protocol: CRC-framed messages
// (the ckptlog frame idiom with its own magic) that ship a sealed
// context image from a source node to a target. The exchange:
//
//	source → target  Hello   (entry manifests: per-chunk hash/len/CRC)
//	target → source  Need    (chunks not satisfiable from the target's
//	                          dedup store or a prior partial transfer —
//	                          the resumable offsets)
//	source → target  Chunk*  (only the needed chunks, one frame each)
//	source → target  Commit
//	target → source  Result  (imported, or a typed failure)
//
// Every frame is individually CRC-protected (split header/payload CRCs,
// like the journal), so a torn or corrupt frame is detected at the
// target before any of its bytes can reach an imported image. The
// decoder never panics on hostile input.

// FrameType tags a migration frame.
type FrameType uint8

// Frame types.
const (
	// FrameInvalid is the zero value; never encoded.
	FrameInvalid FrameType = iota
	// FrameHello opens a transfer: session metadata plus the chunk
	// manifest of every entry.
	FrameHello
	// FrameNeed is the target's reply to Hello: the chunks it wants.
	FrameNeed
	// FrameChunk carries one entry chunk's bytes.
	FrameChunk
	// FrameCommit asks the target to assemble and import the image.
	FrameCommit
	// FrameResult reports the import outcome.
	FrameResult
)

// Frame layout (all integers big-endian):
//
//	magic(4) type(1) session(8) seq(8) payloadLen(4) headerCRC(4)
//	payload... payloadCRC(4)
const (
	frameMagic   = 0x47564d46 // "GVMF"
	frameHdrLen  = 4 + 1 + 8 + 8 + 4 + 4
	frameTailLen = 4
	// maxPayloadLen bounds a frame so a corrupt length field cannot
	// drive a huge allocation. Chunks are ChunkSize; Hello manifests
	// and pending-kernel lists stay far below this.
	maxPayloadLen = 1 << 28
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded migration frame.
type Frame struct {
	Type    FrameType
	Session int64
	Seq     uint64
	Payload []byte
}

// EncodeFrame appends the encoded frame to buf and returns it.
func EncodeFrame(buf []byte, f Frame) []byte {
	var hdr [frameHdrLen]byte
	binary.BigEndian.PutUint32(hdr[0:], frameMagic)
	hdr[4] = byte(f.Type)
	binary.BigEndian.PutUint64(hdr[5:], uint64(f.Session))
	binary.BigEndian.PutUint64(hdr[13:], f.Seq)
	binary.BigEndian.PutUint32(hdr[21:], uint32(len(f.Payload)))
	binary.BigEndian.PutUint32(hdr[25:], crc32.Checksum(hdr[:25], crcTable))
	buf = append(buf, hdr[:]...)
	buf = append(buf, f.Payload...)
	var tail [frameTailLen]byte
	binary.BigEndian.PutUint32(tail[:], crc32.Checksum(f.Payload, crcTable))
	return append(buf, tail[:]...)
}

// DecodeResult classifies a decode attempt.
type DecodeResult int

// Decode outcomes.
const (
	// DecodeOK: a whole valid frame was consumed.
	DecodeOK DecodeResult = iota
	// DecodeTorn: the data ends mid-frame (short header or payload) —
	// more bytes may complete it.
	DecodeTorn
	// DecodeCorrupt: the frame is structurally invalid (bad magic,
	// CRC mismatch, impossible length); the stream is poisoned.
	DecodeCorrupt
)

// DecodeFrame decodes one frame from the head of data, returning the
// frame, the bytes consumed, and the classification. It never panics
// and never allocates based on unverified lengths beyond the checked
// bound.
func DecodeFrame(data []byte) (Frame, int, DecodeResult) {
	if len(data) < frameHdrLen {
		return Frame{}, 0, DecodeTorn
	}
	if binary.BigEndian.Uint32(data[0:]) != frameMagic {
		return Frame{}, 0, DecodeCorrupt
	}
	if binary.BigEndian.Uint32(data[25:]) != crc32.Checksum(data[:25], crcTable) {
		return Frame{}, 0, DecodeCorrupt
	}
	plen := binary.BigEndian.Uint32(data[21:])
	if plen > maxPayloadLen {
		return Frame{}, 0, DecodeCorrupt
	}
	total := frameHdrLen + int(plen) + frameTailLen
	if len(data) < total {
		return Frame{}, 0, DecodeTorn
	}
	payload := data[frameHdrLen : frameHdrLen+int(plen)]
	if binary.BigEndian.Uint32(data[frameHdrLen+int(plen):]) != crc32.Checksum(payload, crcTable) {
		return Frame{}, 0, DecodeCorrupt
	}
	f := Frame{
		Type:    FrameType(data[4]),
		Session: int64(binary.BigEndian.Uint64(data[5:])),
		Seq:     binary.BigEndian.Uint64(data[13:]),
		Payload: append([]byte(nil), payload...),
	}
	if f.Type == FrameInvalid || f.Type > FrameResult {
		return Frame{}, 0, DecodeCorrupt
	}
	return f, total, DecodeOK
}

// ChunkSize is the migration transfer granularity. It deliberately
// matches the memory manager's dedup chunking, so a manifest chunk of
// an entry's data has the same (hash, bytes) as the interned chunk a
// sealed copy of that entry produced — which is what lets the target
// satisfy chunks from its own dedup store without any transfer.
const ChunkSize = 64 << 10

// ChunkRef identifies a chunk's content: FNV-1a hash (the dedup store's
// key), exact length, and a CRC-32C guarding against hash collisions
// and corruption.
type ChunkRef struct {
	Hash uint64
	Len  uint32
	Sum  uint32
}

// ChunkID addresses a chunk within a transfer: entry index in the Hello
// manifest, chunk index within that entry's data.
type ChunkID struct {
	Entry int32
	Index int32
}

// Hello is the FrameHello payload: everything about the image except
// the chunk bytes.
type Hello struct {
	Session int64
	Owner   string
	Epoch   uint64
	NextOff uint64
	// Pending are the kernels committed after the image's last
	// checkpoint; the target replays them on resume (§4.6).
	Pending []api.LaunchCall
	Entries []EntryManifest
	// TotalBytes is the summed data length across entries — what a
	// dedup-blind transfer would ship.
	TotalBytes int64
}

// EntryManifest is one entry's metadata plus its chunk manifest. Meta
// is the EntryImage with Data stripped (the chunks carry the bytes).
type EntryManifest struct {
	Meta   memmgr.EntryImage
	Chunks []ChunkRef
}

// Need is the FrameNeed payload: the chunks the target cannot satisfy
// locally.
type Need struct {
	Chunks []ChunkID
}

// Chunk is the FrameChunk payload.
type Chunk struct {
	ID   ChunkID
	Data []byte
}

// Result is the FrameResult payload.
type Result struct {
	Code   int32
	Detail string
}

// ManifestOf chunks data at ChunkSize and returns the per-chunk refs.
func ManifestOf(data []byte) []ChunkRef {
	if len(data) == 0 {
		return nil
	}
	refs := make([]ChunkRef, 0, (len(data)+ChunkSize-1)/ChunkSize)
	for off := 0; off < len(data); off += ChunkSize {
		c := ChunkAt(data, off/ChunkSize)
		refs = append(refs, ChunkRef{
			Hash: fnv64a(c),
			Len:  uint32(len(c)),
			Sum:  crc32.Checksum(c, crcTable),
		})
	}
	return refs
}

// ChunkAt returns the i-th ChunkSize slice of data (short final chunk),
// or nil when i is outside the manifest — a hostile Need frame naming an
// absurd index must not panic the source.
func ChunkAt(data []byte, i int) []byte {
	if i < 0 || i*ChunkSize >= len(data) {
		return nil
	}
	lo := i * ChunkSize
	hi := lo + ChunkSize
	if hi > len(data) {
		hi = len(data)
	}
	return data[lo:hi]
}

// VerifyChunk reports whether data matches the manifest ref.
func VerifyChunk(ref ChunkRef, data []byte) bool {
	return uint32(len(data)) == ref.Len &&
		fnv64a(data) == ref.Hash &&
		crc32.Checksum(data, crcTable) == ref.Sum
}

// fnv64a matches the memory manager's dedup-store hash (FNV-1a 64).
func fnv64a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}

// EncodePayload gob-encodes a frame payload.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("failover: encoding payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodePayload gob-decodes a frame payload into v. Hostile bytes that
// panic the gob decoder are reported as an error wrapping
// api.ErrInvalidValue, never a crash.
func DecodePayload(data []byte, v any) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("failover: decoding payload panicked: %v: %w", p, api.ErrInvalidValue)
		}
	}()
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(v); derr != nil {
		return fmt.Errorf("failover: decoding payload: %v: %w", derr, api.ErrInvalidValue)
	}
	return nil
}
