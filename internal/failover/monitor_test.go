package failover

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gvrt/internal/resilience"
)

// monitorHarness drives the scan loop synchronously: Sleep hands
// control back to the test between scans, and advancing the fake clock
// controls expiry exactly.
type monitorHarness struct {
	tbl  *Table
	clk  *fakeClock
	mu   sync.Mutex
	outs map[int64][]error
}

func (h *monitorHarness) onPromote(session int64, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.outs[session] = append(h.outs[session], err)
}

func (h *monitorHarness) attempts(session int64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.outs[session])
}

// waitCounts polls (in wall time) until the predicate holds or times out.
func waitCounts(t *testing.T, m *Monitor, pred func(promoted, failed, limited int64) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pred(m.Counts()) {
			return
		}
		if time.Now().After(deadline) {
			p, f, l := m.Counts()
			t.Fatalf("monitor never reached expected counts (promoted %d, failed %d, limited %d)", p, f, l)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMonitorPromotesExpiredLease(t *testing.T) {
	tbl, clk := newTestTable(time.Second)
	if _, err := tbl.Acquire(1, "dead"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)

	h := &monitorHarness{tbl: tbl, clk: clk, outs: make(map[int64][]error)}
	m := StartMonitor(MonitorConfig{
		Table:     tbl,
		Owner:     "alive",
		Sleep:     func(time.Duration) {},
		Promote:   func(session int64) error { return nil },
		OnPromote: h.onPromote,
	})
	defer m.Stop()

	waitCounts(t, m, func(p, f, l int64) bool { return p >= 1 })
	if l, ok := tbl.Lookup(1); !ok || l.Owner != "alive" || l.Epoch != 2 {
		t.Fatalf("lease after promotion = %+v, %v; want alive@2", l, ok)
	}
	if h.attempts(1) == 0 {
		t.Fatal("OnPromote never observed the promotion")
	}
}

func TestMonitorSkipsRenewedLease(t *testing.T) {
	tbl, clk := newTestTable(time.Second)
	if _, err := tbl.Acquire(1, "slow"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)

	// The owner renews between the monitor's Expired() and Steal(): model
	// the race by renewing from inside Sleep, which runs between scans.
	renewOnce := sync.Once{}
	promoted := make(chan int64, 8)
	m := StartMonitor(MonitorConfig{
		Table: tbl,
		Owner: "alive",
		Sleep: func(time.Duration) {
			renewOnce.Do(func() {
				if _, err := tbl.Acquire(1, "slow"); err != nil {
					t.Errorf("owner renewal: %v", err)
				}
			})
		},
		Promote: func(session int64) error { promoted <- session; return nil },
	})
	defer m.Stop()

	// Give the monitor real scans; the renewed lease must never promote.
	time.Sleep(50 * time.Millisecond)
	p, f, _ := m.Counts()
	if p != 0 || f != 0 {
		t.Fatalf("renewed lease was promoted (promoted %d, failed %d)", p, f)
	}
	select {
	case s := <-promoted:
		t.Fatalf("Promote called for renewed session %d", s)
	default:
	}
	if l, _ := tbl.Lookup(1); l.Owner != "slow" || l.Epoch != 1 {
		t.Fatalf("lease = %+v, want slow@1 untouched", l)
	}
}

func TestMonitorRetriesFailedPromotionWithBackoff(t *testing.T) {
	tbl, clk := newTestTable(time.Millisecond)
	if _, err := tbl.Acquire(1, "dead"); err != nil {
		t.Fatal(err)
	}
	clk.advance(time.Hour) // expired, and every re-steal expires instantly too

	var mu sync.Mutex
	fails := 2
	var backoffs []time.Duration
	m := StartMonitor(MonitorConfig{
		Table: tbl,
		Owner: "alive",
		Sleep: func(d time.Duration) {
			mu.Lock()
			if d > 0 {
				backoffs = append(backoffs, d)
			}
			mu.Unlock()
			clk.advance(time.Hour)
		},
		Interval: 1, // every Sleep advances far past the tiny TTL
		Promote: func(session int64) error {
			mu.Lock()
			defer mu.Unlock()
			if fails > 0 {
				fails--
				return errors.New("target import failed")
			}
			return nil
		},
		Backoff: resilience.NewBackoff(10*time.Millisecond, 100*time.Millisecond, nil),
	})
	defer m.Stop()

	waitCounts(t, m, func(p, f, l int64) bool { return p >= 1 && f == 2 })
	mu.Lock()
	defer mu.Unlock()
	// Two failures → at least two backoff sleeps beyond the scan interval.
	if len(backoffs) < 2 {
		t.Fatalf("backoff slept %d times (%v), want >= 2", len(backoffs), backoffs)
	}
}

func TestMonitorStormLimiter(t *testing.T) {
	tbl, clk := newTestTable(time.Second)
	const sessions = 10
	for i := int64(1); i <= sessions; i++ {
		if _, err := tbl.Acquire(i, "dead"); err != nil {
			t.Fatal(err)
		}
	}
	clk.advance(time.Minute)

	const cap = 3
	m := StartMonitor(MonitorConfig{
		Table:   tbl,
		Owner:   "alive",
		Sleep:   func(time.Duration) {},
		Limit:   resilience.NewBudget(cap, 0, clk.now), // never refills
		Promote: func(session int64) error { return nil },
	})
	defer m.Stop()

	waitCounts(t, m, func(p, f, l int64) bool { return p == cap && l > 0 })
	p, _, _ := m.Counts()
	if p != cap {
		t.Fatalf("promoted %d, want exactly the burst cap %d", p, cap)
	}
}

func TestMonitorStopTerminates(t *testing.T) {
	tbl, _ := newTestTable(time.Second)
	m := StartMonitor(MonitorConfig{
		Table:   tbl,
		Owner:   "alive",
		Sleep:   func(time.Duration) { time.Sleep(time.Millisecond) },
		Promote: func(int64) error { return nil },
	})
	done := make(chan struct{})
	go func() { m.Stop(); m.Stop(); close(done) }() // Stop is idempotent
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop never returned")
	}
}
