package failover

import (
	"errors"
	"testing"
	"time"

	"gvrt/internal/api"
)

// fakeClock is a hand-advanced model clock for deterministic expiry.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration      { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t += d }

func newTestTable(ttl time.Duration) (*Table, *fakeClock) {
	c := &fakeClock{}
	return NewTable(ttl, c.now), c
}

func TestLeaseLifecycle(t *testing.T) {
	tbl, clk := newTestTable(10 * time.Second)

	// Fresh acquire starts the epoch chain at 1.
	l, err := tbl.Acquire(1, "a")
	if err != nil || l.Epoch != 1 || l.Owner != "a" {
		t.Fatalf("fresh acquire = %+v, %v", l, err)
	}
	// Same-owner re-acquire renews at the same epoch.
	clk.advance(5 * time.Second)
	l2, err := tbl.Acquire(1, "a")
	if err != nil || l2.Epoch != 1 || l2.Expires <= l.Expires {
		t.Fatalf("renewal = %+v, %v (prior %+v)", l2, err, l)
	}
	// A live lease fences other acquirers.
	if _, err := tbl.Acquire(1, "b"); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("foreign acquire of live lease err = %v, want ErrFenced", err)
	}
	// Check passes for the holder, fails for anyone else.
	if _, err := tbl.Check(1, "a", 1); err != nil {
		t.Fatalf("holder check: %v", err)
	}
	if _, err := tbl.Check(1, "b", 1); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("foreign check err = %v, want ErrFenced", err)
	}
	if _, err := tbl.Check(1, "a", 2); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("wrong-epoch check err = %v, want ErrFenced", err)
	}
	// Orderly release deletes the record outright.
	tbl.Release(1, "a")
	if _, ok := tbl.Lookup(1); ok {
		t.Fatal("lease survived release")
	}
	if got := tbl.Expired(); len(got) != 0 {
		t.Fatalf("released lease listed as expired: %v", got)
	}
}

func TestLeaseCheckRenewsPastHalfTTL(t *testing.T) {
	tbl, clk := newTestTable(10 * time.Second)
	if _, err := tbl.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	// Within the first half of the TTL: no renewal.
	clk.advance(2 * time.Second)
	if renewed, err := tbl.Check(1, "a", 1); err != nil || renewed {
		t.Fatalf("early check = renewed %v, err %v; want no renewal", renewed, err)
	}
	// Past half TTL: the fence piggybacks a renewal.
	clk.advance(4 * time.Second)
	renewed, err := tbl.Check(1, "a", 1)
	if err != nil || !renewed {
		t.Fatalf("late check = renewed %v, err %v; want renewal", renewed, err)
	}
	l, _ := tbl.Lookup(1)
	if l.Expires != clk.now()+10*time.Second {
		t.Fatalf("renewed expiry = %v, want %v", l.Expires, clk.now()+10*time.Second)
	}
}

func TestLeaseStealOnlyAfterExpiry(t *testing.T) {
	tbl, clk := newTestTable(10 * time.Second)
	if _, err := tbl.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	// Live lease: steal refused, unknown session rejected.
	if _, err := tbl.Steal(1, "b"); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("steal of live lease err = %v, want ErrFenced", err)
	}
	if _, err := tbl.Steal(99, "b"); !errors.Is(err, api.ErrInvalidValue) {
		t.Fatalf("steal of unknown session err = %v, want ErrInvalidValue", err)
	}

	clk.advance(11 * time.Second)
	if got := tbl.Expired(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Expired = %v, want [1]", got)
	}
	l, err := tbl.Steal(1, "b")
	if err != nil || l.Owner != "b" || l.Epoch != 2 {
		t.Fatalf("steal after expiry = %+v, %v", l, err)
	}
	// The deposed owner's stale (owner, epoch) fails the fence — even
	// though its lease "merely" expired before the steal.
	if _, err := tbl.Check(1, "a", 1); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("deposed owner check err = %v, want ErrFenced", err)
	}
	// An expired-but-unstolen lease can be renewed by its owner: the
	// renew-versus-steal race is settled by table-lock order alone.
	clk.advance(11 * time.Second)
	if _, err := tbl.Acquire(1, "b"); err != nil {
		t.Fatalf("owner renewal of expired lease: %v", err)
	}
	if _, err := tbl.Steal(1, "c"); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("steal after owner renewed err = %v, want ErrFenced", err)
	}
}

func TestLeaseStealAndStealBackStillFences(t *testing.T) {
	tbl, clk := newTestTable(time.Second)
	if _, err := tbl.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	if _, err := tbl.Steal(1, "b"); err != nil {
		t.Fatal(err)
	}
	clk.advance(2 * time.Second)
	l, err := tbl.Steal(1, "a") // back to the original node…
	if err != nil || l.Epoch != 3 {
		t.Fatalf("steal-back = %+v, %v", l, err)
	}
	// …but its old epoch is still fenced: only the new epoch passes.
	if _, err := tbl.Check(1, "a", 1); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("old-epoch check after steal-back err = %v, want ErrFenced", err)
	}
	if _, err := tbl.Check(1, "a", 3); err != nil {
		t.Fatalf("new-epoch check: %v", err)
	}
}

func TestLeaseRevoke(t *testing.T) {
	tbl, _ := newTestTable(time.Hour)
	if _, err := tbl.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	tbl.Revoke(1)
	// The phantom steal fences the holder immediately, without expiry.
	if _, err := tbl.Check(1, "a", 1); !errors.Is(err, api.ErrFenced) {
		t.Fatalf("check after revoke err = %v, want ErrFenced", err)
	}
	// A revoked lease is not the monitor's business (no owner to fail
	// over from)…
	if got := tbl.Expired(); len(got) != 0 {
		t.Fatalf("revoked lease listed as expired: %v", got)
	}
	// …but anyone may acquire it, at a bumped epoch.
	l, err := tbl.Acquire(1, "b")
	if err != nil || l.Epoch != 3 {
		t.Fatalf("acquire after revoke = %+v, %v (want epoch 3)", l, err)
	}
	// Revoking an unknown session is a no-op.
	tbl.Revoke(42)
	if _, ok := tbl.Lookup(42); ok {
		t.Fatal("revoke materialised a lease")
	}
}

func TestLeaseReleaseByNonOwnerIgnored(t *testing.T) {
	tbl, _ := newTestTable(time.Hour)
	if _, err := tbl.Acquire(1, "a"); err != nil {
		t.Fatal(err)
	}
	tbl.Release(1, "b") // stale release from a deposed node
	if l, ok := tbl.Lookup(1); !ok || l.Owner != "a" {
		t.Fatalf("lease after foreign release = %+v, %v; want intact", l, ok)
	}
}
