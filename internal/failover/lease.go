// Package failover implements the cluster failover plane (DESIGN.md
// §13): epoch-numbered session leases with write fencing, the CRC-framed
// wire protocol that ships a sealed context image between nodes with
// resumable offsets and dedup-chunk reuse, pending-operation records
// that make a crashed import resumable or cleanly abortable, and the
// monitor that promotes a peer for every session whose owner's lease
// expired.
//
// The invariant the plane maintains: for every session there is at most
// one node whose (owner, epoch) pair matches the lease table, and only
// that node's mutating calls pass the fence. Any steal bumps the epoch,
// so a deposed owner — however late its in-flight write arrives — is
// rejected with api.ErrFenced instead of corrupting state it no longer
// owns.
package failover

import (
	"sync"
	"time"

	"gvrt/internal/api"
)

// DefaultTTL is the lease lifetime when NewTable is given none. Leases
// renew on every served call (the fence piggybacks renewal past half
// TTL), so a healthy owner never comes close to expiry.
const DefaultTTL = 2 * time.Second

// Lease is one session's ownership record.
type Lease struct {
	Session int64
	// Owner names the holding node; "" means revoked/unowned (the
	// epoch chain persists so a revoked lease still fences its past
	// holder).
	Owner string
	// Epoch increments on every ownership change. Fence checks compare
	// the holder's remembered epoch against this — a steal-and-steal-
	// back still fences the original holder.
	Epoch uint64
	// Expires is the model time at which the lease lapses and becomes
	// stealable. Expiry alone does not fence the owner: a slow owner
	// that renews before anyone steals keeps its epoch (the renewal
	// and the steal serialise on the table lock; exactly one wins).
	Expires time.Duration
}

// Table is the cluster's session-lease registry. One Table is shared by
// every node of a cluster (the model of an external lease service);
// all operations serialise on its lock, which is what makes the
// renew-versus-steal race well defined. Safe for concurrent use.
type Table struct {
	mu     sync.Mutex
	ttl    time.Duration
	now    func() time.Duration
	leases map[int64]*Lease
}

// NewTable builds a lease table. ttl <= 0 means DefaultTTL; now is the
// cluster's model clock (sim.Clock.Now).
func NewTable(ttl time.Duration, now func() time.Duration) *Table {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Table{ttl: ttl, now: now, leases: make(map[int64]*Lease)}
}

// TTL reports the configured lease lifetime.
func (t *Table) TTL() time.Duration { return t.ttl }

// Acquire takes (or retakes) the session's lease for owner. A fresh
// session starts at epoch 1; re-acquiring one's own lease renews it at
// the same epoch; an expired or revoked lease is taken over at epoch+1.
// A live lease held by another node fails with api.ErrFenced.
func (t *Table) Acquire(session int64, owner string) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	l := t.leases[session]
	switch {
	case l == nil:
		l = &Lease{Session: session, Owner: owner, Epoch: 1, Expires: now + t.ttl}
		t.leases[session] = l
	case l.Owner == owner:
		l.Expires = now + t.ttl
	case l.Owner == "" || now > l.Expires:
		l.Owner = owner
		l.Epoch++
		l.Expires = now + t.ttl
	default:
		return Lease{}, api.ErrFenced
	}
	return *l, nil
}

// Check is the write fence: it verifies that (owner, epoch) still names
// the session's holder, and extends the lease when it is past half its
// TTL (renewed reports that). Any mismatch — stolen, revoked, released —
// fails with api.ErrFenced.
func (t *Table) Check(session int64, owner string, epoch uint64) (renewed bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[session]
	if l == nil || l.Owner != owner || l.Epoch != epoch {
		return false, api.ErrFenced
	}
	now := t.now()
	if l.Expires-now < t.ttl/2 {
		l.Expires = now + t.ttl
		return true, nil
	}
	return false, nil
}

// Steal transfers an expired (or revoked) lease to newOwner at epoch+1.
// A lease still within its TTL cannot be stolen — the monitor must wait
// for expiry; a concurrent renewal by the owner defeats the steal.
func (t *Table) Steal(session int64, newOwner string) (Lease, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l := t.leases[session]
	if l == nil {
		return Lease{}, api.ErrInvalidValue
	}
	if l.Owner != "" && t.now() <= l.Expires {
		return Lease{}, api.ErrFenced
	}
	l.Owner = newOwner
	l.Epoch++
	l.Expires = t.now() + t.ttl
	return *l, nil
}

// Release drops the session's lease if owner still holds it (orderly
// context exit). The record is deleted outright: a released session is
// gone, not stealable.
func (t *Table) Release(session int64, owner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l := t.leases[session]; l != nil && l.Owner == owner {
		delete(t.leases, session)
	}
}

// Revoke force-expires the session's lease and bumps the epoch, as if a
// phantom peer stole and abandoned it — the lease-expiry race made
// deterministic. Fault injection (PointLeaseCheck) and tests use it;
// the prior owner's next fence check fails with ErrFenced, and anyone
// may Acquire the session afterwards.
func (t *Table) Revoke(session int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l := t.leases[session]; l != nil {
		l.Owner = ""
		l.Epoch++
	}
}

// Expired lists sessions whose lease is past its TTL and still has an
// owner — the failover monitor's work queue.
func (t *Table) Expired() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	var ids []int64
	for id, l := range t.leases {
		if l.Owner != "" && now > l.Expires {
			ids = append(ids, id)
		}
	}
	return ids
}

// Lookup returns the session's current lease.
func (t *Table) Lookup(session int64) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if l := t.leases[session]; l != nil {
		return *l, true
	}
	return Lease{}, false
}
