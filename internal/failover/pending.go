package failover

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// This file implements the target side's crash safety: an import in
// progress is recorded as a pending-operation sidecar (heketi's
// pending-op pattern) next to a spool of the chunk frames received so
// far. The records buy two properties:
//
//   - Resumable offsets: a transfer that broke mid-stream (source died,
//     partition) leaves its spooled chunks on disk; when the source —
//     or a failover retry — re-sends Hello for the same session and
//     epoch, the target excludes the spooled chunks from its need-set,
//     so only the missing tail crosses the wire again.
//   - Clean abort: a target that crashed mid-import comes back up with
//     a pending record but no imported session. Recovery resolves the
//     record by deleting it and its spool — the import either committed
//     atomically (record gone, session journaled) or never happened.
//
// An empty dir runs the spool purely in memory: no crash durability,
// but the same resumable-offsets behaviour for live-target retries.

// PendingRecord describes one in-flight import.
type PendingRecord struct {
	Session int64  `json:"session"`
	Owner   string `json:"owner"`
	Epoch   uint64 `json:"epoch"`
	// Total is the number of chunks the transfer's manifest names.
	Total int `json:"total_chunks"`
}

func pendingPath(dir string, session int64) string {
	return filepath.Join(dir, fmt.Sprintf("mig-%d.pending", session))
}

func spoolPath(dir string, session int64) string {
	return filepath.Join(dir, fmt.Sprintf("mig-%d.spool", session))
}

// Spool accumulates received chunks for one import. Not safe for
// concurrent use; the import runs under its connection's service lock.
type Spool struct {
	dir    string
	rec    PendingRecord
	chunks map[ChunkID][]byte
	f      *os.File
}

// OpenSpool starts (or resumes) the spool for rec. With a directory it
// writes the pending record atomically, then replays any existing spool
// file: chunk frames recorded by a previous attempt at the same epoch
// are loaded as already-received; a spool from a different epoch is
// stale (the image changed) and is discarded. A torn spool tail — the
// crash arrived mid-append — is truncated away, exactly like the
// journal's recovery.
func OpenSpool(dir string, rec PendingRecord) (*Spool, error) {
	s := &Spool{dir: dir, rec: rec, chunks: make(map[ChunkID][]byte)}
	if dir == "" {
		return s, nil
	}
	prev, err := readPending(pendingPath(dir, rec.Session))
	stale := err != nil || prev.Epoch != rec.Epoch || prev.Owner != rec.Owner
	if err := writePending(pendingPath(dir, rec.Session), rec); err != nil {
		return nil, err
	}
	if stale {
		_ = os.Remove(spoolPath(dir, rec.Session))
	}
	f, err := os.OpenFile(spoolPath(dir, rec.Session), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("failover: opening spool: %w", err)
	}
	s.f = f
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load replays the spool file into the chunk map and truncates any torn
// or corrupt tail so later appends extend a clean prefix.
func (s *Spool) load() error {
	data, err := os.ReadFile(spoolPath(s.dir, s.rec.Session))
	if err != nil {
		return fmt.Errorf("failover: reading spool: %w", err)
	}
	valid := 0
	for len(data[valid:]) > 0 {
		f, n, res := DecodeFrame(data[valid:])
		if res != DecodeOK || f.Type != FrameChunk {
			break
		}
		var c Chunk
		if DecodePayload(f.Payload, &c) != nil {
			break
		}
		s.chunks[c.ID] = c.Data
		valid += n
	}
	if valid < len(data) {
		if err := s.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("failover: truncating torn spool: %w", err)
		}
	}
	if _, err := s.f.Seek(int64(valid), 0); err != nil {
		return fmt.Errorf("failover: seeking spool: %w", err)
	}
	return nil
}

// Has reports whether the chunk was already received (or satisfied from
// the dedup store via PutLocal).
func (s *Spool) Has(id ChunkID) bool {
	_, ok := s.chunks[id]
	return ok
}

// Get returns a received chunk's bytes.
func (s *Spool) Get(id ChunkID) ([]byte, bool) {
	b, ok := s.chunks[id]
	return b, ok
}

// Count reports how many chunks the spool holds.
func (s *Spool) Count() int { return len(s.chunks) }

// Put records a chunk received over the wire, appending it durably when
// the spool is file-backed so a retry after a crash need not re-ship it.
func (s *Spool) Put(id ChunkID, data []byte) error {
	s.chunks[id] = data
	if s.f == nil {
		return nil
	}
	frame := EncodeFrame(nil, Frame{Type: FrameChunk, Session: s.rec.Session, Payload: mustEncode(Chunk{ID: id, Data: data})})
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("failover: spooling chunk: %w", err)
	}
	return nil
}

// PutLocal records a chunk satisfied without transfer (dedup-store hit).
// It is not spooled: the store can satisfy it again after a crash.
func (s *Spool) PutLocal(id ChunkID, data []byte) {
	s.chunks[id] = data
}

// Resolve finishes the pending operation: the record and spool are
// deleted. Call it after the import committed (the journal now owns the
// session) or when aborting a dead transfer.
func (s *Spool) Resolve() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if s.dir != "" {
		_ = os.Remove(pendingPath(s.dir, s.rec.Session))
		_ = os.Remove(spoolPath(s.dir, s.rec.Session))
	}
	s.chunks = make(map[ChunkID][]byte)
}

// Close releases the spool file without deleting anything — the pending
// record survives for a later resume or recovery-time abort.
func (s *Spool) Close() {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
}

// PendingOps lists the pending-operation records in dir.
func PendingOps(dir string) []PendingRecord {
	if dir == "" {
		return nil
	}
	matches, _ := filepath.Glob(filepath.Join(dir, "mig-*.pending"))
	var recs []PendingRecord
	for _, path := range matches {
		if rec, err := readPending(path); err == nil {
			recs = append(recs, rec)
		}
	}
	return recs
}

// ResolvePending aborts every pending import in dir (target restart:
// nothing in-flight can complete, and a committed import already
// resolved its record). Returns the number of records aborted.
func ResolvePending(dir string, logf func(format string, args ...any)) int {
	recs := PendingOps(dir)
	for _, rec := range recs {
		_ = os.Remove(pendingPath(dir, rec.Session))
		_ = os.Remove(spoolPath(dir, rec.Session))
		if logf != nil {
			logf("failover: aborted pending import of session %d (owner %s epoch %d)", rec.Session, rec.Owner, rec.Epoch)
		}
	}
	return len(recs)
}

func readPending(path string) (PendingRecord, error) {
	var rec PendingRecord
	data, err := os.ReadFile(path)
	if err != nil {
		return rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return rec, fmt.Errorf("failover: corrupt pending record %s: %w", path, err)
	}
	return rec, nil
}

func writePending(path string, rec PendingRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("failover: writing pending record: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("failover: publishing pending record: %w", err)
	}
	return nil
}

func mustEncode(v any) []byte {
	b, err := EncodePayload(v)
	if err != nil {
		// Chunk payloads are plain structs of bytes and ints; gob
		// cannot fail on them.
		panic(err)
	}
	return b
}
