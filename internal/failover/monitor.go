package failover

import (
	"sync"
	"time"

	"gvrt/internal/resilience"
)

// DefaultMonitorInterval is the pause between lease-table scans.
const DefaultMonitorInterval = 250 * time.Millisecond

// MonitorConfig tunes a failover monitor.
type MonitorConfig struct {
	// Table is the shared lease table the monitor scans for expired
	// leases.
	Table *Table
	// Owner is the promoting node's name: stolen leases transfer to it.
	Owner string
	// Interval is the scan period; 0 means DefaultMonitorInterval.
	Interval time.Duration
	// Sleep advances between scans (the node's model clock).
	Sleep func(time.Duration)
	// Promote adopts one expired session onto the owner node. It runs
	// after the monitor stole the lease, so the dead owner is already
	// fenced; an error leaves the lease with the monitor's owner and is
	// retried on a later scan, after backoff.
	Promote func(session int64) error
	// Limit, when set, is the migration storm limiter: one token per
	// promotion attempt. A flapping node that expires dozens of leases
	// at once drains the bucket and the overflow waits for refill
	// instead of melting the cluster with concurrent image transfers.
	Limit *resilience.Budget
	// Backoff, when set, spaces retries after a failed promotion
	// (decorrelated jitter, reset on success).
	Backoff *resilience.Backoff
	// Logf, when set, receives monitor events.
	Logf func(format string, args ...any)
	// OnPromote, when set, observes every promotion attempt's outcome
	// (counters, tests).
	OnPromote func(session int64, err error)
}

// Monitor watches the lease table and promotes this node for every
// session whose owner's lease expired — the cluster health monitor's
// failover arm.
type Monitor struct {
	cfg  MonitorConfig
	quit chan struct{}
	stop sync.Once
	wg   sync.WaitGroup

	mu       sync.Mutex
	promoted int64
	failed   int64
	limited  int64
}

// StartMonitor launches the monitor goroutine.
func StartMonitor(cfg MonitorConfig) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultMonitorInterval
	}
	m := &Monitor{cfg: cfg, quit: make(chan struct{})}
	m.wg.Add(1)
	go m.run()
	return m
}

// Stop shuts the monitor down and waits for the scan loop to exit.
func (m *Monitor) Stop() {
	m.stop.Do(func() { close(m.quit) })
	m.wg.Wait()
}

// Counts reports promotions succeeded, failed, and storm-limited.
func (m *Monitor) Counts() (promoted, failed, limited int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.promoted, m.failed, m.limited
}

func (m *Monitor) run() {
	defer m.wg.Done()
	for {
		select {
		case <-m.quit:
			return
		default:
		}
		m.cfg.Sleep(m.cfg.Interval)
		select {
		case <-m.quit:
			return
		default:
		}
		m.scan()
	}
}

func (m *Monitor) scan() {
	for _, session := range m.cfg.Table.Expired() {
		if m.cfg.Limit != nil && !m.cfg.Limit.TrySpend() {
			m.mu.Lock()
			m.limited++
			m.mu.Unlock()
			m.logf("failover: promotion of session %d storm-limited", session)
			continue
		}
		if _, err := m.cfg.Table.Steal(session, m.cfg.Owner); err != nil {
			// The owner renewed between Expired and Steal — the
			// lease-expiry race resolved in its favour; nothing to do.
			continue
		}
		err := m.cfg.Promote(session)
		if m.cfg.OnPromote != nil {
			m.cfg.OnPromote(session, err)
		}
		m.mu.Lock()
		if err != nil {
			m.failed++
		} else {
			m.promoted++
		}
		m.mu.Unlock()
		if err != nil {
			m.logf("failover: promoting session %d failed: %v", session, err)
			if m.cfg.Backoff != nil {
				m.cfg.Sleep(m.cfg.Backoff.Next())
			}
			continue
		}
		m.logf("failover: promoted session %d to %s", session, m.cfg.Owner)
		if m.cfg.Backoff != nil {
			m.cfg.Backoff.Reset()
		}
	}
}

func (m *Monitor) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
